package shmrename

import (
	"errors"
	"fmt"
	"math"

	"shmrename/internal/baseline"
	"shmrename/internal/core"
	"shmrename/internal/prng"
	"shmrename/internal/sched"
	"shmrename/internal/sortnet"
)

// Algorithm selects a renaming algorithm.
type Algorithm string

// Available algorithms.
const (
	// TightTau is the paper's §III algorithm: tight renaming (m = n) via
	// τ-registers in O(log n) steps w.h.p.
	TightTau Algorithm = "tight-tau"
	// LooseRounds is the Lemma 6 almost-tight algorithm on n names; up
	// to ~2n/(log log n)^ℓ processes may stay unnamed (survivors).
	LooseRounds Algorithm = "loose-rounds"
	// LooseClusters is the Lemma 8 almost-tight algorithm on n names; up
	// to ~n/(log n)^ℓ survivors.
	LooseClusters Algorithm = "loose-clusters"
	// Corollary7 is loose renaming on m = n + 2n/(log log n)^ℓ names in
	// O((log log n)^ℓ) steps: Lemma 6 plus overflow backfill.
	Corollary7 Algorithm = "corollary7"
	// Corollary9 is loose renaming on m = n + 2n/(log n)^ℓ names in
	// O((log log n)²) steps: Lemma 8 plus overflow backfill.
	Corollary9 Algorithm = "corollary9"
	// SortNet is the sorting-network renaming of Alistarh et al. [7]
	// instantiated with a Batcher odd-even mergesort network (baseline).
	SortNet Algorithm = "sortnet"
	// UniformProbe is folklore random probing on a tight space (baseline).
	UniformProbe Algorithm = "uniform-probe"
	// LinearScan is the deterministic Θ(n) baseline.
	LinearScan Algorithm = "linear-scan"
	// Adaptive renames without knowing the participant count in advance
	// (the §IV remark on [8]'s framework): names stay within O(k) for k
	// participants at O(log k) steps, on an O(n) arena.
	Adaptive Algorithm = "adaptive"
)

// Algorithms lists every available algorithm.
func Algorithms() []Algorithm {
	return []Algorithm{
		TightTau, LooseRounds, LooseClusters,
		Corollary7, Corollary9, SortNet, UniformProbe, LinearScan, Adaptive,
	}
}

// Config parameterizes one renaming execution.
type Config struct {
	// N is the number of processes (required, >= 1).
	N int
	// Algorithm defaults to TightTau.
	Algorithm Algorithm
	// Ell is the ℓ parameter of the loose algorithms: 0 selects the
	// default 1; explicit values must lie in [1, MaxEll].
	Ell int
	// C is the cluster constant of TightTau: 0 selects the default 2;
	// explicit values must lie in [1, MaxC].
	C float64
	// Seed drives all randomness; equal seeds give equal outcomes in
	// simulated mode.
	Seed uint64
	// Simulate runs the deterministic adversarial simulator instead of
	// native goroutines.
	Simulate bool
	// Schedule selects the simulated adversary: "fifo" (default),
	// "random", "round-robin", "collider", "starve".
	Schedule string
	// CrashFraction crashes this fraction of processes at adversarial
	// times (simulated mode only).
	CrashFraction float64
}

// Result reports one renaming execution.
type Result struct {
	// Algorithm echoes the configured algorithm's label.
	Algorithm string
	// M is the name-space size; names lie in [0, M).
	M int
	// Names[pid] is the name acquired by process pid, or -1 for a
	// survivor (loose almost-tight algorithms) or crashed process.
	Names []int
	// Steps[pid] is the number of shared-memory accesses by process pid.
	Steps []int64
	// MaxSteps is the execution's step complexity: max over Steps.
	MaxSteps int64
	// Survivors counts processes that finished unnamed.
	Survivors int
	// Crashed counts processes crashed by the adversary.
	Crashed int
}

// Verify checks that all acquired names are pairwise distinct and within
// [0, M). A nil return means the execution was correct.
func (r *Result) Verify() error {
	owner := make(map[int]int, len(r.Names))
	for pid, name := range r.Names {
		if name < 0 {
			continue
		}
		if name >= r.M {
			return fmt.Errorf("process %d holds out-of-range name %d (m=%d)", pid, name, r.M)
		}
		if prev, dup := owner[name]; dup {
			return fmt.Errorf("name %d held by both %d and %d", name, prev, pid)
		}
		owner[name] = pid
	}
	return nil
}

// Parameter bounds enforced by Rename. Values beyond them are virtually
// always configuration mistakes: the ℓ round schedules grow exponentially
// in ℓ, and cluster constants beyond MaxC make the geometry degenerate.
const (
	// MaxEll bounds Config.Ell.
	MaxEll = 8
	// MaxC bounds Config.C.
	MaxC = 64.0
)

// Rename executes the configured renaming and returns the outcome.
func Rename(cfg Config) (*Result, error) {
	if cfg.N < 1 {
		return nil, errors.New("shmrename: Config.N must be >= 1")
	}
	// Validate tuning parameters up front instead of silently clamping
	// them to defaults inside the algorithm constructors: a mistyped value
	// must fail loudly, not report results for a different configuration.
	if cfg.Ell < 0 || cfg.Ell > MaxEll {
		return nil, fmt.Errorf("shmrename: Config.Ell must be 0 (default) or in [1, %d], got %d", MaxEll, cfg.Ell)
	}
	if math.IsNaN(cfg.C) || (cfg.C != 0 && (cfg.C < 1 || cfg.C > MaxC)) {
		return nil, fmt.Errorf("shmrename: Config.C must be 0 (default) or in [1, %g], got %g", MaxC, cfg.C)
	}
	if cfg.CrashFraction < 0 || cfg.CrashFraction > 1 {
		return nil, errors.New("shmrename: CrashFraction must be in [0, 1]")
	}
	if cfg.CrashFraction > 0 && !cfg.Simulate {
		return nil, errors.New("shmrename: crash injection requires Simulate")
	}
	inst, err := buildInstance(cfg)
	if err != nil {
		return nil, err
	}
	var results []sched.Result
	if cfg.Simulate {
		results, err = runSimulated(inst, cfg)
		if err != nil {
			return nil, err
		}
	} else {
		results = sched.RunNative(inst.N(), cfg.Seed, inst.Body)
	}
	out := &Result{
		Algorithm: inst.Label(),
		M:         inst.M(),
		Names:     make([]int, cfg.N),
		Steps:     make([]int64, cfg.N),
	}
	for _, r := range results {
		out.Names[r.PID] = r.Name
		out.Steps[r.PID] = r.Steps
		if r.Steps > out.MaxSteps {
			out.MaxSteps = r.Steps
		}
		switch r.Status {
		case sched.Unnamed:
			out.Survivors++
		case sched.Crashed:
			out.Crashed++
		case sched.Limited:
			return nil, fmt.Errorf("shmrename: process %d exceeded its step budget (bug or pathological schedule)", r.PID)
		}
	}
	return out, nil
}

// buildInstance constructs the core instance for a config. Native mode
// needs self-clocked counting devices; simulated mode works either way and
// uses self-clocked devices too (observably equivalent, cheaper).
func buildInstance(cfg Config) (core.Instance, error) {
	algo := cfg.Algorithm
	if algo == "" {
		algo = TightTau
	}
	switch algo {
	case TightTau:
		// Operation indices are int32 on the hot path, so name spaces are
		// capped at 2^31 names.
		if cfg.N >= 1<<31 {
			return nil, fmt.Errorf("shmrename: TightTau supports n < 2^31, got %d", cfg.N)
		}
		return core.NewTight(cfg.N, core.TightConfig{C: cfg.C, SelfClocked: true, Padded: !cfg.Simulate}), nil
	case LooseRounds:
		return core.NewLooseRounds(cfg.N, core.RoundsConfig{Ell: cfg.Ell}), nil
	case LooseClusters:
		if cfg.N < 2 {
			return nil, errors.New("shmrename: LooseClusters requires N >= 2")
		}
		return core.NewLooseClusters(cfg.N, core.ClustersConfig{Ell: cfg.Ell}), nil
	case Corollary7:
		return core.NewCorollary7(cfg.N, core.RoundsConfig{Ell: cfg.Ell}, nil), nil
	case Corollary9:
		if cfg.N < 2 {
			return nil, errors.New("shmrename: Corollary9 requires N >= 2")
		}
		return core.NewCorollary9(cfg.N, core.ClustersConfig{Ell: cfg.Ell}, nil), nil
	case SortNet:
		return sortnet.NewRenamerN(cfg.N), nil
	case UniformProbe:
		return baseline.NewUniformProbe(cfg.N), nil
	case LinearScan:
		return baseline.NewLinearScan(cfg.N), nil
	case Adaptive:
		return core.NewAdaptive(cfg.N, core.AdaptiveConfig{}), nil
	default:
		return nil, fmt.Errorf("shmrename: unknown algorithm %q", algo)
	}
}

func runSimulated(inst core.Instance, cfg Config) ([]sched.Result, error) {
	simCfg := sched.Config{
		N:         inst.N(),
		Seed:      cfg.Seed,
		Body:      inst.Body,
		AfterStep: inst.Clock(),
		Spaces:    inst.Probeables(),
	}
	var policy sched.Policy
	switch cfg.Schedule {
	case "", "fifo":
		simCfg.Fast = sched.FastFIFO
	case "random":
		simCfg.Fast = sched.FastRandom
	case "round-robin":
		policy = sched.RoundRobin()
	case "collider":
		policy = sched.Collider()
	case "starve":
		victims := cfg.N / 10
		if victims < 1 {
			victims = 1
		}
		pids := make([]int, victims)
		for i := range pids {
			pids[i] = i
		}
		policy = sched.Starve(pids...)
	default:
		return nil, fmt.Errorf("shmrename: unknown schedule %q", cfg.Schedule)
	}
	if cfg.CrashFraction > 0 {
		if policy == nil {
			policy = sched.RoundRobin()
			simCfg.Fast = sched.FastOff
		}
		plan := sched.PlanCrashes(cfg.N, cfg.CrashFraction, 4, prng.New(cfg.Seed^0x9e3779b9))
		policy = sched.WithCrashes(policy, plan)
	}
	simCfg.Policy = policy
	return sched.Run(simCfg), nil
}
