// Command renametrace runs one small renaming execution under the
// deterministic adversarial simulator and prints the schedule timeline:
// every granted shared-memory operation in order, with the adversary's
// decisions, followed by the outcome per process. It is the debugging
// lens for the §II.A model.
//
// Usage:
//
//	renametrace -n 8 -algo tight-tau -policy collider -seed 3 -max 200
package main

import (
	"flag"
	"fmt"
	"os"

	"shmrename/internal/baseline"
	"shmrename/internal/core"
	"shmrename/internal/prng"
	"shmrename/internal/sched"
	"shmrename/internal/sortnet"
)

// tracer wraps a policy and logs every decision.
type tracer struct {
	inner sched.Policy
	max   int
	count int
}

func (t *tracer) Name() string { return t.inner.Name() + "+trace" }

func (t *tracer) Next(w sched.World, pending []sched.Request, r *prng.Rand) sched.Decision {
	dec := t.inner.Next(w, pending, r)
	t.count++
	if t.count <= t.max {
		req := pending[dec.Index]
		status := ""
		if dec.Crash {
			status = "  ** CRASH **"
		} else if req.Op.Kind == 0 && w.Taken(req.Op) { // OpTAS on a taken target
			status = "  (doomed)"
		}
		fmt.Printf("%5d  grant p%-3d %-30s pending=%d%s\n",
			t.count, req.PID, req.Op.String(), len(pending), status)
	} else if t.count == t.max+1 {
		fmt.Printf("...... (further decisions elided)\n")
	}
	return dec
}

func main() {
	var (
		n      = flag.Int("n", 8, "number of processes")
		algo   = flag.String("algo", "tight-tau", "tight-tau | loose-rounds | loose-clusters | corollary7 | corollary9 | sortnet | adaptive | uniform-probe | linear-scan")
		policy = flag.String("policy", "round-robin", "round-robin | random | collider | starve")
		seed   = flag.Uint64("seed", 1, "seed")
		maxEv  = flag.Int("max", 200, "max decisions to print")
		crash  = flag.Float64("crash", 0, "fraction of processes to crash")
	)
	flag.Parse()

	inst, err := buildInstance(*algo, *n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "renametrace: %v\n", err)
		os.Exit(2)
	}
	var p sched.Policy
	switch *policy {
	case "round-robin":
		p = sched.RoundRobin()
	case "random":
		p = sched.Random()
	case "collider":
		p = sched.Collider()
	case "starve":
		p = sched.Starve(0)
	default:
		fmt.Fprintf(os.Stderr, "renametrace: unknown policy %q\n", *policy)
		os.Exit(2)
	}
	if *crash > 0 {
		plan := sched.PlanCrashes(*n, *crash, 4, prng.New(*seed^0xabcdef))
		p = sched.WithCrashes(p, plan)
	}

	fmt.Printf("algorithm=%s n=%d m=%d policy=%s seed=%d\n\n",
		inst.Label(), inst.N(), inst.M(), p.Name(), *seed)
	res := sched.Run(sched.Config{
		N:         *n,
		Seed:      *seed,
		Policy:    &tracer{inner: p, max: *maxEv},
		Body:      inst.Body,
		AfterStep: inst.Clock(),
		Spaces:    inst.Probeables(),
	})

	fmt.Printf("\noutcomes:\n")
	for _, r := range res {
		fmt.Printf("  p%-3d %-8s name=%-4d steps=%d\n", r.PID, r.Status, r.Name, r.Steps)
	}
	if err := sched.VerifyUnique(res, inst.M()); err != nil {
		fmt.Fprintf(os.Stderr, "renametrace: VERIFICATION FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\nverification: all names distinct within [0, %d)  max steps = %d\n",
		inst.M(), sched.MaxSteps(res))
}

func buildInstance(algo string, n int) (core.Instance, error) {
	switch algo {
	case "tight-tau":
		return core.NewTight(n, core.TightConfig{SelfClocked: true}), nil
	case "loose-rounds":
		return core.NewLooseRounds(n, core.RoundsConfig{}), nil
	case "loose-clusters":
		return core.NewLooseClusters(n, core.ClustersConfig{}), nil
	case "corollary7":
		return core.NewCorollary7(n, core.RoundsConfig{}, nil), nil
	case "corollary9":
		return core.NewCorollary9(n, core.ClustersConfig{}, nil), nil
	case "sortnet":
		return sortnet.NewRenamerN(n), nil
	case "adaptive":
		return core.NewAdaptive(n, core.AdaptiveConfig{}), nil
	case "uniform-probe":
		return baseline.NewUniformProbe(n), nil
	case "linear-scan":
		return baseline.NewLinearScan(n), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", algo)
	}
}
