// Command countdev inspects the §II.C counting device cycle by cycle: it
// replays a deterministic request script against one device and prints the
// in_reg/out_reg bit patterns after every clock cycle, making the
// phase-1/phase-2 trimming of the pseudocode visible.
//
// Usage:
//
//	countdev -width 16 -tau 4 -procs 12 -seed 2 -cycles 8
package main

import (
	"flag"
	"fmt"
	"strings"

	"shmrename/internal/prng"
	"shmrename/internal/shm"
	"shmrename/internal/taureg"
)

func bitsOf(v uint64, width int) string {
	var b strings.Builder
	for i := width - 1; i >= 0; i-- {
		if v&(uint64(1)<<i) != 0 {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

func main() {
	var (
		width  = flag.Int("width", 16, "TAS bits in the device (2..64)")
		tau    = flag.Int("tau", 4, "confirmation threshold")
		procs  = flag.Int("procs", 12, "requesting processes")
		seed   = flag.Uint64("seed", 1, "seed for request targets")
		cycles = flag.Int("cycles", 8, "clock cycles to run")
	)
	flag.Parse()

	dev := taureg.NewDevice("countdev", *width, *tau, false)
	fmt.Printf("counting device: width=%d tau=%d procs=%d seed=%d\n",
		*width, *tau, *procs, *seed)
	fmt.Printf("%-7s %-*s %-*s confirmed\n", "cycle",
		*width+2, "in_reg", *width+2, "out_reg")

	type pending struct {
		pid int
		bit int
	}
	var waiting []pending
	ps := make([]*shm.Proc, *procs)
	for pid := range ps {
		ps[pid] = shm.NewProc(pid, prng.NewStream(*seed, pid), nil, 1<<20)
	}

	nextPid := 0
	for cyc := 1; cyc <= *cycles; cyc++ {
		// Phase 1: a burst of new requests lands before this cycle.
		burst := *procs / *cycles
		if cyc == 1 {
			burst += *procs % *cycles
		}
		for k := 0; k < burst && nextPid < *procs; k++ {
			p := ps[nextPid]
			b := p.Rand().Intn(*width)
			if dev.RequestBit(p, b) {
				waiting = append(waiting, pending{pid: nextPid, bit: b})
				fmt.Printf("        p%-3d requests bit %d\n", nextPid, b)
			} else {
				fmt.Printf("        p%-3d requests bit %d  -> lost (already set)\n", nextPid, b)
			}
			nextPid++
		}
		dev.Cycle()
		in, out := dev.Snapshot()
		fmt.Printf("%-7d %s  %s  %d/%d\n", cyc,
			bitsOf(in, *width), bitsOf(out, *width), dev.ConfirmedCount(), *tau)
		// Resolve decided requests.
		var still []pending
		for _, w := range waiting {
			switch dev.Resolve(ps[w.pid], w.bit) {
			case taureg.Won:
				fmt.Printf("        p%-3d confirmed on bit %d\n", w.pid, w.bit)
			case taureg.Lost:
				fmt.Printf("        p%-3d trimmed from bit %d (threshold)\n", w.pid, w.bit)
			default:
				still = append(still, w)
			}
		}
		waiting = still
	}
	fmt.Printf("\nfinal: confirmed=%d (never above tau=%d), cycles=%d\n",
		dev.ConfirmedCount(), *tau, dev.Cycles())
}
