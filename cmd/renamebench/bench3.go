package main

// BENCH_3.json generation: native scalability of the public long-lived
// arena, single backend vs the sharded frontend. The workload is tight
// provisioning — the arena's capacity equals the goroutine count, the way
// a slot table is sized to its worker fleet — with every goroutine cycling
// acquire / hold (yield) / release, so the arena runs at full occupancy
// and every acquire searches for one of the few transiently free slots.
// In that regime the single level-array degenerates to an O(capacity)
// backstop scan per acquire, while the sharded frontend scans only its
// home shard (capacity/shards) and home-shard affinity routes a releaser
// straight back to its own freed slot. Subsequent perf PRs regenerate the
// file with -bench3; the best sharded row must keep beating the
// single-backend row at >= 4 goroutines.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"shmrename"
)

// bench3Point is one measured (backend, shards, goroutines) cell.
type bench3Point struct {
	Backend      string  `json:"backend"`
	Shards       int     `json:"shards"` // 0 = unsharded single backend
	Goroutines   int     `json:"goroutines"`
	Capacity     int     `json:"capacity"`
	Cycles       int     `json:"cycles"`
	Acquires     int64   `json:"acquires"`
	NsPerAcquire float64 `json:"ns_per_acquire"`
	KAcqPerSec   float64 `json:"kacq_per_sec"`
	MaxName      int64   `json:"max_name"`
	NameBound    int     `json:"name_bound"`
	FullRetries  int64   `json:"full_retries"`
}

// bench3Speedup summarizes the headline comparison per goroutine count:
// the best sharded cell of the shard-count sweep against the single
// backend (picking the stripe count is part of deploying the sharded
// frontend, exactly like picking Capacity).
type bench3Speedup struct {
	Goroutines  int     `json:"goroutines"`
	SingleKAcqS float64 `json:"single_kacq_per_sec"`
	BestShards  int     `json:"best_shards"`
	BestKAcqS   float64 `json:"best_sharded_kacq_per_sec"`
	Speedup     float64 `json:"speedup"`
}

type bench3File struct {
	Description string          `json:"description"`
	GoOS        string          `json:"goos"`
	GoArch      string          `json:"goarch"`
	GoMaxProcs  int             `json:"gomaxprocs"`
	Seed        uint64          `json:"seed"`
	Results     []bench3Point   `json:"results"`
	Speedups    []bench3Speedup `json:"speedups"`
}

// bench3Runs is the number of timed runs per cell; the best is recorded
// (least scheduler noise on a shared builder).
const bench3Runs = 5

// bench3Cycles sizes the per-worker cycle count so each timed run performs
// roughly the same total work regardless of the goroutine count.
func bench3Cycles(g int) int {
	c := 1 << 17 / g
	if c < 256 {
		c = 256
	}
	return c
}

// bench3Cell measures one tightly provisioned arena configuration: G
// goroutines on a capacity-G arena, each cycling acquire / yield-while-
// holding / release.
func bench3Cell(cfg shmrename.ArenaConfig, g int) (bench3Point, error) {
	cycles := bench3Cycles(g)
	p := bench3Point{
		Backend:    string(cfg.Backend),
		Shards:     cfg.Shards,
		Goroutines: g,
		Capacity:   cfg.Capacity,
		Cycles:     cycles,
	}
	if p.Backend == "" {
		p.Backend = string(shmrename.ArenaLevel)
	}
	var best time.Duration
	for run := 0; run < bench3Runs; run++ {
		arena, err := shmrename.NewArena(cfg)
		if err != nil {
			return p, err
		}
		p.NameBound = arena.NameBound()
		var maxName, fullRetries atomic.Int64
		var firstErr atomic.Pointer[error]
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < g; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				top := int64(-1)
				for c := 0; c < cycles; c++ {
					var n int
					for {
						var err error
						n, err = arena.Acquire()
						if err == nil {
							break
						}
						// Transient full under racing churn: back off and
						// retry; it is counted, not fatal.
						fullRetries.Add(1)
						runtime.Gosched()
					}
					if int64(n) > top {
						top = int64(n)
					}
					runtime.Gosched() // hold the name while others run
					if err := arena.Release(n); err != nil {
						firstErr.CompareAndSwap(nil, &err)
						return
					}
				}
				for {
					cur := maxName.Load()
					if top <= cur || maxName.CompareAndSwap(cur, top) {
						break
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		if e := firstErr.Load(); e != nil {
			return p, *e
		}
		if held := arena.Held(); held != 0 {
			return p, fmt.Errorf("%d names held after drain", held)
		}
		if run == 0 || elapsed < best {
			best = elapsed
			// Rate fields describe the recorded (best) run only.
			p.FullRetries = fullRetries.Load()
		}
		if m := maxName.Load(); m > p.MaxName {
			p.MaxName = m
		}
	}
	p.Acquires = int64(g) * int64(cycles)
	p.NsPerAcquire = float64(best.Nanoseconds()) / float64(p.Acquires)
	p.KAcqPerSec = float64(p.Acquires) / best.Seconds() / 1e3
	return p, nil
}

// runBench3 measures the native scalability sweep and writes the JSON file.
func runBench3(path string, seed uint64, maxG int) error {
	if maxG < 4 || maxG > 4096 {
		return fmt.Errorf("bench3: -bench3-maxg %d must lie in [4, 4096]", maxG)
	}
	out := bench3File{
		Description: fmt.Sprintf("native arena scalability under tight provisioning: G goroutines churn a capacity-G arena (acquire/yield/release), single level-array backend vs the sharded frontend sweeping shard counts; best of %d runs per cell; regenerate with: renamebench -bench3 %s", bench3Runs, path),
		GoOS:        runtime.GOOS,
		GoArch:      runtime.GOARCH,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Seed:        seed,
	}
	single := make(map[int]float64)
	bestShards := make(map[int]int)
	bestKAcqS := make(map[int]float64)
	var gs []int
	for g := 4; g <= maxG; g *= 4 {
		gs = append(gs, g)
	}
	for _, g := range gs {
		cells := []shmrename.ArenaConfig{
			{Capacity: g, Backend: shmrename.ArenaLevel, Seed: seed},
		}
		for _, s := range []int{1, 2, 4, 8} {
			if s > g {
				continue
			}
			cells = append(cells, shmrename.ArenaConfig{
				Capacity: g,
				Backend:  shmrename.ArenaBackendSharded,
				Shards:   s,
				Seed:     seed,
			})
		}
		for _, cfg := range cells {
			p, err := bench3Cell(cfg, g)
			if err != nil {
				return fmt.Errorf("bench3 %s shards=%d g=%d: %w", cfg.Backend, cfg.Shards, g, err)
			}
			out.Results = append(out.Results, p)
			if cfg.Backend == shmrename.ArenaLevel {
				single[g] = p.KAcqPerSec
			}
			if cfg.Backend == shmrename.ArenaBackendSharded && p.KAcqPerSec > bestKAcqS[g] {
				bestKAcqS[g] = p.KAcqPerSec
				bestShards[g] = cfg.Shards
			}
			fmt.Fprintf(os.Stderr, "bench3: %-11s shards=%d g=%-4d: %8.1f kacq/s, %6.1f ns/acquire, max name %d/%d\n",
				p.Backend, p.Shards, g, p.KAcqPerSec, p.NsPerAcquire, p.MaxName, p.NameBound)
		}
	}
	for _, g := range gs {
		out.Speedups = append(out.Speedups, bench3Speedup{
			Goroutines:  g,
			SingleKAcqS: single[g],
			BestShards:  bestShards[g],
			BestKAcqS:   bestKAcqS[g],
			Speedup:     bestKAcqS[g] / single[g],
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
