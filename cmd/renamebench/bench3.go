package main

// BENCH_3.json generation: native scalability of the public long-lived
// arena, single backend vs the sharded frontend. The workload is tight
// provisioning — the arena's capacity equals the goroutine count, the way
// a slot table is sized to its worker fleet — with every goroutine cycling
// acquire / hold (yield) / release, so the arena runs at full occupancy
// and every acquire searches for one of the few transiently free slots.
//
// Before the word-granular claim engine this regime degenerated the single
// level-array to an O(capacity) per-bit backstop scan per acquire, which
// the sharded frontend beat by scanning only its home shard. The word
// engine (the public arena's default probe mode) collapsed that structural
// cost to ~1 shared-memory access per acquire for single and sharded
// alike — the steps_per_acquire column records it — so on the 1-vCPU
// builder the sweep now shows parity between the rows; what striping still
// buys is disjoint cache traffic on real cores, which this builder cannot
// observe. Subsequent perf PRs regenerate the file with -bench3 and gate
// on the steps column via -bench3-against.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"shmrename"
)

// bench3Point is one measured (backend, shards, goroutines) cell.
type bench3Point struct {
	Backend      string  `json:"backend"`
	Shards       int     `json:"shards"` // 0 = unsharded single backend
	Goroutines   int     `json:"goroutines"`
	Capacity     int     `json:"capacity"`
	Cycles       int     `json:"cycles"`
	Acquires     int64   `json:"acquires"`
	NsPerAcquire float64 `json:"ns_per_acquire"`
	KAcqPerSec   float64 `json:"kacq_per_sec"`
	// StepsPerAcquire is the mean shared-memory accesses per successful
	// acquire of the recorded run (Arena.Stats): the machine-independent
	// structural cost the -bench3-against gate compares.
	StepsPerAcquire float64 `json:"steps_per_acquire"`
	MaxName         int64   `json:"max_name"`
	NameBound       int     `json:"name_bound"`
	FullRetries     int64   `json:"full_retries"`
}

// bench3Speedup summarizes the headline comparison per goroutine count:
// the best sharded cell of the shard-count sweep against the single
// backend (picking the stripe count is part of deploying the sharded
// frontend, exactly like picking Capacity).
type bench3Speedup struct {
	Goroutines  int     `json:"goroutines"`
	SingleKAcqS float64 `json:"single_kacq_per_sec"`
	BestShards  int     `json:"best_shards"`
	BestKAcqS   float64 `json:"best_sharded_kacq_per_sec"`
	Speedup     float64 `json:"speedup"`
}

type bench3File struct {
	Description string          `json:"description"`
	GoOS        string          `json:"goos"`
	GoArch      string          `json:"goarch"`
	GoMaxProcs  int             `json:"gomaxprocs"`
	Seed        uint64          `json:"seed"`
	Results     []bench3Point   `json:"results"`
	Speedups    []bench3Speedup `json:"speedups"`
}

// bench3Runs is the number of timed runs per cell; the best is recorded
// (least scheduler noise on a shared builder).
const bench3Runs = 5

// bench3Cycles sizes the per-worker cycle count so each timed run performs
// roughly the same total work regardless of the goroutine count.
func bench3Cycles(g int) int {
	c := 1 << 17 / g
	if c < 256 {
		c = 256
	}
	return c
}

// bench3Cell measures one tightly provisioned arena configuration: G
// goroutines on a capacity-G arena, each cycling acquire / yield-while-
// holding / release.
func bench3Cell(cfg shmrename.ArenaConfig, g int) (bench3Point, error) {
	cycles := bench3Cycles(g)
	p := bench3Point{
		Backend:    string(cfg.Backend),
		Shards:     cfg.Shards,
		Goroutines: g,
		Capacity:   cfg.Capacity,
		Cycles:     cycles,
	}
	if p.Backend == "" {
		p.Backend = string(shmrename.ArenaLevel)
	}
	var best time.Duration
	for run := 0; run < bench3Runs; run++ {
		arena, err := shmrename.NewArena(cfg)
		if err != nil {
			return p, err
		}
		p.NameBound = arena.NameBound()
		var maxName, fullRetries atomic.Int64
		var firstErr atomic.Pointer[error]
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < g; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				top := int64(-1)
				for c := 0; c < cycles; c++ {
					var n int
					for {
						var err error
						n, err = arena.Acquire()
						if err == nil {
							break
						}
						// Transient full under racing churn: back off and
						// retry; it is counted, not fatal.
						fullRetries.Add(1)
						runtime.Gosched()
					}
					if int64(n) > top {
						top = int64(n)
					}
					runtime.Gosched() // hold the name while others run
					if err := arena.Release(n); err != nil {
						firstErr.CompareAndSwap(nil, &err)
						return
					}
				}
				for {
					cur := maxName.Load()
					if top <= cur || maxName.CompareAndSwap(cur, top) {
						break
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		if e := firstErr.Load(); e != nil {
			return p, *e
		}
		if held := arena.Held(); held != 0 {
			return p, fmt.Errorf("%d names held after drain", held)
		}
		if run == 0 || elapsed < best {
			best = elapsed
			// Rate fields describe the recorded (best) run only.
			p.FullRetries = fullRetries.Load()
			if st := arena.Stats(); st.Acquires > 0 {
				p.StepsPerAcquire = float64(st.AcquireSteps) / float64(st.Acquires)
			}
		}
		if m := maxName.Load(); m > p.MaxName {
			p.MaxName = m
		}
	}
	p.Acquires = int64(g) * int64(cycles)
	p.NsPerAcquire = float64(best.Nanoseconds()) / float64(p.Acquires)
	p.KAcqPerSec = float64(p.Acquires) / best.Seconds() / 1e3
	return p, nil
}

// bench3StepsTolerance and bench3StepsSlack bound the allowed growth of
// native steps/acquire against a baseline: regression iff
// cur > base*(1+tolerance) + slack. Native step counts depend on how the
// scheduler interleaves the churn (core count, load), so the bounds are
// generous — near-full occupancy the absolute values are small, and the
// regression class this gate catches (a disabled fast path, an extra scan
// round) multiplies the metric rather than nudging it.
const (
	bench3StepsTolerance = 0.35
	bench3StepsSlack     = 1.0
)

// compareBench3 checks a fresh native sweep against a baseline
// BENCH_3.json: steps/acquire may not grow beyond tolerance-plus-slack at
// any (backend, shards, goroutines) point present in both. Points whose
// baseline predates the steps column (zero value) are skipped. Wall clock
// is advisory only — CI machines vary.
func compareBench3(cur bench3File, againstPath string) error {
	data, err := os.ReadFile(againstPath)
	if err != nil {
		return fmt.Errorf("bench3: reading baseline: %w", err)
	}
	var base bench3File
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("bench3: parsing baseline %s: %w", againstPath, err)
	}
	type key struct {
		backend    string
		shards     int
		goroutines int
	}
	baseline := make(map[key]bench3Point, len(base.Results))
	for _, p := range base.Results {
		baseline[key{p.Backend, p.Shards, p.Goroutines}] = p
	}
	var regressions []string
	compared := 0
	for _, p := range cur.Results {
		b, ok := baseline[key{p.Backend, p.Shards, p.Goroutines}]
		if !ok || b.StepsPerAcquire == 0 {
			continue
		}
		compared++
		if p.StepsPerAcquire > b.StepsPerAcquire*(1+bench3StepsTolerance)+bench3StepsSlack {
			regressions = append(regressions, fmt.Sprintf(
				"%s shards=%d g=%d: steps/acquire %.2f exceeds baseline %.2f beyond %.0f%%+%.1f",
				p.Backend, p.Shards, p.Goroutines, p.StepsPerAcquire, b.StepsPerAcquire,
				bench3StepsTolerance*100, bench3StepsSlack))
		}
		fmt.Fprintf(os.Stderr, "bench3: %s shards=%d g=%d vs baseline: steps %.2f/%.2f, %8.1f/%8.1f kacq/s (advisory)\n",
			p.Backend, p.Shards, p.Goroutines, p.StepsPerAcquire, b.StepsPerAcquire, p.KAcqPerSec, b.KAcqPerSec)
	}
	if compared == 0 {
		return fmt.Errorf("bench3: no overlapping comparable points between measurement and baseline %s", againstPath)
	}
	if len(regressions) > 0 {
		msg := "bench3: steps/acquire regressed vs " + againstPath
		for _, r := range regressions {
			msg += "\n  " + r
		}
		return errors.New(msg)
	}
	fmt.Fprintf(os.Stderr, "bench3: %d points within %.0f%%+%.1f of baseline %s\n",
		compared, bench3StepsTolerance*100, bench3StepsSlack, againstPath)
	return nil
}

// runBench3 measures the native scalability sweep, writes the JSON file,
// and — when against is non-empty — fails on steps/acquire regressions
// versus that baseline sweep.
func runBench3(path string, seed uint64, maxG int, against string) error {
	if maxG < 4 || maxG > 4096 {
		return fmt.Errorf("bench3: -bench3-maxg %d must lie in [4, 4096]", maxG)
	}
	out := bench3File{
		Description: fmt.Sprintf("native arena scalability under tight provisioning: G goroutines churn a capacity-G arena (acquire/yield/release), single level-array backend vs the sharded frontend sweeping shard counts; best of %d runs per cell; regenerate with: renamebench -bench3 %s", bench3Runs, path),
		GoOS:        runtime.GOOS,
		GoArch:      runtime.GOARCH,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Seed:        seed,
	}
	single := make(map[int]float64)
	bestShards := make(map[int]int)
	bestKAcqS := make(map[int]float64)
	var gs []int
	for g := 4; g <= maxG; g *= 4 {
		gs = append(gs, g)
	}
	for _, g := range gs {
		cells := []shmrename.ArenaConfig{
			{Capacity: g, Backend: shmrename.ArenaLevel, Seed: seed},
		}
		for _, s := range []int{1, 2, 4, 8} {
			if s > g {
				continue
			}
			cells = append(cells, shmrename.ArenaConfig{
				Capacity: g,
				Backend:  shmrename.ArenaBackendSharded,
				Shards:   s,
				Seed:     seed,
			})
		}
		for _, cfg := range cells {
			p, err := bench3Cell(cfg, g)
			if err != nil {
				return fmt.Errorf("bench3 %s shards=%d g=%d: %w", cfg.Backend, cfg.Shards, g, err)
			}
			out.Results = append(out.Results, p)
			if cfg.Backend == shmrename.ArenaLevel {
				single[g] = p.KAcqPerSec
			}
			if cfg.Backend == shmrename.ArenaBackendSharded && p.KAcqPerSec > bestKAcqS[g] {
				bestKAcqS[g] = p.KAcqPerSec
				bestShards[g] = cfg.Shards
			}
			fmt.Fprintf(os.Stderr, "bench3: %-11s shards=%d g=%-4d: %8.1f kacq/s, %6.1f ns/acquire, %5.2f steps/acquire, max name %d/%d\n",
				p.Backend, p.Shards, g, p.KAcqPerSec, p.NsPerAcquire, p.StepsPerAcquire, p.MaxName, p.NameBound)
		}
	}
	for _, g := range gs {
		out.Speedups = append(out.Speedups, bench3Speedup{
			Goroutines:  g,
			SingleKAcqS: single[g],
			BestShards:  bestShards[g],
			BestKAcqS:   bestKAcqS[g],
			Speedup:     bestKAcqS[g] / single[g],
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if against != "" {
		return compareBench3(out, against)
	}
	return nil
}
