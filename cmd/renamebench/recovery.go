package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"shmrename"
)

// runRecoverySmoke is the native crash-recovery smoke behind
// -recovery-smoke: real goroutines abandon held names on every in-process
// backend and the lease sweep must return them to the pool, then an
// mmap-backed arena is detached with names held and a second handle must
// recover them. It is the fast end-to-end complement of the deterministic
// E18 fault-injection experiment — seconds of wall time, suitable for CI.
func runRecoverySmoke(seed uint64) error {
	for _, backend := range []shmrename.ArenaBackend{
		shmrename.ArenaLevel, shmrename.ArenaTau, shmrename.ArenaBackendSharded,
	} {
		if err := smokeBackend(backend, seed); err != nil {
			return err
		}
	}
	return smokeMmap(seed)
}

// smokeBackend abandons names from real goroutines and sweeps them back.
func smokeBackend(backend shmrename.ArenaBackend, seed uint64) error {
	const capacity, workers, perWorker = 256, 8, 8
	a, err := shmrename.NewArena(shmrename.ArenaConfig{
		Capacity: capacity,
		Backend:  backend,
		Seed:     seed,
		Lease:    &shmrename.LeaseConfig{TTL: time.Millisecond},
	})
	if err != nil {
		return err
	}
	defer a.Close()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Acquire and walk away holding everything: the goroutine
			// "crashes" by abandonment, the only crash a real runtime can
			// produce without killing the process.
			for i := 0; i < perWorker; i++ {
				if _, err := a.Acquire(); err != nil {
					panic(err)
				}
			}
		}()
	}
	wg.Wait()
	abandoned := a.Held()
	time.Sleep(10 * time.Millisecond) // let every lease lapse
	reclaimed := a.SweepStale()
	if reclaimed != abandoned || a.Held() != 0 {
		return fmt.Errorf("recovery-smoke %s: reclaimed %d of %d abandoned names, %d still held",
			backend, reclaimed, abandoned, a.Held())
	}
	// The pool must be whole again.
	names, err := a.AcquireN(capacity)
	if err != nil {
		return fmt.Errorf("recovery-smoke %s: pool not whole after sweep: %w", backend, err)
	}
	if err := a.ReleaseAll(names); err != nil {
		return fmt.Errorf("recovery-smoke %s: %w", backend, err)
	}
	fmt.Printf("recovery-smoke %-14s abandoned=%d reclaimed=%d reacquired=%d ok\n",
		backend, abandoned, reclaimed, len(names))
	return nil
}

// smokeMmap detaches an mmap-backed arena with names held; the next handle
// must see them, and — with a hostile liveness oracle standing in for a
// dead process — sweep them back.
func smokeMmap(seed uint64) error {
	dir, err := os.MkdirTemp("", "renamebench-recovery")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "ns")
	dead := func(uint64) bool { return false }
	cfg := shmrename.ArenaConfig{
		Capacity: 256,
		Seed:     seed,
		Lease:    &shmrename.LeaseConfig{TTL: time.Millisecond, Alive: dead},
	}
	a, err := shmrename.OpenArena(path, cfg)
	if err != nil {
		return fmt.Errorf("recovery-smoke mmap: %w", err)
	}
	names, err := a.AcquireN(32)
	if err != nil {
		return err
	}
	if err := a.Close(); err != nil {
		return err
	}

	time.Sleep(10 * time.Millisecond)
	b, err := shmrename.OpenArena(path, cfg)
	if err != nil {
		return fmt.Errorf("recovery-smoke mmap reattach: %w", err)
	}
	defer b.Close()
	b.SweepStale() // the open-time sweep may already have recovered them
	if held := b.Held(); held != 0 {
		return fmt.Errorf("recovery-smoke mmap: %d abandoned names still held after sweep", held)
	}
	st := b.Stats()
	if st.Reclaimed != int64(len(names)) {
		return fmt.Errorf("recovery-smoke mmap: reclaimed %d of %d", st.Reclaimed, len(names))
	}
	got, err := b.AcquireN(256)
	if err != nil {
		return fmt.Errorf("recovery-smoke mmap: pool not whole: %w", err)
	}
	fmt.Printf("recovery-smoke %-14s abandoned=%d reclaimed=%d reacquired=%d ok\n",
		"mmap", len(names), st.Reclaimed, len(got))
	return nil
}
