package main

// BENCH_5.json generation: the open-loop latency trajectory. Four
// sections share the file:
//
//   - open_loop: clock-driven Poisson and bursty arrival streams at a
//     fixed offered rate against the public Arena API, one cell per
//     (backend, arrival shape). Latency is measured from the *scheduled*
//     arrival to completion (coordinated-omission-free): an arena stall
//     is charged to every arrival it delays, not just the one that hit
//     it. Quantiles come from the mergeable log-bucketed
//     metrics.Histogram (<= 1/32 relative error).
//   - saturation: the same open-loop generator swept across offered
//     rates; a point "sustains" when achieved >= 90% of offered
//     (openloop.KneeFraction).
//   - knees: the last sustained rate per backend — the throughput knee.
//   - closed_loop: per-acquire latency histograms at g=64 for the three
//     regimes the lease-cache story contrasts: the uncached sharded word
//     path under tight provisioning (capacity = 1.25x g, below the
//     workload's peak demand), the same uncached path provisioned wide,
//     and the provisioned path behind ArenaConfig.LeaseBlocks word-block
//     caches. All three cells run the identical hold-two churn.
//
// The headline gate checked at generation time: the cached fast path's
// acquire p99 must improve on the tight-provisioned uncached sharded
// word path at g=64 by >= 5x (bench5P99Target). Wall-clock numbers are
// machine-dependent; regenerate with
//
//	renamebench -bench5 BENCH_5.json
//
// and gate regressions against a same-machine baseline with
// -bench5-against (tolerance in PERF.md §"Regenerating BENCH_5.json").

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"shmrename"
	"shmrename/internal/metrics"
	"shmrename/internal/openloop"
)

// bench5OpenCap provisions the open-loop arenas well above the in-flight
// population so the sections measure serving cost, not admission control.
const bench5OpenCap = 4096

// bench5Backends enumerates the public-API arena variants the open-loop
// sections sweep. The cached variant leases 64-name blocks per worker.
func bench5Backends(seed uint64) []struct {
	Name string
	Cfg  shmrename.ArenaConfig
} {
	return []struct {
		Name string
		Cfg  shmrename.ArenaConfig
	}{
		{"level-word", shmrename.ArenaConfig{
			Capacity: bench5OpenCap, Seed: seed}},
		{"sharded-word", shmrename.ArenaConfig{
			Capacity: bench5OpenCap, Backend: shmrename.ArenaBackendSharded,
			Shards: 4, Seed: seed}},
		{"sharded-word+cache", shmrename.ArenaConfig{
			Capacity: bench5OpenCap, Backend: shmrename.ArenaBackendSharded,
			Shards: 4, LeaseBlocks: 64, Seed: seed}},
	}
}

// bench5OpenPoint is one open-loop (backend, arrival, rate) cell.
type bench5OpenPoint struct {
	Backend        string  `json:"backend"`
	Arrival        string  `json:"arrival"`
	RatePerSec     float64 `json:"rate_per_sec"`
	Offered        int     `json:"offered"`
	Served         int     `json:"served"`
	Dropped        int     `json:"dropped"`
	AchievedPerSec float64 `json:"achieved_per_sec"`
	P50Ns          int64   `json:"p50_ns"`
	P99Ns          int64   `json:"p99_ns"`
	P999Ns         int64   `json:"p999_ns"`
	MeanNs         float64 `json:"mean_ns"`
}

// bench5SweepPoint is one saturation-sweep (backend, rate) cell.
type bench5SweepPoint struct {
	Backend        string  `json:"backend"`
	RatePerSec     float64 `json:"rate_per_sec"`
	AchievedPerSec float64 `json:"achieved_per_sec"`
	P99Ns          int64   `json:"p99_ns"`
	Sustained      bool    `json:"sustained"`
}

// bench5Knee is the throughput knee of one backend.
type bench5Knee struct {
	Backend        string  `json:"backend"`
	KneeRatePerSec float64 `json:"knee_rate_per_sec"`
	AchievedPerSec float64 `json:"achieved_per_sec"`
}

// bench5ClosedPoint is one closed-loop per-acquire latency cell at g=64.
type bench5ClosedPoint struct {
	Cell            string  `json:"cell"`
	Capacity        int     `json:"capacity"`
	LeaseBlocks     int     `json:"lease_blocks"`
	Goroutines      int     `json:"goroutines"`
	Ops             int64   `json:"ops"`
	P50Ns           int64   `json:"p50_ns"`
	P99Ns           int64   `json:"p99_ns"`
	P999Ns          int64   `json:"p999_ns"`
	MeanNs          float64 `json:"mean_ns"`
	StepsPerAcquire float64 `json:"steps_per_acquire"`
}

type bench5File struct {
	Description    string              `json:"description"`
	GoOS           string              `json:"goos"`
	GoArch         string              `json:"goarch"`
	GoMaxProcs     int                 `json:"gomaxprocs"`
	Seed           uint64              `json:"seed"`
	Arrivals       int                 `json:"arrivals_per_cell"`
	OpenLoop       []bench5OpenPoint   `json:"open_loop"`
	Saturation     []bench5SweepPoint  `json:"saturation"`
	Knees          []bench5Knee        `json:"knees"`
	ClosedLoop     []bench5ClosedPoint `json:"closed_loop"`
	P99Improvement float64             `json:"cache_p99_improvement_vs_tight_uncached"`
	TargetMet      bool                `json:"cache_p99_5x_target_met"`
}

// bench5P99Target is the headline gate: cached fast-path acquire p99 must
// be at least this factor below the tight-provisioned uncached sharded
// word path at the same goroutine count.
const bench5P99Target = 5.0

// bench5Workers is the open-loop generator's worker count: enough to keep
// arrivals flowing while one worker sits inside a slow acquire.
const bench5Workers = 4

// bench5OpenRuns is the per-cell repeat count: the run with the lowest
// p99 is recorded. Open-loop p99 is the victim of any multi-ms stall the
// host injects (VM steal, cron, unrelated load) during a ~100ms cell;
// taking the best run keeps the recorded artifact about the arena, while
// a genuine code regression slows every run alike.
const bench5OpenRuns = 3

// bench5Open measures one open-loop cell, best of bench5OpenRuns runs
// against fresh arenas.
func bench5Open(name string, cfg shmrename.ArenaConfig, shape openloop.Arrival, rate float64, arrivals int, seed uint64) (bench5OpenPoint, error) {
	var best openloop.Result
	for run := 0; run < bench5OpenRuns; run++ {
		arena, err := shmrename.NewArena(cfg)
		if err != nil {
			return bench5OpenPoint{}, err
		}
		res := openloop.Run(arena, openloop.Config{
			Rate:     rate,
			Arrivals: arrivals,
			Workers:  bench5Workers,
			Arrival:  shape,
			Seed:     seed,
		})
		arena.Close()
		if res.Served+res.Dropped != res.Offered {
			return bench5OpenPoint{}, fmt.Errorf("%s/%s: served %d + dropped %d != offered %d",
				name, shape, res.Served, res.Dropped, res.Offered)
		}
		if run == 0 || res.Latency.Quantile(0.99) < best.Latency.Quantile(0.99) {
			best = res
		}
	}
	return bench5OpenPoint{
		Backend:        name,
		Arrival:        shape.String(),
		RatePerSec:     rate,
		Offered:        best.Offered,
		Served:         best.Served,
		Dropped:        best.Dropped,
		AchievedPerSec: best.AchievedRate,
		P50Ns:          best.Latency.Quantile(0.50),
		P99Ns:          best.Latency.Quantile(0.99),
		P999Ns:         best.Latency.Quantile(0.999),
		MeanNs:         best.Latency.Mean(),
	}, nil
}

// bench5Closed measures one closed-loop cell: g goroutines churn the
// arena holding two names each (acquire, acquire, release, release, with
// yields between), timing every acquire — retry-until-success included:
// under tight provisioning peak demand (2g) exceeds capacity, so the wait
// for another worker's release IS the tail latency — into private
// histograms merged after the drain.
func bench5Closed(cell string, cfg shmrename.ArenaConfig, g, opsPerG int) (bench5ClosedPoint, error) {
	arena, err := shmrename.NewArena(cfg)
	if err != nil {
		return bench5ClosedPoint{}, err
	}
	defer arena.Close()
	parts := make([]metrics.Histogram, g)
	errs := make([]error, g)
	timedAcquire := func(h *metrics.Histogram) int {
		start := time.Now()
		for {
			n, err := arena.Acquire()
			if err == nil {
				h.Record(time.Since(start).Nanoseconds())
				return n
			}
			runtime.Gosched()
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for op := 0; op < opsPerG; op++ {
				a := timedAcquire(&parts[w])
				runtime.Gosched()
				b := timedAcquire(&parts[w])
				runtime.Gosched()
				if err := arena.Release(a); err != nil {
					errs[w] = err
					return
				}
				runtime.Gosched()
				if err := arena.Release(b); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return bench5ClosedPoint{}, err
		}
	}
	if held := arena.Held(); held != 0 {
		return bench5ClosedPoint{}, fmt.Errorf("%s: %d names held after drain", cell, held)
	}
	var h metrics.Histogram
	for w := range parts {
		h.Merge(&parts[w])
	}
	st := arena.Stats()
	return bench5ClosedPoint{
		Cell:            cell,
		Capacity:        cfg.Capacity,
		LeaseBlocks:     cfg.LeaseBlocks,
		Goroutines:      g,
		Ops:             int64(h.Count()),
		P50Ns:           h.Quantile(0.50),
		P99Ns:           h.Quantile(0.99),
		P999Ns:          h.Quantile(0.999),
		MeanNs:          h.Mean(),
		StepsPerAcquire: float64(st.AcquireSteps) / float64(st.Acquires),
	}, nil
}

// bench5P99Tolerance and bench5P99Slack bound the allowed growth of a p99
// cell against a baseline: regression iff
// cur > base*(1+tolerance) + slack. Open-loop p99 folds in queueing and
// scheduler jitter, so the bounds are deliberately loose — the regression
// class this gate catches (a disabled fast path, an accidental lock on
// the acquire path) shifts p99 by an order of magnitude, not 50%.
const (
	bench5P99Tolerance = 2.0
	bench5P99Slack     = 200_000 // ns
)

// compareBench5 checks a fresh run against a baseline BENCH_5.json: the
// open-loop and closed-loop p99 cells present in both may not grow beyond
// tolerance-plus-slack, and the 5x headline target must still hold.
func compareBench5(cur bench5File, againstPath string) error {
	data, err := os.ReadFile(againstPath)
	if err != nil {
		return fmt.Errorf("bench5: reading baseline: %w", err)
	}
	var base bench5File
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("bench5: parsing baseline %s: %w", againstPath, err)
	}
	var regressions []string
	compared := 0
	check := func(label string, cur, base int64) {
		if base == 0 {
			return
		}
		compared++
		if float64(cur) > float64(base)*(1+bench5P99Tolerance)+bench5P99Slack {
			regressions = append(regressions, fmt.Sprintf(
				"%s: p99 %dns exceeds baseline %dns beyond %.0f%%+%dns",
				label, cur, base, bench5P99Tolerance*100, int64(bench5P99Slack)))
		}
		fmt.Fprintf(os.Stderr, "bench5: %s vs baseline: p99 %d/%d ns\n", label, cur, base)
	}
	baseOpen := map[string]bench5OpenPoint{}
	for _, p := range base.OpenLoop {
		baseOpen[p.Backend+"/"+p.Arrival] = p
	}
	for _, p := range cur.OpenLoop {
		if b, ok := baseOpen[p.Backend+"/"+p.Arrival]; ok && b.RatePerSec == p.RatePerSec {
			check("open "+p.Backend+"/"+p.Arrival, p.P99Ns, b.P99Ns)
		}
	}
	baseClosed := map[string]bench5ClosedPoint{}
	for _, p := range base.ClosedLoop {
		baseClosed[p.Cell] = p
	}
	for _, p := range cur.ClosedLoop {
		if b, ok := baseClosed[p.Cell]; ok && b.Goroutines == p.Goroutines {
			check("closed "+p.Cell, p.P99Ns, b.P99Ns)
		}
	}
	if compared == 0 {
		return fmt.Errorf("bench5: no overlapping comparable points between measurement and baseline %s", againstPath)
	}
	if len(regressions) > 0 {
		msg := "bench5: p99 regressed vs " + againstPath
		for _, r := range regressions {
			msg += "\n  " + r
		}
		return errors.New(msg)
	}
	fmt.Fprintf(os.Stderr, "bench5: %d p99 cells within %.0f%%+%dns of baseline %s\n",
		compared, bench5P99Tolerance*100, int64(bench5P99Slack), againstPath)
	return nil
}

// runBench5 measures the open-loop latency trajectory, writes the JSON
// file, and fails when the cached fast path misses its 5x p99 target —
// or, with a baseline, when any p99 cell regressed beyond tolerance.
func runBench5(path string, seed uint64, rate float64, arrivals int, against string) error {
	if rate < 1e3 || rate > 1e8 {
		return fmt.Errorf("bench5: -bench5-rate %g must lie in [1e3, 1e8]", rate)
	}
	if arrivals < 1000 || arrivals > 1<<22 {
		return fmt.Errorf("bench5: -bench5-arrivals %d must lie in [1000, %d]", arrivals, 1<<22)
	}
	out := bench5File{
		Description: "open-loop latency trajectory: open_loop = Poisson/bursty arrival at a fixed rate against the public Arena API, latency from scheduled arrival (coordinated-omission-free); saturation/knees = offered-rate sweep, knee = last rate sustained at >= 90%; closed_loop = per-acquire p99 at g=64 for tight-uncached vs provisioned-uncached vs provisioned word-block lease caches; regenerate with: renamebench -bench5 " + path,
		GoOS:        runtime.GOOS,
		GoArch:      runtime.GOARCH,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Seed:        seed,
		Arrivals:    arrivals,
	}

	// Section 1: fixed-rate open loop, both arrival shapes.
	for _, b := range bench5Backends(seed) {
		for _, shape := range []openloop.Arrival{openloop.Poisson, openloop.Bursty} {
			p, err := bench5Open(b.Name, b.Cfg, shape, rate, arrivals, seed)
			if err != nil {
				return fmt.Errorf("bench5: %w", err)
			}
			out.OpenLoop = append(out.OpenLoop, p)
			fmt.Fprintf(os.Stderr, "bench5: open %-18s %-7s rate=%-8.0f: p50=%-6d p99=%-8d p999=%-8d ns (achieved %.0f/s, dropped %d)\n",
				p.Backend, p.Arrival, rate, p.P50Ns, p.P99Ns, p.P999Ns, p.AchievedPerSec, p.Dropped)
		}
	}

	// Section 2+3: saturation sweep and knees (Poisson arrivals).
	sweepRates := []float64{1e5, 2.5e5, 5e5, 1e6, 2e6, 4e6}
	for _, b := range bench5Backends(seed) {
		arena, err := shmrename.NewArena(b.Cfg)
		if err != nil {
			return fmt.Errorf("bench5: %w", err)
		}
		points := openloop.Sweep(arena, openloop.Config{
			Arrivals: arrivals,
			Workers:  bench5Workers,
			Seed:     seed,
		}, sweepRates)
		k := openloop.Knee(points)
		arena.Close()
		if k < 0 {
			return fmt.Errorf("bench5: %s below the knee even at %g/s", b.Name, sweepRates[0])
		}
		for _, pt := range points {
			out.Saturation = append(out.Saturation, bench5SweepPoint{
				Backend:        b.Name,
				RatePerSec:     pt.Rate,
				AchievedPerSec: pt.AchievedRate,
				P99Ns:          pt.Latency.Quantile(0.99),
				Sustained:      pt.AchievedRate >= openloop.KneeFraction*pt.Rate,
			})
		}
		out.Knees = append(out.Knees, bench5Knee{
			Backend:        b.Name,
			KneeRatePerSec: points[k].Rate,
			AchievedPerSec: points[k].AchievedRate,
		})
		fmt.Fprintf(os.Stderr, "bench5: knee %-18s: %8.0f offered, %8.0f achieved\n",
			b.Name, points[k].Rate, points[k].AchievedRate)
	}

	// Section 4: closed-loop per-acquire latency at g=64 — the lease-cache
	// headline comparison. All three cells run the identical hold-two
	// workload; they differ only in provisioning and caching. Tight =
	// 1.25x the goroutine count: capacity covers the mean demand (one
	// name per worker) with headroom but not the peak (two per worker),
	// so uncached acquires wait for other workers' releases at every
	// demand peak — that wait is the tail the lease cache deletes.
	const closedG, closedOps = 64, 2000
	closed := []struct {
		cell string
		cfg  shmrename.ArenaConfig
	}{
		{"tight-uncached", shmrename.ArenaConfig{
			Capacity: 5 * closedG / 4, Backend: shmrename.ArenaBackendSharded,
			Shards: 4, Seed: seed}},
		{"provisioned-uncached", shmrename.ArenaConfig{
			Capacity: bench5OpenCap, Backend: shmrename.ArenaBackendSharded,
			Shards: 4, Seed: seed}},
		{"provisioned-cached", shmrename.ArenaConfig{
			Capacity: bench5OpenCap, Backend: shmrename.ArenaBackendSharded,
			Shards: 4, LeaseBlocks: 64, Seed: seed}},
	}
	for _, c := range closed {
		p, err := bench5Closed(c.cell, c.cfg, closedG, closedOps)
		if err != nil {
			return fmt.Errorf("bench5: %s: %w", c.cell, err)
		}
		out.ClosedLoop = append(out.ClosedLoop, p)
		fmt.Fprintf(os.Stderr, "bench5: closed %-20s g=%d: p50=%-6d p99=%-8d p999=%-8d ns, %5.2f steps/acquire\n",
			c.cell, closedG, p.P50Ns, p.P99Ns, p.P999Ns, p.StepsPerAcquire)
	}
	tight, cached := out.ClosedLoop[0], out.ClosedLoop[2]
	if cached.P99Ns > 0 {
		out.P99Improvement = float64(tight.P99Ns) / float64(cached.P99Ns)
	}
	out.TargetMet = out.P99Improvement >= bench5P99Target
	fmt.Fprintf(os.Stderr, "bench5: cache p99 improvement vs tight-uncached: %.1fx (target %.0fx)\n",
		out.P99Improvement, bench5P99Target)

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if !out.TargetMet {
		return fmt.Errorf("bench5: cached p99 improvement %.1fx below the %.0fx target (see %s)",
			out.P99Improvement, bench5P99Target, path)
	}
	if against != "" {
		return compareBench5(out, against)
	}
	return nil
}
