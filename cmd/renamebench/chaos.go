package main

import (
	"fmt"

	"shmrename/internal/harness"
)

// runChaos is the CI chaos gate behind -chaos: it runs the E21 corruption
// matrix (and, on unix, the namespace-file chaos rows), prints the report
// tables, and writes the machine-readable accounting JSON to path — the
// artifact the chaos job uploads, so containment regressions diff as
// numbers rather than only failing assertions.
func runChaos(path string, seed uint64, trials int) error {
	rep, tables := harness.RunChaos(harness.Config{Seed: seed, Trials: trials})
	for _, tab := range tables {
		fmt.Println(tab.Render())
	}
	for _, cell := range rep.Cells {
		if cell.Unrepaired != 0 || cell.DuplicateGrants != 0 || !cell.ScrubIdle {
			return fmt.Errorf("chaos gate: backend %s n=%d unrepaired=%d duplicates=%d idle=%v",
				cell.Backend, cell.Capacity, cell.Unrepaired, cell.DuplicateGrants, cell.ScrubIdle)
		}
	}
	if err := rep.WriteJSON(path); err != nil {
		return err
	}
	return nil
}
