package main

// BENCH_4.json generation: the word-granular claim engine trajectory. Two
// sections share the file:
//
//   - sim: the deterministic E17 matrix — word-path vs probe-path steps per
//     acquire across batch sizes under tight provisioning (k x batch =
//     capacity, full occupancy). Machine-independent; the "speedups"
//     summary records the word path's reduction factor per cell and the
//     headline target (>= 2x for the level backend) is checked at
//     generation time.
//   - native: the public-API tight-provisioning churn of BENCH_3, run in
//     both probe modes (ArenaConfig.Probe) on the single level backend and
//     the sharded frontend, recording wall clock and the steps/acquire
//     carried by Arena.Stats.
//
// Subsequent perf PRs regenerate the file with -bench4; the sim section's
// word rows must not regress (they are deterministic), and the golden
// fingerprint tests pin that the probe path itself stayed bit-identical.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"shmrename"
	"shmrename/internal/longlived"
	"shmrename/internal/sched"
)

// bench4SimPoint is one deterministic (backend, scan, n, batch) cell.
type bench4SimPoint struct {
	Backend         string  `json:"backend"`
	Scan            string  `json:"scan"`
	N               int     `json:"n"`
	Batch           int     `json:"batch"`
	Workers         int     `json:"workers"`
	StepsPerAcquire float64 `json:"steps_per_acquire"`
	MaxName         int64   `json:"max_name"`
	MaxActive       int64   `json:"max_active"`
	Acquires        int64   `json:"acquires"`
}

// bench4Speedup is the word-vs-bit reduction of one (backend, n, batch).
type bench4Speedup struct {
	Backend   string  `json:"backend"`
	N         int     `json:"n"`
	Batch     int     `json:"batch"`
	BitSteps  float64 `json:"bit_steps_per_acquire"`
	WordSteps float64 `json:"word_steps_per_acquire"`
	Reduction float64 `json:"reduction"`
}

// bench4NativePoint is one native public-API (backend, probe, g) cell.
type bench4NativePoint struct {
	Backend         string  `json:"backend"`
	Probe           string  `json:"probe"`
	Shards          int     `json:"shards"`
	Goroutines      int     `json:"goroutines"`
	Cycles          int     `json:"cycles"`
	StepsPerAcquire float64 `json:"steps_per_acquire"`
	NsPerAcquire    float64 `json:"ns_per_acquire"`
	KAcqPerSec      float64 `json:"kacq_per_sec"`
}

type bench4File struct {
	Description string              `json:"description"`
	GoOS        string              `json:"goos"`
	GoArch      string              `json:"goarch"`
	GoMaxProcs  int                 `json:"gomaxprocs"`
	Seed        uint64              `json:"seed"`
	Sim         []bench4SimPoint    `json:"sim"`
	Speedups    []bench4Speedup     `json:"speedups"`
	Native      []bench4NativePoint `json:"native"`
	TargetMet   bool                `json:"level_reduction_target_2x_met"`
}

// bench4SimTrials is the seeded-trial count per deterministic cell.
const bench4SimTrials = 5

// bench4Sim measures one deterministic cell on the simulator.
func bench4Sim(backend string, wordScan bool, n, batch int, seed uint64) bench4SimPoint {
	scan := "bit"
	if wordScan {
		scan = "word"
	}
	k := n / batch
	p := bench4SimPoint{Backend: backend, Scan: scan, N: n, Batch: batch, Workers: k}
	churn := longlived.ChurnConfig{Cycles: 4, HoldMin: 0, HoldMax: 8}
	var steps float64
	for t := 0; t < bench4SimTrials; t++ {
		var arena longlived.Arena
		switch backend {
		case "level-array":
			arena = longlived.NewLevel(n, longlived.LevelConfig{WordScan: wordScan, Label: "b4-" + scan})
		case "tau-longlived":
			arena = longlived.NewTau(n, longlived.TauConfig{WordScan: wordScan, SelfClocked: true, Label: "b4t-" + scan})
		default:
			panic("bench4: unknown backend " + backend)
		}
		mon := longlived.NewMonitor(arena.NameBound())
		sched.Run(sched.Config{
			N:         k,
			Seed:      seed + uint64(t),
			Fast:      sched.FastFIFO,
			Body:      longlived.BatchChurnBody(arena, mon, churn, batch),
			AfterStep: arena.Clock(),
		})
		if err := mon.Err(); err != nil {
			panic(fmt.Sprintf("bench4 %s/%s n=%d b=%d: %v", backend, scan, n, batch, err))
		}
		if held := arena.Held(); held != 0 {
			panic(fmt.Sprintf("bench4 %s/%s n=%d b=%d: %d names held", backend, scan, n, batch, held))
		}
		steps += mon.StepsPerAcquire()
		if m := mon.MaxName(); m > p.MaxName {
			p.MaxName = m
		}
		if a := mon.MaxActive(); a > p.MaxActive {
			p.MaxActive = a
		}
		p.Acquires += mon.Acquires()
	}
	p.StepsPerAcquire = steps / bench4SimTrials
	return p
}

// bench4NativeRuns is the timed-run count per native cell (best recorded).
const bench4NativeRuns = 3

// bench4Native measures one native public-API cell: g goroutines churning
// a capacity-g arena (acquire / yield / release), in the given probe mode.
func bench4Native(cfg shmrename.ArenaConfig, g int) (bench4NativePoint, error) {
	cycles := 1 << 15 / g
	if cycles < 128 {
		cycles = 128
	}
	p := bench4NativePoint{
		Backend:    string(cfg.Backend),
		Probe:      string(cfg.Probe),
		Shards:     cfg.Shards,
		Goroutines: g,
		Cycles:     cycles,
	}
	if p.Backend == "" {
		p.Backend = string(shmrename.ArenaLevel)
	}
	var best time.Duration
	for run := 0; run < bench4NativeRuns; run++ {
		arena, err := shmrename.NewArena(cfg)
		if err != nil {
			return p, err
		}
		var firstErr atomic.Pointer[error]
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < g; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for c := 0; c < cycles; c++ {
					var n int
					for {
						var err error
						n, err = arena.Acquire()
						if err == nil {
							break
						}
						runtime.Gosched()
					}
					runtime.Gosched()
					if err := arena.Release(n); err != nil {
						firstErr.CompareAndSwap(nil, &err)
						return
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		if e := firstErr.Load(); e != nil {
			return p, *e
		}
		if held := arena.Held(); held != 0 {
			return p, fmt.Errorf("%d names held after drain", held)
		}
		st := arena.Stats()
		if run == 0 || elapsed < best {
			best = elapsed
			p.StepsPerAcquire = float64(st.AcquireSteps) / float64(st.Acquires)
		}
	}
	acquires := int64(g) * int64(cycles)
	p.NsPerAcquire = float64(best.Nanoseconds()) / float64(acquires)
	p.KAcqPerSec = float64(acquires) / best.Seconds() / 1e3
	return p, nil
}

// runBench4 measures the word-engine trajectory and writes the JSON file.
// It fails when the headline target — >= 2x steps/acquire reduction for
// the level backend's word path at full occupancy — is not met: the sim
// section is deterministic, so a miss is a code regression, not noise.
func runBench4(path string, seed uint64, maxG int) error {
	if maxG < 4 || maxG > 4096 {
		return fmt.Errorf("bench4: -bench4-maxg %d must lie in [4, 4096]", maxG)
	}
	if f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644); err != nil {
		return err
	} else {
		f.Close()
	}
	out := bench4File{
		Description: "word-granular claim engine: sim = deterministic word-vs-bit steps/acquire across batch sizes at full occupancy (k x batch = capacity); native = public-API tight-provisioning churn per probe mode; regenerate with: renamebench -bench4 " + path,
		GoOS:        runtime.GOOS,
		GoArch:      runtime.GOARCH,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Seed:        seed,
		TargetMet:   true,
	}
	for _, n := range []int{1 << 10, 1 << 12} {
		for _, batch := range []int{1, 4, 16, 64} {
			for _, backend := range []string{"level-array", "tau-longlived"} {
				bit := bench4Sim(backend, false, n, batch, seed)
				word := bench4Sim(backend, true, n, batch, seed)
				out.Sim = append(out.Sim, bit, word)
				sp := bench4Speedup{
					Backend:   backend,
					N:         n,
					Batch:     batch,
					BitSteps:  bit.StepsPerAcquire,
					WordSteps: word.StepsPerAcquire,
					Reduction: bit.StepsPerAcquire / word.StepsPerAcquire,
				}
				out.Speedups = append(out.Speedups, sp)
				if backend == "level-array" && sp.Reduction < 2 {
					out.TargetMet = false
				}
				fmt.Fprintf(os.Stderr, "bench4: sim %-13s n=%-5d batch=%-3d: %6.2f -> %5.2f steps/acquire (%.1fx)\n",
					backend, n, batch, sp.BitSteps, sp.WordSteps, sp.Reduction)
			}
		}
	}
	for g := 4; g <= maxG; g *= 4 {
		cells := []shmrename.ArenaConfig{
			{Capacity: g, Backend: shmrename.ArenaLevel, Probe: shmrename.ProbeBit, Seed: seed},
			{Capacity: g, Backend: shmrename.ArenaLevel, Probe: shmrename.ProbeWord, Seed: seed},
			{Capacity: g, Backend: shmrename.ArenaBackendSharded, Shards: 4, Probe: shmrename.ProbeBit, Seed: seed},
			{Capacity: g, Backend: shmrename.ArenaBackendSharded, Shards: 4, Probe: shmrename.ProbeWord, Seed: seed},
		}
		for _, cfg := range cells {
			p, err := bench4Native(cfg, g)
			if err != nil {
				return fmt.Errorf("bench4 %s/%s g=%d: %w", cfg.Backend, cfg.Probe, g, err)
			}
			out.Native = append(out.Native, p)
			fmt.Fprintf(os.Stderr, "bench4: native %-11s probe=%-4s g=%-4d: %6.2f steps/acquire, %8.1f kacq/s\n",
				p.Backend, p.Probe, g, p.StepsPerAcquire, p.KAcqPerSec)
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if !out.TargetMet {
		return fmt.Errorf("bench4: level word path below the 2x steps/acquire reduction target (see %s)", path)
	}
	return nil
}
