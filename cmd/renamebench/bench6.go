package main

// BENCH_6.json generation: the elastic diurnal trajectory. Three
// sections share the file:
//
//   - diurnal: one persistent arena per variant (elastic vs the
//     peak-provisioned fixed ladder, both behind the public Arena API)
//     rides a diurnal demand ramp — live names climb from 10 to the full
//     capacity and back down, with no rebuild between phases. Each phase
//     records steps/acquire (shared-memory accesses in the paper's cost
//     model, measured on the per-TAS probe path so the structural cost is
//     machine-independent), Stats().CapacityNow/PeakCapacity, the
//     resident-bytes footprint proxy, and the phase's acquire p99
//     (wall-clock, advisory).
//   - trickle headline: at the down-leg k = capacity/64 cell the elastic
//     arena must beat the peak-provisioned fixed arena on steps/acquire
//     (its probe floor starts above levels the fixed ladder wades
//     through) and hold <= 1/8 of the fixed arena's resident bitmap
//     bytes (the proportional-memory claim; the drained ladder sits near
//     its 64-name floor while the fixed ladder keeps every level
//     resident around the clock).
//   - resize: a forced grow/shrink storm against the elastic arena —
//     native workers churn while an antagonist drives the ladder between
//     its floor and ceiling. The storm must complete with zero acquire
//     errors and a p99 bounded against the same workload without the
//     antagonist (resizes never block concurrent acquires).
//
// Wall-clock numbers are machine-dependent; regenerate with
//
//	renamebench -bench6 BENCH_6.json
//
// and gate regressions against a same-machine baseline with
// -bench6-against (tolerance in PERF.md §"Regenerating BENCH_6.json").

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"shmrename"
	"shmrename/internal/longlived"
	"shmrename/internal/metrics"
	"shmrename/internal/prng"
	"shmrename/internal/shm"
)

// bench6Phase is one (arena, leg, demand) cell of the diurnal sweep.
type bench6Phase struct {
	Arena           string  `json:"arena"`
	Leg             string  `json:"leg"`
	K               int     `json:"k"`
	Goroutines      int     `json:"goroutines"`
	Cycles          int     `json:"cycles"`
	Acquires        int64   `json:"acquires"`
	StepsPerAcquire float64 `json:"steps_per_acquire"`
	CapacityNow     int     `json:"capacity_now"`
	PeakCapacity    int     `json:"peak_capacity"`
	ResidentBytes   int64   `json:"resident_bytes"`
	P99Ns           int64   `json:"p99_ns"`
}

// bench6Resize is the forced grow/shrink storm section.
type bench6Resize struct {
	Capacity      int   `json:"capacity"`
	Goroutines    int   `json:"goroutines"`
	CyclesPerG    int   `json:"cycles_per_goroutine"`
	QuietP50Ns    int64 `json:"quiet_p50_ns"`
	QuietP99Ns    int64 `json:"quiet_p99_ns"`
	StormP50Ns    int64 `json:"storm_p50_ns"`
	StormP99Ns    int64 `json:"storm_p99_ns"`
	StormP999Ns   int64 `json:"storm_p999_ns"`
	Grows         int64 `json:"grows"`
	Shrinks       int64 `json:"shrinks"`
	DrainCancels  int64 `json:"drain_cancels"`
	AcquireErrors int64 `json:"acquire_errors"`
}

type bench6File struct {
	Description         string        `json:"description"`
	GoOS                string        `json:"goos"`
	GoArch              string        `json:"goarch"`
	GoMaxProcs          int           `json:"gomaxprocs"`
	Seed                uint64        `json:"seed"`
	Capacity            int           `json:"capacity"`
	Diurnal             []bench6Phase `json:"diurnal"`
	Resize              bench6Resize  `json:"resize"`
	TrickleK            int           `json:"trickle_k"`
	TrickleStepsFixed   float64       `json:"trickle_steps_fixed"`
	TrickleStepsElastic float64       `json:"trickle_steps_elastic"`
	StepsImprovement    float64       `json:"trickle_steps_improvement_vs_fixed"`
	ResidentFraction    float64       `json:"trickle_resident_fraction_of_fixed"`
	StepsTargetMet      bool          `json:"trickle_steps_target_met"`
	ResidentTargetMet   bool          `json:"resident_eighth_target_met"`
	ResizeBoundedMet    bool          `json:"resize_p99_bounded_target_met"`
}

// bench6ResidentTarget is the headline memory gate: at the down-leg
// trickle the elastic arena's resident bytes may be at most this fraction
// of the peak-provisioned fixed arena's.
const bench6ResidentTarget = 1.0 / 8

// bench6StormTolerance and bench6StormSlack bound the storm p99 against
// the quiet run of the identical workload: bounded iff
// storm <= quiet*(1+tolerance) + slack. Forced resizes add revalidation
// bounces and drain scans, and wall-clock p99 folds in scheduler jitter,
// so the bound is loose — the failure class it catches is a resize that
// blocks acquires (lock-like stalls shift p99 by orders of magnitude).
const (
	bench6StormTolerance = 3.0
	bench6StormSlack     = 500_000 // ns
)

// bench6MinTransitions is the floor on grow+shrink transitions the storm
// must actually force — below it the "resizes never block acquires" claim
// was not exercised.
const bench6MinTransitions = 32

// bench6Legs expands a capacity into the diurnal demand schedule: live
// names ramp 10 → capacity → 10 through quarter-power steps, with the
// headline trickle cell capacity/64 on both legs.
func bench6Legs(capacity int) []struct {
	Leg string
	K   int
} {
	up := []int{10, capacity / 64, capacity / 16, capacity / 4}
	var out []struct {
		Leg string
		K   int
	}
	for _, k := range up {
		out = append(out, struct {
			Leg string
			K   int
		}{"up", k})
	}
	out = append(out, struct {
		Leg string
		K   int
	}{"peak", capacity})
	for i := len(up) - 1; i >= 0; i-- {
		out = append(out, struct {
			Leg string
			K   int
		}{"down", up[i]})
	}
	return out
}

// bench6Cycles sizes a phase's per-worker cycle count: low-demand phases
// run long enough for the shrink hysteresis (128 consecutive eligible
// releases per retired level) to converge, high-demand phases are capped
// — their cost per cycle dwarfs the trickle's.
func bench6Cycles(g int) int {
	c := 3000 / g
	if c < 4 {
		return 4
	}
	if c > 400 {
		return 400
	}
	return c
}

// bench6Churn runs one diurnal phase: g goroutines each churn hold-two
// cycles (acquire, acquire, release both — peak demand 2g), timing every
// acquire into private histograms merged after the drain. Acquire errors
// are retried (the near-full peak phase legitimately races) and counted.
func bench6Churn(arena *shmrename.Arena, g, cycles int) (metrics.Histogram, int64, error) {
	parts := make([]metrics.Histogram, g)
	errs := make([]error, g)
	var retries atomic.Int64
	timedAcquire := func(h *metrics.Histogram) int {
		start := time.Now()
		for {
			n, err := arena.Acquire()
			if err == nil {
				h.Record(time.Since(start).Nanoseconds())
				return n
			}
			retries.Add(1)
			runtime.Gosched()
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for c := 0; c < cycles; c++ {
				a := timedAcquire(&parts[w])
				runtime.Gosched()
				b := timedAcquire(&parts[w])
				runtime.Gosched()
				if err := arena.Release(a); err != nil {
					errs[w] = err
					return
				}
				runtime.Gosched()
				if err := arena.Release(b); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	var h metrics.Histogram
	for w := range parts {
		if errs[w] != nil {
			return h, retries.Load(), errs[w]
		}
		h.Merge(&parts[w])
	}
	return h, retries.Load(), nil
}

// bench6Diurnal rides one arena variant through the full demand ramp and
// returns its per-phase cells. The arena persists across phases — the
// elastic ladder must grow through the up leg and drain through the down
// leg with churn in flight, exactly the regime E20 pins deterministically.
func bench6Diurnal(name string, cfg shmrename.ArenaConfig, capacity int) ([]bench6Phase, error) {
	arena, err := shmrename.NewArena(cfg)
	if err != nil {
		return nil, err
	}
	defer arena.Close()
	var out []bench6Phase
	for _, ph := range bench6Legs(capacity) {
		g := ph.K / 2 // hold-two churn: live names peak at 2g = the phase demand
		if g < 1 {
			g = 1
		}
		cycles := bench6Cycles(g)
		before := arena.Stats()
		h, _, err := bench6Churn(arena, g, cycles)
		if err != nil {
			return nil, fmt.Errorf("%s %s k=%d: %w", name, ph.Leg, ph.K, err)
		}
		if held := arena.Held(); held != 0 {
			return nil, fmt.Errorf("%s %s k=%d: %d names held after drain", name, ph.Leg, ph.K, held)
		}
		st := arena.Stats()
		acq := st.Acquires - before.Acquires
		p := bench6Phase{
			Arena:           name,
			Leg:             ph.Leg,
			K:               ph.K,
			Goroutines:      g,
			Cycles:          cycles,
			Acquires:        acq,
			StepsPerAcquire: float64(st.AcquireSteps-before.AcquireSteps) / float64(acq),
			CapacityNow:     st.CapacityNow,
			PeakCapacity:    st.PeakCapacity,
			ResidentBytes:   st.ResidentBytes,
			P99Ns:           h.Quantile(0.99),
		}
		out = append(out, p)
		fmt.Fprintf(os.Stderr, "bench6: %-10s %-4s k=%-5d g=%-4d: %6.2f steps/acquire, cap now %-5d resident %6d B, p99 %d ns\n",
			name, ph.Leg, ph.K, g, p.StepsPerAcquire, p.CapacityNow, p.ResidentBytes, p.P99Ns)
	}
	return out, nil
}

// bench6Storm churns g native workers against an elastic arena while (in
// storm mode) an antagonist forces the ladder between floor and ceiling.
// It returns the merged acquire-latency histogram, the transition
// counters, and the acquire-error count.
func bench6Storm(label string, seed uint64, g, cycles int, antagonize bool) (metrics.Histogram, [3]int64, int64, error) {
	arena := longlived.NewElastic(1024, longlived.ElasticConfig{
		MinCapacity: 256,
		MaxPasses:   8,
		WordScan:    true,
		Padded:      true,
		Label:       label,
	})
	var done atomic.Bool
	var anta sync.WaitGroup
	if antagonize {
		anta.Add(1)
		go func() {
			defer anta.Done()
			for !done.Load() {
				for arena.Grow() {
					runtime.Gosched()
				}
				runtime.Gosched()
				for arena.Shrink() {
					runtime.Gosched()
				}
				runtime.Gosched()
			}
		}()
	}
	parts := make([]metrics.Histogram, g)
	var errs atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := shm.NewProc(w, prng.NewStream(seed, w), nil, 1<<40)
			for c := 0; c < cycles; c++ {
				start := time.Now()
				n := arena.Acquire(p)
				for n < 0 {
					errs.Add(1)
					runtime.Gosched()
					n = arena.Acquire(p)
				}
				parts[w].Record(time.Since(start).Nanoseconds())
				runtime.Gosched()
				arena.Release(p, n)
			}
		}(w)
	}
	wg.Wait()
	done.Store(true)
	anta.Wait()
	var h metrics.Histogram
	for w := range parts {
		h.Merge(&parts[w])
	}
	if held := arena.Held(); held != 0 {
		return h, [3]int64{}, errs.Load(), fmt.Errorf("%s: %d names held after drain", label, held)
	}
	grows, shrinks, cancels := arena.Resizes()
	return h, [3]int64{grows, shrinks, cancels}, errs.Load(), nil
}

// bench6StepsTolerance and bench6StepsSlack bound the allowed growth of a
// diurnal steps/acquire cell against a baseline: regression iff
// cur > base*(1+tolerance) + slack. Native scheduling decides how much of
// each phase's demand actually overlaps, so occupancy — and with it the
// probe cost — wobbles more than the simulated BENCH_2 sweeps; the gate
// still catches the structural failure class (a lost floor hint, a ladder
// that stops draining) which multiplies steps rather than nudging them.
const (
	bench6StepsTolerance = 0.5
	bench6StepsSlack     = 2.0
)

// compareBench6 checks a fresh run against a baseline BENCH_6.json: the
// diurnal steps/acquire cells present in both may not grow beyond
// tolerance-plus-slack, and the storm p99 may not regress beyond the
// quiet-run bound applied to the baseline's storm p99.
func compareBench6(cur bench6File, againstPath string) error {
	data, err := os.ReadFile(againstPath)
	if err != nil {
		return fmt.Errorf("bench6: reading baseline: %w", err)
	}
	var base bench6File
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("bench6: parsing baseline %s: %w", againstPath, err)
	}
	var regressions []string
	compared := 0
	basePhases := map[string]bench6Phase{}
	for _, p := range base.Diurnal {
		basePhases[fmt.Sprintf("%s/%s/%d", p.Arena, p.Leg, p.K)] = p
	}
	for _, p := range cur.Diurnal {
		key := fmt.Sprintf("%s/%s/%d", p.Arena, p.Leg, p.K)
		b, ok := basePhases[key]
		if !ok || base.Capacity != cur.Capacity {
			continue
		}
		compared++
		if p.StepsPerAcquire > b.StepsPerAcquire*(1+bench6StepsTolerance)+bench6StepsSlack {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.2f steps/acquire exceeds baseline %.2f beyond %.0f%%+%.1f",
				key, p.StepsPerAcquire, b.StepsPerAcquire, bench6StepsTolerance*100, bench6StepsSlack))
		}
	}
	if base.Resize.StormP99Ns > 0 {
		compared++
		if float64(cur.Resize.StormP99Ns) > float64(base.Resize.StormP99Ns)*(1+bench6StormTolerance)+bench6StormSlack {
			regressions = append(regressions, fmt.Sprintf(
				"resize storm: p99 %dns exceeds baseline %dns beyond %.0f%%+%dns",
				cur.Resize.StormP99Ns, base.Resize.StormP99Ns, bench6StormTolerance*100, int64(bench6StormSlack)))
		}
	}
	if compared == 0 {
		return fmt.Errorf("bench6: no overlapping comparable points between measurement and baseline %s", againstPath)
	}
	if len(regressions) > 0 {
		msg := "bench6: regressed vs " + againstPath
		for _, r := range regressions {
			msg += "\n  " + r
		}
		return errors.New(msg)
	}
	fmt.Fprintf(os.Stderr, "bench6: %d cells within tolerance of baseline %s\n", compared, againstPath)
	return nil
}

// runBench6 measures the elastic diurnal trajectory, writes the JSON
// file, and fails when a headline gate misses — the trickle steps/acquire
// win, the 1/8 residency bound, or a storm p99 beyond the quiet bound —
// or, with a baseline, when any recorded cell regressed beyond tolerance.
func runBench6(path string, seed uint64, capacity int, against string) error {
	if capacity < 1024 || capacity > 1<<20 || capacity&(capacity-1) != 0 {
		return fmt.Errorf("bench6: -bench6-cap %d must be a power of two in [1024, %d]", capacity, 1<<20)
	}
	out := bench6File{
		Description: "elastic diurnal trajectory: diurnal = live demand ramps 10 -> capacity -> 10 over one persistent arena per variant (elastic vs peak-provisioned fixed ladder, public API, per-TAS probe path so steps/acquire is the paper's machine-independent structural cost); headline gates at the down-leg k=capacity/64 trickle: elastic steps/acquire below fixed and resident bytes <= 1/8 of fixed; resize = forced grow/shrink storm, zero acquire errors, p99 bounded vs the antagonist-free quiet run; regenerate with: renamebench -bench6 " + path,
		GoOS:        runtime.GOOS,
		GoArch:      runtime.GOARCH,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Seed:        seed,
		Capacity:    capacity,
		TrickleK:    capacity / 64,
	}

	// Section 1: the diurnal sweep, one persistent arena per variant. Both
	// run the per-bit probe path: steps/acquire then counts every failed
	// TAS the ladder walk pays, the cost model under which probe-range
	// proportionality is visible (the word engine's hints neutralize
	// saturated levels for fixed and elastic alike; BENCH_4 covers it).
	variants := []struct {
		name string
		cfg  shmrename.ArenaConfig
	}{
		{"elastic", shmrename.ArenaConfig{
			Capacity: capacity, Probe: shmrename.ProbeBit, Seed: seed,
			Elastic: &shmrename.ElasticConfig{}}},
		{"fixed-peak", shmrename.ArenaConfig{
			Capacity: capacity, Probe: shmrename.ProbeBit, Seed: seed}},
	}
	for _, v := range variants {
		phases, err := bench6Diurnal(v.name, v.cfg, capacity)
		if err != nil {
			return fmt.Errorf("bench6: %w", err)
		}
		out.Diurnal = append(out.Diurnal, phases...)
	}

	// Headline: the down-leg trickle cell, after the ladder has seen peak.
	cell := func(arena string) (bench6Phase, error) {
		for _, p := range out.Diurnal {
			if p.Arena == arena && p.Leg == "down" && p.K == out.TrickleK {
				return p, nil
			}
		}
		return bench6Phase{}, fmt.Errorf("bench6: no down-leg k=%d cell for %s", out.TrickleK, arena)
	}
	el, err := cell("elastic")
	if err != nil {
		return err
	}
	fx, err := cell("fixed-peak")
	if err != nil {
		return err
	}
	out.TrickleStepsElastic = el.StepsPerAcquire
	out.TrickleStepsFixed = fx.StepsPerAcquire
	if el.StepsPerAcquire > 0 {
		out.StepsImprovement = fx.StepsPerAcquire / el.StepsPerAcquire
	}
	out.StepsTargetMet = el.StepsPerAcquire < fx.StepsPerAcquire
	if fx.ResidentBytes > 0 {
		out.ResidentFraction = float64(el.ResidentBytes) / float64(fx.ResidentBytes)
	}
	out.ResidentTargetMet = out.ResidentFraction > 0 && out.ResidentFraction <= bench6ResidentTarget
	fmt.Fprintf(os.Stderr, "bench6: trickle k=%d: elastic %.2f vs fixed %.2f steps/acquire (%.1fx), resident %d/%d B (%.3f of fixed)\n",
		out.TrickleK, el.StepsPerAcquire, fx.StepsPerAcquire, out.StepsImprovement,
		el.ResidentBytes, fx.ResidentBytes, out.ResidentFraction)

	// Section 3: quiet run, then the same workload under forced resizes.
	const stormG, stormCycles = 32, 3000
	quiet, _, quietErrs, err := bench6Storm("bench6-quiet", seed, stormG, stormCycles, false)
	if err != nil {
		return fmt.Errorf("bench6: %w", err)
	}
	storm, trans, stormErrs, err := bench6Storm("bench6-storm", seed+1, stormG, stormCycles, true)
	if err != nil {
		return fmt.Errorf("bench6: %w", err)
	}
	out.Resize = bench6Resize{
		Capacity:      1024,
		Goroutines:    stormG,
		CyclesPerG:    stormCycles,
		QuietP50Ns:    quiet.Quantile(0.50),
		QuietP99Ns:    quiet.Quantile(0.99),
		StormP50Ns:    storm.Quantile(0.50),
		StormP99Ns:    storm.Quantile(0.99),
		StormP999Ns:   storm.Quantile(0.999),
		Grows:         trans[0],
		Shrinks:       trans[1],
		DrainCancels:  trans[2],
		AcquireErrors: quietErrs + stormErrs,
	}
	out.ResizeBoundedMet = out.Resize.AcquireErrors == 0 &&
		trans[0]+trans[1] >= bench6MinTransitions &&
		float64(out.Resize.StormP99Ns) <= float64(out.Resize.QuietP99Ns)*(1+bench6StormTolerance)+bench6StormSlack
	fmt.Fprintf(os.Stderr, "bench6: resize storm: quiet p99 %d ns, storm p99 %d ns, %d grows / %d shrinks / %d cancels, %d acquire errors\n",
		out.Resize.QuietP99Ns, out.Resize.StormP99Ns, trans[0], trans[1], trans[2], out.Resize.AcquireErrors)

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	var misses []string
	if !out.StepsTargetMet {
		misses = append(misses, fmt.Sprintf("trickle steps/acquire: elastic %.2f not below fixed %.2f",
			out.TrickleStepsElastic, out.TrickleStepsFixed))
	}
	if !out.ResidentTargetMet {
		misses = append(misses, fmt.Sprintf("trickle residency: %.3f of fixed exceeds %.3f",
			out.ResidentFraction, bench6ResidentTarget))
	}
	if !out.ResizeBoundedMet {
		misses = append(misses, fmt.Sprintf("resize storm: p99 %dns vs quiet %dns, %d transitions, %d acquire errors",
			out.Resize.StormP99Ns, out.Resize.QuietP99Ns, trans[0]+trans[1], out.Resize.AcquireErrors))
	}
	if len(misses) > 0 {
		msg := "bench6: headline targets missed (see " + path + ")"
		for _, m := range misses {
			msg += "\n  " + m
		}
		return errors.New(msg)
	}
	if against != "" {
		return compareBench6(out, against)
	}
	return nil
}
