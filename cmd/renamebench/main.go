// Command renamebench regenerates the paper-reproduction experiments
// E1-E21 (see ALGORITHMS.md §6) and prints their report
// tables.
//
// Usage:
//
//	renamebench -list
//	renamebench -exp E2,E4 -trials 31 -seed 1
//	renamebench -exp all -full -csv out/
//
// -full widens every n-sweep to report scale (minutes of runtime);
// without it a quick sweep runs in seconds per experiment.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"shmrename/internal/harness"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiments and exit")
		exp     = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		trials  = flag.Int("trials", harness.DefaultTrials, "seeded trials per parameter point")
		seed    = flag.Uint64("seed", 1, "base seed")
		full    = flag.Bool("full", false, "full report-scale sweeps")
		csvDir  = flag.String("csv", "", "also write each table as CSV into this directory")
		bench1  = flag.String("bench1", "", "write the BENCH_1.json perf trajectory to this path and exit")
		bench1N = flag.Int("bench1-maxexp", 20, "largest log2(n) for -bench1 sweeps")
		bench1A = flag.String("bench1-against", "", "baseline BENCH_1.json to compare -bench1 results against; exits nonzero on steps/proc-max regression")
		bench2  = flag.String("bench2", "", "write the BENCH_2.json churn trajectory to this path and exit")
		bench2N = flag.Int("bench2-maxexp", 14, "largest log2(n) for -bench2 sweeps")
		bench2A = flag.String("bench2-against", "", "baseline BENCH_2.json to compare -bench2 results against; exits nonzero on steps/acquire regression")
		bench3  = flag.String("bench3", "", "write the BENCH_3.json native sharded-scalability sweep to this path and exit")
		bench3G = flag.Int("bench3-maxg", 64, "largest goroutine count for -bench3 sweeps (x4 from 4)")
		bench3A = flag.String("bench3-against", "", "baseline BENCH_3.json to compare -bench3 results against; exits nonzero on steps/acquire regression")
		bench4  = flag.String("bench4", "", "write the BENCH_4.json word-engine trajectory to this path and exit")
		bench4G = flag.Int("bench4-maxg", 64, "largest goroutine count for the -bench4 native sweep (x4 from 4)")
		bench5  = flag.String("bench5", "", "write the BENCH_5.json open-loop latency trajectory to this path and exit")
		bench5R = flag.Float64("bench5-rate", 200e3, "offered arrival rate (per second) for the -bench5 fixed-rate cells")
		bench5N = flag.Int("bench5-arrivals", 20000, "scheduled arrivals per -bench5 cell")
		bench5A = flag.String("bench5-against", "", "baseline BENCH_5.json to compare -bench5 results against; exits nonzero on p99 regression")
		bench6  = flag.String("bench6", "", "write the BENCH_6.json elastic diurnal trajectory to this path and exit")
		bench6C = flag.Int("bench6-cap", 4096, "arena capacity for the -bench6 diurnal sweep (power of two >= 1024)")
		bench6A = flag.String("bench6-against", "", "baseline BENCH_6.json to compare -bench6 results against; exits nonzero on steps/acquire or storm-p99 regression")
		recov   = flag.Bool("recovery-smoke", false, "run the native crash-recovery smoke (abandoned-lease reclaim on every backend + mmap reattach) and exit")
		chaosO  = flag.String("chaos", "", "run the E21 chaos matrix and write the accounting JSON to this path")
	)
	flag.Parse()

	if *recov {
		if err := runRecoverySmoke(*seed); err != nil {
			fmt.Fprintf(os.Stderr, "renamebench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("recovery smoke passed")
		return
	}

	if *chaosO != "" {
		if err := runChaos(*chaosO, *seed, *trials); err != nil {
			fmt.Fprintf(os.Stderr, "renamebench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("chaos accounting written to %s\n", *chaosO)
		return
	}

	if *bench1 != "" {
		if err := runBench1(*bench1, *seed, *bench1N, *bench1A); err != nil {
			fmt.Fprintf(os.Stderr, "renamebench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("bench1 trajectory written to %s\n", *bench1)
		return
	}

	if *bench2 != "" {
		if err := runBench2(*bench2, *seed, *bench2N, *bench2A); err != nil {
			fmt.Fprintf(os.Stderr, "renamebench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("bench2 churn trajectory written to %s\n", *bench2)
		return
	}

	if *bench3 != "" {
		if err := runBench3(*bench3, *seed, *bench3G, *bench3A); err != nil {
			fmt.Fprintf(os.Stderr, "renamebench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("bench3 native scalability sweep written to %s\n", *bench3)
		return
	}

	if *bench4 != "" {
		if err := runBench4(*bench4, *seed, *bench4G); err != nil {
			fmt.Fprintf(os.Stderr, "renamebench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("bench4 word-engine trajectory written to %s\n", *bench4)
		return
	}

	if *bench5 != "" {
		if err := runBench5(*bench5, *seed, *bench5R, *bench5N, *bench5A); err != nil {
			fmt.Fprintf(os.Stderr, "renamebench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("bench5 open-loop latency trajectory written to %s\n", *bench5)
		return
	}

	if *bench6 != "" {
		if err := runBench6(*bench6, *seed, *bench6C, *bench6A); err != nil {
			fmt.Fprintf(os.Stderr, "renamebench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("bench6 elastic diurnal trajectory written to %s\n", *bench6)
		return
	}

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}

	var selected []harness.Experiment
	if *exp == "all" {
		selected = harness.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			e, ok := harness.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "renamebench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	cfg := harness.Config{Trials: *trials, Seed: *seed, Full: *full}
	for _, e := range selected {
		start := time.Now()
		fmt.Printf("=== %s: %s\n", e.ID, e.Title)
		fmt.Printf("    claim: %s\n\n", e.Claim)
		tables := e.Run(cfg)
		for ti, tab := range tables {
			fmt.Println(tab.Render())
			if *csvDir != "" {
				if err := os.MkdirAll(*csvDir, 0o755); err != nil {
					fmt.Fprintf(os.Stderr, "renamebench: %v\n", err)
					os.Exit(1)
				}
				name := fmt.Sprintf("%s_%d.csv", e.ID, ti)
				path := filepath.Join(*csvDir, name)
				if err := os.WriteFile(path, []byte(tab.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "renamebench: %v\n", err)
					os.Exit(1)
				}
				fmt.Printf("(csv written to %s)\n\n", path)
			}
		}
		fmt.Printf("=== %s done in %v\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
