package main

// BENCH_2.json generation: the churn-workload trajectory for the
// long-lived arena (internal/longlived). It records wall-clock, allocation,
// and step costs of sustained acquire/release churn — k = n/4 workers
// cycling names on a capacity-n arena — for both backends, plus the
// adaptivity signal (max issued name vs. peak simultaneous holders).
// Subsequent perf PRs regenerate the file with -bench2 and must not regress
// its steps-per-acquire column.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"shmrename/internal/longlived"
	"shmrename/internal/sched"
)

// bench2Point is one measured (backend, n) churn cell.
type bench2Point struct {
	Backend         string  `json:"backend"`
	N               int     `json:"n"`
	K               int     `json:"k"`
	Cycles          int     `json:"cycles"`
	NsPerOp         float64 `json:"ns_per_op"`
	StepsPerAcquire float64 `json:"steps_per_acquire"`
	MaxName         int64   `json:"max_name"`
	MaxActive       int64   `json:"max_active"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	BytesPerOp      int64   `json:"bytes_per_op"`
}

type bench2File struct {
	Description string        `json:"description"`
	GoOS        string        `json:"goos"`
	GoArch      string        `json:"goarch"`
	Seed        uint64        `json:"seed"`
	MaxN        int           `json:"max_n"`
	Results     []bench2Point `json:"results"`
}

// runBench2 measures the churn workload and writes the JSON file.
func runBench2(path string, seed uint64, maxExp int) error {
	if maxExp < 8 || maxExp > 20 || maxExp%2 != 0 {
		return fmt.Errorf("bench2: -bench2-maxexp %d must be even and within [8,20] (sweeps run n = 2^8, 2^10, .. 2^maxexp)", maxExp)
	}
	if f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644); err != nil {
		return err
	} else {
		f.Close()
	}
	out := bench2File{
		Description: "long-lived churn trajectory: k=n/4 workers acquire/hold/release on a capacity-n arena under FastFIFO; regenerate with: renamebench -bench2 " + path,
		GoOS:        runtime.GOOS,
		GoArch:      runtime.GOARCH,
		Seed:        seed,
		MaxN:        1 << 8,
	}

	churn := longlived.DefaultChurn
	for _, w := range longlived.ChurnBackends() {
		for e := 8; e <= maxExp; e += 2 {
			n := 1 << e
			k := n / 4
			if n > out.MaxN {
				out.MaxN = n
			}
			var steps float64
			var maxName, maxActive int64
			iters := 0
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					arena := w.Make(n)
					mon := longlived.NewMonitor(arena.NameBound())
					sched.Run(sched.Config{
						N:         k,
						Seed:      seed + uint64(i),
						Fast:      sched.FastFIFO,
						Body:      longlived.ChurnBody(arena, mon, churn),
						AfterStep: arena.Clock(),
					})
					if err := mon.Err(); err != nil {
						panic(fmt.Sprintf("bench2 %s n=%d: %v", w.Name, n, err))
					}
					if held := arena.Held(); held != 0 {
						panic(fmt.Sprintf("bench2 %s n=%d: %d names held after drain", w.Name, n, held))
					}
					steps += mon.StepsPerAcquire()
					if m := mon.MaxName(); m > maxName {
						maxName = m
					}
					if a := mon.MaxActive(); a > maxActive {
						maxActive = a
					}
					iters++
				}
			})
			p := bench2Point{
				Backend:         w.Name,
				N:               n,
				K:               k,
				Cycles:          churn.Cycles,
				NsPerOp:         float64(r.NsPerOp()),
				StepsPerAcquire: steps / float64(iters),
				MaxName:         maxName,
				MaxActive:       maxActive,
				AllocsPerOp:     r.AllocsPerOp(),
				BytesPerOp:      r.AllocedBytesPerOp(),
			}
			out.Results = append(out.Results, p)
			fmt.Fprintf(os.Stderr, "bench2: %s n=%d k=%d: %.1fms/op, %.1f steps/acquire, max name %d @ %d active\n",
				w.Name, n, k, p.NsPerOp/1e6, p.StepsPerAcquire, p.MaxName, p.MaxActive)
		}
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
