package main

// BENCH_2.json generation: the churn-workload trajectory for the
// long-lived arena (internal/longlived). It records wall-clock, allocation,
// and step costs of sustained acquire/release churn — k = n/4 workers
// cycling names on a capacity-n arena — for both backends, plus the
// adaptivity signal (max issued name vs. peak simultaneous holders).
// Subsequent perf PRs regenerate the file with -bench2 and must not regress
// its steps-per-acquire column.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"testing"

	"shmrename/internal/longlived"
	"shmrename/internal/sched"
)

// bench2Point is one measured (backend, n) churn cell.
type bench2Point struct {
	Backend         string  `json:"backend"`
	N               int     `json:"n"`
	K               int     `json:"k"`
	Cycles          int     `json:"cycles"`
	NsPerOp         float64 `json:"ns_per_op"`
	StepsPerAcquire float64 `json:"steps_per_acquire"`
	MaxName         int64   `json:"max_name"`
	MaxActive       int64   `json:"max_active"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	BytesPerOp      int64   `json:"bytes_per_op"`
}

type bench2File struct {
	Description string        `json:"description"`
	GoOS        string        `json:"goos"`
	GoArch      string        `json:"goarch"`
	Seed        uint64        `json:"seed"`
	MaxN        int           `json:"max_n"`
	Results     []bench2Point `json:"results"`
}

// bench2StepsTolerance is the allowed relative growth of steps/acquire
// against a baseline trajectory before -bench2-against reports a
// regression. Steps are deterministic per seed, but the per-point mean is
// taken over however many iterations testing.Benchmark chooses, so the
// slack absorbs the seed-set difference; the regression class this gate
// exists for — an extra probe round, a broken fallback, a word path
// accidentally wired into the canonical probe workload — moves the metric
// tens of percent.
const bench2StepsTolerance = 0.10

// compareBench2 checks a fresh churn trajectory against a baseline
// BENCH_2.json: steps/acquire may not grow beyond the tolerance at any
// (backend, n) point present in both. Wall clock is advisory only.
func compareBench2(cur bench2File, againstPath string) error {
	data, err := os.ReadFile(againstPath)
	if err != nil {
		return fmt.Errorf("bench2: reading baseline: %w", err)
	}
	var base bench2File
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("bench2: parsing baseline %s: %w", againstPath, err)
	}
	type key struct {
		backend string
		n       int
	}
	baseline := make(map[key]bench2Point, len(base.Results))
	for _, p := range base.Results {
		baseline[key{p.Backend, p.N}] = p
	}
	var regressions []string
	compared := 0
	for _, p := range cur.Results {
		b, ok := baseline[key{p.Backend, p.N}]
		if !ok {
			continue
		}
		compared++
		if p.StepsPerAcquire > b.StepsPerAcquire*(1+bench2StepsTolerance) {
			regressions = append(regressions, fmt.Sprintf(
				"%s n=%d: steps/acquire %.2f exceeds baseline %.2f by more than %.0f%%",
				p.Backend, p.N, p.StepsPerAcquire, b.StepsPerAcquire, bench2StepsTolerance*100))
		}
		fmt.Fprintf(os.Stderr, "bench2: %s n=%d vs baseline: steps %.2f/%.2f, wall %.1f/%.1fms (advisory)\n",
			p.Backend, p.N, p.StepsPerAcquire, b.StepsPerAcquire, p.NsPerOp/1e6, b.NsPerOp/1e6)
	}
	if compared == 0 {
		return fmt.Errorf("bench2: no overlapping (backend, n) points between measurement and baseline %s", againstPath)
	}
	if len(regressions) > 0 {
		msg := "bench2: steps/acquire regressed vs " + againstPath
		for _, r := range regressions {
			msg += "\n  " + r
		}
		return errors.New(msg)
	}
	fmt.Fprintf(os.Stderr, "bench2: %d points within %.0f%% of baseline %s\n",
		compared, bench2StepsTolerance*100, againstPath)
	return nil
}

// runBench2 measures the churn workload, writes the JSON file, and — when
// against is non-empty — fails on steps/acquire regressions versus that
// baseline trajectory.
func runBench2(path string, seed uint64, maxExp int, against string) error {
	if maxExp < 8 || maxExp > 20 || maxExp%2 != 0 {
		return fmt.Errorf("bench2: -bench2-maxexp %d must be even and within [8,20] (sweeps run n = 2^8, 2^10, .. 2^maxexp)", maxExp)
	}
	if f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644); err != nil {
		return err
	} else {
		f.Close()
	}
	out := bench2File{
		Description: "long-lived churn trajectory: k=n/4 workers acquire/hold/release on a capacity-n arena under FastFIFO; regenerate with: renamebench -bench2 " + path,
		GoOS:        runtime.GOOS,
		GoArch:      runtime.GOARCH,
		Seed:        seed,
		MaxN:        1 << 8,
	}

	churn := longlived.DefaultChurn
	for _, w := range longlived.ChurnBackends() {
		for e := 8; e <= maxExp; e += 2 {
			n := 1 << e
			k := n / 4
			if n > out.MaxN {
				out.MaxN = n
			}
			var steps float64
			var maxName, maxActive int64
			iters := 0
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					arena := w.Make(n)
					mon := longlived.NewMonitor(arena.NameBound())
					sched.Run(sched.Config{
						N:         k,
						Seed:      seed + uint64(i),
						Fast:      sched.FastFIFO,
						Body:      longlived.ChurnBody(arena, mon, churn),
						AfterStep: arena.Clock(),
					})
					if err := mon.Err(); err != nil {
						panic(fmt.Sprintf("bench2 %s n=%d: %v", w.Name, n, err))
					}
					if held := arena.Held(); held != 0 {
						panic(fmt.Sprintf("bench2 %s n=%d: %d names held after drain", w.Name, n, held))
					}
					steps += mon.StepsPerAcquire()
					if m := mon.MaxName(); m > maxName {
						maxName = m
					}
					if a := mon.MaxActive(); a > maxActive {
						maxActive = a
					}
					iters++
				}
			})
			p := bench2Point{
				Backend:         w.Name,
				N:               n,
				K:               k,
				Cycles:          churn.Cycles,
				NsPerOp:         float64(r.NsPerOp()),
				StepsPerAcquire: steps / float64(iters),
				MaxName:         maxName,
				MaxActive:       maxActive,
				AllocsPerOp:     r.AllocsPerOp(),
				BytesPerOp:      r.AllocedBytesPerOp(),
			}
			out.Results = append(out.Results, p)
			fmt.Fprintf(os.Stderr, "bench2: %s n=%d k=%d: %.1fms/op, %.1f steps/acquire, max name %d @ %d active\n",
				w.Name, n, k, p.NsPerOp/1e6, p.StepsPerAcquire, p.MaxName, p.MaxActive)
		}
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if against != "" {
		return compareBench2(out, against)
	}
	return nil
}
