package main

// BENCH_1.json generation: the perf trajectory file for the hot-path
// overhaul PR. It records ns/op, allocs/op, and steps/proc-max for the E2
// (tight renaming, Theorem 5) and E5 (Corollary 7 loose renaming)
// simulated workloads at n up to 2^20, plus the NameSpace memory footprint,
// against the frozen pre-refactor baseline. Subsequent perf PRs regenerate
// the file with -bench1 and must not regress it.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"testing"

	"shmrename/internal/core"
	"shmrename/internal/sched"
	"shmrename/internal/shm"
)

// bench1Point is one measured (experiment, n) cell.
type bench1Point struct {
	Exp             string  `json:"exp"`
	N               int     `json:"n"`
	NsPerOp         float64 `json:"ns_per_op"`
	StepsPerProcMax float64 `json:"steps_per_proc_max"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	BytesPerOp      int64   `json:"bytes_per_op"`
}

// bench1Baseline is a frozen measurement of the pre-refactor simulator,
// recorded once on the machine named in Host. See PERF.md for methodology.
type bench1Baseline struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type bench1File struct {
	Description     string           `json:"description"`
	GoOS            string           `json:"goos"`
	GoArch          string           `json:"goarch"`
	Seed            uint64           `json:"seed"`
	MaxN            int              `json:"max_n"`
	NameSpaceMemory map[string]int64 `json:"namespace_memory_bytes_2p20_names"`
	Baseline        []bench1Baseline `json:"baseline_pre_refactor"`
	Results         []bench1Point    `json:"results"`
}

// seedBaseline freezes the seed-commit numbers measured for the hot-path
// overhaul (go test -bench -benchtime 10x on the idle builder, see
// PERF.md). They are data, not code: keep them until a future re-baseline.
var seedBaseline = []bench1Baseline{
	{Name: "BenchmarkE2TightSim/n=16384", NsPerOp: 344.1e6, AllocsPerOp: 93413, BytesPerOp: 15786577},
	{Name: "BenchmarkE5Corollary7/n=16384,l=2", NsPerOp: 129.2e6, AllocsPerOp: 92565, BytesPerOp: 10706264},
}

// stepsTolerance is the allowed relative growth of steps/proc-max against
// a baseline trajectory before -bench1-against reports a regression. Steps
// are deterministic per seed, but the per-point mean is taken over however
// many iterations testing.Benchmark chooses, so a small slack absorbs the
// seed-set difference; a real regression (an extra probe round, a broken
// fallback) moves the metric far beyond it.
const stepsTolerance = 0.05

// compareBench1 checks the freshly measured trajectory against a baseline
// BENCH_1.json: steps/proc-max may not grow beyond the tolerance at any
// (exp, n) point present in both. Wall-clock deltas are advisory only —
// printed, never failed on, since CI machines vary.
func compareBench1(cur bench1File, againstPath string) error {
	data, err := os.ReadFile(againstPath)
	if err != nil {
		return fmt.Errorf("bench1: reading baseline: %w", err)
	}
	var base bench1File
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("bench1: parsing baseline %s: %w", againstPath, err)
	}
	type key struct {
		exp string
		n   int
	}
	baseline := make(map[key]bench1Point, len(base.Results))
	for _, p := range base.Results {
		baseline[key{p.Exp, p.N}] = p
	}
	var regressions []string
	compared := 0
	for _, p := range cur.Results {
		b, ok := baseline[key{p.Exp, p.N}]
		if !ok {
			continue
		}
		compared++
		if p.StepsPerProcMax > b.StepsPerProcMax*(1+stepsTolerance) {
			regressions = append(regressions, fmt.Sprintf(
				"%s n=%d: steps/proc-max %.1f exceeds baseline %.1f by more than %.0f%%",
				p.Exp, p.N, p.StepsPerProcMax, b.StepsPerProcMax, stepsTolerance*100))
		}
		fmt.Fprintf(os.Stderr, "bench1: %s n=%d vs baseline: steps %.1f/%.1f, wall %.1f/%.1fms (advisory)\n",
			p.Exp, p.N, p.StepsPerProcMax, b.StepsPerProcMax, p.NsPerOp/1e6, b.NsPerOp/1e6)
	}
	if compared == 0 {
		return fmt.Errorf("bench1: no overlapping (exp, n) points between measurement and baseline %s", againstPath)
	}
	if len(regressions) > 0 {
		msg := "bench1: steps/proc-max regressed vs " + againstPath
		for _, r := range regressions {
			msg += "\n  " + r
		}
		return errors.New(msg)
	}
	fmt.Fprintf(os.Stderr, "bench1: %d points within %.0f%% of baseline %s\n",
		compared, stepsTolerance*100, againstPath)
	return nil
}

// runBench1 measures the current tree, writes the JSON file, and — when
// against is non-empty — fails on steps/proc-max regressions versus that
// baseline trajectory.
func runBench1(path string, seed uint64, maxExp int, against string) error {
	if maxExp < 10 || maxExp > 24 || maxExp%2 != 0 {
		return fmt.Errorf("bench1: -bench1-maxexp %d must be even and within [10,24] (sweeps run n = 2^10, 2^12, .. 2^maxexp)", maxExp)
	}
	// Fail on an unwritable path now, not after minutes of measurement.
	if f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644); err != nil {
		return err
	} else {
		f.Close()
	}
	out := bench1File{
		Description: "simulated hot-path trajectory: E2 (tight, Theorem 5) and E5 (Corollary 7) under FastFIFO; regenerate with: renamebench -bench1 " + path,
		GoOS:        runtime.GOOS,
		GoArch:      runtime.GOARCH,
		Seed:        seed,
		MaxN:        1 << 10, // raised to the largest n actually measured
		NameSpaceMemory: map[string]int64{
			"packed_bitmap":           (1 << 20) / 64 * 8,
			"padded_bitmap":           (1 << 20) / 64 * 64,
			"byte_per_name_before":    1 << 20,
			"packed_reduction_factor": (1 << 20) / ((1 << 20) / 64 * 8),
		},
		Baseline: seedBaseline,
	}

	type workload struct {
		exp  string
		make func(n int) core.Instance
	}
	workloads := []workload{
		{"E2", func(n int) core.Instance {
			return core.NewTight(n, core.TightConfig{SelfClocked: true})
		}},
		{"E5", func(n int) core.Instance {
			return core.NewCorollary7(n, core.RoundsConfig{Ell: 2}, nil)
		}},
	}
	for _, w := range workloads {
		for e := 10; e <= maxExp; e += 2 {
			n := 1 << e
			if n > out.MaxN {
				out.MaxN = n
			}
			var maxSteps int64
			iters := 0
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					inst := w.make(n)
					res := sched.Run(sched.Config{
						N: n, Seed: seed + uint64(i), Fast: sched.FastFIFO, Body: inst.Body,
					})
					if err := sched.VerifyUnique(res, inst.M()); err != nil {
						panic(fmt.Sprintf("bench1 %s n=%d: %v", w.exp, n, err))
					}
					maxSteps += sched.MaxSteps(res)
					iters++
				}
			})
			p := bench1Point{
				Exp:             w.exp,
				N:               n,
				NsPerOp:         float64(r.NsPerOp()),
				StepsPerProcMax: float64(maxSteps) / float64(iters),
				AllocsPerOp:     r.AllocsPerOp(),
				BytesPerOp:      r.AllocedBytesPerOp(),
			}
			out.Results = append(out.Results, p)
			fmt.Fprintf(os.Stderr, "bench1: %s n=%d: %.1fms/op, %.1f steps/proc-max\n",
				w.exp, n, p.NsPerOp/1e6, p.StepsPerProcMax)
		}
	}

	// The memory claim is verifiable, not just asserted: build the 2^20
	// space and confirm the packed footprint.
	s := shm.NewNameSpace("bench1-footprint", 1<<20)
	if got := s.CountClaimed(); got != 0 {
		return fmt.Errorf("bench1: fresh 2^20 space reports %d claimed", got)
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if against != "" {
		return compareBench1(out, against)
	}
	return nil
}
