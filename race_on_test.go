//go:build race

package shmrename

// raceDetector reports whether the race detector is instrumenting this
// build; perf-ceiling tests scale their wall-clock budgets by it.
const raceDetector = true
