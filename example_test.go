package shmrename_test

import (
	"fmt"
	"time"

	"shmrename"
)

// ExampleRename renames processes under the deterministic simulator: equal
// seeds give identical executions, and all names are pairwise distinct.
func ExampleRename() {
	res, err := shmrename.Rename(shmrename.Config{
		N:         8,
		Algorithm: shmrename.TightTau,
		Seed:      1,
		Simulate:  true,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("name space:", res.M)
	fmt.Println("distinct:", res.Verify() == nil)
	fmt.Println("names:", res.Names)
	// Output:
	// name space: 8
	// distinct: true
	// names: [0 5 1 3 6 2 7 4]
}

// ExampleRename_loose uses Corollary 7: a slightly larger name space in
// exchange for doubly-logarithmic step complexity.
func ExampleRename_loose() {
	res, err := shmrename.Rename(shmrename.Config{
		N:         1024,
		Algorithm: shmrename.Corollary7,
		Ell:       2,
		Seed:      7,
		Simulate:  true,
	})
	if err != nil {
		panic(err)
	}
	named := 0
	for _, n := range res.Names {
		if n >= 0 {
			named++
		}
	}
	fmt.Println("m:", res.M)
	fmt.Println("all named:", named == 1024)
	fmt.Println("steps within budget:", res.MaxSteps < 64)
	// Output:
	// m: 1210
	// all named: true
	// steps within budget: true
}

// ExampleRename_adversarial runs against the contention-seeking adaptive
// adversary with crash injection; survivors still get distinct names.
func ExampleRename_adversarial() {
	res, err := shmrename.Rename(shmrename.Config{
		N:             64,
		Algorithm:     shmrename.TightTau,
		Seed:          3,
		Simulate:      true,
		Schedule:      "collider",
		CrashFraction: 0.25,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("crashed:", res.Crashed)
	fmt.Println("distinct:", res.Verify() == nil)
	// Output:
	// crashed: 16
	// distinct: true
}

// ExampleNewArena shows long-lived renaming: names are released back to
// the pool and reacquired, and live holders' names are always distinct.
func ExampleNewArena() {
	arena, err := shmrename.NewArena(shmrename.ArenaConfig{Capacity: 16, Seed: 1})
	if err != nil {
		panic(err)
	}
	a, _ := arena.Acquire()
	b, _ := arena.Acquire()
	fmt.Println("distinct while held:", a != b)
	fmt.Println("held:", arena.Held())
	if err := arena.Release(a); err != nil {
		panic(err)
	}
	c, _ := arena.Acquire() // the pool recycles released names
	fmt.Println("still distinct:", c != b)
	fmt.Println("within bound:", c < arena.NameBound())
	// Output:
	// distinct while held: true
	// held: 2
	// still distinct: true
	// within bound: true
}

// ExampleNewArena_sharded runs the striped multicore frontend: the name
// space is partitioned across four independent shards, acquires route
// through a cached home shard with work-stealing overflow, and names stay
// within the shards x per-shard-bound envelope.
func ExampleNewArena_sharded() {
	arena, err := shmrename.NewArena(shmrename.ArenaConfig{
		Capacity: 64,
		Backend:  shmrename.ArenaBackendSharded,
		Shards:   4,
		Seed:     1,
	})
	if err != nil {
		panic(err)
	}
	// Fill the arena to its guaranteed capacity: every acquire succeeds
	// and no two concurrently held names collide, across all shards.
	seen := make(map[int]bool)
	for i := 0; i < arena.Capacity(); i++ {
		n, err := arena.Acquire()
		if err != nil {
			panic(err)
		}
		seen[n] = true
	}
	fmt.Println("backend:", arena.Backend())
	fmt.Println("distinct names:", len(seen))
	fmt.Println("within envelope:", arena.NameBound() <= 4*arena.Capacity())
	// Output:
	// backend: sharded-level(shards=4,steal=2,scan=word)
	// distinct names: 64
	// within envelope: true
}

// ExampleNewArena_leased turns on lease stamps: a holder that stops
// heartbeating loses its names back to the pool after the TTL, so a
// crashed participant cannot leak name capacity forever.
func ExampleNewArena_leased() {
	arena, err := shmrename.NewArena(shmrename.ArenaConfig{
		Capacity: 16,
		Seed:     1,
		Lease:    &shmrename.LeaseConfig{TTL: time.Millisecond},
	})
	if err != nil {
		panic(err)
	}
	defer arena.Close()
	names, err := arena.AcquireN(4)
	if err != nil {
		panic(err)
	}
	fmt.Println("held:", arena.Held())
	// Simulate a crash: nobody releases, nobody heartbeats.
	_ = names
	time.Sleep(5 * time.Millisecond)
	fmt.Println("swept:", arena.SweepStale())
	fmt.Println("held after sweep:", arena.Held())
	// Output:
	// held: 4
	// swept: 4
	// held after sweep: 0
}

// ExampleNewArena_leaseCache turns on per-worker word-block lease caches:
// the first acquire leases a whole 64-name block in one word-granular
// claim, later acquires pop it thread-locally, and released names
// recirculate through the worker's cache — steady-state churn stops
// touching shared memory entirely. Provision capacity above the expected
// peak holders: parked names are claimed but serve nobody.
func ExampleNewArena_leaseCache() {
	arena, err := shmrename.NewArena(shmrename.ArenaConfig{
		Capacity:    256,
		Backend:     shmrename.ArenaBackendSharded,
		Shards:      2,
		LeaseBlocks: 64,
		Seed:        1,
	})
	if err != nil {
		panic(err)
	}
	defer arena.Close()
	a, _ := arena.Acquire() // leases a block: one backend claim
	b, _ := arena.Acquire() // pops the block: no backend work
	fmt.Println("distinct while held:", a != b)
	fmt.Println("block leases:", arena.Stats().CacheRefills)
	arena.Release(a)
	arena.Release(b)
	fmt.Println("held after release:", arena.Held())
	if _, err := arena.Acquire(); err != nil {
		panic(err)
	}
	fmt.Println("recycled locally:", arena.Stats().CacheRefills == 1)
	// Output:
	// distinct while held: true
	// block leases: 1
	// held after release: 0
	// recycled locally: true
}

// ExampleNewArena_elastic turns on contention-proportional capacity: the
// arena starts resident at its smallest level, appends levels lock-free
// as occupancy crosses the growth threshold, and drains them back —
// epoch-gated, never blocking concurrent acquires — once demand
// subsides. Names stay unique and within the fixed NameBound throughout;
// only the resident footprint moves.
func ExampleNewArena_elastic() {
	arena, err := shmrename.NewArena(shmrename.ArenaConfig{
		Capacity: 1024,
		Seed:     1,
		Elastic:  &shmrename.ElasticConfig{},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("starts small:", arena.Stats().CapacityNow < arena.Capacity())
	names, err := arena.AcquireN(600)
	if err != nil {
		panic(err)
	}
	grown := arena.Stats().CapacityNow
	fmt.Println("grew to cover demand:", grown >= 600)
	for _, n := range names {
		if err := arena.Release(n); err != nil {
			panic(err)
		}
	}
	// Light churn drives the epoch-gated drain: each release below the
	// hysteresis threshold scores toward retiring the top level.
	for i := 0; i < 5000 && arena.Stats().CapacityNow == grown; i++ {
		n, _ := arena.Acquire()
		_ = arena.Release(n)
	}
	st := arena.Stats()
	fmt.Println("shrank after the burst:", st.CapacityNow < grown)
	fmt.Println("peak remembered:", st.PeakCapacity == grown)
	// Output:
	// starts small: true
	// grew to cover demand: true
	// shrank after the burst: true
	// peak remembered: true
}

// ExampleCountingDevice elects a bounded committee: no matter how many
// contenders race, at most τ win.
func ExampleCountingDevice() {
	dev, err := shmrename.NewCountingDevice(32, 4)
	if err != nil {
		panic(err)
	}
	winners := 0
	for i := 0; i < 100; i++ {
		if dev.Acquire(1, 32) >= 0 {
			winners++
		}
	}
	fmt.Println("winners:", winners)
	fmt.Println("confirmed:", dev.Confirmed())
	// Output:
	// winners: 4
	// confirmed: 4
}
