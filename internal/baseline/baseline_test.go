package baseline

import (
	"testing"

	"shmrename/internal/core"
	"shmrename/internal/sched"
)

func TestInstancesSatisfyCoreInterface(t *testing.T) {
	var _ core.Instance = NewLinearScan(4)
	var _ core.Instance = NewUniformProbe(4)
	var _ core.Instance = NewSegmentedProbe(4, 0)
}

func runAll(t *testing.T, inst core.Instance, seed uint64) []sched.Result {
	t.Helper()
	res := sched.Run(sched.Config{
		N: inst.N(), Seed: seed, Fast: sched.FastFIFO, Body: inst.Body,
	})
	if got := sched.CountStatus(res, sched.Named); got != inst.N() {
		t.Fatalf("%s: %d named, want %d", inst.Label(), got, inst.N())
	}
	if err := sched.VerifyUnique(res, inst.M()); err != nil {
		t.Fatalf("%s: %v", inst.Label(), err)
	}
	return res
}

func TestAllBaselinesRenameTightly(t *testing.T) {
	for _, n := range []int{1, 2, 16, 257, 1024} {
		runAll(t, NewLinearScan(n), 1)
		runAll(t, NewUniformProbe(n), 2)
		runAll(t, NewSegmentedProbe(n, 0), 3)
	}
}

func TestLinearScanStepComplexityLinear(t *testing.T) {
	// The last process to be granted steps scans nearly the whole space:
	// max steps must be exactly n under FIFO (some process claims name
	// n-1 after n failed probes... at least n steps for someone).
	const n = 256
	res := runAll(t, NewLinearScan(n), 5)
	if got := sched.MaxSteps(res); got != n {
		t.Fatalf("linear scan max steps = %d, want %d", got, n)
	}
}

func TestUniformProbeTailIsHeavy(t *testing.T) {
	// Folklore baseline: expected max steps grows ~linearly; check it
	// exceeds the tight algorithm's logarithmic scale by a wide margin.
	const n = 1024
	res := runAll(t, NewUniformProbe(n), 7)
	if got := sched.MaxSteps(res); got < int64(4*core.CeilLog2(n)) {
		t.Fatalf("uniform probing max steps %d suspiciously small", got)
	}
}

func TestSegmentedProbeCapRespected(t *testing.T) {
	const n = 512
	inst := NewSegmentedProbe(n, 10)
	res := runAll(t, inst, 9)
	for _, r := range res {
		if r.Steps > int64(10+n) {
			t.Fatalf("pid %d took %d steps beyond cap", r.PID, r.Steps)
		}
	}
}

func TestBaselinePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewLinearScan(0) },
		func() { NewUniformProbe(0) },
		func() { NewSegmentedProbe(-1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid n accepted")
				}
			}()
			fn()
		}()
	}
}

func TestLabels(t *testing.T) {
	if NewLinearScan(4).Label() != "linear-scan" {
		t.Fatal("linear scan label")
	}
	if NewUniformProbe(4).Label() != "uniform-probe" {
		t.Fatal("uniform probe label")
	}
	if NewSegmentedProbe(4, 5).Label() != "segmented-probe(5)" {
		t.Fatal("segmented probe label")
	}
}
