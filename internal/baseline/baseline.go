// Package baseline implements the reference renaming algorithms the paper
// compares against (experiment E8): the deterministic linear scan (the
// Θ(n) deterministic bound of [9]), folklore uniform random probing on a
// tight space, and segmented probing. Each is packaged as a core.Instance
// so it runs on the same simulator and measurement pipeline as the
// paper's algorithms.
package baseline

import (
	"fmt"

	"shmrename/internal/shm"
)

// LinearScan is the deterministic baseline: every process test-and-sets
// the names 0, 1, 2, ... in order until it wins one. Step complexity is
// Θ(n) — the deterministic lower bound for tight renaming [9], included
// to exhibit the exponential gap the randomized algorithms close.
type LinearScan struct {
	n     int
	space *shm.NameSpace
}

// NewLinearScan builds a linear-scan instance for n processes on n names.
func NewLinearScan(n int) *LinearScan {
	if n < 1 {
		panic("baseline: LinearScan requires n >= 1")
	}
	return &LinearScan{n: n, space: shm.NewNameSpace("names", n)}
}

// Label implements core.Instance.
func (a *LinearScan) Label() string { return "linear-scan" }

// N implements core.Instance.
func (a *LinearScan) N() int { return a.n }

// M implements core.Instance.
func (a *LinearScan) M() int { return a.n }

// Probeables implements core.Instance.
func (a *LinearScan) Probeables() map[string]shm.Probeable {
	return map[string]shm.Probeable{"names": a.space}
}

// Clock implements core.Instance.
func (a *LinearScan) Clock() func() { return nil }

// Body implements core.Instance.
func (a *LinearScan) Body(p *shm.Proc) int {
	for i := 0; i < a.n; i++ {
		if a.space.TryClaim(p, i) {
			return i
		}
	}
	return -1 // unreachable with n processes on n names
}

// UniformProbe is the folklore randomized baseline on a tight space:
// repeatedly test-and-set a uniformly random name in [0, n). The last
// contenders face a nearly full space, so the expected maximum step count
// grows linearly in n (coupon-collector tail).
type UniformProbe struct {
	n     int
	space *shm.NameSpace
}

// NewUniformProbe builds a uniform-probing instance for n processes on n
// names.
func NewUniformProbe(n int) *UniformProbe {
	if n < 1 {
		panic("baseline: UniformProbe requires n >= 1")
	}
	return &UniformProbe{n: n, space: shm.NewNameSpace("names", n)}
}

// Label implements core.Instance.
func (a *UniformProbe) Label() string { return "uniform-probe" }

// N implements core.Instance.
func (a *UniformProbe) N() int { return a.n }

// M implements core.Instance.
func (a *UniformProbe) M() int { return a.n }

// Probeables implements core.Instance.
func (a *UniformProbe) Probeables() map[string]shm.Probeable {
	return map[string]shm.Probeable{"names": a.space}
}

// Clock implements core.Instance.
func (a *UniformProbe) Clock() func() { return nil }

// Body implements core.Instance.
func (a *UniformProbe) Body(p *shm.Proc) int {
	r := p.Rand()
	for {
		i := r.Intn(a.n)
		if a.space.TryClaim(p, i) {
			return i
		}
	}
}

// SegmentedProbe probes uniformly at random but falls back to a linear
// scan from the last probe once failures exceed the given budget. It is
// the pragmatic engineering hybrid: expected O(1)-per-free-fraction probes
// with a deterministic O(n) cap, used to sanity-check that the paper's
// structured algorithms beat simple engineering, not just strawmen.
type SegmentedProbe struct {
	n      int
	budget int
	space  *shm.NameSpace
}

// NewSegmentedProbe builds the hybrid instance. budget <= 0 selects
// 2·⌈log₂ n⌉ random probes before scanning.
func NewSegmentedProbe(n, budget int) *SegmentedProbe {
	if n < 1 {
		panic("baseline: SegmentedProbe requires n >= 1")
	}
	if budget <= 0 {
		budget = 2 * ceilLog2(n)
		if budget < 2 {
			budget = 2
		}
	}
	return &SegmentedProbe{n: n, budget: budget, space: shm.NewNameSpace("names", n)}
}

func ceilLog2(n int) int {
	l := 0
	for v := n - 1; v > 0; v >>= 1 {
		l++
	}
	return l
}

// Label implements core.Instance.
func (a *SegmentedProbe) Label() string { return fmt.Sprintf("segmented-probe(%d)", a.budget) }

// N implements core.Instance.
func (a *SegmentedProbe) N() int { return a.n }

// M implements core.Instance.
func (a *SegmentedProbe) M() int { return a.n }

// Probeables implements core.Instance.
func (a *SegmentedProbe) Probeables() map[string]shm.Probeable {
	return map[string]shm.Probeable{"names": a.space}
}

// Clock implements core.Instance.
func (a *SegmentedProbe) Clock() func() { return nil }

// Body implements core.Instance.
func (a *SegmentedProbe) Body(p *shm.Proc) int {
	r := p.Rand()
	last := 0
	for k := 0; k < a.budget; k++ {
		i := r.Intn(a.n)
		if a.space.TryClaim(p, i) {
			return i
		}
		last = i
	}
	for k := 1; k <= a.n; k++ {
		i := last + k
		if i >= a.n {
			i -= a.n
		}
		if a.space.TryClaim(p, i) {
			return i
		}
	}
	return -1 // unreachable with n processes on n names
}
