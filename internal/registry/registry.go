// Package registry is the backend registry of the long-lived renaming
// arenas: every arena implementation self-registers at init time with its
// report name, a constructor from one common Config, and a set of
// capability flags, so that experiments, storms, and the cross-backend
// conformance suite (package conformance) enumerate all implementations
// instead of hand-wiring private backend lists. Adding a backend means
// adding one register file to its package and listing it in
// internal/registry/all — no experiment or test file changes.
//
// The package is a leaf: it owns the Arena interface (package longlived
// aliases it, so existing code is unaffected) and imports only the shm
// kernel, which lets every backend package import the registry without
// cycles.
package registry

import (
	"fmt"
	"sort"

	"shmrename/internal/shm"
)

// Arena is a long-lived renaming arena. All methods taking a *shm.Proc
// perform step-counted shared-memory operations and are safe for concurrent
// use by distinct procs. Package longlived aliases this type, so
// longlived.Arena and registry.Arena are the same interface.
type Arena interface {
	// Label names the backend for reports.
	Label() string
	// Capacity is the maximum number of concurrent holders the arena
	// guarantees to serve (acquires beyond it may report full).
	Capacity() int
	// NameBound bounds issued names: they lie in [0, NameBound).
	NameBound() int
	// Acquire claims a name unique among current holders, or returns -1
	// after MaxPasses full passes found no free slot (arena full).
	Acquire(p *shm.Proc) int
	// AcquireN claims up to k names unique among current holders, appending
	// them to out and returning the extended slice. It stops short of k only
	// after MaxPasses full passes left the remainder unserved (arena full);
	// backends with word-granular storage batch the claims — up to 64 names
	// per shared-memory step — instead of running k independent searches.
	AcquireN(p *shm.Proc, k int, out []int) []int
	// Release returns a name acquired earlier. Only the current holder may
	// release it.
	Release(p *shm.Proc, name int)
	// ReleaseN returns a batch of names acquired earlier. Backends with
	// word-granular storage coalesce names sharing a bitmap word into one
	// clearing step. The slice is not retained.
	ReleaseN(p *shm.Proc, names []int)
	// Touch reads the register backing a held name (one step): the
	// stand-in for work a client does against its name while holding it.
	Touch(p *shm.Proc, name int)
	// IsHeld reports whether the name is currently held, without spending
	// a step (diagnostics and release validation).
	IsHeld(name int) bool
	// Held counts currently held names, without spending steps.
	Held() int
	// Probeables exposes the arena's shared structures to adaptive
	// adversary policies, keyed by operation-space label.
	Probeables() map[string]shm.Probeable
	// Clock returns the per-step hardware hook for externally clocked
	// simulated runs, or nil.
	Clock() func()
}

// Elastic is the optional interface of arenas whose resident level ladder
// tracks load at runtime (Caps.Elastic backends, the sharded frontend over
// elastic sub-arenas, and caching layers above either). Fixed-capacity
// wrappers may also implement it by delegation, reporting constant values.
type Elastic interface {
	// CapacityNow is the instantaneous claimable capacity: the summed sizes
	// of the active (non-draining) levels. It moves between the configured
	// minimum and Capacity as the arena grows and shrinks.
	CapacityNow() int
	// PeakCapacity is the high-water mark of CapacityNow over the arena's
	// lifetime.
	PeakCapacity() int
	// Grow force-appends the next geometric level (or cancels an in-flight
	// drain), reporting whether the ladder changed. Acquire paths call the
	// same transition on demand; tests and benchmarks force it.
	Grow() bool
	// Shrink force-initiates (and, when the top level is already empty,
	// completes) a drain of the top active level, reporting whether a level
	// was retired. It never reclaims a held name: a drain with live holders
	// stays pending until they release.
	Shrink() bool
}

// Footprint is the optional interface of arenas that can report their
// resident shared-state storage — bitmap words, saturation hints, and
// lease stamps. It is the resident-bytes proxy behind the elastic arena's
// proportional-memory claim; fixed backends report their static footprint.
type Footprint interface {
	// ResidentBytes is the arena's current shared-state storage in bytes.
	ResidentBytes() int64
}

// Drainer is the optional interface of elastic arenas consulted by caching
// layers: a released name in a draining level must flow back to the pool
// instead of being parked, or the parked claim would pin the drain forever.
type Drainer interface {
	// Draining reports whether name lies in a level being drained for
	// retirement (no step cost; a racy snapshot is fine — a stale false
	// merely delays the drain until the cache recirculates the name).
	Draining(name int) bool
}

// Flusher is implemented by caching layers (the word-block lease cache)
// whose Release parks names locally instead of returning them to the pool:
// Flush returns every parked name, so drain checks and conformance laws can
// restore pool wholeness before asserting Held() == 0 accounts for
// everything.
type Flusher interface {
	// Flush returns all parked names to the backend and reports how many.
	Flush(p *shm.Proc) int
}

// Caps are the capability flags of a registered backend. The conformance
// suite gates its laws on them: a law only runs against backends that claim
// the capability it exercises, so one suite covers heterogeneous backends
// without special-casing names.
type Caps struct {
	// Releasable backends support Release/ReleaseN recycling names
	// indefinitely (all current backends; a one-shot renamer would not).
	Releasable bool
	// Batch backends serve AcquireN/ReleaseN word-granularly — up to 64
	// names per shared-memory step — instead of looping single operations.
	Batch bool
	// Leasable backends accept Config.Epochs and then implement
	// longlived.Recoverable: every claim carries a holder/epoch stamp and a
	// recovery sweep can reclaim a dead holder's names.
	Leasable bool
	// Sharded backends stripe the name space across independent sub-arenas.
	Sharded bool
	// WordScan backends search free slots with the word-granular claim
	// engine (one snapshot-scan-CAS per 64-name bitmap word).
	WordScan bool
	// Deterministic backends replay bit-identically under the simulated
	// scheduler: same seed, same schedule, same grant sequence and step
	// counts. Gates the fingerprint and adversary-churn laws, and selects
	// the backends the simulated E15 churn experiment sweeps.
	Deterministic bool
	// External backends are backed by OS state (an mmap-backed file): they
	// run natively only, construct real resources per instance, and are
	// excluded from simulated experiments and from public NewArena lookup
	// (OpenArena is their surface).
	External bool
	// Cached backends are caching layers whose Release parks names locally
	// (registry.Flusher): parked names are claimed in the pool but held by
	// nobody, their recovery unit is the whole handle rather than one proc,
	// and Acquire may report full while parked names exist elsewhere.
	Cached bool
	// LeaksOnCrash backends have documented crash windows that leak side
	// capacity names alone cannot restore (the τ arena's counting-device
	// bits); fault-injection laws discount the leak instead of failing.
	LeaksOnCrash bool
	// Elastic backends size their resident level ladder to the current
	// contention: levels are appended under load and drained/retired when
	// occupancy falls, between Config.Elastic.MinCapacity and Capacity.
	// They implement the registry Elastic interface; the conformance suite
	// gates its resize laws (grow-then-fill uniqueness, shrink-never-
	// reclaims-held, storm-under-forced-resizes) on this flag.
	Elastic bool
	// SelfHealing backends expose maintenance-side bit seizure
	// (longlived.LeaseDomain.Seize) alongside their lease stamps, so the
	// integrity scrubber can quarantine irreparably damaged bitmap words —
	// withdraw them from circulation — instead of merely reporting them.
	// Backends whose claim bits carry side state the scrubber cannot also
	// take (the τ arena's counting devices, the elastic ladder's drain
	// accounting) are scrub-checkable but not self-healing. Gates the
	// conformance quarantine law.
	SelfHealing bool
	// DenseProcs backends require concurrently active proc IDs to be
	// pairwise distinct modulo Config.Procs (the classic shared-memory model
	// of N known processes — the exclusive-selection tournament assigns
	// leaves by ID). The simulator and the conformance storms satisfy this
	// with dense IDs 0..n-1; the public arena's pooled proc contexts mint
	// unbounded IDs and cannot, so NewArena refuses these backends.
	DenseProcs bool
}

// Config is the common construction surface every registered backend
// accepts. Fields a backend has no use for are ignored; zero values select
// the backend's canonical defaults, so Config{Capacity: n} is always valid.
type Config struct {
	// Capacity is the number of concurrent holders the arena guarantees to
	// serve (required, >= 1).
	Capacity int
	// MaxPasses bounds full acquire passes before the backend reports the
	// arena full; 0 selects the backend default (unlimited for in-process
	// backends — simulated runs rely on the scheduler's step budget).
	MaxPasses int
	// Epochs, when non-nil, enables the crash-recovery lease layer on
	// Leasable backends (see longlived.LeaseOpts). External backends are
	// always lease-stamped and use it as their clock override.
	Epochs shm.EpochSource
	// Holder, when non-zero, stamps every claim with this single holder
	// identity instead of the backend default (per-proc identities for
	// in-process backends, the process ID for external ones).
	Holder uint64
	// Alive overrides the liveness oracle of external backends' on-open
	// recovery sweeps; in-process backends ignore it (their sweeps are
	// driven by recovery.Sweeper, which takes its own oracle).
	Alive func(holder uint64) bool
	// Procs hints the maximum number of concurrently active distinct proc
	// IDs, for backends whose arbitration structures are sized by
	// contender count (the exclusive-selection tournament). 0 selects
	// Capacity.
	Procs int
	// Label prefixes the backend's operation-space labels; "" selects the
	// backend default. Conformance instances use distinct labels so interned
	// operation spaces never collide across subtests.
	Label string
	// Scan overrides the free-slot scan engine on backends that implement
	// both: "bit" forces the per-TAS probe path, "word" the word-granular
	// claim engine, "" the backend's canonical default (the one its
	// registered Caps.WordScan flag describes). Backends with a single
	// engine ignore it. The word-vs-bit experiment sweeps this dimension
	// across registry backends instead of hand-wiring twin constructors.
	Scan string
	// Padded, when true, pads shared words to cache-line stride on backends
	// that support it (native multicore runs); simulated runs leave it false.
	Padded bool
	// Shards overrides the stripe count of sharded frontends; 0 selects the
	// backend default. Unsharded backends ignore it.
	Shards int
	// Elastic overrides the resize thresholds of elastic backends (zero
	// fields select the backend defaults); non-elastic backends ignore it.
	// The ladder maximum is always Capacity — the capacity guarantee is
	// reached through growth.
	Elastic *ElasticParams
}

// ElasticParams are the resize knobs of elastic backends (see
// Config.Elastic). All fields are optional; zero selects the default.
type ElasticParams struct {
	// MinCapacity floors the resident ladder: the arena never shrinks below
	// the level prefix covering it. Default 64 (one bitmap word), clamped
	// to Capacity.
	MinCapacity int
	// GrowAt is the occupancy fraction of the current ladder at which a
	// successful acquire proactively appends the next level, in (0, 1).
	// Default 0.75. (A failed full pass grows unconditionally.)
	GrowAt float64
	// ShrinkAt is the occupancy hysteresis for draining the top level:
	// shrinking becomes eligible while occupancy stays at or below
	// ShrinkAt x (capacity without the top level), in [0, GrowAt).
	// Default 0.25.
	ShrinkAt float64
	// ShrinkAfter is the number of consecutive shrink-eligible release
	// observations before a drain actually starts — the debounce that keeps
	// a diurnal trough from thrashing the ladder. Default 128.
	ShrinkAfter int
}

// Backend is one registered arena implementation.
type Backend struct {
	// Name is the unique report name ("level-array", "tau-longlived", ...).
	Name string
	// Caps are the backend's capability flags.
	Caps Caps
	// New constructs a fresh arena from the common config. Constructors
	// panic on invalid configuration, exactly like the backends' own New
	// functions.
	New func(cfg Config) Arena
}

// backends is the registration table. Registration happens in package init
// functions (serialized by the runtime); after init the table is read-only.
var backends = map[string]Backend{}

// Register adds a backend to the registry. It panics on a duplicate or
// empty name or a nil constructor — both are programming errors in a
// backend's register file, best caught at init.
func Register(b Backend) {
	if b.Name == "" {
		panic("registry: Register with empty name")
	}
	if b.New == nil {
		panic(fmt.Sprintf("registry: Register(%q) with nil constructor", b.Name))
	}
	if _, dup := backends[b.Name]; dup {
		panic(fmt.Sprintf("registry: backend %q registered twice", b.Name))
	}
	backends[b.Name] = b
}

// All returns every registered backend sorted by name, so enumeration
// order — and therefore experiment-table row order and subtest order — is
// stable regardless of package-initialization order.
func All() []Backend {
	out := make([]Backend, 0, len(backends))
	for _, b := range backends {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns the backend registered under name.
func Lookup(name string) (Backend, bool) {
	b, ok := backends[name]
	return b, ok
}
