package registry_test

import (
	"sort"
	"testing"

	"shmrename/internal/registry"
	_ "shmrename/internal/registry/all"
)

// TestRegisteredSet pins the in-tree backend roster: a new backend must be
// added here (and to registry/all) deliberately, and a registration that
// silently stops firing is caught.
func TestRegisteredSet(t *testing.T) {
	want := []string{
		"elastic-level",
		"exclusive-selection",
		"lease-cached",
		"level-array",
		"persist",
		"sharded",
		"tau-longlived",
	}
	var got []string
	for _, b := range registry.All() {
		got = append(got, b.Name)
	}
	if !sort.StringsAreSorted(got) {
		t.Errorf("All() not sorted by name: %v", got)
	}
	if len(got) != len(want) {
		t.Fatalf("registered backends %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registered backends %v, want %v", got, want)
		}
	}
}

func TestLookup(t *testing.T) {
	b, ok := registry.Lookup("sharded")
	if !ok || b.Name != "sharded" {
		t.Fatalf("Lookup(sharded) = %+v, %v", b, ok)
	}
	if !b.Caps.Sharded || !b.Caps.WordScan {
		t.Errorf("sharded caps %+v missing Sharded/WordScan", b.Caps)
	}
	if _, ok := registry.Lookup("no-such-backend"); ok {
		t.Error("Lookup of unknown backend succeeded")
	}
}

// TestCapsConsistency checks cross-flag invariants every registration must
// satisfy.
func TestCapsConsistency(t *testing.T) {
	for _, b := range registry.All() {
		if b.Caps.Cached && b.Caps.Deterministic {
			t.Errorf("%s: Cached backends park names in scheduler-shaped slots and cannot be Deterministic", b.Name)
		}
		if b.Caps.LeaksOnCrash && !b.Caps.Leasable {
			t.Errorf("%s: LeaksOnCrash only makes sense for Leasable backends", b.Name)
		}
		if b.New == nil {
			t.Errorf("%s: nil constructor", b.Name)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	mustPanic := func(name string, b registry.Backend) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		registry.Register(b)
	}
	mustPanic("duplicate", registry.Backend{
		Name: "sharded",
		New:  func(registry.Config) registry.Arena { return nil },
	})
	mustPanic("empty name", registry.Backend{
		New: func(registry.Config) registry.Arena { return nil },
	})
	mustPanic("nil constructor", registry.Backend{Name: "constructorless"})
}

// TestConstructorsHonorConfig spot-checks that every registered (in-process)
// constructor respects the common capacity knob.
func TestConstructorsHonorConfig(t *testing.T) {
	for _, b := range registry.All() {
		if b.Caps.External {
			continue // OS-backed; exercised by the conformance suite
		}
		a := b.New(registry.Config{Capacity: 32, Label: "t-reg-" + b.Name})
		if a.Capacity() != 32 {
			t.Errorf("%s: capacity %d, want 32", b.Name, a.Capacity())
		}
		if a.NameBound() < 32 {
			t.Errorf("%s: name bound %d below capacity", b.Name, a.NameBound())
		}
	}
}
