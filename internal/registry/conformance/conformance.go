// Package conformance is the cross-backend law suite of the arena
// registry: Suite runs every arena contract the repository relies on —
// uniqueness under storms, acquire/release/batch semantics, public
// error-sentinel behavior, determinism fingerprints, adversary-churn
// invariants, and lease/recovery composition — against one registered
// backend, with each law gated by the backend's capability flags. A
// backend that registers with honest flags gets exactly the laws it must
// satisfy and no others; registering a new backend in
// internal/registry/all is all it takes to put it under the full suite.
package conformance

import (
	"errors"
	"io"
	"testing"

	"shmrename"
	"shmrename/internal/longlived"
	"shmrename/internal/prng"
	"shmrename/internal/recovery"
	"shmrename/internal/registry"
	"shmrename/internal/sched"
	"shmrename/internal/shm"
)

// suiteCapacity is the arena capacity the in-process laws use: large
// enough for word-granular geometry (more than one 64-name bitmap word)
// and multi-shard striping, small enough that every law is fast.
const suiteCapacity = 96

// nativeProc returns an ungated proc for direct native arena use.
func nativeProc(id int) *shm.Proc {
	return shm.NewProc(id, prng.NewStream(7, id), nil, 1<<22)
}

// build constructs one instance of the backend and registers its cleanup
// (external backends hold OS resources behind io.Closer).
func build(t *testing.T, b registry.Backend, cfg registry.Config) registry.Arena {
	t.Helper()
	a := b.New(cfg)
	if c, ok := a.(io.Closer); ok {
		t.Cleanup(func() { c.Close() })
	}
	return a
}

// flush returns parked names to the pool on caching backends, so drain
// assertions account for every claim.
func flush(a registry.Arena, p *shm.Proc) {
	if f, ok := a.(registry.Flusher); ok {
		f.Flush(p)
	}
}

// cached reports claimed-but-parked names on caching backends, 0 elsewhere.
func cached(a registry.Arena) int {
	if c, ok := a.(interface{ Cached() int }); ok {
		return c.Cached()
	}
	return 0
}

// Suite runs every applicable conformance law against the backend as
// subtests. Laws whose capability the backend does not claim are skipped
// structurally (no subtest), so `go test` output lists exactly the
// contracts each backend is held to.
func Suite(t *testing.T, b registry.Backend) {
	t.Run("fill-unique", func(t *testing.T) { lawFillUnique(t, b) })
	if b.Caps.Releasable {
		t.Run("recycle", func(t *testing.T) { lawRecycle(t, b) })
	}
	if b.Caps.Batch {
		t.Run("batch", func(t *testing.T) { lawBatch(t, b) })
	}
	t.Run("storm", func(t *testing.T) { lawStorm(t, b) })
	if b.Caps.Deterministic && !b.Caps.External {
		t.Run("adversary-churn", func(t *testing.T) { lawAdversaryChurn(t, b) })
		t.Run("fingerprint", func(t *testing.T) { lawFingerprint(t, b) })
	}
	if b.Caps.Leasable {
		t.Run("lease-recovery", func(t *testing.T) { lawLeaseRecovery(t, b) })
	}
	if b.Caps.Elastic {
		t.Run("elastic-resize", func(t *testing.T) { lawElastic(t, b) })
	}
	if b.Caps.SelfHealing {
		t.Run("self-healing", func(t *testing.T) { lawSelfHealing(t, b) })
	}
	t.Run("sentinels", func(t *testing.T) { lawSentinels(t, b) })
}

// lawFillUnique: a single proc drains the arena — at least Capacity
// acquires succeed before the arena reports full, every granted name is
// unique and inside [0, NameBound), and the held count tracks exactly.
func lawFillUnique(t *testing.T, b registry.Backend) {
	a := build(t, b, registry.Config{Capacity: suiteCapacity, MaxPasses: 8, Label: "conf-fill-" + b.Name})
	p := nativeProc(0)
	seen := make(map[int]bool)
	for {
		n := a.Acquire(p)
		if n == -1 {
			break
		}
		if n < 0 || n >= a.NameBound() {
			t.Fatalf("acquire %d: name %d outside [0, %d)", len(seen), n, a.NameBound())
		}
		if seen[n] {
			t.Fatalf("acquire %d: name %d granted twice", len(seen), n)
		}
		seen[n] = true
		if len(seen) > a.NameBound() {
			t.Fatal("more live names than the name bound")
		}
	}
	if len(seen) < suiteCapacity {
		t.Fatalf("only %d acquires before full; capacity %d is guaranteed", len(seen), suiteCapacity)
	}
	if h := a.Held(); h != len(seen) {
		t.Fatalf("held %d, want %d", h, len(seen))
	}
	for n := range seen {
		if !a.IsHeld(n) {
			t.Fatalf("granted name %d not reported held", n)
		}
	}
}

// lawRecycle: a full drain returns every name, and the drained arena
// serves a complete second generation (long-livedness).
func lawRecycle(t *testing.T, b registry.Backend) {
	a := build(t, b, registry.Config{Capacity: suiteCapacity, MaxPasses: 8, Label: "conf-recycle-" + b.Name})
	p := nativeProc(0)
	for gen := 0; gen < 2; gen++ {
		var names []int
		seen := make(map[int]bool)
		for len(names) < suiteCapacity {
			n := a.Acquire(p)
			if n < 0 {
				t.Fatalf("generation %d: full after %d acquires, capacity %d guaranteed", gen, len(names), suiteCapacity)
			}
			if seen[n] {
				t.Fatalf("generation %d: name %d granted twice", gen, n)
			}
			seen[n] = true
			names = append(names, n)
		}
		for _, n := range names {
			a.Touch(p, n)
			a.Release(p, n)
			if a.IsHeld(n) {
				t.Fatalf("generation %d: name %d held after release", gen, n)
			}
		}
		if h := a.Held(); h != 0 {
			t.Fatalf("generation %d: held %d after drain, want 0", gen, h)
		}
	}
	flush(a, p)
	if h, c := a.Held(), cached(a); h != 0 || c != 0 {
		t.Fatalf("after flush: held %d cached %d, want 0/0", h, c)
	}
}

// lawBatch: AcquireN serves a half-capacity batch completely on a fresh
// arena, batch names are unique, and ReleaseN restores pool wholeness.
func lawBatch(t *testing.T, b registry.Backend) {
	a := build(t, b, registry.Config{Capacity: suiteCapacity, MaxPasses: 8, Label: "conf-batch-" + b.Name})
	p := nativeProc(0)
	k := suiteCapacity / 2
	names := a.AcquireN(p, k, nil)
	if len(names) != k {
		t.Fatalf("fresh arena served %d of a batch of %d", len(names), k)
	}
	seen := make(map[int]bool)
	for _, n := range names {
		if n < 0 || n >= a.NameBound() {
			t.Fatalf("batch name %d outside [0, %d)", n, a.NameBound())
		}
		if seen[n] {
			t.Fatalf("batch name %d granted twice", n)
		}
		seen[n] = true
		if !a.IsHeld(n) {
			t.Fatalf("batch name %d not reported held", n)
		}
	}
	if h := a.Held(); h != k {
		t.Fatalf("held %d after batch, want %d", h, k)
	}
	// A second batch on top must stay disjoint from the first.
	more := a.AcquireN(p, k, nil)
	if len(more) != k {
		t.Fatalf("second batch served %d of %d", len(more), k)
	}
	for _, n := range more {
		if seen[n] {
			t.Fatalf("second batch regranted held name %d", n)
		}
	}
	a.ReleaseN(p, names)
	a.ReleaseN(p, more)
	flush(a, p)
	if h, c := a.Held(), cached(a); h != 0 || c != 0 {
		t.Fatalf("after batch drain: held %d cached %d, want 0/0", h, c)
	}
}

// lawStorm hammers the arena from real goroutines (CI runs this suite
// under -race) with a monitor asserting that no name is ever held twice.
// Non-caching in-process backends must additionally complete every cycle:
// fewer workers than capacity can never starve.
func lawStorm(t *testing.T, b registry.Backend) {
	const (
		workers = 8
		cycles  = 150
	)
	a := build(t, b, registry.Config{Capacity: suiteCapacity, Label: "conf-storm-" + b.Name})
	mon := longlived.NewMonitor(a.NameBound())
	body := longlived.ChurnBody(a, mon, longlived.ChurnConfig{Cycles: cycles, HoldMin: 0, HoldMax: 4, Yield: true})
	sched.RunNative(workers, 23, body)
	if err := mon.Err(); err != nil {
		t.Fatal(err)
	}
	if mon.Acquires() == 0 {
		t.Fatal("storm made no progress")
	}
	if full := !b.Caps.Cached && !b.Caps.External; full && mon.Acquires() != workers*cycles {
		t.Fatalf("storm completed %d of %d acquires — a worker observed the arena full below capacity", mon.Acquires(), workers*cycles)
	}
	p := nativeProc(0)
	flush(a, p)
	if h, c := a.Held(), cached(a); h != 0 || c != 0 {
		t.Fatalf("after storm: held %d cached %d, want 0/0", h, c)
	}
}

// lawAdversaryChurn drives the arena through the deterministic simulated
// scheduler at full subscription (one proc per capacity slot): every
// worker must complete every cycle within the step budget, and the name
// pool must be whole afterwards.
func lawAdversaryChurn(t *testing.T, b registry.Backend) {
	const cycles = 3
	n := suiteCapacity
	a := build(t, b, registry.Config{Capacity: n, Label: "conf-churn-" + b.Name})
	mon := longlived.NewMonitor(a.NameBound())
	res := sched.Run(sched.Config{
		N:    n,
		Seed: 31,
		Fast: sched.FastRandom,
		Body: longlived.ChurnBody(a, mon, longlived.ChurnConfig{Cycles: cycles, HoldMin: 0, HoldMax: 6}),
	})
	if err := mon.Err(); err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Status == sched.Limited {
			t.Fatalf("proc %d exceeded the step budget", r.PID)
		}
	}
	if mon.Acquires() != int64(n*cycles) {
		t.Fatalf("churn completed %d of %d acquires", mon.Acquires(), n*cycles)
	}
	if mon.MaxActive() > int64(n) {
		t.Fatalf("peak occupancy %d exceeds the %d churning procs", mon.MaxActive(), n)
	}
	if mon.MaxName() >= int64(a.NameBound()) {
		t.Fatalf("max issued name %d breaches NameBound %d", mon.MaxName(), a.NameBound())
	}
	if h := a.Held(); h != 0 {
		t.Fatalf("%d names held after simulated drain", h)
	}
}

// lawFingerprint: deterministic backends replay bit-identically — two runs
// at the same seed produce the same grant aggregate, including exact step
// counts.
func lawFingerprint(t *testing.T, b registry.Backend) {
	type fingerprint struct {
		acquires, maxActive, maxName, steps int64
	}
	run := func(label string) fingerprint {
		a := build(t, b, registry.Config{Capacity: 64, Label: label})
		mon := longlived.NewMonitor(a.NameBound())
		sched.Run(sched.Config{
			N:    64,
			Seed: 47,
			Fast: sched.FastRandom,
			Body: longlived.ChurnBody(a, mon, longlived.ChurnConfig{Cycles: 3, HoldMin: 0, HoldMax: 6}),
		})
		if err := mon.Err(); err != nil {
			t.Fatal(err)
		}
		return fingerprint{mon.Acquires(), mon.MaxActive(), mon.MaxName(), mon.AcquireSteps()}
	}
	// Identical labels: the fingerprint must not depend on anything but
	// (seed, schedule, backend shape).
	first := run("conf-fp-" + b.Name)
	second := run("conf-fp-" + b.Name)
	if first != second {
		t.Fatalf("replay diverged: %+v vs %+v — backend registered Deterministic but is not", first, second)
	}
}

// lawLeaseRecovery: on leasable backends, claims carry lease stamps; a
// heartbeating holder survives a sweep, a silent holder's names are
// reclaimed once stale, and the recovered pool serves a full fresh
// generation.
func lawLeaseRecovery(t *testing.T, b registry.Backend) {
	const (
		capacity = 32
		holder   = 7001
		ttl      = 2
	)
	ep := shm.NewCounterEpochs(1)
	a := build(t, b, registry.Config{
		Capacity:  capacity,
		MaxPasses: 8,
		Epochs:    ep,
		Holder:    holder,
		Alive:     func(uint64) bool { return false },
		Label:     "conf-lease-" + b.Name,
	})
	rec, ok := a.(longlived.Recoverable)
	if !ok {
		t.Fatalf("backend registered Leasable but %T does not implement longlived.Recoverable", a)
	}
	p := nativeProc(0)
	var names []int
	for i := 0; i < 5; i++ {
		n := a.Acquire(p)
		if n < 0 {
			t.Fatalf("acquire %d failed on an empty arena", i)
		}
		names = append(names, n)
	}
	sw := recovery.NewSweeper(rec, recovery.Config{
		TTL:    ttl,
		Epochs: ep,
		Alive:  func(uint64) bool { return false },
	})
	// A live holder heartbeats: its names must survive sweeps past TTL.
	for i := 0; i < 4; i++ {
		ep.Advance(ttl + 1)
		longlived.HeartbeatHolder(rec, p, holder, ep.Now())
		sw.Sweep(p)
	}
	for _, n := range names {
		if !a.IsHeld(n) && cached(a) == 0 {
			t.Fatalf("name %d reclaimed under an active heartbeat", n)
		}
	}
	// The holder goes silent (crash): sweeps reclaim everything — on
	// caching backends including the parked remainder of the block.
	for i := 0; i < 6; i++ {
		ep.Advance(ttl + 2)
		sw.Sweep(p)
	}
	for _, n := range names {
		if a.IsHeld(n) {
			t.Fatalf("name %d still held after the holder's lease lapsed", n)
		}
	}
	if h, c := a.Held(), cached(a); h != 0 || c != 0 {
		t.Fatalf("after recovery: held %d cached %d, want 0/0", h, c)
	}
	// Conservation: the recovered arena serves a complete generation.
	seen := make(map[int]bool)
	for i := 0; i < capacity; i++ {
		n := a.Acquire(p)
		if n < 0 {
			t.Fatalf("post-recovery acquire %d failed; recovery lost names", i)
		}
		if seen[n] {
			t.Fatalf("post-recovery name %d granted twice", n)
		}
		seen[n] = true
	}
}

// lawSentinels exercises the public shmrename surface: constructible
// backends must wrap ErrArenaFull, ErrNotHeld, and ErrClosed exactly as
// documented; external and dense-proc backends must be refused with an
// explanatory error rather than misbehave.
func lawSentinels(t *testing.T, b registry.Backend) {
	cfg := shmrename.ArenaConfig{Capacity: 8, Backend: shmrename.ArenaBackend(b.Name)}
	na, err := shmrename.NewArena(cfg)
	if b.Caps.External || b.Caps.DenseProcs {
		if err == nil {
			na.Close()
			t.Fatalf("NewArena accepted %q, which must be refused (External=%v DenseProcs=%v)",
				b.Name, b.Caps.External, b.Caps.DenseProcs)
		}
		return
	}
	if err != nil {
		t.Fatalf("NewArena(%q): %v", b.Name, err)
	}
	var held []int
	for {
		n, err := na.Acquire()
		if err != nil {
			if !errors.Is(err, shmrename.ErrArenaFull) {
				t.Fatalf("full arena returned %v, want ErrArenaFull", err)
			}
			if n != -1 {
				t.Fatalf("failed Acquire returned name %d, want -1", n)
			}
			break
		}
		held = append(held, n)
		if len(held) > na.NameBound() {
			t.Fatal("more grants than the name bound")
		}
	}
	if len(held) < cfg.Capacity {
		t.Fatalf("only %d grants before ErrArenaFull, capacity %d guaranteed", len(held), cfg.Capacity)
	}
	for _, name := range []int{-1, na.NameBound()} {
		if err := na.Release(name); !errors.Is(err, shmrename.ErrNotHeld) {
			t.Fatalf("Release(%d) = %v, want ErrNotHeld", name, err)
		}
	}
	if err := na.Release(held[0]); err != nil {
		t.Fatalf("Release of held name: %v", err)
	}
	if err := na.Release(held[0]); !errors.Is(err, shmrename.ErrNotHeld) {
		t.Fatalf("double release = %v, want ErrNotHeld", err)
	}
	if err := na.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := na.Acquire(); !errors.Is(err, shmrename.ErrClosed) {
		t.Fatalf("Acquire after Close = %v, want ErrClosed", err)
	}
	if _, err := na.AcquireN(1); !errors.Is(err, shmrename.ErrClosed) {
		t.Fatalf("AcquireN after Close = %v, want ErrClosed", err)
	}
	if err := na.Release(held[1]); !errors.Is(err, shmrename.ErrClosed) {
		t.Fatalf("Release after Close = %v, want ErrClosed", err)
	}
	if err := na.ReleaseAll(held[1:]); !errors.Is(err, shmrename.ErrClosed) {
		t.Fatalf("ReleaseAll after Close = %v, want ErrClosed", err)
	}
	if hb := na.Heartbeat(); hb != 0 {
		t.Fatalf("Heartbeat after Close renewed %d leases, want 0", hb)
	}
	if sw := na.SweepStale(); sw != 0 {
		t.Fatalf("SweepStale after Close reclaimed %d names, want 0", sw)
	}
	if err := na.Close(); err != nil {
		t.Fatalf("second Close: %v (must be idempotent)", err)
	}
}
