package conformance

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"shmrename/internal/longlived"
	"shmrename/internal/registry"
	"shmrename/internal/sched"
)

// lawElastic is the Elastic capability contract, in three acts:
//
//  1. Grow-then-fill uniqueness: forcing the ladder to its ceiling and
//     then draining the arena grants at least Capacity pairwise-distinct
//     in-bound names — growth never aliases name ranges.
//  2. Shrink never reclaims a held name: with every name held, forced
//     shrinks retire nothing and lose nothing; once the holders leave,
//     forced shrinks walk residency back down, and a full second fill
//     regrows the retired levels without aliasing.
//  3. Resize storm: an antagonist forces grow/shrink transitions while
//     native workers churn (the conformance CI job runs this under
//     -race). Resizes must never block or starve an acquire — every
//     worker completes every cycle — and the pool is whole afterwards.
func lawElastic(t *testing.T, b registry.Backend) {
	a := build(t, b, registry.Config{
		Capacity:  suiteCapacity,
		MaxPasses: 8, // the fill loops read -1 as "structurally full"
		Elastic:   &registry.ElasticParams{MinCapacity: 1, ShrinkAfter: 8},
		Label:     "conf-elastic-" + b.Name,
	})
	el, ok := a.(registry.Elastic)
	if !ok {
		t.Fatalf("backend %s declares Caps.Elastic but the arena does not implement registry.Elastic", b.Name)
	}
	p := nativeProc(0)
	startCap := el.CapacityNow()
	if startCap <= 0 || startCap > suiteCapacity {
		t.Fatalf("initial CapacityNow %d outside (0, %d]", startCap, suiteCapacity)
	}

	// Act 1: grow to the ceiling, then fill.
	for el.Grow() {
	}
	if el.CapacityNow() < suiteCapacity {
		t.Fatalf("fully grown CapacityNow %d < capacity %d", el.CapacityNow(), suiteCapacity)
	}
	fill := func(stage string) []int {
		var names []int
		seen := make(map[int]bool)
		for {
			n := a.Acquire(p)
			if n < 0 {
				break
			}
			if n >= a.NameBound() {
				t.Fatalf("%s: name %d outside [0, %d)", stage, n, a.NameBound())
			}
			if seen[n] {
				t.Fatalf("%s: name %d granted twice", stage, n)
			}
			seen[n] = true
			names = append(names, n)
		}
		if len(names) < suiteCapacity {
			t.Fatalf("%s: only %d acquires before full; capacity %d is guaranteed", stage, len(names), suiteCapacity)
		}
		return names
	}
	names := fill("grown fill")

	// Act 2: shrink against live holders.
	if el.Shrink() {
		t.Fatal("Shrink retired a level while every name was held")
	}
	for _, n := range names {
		if !a.IsHeld(n) {
			t.Fatalf("held name %d lost to a shrink attempt", n)
		}
	}
	for _, n := range names {
		a.Release(p, n)
	}
	flush(a, p)
	for el.Shrink() {
	}
	if now := el.CapacityNow(); now >= suiteCapacity {
		t.Fatalf("CapacityNow %d did not shrink below capacity %d after a full drain", now, suiteCapacity)
	}
	if h := a.Held(); h != 0 {
		t.Fatalf("held %d after drain-to-floor, want 0", h)
	}
	for _, n := range fill("regrown fill") {
		a.Release(p, n)
	}
	flush(a, p)
	for el.Shrink() {
	}

	// Act 3: churn storm under forced resize transitions.
	const workers, cycles = 8, 150
	mon := longlived.NewMonitor(a.NameBound())
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			el.Grow()
			el.Shrink()
			runtime.Gosched()
		}
	}()
	sched.RunNative(workers, 61, longlived.ChurnBody(a, mon, longlived.ChurnConfig{
		Cycles: cycles, HoldMin: 0, HoldMax: 4, Yield: true,
	}))
	stop.Store(true)
	wg.Wait()
	if err := mon.Err(); err != nil {
		t.Fatal(err)
	}
	if full := !b.Caps.Cached; full && mon.Acquires() != workers*cycles {
		t.Fatalf("resize storm completed %d of %d acquires — a transition starved a worker", mon.Acquires(), workers*cycles)
	}
	flush(a, p)
	if h, c := a.Held(), cached(a); h != 0 || c != 0 {
		t.Fatalf("after resize storm: held %d cached %d, want 0/0", h, c)
	}
	if el.PeakCapacity() < el.CapacityNow() {
		t.Fatalf("PeakCapacity %d < CapacityNow %d", el.PeakCapacity(), el.CapacityNow())
	}
}
