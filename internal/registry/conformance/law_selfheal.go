package conformance

import (
	"testing"

	"shmrename/internal/integrity"
	"shmrename/internal/longlived"
	"shmrename/internal/registry"
	"shmrename/internal/shm"
)

// lawSelfHealing: on self-healing backends, injected irreparable damage — a
// live client stamp over a clear claim bit, a pair no legal execution
// produces — is contained by one scrub pass at word granularity: exactly
// the damaged word is quarantined, a second pass is idle (the repair is
// stable), and the degraded arena serves every surviving name exactly once
// per generation without ever granting from the quarantined word.
func lawSelfHealing(t *testing.T, b registry.Backend) {
	ep := shm.NewCounterEpochs(1)
	a := build(t, b, registry.Config{
		Capacity:  suiteCapacity,
		MaxPasses: 8,
		Epochs:    ep,
		Label:     "conf-heal-" + b.Name,
	})
	rec, ok := a.(longlived.Recoverable)
	if !ok {
		t.Fatalf("backend registered SelfHealing but %T does not implement longlived.Recoverable", a)
	}
	doms := rec.LeaseDomains()
	if len(doms) == 0 {
		t.Fatal("backend registered SelfHealing but exposes no lease domains")
	}
	d := doms[0]
	if d.Seize == nil {
		t.Fatal("backend registered SelfHealing but its lease domain has no Seize hook")
	}
	const victim = 0
	if d.IsHeld(victim) || d.Stamps.Load(victim) != 0 {
		t.Fatalf("fresh arena: name %d is not free", d.Base+victim)
	}
	d.Stamps.Inject(victim, shm.PackStamp(4242, ep.Now()))

	cfg := integrity.Config{Epochs: ep, TTL: 4, Quarantine: true}
	if c, ok := a.(interface {
		Parked(int) bool
		PurgeParked(int) bool
	}); ok {
		cfg.Parked = c.Parked
		cfg.Purge = c.PurgeParked
	}
	s := integrity.NewScrubber(rec, cfg)
	p := nativeProc(0)

	// The containment unit is the victim's bitmap word within its domain
	// (partial at the domain tail, so sharded geometries quarantine less
	// than 64 names).
	lo := victim / 64 * 64
	hi := min(lo+64, d.Stamps.Size())
	word := hi - lo

	res := s.Scrub(p)
	if res.Unrepaired != 0 {
		t.Fatalf("scrub left %d violations standing with quarantine enabled", res.Unrepaired)
	}
	if res.Quarantined != word {
		t.Fatalf("scrub quarantined %d names, want exactly the damaged word's %d", res.Quarantined, word)
	}
	if got := s.QuarantinedNames(); got != word {
		t.Fatalf("QuarantinedNames() = %d, want %d", got, word)
	}
	// A second pass must be idle: the quarantine is a fixed point, not a
	// repair the scrubber keeps re-doing.
	res = s.Scrub(p)
	if res.Quarantined != 0 || res.Repaired != 0 || res.Unrepaired != 0 {
		t.Fatalf("second scrub not idle: %+v", res)
	}
	if got := s.QuarantinedNames(); got != word {
		t.Fatalf("QuarantinedNames() after idle pass = %d, want %d", got, word)
	}
	// Conservation under degradation: two full generations over the
	// surviving pool, each granting unique names, never from the withdrawn
	// word, and never fewer than the guaranteed floor (configured capacity
	// minus the quarantined word — backends whose name pool carries slack
	// beyond the capacity may still serve more). The generations must agree:
	// the quarantine is not eroding the pool pass over pass.
	drained := -1
	for gen := 0; gen < 2; gen++ {
		seen := make(map[int]bool)
		var names []int
		for {
			n := a.Acquire(p)
			if n < 0 {
				break
			}
			if n >= d.Base+lo && n < d.Base+hi {
				t.Fatalf("generation %d: granted quarantined name %d", gen, n)
			}
			if seen[n] {
				t.Fatalf("generation %d: name %d granted twice", gen, n)
			}
			seen[n] = true
			names = append(names, n)
		}
		if floor := suiteCapacity - word; len(names) < floor {
			t.Fatalf("generation %d: drained %d names, floor is %d (capacity %d minus quarantined %d)",
				gen, len(names), floor, suiteCapacity, word)
		}
		if drained >= 0 && len(names) != drained {
			t.Fatalf("generation %d drained %d names, generation 0 drained %d — the pool is eroding", gen, len(names), drained)
		}
		drained = len(names)
		for _, n := range names {
			a.Release(p, n)
		}
		flush(a, p)
	}
}
