package conformance

import (
	"testing"

	"shmrename/internal/registry"
	_ "shmrename/internal/registry/all"
)

// opsModel is the sequential oracle the fuzzer checks every backend
// against: a map of the names the (single) client currently holds. With
// one proc there is no concurrency, so the arena must agree with the model
// exactly: grants are fresh and in-bounds, Held tracks the model count,
// IsHeld matches membership, and "full" may only be reported when the
// model plus any parked cache blocks account for at least the capacity.
type opsModel struct {
	held  []int
	isSet map[int]bool
}

func (m *opsModel) add(n int) {
	m.held = append(m.held, n)
	m.isSet[n] = true
}

func (m *opsModel) removeAt(i int) int {
	n := m.held[i]
	m.held[i] = m.held[len(m.held)-1]
	m.held = m.held[:len(m.held)-1]
	delete(m.isSet, n)
	return n
}

// runOps replays one fuzzed operation sequence against one backend.
func runOps(t *testing.T, b registry.Backend, ops []byte) {
	const capacity = 16
	a := b.New(registry.Config{Capacity: capacity, MaxPasses: 8, Label: "fuzz-" + b.Name})
	if c, ok := a.(interface{ Close() error }); ok {
		defer c.Close()
	}
	p := nativeProc(0)
	m := &opsModel{isSet: make(map[int]bool)}

	checkGrant := func(n int) {
		if n < 0 || n >= a.NameBound() {
			t.Fatalf("%s: granted name %d outside [0, %d)", b.Name, n, a.NameBound())
		}
		if m.isSet[n] {
			t.Fatalf("%s: name %d granted while the model still holds it", b.Name, n)
		}
	}
	checkFull := func() {
		if len(m.held)+cached(a) < capacity {
			t.Fatalf("%s: arena reported full with %d held and %d parked of capacity %d",
				b.Name, len(m.held), cached(a), capacity)
		}
	}

	for i, op := range ops {
		arg := int(op) / 8
		switch op % 8 {
		case 0, 1, 2: // single acquire
			n := a.Acquire(p)
			if n == -1 {
				checkFull()
				continue
			}
			checkGrant(n)
			m.add(n)
		case 3: // single release
			if len(m.held) == 0 {
				continue
			}
			n := m.removeAt(arg % len(m.held))
			a.Release(p, n)
			if a.IsHeld(n) {
				t.Fatalf("%s: op %d: name %d held after release", b.Name, i, n)
			}
		case 4: // batch acquire
			if !b.Caps.Batch {
				continue
			}
			k := 1 + arg%5
			names := a.AcquireN(p, k, nil)
			if len(names) > k {
				t.Fatalf("%s: op %d: batch of %d returned %d names", b.Name, i, k, len(names))
			}
			for _, n := range names {
				checkGrant(n)
				m.add(n)
			}
		case 5: // batch release of a random chunk
			if !b.Caps.Batch || len(m.held) == 0 {
				continue
			}
			k := 1 + arg%5
			if k > len(m.held) {
				k = len(m.held)
			}
			batch := make([]int, 0, k)
			for j := 0; j < k; j++ {
				batch = append(batch, m.removeAt(arg%len(m.held)))
			}
			a.ReleaseN(p, batch)
		case 6: // flush parked names
			flush(a, p)
			if c := cached(a); c != 0 {
				t.Fatalf("%s: op %d: %d names parked after flush", b.Name, i, c)
			}
		case 7: // audit the model against the arena
			if h := a.Held(); h != len(m.held) {
				t.Fatalf("%s: op %d: arena holds %d, model holds %d", b.Name, i, h, len(m.held))
			}
			for _, n := range m.held {
				if !a.IsHeld(n) {
					t.Fatalf("%s: op %d: model-held name %d not held by arena", b.Name, i, n)
				}
			}
		}
	}
	// Drain: the model's names release cleanly and the pool ends whole.
	for len(m.held) > 0 {
		a.Release(p, m.removeAt(0))
	}
	flush(a, p)
	if h, c := a.Held(), cached(a); h != 0 || c != 0 {
		t.Fatalf("%s: after drain: held %d cached %d, want 0/0", b.Name, h, c)
	}
}

// FuzzConformanceOps feeds random operation sequences — single and batch
// acquires, releases, flushes, audits — to every registered backend and
// cross-checks each against the sequential model oracle. Run with
// `go test -fuzz=FuzzConformanceOps ./internal/registry/conformance` to
// explore beyond the seed corpus.
func FuzzConformanceOps(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 3, 3, 3})
	f.Add([]byte{4, 4, 5, 6, 7})
	// Fill far past capacity, audit, drain through every release flavor.
	overfill := make([]byte, 0, 64)
	for i := 0; i < 24; i++ {
		overfill = append(overfill, 0)
	}
	overfill = append(overfill, 7, 6)
	for i := 0; i < 24; i++ {
		overfill = append(overfill, byte(3+8*i))
	}
	f.Add(overfill)
	f.Fuzz(func(t *testing.T, ops []byte) {
		for _, b := range registry.All() {
			runOps(t, b, ops)
		}
	})
}
