package conformance

import (
	"testing"

	"shmrename/internal/registry"
	_ "shmrename/internal/registry/all"
)

// TestConformance runs the full law suite against every registered
// backend. This is the cross-backend gate: a backend that registers itself
// (one register file plus a line in internal/registry/all) is pulled under
// every law its capability flags claim, with no changes here.
func TestConformance(t *testing.T) {
	for _, b := range registry.All() {
		t.Run(b.Name, func(t *testing.T) {
			Suite(t, b)
		})
	}
}
