// Package all links every in-tree arena backend into the importing binary
// so its registrations run. Import it for effect:
//
//	import _ "shmrename/internal/registry/all"
//
// The registry package itself stays a leaf (backends import it to call
// Register); this package closes the loop for consumers — the conformance
// suite, the experiment harness, the public shmrename API — that want
// "every backend" without naming them. A new backend joins every consumer
// by adding one blank import here.
package all

import (
	_ "shmrename/internal/exclusive"
	_ "shmrename/internal/leasecache"
	_ "shmrename/internal/longlived" // registers level-array, elastic-level, tau-longlived
	_ "shmrename/internal/persist"
	_ "shmrename/internal/sharded"
)
