package taureg

import (
	"math/bits"
	"sync"
	"testing"
	"testing/quick"

	"shmrename/internal/prng"
	"shmrename/internal/shm"
)

func newProc(id int) *shm.Proc {
	return shm.NewProc(id, prng.NewStream(1, id), nil, 1<<20)
}

func TestTrimEquivalence(t *testing.T) {
	// Property: the faithful shift-scan of §II.C equals "keep the k
	// lowest-indexed new bits" for every word, width, and allowance.
	f := func(raw uint64, width8, allowed8 uint8) bool {
		width := int(width8%64) + 1
		mask := uint64(1)<<width - 1
		if width == 64 {
			mask = ^uint64(0)
		}
		newBits := raw & mask
		allowed := int(allowed8) % (width + 1)
		want := trimLowestK(newBits, allowed)
		if bits.OnesCount64(newBits) <= allowed {
			want = newBits
		}
		got := trimShiftScan(newBits, allowed, width)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestTrimEdgeCases(t *testing.T) {
	if got := trimShiftScan(0b1111, 0, 8); got != 0 {
		t.Fatalf("allowed=0 kept %b", got)
	}
	if got := trimShiftScan(0b1111, 4, 8); got != 0b1111 {
		t.Fatalf("allowed=popcnt trimmed to %b", got)
	}
	if got := trimShiftScan(0b1111, 2, 8); got != 0b0011 {
		t.Fatalf("keep-2 of 0b1111 = %b, want 0b0011", got)
	}
	if got := trimShiftScan(0b1010_1010, 3, 8); got != 0b0010_1010 {
		t.Fatalf("keep-3 of 0b10101010 = %b, want 0b00101010", got)
	}
	// Full-width word.
	if got := trimShiftScan(^uint64(0), 1, 64); got != 1 {
		t.Fatalf("keep-1 of all-ones = %x", got)
	}
}

func TestDeviceBasicWinAndLose(t *testing.T) {
	d := NewDevice("dev", 8, 2, false)
	p0, p1, p2 := newProc(0), newProc(1), newProc(2)

	if !d.RequestBit(p0, 3) {
		t.Fatal("first request on free bit failed")
	}
	if d.RequestBit(p1, 3) {
		t.Fatal("second request on held bit succeeded")
	}
	if got := d.Resolve(p0, 3); got != Pending {
		t.Fatalf("before any cycle outcome = %v, want pending", got)
	}
	d.Cycle()
	if got := d.Resolve(p0, 3); got != Won {
		t.Fatalf("after cycle outcome = %v, want won", got)
	}
	// p1 lost bit 3 but can win another (drive the clock by hand on this
	// externally clocked device).
	if !d.RequestBit(p1, 4) {
		t.Fatal("p1 could not set free bit 4")
	}
	d.Cycle()
	if got := d.Resolve(p1, 4); got != Won {
		t.Fatalf("p1 on bit 4 = %v, want won", got)
	}
	// Threshold reached: p2 can set a bit but never be confirmed.
	if !d.RequestBit(p2, 5) {
		t.Fatal("p2 could not set free bit 5")
	}
	d.Cycle()
	if got := d.Resolve(p2, 5); got != Lost {
		t.Fatalf("beyond-threshold request = %v, want lost", got)
	}
	if d.ConfirmedCount() != 2 {
		t.Fatalf("confirmed = %d, want 2", d.ConfirmedCount())
	}
}

func TestDeviceThresholdTrimsArbitrationWithinOneCycle(t *testing.T) {
	// 6 requests race into one cycle with tau=3: exactly 3 confirmed,
	// 3 cleared, all decided by the next cycle.
	d := NewDevice("dev", 12, 3, false)
	procs := make([]*shm.Proc, 6)
	for i := range procs {
		procs[i] = newProc(i)
		if !d.RequestBit(procs[i], i*2) {
			t.Fatalf("request %d failed on free bit", i)
		}
	}
	d.Cycle()
	won, lost := 0, 0
	for i, p := range procs {
		switch d.Resolve(p, i*2) {
		case Won:
			won++
		case Lost:
			lost++
		default:
			t.Fatalf("request %d still pending after a full cycle", i)
		}
	}
	if won != 3 || lost != 3 {
		t.Fatalf("won=%d lost=%d, want 3/3", won, lost)
	}
	in, out := d.Snapshot()
	if in != out {
		t.Fatalf("cycle did not reconcile registers: in=%b out=%b", in, out)
	}
}

func TestDeviceConfirmedMonotone(t *testing.T) {
	d := NewDevice("dev", 16, 5, false)
	r := prng.New(3)
	var confirmedBefore uint64
	for step := 0; step < 200; step++ {
		p := newProc(step)
		d.RequestBit(p, r.Intn(16))
		d.Cycle()
		_, out := d.Snapshot()
		if out&confirmedBefore != confirmedBefore {
			t.Fatalf("confirmed bit was unset: before=%b after=%b", confirmedBefore, out)
		}
		confirmedBefore = out
		if d.ConfirmedCount() > 5 {
			t.Fatalf("confirmed count %d exceeds tau", d.ConfirmedCount())
		}
	}
}

func TestDeviceSelfClockedResolvesImmediately(t *testing.T) {
	d := NewDevice("dev", 8, 1, true)
	p0, p1 := newProc(0), newProc(1)
	if got := d.AcquireBit(p0, 0); got != Won {
		t.Fatalf("first acquire = %v", got)
	}
	if got := d.AcquireBit(p1, 1); got != Lost {
		t.Fatalf("beyond-threshold acquire = %v, want lost", got)
	}
}

func TestDeviceFull(t *testing.T) {
	d := NewDevice("dev", 8, 2, true)
	p := newProc(0)
	if d.Full(p) {
		t.Fatal("fresh device reports full")
	}
	d.AcquireBit(newProc(1), 0)
	d.AcquireBit(newProc(2), 1)
	if !d.Full(p) {
		t.Fatal("device at tau confirmations not full")
	}
}

func TestDeviceTauZeroRejectsEverything(t *testing.T) {
	d := NewDevice("dev", 8, 0, true)
	for i := 0; i < 8; i++ {
		if got := d.AcquireBit(newProc(i), i); got != Lost {
			t.Fatalf("tau=0 device confirmed bit %d", i)
		}
	}
	if d.ConfirmedCount() != 0 {
		t.Fatal("tau=0 device has confirmations")
	}
}

// TestDeviceConcurrentStress is the E11 invariant under real parallelism:
// many goroutines hammer a self-clocked device; at most tau are ever
// confirmed, winners are distinct bits, every process gets a decision.
func TestDeviceConcurrentStress(t *testing.T) {
	for _, cfg := range []struct{ width, tau, procs int }{
		{8, 4, 16}, {16, 8, 64}, {64, 32, 256}, {64, 1, 64},
	} {
		d := NewDevice("dev", cfg.width, cfg.tau, true)
		outcomes := make([]Outcome, cfg.procs)
		bitsHeld := make([]int, cfg.procs)
		var wg sync.WaitGroup
		for i := 0; i < cfg.procs; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				p := shm.NewProc(i, prng.NewStream(11, i), nil, 1<<20)
				r := p.Rand()
				for attempt := 0; attempt < 4*cfg.width; attempt++ {
					b := r.Intn(cfg.width)
					o := d.AcquireBit(p, b)
					outcomes[i] = o
					if o == Won {
						bitsHeld[i] = b
						return
					}
				}
			}(i)
		}
		wg.Wait()
		won := map[int]int{}
		for i, o := range outcomes {
			if o == Won {
				if prev, dup := won[bitsHeld[i]]; dup {
					t.Fatalf("width=%d tau=%d: bit %d won by %d and %d",
						cfg.width, cfg.tau, bitsHeld[i], prev, i)
				}
				won[bitsHeld[i]] = i
			}
		}
		if len(won) > cfg.tau {
			t.Fatalf("width=%d tau=%d: %d winners exceed tau", cfg.width, cfg.tau, len(won))
		}
		if d.ConfirmedCount() > cfg.tau {
			t.Fatalf("width=%d tau=%d: confirmed %d exceeds tau",
				cfg.width, cfg.tau, d.ConfirmedCount())
		}
		if len(won) != cfg.tau {
			// With 4*width attempts per process and procs >= tau the
			// device must saturate.
			t.Fatalf("width=%d tau=%d: device not saturated: %d winners",
				cfg.width, cfg.tau, len(won))
		}
	}
}

func TestQuickDeviceNeverExceedsTau(t *testing.T) {
	// Property: any interleaving of requests and cycles keeps
	// popcnt(out_reg) <= tau and out_reg ⊆ in_reg-history.
	f := func(seed uint64, width8, tau8, ops8 uint8) bool {
		width := int(width8%63) + 2
		tau := int(tau8) % (width + 1)
		ops := int(ops8)%120 + 10
		d := NewDevice("q", width, tau, false)
		r := prng.New(seed)
		requested := uint64(0)
		for i := 0; i < ops; i++ {
			if r.Bool() {
				b := r.Intn(width)
				if d.RequestBit(newProc(i), b) {
					requested |= uint64(1) << b
				}
			} else {
				d.Cycle()
			}
			if d.ConfirmedCount() > tau {
				return false
			}
			_, out := d.Snapshot()
			if out&^requested != 0 {
				return false // confirmed a bit nobody requested
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDevicePanicsOnBadConstruction(t *testing.T) {
	for _, fn := range []func(){
		func() { NewDevice("x", 0, 0, false) },
		func() { NewDevice("x", 65, 1, false) },
		func() { NewDevice("x", 8, 9, false) },
		func() { NewDevice("x", 8, -1, false) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad construction did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestOutcomeString(t *testing.T) {
	if Pending.String() != "pending" || Won.String() != "won" || Lost.String() != "lost" {
		t.Fatal("Outcome.String mismatch")
	}
}

func TestDeviceStepAccounting(t *testing.T) {
	d := NewDevice("dev", 8, 2, false)
	p := newProc(0)
	d.RequestBit(p, 0) // 1 step
	d.Cycle()
	d.Resolve(p, 0) // 1 step
	d.Full(p)       // 1 step
	if p.Steps() != 3 {
		t.Fatalf("steps = %d, want 3", p.Steps())
	}
}
