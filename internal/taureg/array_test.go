package taureg

import (
	"sync"
	"testing"

	"shmrename/internal/prng"
	"shmrename/internal/sched"
	"shmrename/internal/shm"
)

func uniformSpecs(devices, tau int) []Spec {
	specs := make([]Spec, devices)
	for i := range specs {
		specs[i] = Spec{Tau: tau, Names: tau}
	}
	return specs
}

func TestArrayLayout(t *testing.T) {
	a := NewArray("taux", 8, []Spec{{4, 4}, {4, 4}, {2, 2}}, false)
	if a.NumDevices() != 3 {
		t.Fatalf("NumDevices = %d", a.NumDevices())
	}
	if a.TotalNames() != 10 {
		t.Fatalf("TotalNames = %d, want 10", a.TotalNames())
	}
	if a.TotalBits() != 24 {
		t.Fatalf("TotalBits = %d, want 24", a.TotalBits())
	}
	wantBase := []int{0, 4, 8}
	for d, want := range wantBase {
		if got := a.NameBase(d); got != want {
			t.Fatalf("NameBase(%d) = %d, want %d", d, got, want)
		}
	}
	if a.NameCount(2) != 2 {
		t.Fatalf("NameCount(2) = %d", a.NameCount(2))
	}
}

func TestArrayRejectsMismatchedSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("tau != names accepted")
		}
	}()
	NewArray("bad", 8, []Spec{{Tau: 3, Names: 4}}, false)
}

func TestArrayClaimNameFindsFreeSlot(t *testing.T) {
	a := NewArray("taux", 8, uniformSpecs(2, 4), true)
	// Three winners on device 1 claim three distinct global names from
	// device 1's block [4, 8).
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		p := newProc(i)
		if got := a.Device(1).AcquireBit(p, i); got != Won {
			t.Fatalf("winner %d: %v", i, got)
		}
		g := a.ClaimName(p, 1)
		if g < 4 || g >= 8 {
			t.Fatalf("claimed name %d outside device 1 block", g)
		}
		if seen[g] {
			t.Fatalf("name %d claimed twice", g)
		}
		seen[g] = true
	}
	if a.NamesClaimed() != 3 {
		t.Fatalf("NamesClaimed = %d", a.NamesClaimed())
	}
}

func TestArrayTryNameBounds(t *testing.T) {
	a := NewArray("taux", 8, uniformSpecs(2, 4), true)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-block name accepted")
		}
	}()
	a.TryName(newProc(0), 0, 4)
}

func TestArrayProbeables(t *testing.T) {
	a := NewArray("taux", 8, uniformSpecs(2, 4), true)
	m := a.Probeables()
	if len(m) != 3 { // 2 devices + names
		t.Fatalf("Probeables size = %d, want 3", len(m))
	}
	if _, ok := m["taux:names"]; !ok {
		t.Fatal("names space not exposed")
	}
	if _, ok := m["taux:dev0"]; !ok {
		t.Fatal("device 0 not exposed")
	}
}

// TestArrayFullProtocolSimulated drives the complete §II.B protocol under
// the deterministic scheduler with the external clock: n processes compete
// for bits across devices and everyone who wins a bit gets a distinct name.
func TestArrayFullProtocolSimulated(t *testing.T) {
	const devices, tau, width = 4, 4, 8
	a := NewArray("taux", width, uniformSpecs(devices, tau), false)
	n := devices * tau // as many processes as total capacity

	body := func(p *shm.Proc) int {
		r := p.Rand()
		for {
			d := r.Intn(devices)
			dev := a.Device(d)
			if dev.Full(p) {
				continue
			}
			b := r.Intn(width)
			if o := dev.AcquireBit(p, b); o == Won {
				return a.ClaimName(p, d)
			}
		}
	}
	res := sched.Run(sched.Config{
		N: n, Seed: 5, Body: body,
		AfterStep: a.CycleAll,
		Spaces:    a.Probeables(),
	})
	if got := sched.CountStatus(res, sched.Named); got != n {
		t.Fatalf("%d named, want %d", got, n)
	}
	if err := sched.VerifyUnique(res, a.TotalNames()); err != nil {
		t.Fatal(err)
	}
	if a.ConfirmedTotal() != n {
		t.Fatalf("confirmed %d, want %d", a.ConfirmedTotal(), n)
	}
}

// TestArrayNativeParallelClaims exercises ClaimName's capacity guarantee
// under real parallelism: winners never outnumber names.
func TestArrayNativeParallelClaims(t *testing.T) {
	const devices, tau, width = 8, 8, 16
	a := NewArray("taux", width, uniformSpecs(devices, tau), true)
	n := devices * tau
	names := make([]int, n)
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			p := shm.NewProc(pid, prng.NewStream(23, pid), nil, 1<<20)
			r := p.Rand()
			names[pid] = -1
			for {
				d := r.Intn(devices)
				dev := a.Device(d)
				if dev.Full(p) {
					continue
				}
				b := r.Intn(width)
				if dev.AcquireBit(p, b) == Won {
					names[pid] = a.ClaimName(p, d)
					return
				}
			}
		}(pid)
	}
	wg.Wait()
	seen := map[int]bool{}
	for pid, g := range names {
		if g < 0 || g >= a.TotalNames() {
			t.Fatalf("pid %d holds invalid name %d", pid, g)
		}
		if seen[g] {
			t.Fatalf("name %d held twice", g)
		}
		seen[g] = true
	}
}

func TestCycleAllAdvancesEveryDevice(t *testing.T) {
	a := NewArray("taux", 8, uniformSpecs(3, 2), false)
	a.CycleAll()
	a.CycleAll()
	for d := 0; d < a.NumDevices(); d++ {
		if got := a.Device(d).Cycles(); got != 2 {
			t.Fatalf("device %d cycles = %d, want 2", d, got)
		}
	}
}
