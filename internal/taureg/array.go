package taureg

import (
	"fmt"

	"shmrename/internal/shm"
)

// Spec describes one device in an Array: its threshold τ and the number of
// names it serves. For renaming τ must equal Names so that every confirmed
// winner is guaranteed a name in the device's block (§II.B: "It must win
// one of the TAS registers because there are exactly τ of them and at most
// τ processes that are allowed to search").
type Spec struct {
	Tau   int
	Names int
}

// Array is the auxiliary structure Taux of §III: a sequence of τ-registers
// (counting devices plus name blocks) covering a contiguous name space.
// Device d serves the global names [NameBase(d), NameBase(d)+Spec.Names).
type Array struct {
	label    string
	width    int
	devices  []*Device
	nameBase []int
	names    *shm.NameSpace
}

// NewArray builds an array of counting devices with the shared bit width,
// one per spec. Each spec must satisfy 0 <= Tau <= width and Tau == Names.
// selfClocked selects native (true) or externally clocked (false) devices.
// The name bitmap is packed (64 names/word); native-mode callers that want
// false-sharing padding use NewArrayPadded.
func NewArray(label string, width int, specs []Spec, selfClocked bool) *Array {
	return newArray(label, width, specs, selfClocked, false)
}

// NewArrayPadded is NewArray with the name bitmap laid out one word per
// cache line, for runs on real cores where concurrent claimers would
// otherwise false-share bitmap words.
func NewArrayPadded(label string, width int, specs []Spec, selfClocked bool) *Array {
	return newArray(label, width, specs, selfClocked, true)
}

func newArray(label string, width int, specs []Spec, selfClocked, padded bool) *Array {
	total := 0
	for i, s := range specs {
		if s.Tau != s.Names {
			panic(fmt.Sprintf("taureg: device %d has tau %d != names %d", i, s.Tau, s.Names))
		}
		if s.Tau < 0 || s.Tau > width {
			panic(fmt.Sprintf("taureg: device %d tau %d outside [0,%d]", i, s.Tau, width))
		}
		total += s.Names
	}
	mkSpace := shm.NewNameSpace
	if padded {
		mkSpace = shm.NewNameSpacePadded
	}
	a := &Array{
		label:    label,
		width:    width,
		devices:  make([]*Device, len(specs)),
		nameBase: make([]int, len(specs)),
		names:    mkSpace(label+":names", total),
	}
	base := 0
	for i, s := range specs {
		a.devices[i] = NewDevice(fmt.Sprintf("%s:dev%d", label, i), width, s.Tau, selfClocked)
		a.nameBase[i] = base
		base += s.Names
	}
	return a
}

// NumDevices returns the number of τ-registers in the array.
func (a *Array) NumDevices() int { return len(a.devices) }

// Width returns the per-device bit width (2·log n in the paper).
func (a *Array) Width() int { return a.width }

// Device returns device d.
func (a *Array) Device(d int) *Device { return a.devices[d] }

// NameBase returns the first global name served by device d.
func (a *Array) NameBase(d int) int { return a.nameBase[d] }

// NameCount returns how many names device d serves (its τ).
func (a *Array) NameCount(d int) int { return a.devices[d].Tau() }

// TotalNames returns the size of the name space the array covers.
func (a *Array) TotalNames() int { return a.names.Size() }

// TotalBits returns the number of TAS bits across all counting devices —
// the "extra space" of Theorem 5.
func (a *Array) TotalBits() int { return len(a.devices) * a.width }

// TryName test-and-sets local name j of device d on behalf of p and, on
// success, returns the global name. One step.
func (a *Array) TryName(p *shm.Proc, d, j int) (int, bool) {
	if j < 0 || j >= a.NameCount(d) {
		panic(fmt.Sprintf("taureg: name %d outside device %d's block of %d", j, d, a.NameCount(d)))
	}
	g := a.nameBase[d] + j
	if a.names.TryClaim(p, g) {
		return g, true
	}
	return 0, false
}

// ClaimName runs the §II.B search: a process that won a TAS bit of device
// d systematically goes through the device's name registers until it wins
// one. At most τ winners exist for τ names, so the search always succeeds;
// it costs at most τ steps.
func (a *Array) ClaimName(p *shm.Proc, d int) int {
	for j := 0; j < a.NameCount(d); j++ {
		if g, ok := a.TryName(p, d, j); ok {
			return g
		}
	}
	panic(fmt.Sprintf("taureg: device %d confirmed more winners than names", d))
}

// CycleAll advances every device's clock by one cycle. In simulated
// executions the harness installs it as the scheduler's AfterStep hook.
func (a *Array) CycleAll() {
	for _, d := range a.devices {
		d.Cycle()
	}
}

// ConfirmedTotal sums popcnt(out_reg) over all devices (diagnostics).
func (a *Array) ConfirmedTotal() int {
	t := 0
	for _, d := range a.devices {
		t += d.ConfirmedCount()
	}
	return t
}

// NamesClaimed returns how many names have been claimed (diagnostics).
func (a *Array) NamesClaimed() int { return a.names.CountClaimed() }

// Probeables exposes the array's shared structures to adaptive adversary
// policies, keyed by the operation-space labels its methods emit.
func (a *Array) Probeables() map[string]shm.Probeable {
	m := make(map[string]shm.Probeable, len(a.devices)+1)
	for _, d := range a.devices {
		m[d.Label()] = d
	}
	m[a.names.Label()] = a.names
	return m
}
