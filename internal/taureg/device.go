// Package taureg implements the τ-register of §II.B and its counting
// device of §II.C: a block of 2·log n test-and-set bits whose hardware
// restricts the number of confirmed 1-bits to a threshold τ, plus τ plain
// TAS registers holding names.
//
// The paper notes the register "is unlikely to be actually built" but
// "could be constructed based on this description"; this package is that
// construction in software. The counting device state lives in two uint64
// words (in_reg, out_reg) and one clock cycle executes exactly the
// pseudocode of §II.C: phase 1 lets processes test-and-set bits of in_reg,
// phase 2 unsets supernumerary new bits using the xor/shift/popcnt
// selection and copies the result to out_reg.
//
// Observable contract relied on by the renaming algorithm (and verified by
// the tests in this package):
//
//   - out_reg never holds more than τ set bits;
//   - bits confirmed in out_reg are a subset of bits requested in in_reg;
//   - confirmed bits stay confirmed until released (out_reg is monotone in
//     one-shot use; ReleaseBit — the long-lived extension — is the only
//     operation that unconfirms, and per-bit epoch tags keep a released or
//     trimmed bit's earlier requester from adopting a later winner's
//     confirmation);
//   - every request observed by a cycle is decided (confirmed or cleared)
//     in that cycle, so a requester resolves after at most one full cycle.
//
// Clocking: in hardware all bits share a free-running clock. In simulated
// executions the scheduler ticks every device after each granted operation
// (costing processes nothing, matching the model's "constant delay"). In
// native executions a device is self-clocked: a resolver drives a cycle
// itself under the device mutex, which serializes the hardware's parallel
// phase-2 loop without changing the contract.
package taureg

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"shmrename/internal/shm"
)

// MaxWidth is the largest supported counting-device width: both device
// registers are single machine words, exactly the "numbers of log n bits"
// the paper assumes the hardware handles in O(1).
const MaxWidth = 64

// Outcome is the resolution state of a TAS-bit request.
type Outcome uint8

// Request outcomes.
const (
	// Pending: the device has not run a cycle over the request yet.
	Pending Outcome = iota
	// Won: the bit is confirmed in out_reg; the process owns it.
	Won
	// Lost: the bit was already set, or the device unset it (threshold).
	Lost
)

// String returns the lower-case outcome name.
func (o Outcome) String() string {
	switch o {
	case Pending:
		return "pending"
	case Won:
		return "won"
	case Lost:
		return "lost"
	default:
		return fmt.Sprintf("outcome(%d)", uint8(o))
	}
}

// Device is one counting device: width TAS bits of which at most tau may
// be confirmed at any time.
type Device struct {
	label       string
	id          shm.SpaceID
	width       int
	tau         int
	selfClocked bool

	mu  sync.Mutex // serializes clock cycles, requests, and releases
	in  atomic.Uint64
	out atomic.Uint64

	// epochs[b] counts how many times a *set* request bit b has been
	// cleared (trimmed by a cycle or released). A requester snapshots the
	// epoch when its bit is set; any later epoch means its request was
	// cleared, even if another process has since re-requested and won the
	// same bit. One-shot executions never need this — a trim leaves the
	// device full forever, so a stale winner cannot appear — but once
	// ReleaseBit makes out_reg non-monotone the tag is what keeps one
	// physical bit from resolving Won for two different requesters.
	epochs [MaxWidth]atomic.Uint32

	cycles atomic.Int64
}

// NewDevice returns a counting device with the given number of TAS bits
// (1..64) and threshold 0 <= tau <= width. If selfClocked is true a
// resolver drives the clock itself (native mode); otherwise an external
// clock must call Cycle, e.g. the simulator's AfterStep hook.
func NewDevice(label string, width, tau int, selfClocked bool) *Device {
	if width < 1 || width > MaxWidth {
		panic(fmt.Sprintf("taureg: width %d outside [1,%d]", width, MaxWidth))
	}
	if tau < 0 || tau > width {
		panic(fmt.Sprintf("taureg: tau %d outside [0,%d]", tau, width))
	}
	return &Device{label: label, id: shm.InternSpace(label), width: width, tau: tau, selfClocked: selfClocked}
}

// Label returns the device's label used in operation descriptors.
func (d *Device) Label() string { return d.label }

// ID returns the device's interned operation-space ID.
func (d *Device) ID() shm.SpaceID { return d.id }

// Width returns the number of TAS bits.
func (d *Device) Width() int { return d.width }

// Tau returns the confirmation threshold τ.
func (d *Device) Tau() int { return d.tau }

// Cycles returns the number of clock cycles executed (diagnostics).
func (d *Device) Cycles() int64 { return d.cycles.Load() }

// widthMask returns the mask of the device's valid bit positions.
func (d *Device) widthMask() uint64 {
	if d.width == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << d.width) - 1
}

// RequestBit performs the phase-1 test-and-set on bit b of in_reg on
// behalf of p. It reports false if the bit was already set (the request is
// immediately lost) and true if p provisionally holds the bit; p must then
// call Resolve until the outcome is decided. One step.
func (d *Device) RequestBit(p *shm.Proc, b int) bool {
	ok, _ := d.request(p, b)
	return ok
}

// request is RequestBit plus the epoch token of the freshly set bit,
// captured atomically with the set (both under the device mutex, which
// also serializes the cycle/release epoch bumps). AcquireBit resolves
// against the token.
func (d *Device) request(p *shm.Proc, b int) (bool, uint32) {
	d.checkBit(b)
	p.Step(shm.Op{Kind: shm.OpTAS, Space: d.id, Index: int32(b)})
	mask := uint64(1) << b
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.in.Load()&mask != 0 {
		return false, 0
	}
	d.in.Or(mask)
	return true, d.epochs[b].Load()
}

// Resolve reads the device registers and reports the state of p's request
// on bit b. Reading the whole device is one operation in the paper's model
// ("it is possible to read all 2 log n individual bits within one
// operation"), so Resolve costs one step. On a self-clocked device a
// pending request triggers a clock cycle before the read.
func (d *Device) Resolve(p *shm.Proc, b int) Outcome {
	d.checkBit(b)
	p.Step(shm.Op{Kind: shm.OpRead, Space: d.id, Index: int32(b)})
	if d.selfClocked {
		if o := d.peek(b); o != Pending {
			return o
		}
		d.Cycle()
	}
	return d.peek(b)
}

// peek inspects the registers without stepping; internal and test use.
func (d *Device) peek(b int) Outcome {
	mask := uint64(1) << b
	if d.out.Load()&mask != 0 {
		return Won
	}
	if d.in.Load()&mask == 0 {
		return Lost
	}
	return Pending
}

// AcquireBit is the full §II.B protocol for one bit: request it, then
// resolve until decided. The returned outcome is Won or Lost. Resolution
// is epoch-checked, so under long-lived use (ReleaseBit) a request that
// was trimmed is Lost even if another process has since won the same bit.
func (d *Device) AcquireBit(p *shm.Proc, b int) Outcome {
	ok, tok := d.request(p, b)
	if !ok {
		return Lost
	}
	for {
		p.Step(shm.Op{Kind: shm.OpRead, Space: d.id, Index: int32(b)})
		if d.selfClocked {
			if o := d.peekTok(b, tok); o != Pending {
				return o
			}
			d.Cycle()
		}
		if o := d.peekTok(b, tok); o != Pending {
			return o
		}
	}
}

// peekTok inspects the registers for the request identified by (b, tok)
// without stepping. It decides exactly as the tokenless peek — out_reg set
// means decided, in_reg cleared means lost, otherwise pending — except
// that a set out_reg bit whose epoch moved past the token is Lost: the
// confirmation belongs to a later requester of the same bit, which can
// only exist once ReleaseBit reopened the device. Reading out_reg before
// the epoch keeps Won sound: epochs only grow, and every clear is preceded
// by its bump under the device mutex, so an unchanged epoch at the later
// read proves no clear preceded the out_reg observation.
func (d *Device) peekTok(b int, tok uint32) Outcome {
	mask := uint64(1) << b
	if d.out.Load()&mask != 0 {
		if d.epochs[b].Load() != tok {
			return Lost
		}
		return Won
	}
	if d.in.Load()&mask == 0 {
		return Lost
	}
	return Pending
}

// ReleaseBit clears bit b from both device registers — the release half of
// a long-lived τ-register, extending the one-shot hardware of §II.B the
// same way hardware test-and-set extends to test-and-set/reset. One step.
// Only the confirmed winner of bit b may call it. Under the device mutex
// the bit's epoch advances and then out_reg and in_reg are cleared, so a
// concurrent cycle never observes the half-released state and any stale
// resolve of an earlier trimmed request on the bit decides Lost instead of
// adopting a later winner's confirmation. The threshold contract is
// preserved — out_reg popcount only ever decreases here, so at most τ bits
// stay confirmed — but out_reg is no longer monotone once releases occur,
// which is exactly the long-lived semantics.
func (d *Device) ReleaseBit(p *shm.Proc, b int) {
	d.checkBit(b)
	p.Step(shm.Op{Kind: shm.OpClear, Space: d.id, Index: int32(b)})
	mask := ^(uint64(1) << b)
	d.mu.Lock()
	if d.in.Load()&^mask != 0 {
		d.epochs[b].Add(1)
	}
	d.out.And(mask)
	d.in.And(mask)
	d.mu.Unlock()
}

// ReadRequests reads in_reg on behalf of p (one step) and returns it. On a
// self-clocked device it first drives a cycle when requests are pending,
// so that stale provisional bits (e.g. of crashed processes) get decided
// before the caller inspects availability. Used by the fallback sweep.
func (d *Device) ReadRequests(p *shm.Proc) uint64 {
	p.Step(shm.Op{Kind: shm.OpRead, Space: d.id, Index: -1})
	if d.selfClocked && d.in.Load() != d.out.Load() {
		d.Cycle()
	}
	return d.in.Load()
}

// Full reads out_reg and reports whether the device has confirmed τ bits,
// i.e. can never confirm another request. One step.
func (d *Device) Full(p *shm.Proc) bool {
	p.Step(shm.Op{Kind: shm.OpRead, Space: d.id, Index: -1})
	return bits.OnesCount64(d.out.Load()) >= d.tau
}

// Cycle executes one clock cycle of the counting device (§II.C pseudocode
// lines 1-14). It costs processes nothing: it models the hardware clock.
// Safe for concurrent use; cycles are serialized.
func (d *Device) Cycle() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cycles.Add(1)

	// Line 1: allowed_bits = τ - popcnt(in_reg-at-cycle-start). At the
	// start of a cycle in_reg equals out_reg (every previous cycle ended
	// by copying), so the confirmed register is the faithful source even
	// though requests may land concurrently in in_reg.
	old := d.out.Load()
	allowed := d.tau - bits.OnesCount64(old)

	// Lines 2-3 (phase 1) happened asynchronously: requests are the bits
	// set in in_reg beyond out_reg.
	cur := d.in.Load()
	newBits := cur &^ old

	if bits.OnesCount64(cur) > d.tau {
		// Lines 5-12: keep only `allowed` of the new bits.
		kept := trimShiftScan(newBits, allowed, d.width)
		final := old | kept
		losers := newBits &^ kept
		// Each trimmed bit advances its epoch before the clear, so a
		// loser's pending resolve observes the bump no later than the
		// cleared bit and can never mistake a later winner for itself.
		for l := losers; l != 0; l &= l - 1 {
			d.epochs[bits.TrailingZeros64(l)].Add(1)
		}
		// Line 12: in_reg <- out_reg: clear exactly the loser bits
		// (requests serialize on the device mutex, so no concurrent
		// request can land mid-cycle).
		d.in.And(^losers)
		d.out.Store(final)
	} else {
		// Line 14: out_reg <- in_reg (all new requests confirmed).
		d.out.Store(cur)
	}
}

// ConfirmedCount returns popcnt(out_reg) without stepping (diagnostics).
func (d *Device) ConfirmedCount() int { return bits.OnesCount64(d.out.Load()) }

// RequestedCount returns popcnt(in_reg) without stepping (diagnostics).
func (d *Device) RequestedCount() int { return bits.OnesCount64(d.in.Load()) }

// Snapshot returns (in_reg, out_reg) without stepping (diagnostics/tests).
func (d *Device) Snapshot() (in, out uint64) { return d.in.Load(), d.out.Load() }

// Probe reports whether TAS bit i of in_reg is currently set; it
// implements shm.Probeable for adaptive adversaries.
func (d *Device) Probe(i int) bool {
	return d.in.Load()&(uint64(1)<<i) != 0
}

func (d *Device) checkBit(b int) {
	if b < 0 || b >= d.width {
		panic(fmt.Sprintf("taureg: bit %d outside [0,%d)", b, d.width))
	}
}

// trimShiftScan selects which of the new bits survive when the threshold
// is exceeded, exactly as §II.C lines 5-11: shift util_reg0 by every
// possible amount, pick the unique copy with popcnt equal to allowed_bits
// and a 1 in the first (most significant, in hardware order) position,
// and shift it back. The result is the `allowed` lowest-indexed new bits.
// allowed may be 0, in which case no bit survives.
func trimShiftScan(newBits uint64, allowed, width int) uint64 {
	if allowed <= 0 {
		return 0
	}
	if bits.OnesCount64(newBits) <= allowed {
		return newBits
	}
	mask := uint64(1)<<width - 1
	if width == 64 {
		mask = ^uint64(0)
	}
	msb := uint64(1) << (width - 1)
	for i := 1; i <= width; i++ {
		shifted := (newBits << (i - 1)) & mask
		if bits.OnesCount64(shifted) == allowed && shifted&msb != 0 {
			return shifted >> (i - 1)
		}
	}
	// Unreachable: popcnt(newBits) > allowed >= 1 guarantees a match.
	panic("taureg: trimShiftScan found no candidate")
}

// trimLowestK is the direct statement of the trim semantics: keep the k
// lowest-indexed set bits of newBits. It exists to property-test the
// faithful shift-scan against and for documentation value.
func trimLowestK(newBits uint64, k int) uint64 {
	if k <= 0 {
		return 0
	}
	var kept uint64
	for k > 0 && newBits != 0 {
		low := newBits & (-newBits) // lowest set bit
		kept |= low
		newBits &^= low
		k--
	}
	return kept
}
