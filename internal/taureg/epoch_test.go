package taureg

import (
	"testing"

	"shmrename/internal/prng"
	"shmrename/internal/shm"
)

// TestTrimmedRequestNeverAdoptsLaterWinner pins the long-lived aliasing
// hazard: once ReleaseBit reopens a device, a bit that was trimmed away
// from one requester can be re-requested and confirmed for another. The
// first requester's delayed resolve must decide Lost — without the per-bit
// epoch tag it would observe the set out_reg bit and falsely return Won,
// putting two owners on one physical bit.
func TestTrimmedRequestNeverAdoptsLaterWinner(t *testing.T) {
	d := NewDevice("epoch-alias", 4, 1, false) // externally clocked
	p0 := shm.NewProc(0, prng.New(1), nil, 0)
	p1 := shm.NewProc(1, prng.New(2), nil, 0)
	p2 := shm.NewProc(2, prng.New(3), nil, 0)

	// P0 and P1 request concurrently; the cycle confirms the lowest bit
	// (P0) and trims P1's request away.
	if ok, _ := d.request(p0, 0); !ok {
		t.Fatal("p0 request failed")
	}
	ok, tok1 := d.request(p1, 1)
	if !ok {
		t.Fatal("p1 request failed")
	}
	d.Cycle()
	if got := d.peek(0); got != Won {
		t.Fatalf("p0 bit: %v, want won", got)
	}
	// P1 has NOT resolved yet. The winner releases, reopening the device,
	// and P2 re-requests the very bit P1 was trimmed from and wins it.
	d.ReleaseBit(p0, 0)
	ok, tok2 := d.request(p2, 1)
	if !ok {
		t.Fatal("p2 request failed")
	}
	d.Cycle()
	if got := d.peekTok(1, tok2); got != Won {
		t.Fatalf("p2 resolve: %v, want won", got)
	}
	// P1's delayed resolve must not adopt P2's confirmation.
	if got := d.peekTok(1, tok1); got != Lost {
		t.Fatalf("p1 delayed resolve: %v, want lost (bit now belongs to p2)", got)
	}
}

// TestReleaseBumpsEpochOnlyForSetBits checks the release path's epoch
// discipline: releasing a held bit invalidates outstanding tokens for it,
// while a (protocol-violating) release of a free bit changes nothing.
func TestReleaseBumpsEpochOnlyForSetBits(t *testing.T) {
	d := NewDevice("epoch-release", 4, 2, true)
	p := shm.NewProc(0, prng.New(9), nil, 0)
	if d.AcquireBit(p, 2) != Won {
		t.Fatal("bit 2 not won")
	}
	before := d.epochs[2].Load()
	d.ReleaseBit(p, 2)
	if got := d.epochs[2].Load(); got != before+1 {
		t.Fatalf("epoch after release = %d, want %d", got, before+1)
	}
	free := d.epochs[3].Load()
	d.ReleaseBit(p, 3) // bit 3 was never requested
	if got := d.epochs[3].Load(); got != free {
		t.Fatalf("epoch of free bit moved to %d", got)
	}
}
