package taureg

import (
	"math/bits"
	"testing"
)

// TestTrimExhaustiveSmallWidths checks the faithful shift-scan against the
// specification on EVERY (word, allowed) pair for widths up to 8 — 2^8×9
// cases per width — pinning the §II.C selection semantics exactly.
func TestTrimExhaustiveSmallWidths(t *testing.T) {
	for width := 1; width <= 8; width++ {
		mask := uint64(1)<<width - 1
		for word := uint64(0); word <= mask; word++ {
			for allowed := 0; allowed <= width; allowed++ {
				got := trimShiftScan(word, allowed, width)
				var want uint64
				if bits.OnesCount64(word) <= allowed {
					want = word
				} else {
					want = trimLowestK(word, allowed)
				}
				if got != want {
					t.Fatalf("width=%d word=%b allowed=%d: got %b want %b",
						width, word, allowed, got, want)
				}
				// Structural invariants regardless of equality:
				if got&^word != 0 {
					t.Fatalf("trim invented bits: word=%b got=%b", word, got)
				}
				if bits.OnesCount64(got) > allowed {
					t.Fatalf("trim kept too many: word=%b allowed=%d got=%b",
						word, allowed, got)
				}
			}
		}
	}
}

// TestTrimKeepsLowestIndexed verifies the tie-breaking direction: the
// device favors low bit indices, which the array layout maps to the
// lowest names in the block.
func TestTrimKeepsLowestIndexed(t *testing.T) {
	got := trimShiftScan(0b1100_0011, 2, 8)
	if got != 0b0000_0011 {
		t.Fatalf("got %08b, want the two lowest bits", got)
	}
	got = trimShiftScan(0b1100_0011, 3, 8)
	if got != 0b0100_0011 {
		t.Fatalf("got %08b, want bits {0,1,6}", got)
	}
}

// TestDeviceInterleavedRequestsAcrossCycles drives a request pattern where
// bits arrive between the snapshot and the trim of consecutive cycles; no
// request may be silently dropped: every set bit either confirms or clears
// within one further cycle.
func TestDeviceInterleavedRequestsAcrossCycles(t *testing.T) {
	d := NewDevice("interleave", 16, 4, false)
	type req struct {
		p   int
		bit int
	}
	// 8 requesters in 4 waves of 2, a cycle between each wave.
	var live []req
	pid := 0
	for wave := 0; wave < 4; wave++ {
		for k := 0; k < 2; k++ {
			b := pid * 2 % 16
			if d.RequestBit(newProc(pid), b) {
				live = append(live, req{p: pid, bit: b})
			}
			pid++
		}
		d.Cycle()
	}
	d.Cycle()
	won := 0
	for _, r := range live {
		switch d.peek(r.bit) {
		case Won:
			won++
		case Pending:
			t.Fatalf("request on bit %d still pending after final cycle", r.bit)
		}
	}
	if won != 4 {
		t.Fatalf("confirmed %d, want exactly tau=4", won)
	}
	if d.ConfirmedCount() != 4 {
		t.Fatalf("device reports %d confirmed", d.ConfirmedCount())
	}
}

// TestDeviceWidth64Full exercises the extreme word geometry.
func TestDeviceWidth64Full(t *testing.T) {
	d := NewDevice("wide", 64, 64, false)
	for b := 0; b < 64; b++ {
		if !d.RequestBit(newProc(b), b) {
			t.Fatalf("request on bit %d failed", b)
		}
	}
	d.Cycle()
	if d.ConfirmedCount() != 64 {
		t.Fatalf("confirmed %d, want 64", d.ConfirmedCount())
	}
	in, out := d.Snapshot()
	if in != ^uint64(0) || out != ^uint64(0) {
		t.Fatalf("registers in=%x out=%x", in, out)
	}
}

// TestDeviceWidth64Threshold trims correctly at the word boundary.
func TestDeviceWidth64Threshold(t *testing.T) {
	d := NewDevice("wide", 64, 3, false)
	for b := 60; b < 64; b++ { // 4 requests into the top bits
		d.RequestBit(newProc(b), b)
	}
	d.Cycle()
	if d.ConfirmedCount() != 3 {
		t.Fatalf("confirmed %d, want 3", d.ConfirmedCount())
	}
	_, out := d.Snapshot()
	if out != (uint64(1)<<60)|(uint64(1)<<61)|(uint64(1)<<62) {
		t.Fatalf("out=%x; the three lowest of the four requested bits must win", out)
	}
}
