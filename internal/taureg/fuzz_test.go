package taureg

import (
	"math/bits"
	"testing"
)

// FuzzTrimShiftScan cross-checks the faithful §II.C trim against the
// direct lowest-k specification and its structural invariants on
// arbitrary words.
func FuzzTrimShiftScan(f *testing.F) {
	f.Add(uint64(0b1011), 2, 8)
	f.Add(uint64(0), 0, 1)
	f.Add(^uint64(0), 31, 64)
	f.Add(uint64(0b1000_0001), 1, 8)
	f.Fuzz(func(t *testing.T, word uint64, allowed, width int) {
		width = width&63 + 1 // 1..64
		mask := uint64(1)<<width - 1
		if width == 64 {
			mask = ^uint64(0)
		}
		word &= mask
		if allowed < 0 {
			allowed = -allowed
		}
		allowed %= width + 1
		got := trimShiftScan(word, allowed, width)
		if got&^word != 0 {
			t.Fatalf("invented bits: word=%b got=%b", word, got)
		}
		if bits.OnesCount64(word) <= allowed {
			if got != word {
				t.Fatalf("under-threshold word trimmed: %b -> %b", word, got)
			}
			return
		}
		if bits.OnesCount64(got) != allowed {
			t.Fatalf("kept %d bits, want %d", bits.OnesCount64(got), allowed)
		}
		if want := trimLowestK(word, allowed); got != want {
			t.Fatalf("selection mismatch: word=%b got=%b want=%b", word, got, want)
		}
	})
}

// FuzzDeviceCycleInvariants feeds arbitrary request/cycle interleavings to
// a device and asserts the §II.C contract.
func FuzzDeviceCycleInvariants(f *testing.F) {
	f.Add(uint64(7), uint8(16), uint8(4), uint8(40))
	f.Fuzz(func(t *testing.T, seed uint64, width8, tau8, ops8 uint8) {
		width := int(width8)%64 + 1
		tau := int(tau8) % (width + 1)
		d := NewDevice("fuzz", width, tau, false)
		requested := uint64(0)
		s := seed
		for i := 0; i < int(ops8); i++ {
			s = s*6364136223846793005 + 1442695040888963407
			if s&1 == 0 {
				b := int(s>>32) % width
				if b < 0 {
					b = -b
				}
				if d.RequestBit(newProc(i), b) {
					requested |= uint64(1) << b
				}
			} else {
				d.Cycle()
			}
			if d.ConfirmedCount() > tau {
				t.Fatalf("confirmed %d > tau %d", d.ConfirmedCount(), tau)
			}
			_, out := d.Snapshot()
			if out&^requested != 0 {
				t.Fatalf("confirmed unrequested bits: out=%b requested=%b", out, requested)
			}
		}
		// A final cycle decides everything observed.
		d.Cycle()
		in, out := d.Snapshot()
		if in != out {
			t.Fatalf("registers unreconciled after quiescent cycle: in=%b out=%b", in, out)
		}
	})
}
