package core

import (
	"fmt"
	"sync/atomic"

	"shmrename/internal/shm"
	"shmrename/internal/taureg"
)

// TightConfig parameterizes the §III tight renamer.
type TightConfig struct {
	// C is the paper's "suitably large constant" c sizing the clusters.
	// Larger values concentrate more requests per block (better per-round
	// fill probability) at the cost of more rounds. Default 2.
	C float64
	// Geometry selects the cluster layout; default Corrected.
	Geometry GeometryKind
	// SelfClocked builds self-clocked counting devices for native runs.
	// Leave false for simulated runs (the scheduler ticks the clock).
	// Simulated runs may also use self-clocked devices (observably
	// equivalent, cheaper).
	SelfClocked bool
	// Padded lays the name bitmap out one word per cache line. Set it for
	// native runs on real cores, where concurrent claimers would
	// false-share packed bitmap words; leave it false for simulated runs,
	// where the packed layout is smaller and cache-friendlier.
	Padded bool
}

func (c *TightConfig) fill() {
	if c.C == 0 {
		c.C = 2
	}
}

// Tight is the Theorem 5 algorithm: tight renaming of n processes to the
// names [0, n) using an array of τ-registers (with τ = log n), O(log n)
// steps per process w.h.p. and O(n) extra TAS bits.
//
// Per process: in round i it test-and-sets one uniformly random TAS bit in
// cluster C_i; the bit's counting device confirms at most τ winners
// (block discarding); a confirmed winner scans the device's τ name
// registers and must find a free one. A process that loses every round
// enters the deterministic fallback sweep, which walks all devices,
// skipping full ones — the "eventually find a free TAS bit" clause of
// §III made explicit. Capacity counting guarantees the sweep terminates:
// each failed attempt coincides with some other process being confirmed,
// and confirmations are capped at n.
type Tight struct {
	cfg TightConfig
	geo Geometry
	arr *taureg.Array

	// Diagnostics (not shared-memory state).
	clusterWins  []atomic.Int64
	fallbackWins atomic.Int64
	sweepPasses  atomic.Int64
}

// NewTight builds a tight-renaming instance for n processes.
func NewTight(n int, cfg TightConfig) *Tight {
	cfg.fill()
	geo := NewGeometry(n, cfg.C, cfg.Geometry)
	mkArray := taureg.NewArray
	if cfg.Padded {
		mkArray = taureg.NewArrayPadded
	}
	t := &Tight{
		cfg:         cfg,
		geo:         geo,
		arr:         mkArray("taux", geo.Width, geo.Specs, cfg.SelfClocked),
		clusterWins: make([]atomic.Int64, len(geo.Clusters)),
	}
	return t
}

// Label implements Instance.
func (t *Tight) Label() string {
	return fmt.Sprintf("tight-tau(c=%g,%s)", t.cfg.C, t.cfg.Geometry)
}

// N implements Instance.
func (t *Tight) N() int { return t.geo.N }

// M implements Instance: tight renaming, m = n.
func (t *Tight) M() int { return t.geo.N }

// Geometry returns the cluster layout (diagnostics, E3/E12).
func (t *Tight) Geometry() Geometry { return t.geo }

// Array exposes the underlying τ-register array (diagnostics, tests).
func (t *Tight) Array() *taureg.Array { return t.arr }

// Probeables implements Instance.
func (t *Tight) Probeables() map[string]shm.Probeable { return t.arr.Probeables() }

// Clock implements Instance: simulated instances tick every device after
// each granted operation; self-clocked instances need no external clock.
func (t *Tight) Clock() func() {
	if t.cfg.SelfClocked {
		return nil
	}
	return t.arr.CycleAll
}

// Body implements Instance: the per-process protocol of §III.
func (t *Tight) Body(p *shm.Proc) int {
	r := p.Rand()
	w := t.geo.Width
	for i, cl := range t.geo.Clusters {
		bit := r.Intn(cl.Devices * w)
		d := cl.FirstDevice + bit/w
		b := bit % w
		if t.arr.Device(d).AcquireBit(p, b) == taureg.Won {
			name := t.arr.ClaimName(p, d)
			t.clusterWins[i].Add(1)
			return name
		}
	}
	return t.fallback(p)
}

// fallback is the deterministic safety net: sweep the devices backwards,
// skip full ones (one out_reg read each), try the free bits of the rest.
// It is the "eventually find a free TAS bit" clause of §III made explicit.
//
// The sweep starts from the last device because residual capacity
// concentrates in the tail: early clusters receive ~2c·log n requests per
// block and fill all τ slots w.h.p., while the truncated geometric tail is
// fluctuation-dominated, so the expected sweep distance is O(log n).
// Termination is guaranteed regardless: a process can only lose a free
// non-full device to a newly confirmed winner, and confirmations are
// capped at n, so some pass must succeed while any capacity remains.
func (t *Tight) fallback(p *shm.Proc) int {
	nd := t.arr.NumDevices()
	for {
		t.sweepPasses.Add(1)
		for d := nd - 1; d >= 0; d-- {
			dev := t.arr.Device(d)
			if dev.Tau() == 0 || dev.Full(p) {
				continue
			}
			in := dev.ReadRequests(p)
			for b := 0; b < dev.Width(); b++ {
				if in&(uint64(1)<<b) != 0 {
					continue
				}
				if dev.AcquireBit(p, b) == taureg.Won {
					t.fallbackWins.Add(1)
					return t.arr.ClaimName(p, d)
				}
			}
		}
	}
}

// Stats reports how the assignment was won: per-cluster confirmations and
// fallback confirmations. Valid after a run completes.
func (t *Tight) Stats() TightStats {
	s := TightStats{
		ClusterWins: make([]int64, len(t.clusterWins)),
		Fallback:    t.fallbackWins.Load(),
		SweepPasses: t.sweepPasses.Load(),
	}
	for i := range t.clusterWins {
		w := t.clusterWins[i].Load()
		s.ClusterWins[i] = w
		s.ClusterTotal += w
	}
	return s
}

// TightStats summarizes where names were won (diagnostics for E2/E12).
type TightStats struct {
	ClusterWins  []int64 // per-round confirmations
	ClusterTotal int64   // sum over rounds
	Fallback     int64   // names won through the fallback sweep
	SweepPasses  int64   // total sweep passes across processes
}
