package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := CeilLog2(n); got != want {
			t.Fatalf("CeilLog2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestLogHelpersClamped(t *testing.T) {
	if LogLog2(2) < 1 || LogLogLog2(2) < 1 {
		t.Fatal("log helpers must clamp at 1")
	}
	if got := LogLog2(1 << 16); math.Abs(got-4) > 1e-9 {
		t.Fatalf("LogLog2(2^16) = %v, want 4", got)
	}
	if got := LogLogLog2(1 << 16); math.Abs(got-2) > 1e-9 {
		t.Fatalf("LogLogLog2(2^16) = %v, want 2", got)
	}
}

func TestCorrectedGeometryInvariants(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 1000, 1 << 12, 1 << 16, 100000} {
		g := NewGeometry(n, 2, Corrected)
		if got := g.TotalNames(); got != n {
			t.Fatalf("n=%d: capacity %d != n", n, got)
		}
		if g.ClusterNames != n {
			t.Fatalf("n=%d: corrected geometry must expose all capacity via clusters, got %d", n, g.ClusterNames)
		}
		// Extra space is O(n): at most ~2n bits plus slack for tiny n.
		if n >= 64 && g.TotalBits() > 3*n {
			t.Fatalf("n=%d: %d TAS bits exceeds 3n", n, g.TotalBits())
		}
		// Rounds are O(log n): 2c·ln n plus rounding tail.
		if n >= 64 {
			bound := int(2*g.C*math.Log(float64(n))) + 8*int(g.C) + 4
			if g.Rounds() > bound {
				t.Fatalf("n=%d: %d rounds exceeds O(log n) bound %d", n, g.Rounds(), bound)
			}
		}
		// Clusters reference valid, contiguous, non-overlapping devices.
		next := 0
		for i, cl := range g.Clusters {
			if cl.FirstDevice != next {
				t.Fatalf("n=%d: cluster %d starts at %d, want %d", n, i, cl.FirstDevice, next)
			}
			if cl.Devices < 1 {
				t.Fatalf("n=%d: cluster %d empty", n, i)
			}
			next += cl.Devices
		}
		if next != g.NumDevices() {
			t.Fatalf("n=%d: clusters cover %d devices of %d", n, next, g.NumDevices())
		}
		for d, s := range g.Specs {
			if s.Tau != s.Names || s.Tau < 0 || s.Tau > g.L {
				t.Fatalf("n=%d: device %d has bad spec %+v", n, d, s)
			}
		}
	}
}

func TestCorrectedGeometryRequestRate(t *testing.T) {
	// The defining property of the corrected layout: with planned actives
	// a_i, every cluster's blocks see ~2c·log n requests each. Verify the
	// planned rate stays within [c, 4c]·L for all non-tail clusters.
	n, c := 1<<16, 2.0
	g := NewGeometry(n, c, Corrected)
	a := float64(n)
	for i, cl := range g.Clusters {
		names := 0
		for d := cl.FirstDevice; d < cl.FirstDevice+cl.Devices; d++ {
			names += g.Specs[d].Names
		}
		rate := a / float64(cl.Devices) // planned requests per block
		if names >= 4*g.L {             // skip the tiny tail clusters
			if rate < c*float64(g.L) || rate > 4*c*float64(g.L) {
				t.Fatalf("cluster %d: planned rate %.1f outside [%g, %g]",
					i, rate, c*float64(g.L), 4*c*float64(g.L))
			}
		}
		a -= float64(names)
	}
}

func TestPaperLiteralGeometryDeficit(t *testing.T) {
	// The literal Definition 2 sizes cover only ~n/(2(2c-1)) names through
	// clusters; the rest must sit in reserve. This is the documented
	// inconsistency (ALGORITHMS.md §3).
	n, c := 1<<16, 2.0
	g := NewGeometry(n, c, PaperLiteral)
	if got := g.TotalNames(); got != n {
		t.Fatalf("capacity %d != n", got)
	}
	frac := float64(g.ClusterNames) / float64(n)
	ideal := 1 / (2 * (2*c - 1)) // ≈ 0.167 for c=2
	if frac > 2.5*ideal {
		t.Fatalf("cluster capacity fraction %.3f too large; literal sizes should cover ≈%.3f", frac, ideal)
	}
	if frac < ideal/2.5 {
		t.Fatalf("cluster capacity fraction %.3f suspiciously small", frac)
	}
	if g.Rounds() < 2 {
		t.Fatalf("paper-literal layout has %d rounds", g.Rounds())
	}
}

func TestGeometryPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewGeometry(0, 2, Corrected) },
		func() { NewGeometry(10, 0.5, Corrected) },
		func() { NewGeometry(1<<33, 2, Corrected) }, // width > 64
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid geometry accepted")
				}
			}()
			fn()
		}()
	}
}

func TestGeometryKindString(t *testing.T) {
	if Corrected.String() != "corrected" || PaperLiteral.String() != "paper-literal" {
		t.Fatal("GeometryKind.String mismatch")
	}
}

func TestQuickGeometryCapacityExact(t *testing.T) {
	f := func(nRaw uint16, cRaw uint8, literal bool) bool {
		n := int(nRaw)%5000 + 1
		c := 1 + float64(cRaw%8)/2 // 1.0 .. 4.5
		kind := Corrected
		if literal {
			kind = PaperLiteral
		}
		g := NewGeometry(n, c, kind)
		if g.TotalNames() != n {
			return false
		}
		for _, s := range g.Specs {
			if s.Tau != s.Names || s.Names < 0 || s.Names > g.L || s.Names > g.Width {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
