package core

import (
	"fmt"
	"math"

	"shmrename/internal/shm"
)

// Adaptive implements the §IV remark that the framework of [8] turns the
// paper's algorithms into adaptive ones — renaming when the number of
// participants k is NOT known in advance — at the price of an O((1+ε)k)
// name space ("hence using our protocols would not result in an
// improvement compared to [8]").
//
// Construction (geometric estimate doubling): the name space is split
// into segments S_1, S_2, ..., segment S_j holding 2^j names. A process
// starts at segment 1 and, per segment, makes a constant number of
// uniformly random test-and-set probes (ProbesPerLevel); on failure it
// moves to the next segment. A process therefore reaches a segment of
// size ≥ 2k after O(log k) levels, where its probes succeed with constant
// probability per attempt — without ever knowing k.
//
// Guarantees (documented, validated in tests): names are distinct by TAS;
// the name of a process that entered among k participants lies in
// [0, O(k)) w.h.p.; per-process step complexity is O(log k) w.h.p. — the
// simple doubling transform, not the O((log log k)²) machinery of [8],
// which is its own paper (see ALGORITHMS.md §5).
type Adaptive struct {
	capacity int // upper bound on participants (sizes the arena only)
	levels   int
	offsets  []int
	sizes    []int
	probes   int
	space    *shm.NameSpace
}

// AdaptiveConfig parameterizes the adaptive renamer.
type AdaptiveConfig struct {
	// ProbesPerLevel is the number of random probes per segment
	// (default 4). More probes trade steps for tighter names.
	ProbesPerLevel int
}

// NewAdaptive builds an adaptive renamer able to host up to maxProcs
// participants. maxProcs only sizes the arena (total ≈ 4·maxProcs names);
// process bodies never consult it, preserving adaptivity.
func NewAdaptive(maxProcs int, cfg AdaptiveConfig) *Adaptive {
	if maxProcs < 1 {
		panic("core: NewAdaptive requires maxProcs >= 1")
	}
	probes := cfg.ProbesPerLevel
	if probes <= 0 {
		probes = 4
	}
	// Segments 2, 4, ..., up to the first size >= 2*maxProcs.
	levels := int(math.Ceil(math.Log2(float64(maxProcs)))) + 1
	if levels < 1 {
		levels = 1
	}
	a := &Adaptive{capacity: maxProcs, levels: levels, probes: probes}
	total := 0
	for j := 1; j <= levels; j++ {
		size := 1 << uint(j)
		a.offsets = append(a.offsets, total)
		a.sizes = append(a.sizes, size)
		total += size
	}
	a.space = shm.NewNameSpace("adaptive", total)
	return a
}

// Label implements Instance.
func (a *Adaptive) Label() string {
	return fmt.Sprintf("adaptive-doubling(p=%d)", a.probes)
}

// N implements Instance: the arena capacity. Fewer processes may
// participate; that is the point of adaptivity.
func (a *Adaptive) N() int { return a.capacity }

// M implements Instance: total arena size, ≈ 4·maxProcs.
func (a *Adaptive) M() int { return a.space.Size() }

// Levels returns the number of doubling segments.
func (a *Adaptive) Levels() int { return a.levels }

// Probeables implements Instance.
func (a *Adaptive) Probeables() map[string]shm.Probeable {
	return map[string]shm.Probeable{"adaptive": a.space}
}

// Clock implements Instance.
func (a *Adaptive) Clock() func() { return nil }

// Body implements Instance: walk the segments, a constant number of
// probes each; fall back to a deterministic sweep of the last segment if
// every probe lost (w.h.p. untaken — the last segment has 2× capacity).
func (a *Adaptive) Body(p *shm.Proc) int {
	r := p.Rand()
	for j := 0; j < a.levels; j++ {
		off, size := a.offsets[j], a.sizes[j]
		for k := 0; k < a.probes; k++ {
			i := off + r.Intn(size)
			if a.space.TryClaim(p, i) {
				return i
			}
		}
	}
	// Deterministic safety net over the whole arena.
	start := r.Intn(a.space.Size())
	for k := 0; k < a.space.Size(); k++ {
		i := start + k
		if i >= a.space.Size() {
			i -= a.space.Size()
		}
		if a.space.TryClaim(p, i) {
			return i
		}
	}
	return -1 // arena exhausted: more participants than capacity
}

// MaxName returns the largest name the first k arrivals should stay
// under w.h.p. — the adaptive O(k) name-space guarantee: the segment
// reached once sizes pass 2k ends at offset ~8k.
func (a *Adaptive) MaxName(k int) int {
	for j := 0; j < a.levels; j++ {
		if a.sizes[j] >= 4*k {
			return a.offsets[j] + a.sizes[j]
		}
	}
	return a.space.Size()
}
