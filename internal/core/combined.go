package core

import (
	"fmt"
	"math"

	"shmrename/internal/backfill"
	"shmrename/internal/shm"
)

// almostTight is the part of a combined instance that runs on the primary
// n-name space and may leave survivors. Both §IV algorithms satisfy it.
type almostTight interface {
	Instance
	StepBudget() int
	SurvivorBound() float64
}

// Combined composes an almost-tight algorithm on the names [0, n) with a
// backfill renamer on the overflow space [n, n+extra): the construction of
// Corollaries 7 and 9. Processes that survive the almost-tight phase
// acquire a name in the overflow space instead.
type Combined struct {
	label    string
	inner    almostTight
	extra    int
	overflow *shm.NameSpace
	strat    backfill.Strategy
}

// NewCorollary7 builds the Corollary 7 renamer: Lemma 6 with parameter ℓ
// on n registers, plus a 2n/(log log n)^ℓ overflow space. Total name space
// m = n + 2n/(log log n)^ℓ, step complexity O((log log n)^ℓ) w.h.p.
func NewCorollary7(n int, cfg RoundsConfig, strat backfill.Strategy) *Combined {
	cfg.fill()
	inner := NewLooseRounds(n, cfg)
	extra := int(math.Ceil(2 * float64(n) / math.Pow(LogLog2(n), float64(cfg.Ell))))
	return newCombined(fmt.Sprintf("corollary7(l=%d)", cfg.Ell), inner, extra, strat)
}

// NewCorollary9 builds the Corollary 9 renamer: Lemma 8 with parameter ℓ
// on n registers, plus a 2n/(log n)^ℓ overflow space. Total name space
// m = n + 2n/(log n)^ℓ, step complexity O((log log n)²) w.h.p.
func NewCorollary9(n int, cfg ClustersConfig, strat backfill.Strategy) *Combined {
	cfg.fill()
	inner := NewLooseClusters(n, cfg)
	extra := int(math.Ceil(2 * float64(n) / math.Pow(math.Log2(float64(n)), float64(cfg.Ell))))
	return newCombined(fmt.Sprintf("corollary9(l=%d)", cfg.Ell), inner, extra, strat)
}

func newCombined(label string, inner almostTight, extra int, strat backfill.Strategy) *Combined {
	if extra < 1 {
		extra = 1
	}
	if strat == nil {
		strat = backfill.Hybrid{}
	}
	return &Combined{
		label:    label,
		inner:    inner,
		extra:    extra,
		overflow: shm.NewNameSpace("overflow", extra),
		strat:    strat,
	}
}

// Label implements Instance.
func (c *Combined) Label() string { return c.label }

// N implements Instance.
func (c *Combined) N() int { return c.inner.N() }

// M implements Instance: primary space plus overflow.
func (c *Combined) M() int { return c.inner.M() + c.extra }

// Extra returns the overflow-space size (the corollaries' 2n/…^ℓ term).
func (c *Combined) Extra() int { return c.extra }

// Inner returns the almost-tight phase (diagnostics).
func (c *Combined) Inner() Instance { return c.inner }

// InnerStepBudget returns the almost-tight phase's per-process step bound.
func (c *Combined) InnerStepBudget() int { return c.inner.StepBudget() }

// Probeables implements Instance.
func (c *Combined) Probeables() map[string]shm.Probeable {
	m := c.inner.Probeables()
	out := make(map[string]shm.Probeable, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	out["overflow"] = c.overflow
	return out
}

// Clock implements Instance.
func (c *Combined) Clock() func() { return c.inner.Clock() }

// Overflow returns the overflow name space (diagnostics).
func (c *Combined) Overflow() *shm.NameSpace { return c.overflow }

// Body implements Instance: run the almost-tight phase; survivors take a
// name from the overflow space via the backfill strategy.
func (c *Combined) Body(p *shm.Proc) int {
	if name := c.inner.Body(p); name >= 0 {
		return name
	}
	idx := c.strat.Acquire(p, c.overflow)
	if idx < 0 {
		return -1 // overflow exhausted: more survivors than Corollary's w.h.p. bound
	}
	return c.inner.M() + idx
}
