package core

import (
	"testing"

	"shmrename/internal/prng"
	"shmrename/internal/sched"
)

func prngFor(seed uint64) *prng.Rand { return prng.New(seed) }

func TestLooseRoundsSchedule(t *testing.T) {
	a := NewLooseRounds(1<<16, RoundsConfig{Ell: 2})
	// rounds = ceil(2 * logloglog(2^16)) = ceil(2*2) = 4
	if got := a.Rounds(); got != 4 {
		t.Fatalf("rounds = %d, want 4", got)
	}
	// budget = 2+4+8+16 = 30 ≈ (loglog n)^2 = 16 within constants
	if got := a.StepBudget(); got != 30 {
		t.Fatalf("budget = %d, want 30", got)
	}
	if a.SurvivorBound() != 2*65536.0/16.0 {
		t.Fatalf("survivor bound = %v", a.SurvivorBound())
	}
}

func TestLooseRoundsStepBoundRespected(t *testing.T) {
	const n = 4096
	a := NewLooseRounds(n, RoundsConfig{Ell: 1})
	res := RunSim(a, 3, nil)
	budget := int64(a.StepBudget())
	for _, r := range res {
		if r.Steps > budget {
			t.Fatalf("pid %d took %d steps, budget %d", r.PID, r.Steps, budget)
		}
	}
	if err := sched.VerifyUnique(res, n); err != nil {
		t.Fatal(err)
	}
	named := sched.CountStatus(res, sched.Named)
	if claimed := a.Space().CountClaimed(); claimed != named {
		t.Fatalf("space shows %d claims, results show %d named", claimed, named)
	}
}

func TestLooseRoundsSurvivorBound(t *testing.T) {
	// Lemma 6: w.h.p. survivors <= 2n/(loglog n)^ell. Check across seeds
	// with fast scheduling (fair FIFO).
	for _, ell := range []int{1, 2} {
		for _, n := range []int{1 << 12, 1 << 14} {
			a := NewLooseRounds(n, RoundsConfig{Ell: ell})
			for seed := uint64(0); seed < 3; seed++ {
				inst := NewLooseRounds(n, RoundsConfig{Ell: ell})
				res := sched.Run(sched.Config{
					N: n, Seed: seed, Fast: sched.FastFIFO, Body: inst.Body,
				})
				survivors := sched.CountStatus(res, sched.Unnamed)
				if float64(survivors) > a.SurvivorBound() {
					t.Fatalf("n=%d ell=%d seed=%d: %d survivors > bound %.0f",
						n, ell, seed, survivors, a.SurvivorBound())
				}
			}
		}
	}
}

func TestLooseClustersSchedule(t *testing.T) {
	a := NewLooseClusters(1<<16, ClustersConfig{Ell: 1})
	// phases = ceil(loglog 2^16) = 4; steps/phase = ceil(2*1*4) = 8
	if got := a.Phases(); got != 4 {
		t.Fatalf("phases = %d, want 4", got)
	}
	if got := a.StepBudget(); got != 32 {
		t.Fatalf("budget = %d, want 32", got)
	}
}

func TestLooseClustersClusterLayout(t *testing.T) {
	const n = 1 << 12
	a := NewLooseClusters(n, ClustersConfig{})
	total := 0
	last := len(a.sizes) - 1
	for i, size := range a.sizes {
		if size < 1 {
			t.Fatalf("cluster %d empty", i)
		}
		if a.offsets[i] != total {
			t.Fatalf("cluster %d offset %d, want %d", i, a.offsets[i], total)
		}
		want := n >> uint(i+1)
		if i < last && size != want {
			t.Fatalf("cluster %d size %d, want n/2^%d = %d", i, size, i+1, want)
		}
		if i == last && size < want {
			t.Fatalf("last cluster size %d below n/2^%d = %d", size, i+1, want)
		}
		total += size
	}
	// The clusters must cover the whole space: the printed sizes leave
	// n/log n registers unreachable, which would contradict the Lemma 8
	// survivor bound for l >= 2 (see ALGORITHMS.md §4); the last cluster
	// absorbs the remainder.
	if total != n {
		t.Fatalf("clusters occupy %d registers, want exactly n = %d", total, n)
	}
}

func TestLooseClustersSurvivorBound(t *testing.T) {
	for _, n := range []int{1 << 12, 1 << 14} {
		a := NewLooseClusters(n, ClustersConfig{Ell: 1})
		for seed := uint64(0); seed < 3; seed++ {
			inst := NewLooseClusters(n, ClustersConfig{Ell: 1})
			res := sched.Run(sched.Config{
				N: n, Seed: seed, Fast: sched.FastFIFO, Body: inst.Body,
			})
			survivors := sched.CountStatus(res, sched.Unnamed)
			if float64(survivors) > a.SurvivorBound() {
				t.Fatalf("n=%d seed=%d: %d survivors > bound %.0f",
					n, seed, survivors, a.SurvivorBound())
			}
			if err := sched.VerifyUnique(res, n); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestLooseClustersStepBoundRespected(t *testing.T) {
	const n = 4096
	a := NewLooseClusters(n, ClustersConfig{Ell: 2})
	res := RunSim(a, 7, nil)
	budget := int64(a.StepBudget())
	for _, r := range res {
		if r.Steps > budget {
			t.Fatalf("pid %d took %d steps, budget %d", r.PID, r.Steps, budget)
		}
	}
}

func TestLooseInstancesAccessors(t *testing.T) {
	r := NewLooseRounds(256, RoundsConfig{})
	c := NewLooseClusters(256, ClustersConfig{})
	for _, inst := range []Instance{r, c} {
		if inst.N() != 256 || inst.M() != 256 {
			t.Fatalf("%s: N/M = %d/%d", inst.Label(), inst.N(), inst.M())
		}
		if inst.Clock() != nil {
			t.Fatalf("%s: unexpected clock", inst.Label())
		}
		if _, ok := inst.Probeables()["names"]; !ok {
			t.Fatalf("%s: names space not probeable", inst.Label())
		}
		if inst.Label() == "" {
			t.Fatal("empty label")
		}
	}
}

func TestLoosePanicsOnBadN(t *testing.T) {
	for _, fn := range []func(){
		func() { NewLooseRounds(0, RoundsConfig{}) },
		func() { NewLooseClusters(1, ClustersConfig{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad n accepted")
				}
			}()
			fn()
		}()
	}
}

func TestLooseGammaScalesBudget(t *testing.T) {
	a1 := NewLooseRounds(1<<16, RoundsConfig{Ell: 1, Gamma: 1})
	a2 := NewLooseRounds(1<<16, RoundsConfig{Ell: 1, Gamma: 3})
	if a2.StepBudget() < 3*a1.StepBudget()-3 {
		t.Fatalf("gamma=3 budget %d vs gamma=1 budget %d", a2.StepBudget(), a1.StepBudget())
	}
	c1 := NewLooseClusters(1<<16, ClustersConfig{Ell: 1, Gamma: 2})
	c0 := NewLooseClusters(1<<16, ClustersConfig{Ell: 1, Gamma: 1})
	if c1.StepBudget() < 2*c0.StepBudget()-c0.Phases() {
		t.Fatalf("gamma=2 budget %d vs %d", c1.StepBudget(), c0.StepBudget())
	}
}
