package core

import (
	"math"
	"testing"

	"shmrename/internal/sched"
)

// runTight executes a tight instance under the fair FIFO schedule with
// self-clocked devices (observably equivalent to the external hardware
// clock — see ALGORITHMS.md §2 — and much cheaper to simulate).
func runTight(t *testing.T, n int, cfg TightConfig, seed uint64) (*Tight, []sched.Result) {
	t.Helper()
	cfg.SelfClocked = true
	inst := NewTight(n, cfg)
	res := sched.Run(sched.Config{N: n, Seed: seed, Fast: sched.FastFIFO, Body: inst.Body})
	if got := sched.CountStatus(res, sched.Named); got != n {
		t.Fatalf("n=%d: %d named, want %d", n, got, n)
	}
	if err := sched.VerifyUnique(res, inst.M()); err != nil {
		t.Fatalf("n=%d: %v", n, err)
	}
	return inst, res
}

func TestTightRenamesAllSmall(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 17, 64, 100} {
		runTight(t, n, TightConfig{}, 11)
	}
}

func TestTightRenamesAllMedium(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-size simulation")
	}
	for _, n := range []int{256, 1024} {
		inst, _ := runTight(t, n, TightConfig{}, 5)
		// Tightness: all n names [0,n) used exactly.
		if got := inst.Array().NamesClaimed(); got != n {
			t.Fatalf("n=%d: %d names claimed", n, got)
		}
	}
}

func TestTightStepComplexityLogarithmic(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-size simulation")
	}
	// Theorem 5: O(log n) steps w.h.p. Check max steps <= K·log2 n with a
	// generous constant across sizes and seeds.
	const K = 12
	for _, n := range []int{128, 512, 2048} {
		for seed := uint64(0); seed < 3; seed++ {
			inst := NewTight(n, TightConfig{SelfClocked: true})
			res := sched.Run(sched.Config{N: n, Seed: seed, Fast: sched.FastFIFO, Body: inst.Body})
			if got := sched.CountStatus(res, sched.Named); got != n {
				t.Fatalf("n=%d seed=%d: %d named", n, seed, got)
			}
			maxSteps := sched.MaxSteps(res)
			bound := int64(K * math.Log2(float64(n)))
			if maxSteps > bound {
				t.Fatalf("n=%d seed=%d: max steps %d > %d·log n = %d",
					n, seed, maxSteps, K, bound)
			}
		}
	}
}

func TestTightCorrectedMostlyAvoidsFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-size simulation")
	}
	const n = 2048
	inst, _ := runTight(t, n, TightConfig{}, 3)
	s := inst.Stats()
	if s.ClusterTotal+s.Fallback != int64(n) {
		t.Fatalf("wins %d+%d != n", s.ClusterTotal, s.Fallback)
	}
	if frac := float64(s.Fallback) / float64(n); frac > 0.05 {
		t.Fatalf("fallback fraction %.3f too high for corrected geometry", frac)
	}
}

func TestTightPaperLiteralLeansOnFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-size simulation")
	}
	// The documented inconsistency (E12): the literal cluster sizes can
	// name at most ~n/6 processes for c=2; everyone else must use the
	// fallback. Correctness must still hold.
	const n = 2048
	inst, _ := runTight(t, n, TightConfig{Geometry: PaperLiteral}, 3)
	s := inst.Stats()
	if s.ClusterTotal+s.Fallback != int64(n) {
		t.Fatalf("wins %d+%d != n", s.ClusterTotal, s.Fallback)
	}
	if frac := float64(s.Fallback) / float64(n); frac < 0.5 {
		t.Fatalf("fallback fraction %.3f; expected the majority under the literal geometry", frac)
	}
}

func TestTightUnderAdaptiveAdversaries(t *testing.T) {
	if testing.Short() {
		t.Skip("adaptive policies are O(n log n) per step")
	}
	const n = 128
	for _, policy := range []sched.Policy{sched.Random(), sched.Collider(), sched.Starve(0, 1)} {
		inst := NewTight(n, TightConfig{})
		res := RunSim(inst, 9, policy)
		if got := sched.CountStatus(res, sched.Named); got != n {
			t.Fatalf("policy %s: %d named", policy.Name(), got)
		}
		if err := sched.VerifyUnique(res, n); err != nil {
			t.Fatalf("policy %s: %v", policy.Name(), err)
		}
	}
}

func TestTightWithCrashes(t *testing.T) {
	// Crashed processes take no names; every surviving process still gets
	// a distinct name in [0, n) even though crashed requesters may strand
	// provisional bits.
	// maxStep 2 guarantees every victim crashes on its first or second
	// operation — before it can finish, since acquiring a name takes at
	// least three operations (probe, resolve, claim).
	const n = 96
	plan := sched.PlanCrashes(n, 0.25, 2, prngFor(77))
	inst := NewTight(n, TightConfig{})
	res := RunSim(inst, 13, sched.WithCrashes(sched.RoundRobin(), plan))
	crashed := sched.CountStatus(res, sched.Crashed)
	named := sched.CountStatus(res, sched.Named)
	if crashed != len(plan) {
		t.Fatalf("crashed %d, want %d", crashed, len(plan))
	}
	if named != n-crashed {
		t.Fatalf("named %d, want %d", named, n-crashed)
	}
	if err := sched.VerifyUnique(res, n); err != nil {
		t.Fatal(err)
	}
}

func TestTightNativeMode(t *testing.T) {
	const n = 512
	inst := NewTight(n, TightConfig{SelfClocked: true})
	res := RunNative(inst, 21)
	if got := sched.CountStatus(res, sched.Named); got != n {
		t.Fatalf("%d named, want %d", got, n)
	}
	if err := sched.VerifyUnique(res, n); err != nil {
		t.Fatal(err)
	}
	if got := inst.Array().NamesClaimed(); got != n {
		t.Fatalf("%d names claimed", got)
	}
}

func TestTightDeterministicAcrossRuns(t *testing.T) {
	run := func() []sched.Result {
		return RunSim(NewTight(200, TightConfig{}), 31, nil)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pid %d: %+v vs %+v", a[i].PID, a[i], b[i])
		}
	}
}

func TestTightVariousC(t *testing.T) {
	for _, c := range []float64{1, 1.5, 3, 6} {
		inst := NewTight(128, TightConfig{C: c})
		res := RunSim(inst, 2, nil)
		if got := sched.CountStatus(res, sched.Named); got != 128 {
			t.Fatalf("c=%g: %d named", c, got)
		}
		if err := sched.VerifyUnique(res, 128); err != nil {
			t.Fatalf("c=%g: %v", c, err)
		}
	}
}

func TestTightLabelAndAccessors(t *testing.T) {
	inst := NewTight(64, TightConfig{})
	if inst.N() != 64 || inst.M() != 64 {
		t.Fatalf("N/M = %d/%d", inst.N(), inst.M())
	}
	if inst.Label() == "" {
		t.Fatal("empty label")
	}
	if inst.Clock() == nil {
		t.Fatal("externally clocked instance must expose a clock hook")
	}
	native := NewTight(64, TightConfig{SelfClocked: true})
	if native.Clock() != nil {
		t.Fatal("self-clocked instance must not expose a clock hook")
	}
	if len(inst.Probeables()) == 0 {
		t.Fatal("no probeables exposed")
	}
}
