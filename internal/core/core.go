// Package core implements the paper's primary contribution: the randomized
// renaming algorithms of "Randomized Renaming in Shared Memory Systems"
// (Berenbrink, Brinkmann, Elsässer, Friedetzky, Nagel; IPDPS 2015).
//
//   - Tight renaming via τ-registers (§III, Theorem 5): n processes, n
//     names, O(log n) steps w.h.p., O(n) extra space.
//   - Loose renaming, rounds algorithm (§IV, Lemma 6 / Corollary 7):
//     n/(log log n)^ℓ-almost-tight in O((log log n)^ℓ) steps.
//   - Loose renaming, clusters algorithm (§IV, Lemma 8 / Corollary 9):
//     n/(log n)^ℓ-almost-tight in 2ℓ(log log n)² steps.
//
// Every algorithm is packaged as an Instance: the shared structures plus
// the per-process program, runnable on the deterministic adversarial
// simulator (sched.Run) or natively on goroutines (sched.RunNative).
package core

import (
	"math"
	"math/bits"

	"shmrename/internal/sched"
	"shmrename/internal/shm"
)

// Instance is one configured renaming instance: shared memory plus the
// process program. Instances are single-use; build a fresh one per trial.
type Instance interface {
	// Label names the algorithm for reports.
	Label() string
	// N returns the number of processes the instance was built for.
	N() int
	// M returns the size of the name space (names are 0..M-1).
	M() int
	// Body is the process program: it returns the acquired name, or a
	// negative value if the process terminates unnamed (a "survivor" in
	// the almost-tight algorithms of §IV).
	Body(p *shm.Proc) int
	// Probeables exposes the shared structures to adaptive adversaries.
	Probeables() map[string]shm.Probeable
	// Clock returns the hardware clock hook to run after every granted
	// step in simulated mode, or nil if the instance needs none.
	Clock() func()
}

// RunSim executes the instance on the deterministic adversarial simulator.
func RunSim(inst Instance, seed uint64, policy sched.Policy) []sched.Result {
	return sched.Run(sched.Config{
		N:         inst.N(),
		Seed:      seed,
		Policy:    policy,
		Body:      inst.Body,
		AfterStep: inst.Clock(),
		Spaces:    inst.Probeables(),
	})
}

// RunNative executes the instance on real goroutines (no adversary, wall
// clock). The instance must have been built in self-clocked mode.
func RunNative(inst Instance, seed uint64) []sched.Result {
	return sched.RunNative(inst.N(), seed, inst.Body)
}

// Log2 returns log₂ x. Convenience used by bounds and geometry code.
func Log2(x float64) float64 { return math.Log2(x) }

// CeilLog2 returns ⌈log₂ n⌉ for n ≥ 1, and 0 for n ≤ 1.
func CeilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// LogLog2 returns log₂ log₂ n, the "log log n" of the paper's bounds,
// clamped below at 1 so that tiny inputs do not degenerate the schedules.
func LogLog2(n int) float64 {
	l := math.Log2(float64(n))
	if l < 2 {
		l = 2
	}
	ll := math.Log2(l)
	if ll < 1 {
		return 1
	}
	return ll
}

// LogLogLog2 returns log₂ log₂ log₂ n clamped below at 1; it sizes the
// round count ℓ·log log log n of Lemma 6.
func LogLogLog2(n int) float64 {
	lll := math.Log2(LogLog2(n))
	if lll < 1 {
		return 1
	}
	return lll
}
