package core

import (
	"math"
	"testing"

	"shmrename/internal/sched"
)

func TestAdaptiveRenamesWithoutKnowingK(t *testing.T) {
	// Arena sized for 4096, but only k processes show up; everyone gets
	// a distinct name, adaptively.
	arena := NewAdaptive(4096, AdaptiveConfig{})
	for _, k := range []int{1, 7, 64, 500} {
		inst := NewAdaptive(4096, AdaptiveConfig{})
		res := sched.Run(sched.Config{
			N: k, Seed: uint64(k), Fast: sched.FastFIFO, Body: inst.Body,
		})
		if got := sched.CountStatus(res, sched.Named); got != k {
			t.Fatalf("k=%d: %d named", k, got)
		}
		if err := sched.VerifyUnique(res, inst.M()); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
	_ = arena
}

func TestAdaptiveNamesStayNearK(t *testing.T) {
	// The adaptive guarantee: with k participants, names stay in O(k).
	const maxProcs = 1 << 12
	for _, k := range []int{16, 128, 1024} {
		inst := NewAdaptive(maxProcs, AdaptiveConfig{})
		res := sched.Run(sched.Config{
			N: k, Seed: 3, Fast: sched.FastFIFO, Body: inst.Body,
		})
		limit := inst.MaxName(k)
		for _, r := range res {
			if r.Name >= limit {
				t.Fatalf("k=%d: name %d beyond adaptive limit %d", k, r.Name, limit)
			}
		}
	}
}

func TestAdaptiveStepComplexityLogK(t *testing.T) {
	// O(log k) steps w.h.p.: probes-per-level × levels-to-reach-2k plus
	// constant-success attempts.
	const maxProcs = 1 << 12
	for _, k := range []int{32, 256, 2048} {
		inst := NewAdaptive(maxProcs, AdaptiveConfig{})
		res := sched.Run(sched.Config{
			N: k, Seed: 9, Fast: sched.FastFIFO, Body: inst.Body,
		})
		bound := int64(8 * 4 * (math.Log2(float64(k)) + 3)) // generous 8·probes·(log k+3)
		if got := sched.MaxSteps(res); got > bound {
			t.Fatalf("k=%d: max steps %d > bound %d", k, got, bound)
		}
	}
}

func TestAdaptiveFullCapacity(t *testing.T) {
	// Even at full capacity every process is named (the arena holds ~4x).
	const n = 512
	inst := NewAdaptive(n, AdaptiveConfig{ProbesPerLevel: 2})
	res := sched.Run(sched.Config{N: n, Seed: 4, Fast: sched.FastFIFO, Body: inst.Body})
	if got := sched.CountStatus(res, sched.Named); got != n {
		t.Fatalf("%d named", got)
	}
	if err := sched.VerifyUnique(res, inst.M()); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveAccessorsAndPanics(t *testing.T) {
	inst := NewAdaptive(100, AdaptiveConfig{})
	if inst.N() != 100 {
		t.Fatalf("N = %d", inst.N())
	}
	if inst.M() < 2*100 {
		t.Fatalf("M = %d too small", inst.M())
	}
	if inst.Levels() < 7 {
		t.Fatalf("levels = %d", inst.Levels())
	}
	if inst.Label() == "" || inst.Clock() != nil {
		t.Fatal("label/clock")
	}
	if _, ok := inst.Probeables()["adaptive"]; !ok {
		t.Fatal("probeables")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewAdaptive(0) accepted")
		}
	}()
	NewAdaptive(0, AdaptiveConfig{})
}

func TestAdaptiveUnderAdversary(t *testing.T) {
	const k = 64
	inst := NewAdaptive(1024, AdaptiveConfig{})
	res := RunSim(inst2sized(inst, k), 7, sched.Collider())
	if got := sched.CountStatus(res, sched.Named); got != k {
		t.Fatalf("%d named under collider", got)
	}
	if err := sched.VerifyUnique(res, inst.M()); err != nil {
		t.Fatal(err)
	}
}

// inst2sized adapts an arena built for many to a run with k participants:
// the Instance interface reports the arena capacity as N, so wrap it.
type sizedInstance struct {
	Instance
	k int
}

func (s sizedInstance) N() int { return s.k }

func inst2sized(inst Instance, k int) Instance { return sizedInstance{Instance: inst, k: k} }
