package core

import (
	"fmt"
	"math"

	"shmrename/internal/taureg"
)

// GeometryKind selects how the τ-register array of §III is partitioned
// into clusters.
type GeometryKind uint8

// Geometry kinds.
const (
	// Corrected is the geometric cluster sequence with ratio (1-1/(2c))
	// that the analysis of Lemma 4 actually supports: cluster bit counts
	// c₁ = n/c, c_{i+1} = c_i·(1-1/(2c)), summing to 2n, so that every
	// block receives ~2c·log n requests per round and total name capacity
	// is exactly n. See ALGORITHMS.md §3 for the reconciliation.
	Corrected GeometryKind = iota
	// PaperLiteral is the cluster sequence exactly as printed in the
	// paper, c_i = n/(2c)^i with R from Definition 2(1). Its clusters can
	// only name a 1/(2(2c-1)) fraction of the processes; the remaining
	// name capacity is provided by reserve devices reachable only through
	// the fallback sweep. Used by experiment E12 to demonstrate the
	// inconsistency.
	PaperLiteral
)

// String returns the kind's name.
func (k GeometryKind) String() string {
	switch k {
	case Corrected:
		return "corrected"
	case PaperLiteral:
		return "paper-literal"
	default:
		return fmt.Sprintf("geometry(%d)", uint8(k))
	}
}

// Cluster is a contiguous run of τ-registers probed in one round.
type Cluster struct {
	FirstDevice int
	Devices     int
}

// Geometry is the full layout of the auxiliary array Taux: the per-device
// specs (threshold and name-block size) and the cluster partition. Reserve
// devices (PaperLiteral only) carry capacity but belong to no cluster.
type Geometry struct {
	N     int
	C     float64
	Kind  GeometryKind
	L     int // ⌈log₂ n⌉ (≥1): names per full device, the paper's "log n"
	Width int // TAS bits per device: 2L, the paper's "2 log n"

	Clusters []Cluster
	Specs    []taureg.Spec

	// ClusterNames is the total name capacity reachable through cluster
	// probing; TotalNames-ClusterNames sits in reserve devices.
	ClusterNames int
}

// NewGeometry computes the layout for n processes with constant c ≥ 1.
// It panics if n < 1, c < 1, or the device width exceeds the 64-bit
// hardware word (n beyond 2³²).
func NewGeometry(n int, c float64, kind GeometryKind) Geometry {
	if n < 1 {
		panic("core: geometry requires n >= 1")
	}
	if c < 1 {
		panic("core: geometry requires c >= 1")
	}
	L := CeilLog2(n)
	if L < 1 {
		L = 1
	}
	width := 2 * L
	if width > taureg.MaxWidth {
		panic(fmt.Sprintf("core: n = %d needs device width %d > %d", n, width, taureg.MaxWidth))
	}
	g := Geometry{N: n, C: c, Kind: kind, L: L, Width: width}
	switch kind {
	case Corrected:
		g.buildCorrected()
	case PaperLiteral:
		g.buildPaperLiteral()
	default:
		panic(fmt.Sprintf("core: unknown geometry kind %d", kind))
	}
	return g
}

// buildCorrected lays out clusters so that the planned number of active
// processes a_i shrinks by the factor (1-1/(2c)) per round: cluster i gets
// ~a_i/c TAS bits (a_i/(2c) names), which delivers ~2c·log n requests per
// block — the Lemma 3 regime — in every round.
func (g *Geometry) buildCorrected() {
	remaining := g.N // planned actives == unassigned name capacity
	for remaining > 0 {
		devs := int(math.Round(float64(remaining) / (g.C * float64(g.Width))))
		if devs < 1 {
			devs = 1
		}
		if devs*g.L > remaining {
			devs = (remaining + g.L - 1) / g.L
		}
		g.Clusters = append(g.Clusters, Cluster{FirstDevice: len(g.Specs), Devices: devs})
		for k := 0; k < devs; k++ {
			names := g.L
			if names > remaining {
				names = remaining
			}
			g.Specs = append(g.Specs, taureg.Spec{Tau: names, Names: names})
			remaining -= names
		}
	}
	g.ClusterNames = g.N
}

// buildPaperLiteral lays out clusters exactly as Definition 2 states:
// c_i = n/(2c)^i bits for i = 1..R with R chosen so that c_R ≈ 2 log n.
// The clusters cover only ~n/(2(2c-1)) names; reserve devices own the rest
// of the capacity so the instance remains a correct renamer.
func (g *Geometry) buildPaperLiteral() {
	n, c, width := float64(g.N), g.C, float64(g.Width)
	// c_R = 2 log n  =>  R = log(n / 2 log n) / log(2c).
	r := int(math.Round(math.Log2(n/width) / math.Log2(2*c)))
	if r < 1 {
		r = 1
	}
	capacity := 0
	for i := 1; i <= r; i++ {
		ci := n / math.Pow(2*c, float64(i))
		devs := int(math.Round(ci / width))
		if devs < 1 {
			devs = 1
		}
		if (capacity + devs*g.L) > g.N { // cannot exceed the name space
			devs = (g.N - capacity) / g.L
			if devs < 1 {
				break
			}
		}
		g.Clusters = append(g.Clusters, Cluster{FirstDevice: len(g.Specs), Devices: devs})
		for k := 0; k < devs; k++ {
			g.Specs = append(g.Specs, taureg.Spec{Tau: g.L, Names: g.L})
			capacity += g.L
		}
	}
	g.ClusterNames = capacity
	// Reserve devices: capacity up to exactly n, reachable only through
	// the fallback sweep.
	for capacity < g.N {
		names := g.L
		if names > g.N-capacity {
			names = g.N - capacity
		}
		g.Specs = append(g.Specs, taureg.Spec{Tau: names, Names: names})
		capacity += names
	}
}

// NumDevices returns the number of τ-registers in the layout.
func (g Geometry) NumDevices() int { return len(g.Specs) }

// Rounds returns the number of clusters (the paper's R).
func (g Geometry) Rounds() int { return len(g.Clusters) }

// TotalBits returns the auxiliary TAS-bit count — Theorem 5's O(n) extra
// space (≈2n for the corrected layout).
func (g Geometry) TotalBits() int { return len(g.Specs) * g.Width }

// TotalNames returns the name capacity, always exactly n.
func (g Geometry) TotalNames() int {
	t := 0
	for _, s := range g.Specs {
		t += s.Names
	}
	return t
}
