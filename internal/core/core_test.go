package core

import (
	"testing"

	"shmrename/internal/backfill"
	"shmrename/internal/sched"
	"shmrename/internal/shm"
)

// Compile-time conformance: every algorithm in the package is an Instance.
var (
	_ Instance = (*Tight)(nil)
	_ Instance = (*LooseRounds)(nil)
	_ Instance = (*LooseClusters)(nil)
	_ Instance = (*Combined)(nil)
	_ Instance = (*Adaptive)(nil)
)

func TestRunSimWrapper(t *testing.T) {
	inst := NewLooseRounds(64, RoundsConfig{Ell: 2})
	res := RunSim(inst, 3, sched.RoundRobin())
	if len(res) != 64 {
		t.Fatalf("results = %d", len(res))
	}
	if err := sched.VerifyUnique(res, inst.M()); err != nil {
		t.Fatal(err)
	}
}

func TestRunNativeWrapper(t *testing.T) {
	inst := NewTight(128, TightConfig{SelfClocked: true})
	res := RunNative(inst, 9)
	if got := sched.CountStatus(res, sched.Named); got != 128 {
		t.Fatalf("%d named", got)
	}
	if err := sched.VerifyUnique(res, inst.M()); err != nil {
		t.Fatal(err)
	}
}

func TestTightSingleProcess(t *testing.T) {
	inst := NewTight(1, TightConfig{SelfClocked: true})
	res := sched.Run(sched.Config{N: 1, Seed: 1, Fast: sched.FastFIFO, Body: inst.Body})
	if res[0].Status != sched.Named || res[0].Name != 0 {
		t.Fatalf("n=1 result %+v", res[0])
	}
}

func TestLooseRoundsNativeMode(t *testing.T) {
	inst := NewLooseRounds(512, RoundsConfig{Ell: 3})
	res := RunNative(inst, 17)
	if err := sched.VerifyUnique(res, inst.M()); err != nil {
		t.Fatal(err)
	}
	named := sched.CountStatus(res, sched.Named)
	if claimed := inst.Space().CountClaimed(); claimed != named {
		t.Fatalf("space %d vs named %d", claimed, named)
	}
}

func TestCombinedWithExplicitStrategies(t *testing.T) {
	// All backfill strategies compose correctly with both corollaries.
	type mk func() Instance
	makers := []mk{}
	for _, s := range []backfill.Strategy{backfill.Uniform{}, backfill.Sweep{}, backfill.Hybrid{}} {
		s := s
		makers = append(makers,
			func() Instance { return NewCorollary7(256, RoundsConfig{Ell: 1}, s) },
			func() Instance { return NewCorollary9(256, ClustersConfig{Ell: 1}, s) },
		)
	}
	for i, m := range makers {
		inst := m()
		res := sched.Run(sched.Config{
			N: 256, Seed: uint64(i), Fast: sched.FastFIFO, Body: inst.Body,
		})
		if got := sched.CountStatus(res, sched.Named); got != 256 {
			t.Fatalf("maker %d (%s): %d named", i, inst.Label(), got)
		}
		if err := sched.VerifyUnique(res, inst.M()); err != nil {
			t.Fatalf("maker %d: %v", i, err)
		}
	}
}

func TestProbeablesOfUnlabeledSpace(t *testing.T) {
	// A claim space that is not LabeledProbeable yields no probeables;
	// the adversary then simply sees less, which must not break runs.
	inst := NewLooseRoundsOn(32, RoundsConfig{}, plainSpace{shm.NewNameSpace("x", 32)})
	if inst.Probeables() != nil {
		t.Fatal("unlabeled space should expose no probeables")
	}
	res := RunSim(inst, 1, sched.Collider())
	if err := sched.VerifyUnique(res, 32); err != nil {
		t.Fatal(err)
	}
}

// plainSpace hides NameSpace's Label method to exercise the unlabeled
// path.
type plainSpace struct{ ns *shm.NameSpace }

func (p plainSpace) Size() int                         { return p.ns.Size() }
func (p plainSpace) TryClaim(pr *shm.Proc, i int) bool { return p.ns.TryClaim(pr, i) }
func (p plainSpace) Claimed(pr *shm.Proc, i int) bool  { return p.ns.Claimed(pr, i) }
func (p plainSpace) CountClaimed() int                 { return p.ns.CountClaimed() }

func TestLooseSpaceSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched space size accepted")
		}
	}()
	NewLooseRoundsOn(16, RoundsConfig{}, shm.NewNameSpace("x", 8))
}
