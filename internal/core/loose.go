package core

import (
	"fmt"
	"math"

	"shmrename/internal/shm"
)

// RoundsConfig parameterizes the Lemma 6 algorithm.
type RoundsConfig struct {
	// Ell is the paper's ℓ: survivors shrink to ~2n/(log log n)^ℓ at a
	// step cost of (log log n)^ℓ. Default 1.
	Ell int
	// Gamma scales the per-round step counts (default 1). The paper's
	// constants assume asymptotic n; at laptop-feasible sizes a small
	// multiplier recovers the intended failure probabilities, and the
	// experiments report results for γ=1 as stated.
	Gamma float64
}

func (c *RoundsConfig) fill() {
	if c.Ell <= 0 {
		c.Ell = 1
	}
	if c.Gamma <= 0 {
		c.Gamma = 1
	}
}

// LooseRounds is the Lemma 6 algorithm: ℓ·log log log n rounds, round i
// consisting of 2^i steps; in every step each still-unnamed process
// test-and-sets one uniformly random register of the full n-register
// space. Processes still unnamed at the end are survivors (the algorithm
// is n/(log log n)^ℓ-almost tight w.h.p.).
type LooseRounds struct {
	n        int
	cfg      RoundsConfig
	space    shm.ClaimSpace
	schedule []int // steps per round
}

// NewLooseRounds builds a Lemma 6 instance for n processes on n hardware
// TAS registers.
func NewLooseRounds(n int, cfg RoundsConfig) *LooseRounds {
	return NewLooseRoundsOn(n, cfg, nil)
}

// NewLooseRoundsOn builds a Lemma 6 instance over the given claim space
// (e.g. software TAS registers for the E9 ablation); a nil space selects
// n hardware registers. The space must hold exactly n names.
func NewLooseRoundsOn(n int, cfg RoundsConfig, space shm.ClaimSpace) *LooseRounds {
	if n < 1 {
		panic("core: LooseRounds requires n >= 1")
	}
	if space == nil {
		space = shm.NewNameSpace("names", n)
	}
	if space.Size() != n {
		panic(fmt.Sprintf("core: LooseRounds space has %d names, want %d", space.Size(), n))
	}
	cfg.fill()
	rounds := int(math.Ceil(float64(cfg.Ell) * LogLogLog2(n)))
	if rounds < 1 {
		rounds = 1
	}
	schedule := make([]int, rounds)
	for i := range schedule {
		steps := int(math.Ceil(math.Pow(2, float64(i+1)) * cfg.Gamma))
		if steps < 1 {
			steps = 1
		}
		schedule[i] = steps
	}
	return &LooseRounds{
		n:        n,
		cfg:      cfg,
		space:    space,
		schedule: schedule,
	}
}

// Label implements Instance.
func (a *LooseRounds) Label() string {
	return fmt.Sprintf("loose-rounds(l=%d)", a.cfg.Ell)
}

// N implements Instance.
func (a *LooseRounds) N() int { return a.n }

// M implements Instance: the algorithm probes a space of exactly n names.
func (a *LooseRounds) M() int { return a.n }

// Probeables implements Instance.
func (a *LooseRounds) Probeables() map[string]shm.Probeable {
	return probeablesOf(a.space)
}

// Clock implements Instance; the algorithm uses no hardware clock.
func (a *LooseRounds) Clock() func() { return nil }

// Space returns the underlying claim space (diagnostics, composition).
func (a *LooseRounds) Space() shm.ClaimSpace { return a.space }

// probeablesOf exposes a claim space to adaptive adversaries when it
// supports probing.
func probeablesOf(space shm.ClaimSpace) map[string]shm.Probeable {
	if lp, ok := space.(shm.LabeledProbeable); ok {
		return map[string]shm.Probeable{lp.Label(): lp}
	}
	return nil
}

// Rounds returns the round count ℓ·log log log n.
func (a *LooseRounds) Rounds() int { return len(a.schedule) }

// StepBudget returns the total probes per process, Σ 2^i ≈ (log log n)^ℓ
// — the step-complexity bound of Lemma 6.
func (a *LooseRounds) StepBudget() int {
	t := 0
	for _, s := range a.schedule {
		t += s
	}
	return t
}

// SurvivorBound returns the Lemma 6 w.h.p. survivor bound
// 2n/(log log n)^ℓ.
func (a *LooseRounds) SurvivorBound() float64 {
	return 2 * float64(a.n) / math.Pow(LogLog2(a.n), float64(a.cfg.Ell))
}

// Body implements Instance.
func (a *LooseRounds) Body(p *shm.Proc) int {
	r := p.Rand()
	for _, steps := range a.schedule {
		for s := 0; s < steps; s++ {
			i := r.Intn(a.n)
			if a.space.TryClaim(p, i) {
				return i
			}
		}
	}
	return -1 // survivor
}

// ClustersConfig parameterizes the Lemma 8 algorithm.
type ClustersConfig struct {
	// Ell is the paper's ℓ: survivors shrink to ~n/(log n)^ℓ at a step
	// cost of 2ℓ(log log n)². Default 1.
	Ell int
	// Gamma scales the per-phase step counts (default 1); see
	// RoundsConfig.Gamma.
	Gamma float64
}

func (c *ClustersConfig) fill() {
	if c.Ell <= 0 {
		c.Ell = 1
	}
	if c.Gamma <= 0 {
		c.Gamma = 1
	}
}

// LooseClusters is the Lemma 8 algorithm: the registers are divided into
// log log n clusters, the j-th of size n/2^j; in phase i every unnamed
// process spends 2ℓ·log log n steps probing uniformly random registers of
// cluster i only.
type LooseClusters struct {
	n             int
	cfg           ClustersConfig
	space         shm.ClaimSpace
	offsets       []int // cluster start index
	sizes         []int // cluster sizes n/2^j
	stepsPerPhase int
}

// NewLooseClusters builds a Lemma 8 instance for n processes on n
// hardware registers (of which the clusters occupy Σ n/2^j < n).
func NewLooseClusters(n int, cfg ClustersConfig) *LooseClusters {
	return NewLooseClustersOn(n, cfg, nil)
}

// NewLooseClustersOn builds a Lemma 8 instance over the given claim space;
// a nil space selects n hardware registers. The space must hold exactly n
// names.
func NewLooseClustersOn(n int, cfg ClustersConfig, space shm.ClaimSpace) *LooseClusters {
	if n < 2 {
		panic("core: LooseClusters requires n >= 2")
	}
	if space == nil {
		space = shm.NewNameSpace("names", n)
	}
	if space.Size() != n {
		panic(fmt.Sprintf("core: LooseClusters space has %d names, want %d", space.Size(), n))
	}
	cfg.fill()
	phases := int(math.Ceil(LogLog2(n)))
	if phases < 1 {
		phases = 1
	}
	a := &LooseClusters{
		n:     n,
		cfg:   cfg,
		space: space,
	}
	off := 0
	for j := 1; j <= phases; j++ {
		size := n >> uint(j)
		if size < 1 {
			size = 1
		}
		if off+size > n {
			size = n - off
			if size < 1 {
				break
			}
		}
		a.offsets = append(a.offsets, off)
		a.sizes = append(a.sizes, size)
		off += size
	}
	// The printed cluster sizes Σ n/2^j leave n/log n registers outside
	// every cluster; those names could never be assigned and the survivor
	// count could never drop below n/log n, contradicting the Lemma 8
	// bound for ℓ >= 2. The analysis only needs the last cluster to be
	// Θ(n/log n) large, so it absorbs the remainder (see ALGORITHMS.md §4).
	if off < n && len(a.sizes) > 0 {
		a.sizes[len(a.sizes)-1] += n - off
	}
	a.stepsPerPhase = int(math.Ceil(2 * float64(cfg.Ell) * LogLog2(n) * cfg.Gamma))
	if a.stepsPerPhase < 1 {
		a.stepsPerPhase = 1
	}
	return a
}

// Label implements Instance.
func (a *LooseClusters) Label() string {
	return fmt.Sprintf("loose-clusters(l=%d)", a.cfg.Ell)
}

// N implements Instance.
func (a *LooseClusters) N() int { return a.n }

// M implements Instance.
func (a *LooseClusters) M() int { return a.n }

// Probeables implements Instance.
func (a *LooseClusters) Probeables() map[string]shm.Probeable {
	return probeablesOf(a.space)
}

// Clock implements Instance.
func (a *LooseClusters) Clock() func() { return nil }

// Space returns the underlying claim space (diagnostics, composition).
func (a *LooseClusters) Space() shm.ClaimSpace { return a.space }

// Phases returns the phase count ⌈log log n⌉.
func (a *LooseClusters) Phases() int { return len(a.sizes) }

// StepBudget returns the total probes per process,
// ⌈log log n⌉ · 2ℓ·log log n ≈ 2ℓ(log log n)² — Lemma 8's bound.
func (a *LooseClusters) StepBudget() int { return len(a.sizes) * a.stepsPerPhase }

// SurvivorBound returns the Lemma 8 w.h.p. survivor bound n/(log n)^ℓ.
func (a *LooseClusters) SurvivorBound() float64 {
	return float64(a.n) / math.Pow(math.Log2(float64(a.n)), float64(a.cfg.Ell))
}

// Body implements Instance.
func (a *LooseClusters) Body(p *shm.Proc) int {
	r := p.Rand()
	for ph := range a.sizes {
		off, size := a.offsets[ph], a.sizes[ph]
		for s := 0; s < a.stepsPerPhase; s++ {
			i := off + r.Intn(size)
			if a.space.TryClaim(p, i) {
				return i
			}
		}
	}
	return -1 // survivor
}
