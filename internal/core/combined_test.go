package core

import (
	"testing"

	"shmrename/internal/backfill"
	"shmrename/internal/sched"
)

func TestCorollary7NamesEveryone(t *testing.T) {
	for _, ell := range []int{1, 2} {
		for _, n := range []int{256, 2048} {
			inst := NewCorollary7(n, RoundsConfig{Ell: ell}, nil)
			res := sched.Run(sched.Config{
				N: n, Seed: 17, Fast: sched.FastFIFO,
				Body: inst.Body,
			})
			if got := sched.CountStatus(res, sched.Named); got != n {
				t.Fatalf("n=%d ell=%d: %d named", n, ell, got)
			}
			if err := sched.VerifyUnique(res, inst.M()); err != nil {
				t.Fatalf("n=%d ell=%d: %v", n, ell, err)
			}
		}
	}
}

func TestCorollary9NamesEveryone(t *testing.T) {
	for _, n := range []int{256, 2048} {
		inst := NewCorollary9(n, ClustersConfig{Ell: 1}, nil)
		res := sched.Run(sched.Config{
			N: n, Seed: 23, Fast: sched.FastFIFO,
			Body: inst.Body,
		})
		if got := sched.CountStatus(res, sched.Named); got != n {
			t.Fatalf("n=%d: %d named", n, got)
		}
		if err := sched.VerifyUnique(res, inst.M()); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestCombinedNameSpaceSizes(t *testing.T) {
	// Corollary 7: m = n + 2n/(loglog n)^ell.
	n := 1 << 16
	c7 := NewCorollary7(n, RoundsConfig{Ell: 2}, nil)
	wantExtra := 2 * n / 16 // (loglog 2^16)^2 = 16
	if c7.Extra() != wantExtra {
		t.Fatalf("corollary7 extra = %d, want %d", c7.Extra(), wantExtra)
	}
	if c7.M() != n+wantExtra {
		t.Fatalf("corollary7 m = %d, want %d", c7.M(), n+wantExtra)
	}
	// Corollary 9: m = n + 2n/(log n)^ell.
	c9 := NewCorollary9(n, ClustersConfig{Ell: 1}, nil)
	if c9.Extra() != 2*n/16 {
		t.Fatalf("corollary9 extra = %d, want %d", c9.Extra(), 2*n/16)
	}
}

func TestCombinedOverflowNamesDisjoint(t *testing.T) {
	// Names from the overflow space must start at n.
	const n = 512
	inst := NewCorollary7(n, RoundsConfig{Ell: 3}, backfill.Hybrid{})
	res := sched.Run(sched.Config{N: n, Seed: 29, Fast: sched.FastFIFO, Body: inst.Body})
	overflowUsed := 0
	for _, r := range res {
		if r.Status != sched.Named {
			continue
		}
		if r.Name >= n {
			overflowUsed++
			if r.Name >= inst.M() {
				t.Fatalf("name %d beyond m=%d", r.Name, inst.M())
			}
		}
	}
	if got := inst.Overflow().CountClaimed(); got != overflowUsed {
		t.Fatalf("overflow claims %d, results show %d", got, overflowUsed)
	}
}

func TestCombinedStepComplexityBounded(t *testing.T) {
	// Total steps = inner budget + backfill cost. With Hybrid backfill the
	// deterministic cap is inner + probes + extra-space size.
	const n = 2048
	inst := NewCorollary7(n, RoundsConfig{Ell: 1}, backfill.Hybrid{})
	res := sched.Run(sched.Config{N: n, Seed: 31, Fast: sched.FastFIFO, Body: inst.Body})
	cap := int64(inst.InnerStepBudget() + backfill.DefaultProbes + inst.Extra())
	for _, r := range res {
		if r.Steps > cap {
			t.Fatalf("pid %d took %d steps, deterministic cap %d", r.PID, r.Steps, cap)
		}
	}
	// Typical case: the backfill term is small; check the 95th percentile
	// stays within inner budget + a handful of probes.
	within := 0
	for _, r := range res {
		if r.Steps <= int64(inst.InnerStepBudget()+backfill.DefaultProbes) {
			within++
		}
	}
	if frac := float64(within) / float64(n); frac < 0.95 {
		t.Fatalf("only %.2f of processes within inner+probe budget", frac)
	}
}

func TestCombinedAccessors(t *testing.T) {
	inst := NewCorollary9(256, ClustersConfig{}, nil)
	if inst.N() != 256 {
		t.Fatalf("N = %d", inst.N())
	}
	if inst.M() <= 256 {
		t.Fatalf("M = %d, want > n", inst.M())
	}
	if inst.Label() == "" || inst.Inner().Label() == "" {
		t.Fatal("labels empty")
	}
	if inst.Clock() != nil {
		t.Fatal("loose instances need no clock")
	}
	if _, ok := inst.Probeables()["overflow"]; !ok {
		t.Fatal("overflow not probeable")
	}
	if _, ok := inst.Probeables()["names"]; !ok {
		t.Fatal("names not probeable")
	}
}

func TestCombinedUnderAdaptiveAdversary(t *testing.T) {
	if testing.Short() {
		t.Skip("adaptive policy is O(n log n) per step")
	}
	const n = 128
	inst := NewCorollary7(n, RoundsConfig{Ell: 1}, nil)
	res := RunSim(inst, 37, sched.Collider())
	if got := sched.CountStatus(res, sched.Named); got != n {
		t.Fatalf("%d named under collider", got)
	}
	if err := sched.VerifyUnique(res, inst.M()); err != nil {
		t.Fatal(err)
	}
}
