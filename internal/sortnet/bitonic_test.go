package sortnet

import (
	"sort"
	"testing"

	"shmrename/internal/prng"
	"shmrename/internal/sched"
)

func TestBitonicStructure(t *testing.T) {
	for _, w := range []int{1, 2, 4, 8, 16, 64, 256} {
		net := Bitonic(w)
		if err := net.Validate(); err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		if w > 1 {
			lg := 0
			for v := w; v > 1; v >>= 1 {
				lg++
			}
			if want := lg * (lg + 1) / 2; net.Depth() != want {
				t.Fatalf("width %d: depth %d, want %d", w, net.Depth(), want)
			}
		}
	}
}

func TestBitonicSorts01Exhaustive(t *testing.T) {
	for _, w := range []int{2, 4, 8, 16} {
		net := Bitonic(w)
		for v := uint64(0); v < uint64(1)<<w; v++ {
			if !net.Sorts01(v) {
				t.Fatalf("width %d fails on 0-1 input %0*b", w, w, v)
			}
		}
	}
}

func TestBitonicSortsPermutations(t *testing.T) {
	r := prng.New(3)
	net := Bitonic(64)
	for trial := 0; trial < 50; trial++ {
		out := net.Apply(r.Perm(64))
		if !sort.IntsAreSorted(out) {
			t.Fatalf("trial %d: %v", trial, out)
		}
	}
}

func TestBitonicRejectsNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("width 6 accepted")
		}
	}()
	Bitonic(6)
}

func TestBitonicRenamerAdaptive(t *testing.T) {
	// The renaming adapter works with any sorting network: k processes
	// on arbitrary wires of a bitonic network exit on wires 0..k-1.
	r := prng.New(11)
	net := Bitonic(32)
	for trial := 0; trial < 10; trial++ {
		k := 1 + r.Intn(32)
		inst := NewRenamer(net, r.Perm(32)[:k])
		res := sched.Run(sched.Config{
			N: k, Seed: uint64(trial), Fast: sched.FastRandom, Body: inst.Body,
		})
		used := make([]bool, k)
		for _, rr := range res {
			if rr.Name < 0 || rr.Name >= k || used[rr.Name] {
				t.Fatalf("trial %d: exit wires invalid", trial)
			}
			used[rr.Name] = true
		}
	}
}

func TestBitonicVsOddEvenSizes(t *testing.T) {
	// Bitonic uses more comparators at equal depth; both are valid
	// instantiations for E8.
	b, oe := Bitonic(64), OddEvenMergeSort(64)
	if b.Depth() != oe.Depth() {
		t.Fatalf("depths differ: bitonic %d, odd-even %d", b.Depth(), oe.Depth())
	}
	if b.Size() <= oe.Size() {
		t.Fatalf("bitonic size %d should exceed odd-even %d", b.Size(), oe.Size())
	}
}
