package sortnet

import (
	"sort"
	"testing"
	"testing/quick"

	"shmrename/internal/prng"
)

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024}
	for n, want := range cases {
		if got := NextPow2(n); got != want {
			t.Fatalf("NextPow2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestOddEvenMergeSortStructure(t *testing.T) {
	for _, w := range []int{1, 2, 4, 8, 16, 32, 64, 256} {
		net := OddEvenMergeSort(w)
		if err := net.Validate(); err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		if w > 1 {
			lg := 0
			for v := w; v > 1; v >>= 1 {
				lg++
			}
			wantDepth := lg * (lg + 1) / 2
			if net.Depth() != wantDepth {
				t.Fatalf("width %d: depth %d, want %d", w, net.Depth(), wantDepth)
			}
		}
	}
}

func TestOddEvenMergeSortRejectsNonPow2(t *testing.T) {
	for _, w := range []int{0, 3, 6, -4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("width %d accepted", w)
				}
			}()
			OddEvenMergeSort(w)
		}()
	}
}

func TestNetworkSortsExhaustive01(t *testing.T) {
	// The 0-1 principle: a network sorting all 0-1 inputs sorts
	// everything. Exhaustive for small widths.
	for _, w := range []int{2, 4, 8, 16} {
		net := OddEvenMergeSort(w)
		for v := uint64(0); v < uint64(1)<<w; v++ {
			if !net.Sorts01(v) {
				t.Fatalf("width %d fails on 0-1 input %0*b", w, w, v)
			}
		}
	}
}

func TestNetworkSortsRandomPermutations(t *testing.T) {
	r := prng.New(5)
	for _, w := range []int{32, 64, 128} {
		net := OddEvenMergeSort(w)
		for trial := 0; trial < 50; trial++ {
			in := r.Perm(w)
			out := net.Apply(in)
			if !sort.IntsAreSorted(out) {
				t.Fatalf("width %d: output not sorted: %v", w, out)
			}
		}
	}
}

func TestQuickNetworkSortsArbitraryValues(t *testing.T) {
	net := OddEvenMergeSort(32)
	f := func(seed uint64) bool {
		r := prng.New(seed)
		in := make([]int, 32)
		for i := range in {
			in[i] = r.Intn(100) - 50
		}
		return sort.IntsAreSorted(net.Apply(in))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyPanicsOnWrongLength(t *testing.T) {
	net := OddEvenMergeSort(8)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-length input accepted")
		}
	}()
	net.Apply(make([]int, 7))
}

func TestNetworkSizeMatchesLayers(t *testing.T) {
	net := OddEvenMergeSort(16)
	total := 0
	for _, l := range net.Layers {
		total += len(l)
	}
	if net.Size() != total {
		t.Fatalf("Size %d != layer sum %d", net.Size(), total)
	}
	// Batcher odd-even mergesort size for w=16 is 63 comparators.
	if net.Size() != 63 {
		t.Fatalf("w=16 size = %d, want 63", net.Size())
	}
}
