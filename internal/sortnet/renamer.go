package sortnet

import (
	"fmt"

	"shmrename/internal/shm"
)

// Renamer is the sorting-network renaming protocol of [7]: every
// comparator carries one TAS register; a process enters the network on the
// wire of its original name and walks the layers, and at each comparator
// touching its wire performs a test-and-set — the winner (first arrival)
// exits on the upper wire A, the loser on B. By the 0-1 principle, the k
// participating processes leave a sorting network on wires 0..k-1: an
// adaptive tight renaming with step complexity equal to the network depth.
//
// Distinctness of output wires holds even if processes crash mid-network
// (at most one process exits each comparator side); the contiguity of the
// output range 0..k-1 requires all k to finish.
type Renamer struct {
	net     Network
	entries []int
	regs    *shm.NameSpace
	comps   []Comparator // flat, in layer order; index == TAS register
	// lookup[layer][wire] = idx+1 if comps[idx] touches wire in that
	// layer, 0 if untouched.
	lookup [][]int32
}

// NewRenamer builds the protocol for len(entries) processes, where
// entries[pid] is the wire (original name) on which process pid enters.
// Entries must be distinct and within the network width. Pass nil to use
// the identity mapping for n == width processes... use NewRenamerN for the
// common case.
func NewRenamer(net Network, entries []int) *Renamer {
	if err := net.Validate(); err != nil {
		panic(fmt.Sprintf("sortnet: invalid network: %v", err))
	}
	seen := make(map[int]bool, len(entries))
	for _, e := range entries {
		if e < 0 || e >= net.Width {
			panic(fmt.Sprintf("sortnet: entry wire %d outside width %d", e, net.Width))
		}
		if seen[e] {
			panic(fmt.Sprintf("sortnet: duplicate entry wire %d", e))
		}
		seen[e] = true
	}
	r := &Renamer{
		net:     net,
		entries: append([]int(nil), entries...),
		regs:    shm.NewNameSpace("sortnet", net.Size()),
		lookup:  make([][]int32, net.Depth()),
	}
	idx := 0
	for li, layer := range net.Layers {
		row := make([]int32, net.Width)
		for _, c := range layer {
			r.comps = append(r.comps, c)
			row[c.A] = int32(idx + 1)
			row[c.B] = int32(idx + 1)
			idx++
		}
		r.lookup[li] = row
	}
	return r
}

// NewRenamerN builds the protocol for n processes entering on wires
// 0..n-1 of a fresh odd-even mergesort network of width NextPow2(n).
func NewRenamerN(n int) *Renamer {
	if n < 1 {
		panic("sortnet: NewRenamerN requires n >= 1")
	}
	entries := make([]int, n)
	for i := range entries {
		entries[i] = i
	}
	return NewRenamer(OddEvenMergeSort(NextPow2(n)), entries)
}

// Label implements core.Instance.
func (r *Renamer) Label() string {
	return fmt.Sprintf("sortnet-batcher(w=%d,d=%d)", r.net.Width, r.net.Depth())
}

// N implements core.Instance.
func (r *Renamer) N() int { return len(r.entries) }

// M implements core.Instance: output wires lie in [0, width); with all
// processes finishing they lie in [0, n).
func (r *Renamer) M() int { return r.net.Width }

// Depth returns the network depth — the per-process step bound.
func (r *Renamer) Depth() int { return r.net.Depth() }

// Probeables implements core.Instance.
func (r *Renamer) Probeables() map[string]shm.Probeable {
	return map[string]shm.Probeable{"sortnet": r.regs}
}

// Clock implements core.Instance.
func (r *Renamer) Clock() func() { return nil }

// Body implements core.Instance: walk the layers from the entry wire.
func (r *Renamer) Body(p *shm.Proc) int {
	wire := r.entries[p.ID()]
	for li := range r.lookup {
		code := r.lookup[li][wire]
		if code == 0 {
			continue
		}
		idx := int(code) - 1
		c := r.comps[idx]
		if r.regs.TryClaim(p, idx) {
			wire = c.A // first arrival exits on the upper wire
		} else {
			wire = c.B
		}
	}
	return wire
}
