package sortnet

import "testing"

// FuzzNetworksSort01 checks both Batcher constructions on arbitrary 0-1
// inputs of width 16 (the 0-1 principle makes this a full sorting check).
func FuzzNetworksSort01(f *testing.F) {
	f.Add(uint16(0b1010_1100_0011_0101))
	f.Add(uint16(0))
	f.Add(^uint16(0))
	oe := OddEvenMergeSort(16)
	bi := Bitonic(16)
	f.Fuzz(func(t *testing.T, v uint16) {
		if !oe.Sorts01(uint64(v)) {
			t.Fatalf("odd-even fails on %016b", v)
		}
		if !bi.Sorts01(uint64(v)) {
			t.Fatalf("bitonic fails on %016b", v)
		}
	})
}
