package sortnet

// Bitonic builds the normalized (ascending-comparators-only) bitonic
// sorting network for the given width, which must be a power of two. Its
// depth equals the odd-even mergesort's (log₂ w)(log₂ w + 1)/2 with ~2×
// the comparators; it is provided as a second practical instantiation of
// the [7] renaming construction (both stand in for the impractical AKS
// network).
//
// Construction: stage k (k = 2, 4, ..., w) first runs a "half-cleaner
// with reversal" on every block of k wires — wire base+i meets wire
// base+k-1-i — which turns two sorted halves into two bitonic-free
// comparable halves using only min-up comparators; the remaining
// substages are standard stride merges (i vs i+d within blocks of 2d).
func Bitonic(width int) Network {
	if width < 1 || width&(width-1) != 0 {
		panic("sortnet: bitonic width must be a positive power of two")
	}
	net := Network{Width: width}
	for k := 2; k <= width; k *= 2 {
		// Reversal substage.
		var layer []Comparator
		for base := 0; base < width; base += k {
			for i := 0; i < k/2; i++ {
				layer = append(layer, Comparator{A: base + i, B: base + k - 1 - i})
			}
		}
		sortLayer(layer)
		net.Layers = append(net.Layers, layer)
		// Stride substages.
		for d := k / 4; d >= 1; d /= 2 {
			layer = nil
			for base := 0; base < width; base += 2 * d {
				for i := 0; i < d; i++ {
					layer = append(layer, Comparator{A: base + i, B: base + i + d})
				}
			}
			sortLayer(layer)
			net.Layers = append(net.Layers, layer)
		}
	}
	return net
}

func sortLayer(layer []Comparator) {
	for i := 1; i < len(layer); i++ {
		for j := i; j > 0 && layer[j].A < layer[j-1].A; j-- {
			layer[j], layer[j-1] = layer[j-1], layer[j]
		}
	}
}
