// Package sortnet implements comparator sorting networks and the
// sorting-network renaming adapter of Alistarh et al. (PODC 2011,
// reference [7] of the paper): any sorting network becomes an adaptive
// tight renaming protocol by implementing every comparator as a 2-process
// test-and-set splitter, with step complexity equal to the network depth.
//
// The paper's construction uses the AKS network — depth O(log n) with
// unusable constants, which is precisely the overhead the τ-register
// algorithm avoids. This package provides the practical instantiation,
// Batcher's odd-even mergesort (depth (log₂ w)(log₂ w + 1)/2), as the
// realizable baseline for experiment E8 (see ALGORITHMS.md §5).
package sortnet

import (
	"fmt"
	"sort"
)

// Comparator orders two wires: the smaller value (or, in the renaming
// adapter, the first process to arrive) exits on wire A, the other on B.
type Comparator struct {
	A, B int // A < B
}

// Network is a comparator network with explicit layers; comparators within
// a layer touch disjoint wires and run concurrently, so the depth (number
// of layers) is the per-process step bound of the renaming adapter.
type Network struct {
	Width  int
	Layers [][]Comparator
}

// OddEvenMergeSort builds Batcher's odd-even mergesort network for the
// given width, which must be a power of two (use NextPow2). Its depth is
// (log₂ w)(log₂ w + 1)/2.
func OddEvenMergeSort(width int) Network {
	if width < 1 || width&(width-1) != 0 {
		panic(fmt.Sprintf("sortnet: width %d is not a positive power of two", width))
	}
	net := Network{Width: width}
	for p := 1; p < width; p *= 2 {
		for k := p; k >= 1; k /= 2 {
			var layer []Comparator
			for j := k % p; j <= width-1-k; j += 2 * k {
				for i := 0; i <= k-1 && i+j+k <= width-1; i++ {
					if (i+j)/(p*2) == (i+j+k)/(p*2) {
						layer = append(layer, Comparator{A: i + j, B: i + j + k})
					}
				}
			}
			if len(layer) > 0 {
				sort.Slice(layer, func(a, b int) bool { return layer[a].A < layer[b].A })
				net.Layers = append(net.Layers, layer)
			}
		}
	}
	return net
}

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}

// Depth returns the number of layers.
func (n Network) Depth() int { return len(n.Layers) }

// Size returns the total number of comparators.
func (n Network) Size() int {
	s := 0
	for _, l := range n.Layers {
		s += len(l)
	}
	return s
}

// Apply runs the network on a copy of vals (len == Width) and returns the
// result. Used to verify the sorting property in tests.
func (n Network) Apply(vals []int) []int {
	if len(vals) != n.Width {
		panic(fmt.Sprintf("sortnet: Apply got %d values for width %d", len(vals), n.Width))
	}
	out := make([]int, len(vals))
	copy(out, vals)
	for _, layer := range n.Layers {
		for _, c := range layer {
			if out[c.A] > out[c.B] {
				out[c.A], out[c.B] = out[c.B], out[c.A]
			}
		}
	}
	return out
}

// Sorts01 reports whether the network sorts the given 0-1 vector, encoded
// in the low Width bits of v (bit i = wire i's input).
func (n Network) Sorts01(v uint64) bool {
	in := make([]int, n.Width)
	ones := 0
	for i := 0; i < n.Width; i++ {
		if v&(uint64(1)<<i) != 0 {
			in[i] = 1
			ones++
		}
	}
	out := n.Apply(in)
	for i, x := range out {
		want := 0
		if i >= n.Width-ones {
			want = 1
		}
		if x != want {
			return false
		}
	}
	return true
}

// Validate checks structural invariants: wire indices in range, A < B,
// and disjoint wires within each layer. It returns the first problem found
// or nil.
func (n Network) Validate() error {
	for li, layer := range n.Layers {
		used := make(map[int]bool, 2*len(layer))
		for _, c := range layer {
			if c.A < 0 || c.B >= n.Width || c.A >= c.B {
				return fmt.Errorf("layer %d: bad comparator %+v", li, c)
			}
			if used[c.A] || used[c.B] {
				return fmt.Errorf("layer %d: wire reused by %+v", li, c)
			}
			used[c.A], used[c.B] = true, true
		}
	}
	return nil
}
