package sortnet

import (
	"testing"

	"shmrename/internal/core"
	"shmrename/internal/prng"
	"shmrename/internal/sched"
)

func TestRenamerImplementsInstance(t *testing.T) {
	var _ core.Instance = NewRenamerN(4)
}

func TestRenamerTightOutputs(t *testing.T) {
	// All n processes traverse; by the 0-1 principle they must exit on
	// wires 0..n-1 exactly.
	for _, n := range []int{1, 2, 3, 7, 16, 33, 128} {
		inst := NewRenamerN(n)
		res := sched.Run(sched.Config{
			N: n, Seed: 3, Fast: sched.FastRandom, Body: inst.Body,
		})
		used := make([]bool, n)
		for _, r := range res {
			if r.Status != sched.Named {
				t.Fatalf("n=%d pid=%d: %v", n, r.PID, r.Status)
			}
			if r.Name < 0 || r.Name >= n {
				t.Fatalf("n=%d pid=%d: name %d outside [0,%d)", n, r.PID, r.Name, n)
			}
			if used[r.Name] {
				t.Fatalf("n=%d: name %d used twice", n, r.Name)
			}
			used[r.Name] = true
		}
	}
}

func TestRenamerAdaptiveSubsets(t *testing.T) {
	// k processes entering on arbitrary distinct wires of a width-w
	// network must exit on wires 0..k-1: the adaptive property of [7].
	r := prng.New(9)
	const w = 64
	net := OddEvenMergeSort(w)
	for trial := 0; trial < 20; trial++ {
		k := 1 + r.Intn(w)
		entries := r.Perm(w)[:k]
		inst := NewRenamer(net, entries)
		res := sched.Run(sched.Config{
			N: k, Seed: uint64(trial), Fast: sched.FastRandom, Body: inst.Body,
		})
		used := make([]bool, k)
		for _, rr := range res {
			if rr.Name < 0 || rr.Name >= k {
				t.Fatalf("trial %d: k=%d entries exit on wire %d", trial, k, rr.Name)
			}
			if used[rr.Name] {
				t.Fatalf("trial %d: duplicate exit wire %d", trial, rr.Name)
			}
			used[rr.Name] = true
		}
	}
}

func TestRenamerStepComplexityIsDepth(t *testing.T) {
	const n = 256
	inst := NewRenamerN(n)
	res := sched.Run(sched.Config{N: n, Seed: 7, Fast: sched.FastFIFO, Body: inst.Body})
	depth := int64(inst.Depth())
	for _, r := range res {
		if r.Steps > depth {
			t.Fatalf("pid %d took %d steps, depth %d", r.PID, r.Steps, depth)
		}
	}
	// Batcher depth for width 256 is 36: quadratically above log2 n = 8,
	// which is the E8 comparison point.
	if depth != 36 {
		t.Fatalf("depth = %d, want 36", depth)
	}
}

func TestRenamerDistinctUnderCrashes(t *testing.T) {
	// Crash a third of the processes mid-network: survivors must still
	// hold pairwise distinct wires (contiguity may fail, distinctness not).
	const n = 64
	inst := NewRenamerN(n)
	plan := sched.PlanCrashes(n, 0.33, 5, prng.New(4))
	res := core.RunSim(inst, 11, sched.WithCrashes(sched.RoundRobin(), plan))
	seen := map[int]bool{}
	for _, r := range res {
		if r.Status != sched.Named {
			continue
		}
		if seen[r.Name] {
			t.Fatalf("exit wire %d held twice", r.Name)
		}
		seen[r.Name] = true
	}
	if got := sched.CountStatus(res, sched.Crashed); got != len(plan) {
		t.Fatalf("crashed %d, want %d", got, len(plan))
	}
}

func TestRenamerPanicsOnBadEntries(t *testing.T) {
	net := OddEvenMergeSort(8)
	for _, entries := range [][]int{{8}, {-1}, {1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("entries %v accepted", entries)
				}
			}()
			NewRenamer(net, entries)
		}()
	}
}

func TestRenamerAccessors(t *testing.T) {
	inst := NewRenamerN(100)
	if inst.N() != 100 {
		t.Fatalf("N = %d", inst.N())
	}
	if inst.M() != 128 { // next pow2
		t.Fatalf("M = %d, want 128", inst.M())
	}
	if inst.Clock() != nil {
		t.Fatal("unexpected clock")
	}
	if _, ok := inst.Probeables()["sortnet"]; !ok {
		t.Fatal("registers not probeable")
	}
	if inst.Label() == "" {
		t.Fatal("empty label")
	}
}
