package exclusive

import (
	"shmrename/internal/registry"
)

func init() {
	registry.Register(registry.Backend{
		Name: "exclusive-selection",
		// Releasable and Deterministic only: selection is serialized through
		// a register tournament (no batch fast path worth advertising beyond
		// the interface default, no word-scan geometry, no lease stamps —
		// crash recovery is out of scope for this primitive base; see the
		// package comment).
		Caps: registry.Caps{
			Releasable:    true,
			Deterministic: true,
			DenseProcs:    true, // tournament leaves are assigned by proc ID
		},
		New: func(cfg registry.Config) registry.Arena {
			return New(cfg.Capacity, Config{
				Procs:     cfg.Procs,
				MaxPasses: cfg.MaxPasses,
				Label:     cfg.Label,
			})
		},
	})
}
