// Package exclusive implements long-lived renaming as asynchronous
// exclusive selection from plain read/write registers — no hardware
// test-and-set, compare-and-swap, or fetch-and-add is ever performed on
// the shared state. It is the registry's demonstration that a backend
// built on a completely different primitive base drops into every
// experiment and conformance law unchanged.
//
// # Construction
//
// The setting is that of Chlebus and Kowalski, "Asynchronous Exclusive
// Selection" (arXiv:1512.09314): asynchronous processes must select
// pairwise-distinct items from a shared collection, communicating only
// through read/write registers. Their algorithms achieve strong progress
// bounds with intricate collision-resolution machinery; this package is
// the conservative tournament baseline in exactly the sense that
// internal/tas is the conservative baseline for software test-and-set —
// safety is deterministic and unconditional, the per-operation cost is a
// Θ(log P) register climb, and the measured experiments report the honest
// (larger) constant.
//
// Selection is serialized through one arena-wide tournament of
// Peterson-style two-process matches (flags + turn registers; want/turn
// writes, spin reads — every shared access is a plain register operation
// charged to the proc). A process enters at the leaf indexed by its ID,
// climbs by winning matches, and at the root owns the selection lock. The
// critical section is O(1): free names live on a register-array freelist
// stack, so a selection pops the top name and writes the ownership
// register, and a release pushes the name back. Entering a match spins at
// most a bounded budget before backing out (clearing its own flag — always
// safe in Peterson's protocol), so an Acquire pass fails cleanly under
// contention instead of blocking, exactly the bounded-pass contract the
// other backends implement with MaxPasses.
//
// # Model requirements and crash behavior
//
// Tournament safety needs one process per leaf at a time: concurrently
// active procs must have distinct IDs modulo the leaf count (Config.Procs,
// default capacity). Every caller in this repository satisfies it — the
// simulator and native storms use dense IDs 0..n-1, and the public arena
// pools proc contexts so live IDs stay far below capacity.
//
// Crashes never violate exclusivity: a crashed process can at worst leave
// a match flag raised or a name unreturned, shrinking the usable space,
// never granting a name twice. Crash *liveness* (recovering a dead
// holder's names) is the lease layer's job, which this backend does not
// implement — register it with Caps.Leasable false and the conformance
// suite holds it to every remaining law.
package exclusive

import (
	"fmt"
	"sync/atomic"

	"shmrename/internal/registry"
	"shmrename/internal/shm"
)

// Config parameterizes an exclusive-selection arena.
type Config struct {
	// Procs bounds the concurrently active distinct proc IDs: the
	// tournament has nextPow2(Procs) leaves and procs enter at ID modulo
	// that count, so two live procs whose IDs collide would break match
	// safety. Default: capacity.
	Procs int
	// MaxPasses bounds Acquire's lock-and-pop passes before reporting the
	// arena full; 0 means unlimited (simulated runs rely on the
	// scheduler's step budget instead).
	MaxPasses int
	// SpinBudget bounds the spin iterations per match before a contender
	// backs out and fails the pass. Default 128 — several uncontended
	// critical sections long.
	SpinBudget int
	// Label prefixes the operation-space labels. Default "exclusive".
	Label string
}

func (c *Config) fill(capacity int) {
	if c.Procs <= 0 {
		c.Procs = capacity
	}
	if c.SpinBudget <= 0 {
		c.SpinBudget = 128
	}
	if c.Label == "" {
		c.Label = "exclusive"
	}
}

// node is one Peterson-style two-process match of the tournament. All
// fields are plain registers: atomics only for well-defined memory
// ordering, never a read-modify-write.
type node struct {
	want [2]atomic.Int32
	turn atomic.Int32 // 1 + side of the last turn writer
}

// Arena is the exclusive-selection arena. It implements longlived.Arena
// (= registry.Arena); all methods are safe for concurrent use by distinct
// procs (subject to the package-level ID requirement).
type Arena struct {
	cfg    Config
	cap    int
	leaves int
	nodes  []node // heap layout: node k has children 2k+1, 2k+2
	// own[i] is name i's ownership register: 0 free, pid+1 held. Written
	// only inside the critical section (claims) and by the holder
	// (releases), read freely.
	own []atomic.Int32
	// free is the freelist stack of unclaimed names; top is its size. Both
	// are touched only inside the critical section, so plain registers
	// suffice for exclusion — atomics again only for ordering.
	free []atomic.Int32
	top  atomic.Int32
	held atomic.Int64
	// Interned operation spaces: lock for match registers, sel for the
	// freelist and ownership registers.
	lockSpace shm.SpaceID
	selSpace  shm.SpaceID
}

var _ registry.Arena = (*Arena)(nil)

// New builds an exclusive-selection arena guaranteeing capacity concurrent
// holders.
func New(capacity int, cfg Config) *Arena {
	if capacity < 1 {
		panic("exclusive: capacity must be >= 1")
	}
	cfg.fill(capacity)
	leaves := 1
	for leaves < cfg.Procs {
		leaves *= 2
	}
	a := &Arena{
		cfg:       cfg,
		cap:       capacity,
		leaves:    leaves,
		nodes:     make([]node, leaves-1),
		own:       make([]atomic.Int32, capacity),
		free:      make([]atomic.Int32, capacity),
		lockSpace: shm.InternSpace(cfg.Label + ":lock"),
		selSpace:  shm.InternSpace(cfg.Label + ":sel"),
	}
	// Stack initialized so the first pops select the lowest names: the
	// freelist preserves the adaptivity flavor (issued names track churn
	// history, NameBound is exactly capacity — the tightest possible).
	for i := 0; i < capacity; i++ {
		a.free[i].Store(int32(capacity - 1 - i))
	}
	a.top.Store(int32(capacity))
	return a
}

// step charges one register operation in the given space.
func step(p *shm.Proc, space shm.SpaceID, kind shm.OpKind, index int) {
	p.Step(shm.Op{Kind: kind, Space: space, Index: int32(index)})
}

// enter runs the match's entry protocol for side, spinning at most budget
// iterations. Backing out (clearing the own flag) is always safe: it can
// only unblock the opponent.
func (a *Arena) enter(p *shm.Proc, k int, side int32, budget int) bool {
	m := &a.nodes[k]
	other := 1 - side
	step(p, a.lockSpace, shm.OpTAS, k)
	m.want[side].Store(1)
	step(p, a.lockSpace, shm.OpTAS, k)
	m.turn.Store(1 + side)
	for i := 0; ; i++ {
		step(p, a.lockSpace, shm.OpRead, k)
		if m.want[other].Load() == 0 {
			return true
		}
		step(p, a.lockSpace, shm.OpRead, k)
		if m.turn.Load() == 1+other {
			return true
		}
		if i >= budget {
			step(p, a.lockSpace, shm.OpClear, k)
			m.want[side].Store(0)
			return false
		}
	}
}

// tryLock climbs the tournament from p's leaf. On a failed match it backs
// out of every level already won, in reverse, and reports false.
func (a *Arena) tryLock(p *shm.Proc) bool {
	if a.leaves == 1 {
		return true // at most one live proc by the ID requirement
	}
	k := a.leaves - 1 + p.ID()%a.leaves
	// won records the climbed path for the back-out; depth ≤ 32 levels
	// covers every representable leaf count.
	var won [32]int
	var sides [32]int32
	depth := 0
	for k > 0 {
		parent := (k - 1) / 2
		side := int32((k - 1) % 2)
		if !a.enter(p, parent, side, a.cfg.SpinBudget) {
			for d := depth - 1; d >= 0; d-- {
				step(p, a.lockSpace, shm.OpClear, won[d])
				a.nodes[won[d]].want[sides[d]].Store(0)
			}
			return false
		}
		won[depth], sides[depth] = parent, side
		depth++
		k = parent
	}
	return true
}

// lock climbs until it wins, for operations that must not fail (releases).
// Fair schedules guarantee termination: every holder's critical section is
// O(1) registers long.
func (a *Arena) lock(p *shm.Proc) {
	for !a.tryLock(p) {
	}
}

// unlock exits the tournament: clear this proc's flag on the path from the
// root back down to its leaf.
func (a *Arena) unlock(p *shm.Proc) {
	if a.leaves == 1 {
		return
	}
	// Rebuild the leaf-to-root path, then clear top-down.
	var ks [32]int
	var sides [32]int32
	depth := 0
	k := a.leaves - 1 + p.ID()%a.leaves
	for k > 0 {
		parent := (k - 1) / 2
		ks[depth] = parent
		sides[depth] = int32((k - 1) % 2)
		depth++
		k = parent
	}
	for d := depth - 1; d >= 0; d-- {
		step(p, a.lockSpace, shm.OpClear, ks[d])
		a.nodes[ks[d]].want[sides[d]].Store(0)
	}
}

// pop selects the top freelist name inside the critical section, or -1
// when the arena is full. Three register operations.
func (a *Arena) pop(p *shm.Proc) int {
	step(p, a.selSpace, shm.OpRead, a.cap) // read top (register index cap)
	t := a.top.Load()
	if t == 0 {
		return -1
	}
	step(p, a.selSpace, shm.OpRead, int(t-1))
	name := int(a.free[t-1].Load())
	step(p, a.selSpace, shm.OpTAS, a.cap)
	a.top.Store(t - 1)
	step(p, a.selSpace, shm.OpTAS, name)
	a.own[name].Store(int32(p.ID()) + 1)
	a.held.Add(1)
	return name
}

// Label implements longlived.Arena.
func (a *Arena) Label() string {
	return fmt.Sprintf("exclusive-selection(procs=%d)", a.leaves)
}

// Capacity implements longlived.Arena.
func (a *Arena) Capacity() int { return a.cap }

// NameBound implements longlived.Arena: exactly capacity — exclusive
// selection from a fixed collection is perfectly tight.
func (a *Arena) NameBound() int { return a.cap }

// Acquire implements longlived.Arena: win the selection lock, pop a free
// name. A pass fails when lock contention exhausts the spin budget or the
// freelist is empty; MaxPasses bounds the passes (0 = unlimited).
func (a *Arena) Acquire(p *shm.Proc) int {
	for pass := 0; a.cfg.MaxPasses == 0 || pass < a.cfg.MaxPasses; pass++ {
		if !a.tryLock(p) {
			continue
		}
		name := a.pop(p)
		a.unlock(p)
		if name >= 0 {
			return name
		}
	}
	return -1
}

// AcquireN implements longlived.Arena: each pass pops as much of the
// remainder as the freelist holds under one lock acquisition.
func (a *Arena) AcquireN(p *shm.Proc, k int, out []int) []int {
	for pass := 0; k > 0 && (a.cfg.MaxPasses == 0 || pass < a.cfg.MaxPasses); pass++ {
		if !a.tryLock(p) {
			continue
		}
		for k > 0 {
			name := a.pop(p)
			if name < 0 {
				break
			}
			out = append(out, name)
			k--
		}
		a.unlock(p)
	}
	return out
}

// Release implements longlived.Arena: clear the ownership register, then
// push the name back under the lock. Releases must not fail, so the lock
// climb retries past spin-budget back-outs.
func (a *Arena) Release(p *shm.Proc, name int) {
	if name < 0 || name >= a.cap {
		panic(fmt.Sprintf("exclusive: release of name %d outside [0, %d)", name, a.cap))
	}
	if a.own[name].Load() == 0 {
		panic(fmt.Sprintf("exclusive: release of unheld name %d", name))
	}
	a.lock(p)
	step(p, a.selSpace, shm.OpClear, name)
	a.own[name].Store(0)
	step(p, a.selSpace, shm.OpRead, a.cap)
	t := a.top.Load()
	step(p, a.selSpace, shm.OpTAS, int(t))
	a.free[t].Store(int32(name))
	step(p, a.selSpace, shm.OpTAS, a.cap)
	a.top.Store(t + 1)
	a.held.Add(-1)
	a.unlock(p)
}

// ReleaseN implements longlived.Arena: the whole batch returns under one
// lock acquisition.
func (a *Arena) ReleaseN(p *shm.Proc, names []int) {
	if len(names) == 0 {
		return
	}
	for _, name := range names {
		if name < 0 || name >= a.cap {
			panic(fmt.Sprintf("exclusive: release of name %d outside [0, %d)", name, a.cap))
		}
		if a.own[name].Load() == 0 {
			panic(fmt.Sprintf("exclusive: release of unheld name %d", name))
		}
	}
	a.lock(p)
	for _, name := range names {
		step(p, a.selSpace, shm.OpClear, name)
		a.own[name].Store(0)
		step(p, a.selSpace, shm.OpRead, a.cap)
		t := a.top.Load()
		step(p, a.selSpace, shm.OpTAS, int(t))
		a.free[t].Store(int32(name))
		step(p, a.selSpace, shm.OpTAS, a.cap)
		a.top.Store(t + 1)
		a.held.Add(-1)
	}
	a.unlock(p)
}

// Touch implements longlived.Arena: one read of the name's ownership
// register.
func (a *Arena) Touch(p *shm.Proc, name int) {
	step(p, a.selSpace, shm.OpRead, name)
	_ = a.own[name].Load()
}

// IsHeld implements longlived.Arena.
func (a *Arena) IsHeld(name int) bool {
	return name >= 0 && name < a.cap && a.own[name].Load() != 0
}

// Held implements longlived.Arena.
func (a *Arena) Held() int { return int(a.held.Load()) }

// ownProbe exposes the ownership registers to adaptive adversaries.
type ownProbe struct{ a *Arena }

// Probe implements shm.Probeable.
func (o ownProbe) Probe(i int) bool { return o.a.own[i].Load() != 0 }

// Probeables implements longlived.Arena.
func (a *Arena) Probeables() map[string]shm.Probeable {
	return map[string]shm.Probeable{a.cfg.Label + ":sel": ownProbe{a}}
}

// Clock implements longlived.Arena: nothing is externally clocked.
func (a *Arena) Clock() func() { return nil }
