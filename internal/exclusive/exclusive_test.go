package exclusive

import (
	"sync"
	"testing"

	"shmrename/internal/longlived"
	"shmrename/internal/prng"
	"shmrename/internal/sched"
	"shmrename/internal/shm"
)

func nativeProc(id int) *shm.Proc {
	return shm.NewProc(id, prng.NewStream(99, id), nil, 1<<22)
}

// TestFillDrainRefill exercises the single-proc contract: capacity
// distinct in-bound names, exact Held accounting, full drain, reuse.
func TestFillDrainRefill(t *testing.T) {
	const capacity = 100
	a := New(capacity, Config{MaxPasses: 4, Label: "t-excl"})
	p := nativeProc(0)
	if a.NameBound() != capacity {
		t.Fatalf("name bound %d, want %d", a.NameBound(), capacity)
	}
	seen := make(map[int]bool)
	for i := 0; i < capacity; i++ {
		n := a.Acquire(p)
		if n < 0 || n >= capacity {
			t.Fatalf("acquire %d: name %d outside [0,%d)", i, n, capacity)
		}
		if seen[n] {
			t.Fatalf("acquire %d: name %d issued twice", i, n)
		}
		seen[n] = true
	}
	if n := a.Acquire(p); n != -1 {
		t.Fatalf("acquire past capacity returned %d, want -1", n)
	}
	if h := a.Held(); h != capacity {
		t.Fatalf("held %d, want %d", h, capacity)
	}
	for n := range seen {
		if !a.IsHeld(n) {
			t.Fatalf("name %d not held", n)
		}
		a.Touch(p, n)
		a.Release(p, n)
		if a.IsHeld(n) {
			t.Fatalf("name %d held after release", n)
		}
	}
	if h := a.Held(); h != 0 {
		t.Fatalf("held %d after drain, want 0", h)
	}
	if n := a.Acquire(p); n < 0 {
		t.Fatal("reacquire after drain failed")
	}
}

// TestLowestNamesFirst checks the adaptivity flavor of the freelist
// ordering: a fresh arena selects 0,1,2,... in order.
func TestLowestNamesFirst(t *testing.T) {
	a := New(16, Config{MaxPasses: 1, Label: "t-excl-low"})
	p := nativeProc(0)
	for want := 0; want < 16; want++ {
		if got := a.Acquire(p); got != want {
			t.Fatalf("acquire %d: got name %d", want, got)
		}
	}
}

// TestBatchConservation drives AcquireN/ReleaseN round trips and checks
// exact conservation of the name pool.
func TestBatchConservation(t *testing.T) {
	const capacity = 64
	a := New(capacity, Config{MaxPasses: 4, Label: "t-excl-batch"})
	p := nativeProc(0)
	got := a.AcquireN(p, 40, nil)
	if len(got) != 40 {
		t.Fatalf("batch acquired %d, want 40", len(got))
	}
	// Only 24 remain; an oversized batch stops at the freelist bottom.
	rest := a.AcquireN(p, 40, nil)
	if len(rest) != 24 {
		t.Fatalf("second batch acquired %d, want 24", len(rest))
	}
	seen := make(map[int]bool)
	for _, n := range append(append([]int{}, got...), rest...) {
		if seen[n] {
			t.Fatalf("name %d issued twice across batches", n)
		}
		seen[n] = true
	}
	a.ReleaseN(p, got)
	if h := a.Held(); h != 24 {
		t.Fatalf("held %d after batch release, want 24", h)
	}
	a.ReleaseN(p, rest)
	if h := a.Held(); h != 0 {
		t.Fatalf("held %d after full release, want 0", h)
	}
}

func TestReleaseUnheldPanics(t *testing.T) {
	a := New(8, Config{Label: "t-excl-panic"})
	defer func() {
		if recover() == nil {
			t.Error("release of unheld name did not panic")
		}
	}()
	a.Release(nativeProc(0), 3)
}

// TestSimulatedChurnDeterministic runs the simulated adversary churn twice
// at the same seed and requires identical monitor fingerprints — the
// property behind the backend's Deterministic capability flag.
func TestSimulatedChurnDeterministic(t *testing.T) {
	type fingerprint struct {
		acquires, maxActive, maxName, steps int64
	}
	run := func() fingerprint {
		a := New(64, Config{Label: "t-excl-sim"})
		mon := longlived.NewMonitor(a.NameBound())
		res := sched.Run(sched.Config{
			N:    64,
			Seed: 11,
			Fast: sched.FastRandom,
			Body: longlived.ChurnBody(a, mon, longlived.ChurnConfig{Cycles: 3, HoldMin: 0, HoldMax: 6}),
		})
		if err := mon.Err(); err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			if r.Status == sched.Limited {
				t.Fatalf("proc %d exceeded its step budget", r.PID)
			}
		}
		if h := a.Held(); h != 0 {
			t.Fatalf("%d names held after drain", h)
		}
		return fingerprint{mon.Acquires(), mon.MaxActive(), mon.MaxName(), mon.AcquireSteps()}
	}
	first, second := run(), run()
	if first != second {
		t.Fatalf("fingerprints diverge: %+v vs %+v", first, second)
	}
	if first.maxName >= 64 {
		t.Fatalf("max name %d breaches the capacity-tight bound", first.maxName)
	}
}

// TestNativeStormUnique hammers the arena from real goroutines (run under
// -race in CI) and checks that the monitor never observes a duplicate
// grant — the mutual-exclusion guarantee of the register tournament.
func TestNativeStormUnique(t *testing.T) {
	const (
		capacity   = 96
		goroutines = 24
		cycles     = 200
	)
	a := New(capacity, Config{Label: "t-excl-storm"})
	mon := longlived.NewMonitor(a.NameBound())
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := nativeProc(id)
			for c := 0; c < cycles; c++ {
				n := a.Acquire(p)
				if n < 0 {
					continue // transient back-out under contention
				}
				mon.NoteAcquire(id, n, 1)
				a.Touch(p, n)
				mon.NoteRelease(id, n)
				a.Release(p, n)
			}
		}(g)
	}
	wg.Wait()
	if err := mon.Err(); err != nil {
		t.Fatal(err)
	}
	if h := a.Held(); h != 0 {
		t.Fatalf("%d names held after storm", h)
	}
	if mon.Acquires() == 0 {
		t.Fatal("storm made no progress")
	}
}
