package sched

import (
	"fmt"

	"shmrename/internal/prng"
	"shmrename/internal/shm"
)

// roundRobin grants processes in cyclic PID order. It is the "fair"
// reference schedule: every process makes progress at the same rate.
type roundRobin struct {
	last int
}

// RoundRobin returns a fair cyclic scheduler. It is the default policy.
func RoundRobin() Policy { return &roundRobin{last: -1} }

func (p *roundRobin) Name() string { return "round-robin" }

func (p *roundRobin) Next(w World, pending []Request, r *prng.Rand) Decision {
	// Grant the smallest PID strictly greater than the last granted one,
	// wrapping around. pending is sorted by PID.
	for i, req := range pending {
		if req.PID > p.last {
			p.last = req.PID
			return Decision{Index: i}
		}
	}
	p.last = pending[0].PID
	return Decision{Index: 0}
}

// random grants a uniformly random pending process each time.
type random struct{}

// Random returns the uniformly random scheduler: an oblivious adversary
// that models an unbiased asynchronous environment.
func Random() Policy { return random{} }

func (random) Name() string { return "random" }

func (random) Next(w World, pending []Request, r *prng.Rand) Decision {
	return Decision{Index: r.Intn(len(pending))}
}

// collider is an adaptive adversary that maximizes wasted work: it
// preferentially grants TAS operations whose target is already set (the
// step is then guaranteed to fail), and otherwise grants operations from
// the most contended target so that all but one of the contenders lose.
// Under churn workloads it additionally starves releases: a pending
// shm.OpClear is granted only when nothing else is pending, which keeps
// the name space maximally occupied while acquirers probe it.
type collider struct{}

// Collider returns the contention-seeking adaptive adversary. It uses its
// full visibility of pending targets and shared state (§II.A: the
// adversary sees all process state including coin-flip outcomes).
func Collider() Policy { return collider{} }

func (collider) Name() string { return "collider" }

func (collider) Next(w World, pending []Request, r *prng.Rand) Decision {
	// 1. A TAS that must fail is the most damaging step to grant.
	for i, req := range pending {
		if req.Op.Kind == shm.OpTAS && w.Taken(req.Op) {
			return Decision{Index: i}
		}
	}
	// 2. Otherwise schedule the largest group of colliding TAS targets,
	// lowest PID first; the first grant makes the rest doomed.
	type key struct {
		space shm.SpaceID
		index int32
	}
	counts := make(map[key]int)
	for _, req := range pending {
		if req.Op.Kind == shm.OpTAS {
			counts[key{req.Op.Space, req.Op.Index}]++
		}
	}
	bestIdx, bestCount := -1, 0
	for i, req := range pending {
		if req.Op.Kind != shm.OpTAS {
			continue
		}
		if c := counts[key{req.Op.Space, req.Op.Index}]; c > bestCount {
			bestCount, bestIdx = c, i
		}
	}
	if bestIdx >= 0 {
		return Decision{Index: bestIdx}
	}
	// 3. No TAS pending: grant reads before releases, so pending OpClear
	// operations (long-lived renaming) stay starved while any other
	// process can still be made to work against the full space.
	for i, req := range pending {
		if req.Op.Kind != shm.OpClear {
			return Decision{Index: i}
		}
	}
	return Decision{Index: 0}
}

// starver delays a set of victim processes as long as possible: victims are
// granted steps only when no non-victim is pending. For renaming this is
// the adversary that forces victims to search a nearly full name space.
type starver struct {
	victims map[int]bool
}

// Starve returns an adversary that starves the given victim PIDs until all
// other processes have finished or are themselves parked behind victims.
func Starve(victims ...int) Policy {
	m := make(map[int]bool, len(victims))
	for _, v := range victims {
		m[v] = true
	}
	return &starver{victims: m}
}

func (s *starver) Name() string { return fmt.Sprintf("starve(%d victims)", len(s.victims)) }

func (s *starver) Next(w World, pending []Request, r *prng.Rand) Decision {
	for i, req := range pending {
		if !s.victims[req.PID] {
			return Decision{Index: i}
		}
	}
	// Only victims remain; grant the lowest PID.
	return Decision{Index: 0}
}

// crasher wraps an inner policy and crashes selected processes the first
// time they are chosen at or beyond their scheduled step count. Crash
// schedules are fixed up-front from the seed, making runs reproducible.
type crasher struct {
	inner   Policy
	crashAt map[int]int64 // pid -> crash at/after this step count
	done    map[int]bool
}

// WithCrashes wraps policy so that each PID in crashAt is crashed the first
// time the inner policy selects it once it has taken at least the given
// number of steps. A crashed process performs no further steps, matching
// the crash-failure model of §II.A.
func WithCrashes(policy Policy, crashAt map[int]int64) Policy {
	m := make(map[int]int64, len(crashAt))
	for pid, s := range crashAt {
		m[pid] = s
	}
	return &crasher{inner: policy, crashAt: m, done: make(map[int]bool)}
}

// PlanCrashes builds a crash schedule for WithCrashes: it selects
// floor(frac*n) distinct victim PIDs and, for each, a crash step uniform in
// [0, maxStep), all deterministically from r.
func PlanCrashes(n int, frac float64, maxStep int64, r *prng.Rand) map[int]int64 {
	k := int(frac * float64(n))
	if k > n {
		k = n
	}
	plan := make(map[int]int64, k)
	perm := r.Perm(n)
	for i := 0; i < k; i++ {
		step := int64(0)
		if maxStep > 0 {
			step = int64(r.Intn(int(maxStep)))
		}
		plan[perm[i]] = step
	}
	return plan
}

func (c *crasher) Name() string {
	return fmt.Sprintf("%s+crash(%d)", c.inner.Name(), len(c.crashAt))
}

func (c *crasher) Next(w World, pending []Request, r *prng.Rand) Decision {
	dec := c.inner.Next(w, pending, r)
	if dec.Crash {
		return dec
	}
	req := pending[dec.Index]
	if at, scheduled := c.crashAt[req.PID]; scheduled && !c.done[req.PID] && req.Steps >= at {
		c.done[req.PID] = true
		dec.Crash = true
	}
	return dec
}
