// Package sched simulates the asynchronous shared-memory model of §II.A of
// the paper and provides the adaptive adversary that controls it.
//
// In simulated mode every process runs as a pull-style coroutine
// (iter.Pull); each of its shared-memory operations yields to the
// scheduler. The scheduler waits until every live process is parked on its
// next operation, hands the full pending set (operation kinds and targets,
// which embody the process coin flips) to a Policy — the adversary — and
// grants exactly one operation by resuming that process's coroutine. The
// adversary may instead crash the process, after which it takes no further
// steps. Executions are therefore deterministic given (seed, policy), and
// the adversary enjoys the full adaptivity the model grants: it sees the
// state of all processes before every scheduling decision.
//
// Cost model (see PERF.md for measurements): a granted step is two
// coroutine switches — resume into the process, yield back at its next
// operation — with no channel operations, no goroutine scheduler
// involvement, and no allocation. The policy path keeps a dense PID-indexed
// slot array plus an incrementally maintained pending view: re-parking the
// granted process is an O(1) in-place update, and the only O(live) work is
// the single removal when a process finishes, which happens once per
// process per run. Earlier revisions parked processes on per-step channel
// round-trips; the coroutine runner removed that constant entirely.
//
// The package also provides a native runner that executes the same process
// bodies on real goroutines with no gating, for wall-clock benchmarks.
package sched

import (
	"fmt"
	"iter"
	"sort"
	"sync"

	"shmrename/internal/prng"
	"shmrename/internal/shm"
)

// Body is a process: it receives its context and returns the name it
// acquired, or a negative value if it terminated without one.
type Body func(p *shm.Proc) int

// Status describes how a process ended.
type Status uint8

// Process outcomes.
const (
	// Named: the process terminated holding a name.
	Named Status = iota
	// Unnamed: the process terminated without a name (algorithm gave up).
	Unnamed
	// Crashed: the adversary crashed the process.
	Crashed
	// Limited: the process exceeded its step budget (indicates a bug or a
	// deliberately tiny budget in failure-injection tests).
	Limited
)

// String returns the lower-case status name.
func (s Status) String() string {
	switch s {
	case Named:
		return "named"
	case Unnamed:
		return "unnamed"
	case Crashed:
		return "crashed"
	case Limited:
		return "limited"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Result is the outcome of one process in one execution.
type Result struct {
	PID    int
	Name   int // acquired name, or -1
	Steps  int64
	Status Status
}

// Request is one pending shared-memory operation as the adversary sees it.
type Request struct {
	PID   int
	Op    shm.Op
	Steps int64 // steps the process has already taken
}

// World gives a policy read access to the current shared state, so that an
// adaptive adversary can, for example, prefer granting operations that are
// doomed to fail. Probing costs the processes nothing.
type World interface {
	// Taken reports whether the TAS object targeted by op is already set.
	// It returns false when the target's space is not registered.
	Taken(op shm.Op) bool
}

// Decision is a policy's choice: grant pending[Index], or crash that
// process instead of granting it the step.
type Decision struct {
	Index int
	Crash bool
}

// Policy is the adaptive adversary. Next is called with the pending
// operations of all parked processes, sorted by PID, and must return a
// decision about one of them. The policy receives its own deterministic
// randomness derived from the run seed.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Next chooses the next scheduling decision. pending is non-empty.
	Next(w World, pending []Request, r *prng.Rand) Decision
}

// FastMode selects a cheap built-in schedule instead of a Policy for
// large-n measurements. The adaptive Policy path materializes the full
// pending set before every grant; the fast modes keep O(1) bookkeeping per
// grant and remain deterministic.
type FastMode uint8

// Fast scheduling modes.
const (
	// FastOff uses the adaptive Policy path (the default).
	FastOff FastMode = iota
	// FastFIFO grants operations in arrival order (processes initially
	// ordered by PID) — a fair asynchronous schedule equivalent in
	// spirit to round-robin.
	FastFIFO
	// FastRandom grants a uniformly random pending operation each time,
	// driven by the run seed — the oblivious random adversary.
	FastRandom
)

// Config parameterizes a simulated run.
type Config struct {
	// N is the number of processes, with PIDs 0..N-1.
	N int
	// Seed drives every coin flip of the run: each process gets stream
	// prng.NewStream(Seed, pid), the policy gets an independent stream.
	Seed uint64
	// Policy is the adversary. Defaults to RoundRobin if nil.
	Policy Policy
	// Fast selects a built-in O(1) schedule when Policy is nil; ignored
	// otherwise.
	Fast FastMode
	// Body is the process program.
	Body Body
	// AfterStep, if non-nil, runs after every granted operation completes.
	// It models free hardware progress, e.g. the counting-device clock of
	// §II.C, and costs the processes no steps.
	AfterStep func()
	// StepLimit bounds the steps of each process; 0 means the default
	// safety budget (DefaultStepLimit).
	StepLimit int64
	// Spaces registers Probeable structures by label so adaptive policies
	// can inspect targets. The labels are resolved to interned SpaceIDs
	// once at run start; per-step lookups are dense array indexing.
	// Optional.
	Spaces map[string]shm.Probeable
}

// DefaultStepLimit is the per-process safety budget used when Config leaves
// StepLimit zero. It is far above any bound the algorithms should reach; a
// process hitting it indicates a non-terminating execution.
const DefaultStepLimit = 1 << 22

// procRunner drives one simulated process as a pull-style coroutine.
// Exactly one of the scheduler and the process executes at any time;
// resuming the runner is a direct stack switch, not a goroutine wakeup.
// It doubles as the process's shm.Gate. The yield token is zero-sized: the
// parked operation is published through the op/steps fields, which the
// strict scheduler/process alternation keeps race-free.
type procRunner struct {
	next  func() (struct{}, bool)
	yield func(struct{}) bool
	op    shm.Op // pending operation, valid while parked
	steps int64  // steps taken when parked
	// allow is the scheduler's answer to the pending park: written before
	// the resume, read by Await when its yield returns.
	allow bool
	// credit is a batch of pre-granted steps: while positive, Await
	// consumes a credit and proceeds without yielding. The fast schedules
	// use it when exactly one live process remains — every remaining grant
	// must go to it anyway, so the tail runs without coroutine switches.
	credit int64
	res    Result
}

// procState bundles everything one simulated process needs. One slice per
// run holds all of it, and the slices are recycled through a pool: at large
// n the per-run garbage would otherwise dominate GC work.
type procState struct {
	runner procRunner
	proc   shm.Proc
	rng    prng.Rand
}

var statePool sync.Pool // of *[]procState

// getStates returns a pooled state slice of length n (contents dirty; every
// field is re-initialized by the caller via initRunner/Init/SeedStream).
func getStates(n int) []procState {
	if v := statePool.Get(); v != nil {
		if s := *v.(*[]procState); cap(s) >= n {
			return s[:n]
		}
	}
	return make([]procState, n)
}

// putStates recycles a state slice once its run has fully finished (every
// coroutine exhausted, results copied out). The exhausted coroutine
// closures are dropped first: they captured the run's Body (usually a
// whole algorithm instance), which must not stay reachable from the pool.
func putStates(s []procState) {
	for i := range s {
		s[i].runner.next = nil
		s[i].runner.yield = nil
		s[i].proc = shm.Proc{}
	}
	statePool.Put(&s)
}

// Await implements shm.Gate by yielding to the scheduler.
func (r *procRunner) Await(p *shm.Proc, op shm.Op) bool {
	if r.credit > 0 {
		r.credit--
		return true
	}
	r.op, r.steps = op, p.Steps()
	if !r.yield(struct{}{}) {
		// Defensive: iter.Pull's yield reports false only after a stop(),
		// which the runner never issues for a live coroutine. If that ever
		// changes, unwinding as a crash keeps the deferred recovery able
		// to record a result.
		panic(shm.Crash{PID: p.ID()})
	}
	return r.allow
}

// initRunner builds the coroutine for one process, resetting every runner
// field (the state may be recycled from a previous run). The body does not
// start executing until the first next() call.
func initRunner(r *procRunner, pid int, p *shm.Proc, body Body) {
	r.yield = nil
	r.op = shm.Op{}
	r.steps = 0
	r.allow = false
	r.credit = 0
	r.res = Result{}
	r.next, _ = iter.Pull(func(yield func(struct{}) bool) {
		r.yield = yield
		res := Result{PID: pid, Name: -1}
		defer func() {
			if rec := recover(); rec != nil {
				switch rec.(type) {
				case shm.Crash:
					res.Status = Crashed
				case shm.StepLimit:
					res.Status = Limited
				default:
					panic(rec) // any other panic is a bug: propagate
				}
				res.Name = -1
			}
			res.Steps = p.Steps()
			r.res = res
		}()
		name := body(p)
		if name >= 0 {
			res.Name = name
			res.Status = Named
		} else {
			res.Status = Unnamed
		}
	})
}

// resume grants the process its pending step (allow=false crashes it
// instead) and runs it to its next transition: parked again on op/steps
// (ok) or finished (!ok, result in r.res).
func (r *procRunner) resume(allow bool) bool {
	r.allow = allow
	_, ok := r.next()
	return ok
}

// worldView resolves Taken probes by dense SpaceID indexing: no string
// hashing on the adversary's query path.
type worldView struct {
	spaces []shm.Probeable // indexed by shm.SpaceID
}

func newWorldView(m map[string]shm.Probeable) worldView {
	w := worldView{spaces: make([]shm.Probeable, shm.NumSpaces())}
	for label, p := range m {
		id := shm.InternSpace(label)
		if int(id) >= len(w.spaces) {
			grown := make([]shm.Probeable, int(id)+1)
			copy(grown, w.spaces)
			w.spaces = grown
		}
		w.spaces[id] = p
	}
	return w
}

func (w worldView) Taken(op shm.Op) bool {
	if op.Space < 0 || int(op.Space) >= len(w.spaces) {
		return false
	}
	s := w.spaces[op.Space]
	if s == nil {
		return false
	}
	return s.Probe(int(op.Index))
}

// Run executes a simulated run and returns one Result per process, sorted
// by PID. It panics on configuration errors (N <= 0, nil Body).
func Run(cfg Config) []Result {
	if cfg.N <= 0 {
		panic("sched: Run requires N > 0")
	}
	if cfg.Body == nil {
		panic("sched: Run requires a Body")
	}
	limit := cfg.StepLimit
	if limit == 0 {
		limit = DefaultStepLimit
	}

	states := getStates(cfg.N)
	for pid := range states {
		st := &states[pid]
		st.rng.SeedStream(cfg.Seed, pid)
		st.proc.Init(pid, &st.rng, &st.runner, limit)
		initRunner(&st.runner, pid, &st.proc, cfg.Body)
	}

	if cfg.Policy == nil && cfg.Fast != FastOff {
		res := runFast(cfg, states)
		putStates(states)
		return res
	}
	policy := cfg.Policy
	if policy == nil {
		policy = RoundRobin()
	}

	policyRand := prng.NewStream(cfg.Seed, -7)
	world := newWorldView(cfg.Spaces)

	// view is the policy-facing pending set, always sorted by PID (the
	// initial activation below runs in PID order and updates preserve
	// order); pos[pid] is pid's index in view or -1. Re-parking the
	// granted process is an O(1) in-place update; the only O(live)
	// operation is the removal when a process finishes, once per process
	// per run — there is no per-step O(n) copy.
	var (
		view    = make([]Request, 0, cfg.N)
		pos     = make([]int32, cfg.N)
		results = make([]Result, 0, cfg.N)
	)
	for pid := range states {
		// First activation: run the process to its first operation. Its
		// target depends only on private state (every shared access parks
		// first), so activating in PID order is equivalent to the
		// settle-then-sort of a concurrent start.
		r := &states[pid].runner
		if _, parked := r.next(); parked {
			pos[pid] = int32(len(view))
			view = append(view, Request{PID: pid, Op: r.op, Steps: r.steps})
		} else {
			pos[pid] = -1
			results = append(results, r.res)
		}
	}

	remove := func(pid int) {
		i := int(pos[pid])
		copy(view[i:], view[i+1:])
		view = view[:len(view)-1]
		pos[pid] = -1
		for j := i; j < len(view); j++ {
			pos[view[j].PID] = int32(j)
		}
	}

	for len(results) < cfg.N {
		dec := policy.Next(world, view, policyRand)
		if dec.Index < 0 || dec.Index >= len(view) {
			panic(fmt.Sprintf("sched: policy %q returned index %d out of range [0,%d)",
				policy.Name(), dec.Index, len(view)))
		}
		pid := view[dec.Index].PID
		r := &states[pid].runner
		if r.resume(!dec.Crash) {
			view[pos[pid]] = Request{PID: pid, Op: r.op, Steps: r.steps}
		} else {
			results = append(results, r.res)
			remove(pid)
		}
		if cfg.AfterStep != nil && !dec.Crash {
			// The granted operation completed before the process parked
			// again or finished, so the hardware hook is ordered after it.
			cfg.AfterStep()
		}
	}

	sort.Slice(results, func(i, j int) bool { return results[i].PID < results[j].PID })
	putStates(states)
	return results
}

// runFast is the O(1)-per-grant scheduling loop used by FastFIFO and
// FastRandom. The queue holds bare PIDs — the fast schedules are oblivious
// to operation targets — and the FIFO path is a direct handoff: grant,
// stack-switch into the process, read its transition, re-enqueue.
func runFast(cfg Config, states []procState) []Result {
	var (
		queue   = make([]int32, 0, cfg.N)
		head    = 0
		grants  = 0
		results = make([]Result, 0, cfg.N)
		rng     = prng.NewStream(cfg.Seed, -7)
	)

	if cfg.Fast == FastFIFO {
		// Lazy start: the FIFO schedule's first round is PIDs 0..N-1
		// regardless of operation targets, so processes are not activated
		// up front. A process's first grant instead carries one step of
		// credit, merging its activation with its first granted operation
		// in a single resume — two coroutine switches saved per process.
		// The grant order of shared-memory operations is identical to an
		// eager settle-then-grant schedule.
		for pid := range states {
			queue = append(queue, int32(pid))
		}
	} else {
		for pid := range states {
			if _, parked := states[pid].runner.next(); parked {
				queue = append(queue, int32(pid))
			} else {
				results = append(results, states[pid].runner.res)
			}
		}
	}

	for len(results) < cfg.N {
		var pid int32
		switch cfg.Fast {
		case FastFIFO:
			pid = queue[head]
			head++
			queue = compactFIFO(queue, &head)
		case FastRandom:
			idx := head + rng.Intn(len(queue)-head)
			pid = queue[idx]
			queue[idx] = queue[len(queue)-1]
			queue = queue[:len(queue)-1]
		default:
			panic("sched: unknown fast mode")
		}
		r := &states[pid].runner
		if cfg.AfterStep == nil && head == len(queue) {
			// Sole live process: the rest of the schedule is all its, so
			// run it to completion in one resume (only when no per-step
			// hook must fire).
			r.credit = int64(^uint64(0) >> 1)
		} else if cfg.Fast == FastFIFO && grants < cfg.N {
			r.credit = 1 // lazy start: activation + first operation
		}
		grants++
		if r.resume(true) {
			queue = append(queue, pid)
		} else {
			results = append(results, r.res)
		}
		if cfg.AfterStep != nil {
			cfg.AfterStep()
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i].PID < results[j].PID })
	return results
}

// compactFIFO reclaims the consumed prefix of the FIFO queue once it
// dominates the backing array. When the live tail has shrunk well below the
// high-water mark, it reallocates instead of shifting in place, so the
// peak-sized backing array does not stay pinned for the rest of the run.
func compactFIFO(queue []int32, head *int) []int32 {
	h := *head
	if h < 1024 || h*2 < len(queue) {
		return queue
	}
	live := len(queue) - h
	if cap(queue) >= 4096 && cap(queue) >= 4*live {
		fresh := make([]int32, live, 2*live+1)
		copy(fresh, queue[h:])
		queue = fresh
	} else {
		copy(queue, queue[h:])
		queue = queue[:live]
	}
	*head = 0
	return queue
}

// RunNative executes the same body on real goroutines with no gating and
// returns per-process results sorted by PID. It is not deterministic (real
// hardware races decide interleavings); it exists for wall-clock
// benchmarking and end-to-end sanity on multicore.
func RunNative(n int, seed uint64, body Body) []Result {
	if n <= 0 {
		panic("sched: RunNative requires n > 0")
	}
	results := make([]Result, n)
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			p := shm.NewProc(pid, prng.NewStream(seed, pid), nil, DefaultStepLimit)
			res := Result{PID: pid, Name: -1}
			defer func() {
				if r := recover(); r != nil {
					switch r.(type) {
					case shm.Crash:
						res.Status = Crashed
					case shm.StepLimit:
						res.Status = Limited
					default:
						panic(r)
					}
				}
				res.Steps = p.Steps()
				results[pid] = res
			}()
			name := body(p)
			if name >= 0 {
				res.Name = name
				res.Status = Named
			} else {
				res.Status = Unnamed
			}
		}(pid)
	}
	wg.Wait()
	return results
}

// VerifyUnique checks that the named processes in results hold pairwise
// distinct names within [0, m). It returns an error describing the first
// violation, or nil. Post-run verification used by tests and the harness.
func VerifyUnique(results []Result, m int) error {
	owner := make([]int, m)
	for i := range owner {
		owner[i] = -1
	}
	for _, r := range results {
		if r.Status != Named {
			continue
		}
		if r.Name < 0 || r.Name >= m {
			return fmt.Errorf("process %d holds out-of-range name %d (space size %d)", r.PID, r.Name, m)
		}
		if prev := owner[r.Name]; prev >= 0 {
			return fmt.Errorf("name %d held by both process %d and process %d", r.Name, prev, r.PID)
		}
		owner[r.Name] = r.PID
	}
	return nil
}

// MaxSteps returns the step complexity of the execution: the maximum number
// of steps over all processes (crashed processes included; their partial
// steps count toward the maximum they reached).
func MaxSteps(results []Result) int64 {
	var m int64
	for _, r := range results {
		if r.Steps > m {
			m = r.Steps
		}
	}
	return m
}

// CountStatus returns how many results carry the given status.
func CountStatus(results []Result, s Status) int {
	c := 0
	for _, r := range results {
		if r.Status == s {
			c++
		}
	}
	return c
}
