// Package sched simulates the asynchronous shared-memory model of §II.A of
// the paper and provides the adaptive adversary that controls it.
//
// In simulated mode every process runs as a goroutine, but each of its
// shared-memory operations first blocks on a scheduler gate. The scheduler
// waits until every live process is parked on its next operation, hands the
// full pending set (operation kinds and targets, which embody the process
// coin flips) to a Policy — the adversary — and grants exactly one
// operation. The adversary may instead crash the process, after which it
// takes no further steps. Executions are therefore deterministic given
// (seed, policy), and the adversary enjoys the full adaptivity the model
// grants: it sees the state of all processes before every scheduling
// decision.
//
// The package also provides a native runner that executes the same process
// bodies on real goroutines with no gating, for wall-clock benchmarks.
package sched

import (
	"fmt"
	"sort"
	"sync"

	"shmrename/internal/prng"
	"shmrename/internal/shm"
)

// Body is a process: it receives its context and returns the name it
// acquired, or a negative value if it terminated without one.
type Body func(p *shm.Proc) int

// Status describes how a process ended.
type Status uint8

// Process outcomes.
const (
	// Named: the process terminated holding a name.
	Named Status = iota
	// Unnamed: the process terminated without a name (algorithm gave up).
	Unnamed
	// Crashed: the adversary crashed the process.
	Crashed
	// Limited: the process exceeded its step budget (indicates a bug or a
	// deliberately tiny budget in failure-injection tests).
	Limited
)

// String returns the lower-case status name.
func (s Status) String() string {
	switch s {
	case Named:
		return "named"
	case Unnamed:
		return "unnamed"
	case Crashed:
		return "crashed"
	case Limited:
		return "limited"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Result is the outcome of one process in one execution.
type Result struct {
	PID    int
	Name   int // acquired name, or -1
	Steps  int64
	Status Status
}

// Request is one pending shared-memory operation as the adversary sees it.
type Request struct {
	PID   int
	Op    shm.Op
	Steps int64 // steps the process has already taken
}

// World gives a policy read access to the current shared state, so that an
// adaptive adversary can, for example, prefer granting operations that are
// doomed to fail. Probing costs the processes nothing.
type World interface {
	// Taken reports whether the TAS object targeted by op is already set.
	// It returns false when the target's space is not registered.
	Taken(op shm.Op) bool
}

// Decision is a policy's choice: grant pending[Index], or crash that
// process instead of granting it the step.
type Decision struct {
	Index int
	Crash bool
}

// Policy is the adaptive adversary. Next is called with the pending
// operations of all parked processes, sorted by PID, and must return a
// decision about one of them. The policy receives its own deterministic
// randomness derived from the run seed.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Next chooses the next scheduling decision. pending is non-empty.
	Next(w World, pending []Request, r *prng.Rand) Decision
}

// FastMode selects a cheap built-in schedule instead of a Policy for
// large-n measurements. The adaptive Policy path materializes the full
// pending set before every grant (O(n log n) per step); the fast modes
// keep O(1) bookkeeping per grant and remain deterministic.
type FastMode uint8

// Fast scheduling modes.
const (
	// FastOff uses the adaptive Policy path (the default).
	FastOff FastMode = iota
	// FastFIFO grants operations in arrival order (processes initially
	// ordered by PID) — a fair asynchronous schedule equivalent in
	// spirit to round-robin.
	FastFIFO
	// FastRandom grants a uniformly random pending operation each time,
	// driven by the run seed — the oblivious random adversary.
	FastRandom
)

// Config parameterizes a simulated run.
type Config struct {
	// N is the number of processes, with PIDs 0..N-1.
	N int
	// Seed drives every coin flip of the run: each process gets stream
	// prng.NewStream(Seed, pid), the policy gets an independent stream.
	Seed uint64
	// Policy is the adversary. Defaults to RoundRobin if nil.
	Policy Policy
	// Fast selects a built-in O(1) schedule when Policy is nil; ignored
	// otherwise.
	Fast FastMode
	// Body is the process program.
	Body Body
	// AfterStep, if non-nil, runs after every granted operation completes.
	// It models free hardware progress, e.g. the counting-device clock of
	// §II.C, and costs the processes no steps.
	AfterStep func()
	// StepLimit bounds the steps of each process; 0 means the default
	// safety budget (DefaultStepLimit).
	StepLimit int64
	// Spaces registers Probeable structures by label so adaptive policies
	// can inspect targets. Optional.
	Spaces map[string]shm.Probeable
}

// DefaultStepLimit is the per-process safety budget used when Config leaves
// StepLimit zero. It is far above any bound the algorithms should reach; a
// process hitting it indicates a non-terminating execution.
const DefaultStepLimit = 1 << 22

type reqMsg struct {
	pid   int
	op    shm.Op
	steps int64
	grant chan bool
}

type doneMsg struct {
	res Result
}

type simGate struct {
	reqCh chan reqMsg
	grant chan bool
}

func (g *simGate) Await(p *shm.Proc, op shm.Op) bool {
	g.reqCh <- reqMsg{pid: p.ID(), op: op, steps: p.Steps(), grant: g.grant}
	return <-g.grant
}

type worldView struct {
	spaces map[string]shm.Probeable
}

func (w worldView) Taken(op shm.Op) bool {
	s, ok := w.spaces[op.Space]
	if !ok {
		return false
	}
	return s.Probe(op.Index)
}

// Run executes a simulated run and returns one Result per process, sorted
// by PID. It panics on configuration errors (N <= 0, nil Body).
func Run(cfg Config) []Result {
	if cfg.N <= 0 {
		panic("sched: Run requires N > 0")
	}
	if cfg.Body == nil {
		panic("sched: Run requires a Body")
	}
	limit := cfg.StepLimit
	if limit == 0 {
		limit = DefaultStepLimit
	}

	reqCh := make(chan reqMsg)
	doneCh := make(chan doneMsg)

	for pid := 0; pid < cfg.N; pid++ {
		gate := &simGate{reqCh: reqCh, grant: make(chan bool)}
		p := shm.NewProc(pid, prng.NewStream(cfg.Seed, pid), gate, limit)
		go runProcess(p, cfg.Body, doneCh)
	}

	if cfg.Policy == nil && cfg.Fast != FastOff {
		return runFast(cfg, reqCh, doneCh)
	}
	policy := cfg.Policy
	if policy == nil {
		policy = RoundRobin()
	}

	policyRand := prng.NewStream(cfg.Seed, -7)
	world := worldView{spaces: cfg.Spaces}
	// pending stays sorted by PID; view is its policy-facing mirror,
	// reused across grants to avoid per-step allocation.
	pending := make([]reqMsg, 0, cfg.N)
	view := make([]Request, 0, cfg.N)
	results := make([]Result, 0, cfg.N)
	executing := cfg.N // processes currently running between grants

	absorb := func() {
		select {
		case m := <-reqCh:
			i := sort.Search(len(pending), func(i int) bool { return pending[i].pid >= m.pid })
			pending = append(pending, reqMsg{})
			copy(pending[i+1:], pending[i:])
			pending[i] = m
			executing--
		case d := <-doneCh:
			results = append(results, d.res)
			executing--
		}
	}

	for len(results) < cfg.N {
		// Let every executing process settle: it either parks on its next
		// operation or finishes. Only then does the adversary decide,
		// with full knowledge of all pending operations.
		for executing > 0 {
			absorb()
		}
		if len(results) == cfg.N {
			break
		}
		view = view[:0]
		for _, m := range pending {
			view = append(view, Request{PID: m.pid, Op: m.op, Steps: m.steps})
		}
		dec := policy.Next(world, view, policyRand)
		if dec.Index < 0 || dec.Index >= len(view) {
			panic(fmt.Sprintf("sched: policy %q returned index %d out of range [0,%d)",
				policy.Name(), dec.Index, len(view)))
		}
		chosen := pending[dec.Index]
		pending = append(pending[:dec.Index], pending[dec.Index+1:]...)
		executing++
		chosen.grant <- !dec.Crash
		if cfg.AfterStep != nil && !dec.Crash {
			// The granted operation completes before the process either
			// parks again or finishes; both transitions pass through the
			// channels above. To keep the hardware hook ordered with the
			// operation, absorb that one transition first.
			absorb()
			cfg.AfterStep()
		}
	}

	sort.Slice(results, func(i, j int) bool { return results[i].PID < results[j].PID })
	return results
}

// runFast is the O(1)-per-grant scheduling loop used by FastFIFO and
// FastRandom. The initial batch of requests (whose arrival order is racy)
// is sorted by PID once; afterwards exactly one process transitions at a
// time, so the execution is deterministic given the seed.
func runFast(cfg Config, reqCh chan reqMsg, doneCh chan doneMsg) []Result {
	var (
		queue     []reqMsg
		head      int
		results   = make([]Result, 0, cfg.N)
		executing = cfg.N
		first     = true
		rng       = prng.NewStream(cfg.Seed, -7)
	)
	absorb := func() {
		select {
		case m := <-reqCh:
			queue = append(queue, m)
			executing--
		case d := <-doneCh:
			results = append(results, d.res)
			executing--
		}
	}
	for len(results) < cfg.N {
		for executing > 0 {
			absorb()
		}
		if len(results) == cfg.N {
			break
		}
		if first {
			sort.Slice(queue, func(i, j int) bool { return queue[i].pid < queue[j].pid })
			first = false
		}
		var chosen reqMsg
		switch cfg.Fast {
		case FastFIFO:
			chosen = queue[head]
			head++
			if head >= 1024 && head*2 >= len(queue) {
				queue = append(queue[:0], queue[head:]...)
				head = 0
			}
		case FastRandom:
			idx := head + rng.Intn(len(queue)-head)
			chosen = queue[idx]
			queue[idx] = queue[len(queue)-1]
			queue = queue[:len(queue)-1]
		default:
			panic("sched: unknown fast mode")
		}
		executing++
		chosen.grant <- true
		if cfg.AfterStep != nil {
			absorb()
			cfg.AfterStep()
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i].PID < results[j].PID })
	return results
}

// runProcess executes body for p, translating the kernel's crash and
// step-limit panics into results. Any other panic propagates: it is a bug.
func runProcess(p *shm.Proc, body Body, doneCh chan doneMsg) {
	res := Result{PID: p.ID(), Name: -1}
	defer func() {
		if r := recover(); r != nil {
			switch r.(type) {
			case shm.Crash:
				res.Status = Crashed
			case shm.StepLimit:
				res.Status = Limited
			default:
				panic(r)
			}
			res.Name = -1
		}
		res.Steps = p.Steps()
		doneCh <- doneMsg{res: res}
	}()
	name := body(p)
	if name >= 0 {
		res.Name = name
		res.Status = Named
	} else {
		res.Status = Unnamed
	}
}

// RunNative executes the same body on real goroutines with no gating and
// returns per-process results sorted by PID. It is not deterministic (real
// hardware races decide interleavings); it exists for wall-clock
// benchmarking and end-to-end sanity on multicore.
func RunNative(n int, seed uint64, body Body) []Result {
	if n <= 0 {
		panic("sched: RunNative requires n > 0")
	}
	results := make([]Result, n)
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			p := shm.NewProc(pid, prng.NewStream(seed, pid), nil, DefaultStepLimit)
			res := Result{PID: pid, Name: -1}
			defer func() {
				if r := recover(); r != nil {
					switch r.(type) {
					case shm.Crash:
						res.Status = Crashed
					case shm.StepLimit:
						res.Status = Limited
					default:
						panic(r)
					}
				}
				res.Steps = p.Steps()
				results[pid] = res
			}()
			name := body(p)
			if name >= 0 {
				res.Name = name
				res.Status = Named
			} else {
				res.Status = Unnamed
			}
		}(pid)
	}
	wg.Wait()
	return results
}

// VerifyUnique checks that the named processes in results hold pairwise
// distinct names within [0, m). It returns an error describing the first
// violation, or nil. Post-run verification used by tests and the harness.
func VerifyUnique(results []Result, m int) error {
	owner := make(map[int]int, len(results))
	for _, r := range results {
		if r.Status != Named {
			continue
		}
		if r.Name < 0 || r.Name >= m {
			return fmt.Errorf("process %d holds out-of-range name %d (space size %d)", r.PID, r.Name, m)
		}
		if prev, dup := owner[r.Name]; dup {
			return fmt.Errorf("name %d held by both process %d and process %d", r.Name, prev, r.PID)
		}
		owner[r.Name] = r.PID
	}
	return nil
}

// MaxSteps returns the step complexity of the execution: the maximum number
// of steps over all processes (crashed processes included; their partial
// steps count toward the maximum they reached).
func MaxSteps(results []Result) int64 {
	var m int64
	for _, r := range results {
		if r.Steps > m {
			m = r.Steps
		}
	}
	return m
}

// CountStatus returns how many results carry the given status.
func CountStatus(results []Result, s Status) int {
	c := 0
	for _, r := range results {
		if r.Status == s {
			c++
		}
	}
	return c
}
