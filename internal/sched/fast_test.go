package sched

import (
	"reflect"
	"testing"

	"shmrename/internal/shm"
)

func TestFastFIFODeterministic(t *testing.T) {
	run := func() []Result {
		space := shm.NewNameSpace("names", 128)
		return Run(Config{N: 96, Seed: 5, Fast: FastFIFO, Body: probeBody(space)})
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("FastFIFO not deterministic")
	}
}

func TestFastRandomDeterministic(t *testing.T) {
	run := func(seed uint64) []Result {
		space := shm.NewNameSpace("names", 128)
		return Run(Config{N: 96, Seed: seed, Fast: FastRandom, Body: probeBody(space)})
	}
	if !reflect.DeepEqual(run(9), run(9)) {
		t.Fatal("FastRandom not deterministic for equal seeds")
	}
	if reflect.DeepEqual(run(9), run(10)) {
		t.Fatal("FastRandom identical across seeds (suspicious)")
	}
}

func TestFastModesRenameCorrectly(t *testing.T) {
	for _, mode := range []FastMode{FastFIFO, FastRandom} {
		space := shm.NewNameSpace("names", 256)
		res := Run(Config{N: 200, Seed: 3, Fast: mode, Body: probeBody(space)})
		if got := CountStatus(res, Named); got != 200 {
			t.Fatalf("mode %d: %d named", mode, got)
		}
		if err := VerifyUnique(res, 256); err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
	}
}

func TestFastFIFOIsFair(t *testing.T) {
	// Fixed-length bodies finish with identical step counts under FIFO.
	space := shm.NewNameSpace("names", 4)
	body := func(p *shm.Proc) int {
		for i := 0; i < 7; i++ {
			space.Claimed(p, i%4)
		}
		return p.ID()
	}
	res := Run(Config{N: 16, Seed: 1, Fast: FastFIFO, Body: body})
	for _, r := range res {
		if r.Steps != 7 {
			t.Fatalf("pid %d took %d steps under FIFO", r.PID, r.Steps)
		}
	}
}

func TestFastModeWithAfterStep(t *testing.T) {
	space := shm.NewNameSpace("names", 8)
	ticks := 0
	body := func(p *shm.Proc) int {
		for i := 0; i < 4; i++ {
			space.Claimed(p, i)
		}
		return p.ID()
	}
	Run(Config{N: 4, Seed: 1, Fast: FastFIFO, Body: body, AfterStep: func() { ticks++ }})
	if ticks != 16 {
		t.Fatalf("AfterStep ran %d times, want 16", ticks)
	}
}

func TestFastModeIgnoredWhenPolicySet(t *testing.T) {
	// An explicit policy takes precedence; the run must still work.
	space := shm.NewNameSpace("names", 64)
	res := Run(Config{
		N: 32, Seed: 2, Fast: FastFIFO, Policy: Random(),
		Body: probeBody(space),
	})
	if got := CountStatus(res, Named); got != 32 {
		t.Fatalf("%d named", got)
	}
}

func TestFastFIFOQueueCompaction(t *testing.T) {
	// Enough grants to trigger the head-compaction path (head >= 1024).
	space := shm.NewNameSpace("names", 4)
	body := func(p *shm.Proc) int {
		for i := 0; i < 300; i++ {
			space.Claimed(p, i%4)
		}
		return p.ID()
	}
	res := Run(Config{N: 8, Seed: 1, Fast: FastFIFO, Body: body})
	for _, r := range res {
		if r.Status != Named || r.Steps != 300 {
			t.Fatalf("unexpected result %+v", r)
		}
	}
}

func TestFastRandomStepLimit(t *testing.T) {
	space := shm.NewNameSpace("names", 1)
	body := func(p *shm.Proc) int {
		for {
			space.Claimed(p, 0)
		}
	}
	res := Run(Config{N: 3, Seed: 1, Fast: FastRandom, Body: body, StepLimit: 25})
	for _, r := range res {
		if r.Status != Limited {
			t.Fatalf("pid %d status %v", r.PID, r.Status)
		}
	}
}
