package sched

import (
	"reflect"
	"testing"

	"shmrename/internal/prng"
	"shmrename/internal/shm"
)

// probeBody returns a body in which each process claims random names in
// space until it wins one, then returns it.
func probeBody(space *shm.NameSpace) Body {
	return func(p *shm.Proc) int {
		for {
			i := p.Rand().Intn(space.Size())
			if space.TryClaim(p, i) {
				return i
			}
		}
	}
}

func TestRunSimBasicRenaming(t *testing.T) {
	const n = 64
	space := shm.NewNameSpace("names", 2*n)
	res := Run(Config{N: n, Seed: 1, Body: probeBody(space)})
	if len(res) != n {
		t.Fatalf("got %d results, want %d", len(res), n)
	}
	if got := CountStatus(res, Named); got != n {
		t.Fatalf("%d named, want %d", got, n)
	}
	if err := VerifyUnique(res, 2*n); err != nil {
		t.Fatal(err)
	}
}

func TestRunSimDeterministic(t *testing.T) {
	run := func() []Result {
		space := shm.NewNameSpace("names", 96)
		return Run(Config{N: 64, Seed: 42, Policy: Random(), Body: probeBody(space)})
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical configs produced different executions")
	}
}

func TestRunSimSeedsDiffer(t *testing.T) {
	run := func(seed uint64) []Result {
		space := shm.NewNameSpace("names", 96)
		return Run(Config{N: 64, Seed: seed, Policy: Random(), Body: probeBody(space)})
	}
	if reflect.DeepEqual(run(1), run(2)) {
		t.Fatal("different seeds produced identical executions (suspicious)")
	}
}

func TestRoundRobinFairness(t *testing.T) {
	// Each process performs exactly 5 reads; under round-robin everyone
	// should finish with exactly 5 steps.
	space := shm.NewNameSpace("names", 4)
	body := func(p *shm.Proc) int {
		for i := 0; i < 5; i++ {
			space.Claimed(p, i%4)
		}
		return p.ID()
	}
	res := Run(Config{N: 8, Seed: 3, Policy: RoundRobin(), Body: body})
	for _, r := range res {
		if r.Steps != 5 {
			t.Fatalf("pid %d took %d steps, want 5", r.PID, r.Steps)
		}
	}
}

func TestColliderPrefersDoomedTAS(t *testing.T) {
	// One register, already set. Pending TAS on it must be granted first
	// and fail, wasting the victim's step.
	space := shm.NewNameSpace("reg", 2)
	// Pre-set register 0 without accounting steps to any process.
	setup := shm.NewProc(999, prng.New(9), nil, 0)
	space.TryClaim(setup, 0)

	body := func(p *shm.Proc) int {
		if p.ID() == 0 {
			if space.TryClaim(p, 0) { // doomed
				return 0
			}
			return -1
		}
		if space.TryClaim(p, 1) {
			return 1
		}
		return -1
	}
	res := Run(Config{
		N: 2, Seed: 5, Policy: Collider(), Body: body,
		Spaces: map[string]shm.Probeable{"reg": space},
	})
	if res[0].Status != Unnamed {
		t.Fatalf("doomed process status = %v, want unnamed", res[0].Status)
	}
	if res[1].Status != Named || res[1].Name != 1 {
		t.Fatalf("process 1 = %+v, want named 1", res[1])
	}
}

func TestStarvePolicyDelaysVictim(t *testing.T) {
	// n processes probe a tight space of n names. The starved victim runs
	// last, faces a nearly full space, and on average pays ~n failed
	// probes where the unstarved processes average ~ln n. Averaged over
	// seeds the separation is wide; a single run can be lucky.
	const n, trials = 32, 20
	var victimSum, otherSum float64
	for seed := uint64(0); seed < trials; seed++ {
		space := shm.NewNameSpace("names", n)
		res := Run(Config{N: n, Seed: seed, Policy: Starve(0), Body: probeBody(space)})
		if err := VerifyUnique(res, n); err != nil {
			t.Fatal(err)
		}
		if got := CountStatus(res, Named); got != n {
			t.Fatalf("%d named, want %d", got, n)
		}
		victimSum += float64(res[0].Steps)
		for _, r := range res[1:] {
			otherSum += float64(r.Steps) / float64(n-1)
		}
	}
	victimMean := victimSum / trials
	otherMean := otherSum / trials
	if victimMean < 2*otherMean {
		t.Fatalf("victim mean %.1f steps vs others mean %.1f; starvation had no bite",
			victimMean, otherMean)
	}
}

func TestWithCrashesCrashesExactlyScheduled(t *testing.T) {
	const n = 16
	space := shm.NewNameSpace("names", 4*n)
	plan := map[int]int64{2: 0, 5: 1, 11: 0}
	res := Run(Config{
		N: n, Seed: 13,
		Policy: WithCrashes(RoundRobin(), plan),
		Body:   probeBody(space),
	})
	for pid := range plan {
		if res[pid].Status != Crashed {
			t.Fatalf("pid %d status = %v, want crashed", pid, res[pid].Status)
		}
		if res[pid].Name != -1 {
			t.Fatalf("crashed pid %d holds name %d", pid, res[pid].Name)
		}
	}
	if got := CountStatus(res, Crashed); got != len(plan) {
		t.Fatalf("%d crashed, want %d", got, len(plan))
	}
	if got := CountStatus(res, Named); got != n-len(plan) {
		t.Fatalf("%d named, want %d", got, n-len(plan))
	}
	if err := VerifyUnique(res, 4*n); err != nil {
		t.Fatal(err)
	}
}

func TestPlanCrashesDeterministicAndSized(t *testing.T) {
	r1 := prng.New(77)
	r2 := prng.New(77)
	p1 := PlanCrashes(100, 0.25, 10, r1)
	p2 := PlanCrashes(100, 0.25, 10, r2)
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("PlanCrashes not deterministic")
	}
	if len(p1) != 25 {
		t.Fatalf("planned %d crashes, want 25", len(p1))
	}
	for pid, step := range p1 {
		if pid < 0 || pid >= 100 || step < 0 || step >= 10 {
			t.Fatalf("invalid crash entry %d -> %d", pid, step)
		}
	}
}

func TestAfterStepRunsPerGrantedOp(t *testing.T) {
	space := shm.NewNameSpace("names", 8)
	ticks := 0
	body := func(p *shm.Proc) int {
		for i := 0; i < 3; i++ {
			space.Claimed(p, i)
		}
		return p.ID()
	}
	Run(Config{N: 4, Seed: 1, Body: body, AfterStep: func() { ticks++ }})
	if ticks != 12 {
		t.Fatalf("AfterStep ran %d times, want 12", ticks)
	}
}

func TestStepLimitYieldsLimitedStatus(t *testing.T) {
	space := shm.NewNameSpace("names", 1)
	body := func(p *shm.Proc) int {
		for {
			space.Claimed(p, 0) // never terminates on its own
		}
	}
	res := Run(Config{N: 2, Seed: 1, Body: body, StepLimit: 50})
	for _, r := range res {
		if r.Status != Limited {
			t.Fatalf("pid %d status = %v, want limited", r.PID, r.Status)
		}
		if r.Steps != 51 { // the 51st attempt trips the limit
			t.Fatalf("pid %d steps = %d, want 51", r.PID, r.Steps)
		}
	}
}

func TestRunNativeRenames(t *testing.T) {
	const n = 128
	space := shm.NewNameSpace("names", 2*n)
	res := RunNative(n, 99, probeBody(space))
	if got := CountStatus(res, Named); got != n {
		t.Fatalf("%d named, want %d", got, n)
	}
	if err := VerifyUnique(res, 2*n); err != nil {
		t.Fatal(err)
	}
	for pid, r := range res {
		if r.PID != pid {
			t.Fatalf("results out of order: index %d has PID %d", pid, r.PID)
		}
	}
}

func TestVerifyUniqueDetectsViolations(t *testing.T) {
	dup := []Result{
		{PID: 0, Name: 3, Status: Named},
		{PID: 1, Name: 3, Status: Named},
	}
	if err := VerifyUnique(dup, 10); err == nil {
		t.Fatal("duplicate names not detected")
	}
	oob := []Result{{PID: 0, Name: 10, Status: Named}}
	if err := VerifyUnique(oob, 10); err == nil {
		t.Fatal("out-of-range name not detected")
	}
	ok := []Result{
		{PID: 0, Name: 1, Status: Named},
		{PID: 1, Name: -1, Status: Crashed},
		{PID: 2, Name: 2, Status: Named},
	}
	if err := VerifyUnique(ok, 10); err != nil {
		t.Fatalf("valid results rejected: %v", err)
	}
}

func TestMaxSteps(t *testing.T) {
	rs := []Result{{Steps: 3}, {Steps: 17}, {Steps: 5}}
	if got := MaxSteps(rs); got != 17 {
		t.Fatalf("MaxSteps = %d, want 17", got)
	}
	if got := MaxSteps(nil); got != 0 {
		t.Fatalf("MaxSteps(nil) = %d, want 0", got)
	}
}

func TestStatusString(t *testing.T) {
	cases := map[Status]string{
		Named: "named", Unnamed: "unnamed", Crashed: "crashed", Limited: "limited",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Fatalf("Status(%d).String() = %q, want %q", s, got, want)
		}
	}
}

func TestPolicyNames(t *testing.T) {
	for _, p := range []Policy{RoundRobin(), Random(), Collider(), Starve(1, 2)} {
		if p.Name() == "" {
			t.Fatalf("policy %T has empty name", p)
		}
	}
	w := WithCrashes(Random(), map[int]int64{1: 0})
	if w.Name() == "" {
		t.Fatal("crasher has empty name")
	}
}

func TestAllPoliciesCompleteTightRenaming(t *testing.T) {
	// Every policy must let every process finish on a loose space
	// (no livelock from the scheduler itself).
	for _, policy := range []Policy{RoundRobin(), Random(), Collider(), Starve(0, 1, 2)} {
		space := shm.NewNameSpace("names", 128)
		res := Run(Config{
			N: 64, Seed: 21, Policy: policy, Body: probeBody(space),
			Spaces: map[string]shm.Probeable{"names": space},
		})
		if got := CountStatus(res, Named); got != 64 {
			t.Fatalf("policy %s: %d named, want 64", policy.Name(), got)
		}
		if err := VerifyUnique(res, 128); err != nil {
			t.Fatalf("policy %s: %v", policy.Name(), err)
		}
	}
}
