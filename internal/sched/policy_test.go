package sched

import (
	"testing"

	"shmrename/internal/prng"
	"shmrename/internal/shm"
)

func TestRoundRobinWrapsAround(t *testing.T) {
	p := RoundRobin()
	pending := []Request{{PID: 2}, {PID: 5}, {PID: 9}}
	r := prng.New(1)
	w := worldView{}
	order := []int{}
	for i := 0; i < 6; i++ {
		d := p.Next(w, pending, r)
		order = append(order, pending[d.Index].PID)
	}
	want := []int{2, 5, 9, 2, 5, 9}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order %v, want %v", order, want)
		}
	}
}

func TestRandomPolicyCoversAllPIDs(t *testing.T) {
	p := Random()
	pending := []Request{{PID: 0}, {PID: 1}, {PID: 2}, {PID: 3}}
	r := prng.New(7)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		d := p.Next(worldView{}, pending, r)
		seen[pending[d.Index].PID] = true
	}
	if len(seen) != 4 {
		t.Fatalf("random policy granted only %v", seen)
	}
}

type fixedWorld map[shm.Op]bool

func (w fixedWorld) Taken(op shm.Op) bool { return w[op] }

func TestColliderGroupsContention(t *testing.T) {
	// No doomed op pending: the collider must pick from the largest
	// group of colliding TAS targets.
	p := Collider()
	op := func(i int32) shm.Op { return shm.Op{Kind: shm.OpTAS, Space: shm.InternSpace("s"), Index: i} }
	pending := []Request{
		{PID: 0, Op: op(3)},
		{PID: 1, Op: op(7)},
		{PID: 2, Op: op(7)},
		{PID: 3, Op: op(7)},
		{PID: 4, Op: op(5)},
	}
	d := p.Next(fixedWorld{}, pending, prng.New(1))
	if got := pending[d.Index].Op.Index; got != 7 {
		t.Fatalf("collider picked target %d, want the contended 7", got)
	}
}

func TestColliderPrefersReadsLast(t *testing.T) {
	// With only reads pending, the collider still returns a valid index.
	p := Collider()
	pending := []Request{
		{PID: 0, Op: shm.Op{Kind: shm.OpRead, Space: shm.InternSpace("s"), Index: 1}},
		{PID: 1, Op: shm.Op{Kind: shm.OpRead, Space: shm.InternSpace("s"), Index: 2}},
	}
	d := p.Next(fixedWorld{}, pending, prng.New(1))
	if d.Index < 0 || d.Index >= len(pending) {
		t.Fatalf("collider returned index %d", d.Index)
	}
}

func TestColliderStarvesReleases(t *testing.T) {
	// Churn awareness: a pending release (OpClear) is granted only when
	// every other pending operation is also a release — granting reads or
	// claims first keeps the name space maximally occupied.
	p := Collider()
	space := shm.InternSpace("s")
	pending := []Request{
		{PID: 0, Op: shm.Op{Kind: shm.OpClear, Space: space, Index: 1}},
		{PID: 1, Op: shm.Op{Kind: shm.OpRead, Space: space, Index: 2}},
		{PID: 2, Op: shm.Op{Kind: shm.OpClear, Space: space, Index: 3}},
	}
	d := p.Next(fixedWorld{}, pending, prng.New(1))
	if pending[d.Index].PID != 1 {
		t.Fatalf("collider granted PID %d, want the read of PID 1", pending[d.Index].PID)
	}
	// Only releases pending: the collider must still make progress.
	onlyClears := []Request{
		{PID: 0, Op: shm.Op{Kind: shm.OpClear, Space: space, Index: 1}},
		{PID: 2, Op: shm.Op{Kind: shm.OpClear, Space: space, Index: 3}},
	}
	d = p.Next(fixedWorld{}, onlyClears, prng.New(1))
	if d.Index < 0 || d.Index >= len(onlyClears) {
		t.Fatalf("collider returned index %d with only releases pending", d.Index)
	}
	// A doomed TAS still takes priority over everything.
	withDoomed := append([]Request{
		{PID: 3, Op: shm.Op{Kind: shm.OpTAS, Space: space, Index: 9}},
	}, pending...)
	world := fixedWorld{{Kind: shm.OpTAS, Space: space, Index: 9}: true}
	d = p.Next(world, withDoomed, prng.New(1))
	if withDoomed[d.Index].PID != 3 {
		t.Fatalf("collider granted PID %d, want the doomed TAS of PID 3", withDoomed[d.Index].PID)
	}
}

func TestStarveGrantsVictimWhenAlone(t *testing.T) {
	p := Starve(4)
	pending := []Request{{PID: 4}}
	d := p.Next(worldView{}, pending, prng.New(1))
	if d.Index != 0 || d.Crash {
		t.Fatalf("lone victim not granted: %+v", d)
	}
}

func TestCrasherPassesThroughUnplannedPIDs(t *testing.T) {
	p := WithCrashes(RoundRobin(), map[int]int64{99: 0})
	pending := []Request{{PID: 1, Steps: 10}}
	d := p.Next(worldView{}, pending, prng.New(1))
	if d.Crash {
		t.Fatal("crashed an unplanned pid")
	}
}

func TestCrasherCrashesOnlyOnce(t *testing.T) {
	p := WithCrashes(RoundRobin(), map[int]int64{1: 0})
	pending := []Request{{PID: 1, Steps: 5}}
	d1 := p.Next(worldView{}, pending, prng.New(1))
	if !d1.Crash {
		t.Fatal("scheduled crash not applied")
	}
	// The same PID appearing again (hypothetically) is not re-crashed.
	d2 := p.Next(worldView{}, pending, prng.New(1))
	if d2.Crash {
		t.Fatal("pid crashed twice")
	}
}

func TestPlanCrashesZeroFraction(t *testing.T) {
	if got := PlanCrashes(100, 0, 10, prng.New(1)); len(got) != 0 {
		t.Fatalf("zero fraction planned %d crashes", len(got))
	}
}

func TestPlanCrashesFullFraction(t *testing.T) {
	plan := PlanCrashes(10, 1.0, 1, prng.New(1))
	if len(plan) != 10 {
		t.Fatalf("full fraction planned %d", len(plan))
	}
	for pid, at := range plan {
		if at != 0 {
			t.Fatalf("pid %d crash step %d, want 0 with maxStep=1", pid, at)
		}
	}
}

func TestRunPanicsOnBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{N: 0, Body: func(p *shm.Proc) int { return 0 }},
		{N: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bad config accepted: %+v", cfg)
				}
			}()
			Run(cfg)
		}()
	}
}

func TestRunPanicsOnPolicyOutOfRange(t *testing.T) {
	space := shm.NewNameSpace("names", 4)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range policy decision accepted")
		}
	}()
	Run(Config{N: 2, Seed: 1, Policy: badPolicy{}, Body: probeBody(space)})
}

type badPolicy struct{}

func (badPolicy) Name() string { return "bad" }
func (badPolicy) Next(w World, pending []Request, r *prng.Rand) Decision {
	return Decision{Index: 99}
}
