package sched

import (
	"testing"

	"shmrename/internal/prng"
	"shmrename/internal/shm"
)

// crashProbeBody returns a body that reads the space a fixed number of
// times and then claims the first free name by linear scan. The read
// prologue guarantees every process takes at least prologue+1 steps, so a
// crash planned at any step below prologue must fire before the process can
// claim a name.
func crashProbeBody(space *shm.NameSpace, prologue int) Body {
	return func(p *shm.Proc) int {
		for i := 0; i < prologue; i++ {
			space.Claimed(p, i%space.Size())
		}
		for i := 0; i < space.Size(); i++ {
			if space.TryClaim(p, i) {
				return i
			}
		}
		return -1
	}
}

// TestCrashPlanHonored covers the crash-injection path end to end: for
// every policy the planned victims are crashed exactly once, crashed
// processes never hold names (neither in the results nor as bits in the
// space), and Result.Crashed matches the plan.
func TestCrashPlanHonored(t *testing.T) {
	const (
		n        = 40
		prologue = 16
		maxStep  = 8 // all below prologue: every planned crash must fire
	)
	policies := map[string]func() Policy{
		"round-robin": RoundRobin,
		"random":      Random,
		"starve":      func() Policy { return Starve(0, 1, 2, 3) },
	}
	for pname, mk := range policies {
		t.Run(pname, func(t *testing.T) {
			space := shm.NewNameSpace("crash-"+pname, n)
			plan := PlanCrashes(n, 0.3, maxStep, prng.New(99))
			if len(plan) != 12 {
				t.Fatalf("plan has %d victims, want 12", len(plan))
			}
			res := Run(Config{
				N:      n,
				Seed:   5,
				Policy: WithCrashes(mk(), plan),
				Body:   crashProbeBody(space, prologue),
				Spaces: map[string]shm.Probeable{space.Label(): space},
			})
			if err := VerifyUnique(res, n); err != nil {
				t.Fatal(err)
			}
			crashed := 0
			for _, r := range res {
				at, planned := plan[r.PID]
				switch {
				case planned && r.Status != Crashed:
					t.Errorf("pid %d planned to crash but ended %v", r.PID, r.Status)
				case !planned && r.Status != Named:
					t.Errorf("pid %d not in plan but ended %v", r.PID, r.Status)
				}
				if r.Status == Crashed {
					crashed++
					if r.Name != -1 {
						t.Errorf("crashed pid %d holds name %d", r.PID, r.Name)
					}
					if r.Steps < at {
						t.Errorf("pid %d crashed at step %d, before its planned step %d", r.PID, r.Steps, at)
					}
				}
			}
			if crashed != len(plan) {
				t.Fatalf("%d crashed, want the full plan of %d", crashed, len(plan))
			}
			// No crashed process reached the claiming phase, so the claimed
			// bits must be exactly the named survivors.
			if got, want := space.CountClaimed(), n-len(plan); got != want {
				t.Fatalf("%d names claimed, want %d (crashed processes must not hold bits)", got, want)
			}
		})
	}
}

// TestCrashedNeverHoldNamesPublicSchedules drives the same invariant
// through algorithm bodies at the schedule granularity the public API
// exposes (fifo maps to round-robin when crashes are active), asserting
// that a crash plan applied over the FIFO-equivalent, round-robin, and
// starve policies keeps every crashed process nameless while the rest
// terminate named.
func TestCrashedNeverHoldNamesSchedules(t *testing.T) {
	const n = 32
	mkPolicies := map[string]func() Policy{
		"fifo-equivalent": RoundRobin, // public fifo+crashes path
		"round-robin":     RoundRobin,
		"starve":          func() Policy { return Starve(0, 1, 2) },
	}
	for pname, mk := range mkPolicies {
		t.Run(pname, func(t *testing.T) {
			space := shm.NewNameSpace("crash-sched-"+pname, n)
			plan := PlanCrashes(n, 0.25, 6, prng.New(7))
			res := Run(Config{
				N:      n,
				Seed:   11,
				Policy: WithCrashes(mk(), plan),
				Body:   crashProbeBody(space, 8),
				Spaces: map[string]shm.Probeable{space.Label(): space},
			})
			if err := VerifyUnique(res, n); err != nil {
				t.Fatal(err)
			}
			if got := CountStatus(res, Crashed); got != len(plan) {
				t.Fatalf("crashed %d, want %d", got, len(plan))
			}
			for _, r := range res {
				if r.Status == Crashed && r.Name != -1 {
					t.Errorf("crashed pid %d holds name %d", r.PID, r.Name)
				}
			}
		})
	}
}
