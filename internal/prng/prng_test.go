package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %x vs %x", i, av, bv)
		}
	}
}

func TestSeedsProduceDistinctStreams(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d/1000 times", same)
	}
}

func TestSeedResets(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("re-seeded stream diverged at %d", i)
		}
	}
}

func TestSplitStable(t *testing.T) {
	r := New(99)
	c1 := r.Split(5)
	c2 := r.Split(5)
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("Split not stable at %d", i)
		}
	}
}

func TestSplitIndependentOfParentUse(t *testing.T) {
	r1 := New(99)
	r2 := New(99)
	r2.Split(1).Uint64() // consuming a child must not disturb the parent
	for i := 0; i < 100; i++ {
		if r1.Uint64() != r2.Uint64() {
			t.Fatalf("Split disturbed parent stream at %d", i)
		}
	}
}

func TestNewStreamDistinctPerID(t *testing.T) {
	seen := make(map[uint64]int)
	for id := 0; id < 512; id++ {
		v := NewStream(1234, id).Uint64()
		if prev, dup := seen[v]; dup {
			t.Fatalf("streams %d and %d share first output %x", prev, id, v)
		}
		seen[v] = id
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 64, 1000, 1 << 30} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-square smoke test over 16 buckets.
	const buckets, samples = 16, 160000
	r := New(1001)
	var counts [buckets]int
	for i := 0; i < samples; i++ {
		counts[r.Intn(buckets)]++
	}
	expected := float64(samples) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 degrees of freedom; 99.9th percentile is ~37.7.
	if chi2 > 40 {
		t.Fatalf("chi-square too large: %.2f (counts %v)", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %.4f far from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(8)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	// For n=4, index 0 should hold each value ~25% of the time.
	r := New(11)
	var counts [4]int
	const trials = 40000
	for i := 0; i < trials; i++ {
		counts[r.Perm(4)[0]]++
	}
	for v, c := range counts {
		frac := float64(c) / trials
		if math.Abs(frac-0.25) > 0.02 {
			t.Fatalf("value %d appears with frequency %.3f", v, frac)
		}
	}
}

func TestShuffleMatchesPermutationProperty(t *testing.T) {
	r := New(21)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("shuffle lost elements: %v", xs)
		}
		seen[v] = true
	}
}

func TestSplitMix64KnownVectors(t *testing.T) {
	// Reference outputs for seed 0 from the canonical splitmix64
	// implementation (Vigna).
	s := uint64(0)
	want := []uint64{
		0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f,
		0xf88bb8a8724c81ec, 0x1b39896a51a8749b,
	}
	for i, w := range want {
		if got := SplitMix64(&s); got != w {
			t.Fatalf("SplitMix64 output %d = %x, want %x", i, got, w)
		}
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(77)
	trues := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool() {
			trues++
		}
	}
	if frac := float64(trues) / n; math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("Bool true fraction %.4f", frac)
	}
}

func TestQuickIntnAlwaysInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := New(seed)
		for i := 0; i < 32; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000003)
	}
	_ = sink
}
