// Package prng provides a small, deterministic, splittable pseudo-random
// number generator used throughout the repository.
//
// All randomness in the library flows from explicit 64-bit seeds so that
// every experiment trial is exactly reproducible. The generator is
// xoshiro256** (Blackman & Vigna), seeded via splitmix64, the combination
// recommended by the xoshiro authors. Each simulated process receives its
// own independent stream derived from the trial seed and the process id,
// which keeps executions deterministic even when the scheduler reorders
// processes.
//
// The package deliberately does not depend on math/rand: the algorithms
// under test are themselves randomized and the adaptive-adversary simulator
// must be able to replay coin flips; a self-contained generator with an
// explicitly splittable seeding discipline makes that contract obvious.
package prng

import "math/bits"

// SplitMix64 advances the splitmix64 state in *s and returns the next
// 64-bit output. It is used for seeding and for cheap one-shot hashing of
// (seed, index) pairs into independent stream seeds.
func SplitMix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** generator. The zero value is not valid; construct
// instances with New or Split.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from the given 64-bit seed via splitmix64.
// Two generators constructed from the same seed produce identical streams.
func New(seed uint64) *Rand {
	var r Rand
	r.Seed(seed)
	return &r
}

// Seed resets the generator state deterministically from seed.
func (r *Rand) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&sm)
	}
	// xoshiro256** requires a state that is not all zero; splitmix64 cannot
	// produce four zero outputs in a row, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// Split derives a new, statistically independent generator from r and the
// given stream index. It does not disturb r's own sequence. The derivation
// hashes (a snapshot of r's state, index) through splitmix64, so Split is
// stable: calling it twice with the same index yields identical children.
func (r *Rand) Split(index uint64) *Rand {
	mix := r.s[0] ^ bits.RotateLeft64(r.s[2], 17) ^ (index * 0xd1342543de82ef95)
	return New(mix ^ 0x5851f42d4c957f2d)
}

// NewStream returns the canonical per-process generator for (seed, id).
// It is a convenience wrapper used by the runners: every process id gets an
// independent stream regardless of scheduling order.
func NewStream(seed uint64, id int) *Rand {
	var r Rand
	r.SeedStream(seed, id)
	return &r
}

// SeedStream resets r to the canonical per-process stream for (seed, id):
// the in-place, allocation-free equivalent of NewStream. Runners that
// batch-allocate generator state (one slice for all processes) use it to
// avoid a heap allocation per process.
func (r *Rand) SeedStream(seed uint64, id int) {
	sm := seed ^ (uint64(id)+1)*0xd1342543de82ef95
	r.Seed(SplitMix64(&sm))
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Uint32 returns the next 32 pseudo-random bits.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0. The implementation uses Lemire's multiply-shift rejection method,
// which is unbiased and avoids division in the common case.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn called with n <= 0")
	}
	un := uint64(n)
	v := r.Uint64()
	hi, lo := bits.Mul64(v, un)
	if lo < un {
		// Rejection zone: threshold = (2^64 - n) mod n = -n mod n.
		thresh := -un % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = bits.Mul64(v, un)
		}
	}
	return int(hi)
}

// Int63 returns a non-negative 63-bit pseudo-random integer.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns an unbiased random boolean.
func (r *Rand) Bool() bool { return r.Uint64()&1 == 1 }

// Perm returns a uniformly random permutation of [0, n) as a slice.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
