//go:build unix

// Package persist implements the mmap-backed cross-process renaming
// namespace: the shared-memory model taken literally. The claim bitmap and
// the lease-stamp array live in a file mapped MAP_SHARED by every
// participating OS process, so the same word-granular TAS/CAS protocol
// that coordinates goroutines in-process coordinates unrelated processes
// through the page cache — and, because the state survives its holders,
// the recovery sweep (package recovery) can return a SIGKILLed process's
// names to the pool from any surviving process.
//
// # File layout
//
// Everything is 8-byte little-host-endian words, mmap-aligned:
//
//	word 0              magic "shmrenam"
//	word 1              layout version
//	word 2              name count m
//	word 3              attach counter (diagnostic; see Dirty)
//	words 4..7          reserved, zero
//	words 8..8+B-1      claim bitmap, B = ⌈m/64⌉ words
//	words 8+B..8+B+m-1  lease stamps, one word per name
//
// The superblock is validated on every open: a magic or version mismatch,
// or a geometry that disagrees with the file's size, is an error — never a
// silent reinterpretation of someone else's bits. Open serializes
// create-or-validate under an exclusive flock (dropped before returning),
// so two processes racing to create the file cannot both lay out a
// superblock — the loser attaches to the winner's geometry or errors out.
// Creation still writes the geometry first and the magic word last, so a
// file left behind by a creator that crashed mid-layout has no magic and
// every later open rejects it with an error (no automatic retry or
// repair — delete the file to recreate it).
//
// # Identity and liveness
//
// Each Arena handle claims under one holder identity, its process ID, and
// each OS process is the recovery unit: leases are stamped with the PID,
// heartbeats renew all of the process's stamps, and the default liveness
// oracle is kill(pid, 0) — the sweep reclaims a name only when its
// holder's lease is TTL-stale and the PID no longer resolves to a live
// process. PIDs fit the 24-bit holder field on every mainstream kernel
// (Linux caps pid_max at 2^22).
//
// The arena is flat — one word-scanned bitmap, names in [0, m) — rather
// than a level ladder: cross-process churn is dominated by mmap coherence,
// not probe counts, and a flat map keeps the on-disk geometry trivially
// checkable. In-process backends remain the place where the paper's
// structures earn their keep.
package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/bits"
	"os"
	"sync/atomic"
	"syscall"
	"unsafe"

	"shmrename/internal/longlived"
	"shmrename/internal/prng"
	"shmrename/internal/recovery"
	"shmrename/internal/shm"
)

const (
	// fileMagic spells "shmrenam" in little-endian byte order.
	fileMagic = 0x6d616e65726d6873
	// fileVersion 2 added the superblock checksum word (hCRC); version-1
	// files predate it and are rejected rather than trusted unchecked.
	fileVersion = 2
	hdrWords    = 8

	hMagic   = 0
	hVersion = 1
	hNames   = 2
	hAttach  = 3
	// hCRC holds the CRC32C (Castagnoli) of the immutable superblock words
	// (magic, version, name count) at their final values. It is written
	// before the magic during creation, so a validated magic implies the
	// checksum is present: a mismatch at open means the header bytes were
	// torn or flipped after layout, and the geometry cannot be trusted.
	hCRC = 4

	// maxNames bounds the advertised name count of an attached file: far
	// above any real namespace, low enough that fileSize cannot overflow
	// and a corrupt count cannot demand a terabyte mapping.
	maxNames = 1 << 31
)

// superCRC computes the superblock checksum: CRC32C over the three
// immutable header words at their final values.
func superCRC(magic, version, names uint64) uint64 {
	var b [24]byte
	binary.LittleEndian.PutUint64(b[0:], magic)
	binary.LittleEndian.PutUint64(b[8:], version)
	binary.LittleEndian.PutUint64(b[16:], names)
	return uint64(crc32.Checksum(b[:], crc32.MakeTable(crc32.Castagnoli)))
}

// pidAlive is the default liveness oracle: kill(pid, 0). EPERM means the
// process exists but belongs to someone else — alive.
func pidAlive(holder uint64) bool {
	if holder == 0 || holder > uint64(1)<<31 {
		return false
	}
	err := syscall.Kill(int(holder), 0)
	return err == nil || err == syscall.EPERM
}

// Arena is one process's handle on an mmap-backed namespace. It implements
// longlived.Recoverable; every claim carries the handle's holder identity,
// so all of a process's names are recovered together when it dies. Methods
// are safe for concurrent use by distinct procs, in this process and in
// any other process mapping the same file.
type Arena struct {
	f       *os.File
	data    []byte
	hdr     []atomic.Uint64
	ns      *shm.NameSpace
	stamps  *shm.Stamps
	sweeper *recovery.Sweeper
	opt     Options
	m       int
	dirty   bool
	closed  atomic.Bool
}

var _ longlived.Recoverable = (*Arena)(nil)

func fileSize(m int) int64 {
	return 8 * int64(hdrWords+(m+63)/64+m)
}

// Open creates or attaches to the namespace file at path and runs one
// recovery sweep over it before returning, so names orphaned by a crashed
// previous holder are back in the pool by the time the caller acquires.
func Open(path string, opt Options) (*Arena, error) {
	opt.fill()
	if opt.Holder > shm.MaxHolder {
		return nil, fmt.Errorf("persist: holder %d exceeds %d", opt.Holder, uint64(shm.MaxHolder))
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: open %s: %w", path, err)
	}
	// Create-or-validate runs under an exclusive flock: two openers that
	// both observed an empty file would both lay out a superblock, and with
	// disagreeing Options.Names the second Truncate would shrink the file
	// under the first opener's mapping (SIGBUS on a later access). The lock
	// is released before returning (error paths drop it via f.Close), so it
	// never outlives Open.
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: lock %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: stat %s: %w", path, err)
	}
	fresh := st.Size() == 0
	m := opt.Names
	if fresh {
		if m <= 0 {
			f.Close()
			return nil, fmt.Errorf("persist: creating %s requires Options.Names", path)
		}
		if m > maxNames {
			f.Close()
			return nil, fmt.Errorf("persist: %d names exceeds the namespace bound %d", m, int64(maxNames))
		}
		if err := f.Truncate(fileSize(m)); err != nil {
			f.Close()
			return nil, fmt.Errorf("persist: size %s: %w", path, err)
		}
	}
	size := fileSize(m)
	if !fresh {
		// Validate before mapping: a file shorter than its own superblock
		// (truncated by an operator, a quota, or a crash during an external
		// copy) must be rejected here with a descriptive error, not later
		// with a SIGBUS when a mapped page past EOF is first touched.
		if st.Size() < hdrWords*8 {
			f.Close()
			return nil, fmt.Errorf("persist: %s is %d bytes, too short for a namespace superblock (%d); the file is truncated or not a renaming namespace",
				path, st.Size(), hdrWords*8)
		}
		// Geometry comes from the file; read the superblock through a small
		// map first when the caller did not pin m.
		hdrMap, err := syscall.Mmap(int(f.Fd()), 0, hdrWords*8, syscall.PROT_READ, syscall.MAP_SHARED)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("persist: map header of %s: %w", path, err)
		}
		hw := wordsOf(hdrMap)
		magic, ver := hw[hMagic].Load(), hw[hVersion].Load()
		names, crc := hw[hNames].Load(), hw[hCRC].Load()
		syscall.Munmap(hdrMap)
		if magic != fileMagic {
			f.Close()
			return nil, fmt.Errorf("persist: %s is not a renaming namespace (magic %#x)", path, magic)
		}
		if ver != fileVersion {
			f.Close()
			return nil, fmt.Errorf("persist: %s layout version %d, want %d", path, ver, fileVersion)
		}
		if want := superCRC(magic, ver, names); crc != want {
			f.Close()
			return nil, fmt.Errorf("persist: %s superblock checksum %#x, want %#x: header torn or corrupted", path, crc, want)
		}
		if names == 0 || names > maxNames {
			f.Close()
			return nil, fmt.Errorf("persist: %s advertises %d names, outside [1, %d]", path, names, int64(maxNames))
		}
		fm := int(names)
		if m != 0 && m != fm {
			f.Close()
			return nil, fmt.Errorf("persist: %s holds %d names, caller wants %d", path, fm, m)
		}
		m = fm
		size = fileSize(m)
		if st.Size() != size {
			f.Close()
			return nil, fmt.Errorf("persist: %s is %d bytes, geometry needs %d", path, st.Size(), size)
		}
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: map %s: %w", path, err)
	}
	words := wordsOf(data)
	hdr := words[:hdrWords]
	if fresh {
		// Geometry before magic: if the creator crashes mid-layout the file
		// has no magic, and every later open (serialized behind the flock)
		// rejects it with an error rather than mapping half-written state.
		// The checksum — computed over the final header values — goes in
		// just before the magic, so a validated magic implies a present
		// checksum and the two must agree.
		hdr[hVersion].Store(fileVersion)
		hdr[hNames].Store(uint64(m))
		hdr[hCRC].Store(superCRC(fileMagic, fileVersion, uint64(m)))
		hdr[hMagic].Store(fileMagic)
	}
	// Layout settled; later openers only validate. Everything past this
	// point is the ordinary lock-free shared-word protocol.
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_UN); err != nil {
		syscall.Munmap(data)
		f.Close()
		return nil, fmt.Errorf("persist: unlock %s: %w", path, err)
	}
	bw := (m + 63) / 64
	a := &Arena{
		f:    f,
		data: data,
		hdr:  hdr,
		opt:  opt,
		m:    m,
		// A nonzero attach count at open means some previous holder never
		// closed cleanly (or is still attached) — the sweep handles both.
		dirty: hdr[hAttach].Add(1) != 1,
	}
	a.ns = shm.NewNameSpaceBacked(opt.Label+":names", m, words[hdrWords:hdrWords+bw])
	a.stamps = shm.NewStampsBacked(opt.Label+":lease", m, words[hdrWords+bw:hdrWords+bw+m])
	a.ns.AttachStamps(a.stamps, 0)
	a.sweeper = recovery.NewSweeper(a, recovery.Config{TTL: opt.TTL, Epochs: opt.Epochs, Alive: opt.Alive})
	// On-open sweep: names orphaned by crashed previous holders are back in
	// the pool before the caller's first acquire.
	a.Sweep(shm.NewProc(int(opt.Holder), prng.NewStream(opt.Holder, 0), nil, 0))
	return a, nil
}

// wordsOf reinterprets an mmap'd (hence word-aligned) byte slice as atomic
// words.
func wordsOf(b []byte) []atomic.Uint64 {
	return unsafe.Slice((*atomic.Uint64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// Label implements longlived.Arena.
func (a *Arena) Label() string {
	return fmt.Sprintf("persist(m=%d,holder=%d)", a.m, a.opt.Holder)
}

// Capacity implements longlived.Arena: the flat namespace guarantees m
// concurrent holders.
func (a *Arena) Capacity() int { return a.m }

// NameBound implements longlived.Arena.
func (a *Arena) NameBound() int { return a.m }

// Holder returns the handle's holder identity.
func (a *Arena) Holder() uint64 { return a.opt.Holder }

// Dirty reports whether the file recorded other attachments at open time:
// a crashed previous holder, or just concurrent ones. Diagnostic only —
// recovery never trusts it, the sweep inspects every stamp regardless.
func (a *Arena) Dirty() bool { return a.dirty }

func (a *Arena) stamp() uint64 {
	return shm.PackStamp(a.opt.Holder, a.opt.Epochs.Now())
}

// Acquire implements longlived.Arena: a word-granular scan of the shared
// bitmap from a random start word, stamping every claim with the handle's
// holder and the current epoch.
func (a *Arena) Acquire(p *shm.Proc) int {
	stamp := a.stamp()
	words := a.ns.Words()
	start := p.Rand().Intn(words)
	for pass := 0; pass < a.opt.MaxPasses; pass++ {
		for off := 0; off < words; off++ {
			if n := a.ns.ClaimFirstFreeStamped(p, (start+off)%words, stamp); n >= 0 {
				return n
			}
		}
	}
	return -1
}

// AcquireN implements longlived.Arena: word-granular batch claims.
func (a *Arena) AcquireN(p *shm.Proc, k int, out []int) []int {
	stamp := a.stamp()
	words := a.ns.Words()
	start := p.Rand().Intn(words)
	for pass := 0; k > 0 && pass < a.opt.MaxPasses; pass++ {
		for off := 0; k > 0 && off < words; off++ {
			w := (start + off) % words
			won := a.ns.ClaimUpToStamped(p, w, k, stamp)
			for won != 0 {
				out = append(out, w<<6+bits.TrailingZeros64(won))
				won &= won - 1
				k--
			}
		}
	}
	return out
}

// Release implements longlived.Arena. A release that finds its lease
// already reclaimed (this handle was presumed dead) leaves the name alone;
// the reclaim owns it now.
func (a *Arena) Release(p *shm.Proc, name int) {
	if name < 0 || name >= a.m {
		panic(fmt.Sprintf("persist: name %d outside namespace %d", name, a.m))
	}
	a.ns.FreeStamped(p, name, a.opt.Holder)
}

// ReleaseN implements longlived.Arena.
func (a *Arena) ReleaseN(p *shm.Proc, names []int) {
	for _, n := range names {
		a.Release(p, n)
	}
}

// Touch implements longlived.Arena.
func (a *Arena) Touch(p *shm.Proc, name int) { a.ns.Claimed(p, name) }

// IsHeld implements longlived.Arena.
func (a *Arena) IsHeld(name int) bool { return a.ns.Probe(name) }

// Held implements longlived.Arena.
func (a *Arena) Held() int { return a.ns.CountClaimed() }

// HeldBy counts the names currently leased to the given holder.
func (a *Arena) HeldBy(holder uint64) int { return a.stamps.CountHolder(holder) }

// Probeables implements longlived.Arena.
func (a *Arena) Probeables() map[string]shm.Probeable {
	return map[string]shm.Probeable{a.ns.Label(): a.ns}
}

// Clock implements longlived.Arena.
func (a *Arena) Clock() func() { return nil }

// LeaseDomains implements longlived.Recoverable: the whole namespace is
// one stamped domain.
func (a *Arena) LeaseDomains() []longlived.LeaseDomain {
	return []longlived.LeaseDomain{{
		Base:    0,
		Stamps:  a.stamps,
		IsHeld:  a.ns.Probe,
		Reclaim: func(p *shm.Proc, i int) { a.ns.Free(p, i) },
		Seize:   func(p *shm.Proc, i int) bool { return a.ns.TryClaim(p, i) },
	}}
}

// Heartbeat renews every lease this handle holds to the current epoch,
// returning the renewal count. Call it at least once per TTL.
func (a *Arena) Heartbeat(p *shm.Proc) int {
	return longlived.HeartbeatHolder(a, p, a.opt.Holder, a.opt.Epochs.Now())
}

// Sweep runs one recovery pass over the namespace: TTL-stale leases whose
// holders fail the liveness oracle are reclaimed. Any process attached to
// the file may sweep; concurrent sweeps are safe.
func (a *Arena) Sweep(p *shm.Proc) recovery.Result { return a.sweeper.Sweep(p) }

// Sweeper exposes the handle's sweeper (background reaping, counters).
func (a *Arena) Sweeper() *recovery.Sweeper { return a.sweeper }

// Close detaches from the file. The names this handle still holds stay
// claimed — their leases simply stop being renewed, and any surviving
// process's sweep reclaims them after the TTL; call Release first for an
// immediate return.
func (a *Arena) Close() error {
	if !a.closed.CompareAndSwap(false, true) {
		return nil
	}
	a.hdr[hAttach].Add(^uint64(0))
	if err := syscall.Munmap(a.data); err != nil {
		a.f.Close()
		return fmt.Errorf("persist: unmap: %w", err)
	}
	return a.f.Close()
}
