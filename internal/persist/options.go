package persist

import (
	"os"

	"shmrename/internal/shm"
)

// Options parameterizes Open.
type Options struct {
	// Names is the namespace size m (names 0..m-1). Required when creating
	// the file; when attaching to an existing file it must either be 0 or
	// match the file's geometry.
	Names int
	// TTL is the lease time-to-live in epochs (milliseconds under the
	// default clock). Default 1000.
	TTL uint64
	// Epochs overrides the lease clock. Default shm.WallEpochs{} — the only
	// clock meaningful across processes.
	Epochs shm.EpochSource
	// Holder overrides the handle's holder identity. Default: the process
	// ID. Tests use distinct fake holders to simulate many processes in one.
	Holder uint64
	// Alive overrides the liveness oracle. Default: kill(holder, 0).
	Alive func(holder uint64) bool
	// MaxPasses bounds Acquire's full scans of the bitmap before reporting
	// the namespace full. Default 4.
	MaxPasses int
	// Label prefixes the operation-space labels. Default "persist".
	Label string
}

func (o *Options) fill() {
	if o.TTL == 0 {
		o.TTL = 1000
	}
	if o.Epochs == nil {
		o.Epochs = shm.WallEpochs{}
	}
	if o.Holder == 0 {
		o.Holder = uint64(os.Getpid())
	}
	if o.Alive == nil {
		o.Alive = pidAlive
	}
	if o.MaxPasses <= 0 {
		o.MaxPasses = 4
	}
	if o.Label == "" {
		o.Label = "persist"
	}
}
