//go:build unix

package persist

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// FuzzPersistSuperblock feeds persist.Open arbitrary file bytes — random
// lengths included — and requires a clean error or a successful open: never
// a panic, never a SIGBUS from mapping pages a truncated file does not
// back. The seed corpus walks the validation chain: empty (fresh-create
// path), sub-superblock truncations, wrong magic, wrong version, checksum
// mismatches, and a fully valid 64-name image.
func FuzzPersistSuperblock(f *testing.F) {
	valid := func(names uint64) []byte {
		b := make([]byte, fileSize(int(names)))
		binary.LittleEndian.PutUint64(b[hMagic*8:], fileMagic)
		binary.LittleEndian.PutUint64(b[hVersion*8:], fileVersion)
		binary.LittleEndian.PutUint64(b[hNames*8:], names)
		binary.LittleEndian.PutUint64(b[hCRC*8:], superCRC(fileMagic, fileVersion, names))
		return b
	}
	f.Add([]byte{})
	f.Add([]byte{0x73})
	f.Add(make([]byte, hdrWords*8-1))
	f.Add(make([]byte, hdrWords*8))
	f.Add(valid(64))
	f.Add(valid(64)[:hdrWords*8]) // valid header, body truncated
	tornCRC := valid(64)
	tornCRC[hCRC*8] ^= 0xff
	f.Add(tornCRC)
	hugeNames := valid(64) // checksum-valid absurd count over a small file
	binary.LittleEndian.PutUint64(hugeNames[hNames*8:], 1<<40)
	binary.LittleEndian.PutUint64(hugeNames[hCRC*8:], superCRC(fileMagic, fileVersion, 1<<40))
	f.Add(hugeNames)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "ns")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		opt := Options{Holder: 100, TTL: 1}
		if len(data) == 0 {
			opt.Names = 64 // empty file is the create path; give it a geometry
		}
		a, err := Open(path, opt)
		if err != nil {
			return // clean rejection is the expected outcome for junk
		}
		// A successful open must be over coherent geometry: exercise it.
		p := testProc(1)
		if n := a.Acquire(p); n >= 0 {
			a.Release(p, n)
		}
		a.Sweep(p)
		a.Close()
	})
}
