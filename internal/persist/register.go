//go:build unix

package persist

import (
	"fmt"
	"os"

	"shmrename/internal/registry"
)

func init() {
	registry.Register(registry.Backend{
		Name: "persist",
		// External: each instance materializes an mmap-backed namespace
		// file (created under the temp directory and unlinked immediately —
		// the mapping keeps it alive, nothing is left behind). The file's
		// claims are always lease-stamped, so Leasable holds even without
		// Config.Epochs; the wall clock default makes it non-deterministic.
		Caps: registry.Caps{
			Releasable:  true,
			Batch:       true,
			Leasable:    true,
			External:    true,
			SelfHealing: true,
		},
		New: func(cfg registry.Config) registry.Arena {
			f, err := os.CreateTemp("", "shmrename-registry-*.arena")
			if err != nil {
				panic(fmt.Sprintf("persist: registry temp file: %v", err))
			}
			path := f.Name()
			if err := f.Close(); err != nil {
				panic(fmt.Sprintf("persist: registry temp file: %v", err))
			}
			a, err := Open(path, Options{
				Names:     cfg.Capacity,
				Epochs:    cfg.Epochs,
				Holder:    cfg.Holder,
				Alive:     cfg.Alive,
				MaxPasses: cfg.MaxPasses,
				Label:     cfg.Label,
			})
			os.Remove(path)
			if err != nil {
				panic(fmt.Sprintf("persist: registry open: %v", err))
			}
			return a
		},
	})
}
