//go:build unix

package persist

import (
	"path/filepath"
	"testing"
	"time"

	"shmrename/internal/integrity"
	"shmrename/internal/shm"
)

// TestPersistKillStorm is the E21 cross-process storm: generations of real
// child processes attach to one namespace file, claim names, and are all
// SIGKILLed mid-hold; each following generation's on-open recovery must
// hand the pool back whole. Across the entire storm no name may ever be
// granted to two live holders at once, and after the last generation an
// integrity scrub must find a clean arena — repeated SIGKILL is violent
// but not corrupting, so the scrubber quarantines nothing and a second
// pass is idle.
func TestPersistKillStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("forks real processes")
	}
	const (
		generations = 3
		childrenPer = 2
		perChild    = 8
		capacity    = 64
	)
	path := filepath.Join(t.TempDir(), "ns")
	parent := openT(t, path, Options{Names: capacity, TTL: 1})

	for gen := 0; gen < generations; gen++ {
		kids := make([]*child, childrenPer)
		seen := map[int]bool{}
		for i := range kids {
			kids[i] = spawnChild(t, path, perChild)
			for _, n := range kids[i].names {
				if seen[n] {
					t.Fatalf("generation %d: name %d granted to two live children", gen, n)
				}
				seen[n] = true
				if !parent.IsHeld(n) {
					t.Fatalf("generation %d: child-held name %d invisible to parent", gen, n)
				}
			}
		}
		for _, c := range kids {
			c.kill(t)
		}
		time.Sleep(5 * time.Millisecond) // let the 1ms TTL lapse

		// The next generation is a fresh process attachment: its on-open
		// sweep must recover every killed child's names before first use.
		next, err := Open(path, Options{TTL: 1})
		if err != nil {
			t.Fatalf("generation %d reattach: %v", gen, err)
		}
		next.Sweep(testProc(1000 + gen)) // the open-time sweep may have raced the TTL
		if held := next.Held(); held != 0 {
			t.Fatalf("generation %d: %d names still held after the storm sweep", gen, held)
		}
		got := next.AcquireN(testProc(1000+gen), capacity, nil)
		if len(got) != capacity {
			t.Fatalf("generation %d: pool not whole, %d of %d grantable", gen, len(got), capacity)
		}
		next.ReleaseN(testProc(1000+gen), got)
		if err := next.Close(); err != nil {
			t.Fatalf("generation %d close: %v", gen, err)
		}
	}

	// SIGKILL leaves stale state, never corrupt state: the scrub must find
	// nothing irreparable, quarantine nothing, and reach a fixed point. The
	// wall clock matches the stamps the children wrote.
	s := integrity.NewScrubber(parent, integrity.Config{
		Epochs: shm.WallEpochs{}, TTL: 1, Quarantine: true,
	})
	first := s.Scrub(testProc(2000))
	if first.Unrepaired != 0 || first.Quarantined != 0 {
		t.Fatalf("post-storm scrub found damage: %+v", first)
	}
	second := s.Scrub(testProc(2000))
	if second.Repaired+second.Quarantined+second.Unrepaired != 0 {
		t.Fatalf("post-storm scrub not idle: %+v", second)
	}
	if q := s.QuarantinedNames(); q != 0 {
		t.Fatalf("post-storm scrub quarantined %d names of an uncorrupted arena", q)
	}
}
