//go:build unix

package persist

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"shmrename/internal/prng"
	"shmrename/internal/shm"
)

func testProc(id int) *shm.Proc {
	return shm.NewProc(id, prng.NewStream(42, id), nil, 0)
}

func openT(t *testing.T, path string, opt Options) *Arena {
	t.Helper()
	a, err := Open(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return a
}

// TestPersistCreateAttachReclaim covers the single-process lifecycle: a
// fresh file, claims that survive reopening, and a foreign handle
// reclaiming a dead holder's stale leases.
func TestPersistCreateAttachReclaim(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ns")
	ep := shm.NewCounterEpochs(1)
	dead := func(uint64) bool { return false }
	a := openT(t, path, Options{Names: 128, TTL: 5, Epochs: ep, Holder: 100, Alive: dead})
	p := testProc(1)
	names := a.AcquireN(p, 10, nil)
	if len(names) != 10 {
		t.Fatalf("acquired %d", len(names))
	}
	if a.HeldBy(100) != 10 {
		t.Fatalf("holder 100 owns %d stamps", a.HeldBy(100))
	}
	a.Close()

	// Holder 100 "crashed". A new handle under another identity must see
	// the claims persisted, then reclaim them once stale.
	ep.Advance(10)
	b := openT(t, path, Options{TTL: 50, Epochs: ep, Holder: 200, Alive: dead})
	if b.NameBound() != 128 {
		t.Fatalf("reopened bound %d", b.NameBound())
	}
	if b.Held() != 10 {
		t.Fatalf("reopen sees %d held", b.Held())
	}
	// TTL 50: not yet stale, the open-time sweep must have spared them.
	ep.Advance(100)
	res := b.Sweep(testProc(2))
	if res.Reclaimed != 10 {
		t.Fatalf("sweep %+v, want 10 reclaims", res)
	}
	if b.Held() != 0 || b.HeldBy(100) != 0 {
		t.Fatal("dead holder's names not fully recovered")
	}
	got := b.AcquireN(testProc(2), 128, nil)
	if len(got) != 128 {
		t.Fatalf("pool not whole: %d of 128", len(got))
	}
}

// TestPersistOpenValidation: corrupt or mismatched files are refused, never
// reinterpreted.
func TestPersistOpenValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(filepath.Join(dir, "absent"), Options{}); err == nil {
		t.Fatal("creating without Names must fail")
	}

	garbage := filepath.Join(dir, "garbage")
	if err := os.WriteFile(garbage, make([]byte, 4096), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(garbage, Options{}); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("garbage magic: %v", err)
	}

	good := filepath.Join(dir, "good")
	a := openT(t, good, Options{Names: 64, Holder: 100})
	a.Close()
	if _, err := Open(good, Options{Names: 128, Holder: 100}); err == nil {
		t.Fatal("geometry mismatch must fail")
	}
	if err := os.Truncate(good, fileSize(64)-8); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(good, Options{Holder: 100}); err == nil {
		t.Fatal("truncated file must fail")
	}
}

// TestPersistCreationRace: two openers racing to create the same file with
// disagreeing geometries must serialize behind the creation flock — exactly
// one lays out the superblock, the loser gets a geometry-mismatch error,
// and the file ends up sized for the winner (never shrunk under a live
// mapping).
func TestPersistCreationRace(t *testing.T) {
	sizes := []int{64, 128}
	for trial := 0; trial < 8; trial++ {
		path := filepath.Join(t.TempDir(), "ns")
		arenas := make([]*Arena, len(sizes))
		errs := make([]error, len(sizes))
		var wg sync.WaitGroup
		for i := range sizes {
			wg.Add(1)
			go func() {
				defer wg.Done()
				arenas[i], errs[i] = Open(path, Options{Names: sizes[i], Holder: uint64(100 + i)})
			}()
		}
		wg.Wait()
		won := -1
		for i := range sizes {
			if errs[i] != nil {
				continue
			}
			if won >= 0 {
				t.Fatalf("trial %d: both geometries accepted (%d and %d names)", trial, sizes[won], sizes[i])
			}
			won = i
		}
		if won < 0 {
			t.Fatalf("trial %d: both opens failed: %v / %v", trial, errs[0], errs[1])
		}
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() != fileSize(sizes[won]) {
			t.Fatalf("trial %d: file is %d bytes, winner geometry needs %d", trial, st.Size(), fileSize(sizes[won]))
		}
		// The winner's mapping must be fully usable — under the old race a
		// losing creator could have shrunk the file beneath it.
		a := arenas[won]
		p := testProc(won)
		if n := a.Acquire(p); n < 0 {
			t.Fatalf("trial %d: winner cannot acquire", trial)
		} else {
			a.Release(p, n)
		}
		a.Close()
	}
}

// TestPersistDirtyAndHeartbeat: the attach counter flags concurrent or
// crashed holders, and a heartbeating holder survives a hostile sweep.
func TestPersistDirtyAndHeartbeat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ns")
	ep := shm.NewCounterEpochs(1)
	dead := func(uint64) bool { return false }
	a := openT(t, path, Options{Names: 64, TTL: 5, Epochs: ep, Holder: 100, Alive: dead})
	if a.Dirty() {
		t.Fatal("first open cannot be dirty")
	}
	b := openT(t, path, Options{TTL: 5, Epochs: ep, Holder: 200, Alive: dead})
	if !b.Dirty() {
		t.Fatal("second concurrent open must report dirty")
	}

	pa := testProc(1)
	names := a.AcquireN(pa, 6, nil)
	ep.Advance(100)
	if got := a.Heartbeat(pa); got != 6 {
		t.Fatalf("heartbeat renewed %d", got)
	}
	if res := b.Sweep(testProc(2)); res.Reclaimed != 0 {
		t.Fatalf("sweep stole a heartbeating holder's names: %+v", res)
	}
	for _, n := range names {
		if !a.IsHeld(n) {
			t.Fatalf("name %d lost", n)
		}
	}
	// Silence drops: once the heartbeats stop, the same sweep reclaims.
	ep.Advance(100)
	if res := b.Sweep(testProc(2)); res.Reclaimed != 6 {
		t.Fatalf("post-silence sweep %+v", res)
	}
}

// TestPersistChildHelper is not a test: it is the body re-executed as a
// child OS process by TestPersistCrossProcessKill. It attaches to the
// parent's namespace file, acquires names under its real PID, reports them
// on stdout, and holds them until the parent kills it.
func TestPersistChildHelper(t *testing.T) {
	path := os.Getenv("SHMRENAME_PERSIST_PATH")
	if path == "" {
		t.Skip("re-exec helper, run by TestPersistCrossProcessKill")
	}
	k, err := strconv.Atoi(os.Getenv("SHMRENAME_PERSIST_K"))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := testProc(os.Getpid())
	names := a.AcquireN(p, k, nil)
	if len(names) != k {
		t.Fatalf("child acquired %d of %d", len(names), k)
	}
	fmt.Printf("names %d", os.Getpid())
	for _, n := range names {
		fmt.Printf(" %d", n)
	}
	fmt.Println()
	fmt.Println("holding")
	os.Stdout.Sync()
	time.Sleep(60 * time.Second) // parent SIGKILLs long before this
}

type child struct {
	cmd   *exec.Cmd
	pid   int
	names []int
}

// spawnChild re-executes the test binary as a real child process running
// TestPersistChildHelper and waits until it reports its held names.
func spawnChild(t *testing.T, path string, k int) *child {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestPersistChildHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		"SHMRENAME_PERSIST_PATH="+path,
		fmt.Sprintf("SHMRENAME_PERSIST_K=%d", k),
	)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	c := &child{cmd: cmd, pid: cmd.Process.Pid}
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "names "); ok {
			for i, f := range strings.Fields(rest) {
				v, err := strconv.Atoi(f)
				if err != nil {
					t.Fatalf("child line %q: %v", line, err)
				}
				if i == 0 {
					if v != c.pid {
						t.Fatalf("child reported pid %d, spawned %d", v, c.pid)
					}
					continue
				}
				c.names = append(c.names, v)
			}
		}
		if line == "holding" {
			return c
		}
	}
	t.Fatalf("child %d exited before holding: %v", c.pid, sc.Err())
	return nil
}

// kill SIGKILLs the child mid-hold and reaps it, so kill(pid, 0) stops
// resolving and the liveness oracle sees a dead holder.
func (c *child) kill(t *testing.T) {
	t.Helper()
	if err := c.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	c.cmd.Wait() // reap the zombie; expected to report the kill
}

// TestPersistCrossProcessKill is the end-to-end crash-recovery test: real
// child OS processes attach to the shared file, claim names, and are
// SIGKILLed while holding them. The surviving parent's sweep must reclaim
// exactly the dead children's names — the live child's leases survive via
// the kill(pid, 0) oracle — and the recovered names must be re-grantable.
func TestPersistCrossProcessKill(t *testing.T) {
	if testing.Short() {
		t.Skip("forks real processes")
	}
	path := filepath.Join(t.TempDir(), "ns")
	// TTL 1ms: every lease goes stale almost immediately, so liveness is
	// decided by the kill(pid, 0) oracle — the cross-process contract.
	parent := openT(t, path, Options{Names: 256, TTL: 1})

	const perChild = 8
	victims := []*child{spawnChild(t, path, perChild), spawnChild(t, path, perChild)}
	survivor := spawnChild(t, path, perChild)
	defer survivor.kill(t)

	seen := map[int]bool{}
	for _, c := range append(append([]*child{}, victims...), survivor) {
		if len(c.names) != perChild {
			t.Fatalf("child %d reported %d names", c.pid, len(c.names))
		}
		for _, n := range c.names {
			if seen[n] {
				t.Fatalf("name %d granted twice across processes", n)
			}
			seen[n] = true
			if !parent.IsHeld(n) {
				t.Fatalf("child-held name %d not visible through parent's map", n)
			}
		}
	}

	for _, c := range victims {
		c.kill(t)
	}
	time.Sleep(5 * time.Millisecond) // let the 1ms TTL lapse

	res := parent.Sweep(testProc(0))
	if want := len(victims) * perChild; res.Reclaimed != want {
		t.Fatalf("sweep %+v, want exactly %d reclaims", res, want)
	}
	for _, c := range victims {
		for _, n := range c.names {
			if parent.IsHeld(n) {
				t.Fatalf("victim name %d still held after sweep", n)
			}
		}
	}
	for _, n := range survivor.names {
		if !parent.IsHeld(n) {
			t.Fatalf("survivor's name %d was stolen", n)
		}
	}

	// The reclaimed names must be re-grantable from this process.
	got := parent.AcquireN(testProc(1), len(victims)*perChild, nil)
	if len(got) != len(victims)*perChild {
		t.Fatalf("re-granted %d of %d reclaimed names", len(got), len(victims)*perChild)
	}
}

// TestPersistHardenedOpen covers the torn-header defenses: files shorter
// than the superblock are refused with a descriptive error before any page
// is touched, a corrupted checksum word is detected, and pre-checksum
// layout versions are rejected rather than trusted.
func TestPersistHardenedOpen(t *testing.T) {
	dir := t.TempDir()

	// A file truncated below the superblock (e.g. a crashed external copy).
	for _, n := range []int{1, 8, hdrWords*8 - 1} {
		short := filepath.Join(dir, fmt.Sprintf("short%d", n))
		if err := os.WriteFile(short, make([]byte, n), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Open(short, Options{Holder: 100})
		if err == nil || !strings.Contains(err.Error(), "truncated") {
			t.Fatalf("%d-byte file: %v, want truncation error", n, err)
		}
	}

	// A torn header: flip one byte of the checksum word of a valid file.
	torn := filepath.Join(dir, "torn")
	a := openT(t, torn, Options{Names: 64, Holder: 100})
	a.Close()
	raw, err := os.ReadFile(torn)
	if err != nil {
		t.Fatal(err)
	}
	raw[hCRC*8] ^= 0x40
	if err := os.WriteFile(torn, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(torn, Options{Holder: 100}); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("torn header: %v, want checksum error", err)
	}

	// Same file with a corrupted name count: the checksum catches it before
	// the geometry check could be fooled into a bogus mapping size.
	raw[hCRC*8] ^= 0x40 // restore crc
	raw[hNames*8] = 0xff
	bogus := filepath.Join(dir, "bogus")
	if err := os.WriteFile(bogus, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bogus, Options{Holder: 100}); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt name count: %v, want checksum error", err)
	}

	// A version-1 file (pre-checksum layout) is refused by version, not
	// reinterpreted.
	old := filepath.Join(dir, "old")
	raw2, err := os.ReadFile(torn)
	if err != nil {
		t.Fatal(err)
	}
	for i := hVersion * 8; i < hVersion*8+8; i++ {
		raw2[i] = 0
	}
	raw2[hVersion*8] = 1
	if err := os.WriteFile(old, raw2, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(old, Options{Holder: 100}); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version-1 file: %v, want version error", err)
	}
}
