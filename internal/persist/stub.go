//go:build !unix

// Non-unix stub: the mmap-backed namespace needs MAP_SHARED file mappings
// and kill(pid, 0) liveness probes, both unix-only. Open reports the
// platform gap instead of failing to compile; in-process arenas (packages
// longlived and sharded) are unaffected.
package persist

import "errors"

// Arena is unavailable on this platform.
type Arena struct{}

// Open always fails on non-unix platforms.
func Open(path string, opt Options) (*Arena, error) {
	return nil, errors.New("persist: mmap-backed namespaces require a unix platform")
}

// Close is a no-op on non-unix platforms.
func (a *Arena) Close() error { return nil }

// pidAlive is unavailable without kill(2); report dead so a hypothetical
// sweep never spares a holder it cannot verify.
func pidAlive(holder uint64) bool { return false }
