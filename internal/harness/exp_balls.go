package harness

import (
	"shmrename/internal/balls"
	"shmrename/internal/metrics"
)

// expE1 validates Lemma 3: throwing 2c·log n balls into 2·log n bins
// leaves at most log n empty bins with probability ≥ 1 - 1/n^ℓ.
func expE1() Experiment {
	return Experiment{
		ID:    "E1",
		Title: "Lemma 3: empty bins after 2c·log n balls into 2·log n bins",
		Claim: "Pr[empty > log n] <= 1/n^l for c >= max{ln 2, 2l+2}",
		Run: func(cfg Config) []*metrics.Table {
			tab := metrics.NewTable("E1 Lemma 3 empty bins",
				"c", "n", "bins", "balls", "thresh=log n", "mean empty",
				"E[empty]", "max empty", "failures", "trials", "paper bound")
			tab.Note = "failure = trial with more than log n empty bins"
			trials := cfg.trials() * 300
			for _, c := range []float64{2, 4, 6} {
				for _, n := range cfg.sweep(pow2s(10, 16), pow2s(10, 20)) {
					s := balls.RunLemma3(n, c, trials, cfg.Seed)
					bins := 2 * s.Threshold
					ballCount := int(2 * c * float64(s.Threshold))
					tab.AddRow(c, n, bins, ballCount, s.Threshold,
						s.MeanEmpty, balls.ExpectedEmpty(ballCount, bins),
						s.MaxEmpty, s.Failures, s.Trials,
						balls.Lemma3FailureBound(n, c))
				}
			}
			return []*metrics.Table{tab}
		},
	}
}
