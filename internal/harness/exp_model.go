package harness

import (
	"fmt"
	"sync"

	"shmrename/internal/core"
	"shmrename/internal/metrics"
	"shmrename/internal/prng"
	"shmrename/internal/sched"
	"shmrename/internal/shm"
	"shmrename/internal/taureg"
)

// expE10 exercises the §II.A model: the algorithms must stay correct (and
// their step complexity comparable) under fair, random, contention-seeking
// and starving adaptive adversaries, and under crash failures.
func expE10() Experiment {
	return Experiment{
		ID:    "E10",
		Title: "Adaptive adversaries and crash failures",
		Claim: "correctness under any adaptive schedule; crashed processes take no names",
		Run: func(cfg Config) []*metrics.Table {
			const n = 128
			type algo struct {
				name    string
				factory func() core.Instance
			}
			algos := []algo{
				{"tight-tau", func() core.Instance {
					return core.NewTight(n, core.TightConfig{SelfClocked: true})
				}},
				{"corollary7", func() core.Instance {
					return core.NewCorollary7(n, core.RoundsConfig{Ell: 1}, nil)
				}},
			}
			policies := []func() sched.Policy{
				sched.RoundRobin,
				sched.Random,
				sched.Collider,
				func() sched.Policy { return sched.Starve(0, 1, 2, 3) },
			}
			tab := metrics.NewTable("E10 adversary ablation",
				"algorithm", "policy", "named", "crashed", "steps p50",
				"steps max", "unique ok")
			for _, a := range algos {
				for _, mk := range policies {
					stats, name := runUnderPolicy(a.factory, mk, 0, cfg)
					sum := metrics.Summarize(maxStepsOf(stats))
					tab.AddRow(a.name, name, meanNamed(stats), meanCrashed(stats),
						sum.P50, sum.Max, true)
				}
			}
			crash := metrics.NewTable("E10 crash injection (tight-tau, round-robin)",
				"crash frac", "named mean", "crashed mean", "steps max", "unique ok")
			for _, frac := range []float64{0.1, 0.3, 0.5} {
				stats, _ := runUnderPolicy(algos[0].factory, sched.RoundRobin, frac, cfg)
				sum := metrics.Summarize(maxStepsOf(stats))
				crash.AddRow(frac, meanNamed(stats), meanCrashed(stats), sum.Max, true)
			}
			crash.Note = "every surviving process must hold a distinct name in [0, n)"
			return []*metrics.Table{tab, crash}
		},
	}
}

// runUnderPolicy measures trials under an adaptive policy, optionally
// crashing a fraction of processes at adversarial times. It panics on any
// uniqueness violation.
func runUnderPolicy(factory func() core.Instance, mkPolicy func() sched.Policy, crashFrac float64, cfg Config) ([]runStats, string) {
	var stats []runStats
	var name string
	for t := 0; t < cfg.trials(); t++ {
		inst := factory()
		policy := mkPolicy()
		name = policy.Name()
		if crashFrac > 0 {
			plan := sched.PlanCrashes(inst.N(), crashFrac, 2, prng.New(cfg.Seed+uint64(t)))
			policy = sched.WithCrashes(policy, plan)
			name = policy.Name()
		}
		res := sched.Run(sched.Config{
			N:         inst.N(),
			Seed:      cfg.Seed + uint64(t),
			Policy:    policy,
			Body:      inst.Body,
			AfterStep: inst.Clock(),
			Spaces:    inst.Probeables(),
		})
		if err := sched.VerifyUnique(res, inst.M()); err != nil {
			panic(fmt.Sprintf("E10 %s trial %d: %v", name, t, err))
		}
		crashed := sched.CountStatus(res, sched.Crashed)
		named := sched.CountStatus(res, sched.Named)
		if named+crashed+sched.CountStatus(res, sched.Unnamed) != inst.N() {
			panic("E10: results do not partition the processes")
		}
		stats = append(stats, runStats{
			maxSteps: sched.MaxSteps(res),
			named:    named,
			crashed:  crashed,
		})
	}
	return stats, name
}

func meanNamed(stats []runStats) float64 {
	t := 0
	for _, s := range stats {
		t += s.named
	}
	return float64(t) / float64(len(stats))
}

func meanCrashed(stats []runStats) float64 {
	t := 0
	for _, s := range stats {
		t += s.crashed
	}
	return float64(t) / float64(len(stats))
}

// expE11 stress-tests the §II.C counting device under real parallelism:
// the threshold must never be exceeded, winners must be distinct, and
// every request must resolve.
func expE11() Experiment {
	return Experiment{
		ID:    "E11",
		Title: "Counting device stress (§II.C)",
		Claim: "never more than tau confirmed; winners distinct; all requests resolve",
		Run: func(cfg Config) []*metrics.Table {
			tab := metrics.NewTable("E11 counting device stress",
				"width", "tau", "procs", "trials", "violations",
				"winners==tau", "mean cycles", "unresolved")
			type point struct{ width, tau, procs int }
			points := []point{
				{16, 4, 32}, {16, 8, 64}, {32, 16, 128},
				{64, 16, 256}, {64, 32, 512}, {64, 1, 64},
			}
			for _, pt := range points {
				violations, unresolved, saturated := 0, 0, 0
				var cycles int64
				for tr := 0; tr < cfg.trials(); tr++ {
					v, u, winners, cyc := stressDevice(pt.width, pt.tau, pt.procs, cfg.Seed+uint64(tr))
					violations += v
					unresolved += u
					if winners == pt.tau {
						saturated++
					}
					cycles += cyc
				}
				tab.AddRow(pt.width, pt.tau, pt.procs, cfg.trials(), violations,
					saturated == cfg.trials(),
					float64(cycles)/float64(cfg.trials()), unresolved)
			}
			tab.Note = "violations and unresolved must be 0 in every row"
			return []*metrics.Table{tab}
		},
	}
}

// stressDevice hammers one self-clocked device with procs goroutines and
// reports (threshold violations, unresolved requests, distinct winners,
// cycles run).
func stressDevice(width, tau, procs int, seed uint64) (violations, unresolved, winners int, cycles int64) {
	dev := taureg.NewDevice("stress", width, tau, true)
	won := make([]int, procs)
	var wg sync.WaitGroup
	for pid := 0; pid < procs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			p := shm.NewProc(pid, prng.NewStream(seed, pid), nil, 1<<20)
			r := p.Rand()
			won[pid] = -1
			for attempt := 0; attempt < 4*width; attempt++ {
				b := r.Intn(width)
				switch dev.AcquireBit(p, b) {
				case taureg.Won:
					won[pid] = b
					return
				case taureg.Lost:
					// try another bit
				default:
					unresolved++ // AcquireBit never returns Pending
					return
				}
			}
		}(pid)
	}
	wg.Wait()
	holders := map[int]int{}
	for pid, b := range won {
		if b < 0 {
			continue
		}
		if _, dup := holders[b]; dup {
			violations++
		}
		holders[b] = pid
	}
	winners = len(holders)
	if dev.ConfirmedCount() > tau || winners > tau {
		violations++
	}
	return violations, unresolved, winners, dev.Cycles()
}
