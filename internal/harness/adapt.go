package harness

import (
	"fmt"

	"shmrename/internal/longlived"
	"shmrename/internal/registry"
)

// elasticEnvelope is the residency ceiling a healthy elastic ladder may
// reach after churn that peaked at `peak` simultaneous holders on a
// capacity-n arena, under the default policy (Base 64, GrowAt 0.75). A
// level is appended when occupancy crosses GrowAt of the resident prefix,
// so growth stops at the first prefix whose trip clears the peak; the
// failed-pass retry only ever fires with the resident prefix genuinely
// full (occupancy == prefix <= peak), which the same loop covers. The
// full ladder is the absolute ceiling either way.
func elasticEnvelope(capacity int, peak int64) int64 {
	const base, growAt = 64, 0.75
	var sizes []int
	for s := base; s < capacity; s *= 2 {
		sizes = append(sizes, s)
	}
	sizes = append(sizes, capacity)
	prefix := int64(sizes[0])
	for li := 1; li < len(sizes) && float64(prefix)*growAt <= float64(peak); li++ {
		prefix += int64(sizes[li])
	}
	return prefix
}

// assertElasticAdaptive is the per-trial adaptivity gate of the churn
// experiments: a backend that reports registry.Elastic must have kept both
// its resident capacity and every issued name within the envelope of the
// trial's peak holder count — growth proportional to observed contention,
// never to provisioning. The grow trigger watches live claims, and a claim
// exists from the moment its CAS lands — before the worker's body registers
// the name with the monitor — so peak claims can ride up to `inflight`
// above the registered peak (one claim per worker per un-registered
// acquire: k for single-name churn, k*batch for batch churn). Fixed
// backends pass through untouched.
func assertElasticAdaptive(exp, name string, capacity, inflight int, arena any, mon *longlived.Monitor) {
	el, ok := arena.(registry.Elastic)
	if !ok {
		return
	}
	env := elasticEnvelope(capacity, mon.MaxActive()+int64(inflight))
	if got := int64(el.PeakCapacity()); got > env {
		panic(fmt.Sprintf("%s %s n=%d: peak capacity %d above the %d-name envelope of %d peak holders",
			exp, name, capacity, got, env, mon.MaxActive()))
	}
	if m := mon.MaxName(); m >= env {
		panic(fmt.Sprintf("%s %s n=%d: issued name %d outside the %d-name envelope of %d peak holders",
			exp, name, capacity, m, env, mon.MaxActive()))
	}
}
