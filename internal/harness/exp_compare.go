package harness

import (
	"shmrename/internal/baseline"
	"shmrename/internal/core"
	"shmrename/internal/metrics"
	"shmrename/internal/sortnet"
	"shmrename/internal/tas"
)

// expE8 reruns the paper's motivating comparison: the τ-register tight
// renamer against the sorting-network construction of [7] (Batcher
// instantiation), folklore uniform probing, and the deterministic linear
// scan. The shape to reproduce: τ-register wins with O(log n) against
// O(log² n) for the network and Θ(n) for the others.
func expE8() Experiment {
	return Experiment{
		ID:    "E8",
		Title: "Baseline comparison: who wins, by what factor",
		Claim: "tau-register O(log n) < Batcher O(log^2 n) << uniform/linear Theta(n)",
		Run: func(cfg Config) []*metrics.Table {
			type algo struct {
				name    string
				factory func(n int) core.Instance
			}
			algos := []algo{
				{"tight-tau", func(n int) core.Instance {
					return core.NewTight(n, core.TightConfig{SelfClocked: true})
				}},
				{"sortnet-batcher", func(n int) core.Instance {
					return sortnet.NewRenamerN(n)
				}},
				{"uniform-probe", func(n int) core.Instance {
					return baseline.NewUniformProbe(n)
				}},
				{"segmented-probe", func(n int) core.Instance {
					return baseline.NewSegmentedProbe(n, 0)
				}},
				{"linear-scan", func(n int) core.Instance {
					return baseline.NewLinearScan(n)
				}},
			}
			tab := metrics.NewTable("E8 step complexity by algorithm",
				"n", "algorithm", "steps p50", "steps p90", "steps max",
				"steps mean", "log2 n", "batcher depth")
			ns := cfg.sweep(pow2s(6, 11), pow2s(6, 13))
			meanByAlgo := make(map[string][]float64)
			nsByAlgo := make(map[string][]int)
			for _, n := range ns {
				depth := sortnet.OddEvenMergeSort(sortnet.NextPow2(n)).Depth()
				for _, a := range algos {
					// The deterministic scan simulates Θ(n²) total steps;
					// cap it so full sweeps stay tractable. Its growth is
					// exactly linear anyway (R²=1 on the smaller points).
					if a.name == "linear-scan" && n > 1<<12 {
						continue
					}
					stats := measure(func() core.Instance { return a.factory(n) }, cfg)
					sum := metrics.Summarize(maxStepsOf(stats))
					meanByAlgo[a.name] = append(meanByAlgo[a.name], sum.Mean)
					nsByAlgo[a.name] = append(nsByAlgo[a.name], n)
					tab.AddRow(n, a.name, sum.P50, sum.P90, sum.Max, sum.Mean,
						core.CeilLog2(n), depth)
				}
			}
			fits := metrics.NewTable("E8 growth fits (mean max-steps)",
				"algorithm", "vs log2 n", "vs (log2 n)^2", "vs n")
			for _, a := range algos {
				y := meanByAlgo[a.name]
				xs := nsByAlgo[a.name]
				fits.AddRow(a.name,
					fitRow(metrics.FitAgainst(xs, y, metrics.ShapeLog), "log2 n"),
					fitRow(metrics.FitAgainst(xs, y, metrics.ShapeLog2Sq), "(log2 n)^2"),
					fitRow(metrics.FitAgainst(xs, y, metrics.ShapeLinear), "n"))
			}
			return []*metrics.Table{tab, fits}
		},
	}
}

// expE9 quantifies the related-work remark that implementing test-and-set
// from read/write registers multiplies the step complexity: Lemma 6 on
// hardware TAS versus the tournament software TAS of package tas.
func expE9() Experiment {
	return Experiment{
		ID:    "E9",
		Title: "Hardware vs software test-and-set (Lemma 6 workload)",
		Claim: "software TAS multiplies step complexity (Theta(log n) for the tournament; [12] gets O(log* k))",
		Run: func(cfg Config) []*metrics.Table {
			tab := metrics.NewTable("E9 TAS implementation ablation",
				"n", "hw steps mean", "sw steps mean", "overhead factor",
				"log2 n", "hw survivors max", "sw survivors max")
			for _, n := range cfg.sweep(pow2s(6, 9), pow2s(6, 10)) {
				hw := measure(func() core.Instance {
					return core.NewLooseRounds(n, core.RoundsConfig{Ell: 1})
				}, cfg)
				sw := measure(func() core.Instance {
					space := tas.NewRWSpace("rwtas", n, n)
					return core.NewLooseRoundsOn(n, core.RoundsConfig{Ell: 1}, space)
				}, cfg)
				hwSteps := metrics.Summarize(maxStepsOf(hw))
				swSteps := metrics.Summarize(maxStepsOf(sw))
				factor := 0.0
				if hwSteps.Mean > 0 {
					factor = swSteps.Mean / hwSteps.Mean
				}
				tab.AddRow(n, hwSteps.Mean, swSteps.Mean, factor,
					core.CeilLog2(n),
					metrics.Summarize(survivorsOf(hw)).Max,
					metrics.Summarize(survivorsOf(sw)).Max)
			}
			return []*metrics.Table{tab}
		},
	}
}
