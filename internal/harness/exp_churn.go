package harness

import (
	"fmt"

	"shmrename/internal/longlived"
	"shmrename/internal/metrics"
	"shmrename/internal/registry"
	"shmrename/internal/sched"
)

// e15Backends enumerates the registry for the churn sweep: every
// deterministic, releasable, directly churnable backend — no caching
// layers (they may report full below capacity while names sit parked in
// other workers' slots, breaking the every-worker-drains invariant) and no
// external OS-backed arenas (native-only). A backend that registers with
// those flags joins the E15 table with no change here; the enumeration
// currently yields level-array, tau-longlived, sharded, and
// exclusive-selection, a superset of the canonical
// longlived.ChurnBackends pair whose (backend, n) rows BENCH_2.json
// tracks.
func e15Backends() []registry.Backend {
	var out []registry.Backend
	for _, b := range registry.All() {
		if b.Caps.Deterministic && b.Caps.Releasable && !b.Caps.Cached && !b.Caps.External {
			out = append(out, b)
		}
	}
	return out
}

// expE15 exercises the long-lived arena (internal/longlived) under
// sustained churn: k of n potential clients are active at a time, each
// repeatedly acquiring a name, holding it for a seeded-random number of
// steps, and releasing it. The one-shot experiments E1-E14 cannot express
// this scenario — names there are claimed once and kept forever.
//
// Two properties are measured per (backend, n, k) cell:
//
//   - adaptivity: the largest name ever issued relative to the peak number
//     of simultaneous holders (the level arena should keep the ratio a
//     small constant; the τ arena issues names across all device blocks);
//   - amortized cost: mean shared-memory steps per successful acquire.
//
// Every trial additionally asserts the long-lived safety property (no two
// live holders ever share a name, via longlived.Monitor) and that all
// names return to the pool once the churn drains.
func expE15() Experiment {
	return Experiment{
		ID:    "E15",
		Title: "Long-lived churn: level-array vs tau-register arena",
		Claim: "k churning holders on a capacity-n arena: unique live names, max issued name tracks k (level arena), bounded steps/acquire",
		Run: func(cfg Config) []*metrics.Table {
			tab := metrics.NewTable("E15 acquire/release churn",
				"backend", "n", "k", "cycles", "peak active", "max name+1",
				"name/active", "steps/acquire", "acquires")
			churn := longlived.DefaultChurn
			for _, b := range e15Backends() {
				for _, n := range cfg.sweep(pow2s(8, 10), pow2s(8, 13)) {
					for _, k := range []int{n / 16, n / 4, n} {
						if k < 1 {
							continue
						}
						var maxActive, maxName, acquires int64
						var stepsPerAcq float64
						for t := 0; t < cfg.trials(); t++ {
							arena := b.New(registry.Config{Capacity: n})
							mon := longlived.NewMonitor(arena.NameBound())
							res := sched.Run(sched.Config{
								N:         k,
								Seed:      cfg.Seed + uint64(t),
								Fast:      sched.FastFIFO,
								Body:      longlived.ChurnBody(arena, mon, churn),
								AfterStep: arena.Clock(),
							})
							if err := mon.Err(); err != nil {
								panic(fmt.Sprintf("E15 %s n=%d k=%d trial %d: %v", b.Name, n, k, t, err))
							}
							if got := sched.CountStatus(res, sched.Unnamed); got != k {
								panic(fmt.Sprintf("E15 %s n=%d k=%d trial %d: %d of %d workers drained", b.Name, n, k, t, got, k))
							}
							if held := arena.Held(); held != 0 {
								panic(fmt.Sprintf("E15 %s n=%d k=%d trial %d: %d names still held after drain", b.Name, n, k, t, held))
							}
							if b.Caps.Elastic {
								assertElasticAdaptive("E15", b.Name, n, k, arena, mon)
							}
							if a := mon.MaxActive(); a > maxActive {
								maxActive = a
							}
							if m := mon.MaxName(); m > maxName {
								maxName = m
							}
							acquires += mon.Acquires()
							stepsPerAcq += mon.StepsPerAcquire()
						}
						tab.AddRow(b.Name, n, k, churn.Cycles, maxActive, maxName+1,
							float64(maxName+1)/float64(maxActive),
							stepsPerAcq/float64(cfg.trials()), acquires)
					}
				}
			}
			tab.Note = "name/active ~ O(1) for the level arena is the LevelArray adaptivity property"
			return []*metrics.Table{tab}
		},
	}
}
