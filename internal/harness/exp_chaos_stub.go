//go:build !unix

package harness

import "shmrename/internal/metrics"

// e21FileTable is the on-disk half of E21; mmap-backed namespace files are
// unix-only, so other platforms run the in-process matrix alone.
func e21FileTable(Config) *metrics.Table { return nil }
