package harness

import (
	"fmt"

	"shmrename/internal/core"
	"shmrename/internal/metrics"
	"shmrename/internal/sched"
)

// expE2 validates Theorem 5: tight renaming in O(log n) steps w.h.p.
func expE2() Experiment {
	return Experiment{
		ID:    "E2",
		Title: "Theorem 5: tight renaming step complexity",
		Claim: "n processes -> n names; max steps = O(log n) w.h.p.",
		Run: func(cfg Config) []*metrics.Table {
			tab := metrics.NewTable("E2 tight renaming step complexity",
				"n", "log2 n", "rounds R", "steps p50", "steps p90",
				"steps max", "steps mean", "all named", "fallback frac")
			ns := cfg.sweep(pow2s(7, 12), pow2s(7, 16))
			var meanMax []float64
			for _, n := range ns {
				var fallback, total int64
				stats := make([]runStats, 0, cfg.trials())
				rounds := 0
				for t := 0; t < cfg.trials(); t++ {
					inst := core.NewTight(n, core.TightConfig{SelfClocked: true})
					rounds = inst.Geometry().Rounds()
					res := sched.Run(sched.Config{
						N: n, Seed: cfg.Seed + uint64(t), Fast: sched.FastFIFO, Body: inst.Body,
					})
					if err := sched.VerifyUnique(res, n); err != nil {
						panic(fmt.Sprintf("E2 trial %d: %v", t, err))
					}
					st := inst.Stats()
					fallback += st.Fallback
					total += int64(n)
					stats = append(stats, runStats{
						maxSteps: sched.MaxSteps(res),
						named:    sched.CountStatus(res, sched.Named),
					})
				}
				sum := metrics.Summarize(maxStepsOf(stats))
				meanMax = append(meanMax, sum.Mean)
				tab.AddRow(n, core.CeilLog2(n), rounds, sum.P50, sum.P90,
					sum.Max, sum.Mean, allNamed(stats, n),
					float64(fallback)/float64(total))
			}
			logFit := metrics.FitAgainst(ns, meanMax, metrics.ShapeLog)
			linFit := metrics.FitAgainst(ns, meanMax, metrics.ShapeLinear)
			fit := metrics.NewTable("E2 fit of mean max-steps", "shape", "fit")
			fit.AddRow("log2 n", fitRow(logFit, "log2 n"))
			fit.AddRow("n", fitRow(linFit, "n"))
			fit.Note = "Theorem 5 predicts the log2-n fit to dominate (R2 -> 1)"
			return []*metrics.Table{tab, fit}
		},
	}
}

// expE3 validates Theorem 5's space bound: O(n) extra TAS bits.
func expE3() Experiment {
	return Experiment{
		ID:    "E3",
		Title: "Theorem 5: auxiliary space",
		Claim: "the tau-register array uses O(n) extra space (~2n TAS bits)",
		Run: func(cfg Config) []*metrics.Table {
			tab := metrics.NewTable("E3 auxiliary space",
				"n", "devices", "width 2log n", "taux bits", "bits/n",
				"names", "util-reg bits", "rounds R")
			for _, n := range cfg.sweep(pow2s(7, 16), pow2s(7, 20)) {
				g := core.NewGeometry(n, 2, core.Corrected)
				// The counting device also carries 2 log n + 1 utility
				// registers of 2 log n bits each (§II.C), the "significant
				// hardware overhead of O(log n) additional registers".
				utilBits := g.NumDevices() * (g.Width + 1) * g.Width
				tab.AddRow(n, g.NumDevices(), g.Width, g.TotalBits(),
					float64(g.TotalBits())/float64(n), g.TotalNames(),
					utilBits, g.Rounds())
			}
			return []*metrics.Table{tab}
		},
	}
}

// expE12 contrasts the corrected geometry with the paper-literal cluster
// sizes, demonstrating the Definition 2 inconsistency (ALGORITHMS.md §3).
func expE12() Experiment {
	return Experiment{
		ID:    "E12",
		Title: "Geometry reconciliation: corrected vs paper-literal clusters",
		Claim: "literal c_i = n/(2c)^i clusters can name only ~n/(2(2c-1)) processes",
		Run: func(cfg Config) []*metrics.Table {
			tab := metrics.NewTable("E12 geometry comparison",
				"n", "geometry", "cluster capacity", "cluster wins frac",
				"fallback frac", "steps p50", "steps max", "all named")
			// The paper-literal geometry degrades to Θ(n) steps (that is
			// the finding), so its full sweep stays at 2^12 to keep the
			// simulated Θ(n²) total work tractable.
			for _, n := range cfg.sweep(pow2s(8, 11), pow2s(8, 12)) {
				for _, kind := range []core.GeometryKind{core.Corrected, core.PaperLiteral} {
					var clusterWins, fallbackWins int64
					var capFrac float64
					stats := make([]runStats, 0, cfg.trials())
					for t := 0; t < cfg.trials(); t++ {
						inst := core.NewTight(n, core.TightConfig{
							Geometry: kind, SelfClocked: true,
						})
						capFrac = float64(inst.Geometry().ClusterNames) / float64(n)
						res := sched.Run(sched.Config{
							N: n, Seed: cfg.Seed + uint64(t), Fast: sched.FastFIFO, Body: inst.Body,
						})
						if err := sched.VerifyUnique(res, n); err != nil {
							panic(fmt.Sprintf("E12 %v trial %d: %v", kind, t, err))
						}
						st := inst.Stats()
						clusterWins += st.ClusterTotal
						fallbackWins += st.Fallback
						stats = append(stats, runStats{
							maxSteps: sched.MaxSteps(res),
							named:    sched.CountStatus(res, sched.Named),
						})
					}
					total := float64(clusterWins + fallbackWins)
					sum := metrics.Summarize(maxStepsOf(stats))
					tab.AddRow(n, kind.String(), capFrac,
						float64(clusterWins)/total, float64(fallbackWins)/total,
						sum.P50, sum.Max, allNamed(stats, n))
				}
			}
			return []*metrics.Table{tab}
		},
	}
}
