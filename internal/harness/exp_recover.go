package harness

import (
	"fmt"

	"shmrename/internal/longlived"
	"shmrename/internal/metrics"
	"shmrename/internal/prng"
	"shmrename/internal/recovery"
	"shmrename/internal/registry"
	"shmrename/internal/shm"
)

// e18TTL is the lease TTL of the fault-injection workload, in counter
// epochs. Every recovery phase advances the clock past it, so staleness is
// decided deterministically by the injected schedule, never by wall time.
const e18TTL = 8

// e18Backends enumerates the registry for fault injection: every leasable
// backend that the in-process crash machinery can drive — no external
// OS-backed arenas (they run their own on-open recovery against real
// processes) and no caching layers (a parked block's stamps belong to the
// worker that leased it, so the survivor heartbeat-count oracle does not
// apply). The τ arena's documented device-bit leak is read off
// Caps.LeaksOnCrash instead of a hand-maintained flag.
func e18Backends() []registry.Backend {
	var out []registry.Backend
	for _, b := range registry.All() {
		if b.Caps.Leasable && !b.Caps.External && !b.Caps.Cached {
			out = append(out, b)
		}
	}
	return out
}

// e18Modes are the injected fault shapes, drawn per worker per round.
const (
	e18Survive    = iota // heartbeats through the sweeps, must keep its names
	e18Abandon           // stops dead holding names: stale client stamps
	e18PrePublish        // crashes after winning a bit, before its stamp: orphan
	e18MidRelease        // crashes after retiring a stamp, before the bit clear
	e18NumModes
)

// e18Counts aggregates one (backend, n) cell across trials and rounds.
type e18Counts struct {
	modes     [e18NumModes]int
	planted   int // suspect marks planted to simulate a crashed reaper
	adopted   int
	reclaimed int
	resumed   int
	leaked    int // τ device bits lost to documented crash windows
	sweepOps  int64
}

// e18Worker is one churn client of a fault round.
type e18Worker struct {
	p      *shm.Proc
	holder uint64
	names  []int
	mode   int
}

// expE18 is the fault-injection experiment: seeded crashes at every window
// of the lease protocol — workers abandoned mid-hold, killed between claim
// bit and stamp publish, killed between stamp retire and bit clear, and a
// reaper killed between suspect mark and reclaim — across all three
// lease-enabled backends. Each round then runs the recovery sweep twice
// (adopt, then reclaim) and verifies the robustness contract directly:
//
//   - no lost name: surviving heartbeating workers keep every name, and
//     every crashed holder's name is back in the pool after two sweeps
//     (bounded reclaim latency);
//   - no double grant: ownership is tracked across the whole trial, and a
//     third sweep must find nothing further to do (stability);
//   - accounting: reclaims + resumes equal the debris names exactly, and
//     adoptions bracket the injected orphan shapes (an orphan bit over a
//     stale tombstone from an earlier reclaim is swept directly, without
//     the adoption grace period).
//
// The τ arena's documented leak — crashes inside the two windows lose the
// holder's counting-device bit, names are still recovered — is measured
// rather than hidden: the final pool check acquires capacity minus the
// leaked bits, and the table reports the leak count.
func expE18() Experiment {
	return Experiment{
		ID:    "E18",
		Title: "Fault injection: lease recovery under seeded crashes",
		Claim: "crashes at every stamp-protocol window: survivors keep names, debris reclaimed in <= 2 sweeps, adoptions and reclaims account exactly",
		Run: func(cfg Config) []*metrics.Table {
			tab := metrics.NewTable("E18 seeded crash recovery",
				"backend", "n", "workers", "rounds", "survived", "abandoned",
				"pre-publish", "mid-release", "reaper crashes", "adopted",
				"reclaimed", "resumed", "leaked tau bits", "sweep steps/name")
			const rounds, per = 3, 2
			for _, b := range e18Backends() {
				for _, n := range cfg.sweep([]int{128, 256}, pow2s(7, 11)) {
					k := n / 8
					var c e18Counts
					for t := 0; t < cfg.trials(); t++ {
						e18Trial(&c, b, n, k, rounds, per, cfg.Seed+uint64(t))
					}
					recovered := c.reclaimed + c.resumed
					perName := 0.0
					if recovered > 0 {
						perName = float64(c.sweepOps) / float64(recovered)
					}
					tab.AddRow(b.Name, n, k, rounds,
						c.modes[e18Survive], c.modes[e18Abandon],
						c.modes[e18PrePublish], c.modes[e18MidRelease],
						c.planted, c.adopted, c.reclaimed, c.resumed,
						c.leaked, perName)
				}
			}
			tab.Note = "every row passed: survivors intact, debris swept in 2 passes, third sweep idle, pool whole (minus leaked tau bits)"
			return []*metrics.Table{tab}
		},
	}
}

// e18Trial runs one seeded trial: rounds of inject-crash-recover-verify,
// then the pool-whole check.
func e18Trial(c *e18Counts, b registry.Backend, n, k, rounds, per int, seed uint64) {
	ep := shm.NewCounterEpochs(1)
	// Epochs alone (no pinned Holder) keeps the per-worker default holder
	// identities the survivor/debris oracles key on.
	arena, ok := b.New(registry.Config{Capacity: n, MaxPasses: 8, Epochs: ep}).(longlived.Recoverable)
	if !ok {
		panic(fmt.Sprintf("E18 %s: registered Leasable but not longlived.Recoverable", b.Name))
	}
	sw := recovery.NewSweeper(arena, recovery.Config{TTL: e18TTL, Epochs: ep})
	reaper := shm.NewProc(1<<20, prng.NewStream(seed, 1<<20), nil, 0)
	r := prng.NewStream(seed, 0xE18)
	// owner tracks every name's holder pid across the trial (0 free,
	// -1 crash debris awaiting recovery): the no-double-grant oracle.
	owner := make([]int, arena.NameBound())
	claim := func(w *e18Worker) int {
		name := arena.Acquire(w.p)
		if name < 0 {
			panic(fmt.Sprintf("E18 %s n=%d: acquire failed below capacity", b.Name, n))
		}
		if owner[name] != 0 {
			panic(fmt.Sprintf("E18 %s n=%d: name %d granted to %d while owned by %d",
				b.Name, n, name, w.p.ID(), owner[name]))
		}
		owner[name] = w.p.ID()
		w.names = append(w.names, name)
		return name
	}
	leakedTrial := 0
	for round := 0; round < rounds; round++ {
		workers := make([]*e18Worker, k)
		for i := range workers {
			pid := 1 + round*k + i
			workers[i] = &e18Worker{
				p:      shm.NewProc(pid, prng.NewStream(seed, pid), nil, 0),
				holder: uint64(pid)%shm.MaxHolder + 1,
			}
			for j := 0; j < per; j++ {
				claim(workers[i])
			}
		}
		// Seeded fault injection. Worker 0 always survives so every round
		// exercises the no-lost-name side too.
		var debris []int
		var stale []int // debris still carrying a live client stamp
		for i, w := range workers {
			w.mode = e18Survive
			if i > 0 {
				w.mode = r.Intn(e18NumModes)
			}
			c.modes[w.mode]++
			var wDebris []int
			switch w.mode {
			case e18Abandon:
				// The worker stops dead: names keep their client stamps,
				// which go stale once the clock passes the TTL.
				wDebris = w.names
				stale = append(stale, w.names...)
			case e18PrePublish:
				// The crash unwinds inside the acquire, before claim()
				// records anything: the orphan bit is debris alongside the
				// worker's regularly stamped names.
				orphan := e18Crash(arena, w, shm.CrashPrePublish, func() { claim(w) })
				wDebris = append([]int{orphan}, w.names...)
				stale = append(stale, w.names...)
				if b.Caps.LeaksOnCrash {
					leakedTrial++ // the device bit was never recorded
				}
			case e18MidRelease:
				victim := w.names[0]
				e18Crash(arena, w, shm.CrashMidRelease, func() { arena.Release(w.p, victim) })
				wDebris = w.names
				stale = append(stale, w.names[1:]...) // victim's stamp is gone
				if b.Caps.LeaksOnCrash {
					leakedTrial++ // swapped out of bitOf, never released
				}
			}
			for _, name := range wDebris {
				owner[name] = -1
			}
			debris = append(debris, wDebris...)
		}
		// One reaper crash per round when there is stale debris: a suspect
		// mark planted and never finished, exactly what a reaper dying
		// between BeginReclaim and Reclaim leaves behind.
		if len(stale) > 0 {
			name := stale[r.Intn(len(stale))]
			d, local := e18Domain(arena, name)
			if d.Stamps.BeginReclaim(local, d.Stamps.Load(local), ep.Now()) {
				c.planted++
			}
		}
		// Recovery: two sweep passes with the clock advanced past the TTL
		// before each, survivors heartbeating in between. Pass one adopts
		// orphans and reclaims stale client stamps; pass two reclaims the
		// adopted orphans once their grace lapses.
		var res [3]recovery.Result
		for pass := 0; pass < 2; pass++ {
			ep.Advance(e18TTL + 1)
			for _, w := range workers {
				if w.mode != e18Survive {
					continue
				}
				if got := longlived.HeartbeatHolder(arena, w.p, w.holder, ep.Now()); got != len(w.names) {
					panic(fmt.Sprintf("E18 %s n=%d: survivor %d renewed %d of %d leases",
						b.Name, n, w.p.ID(), got, len(w.names)))
				}
			}
			before := reaper.Steps()
			res[pass] = sw.Sweep(reaper)
			c.sweepOps += reaper.Steps() - before
		}
		// Bounded reclaim latency: two passes recovered every debris name.
		for _, name := range debris {
			if arena.IsHeld(name) {
				panic(fmt.Sprintf("E18 %s n=%d round %d: debris name %d still held after 2 sweeps",
					b.Name, n, round, name))
			}
			owner[name] = 0
		}
		// No lost name: every survivor still holds everything it acquired.
		for _, w := range workers {
			if w.mode != e18Survive {
				continue
			}
			for _, name := range w.names {
				if !arena.IsHeld(name) || owner[name] != w.p.ID() {
					panic(fmt.Sprintf("E18 %s n=%d round %d: survivor %d lost name %d",
						b.Name, n, round, w.p.ID(), name))
				}
			}
			arena.ReleaseN(w.p, w.names)
			for _, name := range w.names {
				owner[name] = 0
			}
		}
		if held := arena.Held(); held != 0 {
			panic(fmt.Sprintf("E18 %s n=%d round %d: %d names held after drain", b.Name, n, round, held))
		}
		// Stability: a third sweep over the drained arena must be pure scan.
		res[2] = sw.Sweep(reaper)
		if res[2].Adopted+res[2].Reclaimed+res[2].Resumed != 0 {
			panic(fmt.Sprintf("E18 %s n=%d round %d: post-drain sweep not idle: %+v",
				b.Name, n, round, res[2]))
		}
		// Exact accounting: adoptions match the injected orphan shapes, and
		// reclaims + resumes match the debris names, nothing more or less.
		adopted := res[0].Adopted + res[1].Adopted
		recovered := res[0].Reclaimed + res[0].Resumed + res[1].Reclaimed + res[1].Resumed
		if recovered != len(debris) {
			panic(fmt.Sprintf("E18 %s n=%d round %d: recovered %d of %d debris names",
				b.Name, n, round, recovered, len(debris)))
		}
		c.adopted += adopted
		c.reclaimed += res[0].Reclaimed + res[1].Reclaimed
		c.resumed += res[0].Resumed + res[1].Resumed
	}
	// Pool whole: the full capacity — minus documented τ device-bit leaks —
	// is grantable after all the injected carnage.
	p := shm.NewProc(1<<21, prng.NewStream(seed, 1<<21), nil, 0)
	want := arena.Capacity() - leakedTrial
	names := arena.AcquireN(p, want, make([]int, 0, want))
	if len(names) != want {
		panic(fmt.Sprintf("E18 %s n=%d: pool not whole: %d of %d grantable (leaked %d)",
			b.Name, n, len(names), want, leakedTrial))
	}
	arena.ReleaseN(p, names)
	c.leaked += leakedTrial
}

// e18Crash arms a one-shot crash hook for the worker at the given point on
// every lease domain, runs op expecting it to unwind with shm.LeaseCrash,
// and returns the name the hook fired on.
func e18Crash(a longlived.Recoverable, w *e18Worker, point shm.CrashPoint, op func()) int {
	fired := -1
	armed := true
	for _, d := range a.LeaseDomains() {
		base := d.Base
		d.Stamps.SetCrashHook(func(p *shm.Proc, pt shm.CrashPoint, name int) bool {
			if armed && pt == point && p.ID() == w.p.ID() {
				armed = false
				fired = base + name
				return true
			}
			return false
		})
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(shm.LeaseCrash); !ok {
					panic(r)
				}
			}
		}()
		op()
	}()
	for _, d := range a.LeaseDomains() {
		d.Stamps.SetCrashHook(nil)
	}
	if fired < 0 {
		panic(fmt.Sprintf("E18: crash hook at point %d never fired for worker %d", point, w.p.ID()))
	}
	return fired
}

// e18Domain resolves the lease domain covering a global arena name,
// returning the domain and the domain-local index.
func e18Domain(a longlived.Recoverable, name int) (longlived.LeaseDomain, int) {
	for _, d := range a.LeaseDomains() {
		if name >= d.Base && name < d.Base+d.Stamps.Size() {
			return d, name - d.Base
		}
	}
	panic(fmt.Sprintf("E18: name %d outside every lease domain", name))
}
