package harness

import (
	"fmt"

	"shmrename/internal/longlived"
	"shmrename/internal/metrics"
	"shmrename/internal/openloop"
	"shmrename/internal/prng"
	"shmrename/internal/registry"
	"shmrename/internal/shm"
)

// e19Capacity provisions the E19 arenas: large enough that the cached
// variant's parked blocks (slots × 2×block) never starve the workers, so
// the comparison isolates serving cost, not provisioning policy.
const e19Capacity = 4096

// e19Backends enumerates the registry for the open-loop comparison: every
// word-scan sharded frontend — today the uncached sharded arena and its
// lease-cached wrapping, so the pair isolates exactly what the word-block
// caches buy. In-process only: external arenas pay mmap costs this
// latency harness would misattribute.
func e19Backends() []registry.Backend {
	var out []registry.Backend
	for _, b := range registry.All() {
		if b.Caps.Sharded && b.Caps.WordScan && !b.Caps.External {
			out = append(out, b)
		}
	}
	return out
}

// expE19 measures open-loop tail latency: Poisson and bursty arrival
// streams at fixed offered rates against the word-scan sharded arena,
// with and without the per-worker word-block lease caches, recording
// scheduled-arrival→completion latency into merged HDR-style histograms
// (metrics.Histogram) — the coordinated-omission-free methodology BENCH_5
// applies to the public API. A second table sweeps the offered rate and
// reports the saturation knee (openloop.Knee): the last rate each variant
// sustains at ≥90% of offered.
//
// This is a wall-clock experiment (native goroutines, like E16): the
// latencies are machine-dependent, but the structural claims the test
// suite pins are not — every arrival is accounted (served+dropped =
// offered), quantiles are ordered, nothing leaks, and the cached variant
// never knees below the uncached one.
func expE19() Experiment {
	return Experiment{
		ID:    "E19",
		Title: "Open-loop tail latency: word-block lease caches vs uncached word scan",
		Claim: "under clock-driven Poisson/bursty arrival, lease caches serve the common-case acquire with zero shared-memory steps and hold the p99 flat up to the saturation knee",
		Run: func(cfg Config) []*metrics.Table {
			lat := metrics.NewTable("E19 open-loop latency",
				"backend", "arrival", "rate/s", "offered", "served", "dropped",
				"achieved/s", "p50 ns", "p99 ns", "p999 ns")
			arrivals := cfg.sweep([]int{2000}, []int{20000})[0]
			rates := []float64{50e3}
			if cfg.Full {
				rates = []float64{50e3, 200e3}
			}
			for _, b := range e19Backends() {
				for _, shape := range []openloop.Arrival{openloop.Poisson, openloop.Bursty} {
					for _, rate := range rates {
						arena := b.New(registry.Config{Capacity: e19Capacity, Label: "e19-" + b.Name})
						res := openloop.Run(openloop.WrapArena(arena, cfg.Seed), openloop.Config{
							Rate:     rate,
							Arrivals: arrivals,
							Workers:  4,
							Arrival:  shape,
							Seed:     cfg.Seed,
						})
						if res.Served+res.Dropped != res.Offered {
							panic(fmt.Sprintf("E19 %s %s rate=%g: served %d + dropped %d != offered %d",
								b.Name, shape, rate, res.Served, res.Dropped, res.Offered))
						}
						drain(b.Name, arena)
						lat.AddRow(b.Name, shape.String(), rate, res.Offered, res.Served,
							res.Dropped, res.AchievedRate,
							res.Latency.Quantile(0.50), res.Latency.Quantile(0.99),
							res.Latency.Quantile(0.999))
					}
				}
			}
			lat.Note = "latency from scheduled arrival (open-loop): queueing delay behind a stalled arena is charged to every arrival it delays"

			knee := metrics.NewTable("E19 saturation knee",
				"backend", "rates swept", "knee rate/s", "achieved at knee/s")
			sweepRates := []float64{100e3, 500e3}
			if cfg.Full {
				sweepRates = []float64{100e3, 500e3, 1e6, 2e6, 4e6}
			}
			for _, b := range e19Backends() {
				arena := b.New(registry.Config{Capacity: e19Capacity, Label: "e19k-" + b.Name})
				points := openloop.Sweep(openloop.WrapArena(arena, cfg.Seed), openloop.Config{
					Arrivals: arrivals,
					Workers:  4,
					Seed:     cfg.Seed,
				}, sweepRates)
				k := openloop.Knee(points)
				if k < 0 {
					panic(fmt.Sprintf("E19 %s: below the knee even at %g/s", b.Name, sweepRates[0]))
				}
				drain(b.Name, arena)
				knee.AddRow(b.Name, len(points), points[k].Rate, points[k].AchievedRate)
			}
			knee.Note = fmt.Sprintf("knee = last offered rate sustained at >= %.0f%% (openloop.Knee)", openloop.KneeFraction*100)
			return []*metrics.Table{lat, knee}
		},
	}
}

// drain asserts an E19 arena ends empty — flushing parked blocks first on
// caching layers (via the registry's Flusher capability interface, so any
// future caching backend is drained the same way), since parked names are
// claimed but held by nobody.
func drain(name string, arena longlived.Arena) {
	if f, ok := arena.(registry.Flusher); ok {
		f.Flush(shm.NewProc(1<<22, prng.NewStream(1, 1<<22), nil, 0))
	}
	if held := arena.Held(); held != 0 {
		panic(fmt.Sprintf("E19 %s: %d names leaked", name, held))
	}
}
