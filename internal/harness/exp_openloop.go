package harness

import (
	"fmt"

	"shmrename/internal/leasecache"
	"shmrename/internal/longlived"
	"shmrename/internal/metrics"
	"shmrename/internal/openloop"
	"shmrename/internal/prng"
	"shmrename/internal/sharded"
	"shmrename/internal/shm"
)

// e19Capacity provisions the E19 arenas: large enough that the cached
// variant's parked blocks (slots × 2×block) never starve the workers, so
// the comparison isolates serving cost, not provisioning policy.
const e19Capacity = 4096

// e19Backends returns the E19 arena variants: the uncached word-scan
// sharded frontend and the same frontend behind per-worker word-block
// lease caches.
func e19Backends() []struct {
	name string
	mk   func() longlived.Arena
} {
	return []struct {
		name string
		mk   func() longlived.Arena
	}{
		{"sharded-word", func() longlived.Arena {
			return sharded.New(e19Capacity, sharded.Config{
				Shards: 4, WordScan: true, Padded: true, Label: "e19",
			})
		}},
		{"sharded-word+cache", func() longlived.Arena {
			return leasecache.New(sharded.New(e19Capacity, sharded.Config{
				Shards: 4, WordScan: true, Padded: true, Label: "e19c",
			}), leasecache.Config{Block: 64})
		}},
	}
}

// expE19 measures open-loop tail latency: Poisson and bursty arrival
// streams at fixed offered rates against the word-scan sharded arena,
// with and without the per-worker word-block lease caches, recording
// scheduled-arrival→completion latency into merged HDR-style histograms
// (metrics.Histogram) — the coordinated-omission-free methodology BENCH_5
// applies to the public API. A second table sweeps the offered rate and
// reports the saturation knee (openloop.Knee): the last rate each variant
// sustains at ≥90% of offered.
//
// This is a wall-clock experiment (native goroutines, like E16): the
// latencies are machine-dependent, but the structural claims the test
// suite pins are not — every arrival is accounted (served+dropped =
// offered), quantiles are ordered, nothing leaks, and the cached variant
// never knees below the uncached one.
func expE19() Experiment {
	return Experiment{
		ID:    "E19",
		Title: "Open-loop tail latency: word-block lease caches vs uncached word scan",
		Claim: "under clock-driven Poisson/bursty arrival, lease caches serve the common-case acquire with zero shared-memory steps and hold the p99 flat up to the saturation knee",
		Run: func(cfg Config) []*metrics.Table {
			lat := metrics.NewTable("E19 open-loop latency",
				"backend", "arrival", "rate/s", "offered", "served", "dropped",
				"achieved/s", "p50 ns", "p99 ns", "p999 ns")
			arrivals := cfg.sweep([]int{2000}, []int{20000})[0]
			rates := []float64{50e3}
			if cfg.Full {
				rates = []float64{50e3, 200e3}
			}
			for _, b := range e19Backends() {
				for _, shape := range []openloop.Arrival{openloop.Poisson, openloop.Bursty} {
					for _, rate := range rates {
						arena := b.mk()
						res := openloop.Run(openloop.WrapArena(arena, cfg.Seed), openloop.Config{
							Rate:     rate,
							Arrivals: arrivals,
							Workers:  4,
							Arrival:  shape,
							Seed:     cfg.Seed,
						})
						if res.Served+res.Dropped != res.Offered {
							panic(fmt.Sprintf("E19 %s %s rate=%g: served %d + dropped %d != offered %d",
								b.name, shape, rate, res.Served, res.Dropped, res.Offered))
						}
						drain(b.name, arena)
						lat.AddRow(b.name, shape.String(), rate, res.Offered, res.Served,
							res.Dropped, res.AchievedRate,
							res.Latency.Quantile(0.50), res.Latency.Quantile(0.99),
							res.Latency.Quantile(0.999))
					}
				}
			}
			lat.Note = "latency from scheduled arrival (open-loop): queueing delay behind a stalled arena is charged to every arrival it delays"

			knee := metrics.NewTable("E19 saturation knee",
				"backend", "rates swept", "knee rate/s", "achieved at knee/s")
			sweepRates := []float64{100e3, 500e3}
			if cfg.Full {
				sweepRates = []float64{100e3, 500e3, 1e6, 2e6, 4e6}
			}
			for _, b := range e19Backends() {
				arena := b.mk()
				points := openloop.Sweep(openloop.WrapArena(arena, cfg.Seed), openloop.Config{
					Arrivals: arrivals,
					Workers:  4,
					Seed:     cfg.Seed,
				}, sweepRates)
				k := openloop.Knee(points)
				if k < 0 {
					panic(fmt.Sprintf("E19 %s: below the knee even at %g/s", b.name, sweepRates[0]))
				}
				drain(b.name, arena)
				knee.AddRow(b.name, len(points), points[k].Rate, points[k].AchievedRate)
			}
			knee.Note = fmt.Sprintf("knee = last offered rate sustained at >= %.0f%% (openloop.Knee)", openloop.KneeFraction*100)
			return []*metrics.Table{lat, knee}
		},
	}
}

// drain asserts an E19 arena ends empty — flushing parked blocks first
// for the cached variant, since parked names are claimed but held by
// nobody.
func drain(name string, arena longlived.Arena) {
	if c, ok := arena.(*leasecache.Cache); ok {
		c.Flush(shm.NewProc(1<<22, prng.NewStream(1, 1<<22), nil, 0))
	}
	if held := arena.Held(); held != 0 {
		panic(fmt.Sprintf("E19 %s: %d names leaked", name, held))
	}
}
