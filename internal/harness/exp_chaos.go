package harness

import (
	"fmt"
	"io"

	"shmrename/internal/chaos"
	"shmrename/internal/integrity"
	"shmrename/internal/longlived"
	"shmrename/internal/metrics"
	"shmrename/internal/prng"
	"shmrename/internal/registry"
	"shmrename/internal/shm"
)

// e21TTL is the staleness horizon the E21 scrubber runs with, in counter
// epochs. The trial clock never advances past it, so residual-stamp repair
// is exercised by the unit suite, not here: E21 isolates the corruption
// gates.
const e21TTL = 8

// e21MaxAhead flags stamps dated implausibly far in the future as corrupt.
const e21MaxAhead = 1 << 20

// e21Backends enumerates the registry for chaos injection: every backend
// that declares Caps.SelfHealing (its lease domains can seize bits, so the
// scrubber can contain what it cannot repair). On unix this includes the
// mmap-backed persist arena through its registry temp-file constructor.
func e21Backends() []registry.Backend {
	var out []registry.Backend
	for _, b := range registry.All() {
		if b.Caps.SelfHealing {
			out = append(out, b)
		}
	}
	return out
}

// expE21 is the chaos-injection experiment: seeded corruption of the
// shared claim and stamp words — garbage client stamps over free names,
// claim bits cleared under live holders, claim bits set with nothing
// behind them — on every self-healing backend, contained by the integrity
// scrubber. The gates, checked on every trial:
//
//   - containment: the first scrub pass leaves no violation standing
//     (irreparable damage is quarantined at word granularity), and the
//     next pass is idle — the quarantine is a fixed point, not a repair
//     the scrubber keeps re-doing;
//   - no lost name: uncorrupted holders keep every name they acquired
//     through the whole campaign;
//   - zero duplicate grants, ever: a post-containment drain grants only
//     names that were observably free, never a quarantined or held one,
//     and never the same name twice;
//   - accounting: the drain serves at least capacity minus the withdrawn
//     names (quarantined words plus adopted orphans awaiting recovery) —
//     corruption costs capacity, never exclusivity.
//
// The unix file table extends the same discipline to namespace files on
// disk: torn superblocks and truncations must be rejected at open, and
// bitmap/stamp page flips contained by a post-attach scrub.
func expE21() Experiment {
	return Experiment{
		ID:    "E21",
		Title: "Chaos injection: integrity scrub under seeded corruption",
		Claim: "seeded bitmap/stamp corruption on every self-healing backend: violations quarantined at word granularity, zero duplicate grants, final scrub pass idle",
		Run: func(cfg Config) []*metrics.Table {
			_, tabs := RunChaos(cfg)
			return tabs
		},
	}
}

// RunChaos runs the E21 matrix and returns its machine-readable accounting
// report alongside the rendered tables — the artifact behind
// cmd/renamebench -chaos and the CI chaos job.
func RunChaos(cfg Config) (*chaos.Report, []*metrics.Table) {
	rep := &chaos.Report{Seed: cfg.Seed, Trials: cfg.trials()}
	tabs := []*metrics.Table{e21Matrix(cfg, rep)}
	if ft := e21FileTable(cfg); ft != nil {
		tabs = append(tabs, ft)
	}
	return rep, tabs
}

// e21Matrix runs the in-process corruption matrix, appending one
// accounting cell per (backend, n) point to rep.
func e21Matrix(cfg Config, rep *chaos.Report) *metrics.Table {
	tab := metrics.NewTable("E21 chaos scrub matrix",
		"backend", "n", "garbage stamps", "cleared bits", "set bits",
		"repaired", "quarantined", "unrepaired", "drained", "floor")
	for _, b := range e21Backends() {
		// The sweep starts at 256 (four bitmap words on the flat arenas): a
		// word-granular quarantine needs words to spare, or every seeded
		// campaign degenerates to a fully withdrawn arena — safe, but a
		// trivial row.
		for _, n := range cfg.sweep([]int{256, 512}, []int{256, 512, 1024, 2048}) {
			cell := chaos.Cell{
				Backend:   b.Name,
				Capacity:  n,
				Injected:  map[string]int{},
				ScrubIdle: true,
			}
			for t := 0; t < cfg.trials(); t++ {
				e21Trial(&cell, b, n, cfg.Seed+uint64(t))
			}
			tab.AddRow(b.Name, n,
				cell.Injected[chaos.KindGarbageStamp.String()],
				cell.Injected[chaos.KindClearBit.String()],
				cell.Injected[chaos.KindSetBit.String()],
				cell.Repaired, cell.Quarantined, cell.Unrepaired,
				cell.Drained, cell.Floor)
			if rep != nil {
				rep.Cells = append(rep.Cells, cell)
			}
		}
	}
	tab.Note = "every row passed: no violation left standing, no duplicate grant, uncorrupted holders intact, final scrub pass idle"
	return tab
}

// e21Trial runs one seeded campaign: acquire, corrupt, scrub, verify.
func e21Trial(cell *chaos.Cell, b registry.Backend, n int, seed uint64) {
	const perKind = 3
	ep := shm.NewCounterEpochs(1)
	a := b.New(registry.Config{Capacity: n, MaxPasses: 8, Epochs: ep, Label: "e21-" + b.Name})
	if c, ok := a.(io.Closer); ok {
		defer c.Close()
	}
	arena, ok := a.(longlived.Recoverable)
	if !ok {
		panic(fmt.Sprintf("E21 %s: registered SelfHealing but not longlived.Recoverable", b.Name))
	}
	icfg := integrity.Config{Epochs: ep, TTL: e21TTL, Quarantine: true, MaxEpochAhead: e21MaxAhead}
	if c, ok := a.(interface {
		Parked(int) bool
		PurgeParked(int) bool
	}); ok {
		icfg.Parked = c.Parked
		icfg.Purge = c.PurgeParked
	}
	s := integrity.NewScrubber(arena, icfg)
	in := chaos.NewInjector(arena, seed)
	maint := shm.NewProc(1<<20, prng.NewStream(seed, 1<<20), nil, 0)

	// Two client holders: one stays uncorrupted end to end (the no-lost-name
	// oracle), the other donates victims to the bit-clear injections. On
	// caching backends the parked block remainders are flushed back, so the
	// free-pool injections have idle state to hit.
	live := e21Holder(arena, seed, 1, n/8)
	sacrificial := e21Holder(arena, seed, 2, n/8)
	if f, ok := a.(registry.Flusher); ok {
		f.Flush(live.p)
		f.Flush(sacrificial.p)
	}

	// Seeded corruption: bit flips in the stamp page (garbage stamps over
	// free names), downward bitmap flips (held bits cleared under live
	// stamps), upward bitmap flips (orphan bits with nothing behind them).
	for j := 0; j < perKind; j++ {
		if inj, ok := in.GarbageStamp(ep.Now()); ok {
			cell.Injected[inj.Kind.String()]++
		}
		if len(sacrificial.names) > 0 {
			victim := sacrificial.names[0]
			sacrificial.names = sacrificial.names[1:]
			inj := in.ClearBit(sacrificial.p, victim)
			cell.Injected[inj.Kind.String()]++
		}
		if inj, ok := in.SetBit(maint); ok {
			cell.Injected[inj.Kind.String()]++
		}
	}

	// Containment: one pass repairs or quarantines everything, the next is
	// idle.
	first := s.Scrub(maint)
	if first.Unrepaired != 0 {
		panic(fmt.Sprintf("E21 %s n=%d: %d violations left standing", b.Name, n, first.Unrepaired))
	}
	second := s.Scrub(maint)
	if second.Repaired+second.Quarantined+second.Unrepaired != 0 {
		panic(fmt.Sprintf("E21 %s n=%d: scrub not a fixed point: %+v", b.Name, n, second))
	}
	// No lost name: both holders still own everything corruption did not
	// explicitly take from them.
	for _, w := range []*e21Client{live, sacrificial} {
		for _, name := range w.names {
			if !arena.IsHeld(name) {
				panic(fmt.Sprintf("E21 %s n=%d: scrub took held name %d from a live holder", b.Name, n, name))
			}
		}
	}
	// Drain the holders; freed names inside quarantined words must be
	// absorbed by the next pass, after which the scrub is idle again.
	arena.ReleaseN(live.p, live.names)
	arena.ReleaseN(sacrificial.p, sacrificial.names)
	if f, ok := a.(registry.Flusher); ok {
		f.Flush(live.p)
		f.Flush(sacrificial.p)
	}
	third := s.Scrub(maint)
	if third.Unrepaired != 0 {
		panic(fmt.Sprintf("E21 %s n=%d: post-release scrub left %d violations", b.Name, n, third.Unrepaired))
	}
	fourth := s.Scrub(maint)
	if fourth.Repaired+fourth.Quarantined+fourth.Unrepaired != 0 {
		panic(fmt.Sprintf("E21 %s n=%d: final scrub pass not idle: %+v", b.Name, n, fourth))
	}

	// Snapshot the withdrawn state, then drain: every grant must come from
	// the observably free pool — never a quarantined or held name, never a
	// name twice — and corruption costs at most the withdrawn names.
	quar, held := e21Withdrawn(arena)
	drainer := shm.NewProc(1<<21, prng.NewStream(seed, 1<<21), nil, 0)
	granted := map[int]bool{}
	for {
		name := arena.Acquire(drainer)
		if name < 0 {
			break
		}
		switch {
		case granted[name]:
			cell.DuplicateGrants++
			panic(fmt.Sprintf("E21 %s n=%d: name %d granted twice", b.Name, n, name))
		case quar[name]:
			panic(fmt.Sprintf("E21 %s n=%d: quarantined name %d granted", b.Name, n, name))
		case held[name]:
			panic(fmt.Sprintf("E21 %s n=%d: held name %d granted", b.Name, n, name))
		}
		granted[name] = true
	}
	floor := n - len(quar) - len(held)
	if floor < 0 {
		floor = 0
	}
	if len(granted) < floor {
		panic(fmt.Sprintf("E21 %s n=%d: drained %d names, floor %d (capacity %d minus %d quarantined, %d held)",
			b.Name, n, len(granted), floor, n, len(quar), len(held)))
	}
	cell.Repaired += first.Repaired + third.Repaired
	cell.Quarantined += first.Quarantined + third.Quarantined
	cell.Drained += len(granted)
	cell.Floor += floor
}

// e21Client is one client holder of a chaos campaign.
type e21Client struct {
	p     *shm.Proc
	names []int
}

// e21Holder acquires k names under a fresh proc, panicking below capacity.
func e21Holder(a longlived.Recoverable, seed uint64, id, k int) *e21Client {
	w := &e21Client{p: shm.NewProc(id, prng.NewStream(seed, id), nil, 0)}
	w.names = a.AcquireN(w.p, k, make([]int, 0, k))
	if len(w.names) != k {
		panic(fmt.Sprintf("E21 %s: holder %d acquired %d of %d below capacity", a.Label(), id, len(w.names), k))
	}
	return w
}

// e21Withdrawn snapshots the names currently out of circulation: the
// quarantine-stamped set and the still-held set (adopted orphans awaiting
// recovery, plus any quarantine-seized bits).
func e21Withdrawn(a longlived.Recoverable) (quar, held map[int]bool) {
	quar, held = map[int]bool{}, map[int]bool{}
	for _, d := range a.LeaseDomains() {
		for i := 0; i < d.Stamps.Size(); i++ {
			if h, _ := shm.UnpackStamp(d.Stamps.Load(i)); h == shm.HolderQuarantine {
				quar[d.Base+i] = true
			} else if d.IsHeld(i) {
				held[d.Base+i] = true
			}
		}
	}
	return quar, held
}
