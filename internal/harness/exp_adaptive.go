package harness

import (
	"fmt"
	"math"

	"shmrename/internal/core"
	"shmrename/internal/metrics"
	"shmrename/internal/sched"
)

// expE13 validates the adaptive extension (the §IV remark that the
// framework of [8] makes the algorithms adaptive at O((1+ε)k) name-space
// cost): k participants, k unknown to the processes, names within O(k)
// and steps within O(log k).
func expE13() Experiment {
	return Experiment{
		ID:    "E13",
		Title: "Adaptive renaming extension (§IV remark)",
		Claim: "unknown k participants get names in O(k) using O(log k) steps w.h.p.",
		Run: func(cfg Config) []*metrics.Table {
			const maxProcs = 1 << 14
			tab := metrics.NewTable("E13 adaptive renaming",
				"k", "max name seen", "adaptive limit O(k)", "steps p50",
				"steps max", "bound 32(log k + 3)", "all named")
			for _, k := range cfg.sweep([]int{16, 64, 256, 1024}, []int{16, 64, 256, 1024, 4096, 16384}) {
				var maxName int
				stats := make([]runStats, 0, cfg.trials())
				var limit int
				for t := 0; t < cfg.trials(); t++ {
					inst := core.NewAdaptive(maxProcs, core.AdaptiveConfig{})
					limit = inst.MaxName(k)
					res := sched.Run(sched.Config{
						N: k, Seed: cfg.Seed + uint64(t), Fast: sched.FastFIFO, Body: inst.Body,
					})
					if err := sched.VerifyUnique(res, inst.M()); err != nil {
						panic(fmt.Sprintf("E13 k=%d trial %d: %v", k, t, err))
					}
					for _, r := range res {
						if r.Name > maxName {
							maxName = r.Name
						}
					}
					stats = append(stats, runStats{
						maxSteps: sched.MaxSteps(res),
						named:    sched.CountStatus(res, sched.Named),
					})
				}
				steps := metrics.Summarize(maxStepsOf(stats))
				bound := 32 * (math.Log2(float64(k)) + 3)
				tab.AddRow(k, maxName, limit, steps.P50, steps.Max,
					bound, allNamed(stats, k))
			}
			tab.Note = "extension beyond the paper: simple doubling transform; " +
				"the paper's remark notes [8]'s framework would give O((1+e)k) space"
			return []*metrics.Table{tab}
		},
	}
}
