package harness

import (
	"fmt"

	"shmrename/internal/core"
	"shmrename/internal/metrics"
	"shmrename/internal/sched"
)

// expE14 cross-validates the measurement instrument: the same algorithm
// run under the deterministic simulator (serialized steps, fair FIFO) and
// natively on goroutines with sync/atomic (real hardware interleavings)
// must show step complexities of the same magnitude and shape. This backs
// every other experiment's use of simulated step counts.
func expE14() Experiment {
	return Experiment{
		ID:    "E14",
		Title: "Cross-validation: simulated vs native step complexity",
		Claim: "step counts are a property of the algorithm, not the simulator",
		Run: func(cfg Config) []*metrics.Table {
			tab := metrics.NewTable("E14 simulator vs native (tight-tau)",
				"n", "sim steps p50", "sim steps max", "native steps p50",
				"native steps max", "native/sim p50 ratio", "both all-named")
			for _, n := range cfg.sweep(pow2s(8, 11), pow2s(8, 14)) {
				simStats := measure(func() core.Instance {
					return core.NewTight(n, core.TightConfig{SelfClocked: true})
				}, cfg)
				var natStats []runStats
				for t := 0; t < cfg.trials(); t++ {
					inst := core.NewTight(n, core.TightConfig{SelfClocked: true})
					res := sched.RunNative(n, cfg.Seed+uint64(t), inst.Body)
					if err := sched.VerifyUnique(res, n); err != nil {
						panic(fmt.Sprintf("E14 native trial %d: %v", t, err))
					}
					natStats = append(natStats, runStats{
						maxSteps: sched.MaxSteps(res),
						named:    sched.CountStatus(res, sched.Named),
					})
				}
				sim := metrics.Summarize(maxStepsOf(simStats))
				nat := metrics.Summarize(maxStepsOf(natStats))
				ratio := 0.0
				if sim.P50 > 0 {
					ratio = float64(nat.P50) / float64(sim.P50)
				}
				tab.AddRow(n, sim.P50, sim.Max, nat.P50, nat.Max, ratio,
					allNamed(simStats, n) && allNamed(natStats, n))
			}
			tab.Note = "native interleavings differ from the fair simulated schedule, " +
				"so ratios near 1 (same magnitude) validate the instrument"
			return []*metrics.Table{tab}
		},
	}
}
