package harness

import (
	"fmt"

	"shmrename/internal/longlived"
	"shmrename/internal/metrics"
	"shmrename/internal/sched"
)

// e17Backends enumerates the (backend, scan-mode) arena constructors of the
// word-engine comparison. The bit rows are the paper's per-TAS probe path —
// the deterministic-mode golden contract — and the word rows are the
// word-granular claim engine behind the config switch; BENCH_4.json records
// the same matrix.
func e17Backends() []struct {
	Backend string
	Scan    string
	Make    func(capacity int) longlived.Arena
} {
	return []struct {
		Backend string
		Scan    string
		Make    func(capacity int) longlived.Arena
	}{
		{"level-array", "bit", func(n int) longlived.Arena {
			return longlived.NewLevel(n, longlived.LevelConfig{Label: "e17-l-bit"})
		}},
		{"level-array", "word", func(n int) longlived.Arena {
			return longlived.NewLevel(n, longlived.LevelConfig{WordScan: true, Label: "e17-l-word"})
		}},
		{"tau-longlived", "bit", func(n int) longlived.Arena {
			return longlived.NewTau(n, longlived.TauConfig{SelfClocked: true, Label: "e17-t-bit"})
		}},
		{"tau-longlived", "word", func(n int) longlived.Arena {
			return longlived.NewTau(n, longlived.TauConfig{WordScan: true, SelfClocked: true, Label: "e17-t-word"})
		}},
	}
}

// e17Churn is the per-worker batch churn of every E17 cell.
var e17Churn = longlived.ChurnConfig{Cycles: 4, HoldMin: 0, HoldMax: 8}

// expE17 measures the word-granular claim engine against the per-bit probe
// path under tight provisioning: k = n/b workers churn batches of b names
// on a capacity-n arena, so peak demand equals capacity and every acquire
// searches a nearly full space — the regime in which the probe path pays
// per-bit random probes plus a per-name backstop scan while the word path
// pays one snapshot-scan-CAS per 64-name word. steps/acquire is the
// machine-independent structural cost per name; "vs bit" is the word row's
// reduction factor against its probe-path twin (the BENCH_4.json headline,
// targeted at >= 2x).
func expE17() Experiment {
	return Experiment{
		ID:    "E17",
		Title: "Word-granular claim engine: word vs bit scan x batch size",
		Claim: "at full occupancy the word path cuts steps/acquire >= 2x vs per-bit probes, growing with batch size via up-to-64-names-per-CAS claims",
		Run: func(cfg Config) []*metrics.Table {
			tab := metrics.NewTable("E17 word vs bit scan under tight batch churn",
				"backend", "scan", "n", "batch", "k", "steps/acquire", "vs bit",
				"max name+1", "peak active", "acquires")
			for _, n := range cfg.sweep([]int{256}, []int{1024, 4096}) {
				for _, batch := range []int{1, 4, 16} {
					k := n / batch
					if k < 1 {
						continue
					}
					bitSteps := make(map[string]float64)
					for _, b := range e17Backends() {
						var maxActive, maxName, acquires int64
						var stepsPerAcq float64
						for t := 0; t < cfg.trials(); t++ {
							arena := b.Make(n)
							mon := longlived.NewMonitor(arena.NameBound())
							res := sched.Run(sched.Config{
								N:         k,
								Seed:      cfg.Seed + uint64(t),
								Fast:      sched.FastFIFO,
								Body:      longlived.BatchChurnBody(arena, mon, e17Churn, batch),
								AfterStep: arena.Clock(),
							})
							if err := mon.Err(); err != nil {
								panic(fmt.Sprintf("E17 %s/%s n=%d b=%d trial %d: %v", b.Backend, b.Scan, n, batch, t, err))
							}
							if got := sched.CountStatus(res, sched.Unnamed); got != k {
								panic(fmt.Sprintf("E17 %s/%s n=%d b=%d trial %d: %d of %d workers drained", b.Backend, b.Scan, n, batch, t, got, k))
							}
							if held := arena.Held(); held != 0 {
								panic(fmt.Sprintf("E17 %s/%s n=%d b=%d trial %d: %d names still held", b.Backend, b.Scan, n, batch, t, held))
							}
							if a := mon.MaxActive(); a > maxActive {
								maxActive = a
							}
							if m := mon.MaxName(); m > maxName {
								maxName = m
							}
							acquires += mon.Acquires()
							stepsPerAcq += mon.StepsPerAcquire()
						}
						steps := stepsPerAcq / float64(cfg.trials())
						speedup := "-"
						switch b.Scan {
						case "bit":
							bitSteps[b.Backend] = steps
						case "word":
							speedup = fmt.Sprintf("%.1fx", bitSteps[b.Backend]/steps)
						}
						tab.AddRow(b.Backend, b.Scan, n, batch, k, steps, speedup,
							maxName+1, maxActive, acquires)
					}
				}
			}
			tab.Note = "tight provisioning: k x batch = capacity, full occupancy; 'vs bit' is the word row's steps/acquire reduction"
			return []*metrics.Table{tab}
		},
	}
}
