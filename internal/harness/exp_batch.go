package harness

import (
	"fmt"

	"shmrename/internal/longlived"
	"shmrename/internal/metrics"
	"shmrename/internal/registry"
	"shmrename/internal/sched"
)

// e17Backends enumerates the (backend, scan-mode) matrix of the word-engine
// comparison from the registry: every unsharded deterministic in-process
// backend, crossed with the registry Config.Scan override — the "bit" rows
// are the paper's per-TAS probe path (the deterministic-mode golden
// contract), the "word" rows the word-granular claim engine behind the same
// config switch; BENCH_4.json records the same matrix. Sharded and cached
// frontends are excluded (E19 measures them), as are dense-proc-ID backends
// without a scan engine (their twin rows would coincide). Today the
// enumeration yields level-array and tau-longlived, the recorded matrix.
func e17Backends() []struct {
	Backend string
	Scan    string
	Elastic bool
	Make    func(capacity int) longlived.Arena
} {
	var out []struct {
		Backend string
		Scan    string
		Elastic bool
		Make    func(capacity int) longlived.Arena
	}
	for _, b := range registry.All() {
		c := b.Caps
		if !c.Deterministic || !c.Releasable || c.Sharded || c.Cached || c.External || c.DenseProcs {
			continue
		}
		for _, scan := range []string{"bit", "word"} {
			b, scan := b, scan
			out = append(out, struct {
				Backend string
				Scan    string
				Elastic bool
				Make    func(capacity int) longlived.Arena
			}{b.Name, scan, c.Elastic, func(n int) longlived.Arena {
				return b.New(registry.Config{
					Capacity: n,
					Scan:     scan,
					Label:    fmt.Sprintf("e17-%s-%s", b.Name, scan),
				})
			}})
		}
	}
	return out
}

// e17Churn is the per-worker batch churn of every E17 cell.
var e17Churn = longlived.ChurnConfig{Cycles: 4, HoldMin: 0, HoldMax: 8}

// expE17 measures the word-granular claim engine against the per-bit probe
// path under tight provisioning: k = n/b workers churn batches of b names
// on a capacity-n arena, so peak demand equals capacity and every acquire
// searches a nearly full space — the regime in which the probe path pays
// per-bit random probes plus a per-name backstop scan while the word path
// pays one snapshot-scan-CAS per 64-name word. steps/acquire is the
// machine-independent structural cost per name; "vs bit" is the word row's
// reduction factor against its probe-path twin (the BENCH_4.json headline,
// targeted at >= 2x).
func expE17() Experiment {
	return Experiment{
		ID:    "E17",
		Title: "Word-granular claim engine: word vs bit scan x batch size",
		Claim: "at full occupancy the word path cuts steps/acquire >= 2x vs per-bit probes, growing with batch size via up-to-64-names-per-CAS claims",
		Run: func(cfg Config) []*metrics.Table {
			tab := metrics.NewTable("E17 word vs bit scan under tight batch churn",
				"backend", "scan", "n", "batch", "k", "steps/acquire", "vs bit",
				"max name+1", "peak active", "acquires")
			for _, n := range cfg.sweep([]int{256}, []int{1024, 4096}) {
				for _, batch := range []int{1, 4, 16} {
					k := n / batch
					if k < 1 {
						continue
					}
					bitSteps := make(map[string]float64)
					for _, b := range e17Backends() {
						var maxActive, maxName, acquires int64
						var stepsPerAcq float64
						for t := 0; t < cfg.trials(); t++ {
							arena := b.Make(n)
							mon := longlived.NewMonitor(arena.NameBound())
							res := sched.Run(sched.Config{
								N:         k,
								Seed:      cfg.Seed + uint64(t),
								Fast:      sched.FastFIFO,
								Body:      longlived.BatchChurnBody(arena, mon, e17Churn, batch),
								AfterStep: arena.Clock(),
							})
							if err := mon.Err(); err != nil {
								panic(fmt.Sprintf("E17 %s/%s n=%d b=%d trial %d: %v", b.Backend, b.Scan, n, batch, t, err))
							}
							if got := sched.CountStatus(res, sched.Unnamed); got != k {
								panic(fmt.Sprintf("E17 %s/%s n=%d b=%d trial %d: %d of %d workers drained", b.Backend, b.Scan, n, batch, t, got, k))
							}
							if held := arena.Held(); held != 0 {
								panic(fmt.Sprintf("E17 %s/%s n=%d b=%d trial %d: %d names still held", b.Backend, b.Scan, n, batch, t, held))
							}
							if b.Elastic {
								assertElasticAdaptive("E17", b.Backend+"/"+b.Scan, n, k*batch, arena, mon)
							}
							if a := mon.MaxActive(); a > maxActive {
								maxActive = a
							}
							if m := mon.MaxName(); m > maxName {
								maxName = m
							}
							acquires += mon.Acquires()
							stepsPerAcq += mon.StepsPerAcquire()
						}
						steps := stepsPerAcq / float64(cfg.trials())
						speedup := "-"
						switch b.Scan {
						case "bit":
							bitSteps[b.Backend] = steps
						case "word":
							speedup = fmt.Sprintf("%.1fx", bitSteps[b.Backend]/steps)
						}
						tab.AddRow(b.Backend, b.Scan, n, batch, k, steps, speedup,
							maxName+1, maxActive, acquires)
					}
				}
			}
			tab.Note = "tight provisioning: k x batch = capacity, full occupancy; 'vs bit' is the word row's steps/acquire reduction"
			return []*metrics.Table{tab}
		},
	}
}
