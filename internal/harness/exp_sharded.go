package harness

import (
	"fmt"
	"time"

	"shmrename/internal/longlived"
	"shmrename/internal/metrics"
	"shmrename/internal/registry"
	"shmrename/internal/sched"
)

// e16Churn is the per-worker churn of every E16 cell; the E16 invariants
// test derives its expected acquire counts from it.
var e16Churn = longlived.ChurnConfig{Cycles: 24, HoldMin: 0, HoldMax: 4, Yield: true}

// e16Row is one E16 table row: a backend name, its stripe count (0 marks
// the unsharded baseline), and an arena constructor.
type e16Row struct {
	name   string
	shards int
	mk     func() longlived.Arena
}

// e16Rows builds the E16 sweep for one goroutine count from the registry:
// the unsharded baseline is the registered level-array backend and the
// sweep rows are the registered sharded frontend with the stripe count
// overridden through registry.Config.Shards — both forced to the per-bit
// probe path (Scan "bit") and cache-line padding, the shapes this native
// experiment has always measured. Routing construction through the
// registry keeps the baseline/frontend pair tied to the same constructors
// every other experiment and the conformance suite exercise.
func e16Rows(g int) []e16Row {
	level, ok := registry.Lookup("level-array")
	if !ok {
		panic("E16: level-array backend not registered")
	}
	shardedBackend, ok := registry.Lookup("sharded")
	if !ok {
		panic("E16: sharded backend not registered")
	}
	rows := []e16Row{{"level-array", 0, func() longlived.Arena {
		return level.New(registry.Config{
			Capacity: g, Scan: "bit", Padded: true, Label: "e16-single",
		})
	}}}
	for _, s := range []int{1, 2, 4, 8} {
		if s > g {
			continue
		}
		s := s
		rows = append(rows, e16Row{"sharded-level", s, func() longlived.Arena {
			return shardedBackend.New(registry.Config{
				Capacity: g, Shards: s, Scan: "bit",
				Label: fmt.Sprintf("e16-s%d", s),
			})
		}})
	}
	return rows
}

// expE16 measures the sharded arena frontend (internal/sharded) on real
// goroutines: native multicore Acquire/Release throughput and adaptivity
// under churn, sweeping the stripe count and the goroutine count. Workers
// yield while holding their name (ChurnConfig.Yield), so the instantaneous
// occupancy approaches the worker count even on few cores and the arena —
// provisioned tightly at capacity = workers — operates near full, the
// regime in which the single backend pays deep probe ladders and full
// backstop scans on every acquire while each stripe's ladder and backstop
// stay S times smaller.
//
// shards = 1 is the degenerate single-stripe frontend; the "level-array"
// rows are the unsharded backend itself, the baseline the sharded frontend
// must beat as goroutines grow. Per (backend, shards, goroutines) cell the
// table reports:
//
//   - kacq/s: successful acquires per wall-clock second (throughput; this
//     is a native, machine-dependent number — trends across rows, not the
//     absolute values, are the result);
//   - steps/acquire: mean shared-memory accesses per successful acquire
//     (machine-independent; the structural cost of finding a free slot);
//   - name/active: largest issued name+1 over peak simultaneous holders —
//     the tightness price of striping, bounded by the documented
//     shards × per-shard-bound envelope.
//
// Every trial additionally asserts the long-lived safety property (no two
// live holders ever share a name, within or across shards) and a full
// drain.
func expE16() Experiment {
	return Experiment{
		ID:    "E16",
		Title: "Sharded arena: native multicore churn, shard x goroutine sweep",
		Claim: "striped frontend scales Acquire/Release throughput with goroutines while names stay within the shards x per-shard bound envelope",
		Run: func(cfg Config) []*metrics.Table {
			tab := metrics.NewTable("E16 native sharded churn",
				"backend", "shards", "gor", "capacity", "acquires",
				"kacq/s", "steps/acquire", "max name+1", "peak active", "name/active")
			churn := e16Churn
			gors := cfg.sweep([]int{4, 16, 64}, []int{4, 16, 64, 256, 1024})
			for _, g := range gors {
				rows := e16Rows(g)
				for _, rw := range rows {
					var acquires, maxName, maxActive int64
					var steps float64
					var elapsed time.Duration
					for t := 0; t < cfg.trials(); t++ {
						arena := rw.mk()
						mon := longlived.NewMonitor(arena.NameBound())
						start := time.Now()
						res := sched.RunNative(g, cfg.Seed+uint64(t),
							longlived.ChurnBody(arena, mon, churn))
						elapsed += time.Since(start)
						if err := mon.Err(); err != nil {
							panic(fmt.Sprintf("E16 %s shards=%d g=%d trial %d: %v", rw.name, rw.shards, g, t, err))
						}
						if got := sched.CountStatus(res, sched.Unnamed); got != g {
							panic(fmt.Sprintf("E16 %s shards=%d g=%d trial %d: %d of %d workers drained", rw.name, rw.shards, g, t, got, g))
						}
						if held := arena.Held(); held != 0 {
							panic(fmt.Sprintf("E16 %s shards=%d g=%d trial %d: %d names still held", rw.name, rw.shards, g, t, held))
						}
						acquires += mon.Acquires()
						steps += mon.StepsPerAcquire()
						if m := mon.MaxName(); m > maxName {
							maxName = m
						}
						if a := mon.MaxActive(); a > maxActive {
							maxActive = a
						}
					}
					tab.AddRow(rw.name, rw.shards, g, g, acquires,
						float64(acquires)/elapsed.Seconds()/1e3,
						steps/float64(cfg.trials()),
						maxName+1, maxActive,
						float64(maxName+1)/float64(maxActive))
				}
			}
			tab.Note = "native wall clock: compare trends across rows, not absolute values; shards=0 marks the unsharded baseline"
			return []*metrics.Table{tab}
		},
	}
}
