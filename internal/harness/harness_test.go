package harness

import (
	"strconv"
	"strings"
	"testing"

	"shmrename/internal/metrics"
)

func tiny() Config { return Config{Trials: 2, Seed: 11} }

func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20", "E21"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	for _, id := range want {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("ByID(%s) missing", id)
		}
		if e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete: %+v", id, e)
		}
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("ByID accepted unknown id")
	}
}

func TestConfigDefaults(t *testing.T) {
	if (Config{}).trials() != DefaultTrials {
		t.Fatal("default trials")
	}
	if (Config{Trials: 3}).trials() != 3 {
		t.Fatal("explicit trials")
	}
	q := Config{}.sweep([]int{1}, []int{1, 2})
	if len(q) != 1 {
		t.Fatal("quick sweep")
	}
	f := Config{Full: true}.sweep([]int{1}, []int{1, 2})
	if len(f) != 2 {
		t.Fatal("full sweep")
	}
}

func TestPow2s(t *testing.T) {
	got := pow2s(3, 5)
	want := []int{8, 16, 32}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pow2s = %v", got)
		}
	}
}

// tinyTables memoizes experiment runs across tests: every experiment is
// deterministic at a fixed Config, so tests sharing an ID (e.g. the E15
// churn invariants and the elastic tightness envelope) validate one run
// instead of paying for the sweep twice.
var tinyTables = map[string][]*metrics.Table{}

// checkTables runs an experiment at tiny scale and sanity-checks output.
func checkTables(t *testing.T, id string) []*metrics.Table {
	t.Helper()
	if tabs, ok := tinyTables[id]; ok {
		return tabs
	}
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("missing %s", id)
	}
	tabs := e.Run(tiny())
	tinyTables[id] = tabs
	if len(tabs) == 0 {
		t.Fatalf("%s produced no tables", id)
	}
	for _, tab := range tabs {
		if len(tab.Rows) == 0 {
			t.Fatalf("%s table %q has no rows", id, tab.Title)
		}
		out := tab.Render()
		if !strings.Contains(out, tab.Title) {
			t.Fatalf("%s render missing title", id)
		}
		if tab.CSV() == "" {
			t.Fatalf("%s CSV empty", id)
		}
	}
	return tabs
}

func TestE1Lemma3HoldsAtLargeC(t *testing.T) {
	tabs := checkTables(t, "E1")
	// Every c=6 row must report zero failures (bound <= 1/n^2).
	for _, row := range tabs[0].Rows {
		if row[0] == "6" && row[8] != "0" {
			t.Fatalf("E1 c=6 row has failures: %v", row)
		}
	}
}

func TestE2AllNamed(t *testing.T) {
	tabs := checkTables(t, "E2")
	for _, row := range tabs[0].Rows {
		if row[7] != "true" {
			t.Fatalf("E2 row not all named: %v", row)
		}
	}
}

func TestE3SpaceLinear(t *testing.T) {
	tabs := checkTables(t, "E3")
	for _, row := range tabs[0].Rows {
		if row[4] == "" {
			t.Fatalf("E3 missing bits/n: %v", row)
		}
	}
}

func TestE4WithinBounds(t *testing.T) {
	tabs := checkTables(t, "E4")
	for _, row := range tabs[0].Rows {
		if row[len(row)-1] != "true" {
			t.Fatalf("E4 row outside Lemma 6 bound: %v", row)
		}
	}
}

func TestE5AllNamed(t *testing.T) {
	tabs := checkTables(t, "E5")
	for _, row := range tabs[0].Rows {
		if row[len(row)-1] != "true" {
			t.Fatalf("E5 row not all named: %v", row)
		}
	}
}

func TestE6WithinBounds(t *testing.T) {
	tabs := checkTables(t, "E6")
	for _, row := range tabs[0].Rows {
		ell, gamma := row[0], row[1]
		// The paper's literal gamma=1 constant misses its own l=2 bound
		// at finite n (documented finding); l=1 and the gamma=2 rows
		// must be within bound.
		if ell == "1" || gamma == "2" {
			if row[len(row)-1] != "true" {
				t.Fatalf("E6 row outside Lemma 8 bound: %v", row)
			}
		}
	}
}

func TestE7AllNamed(t *testing.T) {
	tabs := checkTables(t, "E7")
	for _, row := range tabs[0].Rows {
		if row[8] != "true" {
			t.Fatalf("E7 row not all named: %v", row)
		}
	}
}

func TestE8ProducesFits(t *testing.T) {
	tabs := checkTables(t, "E8")
	if len(tabs) != 2 {
		t.Fatalf("E8 tables = %d", len(tabs))
	}
	if len(tabs[1].Rows) != 5 {
		t.Fatalf("E8 fit rows = %d", len(tabs[1].Rows))
	}
}

func TestE9OverheadAboveOne(t *testing.T) {
	tabs := checkTables(t, "E9")
	for _, row := range tabs[0].Rows {
		if row[3] == "" || row[3] == "0" {
			t.Fatalf("E9 missing overhead factor: %v", row)
		}
	}
}

func TestE10AllPoliciesCorrect(t *testing.T) {
	tabs := checkTables(t, "E10")
	if len(tabs) != 2 {
		t.Fatalf("E10 tables = %d", len(tabs))
	}
	for _, row := range tabs[0].Rows {
		if row[len(row)-1] != "true" {
			t.Fatalf("E10 row failed uniqueness: %v", row)
		}
	}
}

func TestE11NoViolations(t *testing.T) {
	tabs := checkTables(t, "E11")
	for _, row := range tabs[0].Rows {
		if row[4] != "0" {
			t.Fatalf("E11 violations: %v", row)
		}
		if row[7] != "0" {
			t.Fatalf("E11 unresolved: %v", row)
		}
	}
}

func TestE13AdaptiveWithinLimits(t *testing.T) {
	tabs := checkTables(t, "E13")
	for _, row := range tabs[0].Rows {
		if row[len(row)-1] != "true" {
			t.Fatalf("E13 row not all named: %v", row)
		}
		maxName, err := strconv.Atoi(row[1])
		if err != nil {
			t.Fatalf("bad max-name cell %q", row[1])
		}
		limit, err := strconv.Atoi(row[2])
		if err != nil {
			t.Fatalf("bad limit cell %q", row[2])
		}
		if maxName >= limit {
			t.Fatalf("E13 adaptive name limit violated: %v", row)
		}
	}
}

func TestE12ShowsGeometryContrast(t *testing.T) {
	tabs := checkTables(t, "E12")
	// Paper-literal rows must have materially higher fallback fractions
	// than corrected rows at the same n.
	byN := map[string]map[string]float64{}
	for _, row := range tabs[0].Rows {
		n, kind := row[0], row[1]
		fb, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatalf("bad fallback cell %q: %v", row[4], err)
		}
		if byN[n] == nil {
			byN[n] = map[string]float64{}
		}
		byN[n][kind] = fb
	}
	for n, kinds := range byN {
		if kinds["corrected"]+0.25 >= kinds["paper-literal"] {
			t.Fatalf("n=%s: corrected fallback %.3f not clearly below literal %.3f",
				n, kinds["corrected"], kinds["paper-literal"])
		}
	}
}

func TestE15ChurnInvariants(t *testing.T) {
	tabs := checkTables(t, "E15")
	for _, row := range tabs[0].Rows {
		// Acquires drained: every (backend, n, k) cell churned k workers
		// for the stated cycle count over all trials.
		k, err := strconv.Atoi(row[2])
		if err != nil {
			t.Fatalf("bad k cell %q: %v", row[2], err)
		}
		cycles, err := strconv.Atoi(row[3])
		if err != nil {
			t.Fatalf("bad cycles cell %q: %v", row[3], err)
		}
		acquires, err := strconv.Atoi(row[len(row)-1])
		if err != nil {
			t.Fatalf("bad acquires cell %q: %v", row[len(row)-1], err)
		}
		if want := k * cycles * tiny().Trials; acquires != want {
			t.Fatalf("E15 row acquires %d, want %d: %v", acquires, want, row)
		}
		// The level arena's adaptivity claim: issued names stay within a
		// small constant of the peak occupancy.
		if row[0] == "level-array" {
			ratio, err := strconv.ParseFloat(row[6], 64)
			if err != nil {
				t.Fatalf("bad name/active cell %q: %v", row[6], err)
			}
			if ratio > 16 {
				t.Fatalf("E15 level arena name/active ratio %.1f too large: %v", ratio, row)
			}
		}
	}
}

// TestElasticTightUnderResize pins the tightness-under-resize envelope
// from the recorded E15/E17 rows: at equal peak holder count k, the
// elastic ladder must stay within the level prefix a fixed ladder
// provisioned for that contention would own — issued names and resident
// capacity both (the per-trial assertElasticAdaptive gate enforces the
// capacity half; this re-derives the name half from the table). The rows
// must exist: the registry enumeration feeding both experiments is
// required to include the elastic backend.
func TestElasticTightUnderResize(t *testing.T) {
	rows := 0
	for _, row := range checkTables(t, "E15")[0].Rows {
		if row[0] != "elastic-level" {
			continue
		}
		rows++
		n, _ := strconv.Atoi(row[1])
		k, _ := strconv.Atoi(row[2])
		peak, err := strconv.ParseInt(row[4], 10, 64)
		if err != nil {
			t.Fatalf("bad peak-active cell %q: %v", row[4], err)
		}
		maxName, err := strconv.Atoi(row[5])
		if err != nil {
			t.Fatalf("bad max-name cell %q: %v", row[5], err)
		}
		if env := elasticEnvelope(n, peak+int64(k)); int64(maxName) > env {
			t.Fatalf("E15 elastic max name+1 %d outside the %d-name envelope of %d peak holders: %v",
				maxName, env, peak, row)
		}
	}
	for _, row := range checkTables(t, "E17")[0].Rows {
		if row[0] != "elastic-level" {
			continue
		}
		rows++
		n, _ := strconv.Atoi(row[2])
		batch, _ := strconv.Atoi(row[3])
		k, _ := strconv.Atoi(row[4])
		peak, err := strconv.ParseInt(row[8], 10, 64)
		if err != nil {
			t.Fatalf("bad peak-active cell %q: %v", row[8], err)
		}
		maxName, err := strconv.Atoi(row[7])
		if err != nil {
			t.Fatalf("bad max-name cell %q: %v", row[7], err)
		}
		if env := elasticEnvelope(n, peak+int64(k*batch)); int64(maxName) > env {
			t.Fatalf("E17 elastic max name+1 %d outside the %d-name envelope of %d peak holders: %v",
				maxName, env, peak, row)
		}
	}
	if rows == 0 {
		t.Fatal("no elastic-level rows in E15/E17 — the registry enumeration dropped the backend")
	}
}

func TestE16ShardedInvariants(t *testing.T) {
	tabs := checkTables(t, "E16")
	for _, row := range tabs[0].Rows {
		// Every cell drained its full churn: workers x cycles x trials.
		g, err := strconv.Atoi(row[2])
		if err != nil {
			t.Fatalf("bad goroutines cell %q: %v", row[2], err)
		}
		acquires, err := strconv.Atoi(row[4])
		if err != nil {
			t.Fatalf("bad acquires cell %q: %v", row[4], err)
		}
		if want := g * e16Churn.Cycles * tiny().Trials; acquires != want {
			t.Fatalf("E16 row acquires %d, want %d: %v", acquires, want, row)
		}
		// The tightness envelope: issued names stay below the arena bound,
		// and under tight provisioning peak occupancy reaches the capacity.
		maxName, err := strconv.Atoi(row[7])
		if err != nil {
			t.Fatalf("bad max-name cell %q: %v", row[7], err)
		}
		capacity, err := strconv.Atoi(row[3])
		if err != nil {
			t.Fatalf("bad capacity cell %q: %v", row[3], err)
		}
		// Level ladders bound issued names by < 4x capacity (single and
		// striped alike; see LevelArena).
		if maxName > 4*capacity {
			t.Fatalf("E16 max name %d blows the 4x capacity envelope: %v", maxName, row)
		}
	}
}

func TestE17WordEngineInvariants(t *testing.T) {
	tabs := checkTables(t, "E17")
	// steps/acquire of every (backend, n, batch) cell, keyed by scan mode,
	// to re-derive the word-vs-bit comparison from the raw rows.
	steps := make(map[string]map[string]float64)
	for _, row := range tabs[0].Rows {
		backend, scan := row[0], row[1]
		k, err := strconv.Atoi(row[4])
		if err != nil {
			t.Fatalf("bad k cell %q: %v", row[4], err)
		}
		acquires, err := strconv.Atoi(row[len(row)-1])
		if err != nil {
			t.Fatalf("bad acquires cell %q: %v", row[len(row)-1], err)
		}
		batch, err := strconv.Atoi(row[3])
		if err != nil {
			t.Fatalf("bad batch cell %q: %v", row[3], err)
		}
		// Every cell drained its full churn: k workers x cycles x batch
		// names per cycle x trials.
		if want := k * e17Churn.Cycles * batch * tiny().Trials; acquires != want {
			t.Fatalf("E17 row acquires %d, want %d: %v", acquires, want, row)
		}
		cell := backend + "/" + row[2] + "/" + row[3]
		if steps[cell] == nil {
			steps[cell] = make(map[string]float64)
		}
		v, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			t.Fatalf("bad steps cell %q: %v", row[5], err)
		}
		steps[cell][scan] = v
	}
	for cell, modes := range steps {
		bit, word := modes["bit"], modes["word"]
		if bit == 0 || word == 0 {
			t.Fatalf("cell %s missing a scan mode: %v", cell, modes)
		}
		// The tentpole claim at experiment scale: the word path must never
		// be costlier, and the level backend must beat 2x.
		if word > bit {
			t.Fatalf("cell %s: word path %.1f steps/acquire above bit path %.1f", cell, word, bit)
		}
		if strings.HasPrefix(cell, "level-array/") && word*2 > bit {
			t.Fatalf("cell %s: word path %.1f not >= 2x below bit path %.1f", cell, word, bit)
		}
	}
}

func TestE18FaultInjectionInvariants(t *testing.T) {
	tabs := checkTables(t, "E18")
	for _, row := range tabs[0].Rows {
		// Crash modes drawn per worker must sum to workers x rounds x trials.
		k, _ := strconv.Atoi(row[2])
		rounds, _ := strconv.Atoi(row[3])
		total := 0
		for _, col := range []int{4, 5, 6, 7} {
			v, err := strconv.Atoi(row[col])
			if err != nil {
				t.Fatalf("bad mode cell %q: %v", row[col], err)
			}
			total += v
		}
		if want := k * rounds * tiny().Trials; total != want {
			t.Fatalf("E18 modes sum %d, want %d: %v", total, want, row)
		}
		// Every mid-release victim is adopted (ClearOwned zeroed its stamp);
		// a pre-publish orphan is adopted only when its slot's stamp was
		// zero — one landing on a stale tombstone left by an earlier
		// round's reclaim is swept directly as a walked-away bit.
		prepub, _ := strconv.Atoi(row[6])
		midrel, _ := strconv.Atoi(row[7])
		adopted, _ := strconv.Atoi(row[9])
		if adopted < midrel || adopted > prepub+midrel {
			t.Fatalf("E18 adopted %d outside [%d, %d]: %v", adopted, midrel, prepub+midrel, row)
		}
		// Resumed reclaims equal the planted reaper crashes.
		planted, _ := strconv.Atoi(row[8])
		resumed, _ := strconv.Atoi(row[11])
		if resumed != planted {
			t.Fatalf("E18 resumed %d, want %d planted suspects: %v", resumed, planted, row)
		}
		// Only the tau backend may leak device bits.
		leaked, _ := strconv.Atoi(row[12])
		if row[0] != "tau-longlived" && leaked != 0 {
			t.Fatalf("E18 non-tau backend leaked: %v", row)
		}
		if row[0] == "tau-longlived" && leaked != prepub+midrel {
			t.Fatalf("E18 tau leak %d, want one bit per crash window %d: %v", leaked, prepub+midrel, row)
		}
	}
}

func TestE19OpenLoopInvariants(t *testing.T) {
	tabs := checkTables(t, "E19")
	if len(tabs) != 2 {
		t.Fatalf("E19 tables = %d", len(tabs))
	}
	for _, row := range tabs[0].Rows {
		// Accounting: every scheduled arrival is either served or dropped.
		offered, _ := strconv.Atoi(row[3])
		served, _ := strconv.Atoi(row[4])
		dropped, _ := strconv.Atoi(row[5])
		if served+dropped != offered {
			t.Fatalf("E19 served %d + dropped %d != offered %d: %v", served, dropped, offered, row)
		}
		// A provisioned arena never drops: capacity far exceeds in-flight.
		if dropped != 0 {
			t.Fatalf("E19 provisioned arena dropped arrivals: %v", row)
		}
		// Quantiles are ordered: p50 <= p99 <= p999.
		p50, err1 := strconv.ParseFloat(row[7], 64)
		p99, err2 := strconv.ParseFloat(row[8], 64)
		p999, err3 := strconv.ParseFloat(row[9], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatalf("bad quantile cells: %v", row)
		}
		if p50 > p99 || p99 > p999 {
			t.Fatalf("E19 quantiles out of order: %v", row)
		}
	}
	// Knee table: one row per enumerated backend, knee rate within the
	// swept range.
	if want := len(e19Backends()); len(tabs[1].Rows) != want {
		t.Fatalf("E19 knee rows = %d, want %d", len(tabs[1].Rows), want)
	}
	for _, row := range tabs[1].Rows {
		knee, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("bad knee cell %q: %v", row[2], err)
		}
		if knee <= 0 {
			t.Fatalf("E19 no saturation knee found: %v", row)
		}
	}
}

func TestE20DiurnalInvariants(t *testing.T) {
	tabs := checkTables(t, "E20")
	// One row per (backend, n, phase) at trial 0; re-derive the diurnal
	// shape from the recorded rows: residency rises from the opening
	// trickle to cover the peak phase's measured concurrency, then drains
	// back inside the final trickle's envelope — the same law the
	// in-experiment assertions enforce on every trial, pinned here against
	// the recorded table itself.
	type key struct{ backend, n string }
	type phase struct{ k, active, capEnd, peakCap int }
	rows := map[key][]phase{}
	for _, row := range tabs[0].Rows {
		k, _ := strconv.Atoi(row[3])
		active, err := strconv.Atoi(row[5])
		if err != nil {
			t.Fatalf("bad peak-active cell %q: %v", row[5], err)
		}
		c, err := strconv.Atoi(row[6])
		if err != nil {
			t.Fatalf("bad cap@end cell %q: %v", row[6], err)
		}
		peak, err := strconv.Atoi(row[7])
		if err != nil {
			t.Fatalf("bad peak-cap cell %q: %v", row[7], err)
		}
		if c > peak {
			t.Fatalf("E20 cap@end %d above peak %d: %v", c, peak, row)
		}
		id := key{row[0], row[1]}
		rows[id] = append(rows[id], phase{k, active, c, peak})
	}
	if len(rows) == 0 {
		t.Fatal("no E20 rows — the registry enumeration has no elastic backend")
	}
	for id, phases := range rows {
		n, _ := strconv.Atoi(id.n)
		if len(phases) != len(e20Phases(n)) {
			t.Fatalf("E20 %s n=%s: %d phase rows, want %d", id.backend, id.n, len(phases), len(e20Phases(n)))
		}
		mid := len(phases) / 2
		if phases[mid].peakCap <= phases[0].peakCap {
			t.Fatalf("E20 %s n=%s: peak capacity %d never rose above opening %d",
				id.backend, id.n, phases[mid].peakCap, phases[0].peakCap)
		}
		if phases[mid].peakCap < phases[mid].active {
			t.Fatalf("E20 %s n=%s: peak capacity %d below the peak phase's %d concurrent holders",
				id.backend, id.n, phases[mid].peakCap, phases[mid].active)
		}
		last := phases[len(phases)-1]
		if env := elasticEnvelope(n, int64(16*last.k)); int64(last.capEnd) > env {
			t.Fatalf("E20 %s n=%s: final residency %d outside the %d-name envelope of k=%d",
				id.backend, id.n, last.capEnd, env, last.k)
		}
	}
}

func TestE14SimNativeAgree(t *testing.T) {
	tabs := checkTables(t, "E14")
	for _, row := range tabs[0].Rows {
		if row[len(row)-1] != "true" {
			t.Fatalf("E14 row not all named: %v", row)
		}
		ratio, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			t.Fatalf("bad ratio cell %q: %v", row[5], err)
		}
		// Same magnitude: native p50 within 4x of simulated p50 either way.
		if ratio < 0.25 || ratio > 4 {
			t.Fatalf("E14 sim/native diverge: %v", row)
		}
	}
}

func TestE21ChaosInvariants(t *testing.T) {
	tabs := checkTables(t, "E21")
	for _, row := range tabs[0].Rows {
		if row[7] != "0" {
			t.Fatalf("E21 row left violations standing: %v", row)
		}
	}
	// The accounting report carries the same gates as the table, in a form
	// CI can diff: no violation standing, no duplicate ever, scrub a fixed
	// point, drain at or above the floor, and corruption actually injected.
	rep, _ := RunChaos(tiny())
	if len(rep.Cells) == 0 {
		t.Fatal("chaos report has no cells")
	}
	for _, c := range rep.Cells {
		if c.Unrepaired != 0 || c.DuplicateGrants != 0 || !c.ScrubIdle {
			t.Fatalf("chaos cell failed its gates: %+v", c)
		}
		if c.Drained < c.Floor {
			t.Fatalf("chaos cell drained %d below floor %d: %+v", c.Drained, c.Floor, c)
		}
		if len(c.Injected) == 0 {
			t.Fatalf("chaos cell injected nothing: %+v", c)
		}
	}
}
