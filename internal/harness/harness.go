// Package harness defines the experiment suite E1-E21: one reproducible
// experiment per quantitative claim of the paper plus the repository's
// extensions (long-lived churn, the sharded multicore frontend, crash
// recovery, elastic residency, chaos-injected self-healing); see
// ALGORITHMS.md §6 for the index. Each experiment sweeps its parameters
// over seeded trials, verifies correctness of every execution, and emits
// report tables consumed by cmd/renamebench.
package harness

import (
	"fmt"

	"shmrename/internal/core"
	"shmrename/internal/metrics"
	"shmrename/internal/sched"

	// Link every registered arena backend: the registry-enumerating
	// experiments (E15-E20) sweep whatever this import registers.
	_ "shmrename/internal/registry/all"
)

// Config parameterizes a harness run.
type Config struct {
	// Trials is the number of seeded trials per parameter point.
	// Zero selects DefaultTrials.
	Trials int
	// Seed is the base seed; trial t of a sweep uses Seed+t.
	Seed uint64
	// Full widens the n-sweeps to report scale
	// (minutes instead of seconds).
	Full bool
}

// DefaultTrials is the per-point trial count when Config.Trials is zero.
const DefaultTrials = 7

func (c Config) trials() int {
	if c.Trials > 0 {
		return c.Trials
	}
	return DefaultTrials
}

// sweep returns the experiment's n values: quick for tests, full for
// report generation.
func (c Config) sweep(quick, full []int) []int {
	if c.Full {
		return full
	}
	return quick
}

// Experiment is one reproducible experiment.
type Experiment struct {
	ID    string
	Title string
	Claim string
	Run   func(cfg Config) []*metrics.Table
}

// All returns the full suite in index order.
func All() []Experiment {
	return []Experiment{
		expE1(), expE2(), expE3(), expE4(), expE5(), expE6(),
		expE7(), expE8(), expE9(), expE10(), expE11(), expE12(),
		expE13(), expE14(), expE15(), expE16(), expE17(), expE18(),
		expE19(), expE20(), expE21(),
	}
}

// ByID looks up one experiment (case-sensitive, e.g. "E4").
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids in order.
func IDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	return ids
}

// runStats aggregates one instance execution.
type runStats struct {
	maxSteps  int64
	survivors int
	named     int
	crashed   int
}

// measure runs trials of factory-built instances under the fair FIFO
// schedule and collects per-trial statistics. It panics if any execution
// produces duplicate or out-of-range names — experiments must never
// silently report an incorrect run.
func measure(factory func() core.Instance, cfg Config) []runStats {
	out := make([]runStats, 0, cfg.trials())
	for t := 0; t < cfg.trials(); t++ {
		inst := factory()
		res := sched.Run(sched.Config{
			N:    inst.N(),
			Seed: cfg.Seed + uint64(t),
			Fast: sched.FastFIFO,
			Body: inst.Body,
		})
		if err := sched.VerifyUnique(res, inst.M()); err != nil {
			panic(fmt.Sprintf("harness: %s trial %d: %v", inst.Label(), t, err))
		}
		out = append(out, runStats{
			maxSteps:  sched.MaxSteps(res),
			survivors: sched.CountStatus(res, sched.Unnamed),
			named:     sched.CountStatus(res, sched.Named),
			crashed:   sched.CountStatus(res, sched.Crashed),
		})
	}
	return out
}

func maxStepsOf(stats []runStats) []int64 {
	out := make([]int64, len(stats))
	for i, s := range stats {
		out[i] = s.maxSteps
	}
	return out
}

func survivorsOf(stats []runStats) []int64 {
	out := make([]int64, len(stats))
	for i, s := range stats {
		out[i] = int64(s.survivors)
	}
	return out
}

func allNamed(stats []runStats, n int) bool {
	for _, s := range stats {
		if s.named != n {
			return false
		}
	}
	return true
}

// pow2s returns 2^lo .. 2^hi.
func pow2s(lo, hi int) []int {
	var out []int
	for e := lo; e <= hi; e++ {
		out = append(out, 1<<e)
	}
	return out
}

// fitRow formats a fit as "A + B·shape (R²=...)".
func fitRow(f metrics.Fit, shape string) string {
	return fmt.Sprintf("%.1f + %.2f·%s (R2=%.3f)", f.A, f.B, shape, f.R2)
}
