//go:build unix

package harness

import (
	"fmt"
	"os"
	"path/filepath"

	"shmrename/internal/chaos"
	"shmrename/internal/integrity"
	"shmrename/internal/metrics"
	"shmrename/internal/persist"
	"shmrename/internal/prng"
	"shmrename/internal/shm"
)

// e21FileNames is the namespace size of the on-disk chaos rows, and the
// word offsets of the documented file layout (persist package doc): 8
// superblock words, then ⌈m/64⌉ bitmap words, then m stamp words.
const (
	e21FileNames    = 128
	e21HdrWords     = 8
	e21BitmapOff    = e21HdrWords * 8
	e21StampsOff    = e21BitmapOff + (e21FileNames+63)/64*8
	e21FileSize     = e21StampsOff + e21FileNames*8
	e21FileHeldHint = 16
)

// e21FileTable is the on-disk half of E21: corruption of the mmap-backed
// namespace file itself. Superblock damage — torn header words, truncated
// files — must be rejected by persist.Open with a descriptive error before
// any mapped page is touched; bitmap and stamp page flips must attach
// cleanly and then be contained by a post-attach integrity scrub, with the
// same no-duplicate drain gate as the in-process matrix.
func e21FileTable(cfg Config) *metrics.Table {
	tab := metrics.NewTable("E21 namespace file chaos",
		"corruption", "attempts", "rejected at open", "contained by scrub")
	dir, err := os.MkdirTemp("", "e21-chaos")
	if err != nil {
		panic(fmt.Sprintf("E21: temp dir: %v", err))
	}
	defer os.RemoveAll(dir)
	pristine := e21Pristine(dir, cfg.Seed)
	r := prng.NewStream(cfg.Seed, 0xE21)

	// Torn superblock: one seeded bit flip in each checksum-covered header
	// word (magic, version, name count, CRC). Every flip must be refused.
	tornWords := []int64{0, 1, 2, 4}
	rejected := 0
	for _, w := range tornWords {
		path := e21Copy(dir, pristine, fmt.Sprintf("torn%d", w))
		if err := chaos.FlipFileBit(path, w*8+int64(r.Intn(8)), uint(r.Intn(8))); err != nil {
			panic(fmt.Sprintf("E21: %v", err))
		}
		if _, err := persist.Open(path, persist.Options{Holder: 100}); err != nil {
			rejected++
		} else {
			panic(fmt.Sprintf("E21: torn superblock word %d accepted at open", w))
		}
	}
	tab.AddRow("torn superblock word", len(tornWords), rejected, "n/a")

	// Truncation: remnants cut below the superblock and below the geometry
	// the header advertises. Every remnant must be refused.
	truncs := []int64{1, 31, e21HdrWords*8 - 1, e21FileSize - 8, e21FileSize - 1}
	rejected = 0
	for i, size := range truncs {
		path := e21Copy(dir, pristine, fmt.Sprintf("trunc%d", i))
		if err := chaos.TruncateFile(path, size); err != nil {
			panic(fmt.Sprintf("E21: %v", err))
		}
		if _, err := persist.Open(path, persist.Options{Holder: 100}); err != nil {
			rejected++
		} else {
			panic(fmt.Sprintf("E21: file truncated to %d bytes accepted at open", size))
		}
	}
	tab.AddRow("truncated file", len(truncs), rejected, "n/a")

	// Bitmap and stamp page flips: the header is intact, so the file must
	// attach — and the scrub must contain whatever the flip produced.
	contained := 0
	flips := cfg.trials()
	for i := 0; i < flips; i++ {
		path := e21Copy(dir, pristine, fmt.Sprintf("page%d", i))
		off := e21BitmapOff + int64(r.Intn(int(e21FileSize-e21BitmapOff)))
		if err := chaos.FlipFileBit(path, off, uint(r.Intn(8))); err != nil {
			panic(fmt.Sprintf("E21: %v", err))
		}
		e21ScrubFile(path, cfg.Seed+uint64(i))
		contained++
	}
	tab.AddRow("bitmap/stamp page flip", flips, "n/a", contained)
	tab.Note = "every superblock corruption rejected at open with a descriptive error; every page flip contained: no violation standing, no duplicate grant"
	return tab
}

// e21Pristine lays out a valid namespace file with held names — live state
// for the page flips to land on.
func e21Pristine(dir string, seed uint64) string {
	path := filepath.Join(dir, "pristine")
	a, err := persist.Open(path, persist.Options{
		Names:  e21FileNames,
		Epochs: shm.NewCounterEpochs(1),
		Holder: 90,
	})
	if err != nil {
		panic(fmt.Sprintf("E21: create pristine namespace: %v", err))
	}
	p := shm.NewProc(90, prng.NewStream(seed, 90), nil, 0)
	if got := a.AcquireN(p, e21FileHeldHint, nil); len(got) != e21FileHeldHint {
		panic(fmt.Sprintf("E21: pristine namespace acquired %d of %d", len(got), e21FileHeldHint))
	}
	if err := a.Close(); err != nil {
		panic(fmt.Sprintf("E21: close pristine namespace: %v", err))
	}
	return path
}

// e21Copy clones the pristine file for one corruption case.
func e21Copy(dir, src, name string) string {
	b, err := os.ReadFile(src)
	if err != nil {
		panic(fmt.Sprintf("E21: read pristine: %v", err))
	}
	dst := filepath.Join(dir, name)
	if err := os.WriteFile(dst, b, 0o644); err != nil {
		panic(fmt.Sprintf("E21: copy pristine: %v", err))
	}
	return dst
}

// e21ScrubFile attaches to a page-flipped namespace, scrubs it to a fixed
// point, and runs the no-duplicate drain gate.
func e21ScrubFile(path string, seed uint64) {
	ep := shm.NewCounterEpochs(2)
	a, err := persist.Open(path, persist.Options{Epochs: ep, Holder: 91})
	if err != nil {
		panic(fmt.Sprintf("E21: page-flipped namespace refused at open: %v", err))
	}
	defer a.Close()
	s := integrity.NewScrubber(a, integrity.Config{
		Epochs: ep, TTL: e21TTL, Quarantine: true, MaxEpochAhead: e21MaxAhead,
	})
	maint := shm.NewProc(91, prng.NewStream(seed, 91), nil, 0)
	first := s.Scrub(maint)
	if first.Unrepaired != 0 {
		panic(fmt.Sprintf("E21: page flip left %d violations standing", first.Unrepaired))
	}
	second := s.Scrub(maint)
	if second.Repaired+second.Quarantined+second.Unrepaired != 0 {
		panic(fmt.Sprintf("E21: file scrub not a fixed point: %+v", second))
	}
	quar, held := e21Withdrawn(a)
	drainer := shm.NewProc(92, prng.NewStream(seed, 92), nil, 0)
	granted := map[int]bool{}
	for {
		name := a.Acquire(drainer)
		if name < 0 {
			break
		}
		if granted[name] || quar[name] || held[name] {
			panic(fmt.Sprintf("E21: file drain granted unavailable name %d", name))
		}
		granted[name] = true
	}
	if floor := e21FileNames - len(quar) - len(held); len(granted) < floor {
		panic(fmt.Sprintf("E21: file drain served %d names, floor %d", len(granted), floor))
	}
}
