package harness

import (
	"math"

	"shmrename/internal/core"
	"shmrename/internal/metrics"
)

// expE4 validates Lemma 6: the rounds algorithm leaves at most
// 2n/(log log n)^ℓ survivors within (log log n)^ℓ steps, w.h.p.
func expE4() Experiment {
	return Experiment{
		ID:    "E4",
		Title: "Lemma 6: rounds algorithm survivors and steps",
		Claim: "survivors <= 2n/(loglog n)^l within O((loglog n)^l) steps w.h.p.",
		Run: func(cfg Config) []*metrics.Table {
			tab := metrics.NewTable("E4 rounds algorithm",
				"l", "n", "rounds", "step budget", "steps max",
				"survivors p50", "survivors max", "bound 2n/(loglog n)^l", "within bound")
			for _, ell := range []int{1, 2, 3} {
				for _, n := range cfg.sweep(pow2s(10, 14), pow2s(10, 18)) {
					ref := core.NewLooseRounds(n, core.RoundsConfig{Ell: ell})
					stats := measure(func() core.Instance {
						return core.NewLooseRounds(n, core.RoundsConfig{Ell: ell})
					}, cfg)
					surv := metrics.Summarize(survivorsOf(stats))
					steps := metrics.Summarize(maxStepsOf(stats))
					bound := ref.SurvivorBound()
					tab.AddRow(ell, n, ref.Rounds(), ref.StepBudget(),
						steps.Max, surv.P50, surv.Max, bound,
						float64(surv.Max) <= bound)
				}
			}
			return []*metrics.Table{tab}
		},
	}
}

// expE5 validates Corollary 7: loose renaming with m = n + 2n/(loglog n)^ℓ
// names in O((loglog n)^ℓ) steps.
func expE5() Experiment {
	return Experiment{
		ID:    "E5",
		Title: "Corollary 7: loose renaming, rounds + backfill",
		Claim: "all n named within m = n + 2n/(loglog n)^l, O((loglog n)^l) steps w.h.p.",
		Run: func(cfg Config) []*metrics.Table {
			tab := metrics.NewTable("E5 corollary 7",
				"l", "n", "m", "extra names", "inner budget",
				"steps p50", "steps p90", "steps max", "all named")
			for _, ell := range []int{1, 2} {
				for _, n := range cfg.sweep(pow2s(10, 13), pow2s(10, 16)) {
					ref := core.NewCorollary7(n, core.RoundsConfig{Ell: ell}, nil)
					stats := measure(func() core.Instance {
						return core.NewCorollary7(n, core.RoundsConfig{Ell: ell}, nil)
					}, cfg)
					steps := metrics.Summarize(maxStepsOf(stats))
					tab.AddRow(ell, n, ref.M(), ref.Extra(), ref.InnerStepBudget(),
						steps.P50, steps.P90, steps.Max, allNamed(stats, n))
				}
			}
			return []*metrics.Table{tab}
		},
	}
}

// expE6 validates Lemma 8: the clusters algorithm leaves at most
// n/(log n)^ℓ survivors within 2ℓ(log log n)² steps, w.h.p.
func expE6() Experiment {
	return Experiment{
		ID:    "E6",
		Title: "Lemma 8: clusters algorithm survivors and steps",
		Claim: "survivors <= n/(log n)^l within 2l(loglog n)^2 steps w.h.p.",
		Run: func(cfg Config) []*metrics.Table {
			tab := metrics.NewTable("E6 clusters algorithm",
				"l", "gamma", "n", "phases", "step budget", "steps max",
				"survivors p50", "survivors max", "bound n/(log n)^l", "within bound")
			tab.Note = "gamma scales the per-phase step count; the paper's literal " +
				"constant (gamma=1) misses its l=2 bound by ~1.3x at these n, " +
				"gamma=2 restores it (finite-size constants; see ALGORITHMS.md §4)"
			type point struct {
				ell   int
				gamma float64
			}
			for _, pt := range []point{{1, 1}, {2, 1}, {2, 2}} {
				for _, n := range cfg.sweep(pow2s(10, 14), pow2s(10, 18)) {
					ref := core.NewLooseClusters(n, core.ClustersConfig{Ell: pt.ell, Gamma: pt.gamma})
					stats := measure(func() core.Instance {
						return core.NewLooseClusters(n, core.ClustersConfig{Ell: pt.ell, Gamma: pt.gamma})
					}, cfg)
					surv := metrics.Summarize(survivorsOf(stats))
					steps := metrics.Summarize(maxStepsOf(stats))
					bound := ref.SurvivorBound()
					tab.AddRow(pt.ell, pt.gamma, n, ref.Phases(), ref.StepBudget(),
						steps.Max, surv.P50, surv.Max, bound,
						float64(surv.Max) <= bound)
				}
			}
			return []*metrics.Table{tab}
		},
	}
}

// expE7 validates Corollary 9: loose renaming with m = n + 2n/(log n)^ℓ in
// O((log log n)²) steps.
func expE7() Experiment {
	return Experiment{
		ID:    "E7",
		Title: "Corollary 9: loose renaming, clusters + backfill",
		Claim: "all n named within m = n + 2n/(log n)^l, O((loglog n)^2) steps w.h.p.",
		Run: func(cfg Config) []*metrics.Table {
			tab := metrics.NewTable("E7 corollary 9",
				"l", "n", "m", "extra names", "inner budget",
				"steps p50", "steps p90", "steps max", "all named",
				"(loglog n)^2")
			for _, ell := range []int{1, 2} {
				for _, n := range cfg.sweep(pow2s(10, 13), pow2s(10, 16)) {
					ref := core.NewCorollary9(n, core.ClustersConfig{Ell: ell}, nil)
					stats := measure(func() core.Instance {
						return core.NewCorollary9(n, core.ClustersConfig{Ell: ell}, nil)
					}, cfg)
					steps := metrics.Summarize(maxStepsOf(stats))
					ll := core.LogLog2(n)
					tab.AddRow(ell, n, ref.M(), ref.Extra(), ref.InnerStepBudget(),
						steps.P50, steps.P90, steps.Max, allNamed(stats, n),
						math.Pow(ll, 2))
				}
			}
			return []*metrics.Table{tab}
		},
	}
}
