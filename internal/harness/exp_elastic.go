package harness

import (
	"fmt"

	"shmrename/internal/longlived"
	"shmrename/internal/metrics"
	"shmrename/internal/registry"
	"shmrename/internal/sched"
)

// e20Backends enumerates the registry for the diurnal ramp: every
// deterministic elastic backend (resizes must serialize under the
// simulated gate for the phases to replay). Today the enumeration yields
// elastic-level; a future elastic backend joins the experiment — and the
// adaptivity assertions below — by registering with Caps.Elastic.
func e20Backends() []registry.Backend {
	var out []registry.Backend
	for _, b := range registry.All() {
		if b.Caps.Elastic && b.Caps.Deterministic {
			out = append(out, b)
		}
	}
	return out
}

// e20Phases is the diurnal k schedule on a capacity-n arena: load climbs
// from a trickle to full provisioning and back down, the regime BENCH_6
// records for the public API.
func e20Phases(n int) []int {
	ks := []int{n / 64, n / 16, n / 4, n, n / 4, n / 16, n / 64}
	for i, k := range ks {
		if k < 1 {
			ks[i] = 1
		}
	}
	return ks
}

// expE20 runs a rising-then-falling holder count over ONE persistent
// elastic arena — no rebuilds between phases, so residency carries over
// and must adapt in both directions. Each phase is a deterministic
// simulated churn of k workers; per phase the table records the resident
// capacity and footprint at phase end next to the amortized acquire cost.
//
// Three structural claims are asserted per trial, not just recorded:
// every phase's churn drains whole (unique live names, nothing held
// after), residency climbs with the ramp (the peak phase ends with more
// capacity resident than the opening trickle — and never less than that
// phase's own peak holder count, measured, not assumed: the scheduler
// decides how many of the k workers actually overlap), and the final
// trickle phase finds the ladder drained back inside the envelope of a
// small multiple of its own k — growth tracks contention up AND down,
// the tentpole elasticity claim.
func expE20() Experiment {
	return Experiment{
		ID:    "E20",
		Title: "Elastic diurnal ramp: residency tracks rising and falling load",
		Claim: "one persistent elastic arena under a diurnal k ramp grows residency to cover the peak and drains it back near the floor once contention subsides",
		Run: func(cfg Config) []*metrics.Table {
			tab := metrics.NewTable("E20 elastic diurnal ramp",
				"backend", "n", "phase", "k", "cycles", "peak active", "cap@end",
				"peak cap", "resident KiB", "steps/acquire", "acquires")
			for _, b := range e20Backends() {
				for _, n := range cfg.sweep([]int{512}, []int{4096}) {
					phases := e20Phases(n)
					for t := 0; t < cfg.trials(); t++ {
						arena := b.New(registry.Config{
							Capacity: n,
							Label:    fmt.Sprintf("e20-%s-%d-%d", b.Name, n, t),
						})
						el, ok := arena.(registry.Elastic)
						if !ok {
							panic(fmt.Sprintf("E20 %s: Caps.Elastic backend lacks registry.Elastic", b.Name))
						}
						fp, _ := arena.(registry.Footprint)
						peakCap := make([]int, len(phases))
						peakActive := make([]int64, len(phases))
						for pi, k := range phases {
							// Low phases run long enough for the shrink
							// hysteresis (ShrinkAfter consecutive eligible
							// releases per retired level) to converge.
							cycles := 8
							if min := 768 / k; cycles < min {
								cycles = min
							}
							mon := longlived.NewMonitor(arena.NameBound())
							res := sched.Run(sched.Config{
								N:    k,
								Seed: cfg.Seed + uint64(1000*t+pi),
								Fast: sched.FastFIFO,
								Body: longlived.ChurnBody(arena, mon, longlived.ChurnConfig{
									Cycles: cycles, HoldMin: 0, HoldMax: 4,
								}),
								AfterStep: arena.Clock(),
							})
							if err := mon.Err(); err != nil {
								panic(fmt.Sprintf("E20 %s n=%d phase %d trial %d: %v", b.Name, n, pi, t, err))
							}
							if got := sched.CountStatus(res, sched.Unnamed); got != k {
								panic(fmt.Sprintf("E20 %s n=%d phase %d trial %d: %d of %d workers drained", b.Name, n, pi, t, got, k))
							}
							if held := arena.Held(); held != 0 {
								panic(fmt.Sprintf("E20 %s n=%d phase %d trial %d: %d names still held", b.Name, n, pi, t, held))
							}
							peakCap[pi] = el.PeakCapacity()
							peakActive[pi] = mon.MaxActive()
							var kib float64
							if fp != nil {
								kib = float64(fp.ResidentBytes()) / 1024
							}
							if t == 0 {
								tab.AddRow(b.Name, n, pi, k, cycles, mon.MaxActive(), el.CapacityNow(),
									el.PeakCapacity(), fmt.Sprintf("%.1f", kib), mon.StepsPerAcquire(), mon.Acquires())
							}
						}
						// The ladder shrinks as each phase's churn drains, so the
						// growth half of the claim reads the monotone PeakCapacity
						// snapshots: it must move between the opening trickle and
						// the peak phase — the ramp forced real growth.
						mid := len(phases) / 2
						if peakCap[mid] <= peakCap[0] {
							panic(fmt.Sprintf("E20 %s n=%d trial %d: peak capacity %d never rose above the opening trickle's %d", b.Name, n, t, peakCap[mid], peakCap[0]))
						}
						if int64(el.PeakCapacity()) < peakActive[mid] {
							panic(fmt.Sprintf("E20 %s n=%d trial %d: peak capacity %d below the peak phase's %d concurrent holders", b.Name, n, t, el.PeakCapacity(), peakActive[mid]))
						}
						kFinal := phases[len(phases)-1]
						if now, env := el.CapacityNow(), elasticEnvelope(n, int64(16*kFinal)); int64(now) > env {
							panic(fmt.Sprintf("E20 %s n=%d trial %d: residency %d did not drain inside the %d-name envelope of the final k=%d phase", b.Name, n, t, now, env, kFinal))
						}
					}
				}
			}
			tab.Note = "one arena per trial, never rebuilt: cap@end rises with the ramp to cover peak concurrency and falls back toward the 64-name floor"
			return []*metrics.Table{tab}
		},
	}
}
