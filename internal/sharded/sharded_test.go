package sharded

import (
	"testing"

	"shmrename/internal/longlived"
	"shmrename/internal/prng"
	"shmrename/internal/sched"
	"shmrename/internal/shm"
)

// nativeProc returns an ungated proc for direct (non-simulated) arena use.
func nativeProc(id int) *shm.Proc {
	return shm.NewProc(id, prng.NewStream(17, id), nil, 1<<22)
}

// testArenas returns one sharded instance per sub-backend.
func testArenas(capacity, shards, maxPasses int) []*Arena {
	return []*Arena{
		New(capacity, Config{Shards: shards, MaxPasses: maxPasses, Sub: SubLevel, Label: "ts-level"}),
		New(capacity, Config{Shards: shards, MaxPasses: maxPasses, Sub: SubTau, Label: "ts-tau"}),
	}
}

func TestShardGeometry(t *testing.T) {
	a := New(256, Config{Shards: 4, Sub: SubLevel, Label: "ts-geom"})
	if a.Shards() != 4 {
		t.Fatalf("shards = %d, want 4", a.Shards())
	}
	// Shards own disjoint contiguous ranges covering [0, bound).
	total, maxSub := 0, 0
	for s := 0; s < a.Shards(); s++ {
		if got := a.ShardBase(s); got != total {
			t.Fatalf("shard %d base = %d, want %d", s, got, total)
		}
		sub := a.Shard(s).NameBound()
		total += sub
		if sub > maxSub {
			maxSub = sub
		}
		if got := a.Shard(s).Capacity(); got != 64 {
			t.Fatalf("shard %d capacity = %d, want 64", s, got)
		}
	}
	if a.NameBound() != total {
		t.Fatalf("bound = %d, want %d", a.NameBound(), total)
	}
	// The documented tightness envelope: bound <= shards x per-shard bound.
	if a.NameBound() > a.Shards()*maxSub {
		t.Fatalf("bound %d exceeds shards(%d) x per-shard bound(%d)",
			a.NameBound(), a.Shards(), maxSub)
	}
	// Uneven split: capacity rounds up per shard, never down.
	u := New(100, Config{Shards: 3, Sub: SubLevel, Label: "ts-geom-u"})
	for s := 0; s < 3; s++ {
		if got := u.Shard(s).Capacity(); got != 34 {
			t.Fatalf("uneven shard %d capacity = %d, want 34", s, got)
		}
	}
}

func TestConfigPanics(t *testing.T) {
	cases := []func(){
		func() { New(0, Config{Shards: 1}) },
		func() { New(16, Config{Shards: 0}) },
		func() { New(16, Config{Shards: 17}) },
		func() { New(16, Config{Shards: 2, Sub: SubBackend(99)}) },
	}
	for i, mk := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			mk()
		}()
	}
}

// TestAcquireReleaseReacquire checks the long-lived contract end to end on
// both sub-backends: at least capacity distinct in-bound names, full drain,
// fresh generation after the drain.
func TestAcquireReleaseReacquire(t *testing.T) {
	const capacity = 96
	for _, a := range testArenas(capacity, 3, 4) {
		t.Run(a.Label(), func(t *testing.T) {
			p := nativeProc(0)
			var names []int
			seen := make(map[int]bool)
			for {
				n := a.Acquire(p)
				if n == -1 {
					break
				}
				if n < 0 || n >= a.NameBound() {
					t.Fatalf("acquire %d: name %d outside [0,%d)", len(names), n, a.NameBound())
				}
				if seen[n] {
					t.Fatalf("acquire %d: name %d issued twice", len(names), n)
				}
				seen[n] = true
				names = append(names, n)
				if len(names) > a.NameBound() {
					t.Fatal("more live names than the name bound")
				}
			}
			if len(names) < capacity {
				t.Fatalf("only %d acquires before full, capacity %d guaranteed", len(names), capacity)
			}
			if h := a.Held(); h != len(names) {
				t.Fatalf("held %d, want %d", h, len(names))
			}
			for _, n := range names {
				if !a.IsHeld(n) {
					t.Fatalf("name %d not held before release", n)
				}
				a.Touch(p, n)
				a.Release(p, n)
				if a.IsHeld(n) {
					t.Fatalf("name %d still held after release", n)
				}
			}
			if h := a.Held(); h != 0 {
				t.Fatalf("held %d after full drain, want 0", h)
			}
			if n := a.Acquire(p); n < 0 {
				t.Fatal("reacquire after drain failed")
			}
		})
	}
}

// TestCrossShardUniqueness is the shard-correctness pin of the acceptance
// criteria: filling the arena to structural capacity, every issued name is
// globally unique, owned by exactly the shard its range says, and the
// per-shard holder counts sum to the global count.
func TestCrossShardUniqueness(t *testing.T) {
	const capacity = 128
	a := New(capacity, Config{Shards: 4, MaxPasses: 4, Sub: SubLevel, Label: "ts-cross"})
	p := nativeProc(0)
	owner := make(map[int]int) // name -> shard derived from the range split
	for {
		n := a.Acquire(p)
		if n < 0 {
			break
		}
		if _, dup := owner[n]; dup {
			t.Fatalf("name %d issued while held", n)
		}
		s := 0
		for s+1 < a.Shards() && a.ShardBase(s+1) <= n {
			s++
		}
		owner[n] = s
		// The owning shard must see the local name held; every other shard
		// must not know it at all (their bounds are local).
		if !a.Shard(s).IsHeld(n - a.ShardBase(s)) {
			t.Fatalf("name %d not held by its owning shard %d", n, s)
		}
	}
	if len(owner) < capacity {
		t.Fatalf("only %d names before full, capacity %d guaranteed", len(owner), capacity)
	}
	perShard := 0
	for s := 0; s < a.Shards(); s++ {
		perShard += a.Shard(s).Held()
	}
	if perShard != len(owner) || a.Held() != len(owner) {
		t.Fatalf("holder counts diverge: shards %d, arena %d, issued %d",
			perShard, a.Held(), len(owner))
	}
}

// TestAffinityMigration checks the routing heuristics: a cold process homes
// by PID, a successful steal migrates the affinity, and a release
// re-targets it at the freed shard.
func TestAffinityMigration(t *testing.T) {
	a := New(64, Config{Shards: 4, MaxPasses: 2, Sub: SubLevel, Label: "ts-aff"})
	p := nativeProc(1)
	if got := a.home(p); got != 1 {
		t.Fatalf("cold home = %d, want pid%%shards = 1", got)
	}
	// Fill the home shard entirely so the next acquire must steal.
	sub := a.Shard(1)
	filler := nativeProc(1)
	for i := 0; i < sub.NameBound(); i++ {
		if sub.Acquire(filler) < 0 {
			break
		}
	}
	n := a.Acquire(p)
	if n < 0 {
		t.Fatal("steal acquire failed")
	}
	s, _ := a.locate(n)
	if s == 1 {
		t.Fatal("acquire landed on the structurally full home shard")
	}
	if got := a.home(p); got != s {
		t.Fatalf("affinity after steal = %d, want winning shard %d", got, s)
	}
	// Releasing re-targets affinity at the freed shard.
	a.Release(p, n)
	if got := a.home(p); got != s {
		t.Fatalf("affinity after release = %d, want freed shard %d", got, s)
	}
}

// TestShardedBatchAcquireRelease checks the batch contract through the
// striped frontend, on both sub-backends and both scan modes: batches are
// served across shards with globally distinct names, and ReleaseN drains
// every touched shard.
func TestShardedBatchAcquireRelease(t *testing.T) {
	const capacity = 96
	mks := []*Arena{
		New(capacity, Config{Shards: 3, MaxPasses: 4, Sub: SubLevel, Label: "ts-batch-l"}),
		New(capacity, Config{Shards: 3, MaxPasses: 4, Sub: SubTau, Label: "ts-batch-t"}),
		New(capacity, Config{Shards: 3, MaxPasses: 4, WordScan: true, Sub: SubLevel, Label: "ts-batch-lw"}),
		New(capacity, Config{Shards: 3, MaxPasses: 4, WordScan: true, Sub: SubTau, Label: "ts-batch-tw"}),
	}
	for i, a := range mks {
		scan := []string{"bit", "bit", "word", "word"}[i]
		t.Run(a.Label()+"/"+scan, func(t *testing.T) {
			p := nativeProc(0)
			seen := make(map[int]bool)
			// One oversized batch forces the route through home, steal,
			// and sweep: a single shard holds only capacity/3 names.
			names := a.AcquireN(p, capacity, nil)
			if len(names) != capacity {
				t.Fatalf("batch got %d of %d (capacity guaranteed)", len(names), capacity)
			}
			for _, n := range names {
				if n < 0 || n >= a.NameBound() {
					t.Fatalf("name %d outside [0,%d)", n, a.NameBound())
				}
				if seen[n] {
					t.Fatalf("name %d issued twice", n)
				}
				seen[n] = true
			}
			if h := a.Held(); h != capacity {
				t.Fatalf("held %d, want %d", h, capacity)
			}
			a.ReleaseN(p, names)
			if h := a.Held(); h != 0 {
				t.Fatalf("held %d after batch drain", h)
			}
			if got := a.AcquireN(p, 8, nil); len(got) != 8 {
				t.Fatalf("reacquire batch got %d of 8", len(got))
			}
		})
	}
}

// TestOccupancyHints checks the full-shard hint life cycle: a failed
// acquire against a full shard sets the hint, a release into the shard
// clears it, and hinted shards are skipped by the steal phase without
// spending steps while the sweep still serves from them.
func TestOccupancyHints(t *testing.T) {
	a := New(64, Config{Shards: 4, MaxPasses: 2, Sub: SubLevel, Label: "ts-hint"})
	p := nativeProc(1) // home shard 1
	// Fill home shard 1 structurally via the sub-arena.
	sub := a.Shard(1)
	filler := nativeProc(1)
	var held []int
	for {
		n := sub.Acquire(filler)
		if n < 0 {
			break
		}
		held = append(held, n)
	}
	if a.ShardOccupied(1) {
		t.Fatal("hint set before any frontend acquire observed the shard")
	}
	// The next frontend acquire fails on home, marks it, and steals.
	n := a.Acquire(p)
	if n < 0 {
		t.Fatal("steal acquire failed")
	}
	if !a.ShardOccupied(1) {
		t.Fatal("full home shard not hinted after failed acquire")
	}
	if s, _ := a.locate(n); s == 1 {
		t.Fatal("acquire landed on the full home shard")
	}
	// A release into the hinted shard reopens it.
	a.Release(p, a.ShardBase(1)+held[0])
	if a.ShardOccupied(1) {
		t.Fatal("hint not cleared by release into the shard")
	}
	// Hints are performance routing only — even stale-full hints on every
	// shard must not defeat the sweep. Fill the arena structurally, free
	// exactly one slot, then force every hint full: the next acquire must
	// still find the freed slot.
	var all []int
	for {
		n := a.Acquire(filler)
		if n < 0 {
			break
		}
		all = append(all, n)
	}
	freed := all[len(all)/2]
	a.Release(filler, freed)
	for s := 0; s < a.Shards(); s++ {
		a.occupied.Set(s)
	}
	got := a.Acquire(nativeProc(2))
	if got != freed {
		t.Fatalf("sweep under stale hints acquired %d, want the freed slot %d", got, freed)
	}
}

// TestShardedGoldenDeterminism pins the deterministic simulated-adversary
// churn fingerprint of the sharded frontend: for a fixed (seed, schedule)
// the monitor aggregates must be bit-identical across refactors, exactly
// like the single-backend goldens in package longlived.
func TestShardedGoldenDeterminism(t *testing.T) {
	type fingerprint struct {
		acquires, maxActive, maxName, acquireSteps int64
	}
	golden := map[string]fingerprint{
		"level/fifo":   {acquires: 144, maxActive: 29, maxName: 63, acquireSteps: 230},
		"level/random": {acquires: 144, maxActive: 25, maxName: 63, acquireSteps: 221},
		"tau/fifo":     {acquires: 144, maxActive: 24, maxName: 63, acquireSteps: 534},
		"tau/random":   {acquires: 144, maxActive: 19, maxName: 63, acquireSteps: 519},
	}
	run := func(mk func() *Arena, fast sched.FastMode) fingerprint {
		a := mk()
		mon := longlived.NewMonitor(a.NameBound())
		sched.Run(sched.Config{
			N:         48,
			Seed:      42,
			Fast:      fast,
			Body:      longlived.ChurnBody(a, mon, longlived.ChurnConfig{Cycles: 3, HoldMin: 0, HoldMax: 4}),
			AfterStep: a.Clock(),
		})
		if err := mon.Err(); err != nil {
			t.Fatal(err)
		}
		if h := a.Held(); h != 0 {
			t.Fatalf("%d names held after drain", h)
		}
		return fingerprint{mon.Acquires(), mon.MaxActive(), mon.MaxName(), mon.AcquireSteps()}
	}
	backends := map[string]func() *Arena{
		"level": func() *Arena {
			return New(64, Config{Shards: 4, Sub: SubLevel, Label: "ts-golden-l"})
		},
		"tau": func() *Arena {
			return New(64, Config{Shards: 4, Sub: SubTau, Label: "ts-golden-t"})
		},
	}
	modes := map[string]sched.FastMode{"fifo": sched.FastFIFO, "random": sched.FastRandom}
	for bname, mk := range backends {
		for mname, mode := range modes {
			key := bname + "/" + mname
			got := run(mk, mode)
			want, ok := golden[key]
			if !ok {
				t.Fatalf("%s: no golden (got %+v)", key, got)
			}
			if got != want {
				t.Errorf("%s: fingerprint %+v, want golden %+v", key, got, want)
			}
		}
	}
}

// TestShardedWordScanGolden pins the word-granular churn fingerprint of
// the striped frontend, mirroring the single-backend word goldens: each
// scan mode is its own deterministic contract.
func TestShardedWordScanGolden(t *testing.T) {
	type fingerprint struct {
		acquires, maxActive, maxName, acquireSteps int64
	}
	golden := map[string]fingerprint{
		"level-word/fifo":   {acquires: 144, maxActive: 38, maxName: 59, acquireSteps: 144},
		"level-word/random": {acquires: 144, maxActive: 33, maxName: 57, acquireSteps: 144},
		"tau-word/fifo":     {acquires: 144, maxActive: 32, maxName: 62, acquireSteps: 482},
		"tau-word/random":   {acquires: 144, maxActive: 19, maxName: 62, acquireSteps: 482},
	}
	run := func(mk func() *Arena, fast sched.FastMode) fingerprint {
		a := mk()
		mon := longlived.NewMonitor(a.NameBound())
		sched.Run(sched.Config{
			N:         48,
			Seed:      42,
			Fast:      fast,
			Body:      longlived.ChurnBody(a, mon, longlived.ChurnConfig{Cycles: 3, HoldMin: 0, HoldMax: 4}),
			AfterStep: a.Clock(),
		})
		if err := mon.Err(); err != nil {
			t.Fatal(err)
		}
		if h := a.Held(); h != 0 {
			t.Fatalf("%d names held after drain", h)
		}
		return fingerprint{mon.Acquires(), mon.MaxActive(), mon.MaxName(), mon.AcquireSteps()}
	}
	backends := map[string]func() *Arena{
		"level-word": func() *Arena {
			return New(64, Config{Shards: 4, WordScan: true, Sub: SubLevel, Label: "ts-goldenw-l"})
		},
		"tau-word": func() *Arena {
			return New(64, Config{Shards: 4, WordScan: true, Sub: SubTau, Label: "ts-goldenw-t"})
		},
	}
	modes := map[string]sched.FastMode{"fifo": sched.FastFIFO, "random": sched.FastRandom}
	for bname, mk := range backends {
		for mname, mode := range modes {
			key := bname + "/" + mname
			got := run(mk, mode)
			want, ok := golden[key]
			if !ok {
				t.Fatalf("%s: no golden (got %+v)", key, got)
			}
			if got != want {
				t.Errorf("%s: fingerprint %+v, want golden %+v", key, got, want)
			}
		}
	}
}

// TestShardedAdversarial churns the sharded frontend under the adaptive
// policies (including the release-starving collider): safety and full
// drain must hold under every adversary.
func TestShardedAdversarial(t *testing.T) {
	policies := map[string]func() sched.Policy{
		"round-robin": sched.RoundRobin,
		"collider":    sched.Collider,
		"starve":      func() sched.Policy { return sched.Starve(0, 1, 2) },
	}
	for pname, mk := range policies {
		for _, sub := range []SubBackend{SubLevel, SubTau} {
			t.Run(sub.String()+"/"+pname, func(t *testing.T) {
				a := New(32, Config{Shards: 4, Sub: sub, Label: "ts-adv-" + sub.String() + "-" + pname})
				mon := longlived.NewMonitor(a.NameBound())
				res := sched.Run(sched.Config{
					N:         24,
					Seed:      7,
					Policy:    mk(),
					Body:      longlived.ChurnBody(a, mon, longlived.ChurnConfig{Cycles: 2, HoldMin: 0, HoldMax: 3}),
					AfterStep: a.Clock(),
					Spaces:    a.Probeables(),
				})
				if err := mon.Err(); err != nil {
					t.Fatal(err)
				}
				if got := sched.CountStatus(res, sched.Unnamed); got != 24 {
					t.Fatalf("%d of 24 workers drained", got)
				}
				if h := a.Held(); h != 0 {
					t.Fatalf("%d names held after drain", h)
				}
			})
		}
	}
}

// TestShardedRaceStorm is the -race storm of the acceptance criteria: real
// goroutines hammer the striped frontend concurrently and the monitor
// asserts that no two live holders ever share a name — within a shard or
// across shards — at any instant.
func TestShardedRaceStorm(t *testing.T) {
	const workers = 48
	cycles := 200
	if testing.Short() {
		cycles = 40
	}
	for _, mk := range []func() *Arena{
		func() *Arena {
			return New(workers, Config{Shards: 4, Padded: true, Sub: SubLevel, Label: "ts-storm-l"})
		},
		func() *Arena {
			return New(workers, Config{Shards: 4, Padded: true, Sub: SubTau, Label: "ts-storm-t"})
		},
		func() *Arena {
			return New(workers, Config{Shards: 4, WordScan: true, Padded: true, Sub: SubLevel, Label: "ts-storm-lw"})
		},
		func() *Arena {
			return New(workers, Config{Shards: 4, WordScan: true, Padded: true, Sub: SubTau, Label: "ts-storm-tw"})
		},
	} {
		a := mk()
		t.Run(a.Label(), func(t *testing.T) {
			mon := longlived.NewMonitor(a.NameBound())
			res := sched.RunNative(workers, 3, longlived.ChurnBody(a, mon, longlived.ChurnConfig{
				Cycles: cycles, HoldMin: 0, HoldMax: 4,
			}))
			if err := mon.Err(); err != nil {
				t.Fatal(err)
			}
			if got := sched.CountStatus(res, sched.Unnamed); got != workers {
				t.Fatalf("%d of %d workers drained", got, workers)
			}
			if want := int64(workers) * int64(cycles); mon.Acquires() != want {
				t.Fatalf("acquires = %d, want %d", mon.Acquires(), want)
			}
			if h := a.Held(); h != 0 {
				t.Fatalf("%d names held after storm", h)
			}
		})
	}
}
