// Package sharded provides the striped frontend of the long-lived
// renaming arena: the name space is partitioned across S independent
// sub-arenas (package longlived backends), so that concurrent Acquire and
// Release traffic from real goroutines scales with cores instead of
// serializing on one backend's shared bitmap words.
//
// # Why stripe
//
// A single longlived.LevelArena funnels every claimer through the same
// level-0 bitmap words: on real cores that is CAS contention and — at high
// occupancy — a backstop scan of the full capacity on every acquire. The
// LevelArray paper (Alistarh et al., arXiv:1405.5461) shows long-lived
// renaming is won or lost on exactly this contention behavior. Striping
// gives each core its own ladder: per-shard capacity is capacity/S, so the
// per-shard ladder is shorter, the per-shard backstop scan is S times
// smaller, and claimers on different shards touch disjoint cache lines.
//
// # Affinity, stealing, sweep
//
// Acquire runs a three-tier protocol:
//
//  1. Home shard: every process has a cached home-shard affinity (its last
//     success site, seeded by PID modulo S). One bounded pass over the home
//     sub-arena resolves the common case with zero cross-shard traffic.
//  2. Work stealing: on a full home shard, up to StealProbes randomly
//     chosen other shards are each tried with one bounded pass. A hit
//     migrates the affinity, so load imbalance self-corrects.
//  3. Full sweep: deterministic rotation over all shards starting at the
//     home shard, up to MaxPasses rounds — the termination guarantee,
//     exactly mirroring the single arena's backstop contract.
//
// Release locates the owning shard from the name alone (shards own disjoint
// contiguous name ranges) and also re-targets the releaser's affinity at
// that shard: a freed slot is the best known hint for where the next
// acquire will succeed, which under tight provisioning routes a releaser
// straight back to its own freed slot.
//
// # Name tightness envelope
//
// Striping trades name tightness for throughput, the trade-off framed by
// "Space Bounds for Adaptive Renaming" (Helmi, Higham, Woelfel,
// arXiv:1603.04067): issued names lie in [0, NameBound) with
// NameBound = Σ_s subBound(s) ≤ S × subBound_max — i.e. the documented
// `shards × per-shard bound` envelope. With level sub-arenas
// subBound(s) < 4·⌈capacity/S⌉, so the global bound stays below
// 4·capacity + 4·S; low per-shard occupancy still concentrates names at
// the bottom of each shard's range, so the largest issued name tracks
// occupancy per stripe rather than globally.
//
// Both execution modes are supported: every operation flows through
// *shm.Proc exactly as in the sub-arenas, so the deterministic adversarial
// simulator schedules sharded churn bit-reproducibly, and native goroutines
// run the same code on sync/atomic.
package sharded

import (
	"fmt"
	"sync/atomic"

	"shmrename/internal/longlived"
	"shmrename/internal/shm"
)

// SubBackend selects the per-shard arena implementation.
type SubBackend uint8

// Per-shard backends.
const (
	// SubLevel stripes longlived.LevelArena sub-arenas (the default).
	SubLevel SubBackend = iota
	// SubTau stripes longlived.TauArena sub-arenas.
	SubTau
)

// String returns the report label of the sub-backend.
func (s SubBackend) String() string {
	switch s {
	case SubLevel:
		return "level"
	case SubTau:
		return "tau"
	default:
		return fmt.Sprintf("sub(%d)", uint8(s))
	}
}

// Config parameterizes a sharded arena.
type Config struct {
	// Shards is the stripe count S (required, >= 1). Each shard is an
	// independent sub-arena guaranteeing ⌈capacity/S⌉ concurrent holders.
	Shards int
	// StealProbes is the number of randomly chosen other shards tried
	// after the home shard fails, before the deterministic full sweep.
	// Default 2.
	StealProbes int
	// MaxPasses bounds full sweeps over all shards before Acquire reports
	// the arena full; 0 means unlimited (simulated runs rely on the
	// scheduler's step budget instead).
	MaxPasses int
	// Sub selects the per-shard backend. Default SubLevel.
	Sub SubBackend
	// Probes is forwarded to each sub-arena (longlived.LevelConfig.Probes
	// or longlived.TauConfig.Probes). 0 selects the sub-arena default.
	Probes int
	// Padded forwards the cache-line-padded bitmap layout to every shard,
	// for native runs on real cores.
	Padded bool
	// Label prefixes the operation-space labels. Default "sharded".
	Label string
}

func (c *Config) fill() {
	if c.StealProbes <= 0 {
		c.StealProbes = 2
	}
	if c.Label == "" {
		c.Label = "sharded"
	}
}

// affinitySlots sizes the home-shard affinity cache. It is a power of two;
// processes hash into it by PID, and a collision merely shares a
// performance hint between two processes — safety never depends on the
// cache's contents.
const affinitySlots = 256

// Arena is the striped arena frontend. It implements longlived.Arena by
// delegating to Shards independent sub-arenas that own disjoint contiguous
// name ranges, so the union of the shards' holder sets is automatically
// duplicate-free: no two live holders can share a name, within or across
// shards. All methods are safe for concurrent use by distinct procs.
type Arena struct {
	cfg    Config
	shards []longlived.Arena
	base   []int // base[s] = first global name of shard s
	stride int   // per-shard name-range width (identical across shards)
	bound  int
	cap    int
	// affinity caches each process's home shard (+1; 0 = unset), indexed
	// by PID & (affinitySlots-1). Purely a routing hint.
	affinity [affinitySlots]atomic.Int32
}

var _ longlived.Arena = (*Arena)(nil)

// New builds a sharded arena guaranteeing capacity concurrent holders
// across all stripes.
func New(capacity int, cfg Config) *Arena {
	if capacity < 1 {
		panic("sharded: capacity must be >= 1")
	}
	if cfg.Shards < 1 {
		panic("sharded: Config.Shards must be >= 1")
	}
	if cfg.Shards > capacity {
		panic(fmt.Sprintf("sharded: Config.Shards %d exceeds capacity %d", cfg.Shards, capacity))
	}
	cfg.fill()
	a := &Arena{cfg: cfg, cap: capacity}
	subCap := (capacity + cfg.Shards - 1) / cfg.Shards
	for s := 0; s < cfg.Shards; s++ {
		label := fmt.Sprintf("%s:s%d", cfg.Label, s)
		var sub longlived.Arena
		switch cfg.Sub {
		case SubLevel:
			sub = longlived.NewLevel(subCap, longlived.LevelConfig{
				Probes:    cfg.Probes,
				MaxPasses: 1, // one bounded pass per frontend attempt
				Padded:    cfg.Padded,
				Label:     label,
			})
		case SubTau:
			sub = longlived.NewTau(subCap, longlived.TauConfig{
				Probes:      cfg.Probes,
				MaxPasses:   1,
				SelfClocked: true,
				Padded:      cfg.Padded,
				Label:       label,
			})
		default:
			panic(fmt.Sprintf("sharded: unknown sub-backend %d", cfg.Sub))
		}
		a.shards = append(a.shards, sub)
		a.base = append(a.base, a.bound)
		a.bound += sub.NameBound()
	}
	// Every shard is built from the same sub-capacity, so the per-shard
	// name ranges share one width and locate() is a division, not a search.
	a.stride = a.shards[0].NameBound()
	for s, sub := range a.shards {
		if sub.NameBound() != a.stride {
			panic(fmt.Sprintf("sharded: shard %d bound %d != stride %d", s, sub.NameBound(), a.stride))
		}
	}
	return a
}

// Label implements longlived.Arena.
func (a *Arena) Label() string {
	return fmt.Sprintf("sharded-%s(shards=%d,steal=%d)",
		a.cfg.Sub, len(a.shards), a.cfg.StealProbes)
}

// Capacity implements longlived.Arena.
func (a *Arena) Capacity() int { return a.cap }

// NameBound implements longlived.Arena: Σ per-shard bounds, the
// shards × per-shard-bound tightness envelope.
func (a *Arena) NameBound() int { return a.bound }

// Shards returns the stripe count (diagnostics).
func (a *Arena) Shards() int { return len(a.shards) }

// Shard returns sub-arena s (diagnostics and tests).
func (a *Arena) Shard(s int) longlived.Arena { return a.shards[s] }

// ShardBase returns the first global name owned by shard s (tests).
func (a *Arena) ShardBase(s int) int { return a.base[s] }

// home returns the process's cached home shard, seeded by PID modulo the
// stripe count when the cache slot is cold.
func (a *Arena) home(p *shm.Proc) int {
	if v := a.affinity[p.ID()&(affinitySlots-1)].Load(); v > 0 && int(v) <= len(a.shards) {
		return int(v - 1)
	}
	return p.ID() % len(a.shards)
}

// remember caches shard s as the process's home for its next acquire. The
// store is skipped when the hint already matches, keeping the common
// home-hit path read-only on the shared affinity line.
func (a *Arena) remember(p *shm.Proc, s int) {
	slot := &a.affinity[p.ID()&(affinitySlots-1)]
	if v := int32(s) + 1; slot.Load() != v {
		slot.Store(v)
	}
}

// Acquire implements longlived.Arena: home shard, then bounded stealing,
// then the deterministic full sweep.
func (a *Arena) Acquire(p *shm.Proc) int {
	nS := len(a.shards)
	h := a.home(p)
	if n := a.shards[h].Acquire(p); n >= 0 {
		a.remember(p, h)
		return a.base[h] + n
	}
	if nS > 1 {
		r := p.Rand()
		for t := 0; t < a.cfg.StealProbes; t++ {
			// Pick uniformly among the other shards, excluding home.
			v := (h + 1 + r.Intn(nS-1)) % nS
			if n := a.shards[v].Acquire(p); n >= 0 {
				a.remember(p, v)
				return a.base[v] + n
			}
		}
	}
	// Full sweep from the home shard: with at most capacity-1 concurrent
	// holders some shard sits below its sub-capacity, so its backstop has a
	// free slot; only races against concurrent claimers can defeat a round,
	// and MaxPasses converts that unbounded wait into an arena-full report.
	for pass := 0; a.cfg.MaxPasses == 0 || pass < a.cfg.MaxPasses; pass++ {
		for off := 0; off < nS; off++ {
			v := (h + off) % nS
			if n := a.shards[v].Acquire(p); n >= 0 {
				a.remember(p, v)
				return a.base[v] + n
			}
		}
	}
	return -1
}

// locate returns the shard owning the global name and its local index.
// Shards own equal-width contiguous ranges, so this is one division.
func (a *Arena) locate(name int) (int, int) {
	if name < 0 || name >= a.bound {
		panic(fmt.Sprintf("sharded: name %d outside arena bound %d", name, a.bound))
	}
	return name / a.stride, name % a.stride
}

// Release implements longlived.Arena. It re-targets the releaser's
// affinity at the freed shard: the freed slot is where the releaser's next
// acquire is most likely to succeed.
func (a *Arena) Release(p *shm.Proc, name int) {
	s, i := a.locate(name)
	a.shards[s].Release(p, i)
	a.remember(p, s)
}

// Touch implements longlived.Arena.
func (a *Arena) Touch(p *shm.Proc, name int) {
	s, i := a.locate(name)
	a.shards[s].Touch(p, i)
}

// IsHeld implements longlived.Arena.
func (a *Arena) IsHeld(name int) bool {
	s, i := a.locate(name)
	return a.shards[s].IsHeld(i)
}

// Held implements longlived.Arena.
func (a *Arena) Held() int {
	h := 0
	for _, s := range a.shards {
		h += s.Held()
	}
	return h
}

// Probeables implements longlived.Arena: the union of every shard's
// structures (labels are disjoint by the per-shard prefix).
func (a *Arena) Probeables() map[string]shm.Probeable {
	m := make(map[string]shm.Probeable)
	for _, s := range a.shards {
		for label, pr := range s.Probeables() {
			m[label] = pr
		}
	}
	return m
}

// Clock implements longlived.Arena: the composition of the shards' clock
// hooks, or nil when no shard needs external clocking (level sub-arenas
// and self-clocked τ sub-arenas).
func (a *Arena) Clock() func() {
	var hooks []func()
	for _, s := range a.shards {
		if h := s.Clock(); h != nil {
			hooks = append(hooks, h)
		}
	}
	if len(hooks) == 0 {
		return nil
	}
	return func() {
		for _, h := range hooks {
			h()
		}
	}
}
