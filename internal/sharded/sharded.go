// Package sharded provides the striped frontend of the long-lived
// renaming arena: the name space is partitioned across S independent
// sub-arenas (package longlived backends), so that concurrent Acquire and
// Release traffic from real goroutines scales with cores instead of
// serializing on one backend's shared bitmap words.
//
// # Why stripe
//
// A single longlived.LevelArena funnels every claimer through the same
// level-0 bitmap words: on real cores that is CAS contention and — at high
// occupancy — a backstop scan of the full capacity on every acquire. The
// LevelArray paper (Alistarh et al., arXiv:1405.5461) shows long-lived
// renaming is won or lost on exactly this contention behavior. Striping
// gives each core its own ladder: per-shard capacity is capacity/S, so the
// per-shard ladder is shorter, the per-shard backstop scan is S times
// smaller, and claimers on different shards touch disjoint cache lines.
//
// # Affinity, stealing, sweep
//
// Acquire runs a three-tier protocol:
//
//  1. Home shard: every process has a cached home-shard affinity (its last
//     success site, seeded by PID modulo S). One bounded pass over the home
//     sub-arena resolves the common case with zero cross-shard traffic.
//  2. Work stealing: on a full home shard, up to StealProbes randomly
//     chosen other shards are each tried with one bounded pass. A hit
//     migrates the affinity, so load imbalance self-corrects.
//  3. Full sweep: deterministic rotation over all shards starting at the
//     home shard, up to MaxPasses rounds — the termination guarantee,
//     exactly mirroring the single arena's backstop contract.
//
// For provisioned arenas, the word-block lease cache (package leasecache)
// layers above this frontend and removes even the home-shard CAS from the
// common case: whole 64-name blocks are leased through the shard protocol
// once, then served thread-locally with zero shared-memory operations.
//
// Release locates the owning shard from the name alone (shards own disjoint
// contiguous name ranges) and also re-targets the releaser's affinity at
// that shard: a freed slot is the best known hint for where the next
// acquire will succeed, which under tight provisioning routes a releaser
// straight back to its own freed slot.
//
// # Name tightness envelope
//
// Striping trades name tightness for throughput, the trade-off framed by
// "Space Bounds for Adaptive Renaming" (Helmi, Higham, Woelfel,
// arXiv:1603.04067): issued names lie in [0, NameBound) with
// NameBound = Σ_s subBound(s) ≤ S × subBound_max — i.e. the documented
// `shards × per-shard bound` envelope. With level sub-arenas
// subBound(s) < 4·⌈capacity/S⌉, so the global bound stays below
// 4·capacity + 4·S; low per-shard occupancy still concentrates names at
// the bottom of each shard's range, so the largest issued name tracks
// occupancy per stripe rather than globally.
//
// Both execution modes are supported: every operation flows through
// *shm.Proc exactly as in the sub-arenas, so the deterministic adversarial
// simulator schedules sharded churn bit-reproducibly, and native goroutines
// run the same code on sync/atomic.
package sharded

import (
	"fmt"
	"sort"
	"sync/atomic"

	"shmrename/internal/longlived"
	"shmrename/internal/registry"
	"shmrename/internal/shm"
)

// SubBackend selects the per-shard arena implementation.
type SubBackend uint8

// Per-shard backends.
const (
	// SubLevel stripes longlived.LevelArena sub-arenas (the default).
	SubLevel SubBackend = iota
	// SubTau stripes longlived.TauArena sub-arenas.
	SubTau
)

// String returns the report label of the sub-backend.
func (s SubBackend) String() string {
	switch s {
	case SubLevel:
		return "level"
	case SubTau:
		return "tau"
	default:
		return fmt.Sprintf("sub(%d)", uint8(s))
	}
}

// Config parameterizes a sharded arena.
type Config struct {
	// Shards is the stripe count S (required, >= 1). Each shard is an
	// independent sub-arena guaranteeing ⌈capacity/S⌉ concurrent holders.
	Shards int
	// StealProbes is the number of randomly chosen other shards tried
	// after the home shard fails, before the deterministic full sweep.
	// Default 2.
	StealProbes int
	// MaxPasses bounds full sweeps over all shards before Acquire reports
	// the arena full; 0 means unlimited (simulated runs rely on the
	// scheduler's step budget instead).
	MaxPasses int
	// Sub selects the per-shard backend. Default SubLevel.
	Sub SubBackend
	// Probes is forwarded to each sub-arena (longlived.LevelConfig.Probes
	// or longlived.TauConfig.Probes). 0 selects the sub-arena default.
	Probes int
	// WordScan forwards the word-granular claim engine to every sub-arena
	// (longlived.LevelConfig.WordScan / TauConfig.WordScan): probes and
	// backstops run one snapshot-scan-CAS per bitmap word, and batch
	// acquires claim up to 64 names per step. Off by default — the per-bit
	// probe path is the deterministic-mode golden-fingerprint contract.
	WordScan bool
	// Padded forwards the cache-line-padded bitmap layout to every shard,
	// for native runs on real cores.
	Padded bool
	// Lease forwards the crash-recovery stamp layer to every shard (see
	// longlived.LeaseOpts); the frontend then exposes the shards' stamped
	// regions through LeaseDomains, offset by each shard's name base. Nil
	// (the default) costs nothing.
	Lease *longlived.LeaseOpts
	// Elastic stripes longlived.ElasticArena sub-arenas instead of fixed
	// ones: each shard's ladder grows and drains with its own occupancy
	// (thresholds per registry.ElasticParams; MinCapacity is the per-shard
	// floor), so resident memory and probe work track per-stripe
	// contention. Requires SubLevel (the τ sub-backend is fixed-shape —
	// setting both panics). The equal-stride name envelope is unchanged:
	// an elastic ladder's NameBound equals the fixed ladder's for the same
	// sub-capacity. Nil (the default) keeps the shards fixed.
	Elastic *registry.ElasticParams
	// Label prefixes the operation-space labels. Default "sharded".
	Label string
}

func (c *Config) fill() {
	if c.StealProbes <= 0 {
		c.StealProbes = 2
	}
	if c.Label == "" {
		c.Label = "sharded"
	}
}

// affinitySlots sizes the home-shard affinity cache. It is a power of two;
// processes hash into it by PID, and a collision merely shares a
// performance hint between two processes — safety never depends on the
// cache's contents.
const affinitySlots = 256

// Arena is the striped arena frontend. It implements longlived.Arena by
// delegating to Shards independent sub-arenas that own disjoint contiguous
// name ranges, so the union of the shards' holder sets is automatically
// duplicate-free: no two live holders can share a name, within or across
// shards. All methods are safe for concurrent use by distinct procs.
type Arena struct {
	cfg    Config
	shards []longlived.Arena
	base   []int // base[s] = first global name of shard s
	stride int   // per-shard name-range width (identical across shards)
	bound  int
	cap    int
	// affinity caches each process's home shard (+1; 0 = unset), indexed
	// by PID & (affinitySlots-1). Purely a routing hint.
	affinity [affinitySlots]atomic.Int32
	// occupied is the per-shard occupancy hint: bit s is set when an
	// acquire observed shard s full, cleared by releases into s and by
	// successful acquires from s. Like the word-saturation hints of the
	// claim engine (the same shm.HintBits type backs both) it only
	// redirects the probe and steal phases and orders the full sweep — the
	// sweep still consults every shard each round, so a stale hint (a
	// release racing the failed acquire that set it) can never defeat the
	// termination guarantee.
	occupied *shm.HintBits
}

var _ longlived.Arena = (*Arena)(nil)
var _ longlived.Recoverable = (*Arena)(nil)

// New builds a sharded arena guaranteeing capacity concurrent holders
// across all stripes.
func New(capacity int, cfg Config) *Arena {
	if capacity < 1 {
		panic("sharded: capacity must be >= 1")
	}
	if cfg.Shards < 1 {
		panic("sharded: Config.Shards must be >= 1")
	}
	if cfg.Shards > capacity {
		panic(fmt.Sprintf("sharded: Config.Shards %d exceeds capacity %d", cfg.Shards, capacity))
	}
	cfg.fill()
	a := &Arena{cfg: cfg, cap: capacity}
	subCap := (capacity + cfg.Shards - 1) / cfg.Shards
	for s := 0; s < cfg.Shards; s++ {
		label := fmt.Sprintf("%s:s%d", cfg.Label, s)
		var sub longlived.Arena
		switch cfg.Sub {
		case SubLevel:
			if e := cfg.Elastic; e != nil {
				sub = longlived.NewElastic(subCap, longlived.ElasticConfig{
					MinCapacity: e.MinCapacity,
					GrowAt:      e.GrowAt,
					ShrinkAt:    e.ShrinkAt,
					ShrinkAfter: e.ShrinkAfter,
					Probes:      cfg.Probes,
					MaxPasses:   1, // one bounded pass per frontend attempt
					WordScan:    cfg.WordScan,
					Padded:      cfg.Padded,
					Lease:       cfg.Lease,
					Label:       label,
				})
				break
			}
			sub = longlived.NewLevel(subCap, longlived.LevelConfig{
				Probes:    cfg.Probes,
				MaxPasses: 1, // one bounded pass per frontend attempt
				WordScan:  cfg.WordScan,
				Padded:    cfg.Padded,
				Lease:     cfg.Lease,
				Label:     label,
			})
		case SubTau:
			if cfg.Elastic != nil {
				panic("sharded: Config.Elastic requires the SubLevel sub-backend")
			}
			sub = longlived.NewTau(subCap, longlived.TauConfig{
				Probes:      cfg.Probes,
				MaxPasses:   1,
				WordScan:    cfg.WordScan,
				SelfClocked: true,
				Padded:      cfg.Padded,
				Lease:       cfg.Lease,
				Label:       label,
			})
		default:
			panic(fmt.Sprintf("sharded: unknown sub-backend %d", cfg.Sub))
		}
		a.shards = append(a.shards, sub)
		a.base = append(a.base, a.bound)
		a.bound += sub.NameBound()
	}
	a.occupied = shm.NewHintBits(cfg.Shards)
	// Every shard is built from the same sub-capacity, so the per-shard
	// name ranges share one width and locate() is a division, not a search.
	a.stride = a.shards[0].NameBound()
	for s, sub := range a.shards {
		if sub.NameBound() != a.stride {
			panic(fmt.Sprintf("sharded: shard %d bound %d != stride %d", s, sub.NameBound(), a.stride))
		}
	}
	return a
}

// Label implements longlived.Arena.
func (a *Arena) Label() string {
	scan := "bit"
	if a.cfg.WordScan {
		scan = "word"
	}
	return fmt.Sprintf("sharded-%s(shards=%d,steal=%d,scan=%s)",
		a.cfg.Sub, len(a.shards), a.cfg.StealProbes, scan)
}

// Capacity implements longlived.Arena.
func (a *Arena) Capacity() int { return a.cap }

// NameBound implements longlived.Arena: Σ per-shard bounds, the
// shards × per-shard-bound tightness envelope.
func (a *Arena) NameBound() int { return a.bound }

// Shards returns the stripe count (diagnostics).
func (a *Arena) Shards() int { return len(a.shards) }

// Shard returns sub-arena s (diagnostics and tests).
func (a *Arena) Shard(s int) longlived.Arena { return a.shards[s] }

// ShardBase returns the first global name owned by shard s (tests).
func (a *Arena) ShardBase(s int) int { return a.base[s] }

// home returns the process's cached home shard, seeded by PID modulo the
// stripe count when the cache slot is cold.
func (a *Arena) home(p *shm.Proc) int {
	if v := a.affinity[p.ID()&(affinitySlots-1)].Load(); v > 0 && int(v) <= len(a.shards) {
		return int(v - 1)
	}
	return p.ID() % len(a.shards)
}

// remember caches shard s as the process's home for its next acquire. The
// store is skipped when the hint already matches, keeping the common
// home-hit path read-only on the shared affinity line.
func (a *Arena) remember(p *shm.Proc, s int) {
	slot := &a.affinity[p.ID()&(affinitySlots-1)]
	if v := int32(s) + 1; slot.Load() != v {
		slot.Store(v)
	}
}

// ShardOccupied reports the full-shard hint for s without touching the
// shard (diagnostics and tests). It may be stale; see the occupied field.
func (a *Arena) ShardOccupied(s int) bool { return a.occupied.Get(s) }

// triedShards tracks which shards a sweep round already visited, so the
// round's second phase retries exactly the shards the hint-gated first
// phase skipped — partitioning on what phase one actually did, not on the
// racy hints, which a concurrent release could flip between the phases.
// Rounds over more than 64x4 shards fall back to unconditional retries
// (correct, merely paying a duplicate bounded pass per phase-one shard).
type triedShards struct {
	bits  [4]uint64
	exact bool
}

func newTriedShards(nShards int) triedShards {
	return triedShards{exact: nShards <= 64*4}
}

func (t *triedShards) add(s int) {
	if t.exact {
		t.bits[s>>6] |= 1 << (uint(s) & 63)
	}
}

func (t *triedShards) has(s int) bool {
	return t.exact && t.bits[s>>6]&(1<<(uint(s)&63)) != 0
}

// tryShard runs one bounded acquire pass against shard s, maintaining the
// occupancy hint: a win clears it (the shard observably had space), a full
// report sets it. Returns the global name or -1.
func (a *Arena) tryShard(p *shm.Proc, s int) int {
	if n := a.shards[s].Acquire(p); n >= 0 {
		a.occupied.Clear(s)
		a.remember(p, s)
		return a.base[s] + n
	}
	a.occupied.Set(s)
	return -1
}

// Acquire implements longlived.Arena: home shard, then bounded stealing,
// then the deterministic full sweep. The occupancy hints gate the home and
// steal phases (a shard observed full is skipped at zero step cost until a
// release reopens it) and order the sweep — unhinted shards first — but
// every sweep round still consults all shards, preserving the termination
// guarantee against stale hints.
func (a *Arena) Acquire(p *shm.Proc) int {
	nS := len(a.shards)
	h := a.home(p)
	if !a.ShardOccupied(h) {
		if n := a.tryShard(p, h); n >= 0 {
			return n
		}
	}
	if nS > 1 {
		r := p.Rand()
		for t := 0; t < a.cfg.StealProbes; t++ {
			// Pick uniformly among the other shards, excluding home; a
			// hinted-full pick consumes the probe without paying steps.
			v := (h + 1 + r.Intn(nS-1)) % nS
			if a.ShardOccupied(v) {
				continue
			}
			if n := a.tryShard(p, v); n >= 0 {
				return n
			}
		}
	}
	// Full sweep from the home shard: with at most capacity-1 concurrent
	// holders some shard sits below its sub-capacity, so its backstop has a
	// free slot; only races against concurrent claimers can defeat a round,
	// and MaxPasses converts that unbounded wait into an arena-full report.
	// Each round visits hint-free shards first, then exactly the shards
	// phase one skipped (triedShards): together the phases consult every
	// shard every round, so a racy hint flip between them cannot exclude a
	// shard and break the termination guarantee.
	for pass := 0; a.cfg.MaxPasses == 0 || pass < a.cfg.MaxPasses; pass++ {
		tried := newTriedShards(nS)
		for off := 0; off < nS; off++ {
			v := (h + off) % nS
			if a.ShardOccupied(v) {
				continue
			}
			tried.add(v)
			if n := a.tryShard(p, v); n >= 0 {
				return n
			}
		}
		for off := 0; off < nS; off++ {
			v := (h + off) % nS
			if tried.has(v) {
				continue
			}
			if n := a.tryShard(p, v); n >= 0 {
				return n
			}
		}
	}
	return -1
}

// acquireBatch runs one bounded batch pass against shard s, appending
// base-offset global names and maintaining the occupancy hint. It returns
// the extended slice and the remaining count.
func (a *Arena) acquireBatch(p *shm.Proc, s, k int, out []int) ([]int, int) {
	pre := len(out)
	out = a.shards[s].AcquireN(p, k, out)
	got := len(out) - pre
	for i := pre; i < len(out); i++ {
		out[i] += a.base[s]
	}
	if got > 0 {
		a.occupied.Clear(s)
		a.remember(p, s)
	}
	if got < k {
		a.occupied.Set(s)
	}
	return out, k - got
}

// AcquireN implements longlived.Arena, routing the batch through the same
// three-tier protocol as Acquire: the home shard serves as much of the
// batch as it can (word-granular sub-arenas claim up to 64 names per
// step), stealing tops up the remainder from randomly probed shards, and
// the ordered full sweep completes or bounds the request. Hints gate the
// first two phases exactly as in Acquire.
func (a *Arena) AcquireN(p *shm.Proc, k int, out []int) []int {
	nS := len(a.shards)
	h := a.home(p)
	if !a.ShardOccupied(h) {
		if out, k = a.acquireBatch(p, h, k, out); k == 0 {
			return out
		}
	}
	if nS > 1 {
		r := p.Rand()
		for t := 0; t < a.cfg.StealProbes; t++ {
			v := (h + 1 + r.Intn(nS-1)) % nS
			if a.ShardOccupied(v) {
				continue
			}
			if out, k = a.acquireBatch(p, v, k, out); k == 0 {
				return out
			}
		}
	}
	// Mirror Acquire's sweep: a hint-gated phase for ordering, then exactly
	// the phase-one-skipped shards, so racy hints cannot exclude a shard
	// from the round (see Acquire).
	for pass := 0; k > 0 && (a.cfg.MaxPasses == 0 || pass < a.cfg.MaxPasses); pass++ {
		tried := newTriedShards(nS)
		for off := 0; k > 0 && off < nS; off++ {
			v := (h + off) % nS
			if a.ShardOccupied(v) {
				continue
			}
			tried.add(v)
			out, k = a.acquireBatch(p, v, k, out)
		}
		for off := 0; k > 0 && off < nS; off++ {
			v := (h + off) % nS
			if tried.has(v) {
				continue
			}
			out, k = a.acquireBatch(p, v, k, out)
		}
	}
	return out
}

// locate returns the shard owning the global name and its local index.
// Shards own equal-width contiguous ranges, so this is one division.
func (a *Arena) locate(name int) (int, int) {
	if name < 0 || name >= a.bound {
		panic(fmt.Sprintf("sharded: name %d outside arena bound %d", name, a.bound))
	}
	return name / a.stride, name % a.stride
}

// Release implements longlived.Arena. It re-targets the releaser's
// affinity at the freed shard: the freed slot is where the releaser's next
// acquire is most likely to succeed.
func (a *Arena) Release(p *shm.Proc, name int) {
	s, i := a.locate(name)
	a.shards[s].Release(p, i)
	a.occupied.Clear(s)
	a.remember(p, s)
}

// ReleaseN implements longlived.Arena: the batch is grouped by owning
// shard (one sort of a scratch copy) and each group is released through
// the shard's own batch path, so word-adjacent names coalesce into single
// clearing steps. Every touched shard drops its occupancy hint; the
// releaser's affinity re-targets the first freed shard.
func (a *Arena) ReleaseN(p *shm.Proc, names []int) {
	switch len(names) {
	case 0:
		return
	case 1:
		a.Release(p, names[0])
		return
	}
	sorted := make([]int, len(names))
	copy(sorted, names)
	sort.Ints(sorted)
	first := -1
	for i := 0; i < len(sorted); {
		s, _ := a.locate(sorted[i])
		j := i
		for ; j < len(sorted) && sorted[j]/a.stride == s; j++ {
			sorted[j] -= a.base[s]
		}
		a.shards[s].ReleaseN(p, sorted[i:j])
		a.occupied.Clear(s)
		if first < 0 {
			first = s
		}
		i = j
	}
	if first >= 0 {
		a.remember(p, first)
	}
}

// LeaseDomains implements longlived.Recoverable: the shards' stamped
// regions in name order, each offset by its shard's global name base. With
// leases off every shard returns no domains and so does the frontend.
func (a *Arena) LeaseDomains() []longlived.LeaseDomain {
	var out []longlived.LeaseDomain
	for s, sub := range a.shards {
		rec, ok := sub.(longlived.Recoverable)
		if !ok {
			continue
		}
		for _, d := range rec.LeaseDomains() {
			d.Base += a.base[s]
			out = append(out, d)
		}
	}
	return out
}

// CapacityNow implements registry.Elastic: the summed resident capacity of
// the stripes. Fixed sub-arenas contribute their full capacity, so a
// non-elastic sharded arena reports CapacityNow == Capacity (modulo the
// ⌈capacity/S⌉ rounding the fixed arena also carries).
func (a *Arena) CapacityNow() int {
	c := 0
	for _, s := range a.shards {
		if el, ok := s.(registry.Elastic); ok {
			c += el.CapacityNow()
		} else {
			c += s.Capacity()
		}
	}
	return c
}

// PeakCapacity implements registry.Elastic (summed per-stripe peaks; the
// stripes peak independently, so this bounds any instantaneous global
// capacity from above).
func (a *Arena) PeakCapacity() int {
	c := 0
	for _, s := range a.shards {
		if el, ok := s.(registry.Elastic); ok {
			c += el.PeakCapacity()
		} else {
			c += s.Capacity()
		}
	}
	return c
}

// Grow implements registry.Elastic: every stripe is asked to extend its
// ladder; true when any did. Fixed stripes never grow.
func (a *Arena) Grow() bool {
	grew := false
	for _, s := range a.shards {
		if el, ok := s.(registry.Elastic); ok && el.Grow() {
			grew = true
		}
	}
	return grew
}

// Shrink implements registry.Elastic: every stripe attempts a drain; true
// when any retired a level. Like the sub-arena's Shrink it never reclaims
// a held name.
func (a *Arena) Shrink() bool {
	shrank := false
	for _, s := range a.shards {
		if el, ok := s.(registry.Elastic); ok && el.Shrink() {
			shrank = true
		}
	}
	return shrank
}

// ResidentBytes implements registry.Footprint: the summed footprint of the
// stripes that report one.
func (a *Arena) ResidentBytes() int64 {
	var b int64
	for _, s := range a.shards {
		if fp, ok := s.(registry.Footprint); ok {
			b += fp.ResidentBytes()
		}
	}
	return b
}

// Draining implements registry.Drainer, routing to the owning stripe: a
// caching layer must not park names of a draining per-shard level.
func (a *Arena) Draining(name int) bool {
	s, i := a.locate(name)
	d, ok := a.shards[s].(registry.Drainer)
	return ok && d.Draining(i)
}

// Touch implements longlived.Arena.
func (a *Arena) Touch(p *shm.Proc, name int) {
	s, i := a.locate(name)
	a.shards[s].Touch(p, i)
}

// IsHeld implements longlived.Arena.
func (a *Arena) IsHeld(name int) bool {
	s, i := a.locate(name)
	return a.shards[s].IsHeld(i)
}

// Held implements longlived.Arena.
func (a *Arena) Held() int {
	h := 0
	for _, s := range a.shards {
		h += s.Held()
	}
	return h
}

// Probeables implements longlived.Arena: the union of every shard's
// structures (labels are disjoint by the per-shard prefix).
func (a *Arena) Probeables() map[string]shm.Probeable {
	m := make(map[string]shm.Probeable)
	for _, s := range a.shards {
		for label, pr := range s.Probeables() {
			m[label] = pr
		}
	}
	return m
}

// Clock implements longlived.Arena: the composition of the shards' clock
// hooks, or nil when no shard needs external clocking (level sub-arenas
// and self-clocked τ sub-arenas).
func (a *Arena) Clock() func() {
	var hooks []func()
	for _, s := range a.shards {
		if h := s.Clock(); h != nil {
			hooks = append(hooks, h)
		}
	}
	if len(hooks) == 0 {
		return nil
	}
	return func() {
		for _, h := range hooks {
			h()
		}
	}
}
