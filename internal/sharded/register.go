package sharded

import (
	"shmrename/internal/longlived"
	"shmrename/internal/registry"
)

// registryShards is the default stripe count of the registry-constructed
// arena (Config.Shards overrides it). It is a fixed constant — not
// GOMAXPROCS — so the registered backend is deterministic: the same seed
// replays the same schedule on any machine, which the conformance
// fingerprint law and the simulated E15 churn rows rely on. It matches the
// E18 fault-injection shape.
const registryShards = 4

func init() {
	registry.Register(registry.Backend{
		Name: "sharded",
		Caps: registry.Caps{
			Releasable:    true,
			Batch:         true,
			Leasable:      true,
			Sharded:       true,
			WordScan:      true,
			Deterministic: true,
			SelfHealing:   true,
		},
		New: func(cfg registry.Config) registry.Arena {
			shards := cfg.Shards
			if shards == 0 {
				shards = registryShards
			}
			if shards > cfg.Capacity {
				shards = cfg.Capacity
			}
			return New(cfg.Capacity, Config{
				Shards:    shards,
				MaxPasses: cfg.MaxPasses,
				WordScan:  cfg.Scan != "bit",
				Padded:    true,
				Lease:     longlived.Lease(cfg),
				Label:     cfg.Label,
			})
		},
	})
}
