// Package balls provides the balls-into-bins machinery behind Lemma 3 of
// the paper (throwing 2c·log n balls into 2·log n bins leaves at most
// log n empty bins w.h.p.) and the Chernoff calculators of Lemma 1, used
// by experiment E1 (ALGORITHMS.md §6).
package balls

import (
	"math"

	"shmrename/internal/prng"
)

// ThrowEmpty throws balls uniformly at random into bins and returns the
// number of bins that stay empty.
func ThrowEmpty(balls, bins int, r *prng.Rand) int {
	if bins <= 0 {
		return 0
	}
	hit := make([]bool, bins)
	for i := 0; i < balls; i++ {
		hit[r.Intn(bins)] = true
	}
	empty := 0
	for _, h := range hit {
		if !h {
			empty++
		}
	}
	return empty
}

// ExpectedEmpty returns the exact expected number of empty bins,
// bins·(1-1/bins)^balls.
func ExpectedEmpty(balls, bins int) float64 {
	if bins <= 0 {
		return 0
	}
	return float64(bins) * math.Pow(1-1/float64(bins), float64(balls))
}

// Lemma3Trial runs one Lemma 3 experiment for the given n and c: it throws
// ⌈2c·log₂ n⌉ balls into 2⌈log₂ n⌉ bins and reports the number of empty
// bins together with the paper's threshold log₂ n.
func Lemma3Trial(n int, c float64, r *prng.Rand) (empty int, threshold int) {
	l := int(math.Ceil(math.Log2(float64(n))))
	if l < 1 {
		l = 1
	}
	balls := int(math.Ceil(2 * c * float64(l)))
	return ThrowEmpty(balls, 2*l, r), l
}

// Lemma3FailureBound returns the paper's bound on the failure probability
// Pr[more than log n bins stay empty] ≤ (2/e^(c-1+2/e^c))^(log₂ n), valid
// for c ≥ max{ln 2, 2ℓ+2}; for such c it is at most 1/n^ℓ.
func Lemma3FailureBound(n int, c float64) float64 {
	base := 2 / math.Exp(c-1+2/math.Exp(c))
	return math.Pow(base, math.Log2(float64(n)))
}

// ChernoffUpper bounds Pr[X ≥ (1+δ)μ] for a sum of independent (or
// negatively associated) 0-1 variables with mean μ, per Lemma 1(1)/(2):
// exp(-μδ²/3) for δ ∈ [0,1], exp(-μδ/3) for δ ≥ 1.
func ChernoffUpper(mu, delta float64) float64 {
	if delta < 0 {
		return 1
	}
	if delta <= 1 {
		return math.Exp(-mu * delta * delta / 3)
	}
	return math.Exp(-mu * delta / 3)
}

// ChernoffLower bounds Pr[X ≤ (1-δ)μ] per Lemma 1(3): exp(-μδ²/3) for
// δ > 0.
func ChernoffLower(mu, delta float64) float64 {
	if delta <= 0 {
		return 1
	}
	return math.Exp(-mu * delta * delta / 3)
}

// Summary aggregates repeated Lemma 3 trials.
type Summary struct {
	Trials    int
	Threshold int     // the paper's log₂ n cutoff
	MeanEmpty float64 // average empty bins observed
	MaxEmpty  int
	Failures  int // trials with empty > threshold
}

// RunLemma3 performs trials independent Lemma 3 experiments with seeds
// derived from seed.
func RunLemma3(n int, c float64, trials int, seed uint64) Summary {
	s := Summary{Trials: trials}
	total := 0
	for t := 0; t < trials; t++ {
		r := prng.NewStream(seed, t)
		empty, threshold := Lemma3Trial(n, c, r)
		s.Threshold = threshold
		total += empty
		if empty > s.MaxEmpty {
			s.MaxEmpty = empty
		}
		if empty > threshold {
			s.Failures++
		}
	}
	if trials > 0 {
		s.MeanEmpty = float64(total) / float64(trials)
	}
	return s
}
