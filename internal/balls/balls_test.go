package balls

import (
	"math"
	"testing"
	"testing/quick"

	"shmrename/internal/prng"
)

func TestThrowEmptyBounds(t *testing.T) {
	r := prng.New(1)
	if got := ThrowEmpty(0, 10, r); got != 10 {
		t.Fatalf("no balls: %d empty, want 10", got)
	}
	if got := ThrowEmpty(100, 1, r); got != 0 {
		t.Fatalf("one bin, many balls: %d empty", got)
	}
	if got := ThrowEmpty(5, 0, r); got != 0 {
		t.Fatalf("zero bins: %d", got)
	}
	for i := 0; i < 50; i++ {
		e := ThrowEmpty(20, 10, r)
		if e < 0 || e > 9 {
			// 20 balls into 10 bins: at least one bin hit.
			t.Fatalf("empty = %d out of range", e)
		}
	}
}

func TestThrowEmptyMatchesExpectation(t *testing.T) {
	// Mean over many trials should track bins·(1-1/bins)^balls.
	const balls, bins, trials = 64, 32, 4000
	r := prng.New(7)
	total := 0
	for i := 0; i < trials; i++ {
		total += ThrowEmpty(balls, bins, r)
	}
	mean := float64(total) / trials
	want := ExpectedEmpty(balls, bins)
	if math.Abs(mean-want) > 0.25 {
		t.Fatalf("mean empty %.3f, expected %.3f", mean, want)
	}
}

func TestExpectedEmptyEdges(t *testing.T) {
	if got := ExpectedEmpty(0, 10); got != 10 {
		t.Fatalf("ExpectedEmpty(0,10) = %v", got)
	}
	if got := ExpectedEmpty(10, 0); got != 0 {
		t.Fatalf("ExpectedEmpty(10,0) = %v", got)
	}
}

func TestLemma3TrialShape(t *testing.T) {
	r := prng.New(3)
	empty, threshold := Lemma3Trial(1<<16, 2, r)
	if threshold != 16 {
		t.Fatalf("threshold = %d, want 16", threshold)
	}
	if empty < 0 || empty > 32 {
		t.Fatalf("empty = %d outside [0, 2 log n]", empty)
	}
}

func TestRunLemma3HoldsForLargeC(t *testing.T) {
	// With c = 6 (≥ 2ℓ+2 for ℓ=2) the failure probability is ≤ 1/n²;
	// across 2000 trials at n = 2^12 no failures should ever occur.
	s := RunLemma3(1<<12, 6, 2000, 42)
	if s.Failures != 0 {
		t.Fatalf("lemma 3 failed %d/%d times at c=6", s.Failures, s.Trials)
	}
	if s.MeanEmpty > float64(s.Threshold) {
		t.Fatalf("mean empty %.2f above threshold %d", s.MeanEmpty, s.Threshold)
	}
	if s.Trials != 2000 {
		t.Fatalf("trials = %d", s.Trials)
	}
}

func TestRunLemma3MeanTracksTheory(t *testing.T) {
	// E[empty] = 2L(1-1/2L)^(2cL) ≈ 2L·e^-c. For n=2^16, c=2: ≈ 32·0.135.
	s := RunLemma3(1<<16, 2, 3000, 9)
	want := ExpectedEmpty(64, 32)
	if math.Abs(s.MeanEmpty-want) > 0.35 {
		t.Fatalf("mean empty %.3f, theory %.3f", s.MeanEmpty, want)
	}
}

func TestLemma3FailureBoundMonotone(t *testing.T) {
	// The bound decreases in both n and c.
	if !(Lemma3FailureBound(1<<20, 4) < Lemma3FailureBound(1<<10, 4)) {
		t.Fatal("bound not decreasing in n")
	}
	if !(Lemma3FailureBound(1<<10, 6) < Lemma3FailureBound(1<<10, 3)) {
		t.Fatal("bound not decreasing in c")
	}
	// For c >= 2ℓ+2 the bound is at most 1/n^ℓ (ℓ=1, c=4).
	n := 1 << 12
	if got := Lemma3FailureBound(n, 4); got > 1/float64(n) {
		t.Fatalf("bound %.3g above 1/n at c=4", got)
	}
}

func TestChernoffBounds(t *testing.T) {
	if got := ChernoffUpper(100, 0.5); math.Abs(got-math.Exp(-100*0.25/3)) > 1e-12 {
		t.Fatalf("ChernoffUpper small delta = %v", got)
	}
	if got := ChernoffUpper(100, 2); math.Abs(got-math.Exp(-100*2.0/3)) > 1e-12 {
		t.Fatalf("ChernoffUpper large delta = %v", got)
	}
	if got := ChernoffUpper(100, -1); got != 1 {
		t.Fatalf("negative delta should give trivial bound, got %v", got)
	}
	if got := ChernoffLower(100, 0.5); math.Abs(got-math.Exp(-100*0.25/3)) > 1e-12 {
		t.Fatalf("ChernoffLower = %v", got)
	}
	if got := ChernoffLower(100, 0); got != 1 {
		t.Fatalf("zero delta should give trivial bound, got %v", got)
	}
}

func TestQuickThrowEmptyRange(t *testing.T) {
	f := func(seed uint64, balls16, bins16 uint16) bool {
		balls := int(balls16 % 512)
		bins := int(bins16%128) + 1
		e := ThrowEmpty(balls, bins, prng.New(seed))
		if e < 0 || e > bins {
			return false
		}
		if balls >= 1 && e == bins {
			return false // at least one bin must be hit
		}
		maxEmpty := bins - 1
		if balls == 0 {
			maxEmpty = bins
		}
		return e <= maxEmpty
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
