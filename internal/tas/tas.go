// Package tas implements test-and-set objects built from plain read/write
// registers, the setting of the related-work results [4] and [12] that the
// paper contrasts with hardware TAS ("Implementing their test-and-set
// operation would increase the step complexity by a multiplicative
// O(log log k)...").
//
// Construction: each register is a tournament tree over the process ids.
// Every internal node is a one-shot two-process match in the style of
// Peterson's algorithm (flags + turn + result registers): safety — never
// two winners — is deterministic and unconditional; liveness holds under
// fair schedules without crashes, which is the regime of the E9 overhead
// ablation. The adaptive randomized wait-free constructions of [4, 12]
// add coin-flip retreat and splitters to improve the per-operation cost to
// O(log* k)/O(log log k); our tournament costs Θ(log n) register
// operations per test-and-set, so E9 reports a conservative (larger)
// overhead factor, as documented in ALGORITHMS.md §5.
package tas

import (
	"fmt"
	"sync/atomic"

	"shmrename/internal/shm"
)

// match is a one-shot two-process test-and-set from read/write registers.
// Side 0 is the contender arriving from the left subtree, side 1 from the
// right. All fields are plain single-writer/multi-reader registers
// (atomics are used only to get well-defined memory ordering; no RMW
// operation is ever performed on them).
type match struct {
	want [2]atomic.Int32
	turn atomic.Int32 // 1 + side of the last turn writer; 0 = unset
	res  atomic.Int32 // 1 + winning side; 0 = undecided
}

// play runs the match for the given side, charging register operations to
// p under the given op space. It returns true if this side won.
//
// Protocol: raise the flag, write the turn, then loop — absent opponent
// wins; seeing the opponent's turn value wins (the later turn writer
// yields); otherwise spin until the winner publishes the result. Exactly
// one side can observe each winning condition, and the turn register
// breaks the symmetric race: both spinning is impossible because turn
// holds a single value.
func (m *match) play(p *shm.Proc, space shm.SpaceID, node int, side int32) bool {
	other := 1 - side
	op := func(kind shm.OpKind) {
		p.Step(shm.Op{Kind: kind, Space: space, Index: int32(node)})
	}
	op(shm.OpTAS) // write want[side]
	m.want[side].Store(1)
	op(shm.OpTAS) // write turn
	m.turn.Store(1 + side)
	for {
		op(shm.OpRead)
		if m.want[other].Load() == 0 {
			op(shm.OpTAS)
			m.res.Store(1 + side)
			return true
		}
		op(shm.OpRead)
		if m.turn.Load() == 1+other {
			op(shm.OpTAS)
			m.res.Store(1 + side)
			return true
		}
		op(shm.OpRead)
		if r := m.res.Load(); r != 0 {
			return r == 1+side
		}
	}
}

// RWRegister is one test-and-set register built from read/write registers:
// a tournament tree with one match per internal node over nextPow2(n)
// leaves (leaf = process id), plus a settled register for the fast path.
type RWRegister struct {
	leaves  int
	nodes   []match // heap layout: node k has children 2k+1, 2k+2
	settled atomic.Int32
}

func newRWRegister(leaves int) *RWRegister {
	return &RWRegister{leaves: leaves, nodes: make([]match, leaves-1)}
}

// acquire plays the tournament from p's leaf to the root. Replays are
// safe: decided matches return their recorded result.
func (r *RWRegister) acquire(p *shm.Proc, space shm.SpaceID, reg int) bool {
	if r.leaves == 1 {
		// Single possible contender: winning is a single write.
		p.Step(shm.Op{Kind: shm.OpTAS, Space: space, Index: int32(reg)})
		return r.settled.CompareAndSwap(0, 1) // sole contender; no race
	}
	// Node index of leaf pid in the implicit heap of 2*leaves-1 nodes:
	// leaves occupy [leaves-1, 2*leaves-2].
	k := r.leaves - 1 + p.ID()%r.leaves
	for k > 0 {
		parent := (k - 1) / 2
		side := int32((k - 1) % 2) // left child plays side 0
		if !r.nodes[parent].play(p, space, reg, side) {
			return false
		}
		k = parent
	}
	p.Step(shm.Op{Kind: shm.OpTAS, Space: space, Index: int32(reg)}) // write settled
	r.settled.Store(1)
	return true
}

// RWSpace is a name space of RWRegister objects; it implements
// shm.ClaimSpace and shm.Probeable so the §IV algorithms run unchanged on
// software TAS (experiment E9).
type RWSpace struct {
	label string
	id    shm.SpaceID
	n     int // maximum contenders (process count)
	regs  []*RWRegister
}

var _ shm.ClaimSpace = (*RWSpace)(nil)
var _ shm.Probeable = (*RWSpace)(nil)

// NewRWSpace builds m software TAS registers for up to n processes.
func NewRWSpace(label string, m, n int) *RWSpace {
	if m < 0 || n < 1 {
		panic(fmt.Sprintf("tas: invalid space m=%d n=%d", m, n))
	}
	leaves := 1
	for leaves < n {
		leaves *= 2
	}
	s := &RWSpace{label: label, id: shm.InternSpace(label), n: n, regs: make([]*RWRegister, m)}
	for i := range s.regs {
		s.regs[i] = newRWRegister(leaves)
	}
	return s
}

// Label returns the operation-space label; RWSpace implements
// shm.LabeledProbeable.
func (s *RWSpace) Label() string { return s.label }

// ID returns the space's interned operation-space ID.
func (s *RWSpace) ID() shm.SpaceID { return s.id }

// Size implements shm.ClaimSpace.
func (s *RWSpace) Size() int { return len(s.regs) }

// TryClaim implements shm.ClaimSpace: play the register's tournament.
// A fast-path read returns false immediately when the register has
// already settled.
func (s *RWSpace) TryClaim(p *shm.Proc, i int) bool {
	p.Step(shm.Op{Kind: shm.OpRead, Space: s.id, Index: int32(i)})
	if s.regs[i].settled.Load() != 0 {
		return false
	}
	return s.regs[i].acquire(p, s.id, i)
}

// Claimed implements shm.ClaimSpace. It reads the settled register, which
// trails the actual decision by the winner's O(log n) climb; the §IV
// algorithms only use it opportunistically, so the lag is harmless.
func (s *RWSpace) Claimed(p *shm.Proc, i int) bool {
	p.Step(shm.Op{Kind: shm.OpRead, Space: s.id, Index: int32(i)})
	return s.regs[i].settled.Load() != 0
}

// Probe implements shm.Probeable.
func (s *RWSpace) Probe(i int) bool { return s.regs[i].settled.Load() != 0 }

// CountClaimed returns the number of settled registers (diagnostics).
func (s *RWSpace) CountClaimed() int {
	c := 0
	for _, r := range s.regs {
		if r.settled.Load() != 0 {
			c++
		}
	}
	return c
}
