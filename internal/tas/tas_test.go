package tas

import (
	"sync"
	"testing"

	"shmrename/internal/prng"
	"shmrename/internal/sched"
	"shmrename/internal/shm"
)

func newProc(id int) *shm.Proc {
	return shm.NewProc(id, prng.NewStream(3, id), nil, 1<<20)
}

func TestRWSpaceBasicClaim(t *testing.T) {
	s := NewRWSpace("rw", 8, 4)
	p := newProc(0)
	if !s.TryClaim(p, 2) {
		t.Fatal("claim on free register failed")
	}
	if s.TryClaim(newProc(1), 2) {
		t.Fatal("claim on settled register succeeded")
	}
	if !s.Claimed(newProc(2), 2) {
		t.Fatal("Claimed did not observe the claim")
	}
	if s.Claimed(newProc(2), 3) {
		t.Fatal("fresh register reported claimed")
	}
	if got := s.CountClaimed(); got != 1 {
		t.Fatalf("CountClaimed = %d", got)
	}
}

func TestRWSpaceSingleLeaf(t *testing.T) {
	s := NewRWSpace("rw", 4, 1)
	p := newProc(0)
	if !s.TryClaim(p, 0) {
		t.Fatal("sole contender failed to claim")
	}
	if s.TryClaim(p, 0) {
		t.Fatal("second claim succeeded")
	}
}

func TestRWSpaceReplaySafe(t *testing.T) {
	// A process may probe the same register repeatedly (the §IV
	// algorithms sample with replacement); replays must return false
	// without corrupting the tournament.
	s := NewRWSpace("rw", 2, 8)
	w := newProc(3)
	if !s.TryClaim(w, 0) {
		t.Fatal("first claim failed")
	}
	for i := 0; i < 3; i++ {
		if s.TryClaim(w, 0) {
			t.Fatal("replay won a settled register")
		}
	}
	// A different process must also lose.
	if s.TryClaim(newProc(5), 0) {
		t.Fatal("second process won a settled register")
	}
}

// TestRWSpaceMutualExclusionUnderScheduler drives many processes through
// the same register under adversarial interleavings: exactly one winner.
func TestRWSpaceMutualExclusionUnderScheduler(t *testing.T) {
	for _, policy := range []sched.Policy{sched.RoundRobin(), sched.Random(), sched.Collider()} {
		for seed := uint64(0); seed < 5; seed++ {
			const n = 16
			s := NewRWSpace("rw", 1, n)
			var mu sync.Mutex
			winners := 0
			body := func(p *shm.Proc) int {
				if s.TryClaim(p, 0) {
					mu.Lock()
					winners++
					mu.Unlock()
					return 0
				}
				return -1
			}
			res := sched.Run(sched.Config{
				N: n, Seed: seed, Policy: policy, Body: body,
				Spaces: map[string]shm.Probeable{"rw": s},
			})
			if winners != 1 {
				t.Fatalf("policy %s seed %d: %d winners", policy.Name(), seed, winners)
			}
			if got := sched.CountStatus(res, sched.Named); got != 1 {
				t.Fatalf("policy %s seed %d: %d named", policy.Name(), seed, got)
			}
		}
	}
}

// TestRWSpaceNativeStress races real goroutines on a small space.
func TestRWSpaceNativeStress(t *testing.T) {
	const n, m = 32, 8
	s := NewRWSpace("rw", m, n)
	var mu sync.Mutex
	owners := map[int][]int{}
	var wg sync.WaitGroup
	for pid := 0; pid < n; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			p := newProc(pid)
			for i := 0; i < m; i++ {
				if s.TryClaim(p, i) {
					mu.Lock()
					owners[i] = append(owners[i], pid)
					mu.Unlock()
				}
			}
		}(pid)
	}
	wg.Wait()
	for i, os := range owners {
		if len(os) != 1 {
			t.Fatalf("register %d won by %v", i, os)
		}
	}
	if len(owners) != m {
		t.Fatalf("only %d of %d registers won", len(owners), m)
	}
}

func TestRWSpaceRenamingEndToEnd(t *testing.T) {
	// Uniform probing on a loose software-TAS space: everyone gets a
	// distinct name. This is the E9 configuration in miniature.
	const n = 48
	s := NewRWSpace("rw", 2*n, n)
	body := func(p *shm.Proc) int {
		r := p.Rand()
		for {
			i := r.Intn(s.Size())
			if s.TryClaim(p, i) {
				return i
			}
		}
	}
	res := sched.Run(sched.Config{N: n, Seed: 9, Fast: sched.FastFIFO, Body: body})
	if got := sched.CountStatus(res, sched.Named); got != n {
		t.Fatalf("%d named, want %d", got, n)
	}
	if err := sched.VerifyUnique(res, s.Size()); err != nil {
		t.Fatal(err)
	}
}

func TestRWSpaceStepOverheadIsLogarithmic(t *testing.T) {
	// One uncontended claim costs Θ(log n) register operations — the
	// multiplicative software-TAS overhead E9 quantifies. For n=64
	// (6 levels, ~5 ops each) expect roughly 20-40 steps, never 1.
	s := NewRWSpace("rw", 1, 64)
	p := newProc(0)
	if !s.TryClaim(p, 0) {
		t.Fatal("claim failed")
	}
	if p.Steps() < 12 || p.Steps() > 60 {
		t.Fatalf("uncontended claim took %d steps; want Θ(log n) ≈ 12..60", p.Steps())
	}
}

func TestRWSpacePanicsOnBadArgs(t *testing.T) {
	for _, fn := range []func(){
		func() { NewRWSpace("rw", -1, 4) },
		func() { NewRWSpace("rw", 4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid args accepted")
				}
			}()
			fn()
		}()
	}
}
