//go:build unix

package chaos

import (
	"fmt"
	"os"
)

// FlipFileBit flips one bit of the file at path: bit (0-7) of the byte at
// offset off. The on-disk signature of a torn write or a medium fault —
// applied to a namespace superblock it must make persist.Open refuse the
// file; applied to a bitmap or stamp page it must be contained by the
// integrity scrubber after attach.
func FlipFileBit(path string, off int64, bit uint) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("chaos: open %s: %w", path, err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return fmt.Errorf("chaos: read %s@%d: %w", path, off, err)
	}
	b[0] ^= 1 << (bit & 7)
	if _, err := f.WriteAt(b[:], off); err != nil {
		return fmt.Errorf("chaos: write %s@%d: %w", path, off, err)
	}
	return nil
}

// TruncateFile cuts the file at path down to size bytes: the signature of
// a crashed external copy or an exhausted quota. persist.Open must reject
// the remnant with a descriptive error before any mapped page is touched.
func TruncateFile(path string, size int64) error {
	if err := os.Truncate(path, size); err != nil {
		return fmt.Errorf("chaos: truncate %s: %w", path, err)
	}
	return nil
}
