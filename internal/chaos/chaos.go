// Package chaos is the seeded corruption injector behind the E21
// self-healing experiment: it damages a lease-enabled arena's shared words
// the way real faults would — garbage client stamps stored over free
// names, claim bits cleared under live stamps, claim bits set with no
// stamp behind them — through the arena's own lease domains, so the same
// injector drives every self-healing backend. Every victim is drawn from a
// seeded stream: the whole corruption campaign replays bit-identically
// from (seed, backend, capacity), which is what lets CI pin the E21 matrix.
//
// The integrity scrubber (package integrity) is the system under test: it
// must repair or quarantine every injection without ever enabling a
// duplicate grant. The unix-only file helpers corrupt mmap-backed
// namespace files on disk — torn superblocks and truncations that
// persist.Open must reject rather than map.
package chaos

import (
	"encoding/json"
	"fmt"
	"os"

	"shmrename/internal/longlived"
	"shmrename/internal/prng"
	"shmrename/internal/shm"
)

// Kind is one injected corruption shape.
type Kind int

const (
	// KindGarbageStamp stores a live client stamp over a free, unstamped
	// name: the bit-clear/stamp-set pair no legal execution produces —
	// irreparable, the scrubber must quarantine the word.
	KindGarbageStamp Kind = iota
	// KindClearBit clears the claim bit under a live client stamp (a
	// flipped bitmap word), leaving the same illegal pair from the other
	// side: the held name silently rejoins the free pool, and only the
	// quarantine stands between it and a duplicate grant.
	KindClearBit
	// KindSetBit sets a claim bit with no stamp behind it (a flipped bitmap
	// word in the other direction): an orphan, repairable — the scrubber
	// adopts it exactly like a recovery sweep would.
	KindSetBit
	numKinds
)

var kindNames = [numKinds]string{"garbage-stamp", "clear-bit", "set-bit"}

func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("chaos.Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Injection records one applied corruption.
type Injection struct {
	Kind Kind
	// Name is the damaged global arena name.
	Name int
}

// Injector applies seeded corruptions to one lease-enabled arena. Not safe
// for concurrent use; one injector per campaign.
type Injector struct {
	arena longlived.Recoverable
	r     *prng.Rand
}

// NewInjector builds an injector over the arena, deterministic from seed.
func NewInjector(a longlived.Recoverable, seed uint64) *Injector {
	return &Injector{arena: a, r: prng.NewStream(seed, 0xC4A05)}
}

// Locate resolves the lease domain covering the global arena name,
// returning the domain and the domain-local index.
func Locate(a longlived.Recoverable, name int) (longlived.LeaseDomain, int, bool) {
	for _, d := range a.LeaseDomains() {
		if name >= d.Base && name < d.Base+d.Stamps.Size() {
			return d, name - d.Base, true
		}
	}
	return longlived.LeaseDomain{}, 0, false
}

// freeVictim draws a seeded name that is free and unstamped — the blast
// radius of a fault that hits idle state.
func (in *Injector) freeVictim() (longlived.LeaseDomain, int, bool) {
	var cand []int
	for _, d := range in.arena.LeaseDomains() {
		for i := 0; i < d.Stamps.Size(); i++ {
			if !d.IsHeld(i) && d.Stamps.Load(i) == 0 {
				cand = append(cand, d.Base+i)
			}
		}
	}
	if len(cand) == 0 {
		return longlived.LeaseDomain{}, 0, false
	}
	g := cand[in.r.Intn(len(cand))]
	d, local, _ := Locate(in.arena, g)
	return d, local, true
}

// GarbageStamp injects a KindGarbageStamp corruption on a seeded free
// name: a raw store of a client stamp (random holder, current epoch) where
// none belongs. Returns false when the arena has no free unstamped name.
func (in *Injector) GarbageStamp(now uint64) (Injection, bool) {
	d, local, ok := in.freeVictim()
	if !ok {
		return Injection{}, false
	}
	holder := uint64(1 + in.r.Intn(1<<16))
	d.Stamps.Inject(local, shm.PackStamp(holder, now))
	return Injection{Kind: KindGarbageStamp, Name: d.Base + local}, true
}

// ClearBit injects a KindClearBit corruption on the given held name: the
// claim bit is cleared through the domain's reclaim hook while the live
// client stamp stays in place. The caller owns the choice of victim — it
// must be a name some holder believes it still owns.
func (in *Injector) ClearBit(p *shm.Proc, name int) Injection {
	d, local, ok := Locate(in.arena, name)
	if !ok || !d.IsHeld(local) {
		panic(fmt.Sprintf("chaos: ClearBit victim %d is not a held name", name))
	}
	d.Reclaim(p, local)
	return Injection{Kind: KindClearBit, Name: name}
}

// SetBit injects a KindSetBit corruption on a seeded free name: the claim
// bit is seized with no stamp published behind it, the signature an
// upward bit flip leaves. Returns false when the arena has no free name or
// its domains cannot seize bits.
func (in *Injector) SetBit(p *shm.Proc) (Injection, bool) {
	d, local, ok := in.freeVictim()
	if !ok || d.Seize == nil {
		return Injection{}, false
	}
	if !d.Seize(p, local) {
		return Injection{}, false
	}
	return Injection{Kind: KindSetBit, Name: d.Base + local}, true
}

// Report is the machine-readable accounting of one chaos campaign: the
// artifact cmd/renamebench -chaos writes and the CI chaos job uploads, so
// a regression in containment shows up as a diffable number, not just a
// failing assertion.
type Report struct {
	Seed   uint64 `json:"seed"`
	Trials int    `json:"trials"`
	Cells  []Cell `json:"cells"`
}

// Cell aggregates one (backend, capacity) point of the matrix across its
// trials.
type Cell struct {
	Backend  string `json:"backend"`
	Capacity int    `json:"capacity"`
	// Injected counts applied corruptions by Kind.String().
	Injected map[string]int `json:"injected"`
	// Repaired and Quarantined total the scrub results; Unrepaired and
	// DuplicateGrants are hard gates and must be zero (the harness panics
	// before recording otherwise — a nonzero value here means the gate was
	// deliberately disarmed).
	Repaired        int `json:"repaired"`
	Quarantined     int `json:"quarantined"`
	Unrepaired      int `json:"unrepaired"`
	DuplicateGrants int `json:"duplicate_grants"`
	// Drained is the total post-scrub grant count and Floor the guaranteed
	// minimum (capacity minus withdrawn names, summed over trials).
	Drained int `json:"drained"`
	Floor   int `json:"floor"`
	// ScrubIdle reports that the final scrub pass of every trial found
	// nothing left to do — the containment is a fixed point.
	ScrubIdle bool `json:"scrub_idle"`
}

// WriteJSON writes the report, indented, to path.
func (r *Report) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("chaos: encode report: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
