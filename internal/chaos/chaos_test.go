package chaos

import (
	"path/filepath"
	"testing"

	"shmrename/internal/longlived"
	"shmrename/internal/prng"
	"shmrename/internal/shm"
)

func testArena(t *testing.T) (longlived.Recoverable, shm.EpochSource) {
	t.Helper()
	ep := shm.NewCounterEpochs(1)
	a := longlived.NewLevel(128, longlived.LevelConfig{
		MaxPasses: 8,
		Lease:     &longlived.LeaseOpts{Epochs: ep},
	})
	return a, ep
}

func proc(id int) *shm.Proc { return shm.NewProc(id, prng.NewStream(3, id), nil, 0) }

func TestInjectorShapes(t *testing.T) {
	a, ep := testArena(t)
	p := proc(1)
	held := a.AcquireN(p, 8, nil)
	if len(held) != 8 {
		t.Fatalf("acquired %d of 8", len(held))
	}
	in := NewInjector(a, 7)

	inj, ok := in.GarbageStamp(ep.Now())
	if !ok {
		t.Fatal("no free victim on a mostly-empty arena")
	}
	d, local, found := Locate(a, inj.Name)
	if !found {
		t.Fatalf("injected name %d outside every domain", inj.Name)
	}
	if h, _ := shm.UnpackStamp(d.Stamps.Load(local)); h == 0 || d.IsHeld(local) {
		t.Fatalf("garbage stamp left no client stamp over a clear bit (holder %d held %v)", h, d.IsHeld(local))
	}

	victim := held[0]
	inj = in.ClearBit(p, victim)
	d, local, _ = Locate(a, inj.Name)
	if d.IsHeld(local) {
		t.Fatalf("clear-bit victim %d still held", victim)
	}
	if h, _ := shm.UnpackStamp(d.Stamps.Load(local)); h == 0 {
		t.Fatal("clear-bit retired the stamp too — that is a release, not a corruption")
	}

	inj, ok = in.SetBit(proc(2))
	if !ok {
		t.Fatal("set-bit found no free victim")
	}
	d, local, _ = Locate(a, inj.Name)
	if !d.IsHeld(local) || d.Stamps.Load(local) != 0 {
		t.Fatal("set-bit must leave a bare claim bit with no stamp")
	}
}

func TestInjectorDeterministic(t *testing.T) {
	run := func() []int {
		a, ep := testArena(t)
		in := NewInjector(a, 99)
		var names []int
		for i := 0; i < 5; i++ {
			inj, ok := in.GarbageStamp(ep.Now())
			if !ok {
				t.Fatal("ran out of victims")
			}
			names = append(names, inj.Name)
		}
		return names
	}
	first, second := run(), run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("victim sequence diverged at %d: %v vs %v", i, first, second)
		}
	}
}

func TestClearBitRejectsFreeName(t *testing.T) {
	a, _ := testArena(t)
	in := NewInjector(a, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("ClearBit accepted a free victim")
		}
	}()
	in.ClearBit(proc(1), 0)
}

func TestReportWriteJSON(t *testing.T) {
	rep := &Report{Seed: 1, Trials: 2, Cells: []Cell{{
		Backend: "x", Capacity: 4, Injected: map[string]int{"clear-bit": 1}, ScrubIdle: true,
	}}}
	path := filepath.Join(t.TempDir(), "chaos.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
}
