// Package integrity implements the online integrity scrubber of the
// lease-stamped renaming arenas: the layer that turns silent state damage
// — a flipped bitmap bit, a corrupted stamp word, a lease-cache bookkeeping
// divergence — into detected, repaired, or contained damage instead of a
// duplicate grant.
//
// # The conservation invariant
//
// At every instant, every name of a lease-enabled arena is in exactly one
// of three states, pairwise disjoint:
//
//   - free: claim bit clear, stamp claimable ({0, orphan, tombstone});
//   - parked: claim bit set, stamped by the caching holder, cached bit set
//     in the word-block lease cache (when one is layered above);
//   - granted: claim bit set, stamped by a client holder (or transiently
//     unstamped while a publish is in flight), no cached bit.
//
// Recovery (package recovery) assumes state is merely *stale* and restores
// liveness; the scrubber assumes state may be *corrupt* and restores — or
// contains — safety. It walks every bitmap word against its stamps and the
// cache's parked bits and classifies each name:
//
//   - repairable damage: residual stamps on free names (stale orphans and
//     tombstones), claim bits without stamps (adopted, exactly like a
//     recovery sweep, so the stall becomes reclaimable), phantom parked
//     names whose inner claim bit is clear (purged from the cache before
//     they can be granted);
//   - irreparable damage: a live client stamp over a clear claim bit.
//     That pair arises in no legal execution — releases retire the stamp
//     strictly before clearing the bit, claims set the bit strictly before
//     publishing — so one of the two words was corrupted, and the scrubber
//     cannot tell which without risking a duplicate grant. Likewise a
//     stamp whose epoch lies implausibly far in the future (Config
//     .MaxEpochAhead): it would never go stale, leaking the name forever.
//
// # Quarantine
//
// Irreparable damage is contained at word granularity: the scrubber
// withdraws the whole 64-name bitmap word from circulation. Every free
// name of the word is seized (its claim bit set through the backend's
// LeaseDomain.Seize) and stamped with the reserved quarantine holder
// (shm.HolderQuarantine); names still held by live clients are left
// untouched and absorbed on a later pass once released. The ordering makes
// the quarantine race-safe against concurrent claimants: the quarantine
// stamp is installed with a CAS before the bit is seized, and a claimant
// that wins the bit first finds the unclaimable stamp, walks away by the
// claim engine's rule, and leaves the bit set — quarantined either way,
// never granted. Because the mark lives in the stamp word itself, the
// quarantine is durable on mmap-backed namespaces: any later process
// generation's scrubber recognizes the word by its stamps, re-saturates
// bits lost to further corruption, and never counts the word as capacity.
//
// A quarantined word costs 64 names of advertised capacity (less those
// still serving live holders); the arena degrades instead of dying, which
// is the point — the alternative on detected corruption is a process panic
// or a silent exclusivity violation.
package integrity

import (
	"sync"
	"sync/atomic"
	"time"

	"shmrename/internal/longlived"
	"shmrename/internal/shm"
)

// Config parameterizes a Scrubber.
type Config struct {
	// Epochs is the lease clock, shared with the arena's holders and
	// reapers (required).
	Epochs shm.EpochSource
	// TTL is the staleness horizon for residual-stamp repair, in epochs:
	// stale orphans and tombstones on free names are dropped, fresh ones
	// are left to the recovery sweep they belong to. Matches the lease TTL.
	TTL uint64
	// Quarantine enables word quarantine for irreparable damage. Off, the
	// scrubber still detects and reports violations (Result.Unrepaired),
	// it just cannot contain them.
	Quarantine bool
	// MaxEpochAhead, when positive, flags client stamps whose epoch lies
	// more than this many epochs in the future as corrupt (they would
	// never go stale, leaking their names forever). Zero disables the
	// check — wall-clock deployments with loosely synchronized holders
	// should keep a generous margin or leave it off.
	MaxEpochAhead uint64
	// Parked, when non-nil, reports whether a global arena name is parked
	// in a word-block lease cache: the scrubber cross-checks that every
	// parked name is claimed underneath.
	Parked func(name int) bool
	// Purge, when non-nil, evicts a phantom parked name from the cache
	// (one whose inner claim bit is clear), reporting whether it was
	// found. The scrubber calls it before the name could be granted from
	// the cache without a backing claim.
	Purge func(name int) bool
}

// Result reports what one scrub pass found and did.
type Result struct {
	// Scanned is the number of names examined.
	Scanned int
	// Repaired counts repairs: adopted orphan bits, dropped residual
	// stamps, purged phantom cache entries, and re-seized quarantine bits.
	Repaired int
	// Quarantined counts names newly withdrawn from circulation this pass
	// (including free names of a damaged word absorbed into an existing
	// quarantine).
	Quarantined int
	// Unrepaired counts violations detected but not contained — quarantine
	// disabled, or the backend cannot seize bits. The arena's health is
	// Failed while any stand.
	Unrepaired int
}

// Scrubber runs integrity scrubs over one lease-enabled arena. All methods
// are safe for concurrent use; concurrent scrubs over the same arena are
// safe too (every stamp transition is a CAS, at most one wins).
type Scrubber struct {
	arena longlived.Recoverable
	cfg   Config

	passes     atomic.Uint64
	repaired   atomic.Uint64
	cumQuar    atomic.Uint64
	quarNames  atomic.Int64 // quarantine-stamped names observed by the last pass
	unrepaired atomic.Int64 // violations left standing by the last pass
}

// NewScrubber builds a scrubber over a lease-enabled arena.
func NewScrubber(a longlived.Recoverable, cfg Config) *Scrubber {
	if cfg.Epochs == nil {
		panic("integrity: Config.Epochs is required")
	}
	return &Scrubber{arena: a, cfg: cfg}
}

// Counters are the scrubber's cumulative totals across all passes.
type Counters struct {
	// Passes counts completed scrub passes.
	Passes uint64
	// Repaired totals Result.Repaired across passes.
	Repaired uint64
	// Quarantined totals Result.Quarantined across passes.
	Quarantined uint64
}

// Counters returns the cumulative totals.
func (s *Scrubber) Counters() Counters {
	return Counters{
		Passes:      s.passes.Load(),
		Repaired:    s.repaired.Load(),
		Quarantined: s.cumQuar.Load(),
	}
}

// QuarantinedNames returns the number of names currently withdrawn from
// circulation, as observed by the most recent scrub pass: the amount to
// subtract from the configured capacity to get the advertised one.
func (s *Scrubber) QuarantinedNames() int { return int(s.quarNames.Load()) }

// Unrepaired returns the number of violations the most recent pass
// detected but could not contain. Nonzero means the arena cannot vouch for
// exclusivity — health Failed.
func (s *Scrubber) Unrepaired() int { return int(s.unrepaired.Load()) }

// per-name classification of one scrub observation.
const (
	nameOK = iota
	nameRepaired
	nameViolation
	nameQuarantined
)

// Scrub runs one full integrity pass over every lease domain of the
// arena: word by word, each name is classified against the conservation
// invariant, repairable damage is repaired, and irreparable damage
// quarantines its word (Config.Quarantine permitting). The proc is charged
// for seized claim bits; stamp transitions are maintenance-side, like the
// recovery sweep's.
func (s *Scrubber) Scrub(p *shm.Proc) Result {
	now := s.cfg.Epochs.Now()
	var res Result
	quarNames := 0
	for _, d := range s.arena.LeaseDomains() {
		size := d.Stamps.Size()
		for lo := 0; lo < size; lo += 64 {
			hi := min(lo+64, size)
			violations, existing := 0, 0
			for i := lo; i < hi; i++ {
				res.Scanned++
				switch s.checkOne(d, i, now) {
				case nameRepaired:
					res.Repaired++
				case nameViolation:
					violations++
				case nameQuarantined:
					existing++
				}
			}
			canSeize := d.Seize != nil
			switch {
			case violations > 0 && s.cfg.Quarantine && canSeize,
				existing > 0 && canSeize:
				// Damaged word (or one carrying an earlier quarantine):
				// saturate it. Every free name is withdrawn; live holders
				// are absorbed on a later pass once they release.
				q, rep := s.quarantineWord(p, d, lo, hi, now)
				res.Quarantined += q
				res.Repaired += rep
				quarNames += existing + q
			case violations > 0:
				res.Unrepaired += violations
				quarNames += existing
			default:
				quarNames += existing
			}
		}
	}
	s.passes.Add(1)
	s.repaired.Add(uint64(res.Repaired))
	s.cumQuar.Add(uint64(res.Quarantined))
	s.quarNames.Store(int64(quarNames))
	s.unrepaired.Store(int64(res.Unrepaired))
	return res
}

// checkOne classifies domain-local name i and performs point repairs. The
// stamp is read before the bit and re-validated after, so the
// stamp-implies-bit invariant check cannot be fooled by a release sliding
// between the two loads.
func (s *Scrubber) checkOne(d longlived.LeaseDomain, i int, now uint64) int {
	obs := d.Stamps.Load(i)
	held := d.IsHeld(i)
	if d.Stamps.Load(i) != obs {
		return nameOK // concurrent protocol activity; next pass re-checks
	}
	h, e := shm.UnpackStamp(obs)
	out := nameOK
	if g := d.Base + i; s.cfg.Parked != nil && !held && s.cfg.Parked(g) {
		// A parked name must be claimed underneath, or the cache would
		// eventually grant a name it holds no claim on. Re-validate (an
		// Acquire pop unparks concurrently), then evict the phantom.
		if !d.IsHeld(i) && s.cfg.Parked(g) && s.cfg.Purge != nil && s.cfg.Purge(g) {
			out = nameRepaired
		}
	}
	switch {
	case obs == 0:
		if held && d.Stamps.Adopt(i, now) {
			// Orphaned claim bit: a holder crashed between winning the bit
			// and publishing (or mid-release). Adopted exactly like a
			// recovery sweep, so the stall becomes reclaimable.
			return nameRepaired
		}
	case h == shm.HolderQuarantine:
		return nameQuarantined
	case h == shm.HolderSuspect:
		// Reclaim in flight — recovery's jurisdiction, not damage.
	case h == shm.HolderOrphan, h == shm.HolderTomb:
		if !held && shm.StampStale(now, e, s.cfg.TTL) && d.Stamps.Drop(i, obs) {
			return nameRepaired // residual recovery stamp on a free name
		}
	default: // client holder
		if !held {
			// A live client stamp over a clear claim bit arises in no
			// legal execution: releases retire the stamp strictly before
			// the bit, claims set the bit strictly before the stamp. One
			// of the two words is corrupt, and re-granting the name could
			// duplicate it.
			return nameViolation
		}
		if s.cfg.MaxEpochAhead > 0 && e > now && e-now > s.cfg.MaxEpochAhead {
			// A future-dated lease never goes stale: the name would leak
			// forever, and the epoch field is evidence of stamp corruption.
			return nameViolation
		}
	}
	return out
}

// quarantineWord withdraws the free names of bitmap word [lo, hi) from
// circulation: quarantine stamp first (a CAS that blocks publishers), then
// the claim bit (a claimant that slipped in between finds the unclaimable
// stamp and walks away, leaving the bit set — quarantined either way).
// Names held under live client stamps are left in place; suspects are left
// to their reaper. Returns newly quarantined names and re-seized bits.
func (s *Scrubber) quarantineWord(p *shm.Proc, d longlived.LeaseDomain, lo, hi int, now uint64) (quarantined, repaired int) {
	for i := lo; i < hi; i++ {
	retry:
		for attempt := 0; attempt < 8; attempt++ {
			obs := d.Stamps.Load(i)
			held := d.IsHeld(i)
			h, _ := shm.UnpackStamp(obs)
			switch {
			case h == shm.HolderQuarantine:
				if !held {
					// The quarantine lost its bit to further corruption:
					// re-saturate.
					if d.Seize(p, i) {
						repaired++
					}
				}
				break retry
			case h == shm.HolderSuspect:
				break retry // mid-reclaim; absorbed on a later pass
			case held && shm.StampClaimable(obs) && h != shm.HolderOrphan:
				// Walked-away bit under a tombstone (or a publish racing
				// us over zero): take the stamp; the bit is already set.
				if d.Stamps.Quarantine(i, obs, now) {
					quarantined++
					break retry
				}
			case held:
				break retry // live holder (or in-flight claim): absorb later
			default:
				// Free name, or the violating bit-clear client stamp:
				// stamp first, then seize the bit.
				if !d.Stamps.Quarantine(i, obs, now) {
					continue
				}
				d.Seize(p, i)
				quarantined++
				break retry
			}
		}
	}
	return quarantined, repaired
}

// Run starts a background goroutine scrubbing every interval with the
// given proc until the returned stop function is called. Stop is
// idempotent and waits for an in-flight scrub to finish.
func (s *Scrubber) Run(p *shm.Proc, interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				s.Scrub(p)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}
