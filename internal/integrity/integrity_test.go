package integrity

import (
	"testing"
	"time"

	"shmrename/internal/longlived"
	"shmrename/internal/prng"
	"shmrename/internal/shm"
)

func nativeProc(id int) *shm.Proc {
	return shm.NewProc(id, prng.NewStream(41, id), nil, 1<<22)
}

// leasedLevel builds a lease-enabled level arena plus its scrubber clock.
func leasedLevel(t *testing.T, capacity int) (*longlived.LevelArena, *shm.CounterEpochs) {
	t.Helper()
	ep := shm.NewCounterEpochs(1)
	a := longlived.NewLevel(capacity, longlived.LevelConfig{
		MaxPasses: 8,
		Lease:     &longlived.LeaseOpts{Epochs: ep},
	})
	return a, ep
}

func scrubber(a longlived.Recoverable, ep shm.EpochSource, quarantine bool) *Scrubber {
	return NewScrubber(a, Config{Epochs: ep, TTL: 2, Quarantine: quarantine})
}

// domainFor locates the lease domain covering global name g.
func domainFor(t *testing.T, a longlived.Recoverable, g int) (longlived.LeaseDomain, int) {
	t.Helper()
	for _, d := range a.LeaseDomains() {
		if g >= d.Base && g < d.Base+d.Stamps.Size() {
			return d, g - d.Base
		}
	}
	t.Fatalf("no lease domain covers name %d", g)
	return longlived.LeaseDomain{}, 0
}

// TestScrubCleanArenaIsIdle: a healthy arena under normal traffic yields a
// scrub pass with zero repairs, zero quarantines, zero violations.
func TestScrubCleanArenaIsIdle(t *testing.T) {
	a, ep := leasedLevel(t, 128)
	p := nativeProc(1)
	var names []int
	for range 40 {
		n := a.Acquire(p)
		if n < 0 {
			t.Fatal("acquire failed")
		}
		names = append(names, n)
	}
	for _, n := range names[:20] {
		a.Release(p, n)
	}
	s := scrubber(a, ep, true)
	res := s.Scrub(nativeProc(900))
	if res.Repaired != 0 || res.Quarantined != 0 || res.Unrepaired != 0 {
		t.Fatalf("clean arena scrub not idle: %+v", res)
	}
	if res.Scanned == 0 {
		t.Fatal("scrub scanned nothing")
	}
	if s.QuarantinedNames() != 0 || s.Unrepaired() != 0 {
		t.Fatalf("clean arena reports quarantine=%d unrepaired=%d",
			s.QuarantinedNames(), s.Unrepaired())
	}
}

// TestScrubAdoptsOrphanBit: a claim bit with a zero stamp (holder crashed
// pre-publish) is adopted, mirroring the recovery sweep.
func TestScrubAdoptsOrphanBit(t *testing.T) {
	a, ep := leasedLevel(t, 128)
	p := nativeProc(1)
	n := a.Acquire(p)
	d, i := domainFor(t, a, n)
	d.Stamps.Inject(i, 0) // simulate crash between bit win and publish
	s := scrubber(a, ep, true)
	res := s.Scrub(nativeProc(900))
	if res.Repaired != 1 {
		t.Fatalf("expected 1 repair (adoption), got %+v", res)
	}
	if h, _ := shm.UnpackStamp(d.Stamps.Load(i)); h != shm.HolderOrphan {
		t.Fatalf("stamp not adopted: holder %d", h)
	}
	if res.Quarantined != 0 || res.Unrepaired != 0 {
		t.Fatalf("adoption misclassified: %+v", res)
	}
}

// TestScrubDropsStaleResidue: stale orphan/tombstone stamps on free names
// are garbage-collected; fresh ones are left to recovery.
func TestScrubDropsStaleResidue(t *testing.T) {
	a, ep := leasedLevel(t, 128)
	d := a.LeaseDomains()[0]
	d.Stamps.Inject(0, shm.PackStamp(shm.HolderTomb, 1))
	d.Stamps.Inject(1, shm.PackStamp(shm.HolderOrphan, 1))
	d.Stamps.Inject(2, shm.PackStamp(shm.HolderTomb, 100)) // fresh
	ep.Advance(10)
	s := scrubber(a, ep, true)
	res := s.Scrub(nativeProc(900))
	if res.Repaired != 2 {
		t.Fatalf("expected 2 residue drops, got %+v", res)
	}
	if d.Stamps.Load(0) != 0 || d.Stamps.Load(1) != 0 {
		t.Fatal("stale residue not dropped")
	}
	if d.Stamps.Load(2) == 0 {
		t.Fatal("fresh tombstone dropped: recovery's grace period violated")
	}
}

// TestScrubQuarantinesViolation: a live client stamp over a clear claim bit
// — impossible in any legal execution — quarantines the whole word: every
// free name seized and quarantine-stamped, no name of the word grantable,
// capacity debited.
func TestScrubQuarantinesViolation(t *testing.T) {
	a, ep := leasedLevel(t, 128)
	p := nativeProc(1)
	held := a.Acquire(p) // a live holder inside the word to be quarantined
	d, hi := domainFor(t, a, held)
	// Plant the violation on a free name of the same domain word.
	vi := -1
	for i := hi / 64 * 64; i < (hi/64+1)*64 && i < d.Stamps.Size(); i++ {
		if i != hi && !d.IsHeld(i) {
			vi = i
			break
		}
	}
	if vi < 0 {
		t.Skip("word has no free name to corrupt")
	}
	d.Stamps.Inject(vi, shm.PackStamp(77, ep.Now()))

	s := scrubber(a, ep, true)
	res := s.Scrub(nativeProc(900))
	if res.Quarantined == 0 {
		t.Fatalf("violation not quarantined: %+v", res)
	}
	if res.Unrepaired != 0 {
		t.Fatalf("quarantine left violations standing: %+v", res)
	}
	// The violating name is now quarantine-stamped with its bit seized.
	if h, _ := shm.UnpackStamp(d.Stamps.Load(vi)); h != shm.HolderQuarantine {
		t.Fatalf("violating name not quarantine-stamped: holder %d", h)
	}
	if !d.IsHeld(vi) {
		t.Fatal("quarantined name's bit not seized")
	}
	// The live holder of the same word is untouched.
	if h, _ := shm.UnpackStamp(d.Stamps.Load(hi)); h != 1%shm.MaxHolder+1 {
		t.Fatalf("live holder's stamp disturbed: %d", h)
	}
	if s.QuarantinedNames() != res.Quarantined {
		t.Fatalf("quarantine total %d != pass result %d", s.QuarantinedNames(), res.Quarantined)
	}

	// No quarantined name is ever granted again: drain the arena and check.
	got := map[int]bool{}
	pq := nativeProc(2)
	for {
		n := a.Acquire(pq)
		if n < 0 {
			break
		}
		if got[n] {
			t.Fatalf("duplicate grant of %d", n)
		}
		got[n] = true
		if h, _ := shm.UnpackStamp(func() uint64 { dd, ii := domainFor(t, a, n); return dd.Stamps.Load(ii) }()); h == shm.HolderQuarantine {
			t.Fatalf("granted quarantined name %d", n)
		}
	}
	for q := d.Base + vi/64*64; q < d.Base+vi/64*64+64 && q < d.Base+d.Stamps.Size(); q++ {
		if q != held && got[q] {
			t.Fatalf("granted name %d of quarantined word", q)
		}
	}
}

// TestScrubAbsorbsReleasedHolder: a live holder inside a quarantined word
// keeps its name; once it releases, the next scrub absorbs the name into
// the quarantine instead of returning it to circulation.
func TestScrubAbsorbsReleasedHolder(t *testing.T) {
	a, ep := leasedLevel(t, 128)
	p := nativeProc(1)
	held := a.Acquire(p)
	d, hi := domainFor(t, a, held)
	vi := -1
	for i := hi / 64 * 64; i < (hi/64+1)*64 && i < d.Stamps.Size(); i++ {
		if i != hi && !d.IsHeld(i) {
			vi = i
			break
		}
	}
	if vi < 0 {
		t.Skip("word has no free name to corrupt")
	}
	d.Stamps.Inject(vi, shm.PackStamp(77, ep.Now()))
	s := scrubber(a, ep, true)
	first := s.Scrub(nativeProc(900))
	if first.Quarantined == 0 {
		t.Fatalf("no quarantine: %+v", first)
	}
	before := s.QuarantinedNames()

	a.Release(p, held) // live holder departs the damaged word
	second := s.Scrub(nativeProc(900))
	if second.Quarantined != 1 {
		t.Fatalf("released name not absorbed: %+v", second)
	}
	if h, _ := shm.UnpackStamp(d.Stamps.Load(hi)); h != shm.HolderQuarantine {
		t.Fatalf("released name not quarantine-stamped: holder %d", h)
	}
	if s.QuarantinedNames() != before+1 {
		t.Fatalf("quarantine total %d, want %d", s.QuarantinedNames(), before+1)
	}

	// Third pass over stable damage is idle.
	third := s.Scrub(nativeProc(900))
	if third.Repaired != 0 || third.Quarantined != 0 || third.Unrepaired != 0 {
		t.Fatalf("third scrub not idle: %+v", third)
	}
}

// TestScrubQuarantineDisabled: with Quarantine off the violation is
// detected and reported but not contained.
func TestScrubQuarantineDisabled(t *testing.T) {
	a, ep := leasedLevel(t, 128)
	d := a.LeaseDomains()[0]
	d.Stamps.Inject(3, shm.PackStamp(77, ep.Now()))
	s := scrubber(a, ep, false)
	res := s.Scrub(nativeProc(900))
	if res.Unrepaired != 1 || res.Quarantined != 0 {
		t.Fatalf("disabled quarantine: %+v", res)
	}
	if s.Unrepaired() != 1 {
		t.Fatalf("Unrepaired()=%d, want 1", s.Unrepaired())
	}
	if h, _ := shm.UnpackStamp(d.Stamps.Load(3)); h != 77 {
		t.Fatal("stamp touched despite quarantine off")
	}
}

// TestScrubFutureEpoch: a stamp dated implausibly far in the future is a
// violation (the lease would never expire) when MaxEpochAhead is set.
func TestScrubFutureEpoch(t *testing.T) {
	a, ep := leasedLevel(t, 128)
	p := nativeProc(1)
	n := a.Acquire(p)
	d, i := domainFor(t, a, n)
	h, _ := shm.UnpackStamp(d.Stamps.Load(i))
	d.Stamps.Inject(i, shm.PackStamp(h, ep.Now()+1_000_000))
	s := NewScrubber(a, Config{Epochs: ep, TTL: 2, Quarantine: true, MaxEpochAhead: 1000})
	res := s.Scrub(nativeProc(900))
	if res.Quarantined == 0 {
		t.Fatalf("future-dated stamp not quarantined: %+v", res)
	}
	// Without MaxEpochAhead the same state passes (wall-clock tolerance).
	a2, ep2 := leasedLevel(t, 128)
	p2 := nativeProc(1)
	n2 := a2.Acquire(p2)
	d2, i2 := domainFor(t, a2, n2)
	h2, _ := shm.UnpackStamp(d2.Stamps.Load(i2))
	d2.Stamps.Inject(i2, shm.PackStamp(h2, ep2.Now()+1_000_000))
	s2 := scrubber(a2, ep2, true)
	if res2 := s2.Scrub(nativeProc(900)); res2.Quarantined != 0 || res2.Unrepaired != 0 {
		t.Fatalf("future epoch flagged with check disabled: %+v", res2)
	}
}

// TestScrubReseizesLostQuarantineBit: further corruption clearing a
// quarantined name's claim bit is repaired — the bit is re-seized, the
// name stays out of circulation.
func TestScrubReseizesLostQuarantineBit(t *testing.T) {
	a, ep := leasedLevel(t, 128)
	d := a.LeaseDomains()[0]
	d.Stamps.Inject(5, shm.PackStamp(77, ep.Now()))
	s := scrubber(a, ep, true)
	s.Scrub(nativeProc(900))
	if !d.IsHeld(5) {
		t.Fatal("setup: name 5 not quarantined")
	}
	d.Reclaim(nativeProc(901), 5) // corrupt: clear the quarantined bit
	res := s.Scrub(nativeProc(900))
	if res.Repaired == 0 {
		t.Fatalf("lost quarantine bit not re-seized: %+v", res)
	}
	if !d.IsHeld(5) {
		t.Fatal("bit still clear after scrub")
	}
}

// TestScrubPhantomParked: a parked name whose inner claim bit is clear is
// purged from the cache before it can be granted without a backing claim.
func TestScrubPhantomParked(t *testing.T) {
	a, ep := leasedLevel(t, 128)
	phantom := map[int]bool{9: true}
	purged := 0
	s := NewScrubber(a, Config{
		Epochs:     ep,
		TTL:        2,
		Quarantine: true,
		Parked:     func(name int) bool { return phantom[name] },
		Purge: func(name int) bool {
			if phantom[name] {
				delete(phantom, name)
				purged++
				return true
			}
			return false
		},
	})
	res := s.Scrub(nativeProc(900))
	if purged != 1 || res.Repaired != 1 {
		t.Fatalf("phantom parked not purged: purged=%d %+v", purged, res)
	}
	if res.Quarantined != 0 || res.Unrepaired != 0 {
		t.Fatalf("phantom purge misclassified: %+v", res)
	}
}

// TestScrubCounters: cumulative counters add up across passes.
func TestScrubCounters(t *testing.T) {
	a, ep := leasedLevel(t, 128)
	d := a.LeaseDomains()[0]
	d.Stamps.Inject(7, shm.PackStamp(77, ep.Now()))
	s := scrubber(a, ep, true)
	r1 := s.Scrub(nativeProc(900))
	s.Scrub(nativeProc(900))
	c := s.Counters()
	if c.Passes != 2 {
		t.Fatalf("passes=%d, want 2", c.Passes)
	}
	if c.Quarantined != uint64(r1.Quarantined) {
		t.Fatalf("cumulative quarantined %d != %d", c.Quarantined, r1.Quarantined)
	}
}

// TestScrubRunBackground: the background loop scrubs and stops cleanly;
// stop is idempotent.
func TestScrubRunBackground(t *testing.T) {
	a, ep := leasedLevel(t, 128)
	s := scrubber(a, ep, true)
	stop := s.Run(nativeProc(900), time.Millisecond)
	for range 100 {
		if s.Counters().Passes > 0 {
			break
		}
		ep.Advance(1)
		time.Sleep(time.Millisecond)
	}
	stop()
	stop()
	if s.Counters().Passes == 0 {
		t.Fatal("background loop never scrubbed")
	}
}
