package leasecache

import (
	"strings"
	"testing"
)

// corrupt plants a conservation violation: set a name's cached bit without
// any stack holding it, so the next Release of that name marks it twice.
func corrupt(c *Cache, name int) {
	setBit(&c.cached[name>>6], uint64(1)<<(uint(name)&63))
}

// TestConservationPanicsWithoutHandler pins the strict default: without a
// corruption handler a violation panics at the point of detection, exactly
// as before the handler existed. (Under the race detector the panic is
// unconditional; this test covers both builds.)
func TestConservationPanicsWithoutHandler(t *testing.T) {
	c, _ := newSharded(256, 2, Config{Block: 8, Slots: 2})
	p := proc(1)
	n := c.Acquire(p)
	if n < 0 {
		t.Fatal("acquire failed")
	}
	corrupt(c, n)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("violation did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "cached twice") {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	c.Release(p, n)
}

// TestConservationFailsGracefullyWithHandler: with a handler installed (and
// outside race builds) a violation latches pass-through mode — the handler
// fires once, Failed reports true, and subsequent operations keep working
// against the inner arena without touching the frozen stacks.
func TestConservationFailsGracefullyWithHandler(t *testing.T) {
	if strictConservation {
		t.Skip("race build: conservation violations always panic")
	}
	c, inner := newSharded(256, 2, Config{Block: 8, Slots: 2})
	var msgs []string
	c.SetOnCorruption(func(msg string) { msgs = append(msgs, msg) })

	p := proc(1)
	n := c.Acquire(p)
	if n < 0 {
		t.Fatal("acquire failed")
	}
	corrupt(c, n)
	c.Release(p, n) // detects the double mark; must not panic
	if !c.Failed() {
		t.Fatal("cache not failed after violation")
	}
	if len(msgs) != 1 || !strings.Contains(msgs[0], "cached twice") {
		t.Fatalf("handler calls %q, want one 'cached twice'", msgs)
	}
	// The violating release still returned the name to the inner pool.
	if inner.IsHeld(n) {
		t.Fatalf("name %d not released through the bypass", n)
	}

	// Pass-through mode: acquire/release keep functioning, no duplicates.
	seen := map[int]bool{}
	var names []int
	for range 64 {
		m := c.Acquire(p)
		if m < 0 {
			t.Fatal("acquire failed in pass-through mode")
		}
		if seen[m] {
			t.Fatalf("duplicate grant %d in pass-through mode", m)
		}
		seen[m] = true
		names = append(names, m)
	}
	for _, m := range names {
		c.Release(p, m)
	}
	if len(msgs) != 1 {
		t.Fatalf("handler re-fired: %q", msgs)
	}
}
