//go:build go1.25

package leasecache

import "sync/atomic"

// The cached-bit flips want the one-shot atomic.Uint64.Or/And intrinsics:
// one locked instruction instead of a load+CAS loop. Go 1.24.0's amd64
// lowering of the value-returning forms clobbered a live register (caught
// by the leasecache tests crashing in mark), so the intrinsics are gated
// to toolchains carrying the fix and bits_portable.go keeps the CAS loop
// for the rest. TestCachedBitOps pins the shared old-value contract on
// whichever implementation is built.

// setBit sets bit in w and returns the word's previous value.
func setBit(w *atomic.Uint64, bit uint64) uint64 { return w.Or(bit) }

// clearBit clears bit in w and returns the word's previous value.
func clearBit(w *atomic.Uint64, bit uint64) uint64 { return w.And(^bit) }
