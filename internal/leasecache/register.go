package leasecache

import (
	"shmrename/internal/longlived"
	"shmrename/internal/registry"
	"shmrename/internal/sharded"
)

func init() {
	registry.Register(registry.Backend{
		Name: "lease-cached",
		// Not Deterministic: slot assignment hashes proc IDs into a
		// GOMAXPROCS-sized slot array and TryLock outcomes depend on real
		// interleaving, and a cached arena may report full while parked
		// names exist in other workers' slots — so the simulated churn
		// invariants (every worker completes every cycle) do not apply.
		Caps: registry.Caps{
			Releasable:  true,
			Batch:       true,
			Leasable:    true,
			Sharded:     true,
			WordScan:    true,
			Cached:      true,
			SelfHealing: true,
		},
		New: func(cfg registry.Config) registry.Arena {
			// The production shape ArenaConfig.LeaseBlocks wires: per-worker
			// word-block caches over the word-scan sharded frontend.
			shards := 4
			if shards > cfg.Capacity {
				shards = cfg.Capacity
			}
			block := 64
			if block > cfg.Capacity {
				block = cfg.Capacity
			}
			inner := sharded.New(cfg.Capacity, sharded.Config{
				Shards:    shards,
				MaxPasses: cfg.MaxPasses,
				WordScan:  true,
				Padded:    true,
				Lease:     longlived.Lease(cfg),
				Label:     cfg.Label,
			})
			return New(inner, Config{Block: block})
		},
	})
}
