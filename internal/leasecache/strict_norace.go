//go:build !race

package leasecache

// strictConservation is off in production builds: with a corruption handler
// installed (SetOnCorruption), a conservation violation fails the cache
// into pass-through mode and surfaces through Arena.Health instead of
// panicking the process. See strict_race.go for the race-build override.
const strictConservation = false
