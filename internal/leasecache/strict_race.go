//go:build race

package leasecache

// strictConservation forces conservation violations to panic even when a
// corruption handler is installed: under the race detector (tests, CI) a
// violated invariant should stop the run at the point of detection with a
// stack, not degrade gracefully past it.
const strictConservation = true
