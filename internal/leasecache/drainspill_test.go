package leasecache

import (
	"testing"

	"shmrename/internal/longlived"
)

// TestDrainSpillNeverParksDrainingNames pins the elastic composition rule:
// a parked name is a live claim, so a cached name from a draining level
// would pin that level's drain forever. The cache must (a) route releases
// of draining names straight to the inner arena and (b) shed draining
// names it finds on its stacks instead of granting them — so a forced
// shrink completes under ordinary acquire/release traffic.
func TestDrainSpillNeverParksDrainingNames(t *testing.T) {
	el := longlived.NewElastic(256, longlived.ElasticConfig{
		MinCapacity: 1,
		ShrinkAfter: 1 << 30, // only forced shrinks in this test
		WordScan:    true,
		MaxPasses:   8,
		Label:       "t-drainspill",
	})
	c := New(el, Config{Block: 32, Slots: 1, MaxCached: 256})
	p := proc(0)

	// Hold 200 names. The first two ladder levels cover [0, 192), so at
	// least eight of these live in the top level the shrink will target.
	var names []int
	for i := 0; i < 200; i++ {
		n := c.Acquire(p)
		if n < 0 {
			t.Fatalf("acquire %d failed while growing", i)
		}
		names = append(names, n)
	}
	if act, _ := el.Levels(); act < 3 {
		t.Fatalf("resident levels %d after 200 holds, want >= 3", act)
	}

	// Park everything, then force a drain of the top level. The parked
	// claims pin it: the drain must stay pending, not retire held bits.
	for _, n := range names {
		c.Release(p, n)
	}
	if c.Shrink() {
		t.Fatal("Shrink completed with top-level names still parked")
	}
	pinned := 0
	for _, n := range names {
		if c.Draining(n) {
			pinned++
		}
	}
	if pinned == 0 {
		t.Fatal("no parked name sits in the draining level; test lost its premise")
	}

	// Ordinary churn. Every pop that surfaces a draining name must shed it
	// to the inner arena rather than grant it, so the drain finishes while
	// clients only ever see non-draining names.
	for round := 0; round < 600; round++ {
		n := c.Acquire(p)
		if n < 0 {
			t.Fatalf("round %d: acquire failed during drain", round)
		}
		if c.Draining(n) {
			t.Fatalf("round %d: granted draining name %d", round, n)
		}
		c.Release(p, n)
	}

	c.Flush(p)
	for c.Shrink() {
	}
	if act, _ := el.Levels(); act != 1 {
		t.Fatalf("resident levels %d after shed+drain, want 1", act)
	}
	if now := c.CapacityNow(); now != 64 {
		t.Fatalf("CapacityNow %d at the floor, want 64", now)
	}
	if h, k := el.Held(), c.Cached(); h != 0 || k != 0 {
		t.Fatalf("held %d cached %d after flush, want 0/0", h, k)
	}
}
