//go:build !go1.25

package leasecache

import "sync/atomic"

// Portable cached-bit flips for toolchains predating the fix for Go
// 1.24.0's amd64 miscompilation of the value-returning atomic Or/And
// forms; see bits_fast.go. An already-set (respectively already-clear)
// bit needs no store at all — returning the observed word matches the
// intrinsic's contract exactly.

// setBit sets bit in w and returns the word's previous value.
func setBit(w *atomic.Uint64, bit uint64) uint64 {
	for {
		old := w.Load()
		if old&bit != 0 || w.CompareAndSwap(old, old|bit) {
			return old
		}
	}
}

// clearBit clears bit in w and returns the word's previous value.
func clearBit(w *atomic.Uint64, bit uint64) uint64 {
	for {
		old := w.Load()
		if old&bit == 0 || w.CompareAndSwap(old, old&^bit) {
			return old
		}
	}
}
