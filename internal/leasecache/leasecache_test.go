package leasecache

import (
	"fmt"
	"hash/fnv"
	"sync"
	"testing"

	"shmrename/internal/longlived"
	"shmrename/internal/prng"
	"shmrename/internal/recovery"
	"shmrename/internal/sharded"
	"shmrename/internal/shm"
)

func proc(id int) *shm.Proc {
	return shm.NewProc(id, prng.NewStream(7, id), nil, 0)
}

// newSharded builds the production shape: a word-scan sharded arena under
// the cache, as ArenaConfig.LeaseBlocks wires it.
func newSharded(capacity, shards int, cfg Config) (*Cache, *sharded.Arena) {
	inner := sharded.New(capacity, sharded.Config{
		Shards: shards, MaxPasses: 8, WordScan: true, Padded: true,
	})
	return New(inner, cfg), inner
}

// TestFastPathZeroSteps pins the tentpole claim: after the block lease,
// acquires and releases served by the worker cache cost zero step-counted
// shared-memory operations.
func TestFastPathZeroSteps(t *testing.T) {
	c, _ := newSharded(256, 1, Config{Block: 64, Slots: 1})
	p := proc(0)
	first := c.Acquire(p)
	if first < 0 {
		t.Fatal("acquire failed")
	}
	leaseSteps := p.Steps()
	if leaseSteps == 0 {
		t.Fatal("block lease cost no steps — not exercising the inner arena")
	}
	// The next Block-1 acquires and every release pop/push the local
	// stack: the step counter must not move at all.
	names := []int{first}
	for i := 0; i < 63; i++ {
		n := c.Acquire(p)
		if n < 0 {
			t.Fatalf("cached acquire %d failed", i)
		}
		names = append(names, n)
	}
	for _, n := range names {
		c.Release(p, n)
	}
	for i := 0; i < 64; i++ {
		if n := c.Acquire(p); n < 0 {
			t.Fatalf("recycled acquire %d failed", i)
		}
	}
	if got := p.Steps(); got != leaseSteps {
		t.Fatalf("fast path spent %d shared-memory steps (lease cost %d)", got-leaseSteps, leaseSteps)
	}
}

// TestUniqueWhileCaching checks holder uniqueness straight through the
// cache: names granted concurrently are pairwise distinct even as blocks
// lease, spill, and steal underneath.
func TestUniqueWhileCaching(t *testing.T) {
	c, _ := newSharded(512, 4, Config{Block: 16, Slots: 4, MaxCached: 24})
	mon := longlived.NewMonitor(c.NameBound())
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := proc(id)
			r := p.Rand()
			held := make([]int, 0, 8)
			for cyc := 0; cyc < 400; cyc++ {
				for len(held) < 8 {
					before := p.Steps()
					n := c.Acquire(p)
					if n < 0 {
						break
					}
					mon.NoteAcquire(p.ID(), n, p.Steps()-before)
					held = append(held, n)
				}
				for len(held) > 0 && r.Intn(2) == 0 {
					n := held[len(held)-1]
					held = held[:len(held)-1]
					mon.NoteRelease(p.ID(), n)
					c.Release(p, n)
				}
			}
			for _, n := range held {
				mon.NoteRelease(p.ID(), n)
				c.Release(p, n)
			}
		}(g)
	}
	wg.Wait()
	if err := mon.Err(); err != nil {
		t.Fatal(err)
	}
	// Conservation: flushing the caches returns every parked name, and the
	// inner arena ends empty — nothing lost, nothing leaked.
	p := proc(999)
	c.Flush(p)
	if got := c.Cached(); got != 0 {
		t.Fatalf("%d names still parked after flush", got)
	}
	if h := c.Held(); h != 0 {
		t.Fatalf("%d names held after all releases", h)
	}
	if refills, _, _ := func() (int64, int64, int64) { return c.Stats() }(); refills == 0 {
		t.Fatal("storm never leased a block — cache not exercised")
	}
}

// TestConservationExact drains the whole arena through the cache and back:
// every name in [0, bound) is accounted for, none twice.
func TestConservationExact(t *testing.T) {
	c, inner := newSharded(128, 2, Config{Block: 32, Slots: 2})
	p := proc(0)
	seen := make(map[int]bool)
	var names []int
	for {
		n := c.Acquire(p)
		if n < 0 {
			break
		}
		if seen[n] {
			t.Fatalf("name %d granted twice", n)
		}
		seen[n] = true
		names = append(names, n)
	}
	// Parked + granted together cover the whole inner claim set.
	if got := len(names) + c.Cached(); got != inner.Held() {
		t.Fatalf("granted %d + parked %d != inner held %d", len(names), c.Cached(), inner.Held())
	}
	if len(names) < c.Capacity()-c.Cached() {
		t.Fatalf("only %d names before full (capacity %d, parked %d)", len(names), c.Capacity(), c.Cached())
	}
	for _, n := range names {
		c.Release(p, n)
	}
	c.Flush(p)
	if inner.Held() != 0 || c.Cached() != 0 {
		t.Fatalf("after drain: inner held %d, parked %d", inner.Held(), c.Cached())
	}
}

// TestIsHeldParked pins the visibility rule: a parked name is claimed in
// the inner arena but IsHeld is false through the cache — the public
// release guard must reject names the cache owns.
func TestIsHeldParked(t *testing.T) {
	c, inner := newSharded(128, 1, Config{Block: 8, Slots: 1})
	p := proc(0)
	n := c.Acquire(p)
	if !c.IsHeld(n) {
		t.Fatalf("granted name %d not held", n)
	}
	c.Release(p, n) // parks it
	if !inner.IsHeld(n) {
		t.Fatalf("parked name %d lost its inner claim", n)
	}
	if c.IsHeld(n) {
		t.Fatalf("parked name %d reports held through the cache", n)
	}
	if got := c.Held(); got != 0 {
		t.Fatalf("Held() = %d with everything parked", got)
	}
}

// TestPressureRelief pins the starvation valve: with every free name
// parked in another worker's cache, an acquirer first steals; once steals
// are exhausted mid-storm the pressure window routes releases straight to
// the inner pool.
func TestPressureRelief(t *testing.T) {
	c, _ := newSharded(64, 1, Config{Block: 64, Slots: 2, MaxCached: 64})
	pa, pb := proc(0), proc(1) // hash to different slots
	// A leases the whole arena: one granted, 63 parked in slot 0.
	a0 := c.Acquire(pa)
	if a0 < 0 {
		t.Fatal("bootstrap acquire failed")
	}
	// B's acquire finds the inner arena empty and must steal from A's slot.
	b0 := c.Acquire(pb)
	if b0 < 0 {
		t.Fatal("steal-path acquire failed with 63 names parked")
	}
	if _, _, steals := c.Stats(); steals == 0 {
		t.Fatal("acquire succeeded without stealing — parked names leaked?")
	}
	// Drain every parked name; the next acquire is a genuine full report
	// and must open the pressure window.
	for c.steal(pb) >= 0 {
	}
	if n := c.Acquire(pb); n >= 0 {
		t.Fatalf("acquire got %d from a fully drained arena", n)
	}
	if c.pressure.Load() == 0 {
		t.Fatal("starved acquire left the pressure window closed")
	}
	// Under pressure a release bypasses the cache: the name returns to the
	// inner pool (not parked) so starved acquirers can claim it.
	before := c.Cached()
	c.Release(pa, a0)
	if c.Cached() != before {
		t.Fatal("release under pressure parked the name instead of feeding the pool")
	}
}

// TestSpillAtMaxCached pins the release-side bound: a slot at MaxCached
// spills one whole block back through a coalesced inner ReleaseN.
func TestSpillAtMaxCached(t *testing.T) {
	c, inner := newSharded(256, 1, Config{Block: 8, Slots: 1, MaxCached: 16})
	p := proc(0)
	var names []int
	for i := 0; i < 64; i++ {
		n := c.Acquire(p)
		if n < 0 {
			t.Fatalf("acquire %d failed", i)
		}
		names = append(names, n)
	}
	for _, n := range names {
		c.Release(p, n)
	}
	if c.Cached() > 16 {
		t.Fatalf("%d parked names exceed MaxCached=16", c.Cached())
	}
	if _, spills, _ := c.Stats(); spills == 0 {
		t.Fatal("64 releases into a 16-cap slot never spilled")
	}
	if free := inner.Capacity() - inner.Held(); free < 64-16 {
		t.Fatalf("only %d names back in the inner pool", free)
	}
}

// TestReclaimPurgesCache pins the crash-recovery composition: a recovery
// sweep that reclaims a parked name purges it from the cache first, so the
// cache can never grant a name the sweep returned to the pool.
func TestReclaimPurgesCache(t *testing.T) {
	ep := shm.NewCounterEpochs(1)
	inner := sharded.New(64, sharded.Config{
		Shards: 2, MaxPasses: 8, WordScan: true,
		Lease: &longlived.LeaseOpts{Epochs: ep},
	})
	c := New(inner, Config{Block: 16, Slots: 1})
	p := proc(1)
	n := c.Acquire(p)
	c.Release(p, n) // parked, lease stamp still live
	parked := c.Cached()
	if parked == 0 {
		t.Fatal("nothing parked")
	}
	// The holder goes silent past the TTL: the sweep reclaims the whole
	// cached block — parked names are leases like any other.
	ep.Advance(10)
	sw := recovery.NewSweeper(c, recovery.Config{TTL: 5, Epochs: ep})
	res := sw.Sweep(proc(200))
	if res.Reclaimed != parked {
		t.Fatalf("sweep reclaimed %d of %d parked names", res.Reclaimed, parked)
	}
	if c.Cached() != 0 {
		t.Fatalf("%d names still parked after reclaim — purge failed", c.Cached())
	}
	if inner.Held() != 0 {
		t.Fatalf("%d inner claims survive the sweep", inner.Held())
	}
	// The pool must be whole: full capacity acquirable with no duplicates.
	p2 := proc(2)
	seen := make(map[int]bool)
	got := 0
	for {
		m := c.Acquire(p2)
		if m < 0 {
			break
		}
		if seen[m] {
			t.Fatalf("name %d granted twice after reclaim", m)
		}
		seen[m] = true
		got++
	}
	if got+c.Cached() < c.Capacity() {
		t.Fatalf("pool lost names: %d granted + %d parked < capacity %d", got, c.Cached(), c.Capacity())
	}
}

// TestHeartbeatCoversParkedNames pins the "cached block is one lease"
// claim: HeartbeatHolder renews parked names along with granted ones.
func TestHeartbeatCoversParkedNames(t *testing.T) {
	ep := shm.NewCounterEpochs(1)
	holder := uint64(77)
	inner := longlived.NewLevel(64, longlived.LevelConfig{
		MaxPasses: 8, WordScan: true,
		Lease: &longlived.LeaseOpts{Epochs: ep, Holder: func(*shm.Proc) uint64 { return holder }},
	})
	c := New(inner, Config{Block: 16, Slots: 1})
	p := proc(1)
	n := c.Acquire(p)
	c.Release(p, n)
	parked := c.Cached()
	ep.Advance(10)
	renewed := longlived.HeartbeatHolder(c, p, holder, ep.Now())
	if renewed != parked {
		t.Fatalf("heartbeat renewed %d of %d parked leases", renewed, parked)
	}
	// Renewed leases survive the sweep.
	sw := recovery.NewSweeper(c, recovery.Config{TTL: 5, Epochs: ep})
	if res := sw.Sweep(proc(200)); res.Reclaimed != 0 {
		t.Fatalf("sweep reclaimed %d renewed leases", res.Reclaimed)
	}
	if c.Cached() != parked {
		t.Fatalf("parked count moved: %d -> %d", parked, c.Cached())
	}
}

// TestGoldenGrantSequence pins the deterministic grant order of a
// single-proc churn through the cache (fixed seed, fixed config). The
// fingerprint changing means the cache's serving order changed — which
// would invalidate the recorded BENCH_5 latency distribution shape.
func TestGoldenGrantSequence(t *testing.T) {
	c, _ := newSharded(128, 2, Config{Block: 16, Slots: 2})
	p := proc(3)
	h := fnv.New64a()
	held := make([]int, 0, 32)
	for cyc := 0; cyc < 200; cyc++ {
		for i := 0; i < 1+cyc%7; i++ {
			n := c.Acquire(p)
			if n < 0 {
				t.Fatalf("cycle %d: acquire failed", cyc)
			}
			fmt.Fprintf(h, "a%d.", n)
			held = append(held, n)
		}
		for i := 0; i < 1+cyc%7 && len(held) > 0; i++ {
			n := held[0]
			held = held[1:]
			fmt.Fprintf(h, "r%d.", n)
			c.Release(p, n)
		}
	}
	const want = "c225ceb22baaadb5"
	if got := fmt.Sprintf("%016x", h.Sum64()); got != want {
		t.Fatalf("grant-sequence fingerprint %s, want %s", got, want)
	}
}
