package leasecache

import (
	"sync"
	"sync/atomic"
	"testing"

	"shmrename/internal/longlived"
)

// TestCachedBitOps pins the setBit/clearBit contract that mark/unmark
// build their conservation panics on — set/clear the bit, return the
// word's previous value — on whichever implementation the toolchain
// selected (the Or/And intrinsics on go1.25+, the load+CAS loop before;
// Go 1.24.0's amd64 lowering of the value-returning intrinsics clobbered
// a live register, which is why the two files exist).
func TestCachedBitOps(t *testing.T) {
	var w atomic.Uint64
	const a, b = uint64(1) << 3, uint64(1) << 41
	if old := setBit(&w, a); old != 0 {
		t.Fatalf("setBit on empty word returned old=%#x, want 0", old)
	}
	if old := setBit(&w, b); old != a {
		t.Fatalf("setBit returned old=%#x, want %#x", old, a)
	}
	// Idempotent set: the bit stays, the old value exposes it was set.
	if old := setBit(&w, a); old&a == 0 {
		t.Fatalf("re-setBit returned old=%#x without the bit", old)
	}
	if w.Load() != a|b {
		t.Fatalf("word %#x after sets, want %#x", w.Load(), a|b)
	}
	if old := clearBit(&w, a); old&a == 0 {
		t.Fatalf("clearBit returned old=%#x without the bit", old)
	}
	if old := clearBit(&w, a); old&a != 0 {
		t.Fatalf("re-clearBit returned old=%#x with the bit still reported", old)
	}
	if w.Load() != b {
		t.Fatalf("word %#x after clears, want %#x", w.Load(), b)
	}
	// Concurrent flips on disjoint bits of one word never lose an update —
	// the exact pattern mark/unmark runs on the shared cached array.
	var wg sync.WaitGroup
	var word atomic.Uint64
	for bit := 0; bit < 64; bit++ {
		wg.Add(1)
		go func(mask uint64) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if setBit(&word, mask)&mask != 0 {
					t.Errorf("bit %#x observed set by its only setter", mask)
					return
				}
				if clearBit(&word, mask)&mask == 0 {
					t.Errorf("bit %#x observed clear by its only clearer", mask)
					return
				}
			}
		}(uint64(1) << bit)
	}
	wg.Wait()
	if word.Load() != 0 {
		t.Fatalf("word %#x after balanced flips, want 0", word.Load())
	}
}

// TestMarkUnmarkThroughCache drives mark/unmark through the public
// surface: a full park/grant churn over several words of the cached
// array, ending with every bit clear — the regression net for the
// toolchain-dependent bit-flip implementations behind them.
func TestMarkUnmarkThroughCache(t *testing.T) {
	inner := longlived.NewLevel(256, longlived.LevelConfig{
		MaxPasses: 8, WordScan: true, Label: "t-bits",
	})
	c := New(inner, Config{Block: 32, Slots: 2, MaxCached: 64})
	p := proc(0)
	for round := 0; round < 50; round++ {
		var names []int
		for i := 0; i < 96; i++ {
			n := c.Acquire(p)
			if n < 0 {
				t.Fatalf("round %d: acquire %d failed", round, i)
			}
			names = append(names, n)
		}
		for _, n := range names {
			c.Release(p, n)
		}
	}
	c.Flush(p)
	if got := c.Cached(); got != 0 {
		t.Fatalf("%d names still marked cached after flush", got)
	}
	for i := range c.cached {
		if v := c.cached[i].Load(); v != 0 {
			t.Fatalf("cached word %d = %#x after flush, want 0", i, v)
		}
	}
	if h := inner.Held(); h != 0 {
		t.Fatalf("inner arena holds %d names after flush", h)
	}
}
