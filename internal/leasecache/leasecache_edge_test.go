package leasecache

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestPressureWindowBoundary pins the exact extent of the pressure window:
// a starved acquire makes the next Block releases — no more, no fewer —
// bypass the cache, and a repeat starvation resets the window to Block
// instead of stacking on top of the remainder.
func TestPressureWindowBoundary(t *testing.T) {
	c, inner := newSharded(4, 1, Config{Block: 2, Slots: 1, MaxCached: 8})
	p := proc(0)
	var names []int
	for i := 0; i < 4; i++ {
		n := c.Acquire(p)
		if n < 0 {
			t.Fatalf("acquire %d failed with a free arena", i)
		}
		names = append(names, n)
	}
	if c.Cached() != 0 {
		t.Fatalf("%d names parked after draining every lease", c.Cached())
	}
	if n := c.Acquire(p); n >= 0 {
		t.Fatalf("acquire got %d from a fully granted arena", n)
	}
	if got := c.pressure.Load(); got != 2 {
		t.Fatalf("starved acquire opened a window of %d, want Block=2", got)
	}

	// Releases 1..Block bypass the cache and feed the inner pool directly.
	for i := 0; i < 2; i++ {
		c.Release(p, names[i])
		if c.Cached() != 0 {
			t.Fatalf("release %d under pressure parked its name", i)
		}
		if inner.IsHeld(names[i]) {
			t.Fatalf("release %d under pressure left the inner claim set", i)
		}
	}
	// Release Block+1 finds the window closed and parks normally.
	c.Release(p, names[2])
	if c.Cached() != 1 {
		t.Fatalf("first post-window release cached %d names, want 1", c.Cached())
	}
	if !inner.IsHeld(names[2]) {
		t.Fatal("parked name lost its inner claim")
	}

	// Starve again from the current state: the window must reset to Block
	// (pressure is a Store, not an Add), not accumulate across starvations.
	for {
		if n := c.Acquire(p); n < 0 {
			break
		}
	}
	if got := c.pressure.Load(); got != 2 {
		t.Fatalf("repeat starvation left a window of %d, want Block=2", got)
	}
}

// TestMaxCachedEvictionOrder pins which names a full slot evicts: the spill
// takes one whole block of the oldest parked names (stack bottom — the ones
// most likely to share a leased word, so the inner ReleaseN coalesces
// them), never the newly released name, which parks in the freed space.
func TestMaxCachedEvictionOrder(t *testing.T) {
	c, inner := newSharded(64, 1, Config{Block: 4, Slots: 1, MaxCached: 4})
	p := proc(0)
	var names []int
	for i := 0; i < 8; i++ {
		n := c.Acquire(p)
		if n < 0 {
			t.Fatalf("acquire %d failed", i)
		}
		names = append(names, n)
	}
	if c.Cached() != 0 {
		t.Fatalf("%d names parked before the release phase", c.Cached())
	}
	for i := 0; i < 4; i++ {
		c.Release(p, names[i])
	}
	if c.Cached() != 4 {
		t.Fatalf("slot parked %d of MaxCached=4", c.Cached())
	}
	// The 5th release evicts exactly the oldest block and parks itself.
	c.Release(p, names[4])
	if c.Cached() != 1 {
		t.Fatalf("%d names parked after the spill, want 1", c.Cached())
	}
	if !c.parked(names[4]) {
		t.Fatal("spill evicted the newly released name instead of the oldest block")
	}
	for i := 0; i < 4; i++ {
		if c.parked(names[i]) {
			t.Fatalf("oldest name %d survived the spill", names[i])
		}
		if inner.IsHeld(names[i]) {
			t.Fatalf("spilled name %d never reached the inner pool", names[i])
		}
	}
	if _, spills, _ := c.Stats(); spills != 1 {
		t.Fatalf("spill count %d, want exactly 1", spills)
	}
}

// TestSiblingStealRaceStorm races the cross-slot steal path against
// owner-side pops, releases, spills, and pressure bypasses: four native
// goroutines hashing to two slots churn a deliberately tight arena
// (capacity = one block, so slots hoard everything and every other acquire
// must steal or starve). Grant uniqueness is checked with an ownership CAS
// per name; the race detector watches the lock handoffs.
func TestSiblingStealRaceStorm(t *testing.T) {
	const capacity, workers, iters = 8, 4, 2000
	c, inner := newSharded(capacity, 1, Config{Block: 8, Slots: 2, MaxCached: 8})
	own := make([]atomic.Int32, c.NameBound())
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := proc(w)
			for i := 0; i < iters; i++ {
				n := c.Acquire(p)
				if n < 0 {
					continue // starved behind a sibling's hoard
				}
				if !own[n].CompareAndSwap(0, 1) {
					t.Errorf("worker %d: name %d granted while held", w, n)
					return
				}
				c.Touch(p, n)
				if !own[n].CompareAndSwap(1, 0) {
					t.Errorf("worker %d: name %d ownership corrupted", w, n)
					return
				}
				c.Release(p, n)
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Conservation after the storm: flushing the slots must return every
	// claim to the inner pool.
	c.Flush(proc(workers))
	if h, parked := inner.Held(), c.Cached(); h != 0 || parked != 0 {
		t.Fatalf("after flush: inner holds %d, cache parks %d, want 0/0", h, parked)
	}
}
