// Package leasecache puts per-worker word-block lease caches in front of a
// long-lived renaming arena: workers lease blocks of up to 64 names in one
// word-granular batch claim (shm.ClaimMask via the backend's AcquireN) and
// then serve Acquire and absorb Release thread-locally, with zero
// step-counted shared-memory operations on the fast path.
//
// # Why a cache layer
//
// The LevelArray paper (Alistarh et al., arXiv:1405.5461) argues long-lived
// renaming is practical because the common-case acquire can be made nearly
// free. The word claim engine (internal/shm, PR 4) gets one shared-memory
// access per 64 names; this layer takes the argument to its limit: after a
// block lease, the next Block-1 acquires touch no shared memory at all —
// they pop a local stack guarded by an uncontended mutex. Steady-state
// churn is even better: a release pushes the name back onto the releasing
// worker's stack, so acquire/release cycles circulate names locally and
// refills stop entirely.
//
// # Conservation
//
// Every name is always in exactly one of three states — free in the inner
// arena, cached (claimed in the inner arena, parked on exactly one slot's
// stack, cached-bit set), or granted to a client (claimed, no cached bit).
// State transitions happen under the owning slot's mutex, and the
// cached-bit array is the cross-check: caching a name whose bit is already
// set, or uncaching one whose bit is clear, panics rather than silently
// losing or duplicating a name.
//
// # Tightness and pressure
//
// Caching trades name tightness for latency, the same trade framed by
// "Space Bounds for Adaptive Renaming" (arXiv:1603.04067) for the sharded
// frontend: cached names are claimed but serve nobody, so the arena must
// be provisioned with slack (capacity ≳ peak holders + Slots×MaxCached for
// pressure-free operation). When provisioning is tight the layer degrades
// instead of starving: an acquirer that finds the inner arena full first
// steals from other workers' stacks, and then opens a pressure window that
// makes the next Block releases bypass the cache and return names straight
// to the inner pool. Release-side pressure is bounded the same way: a
// stack at MaxCached spills a whole block back through one coalesced
// ReleaseN.
//
// # Crash recovery
//
// The layer composes with the lease/recovery stamps of PR 5/6: the inner
// arena stamps every claim with the handle's holder identity, so a cached
// block is one lease — HeartbeatHolder renews parked names along with
// granted ones, and a crashed process loses its cached blocks to the
// recovery sweep wholesale. LeaseDomains wraps each domain's Reclaim to
// purge the name from the cache before the bit is freed, so a sweep that
// (correctly or due to a lapsed TTL) reclaims a cached name can never
// leave it on a stack to be granted twice.
package leasecache

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"shmrename/internal/longlived"
	"shmrename/internal/registry"
	"shmrename/internal/shm"
)

// Config parameterizes a cache layer.
type Config struct {
	// Block is the number of names leased per refill, in [1, 64] — one
	// bitmap word, so a word-scan backend serves the whole block in one
	// claim step. Default 64.
	Block int
	// Slots is the number of worker cache slots; procs hash into them by
	// ID. Default GOMAXPROCS.
	Slots int
	// MaxCached caps each slot's stack; a release into a full slot spills
	// one block back to the inner arena. Default 2×Block.
	MaxCached int
}

func (c *Config) fill() {
	if c.Block == 0 {
		c.Block = 64
	}
	if c.Slots <= 0 {
		c.Slots = runtime.GOMAXPROCS(0)
	}
	if c.MaxCached <= 0 {
		c.MaxCached = 2 * c.Block
	}
}

// slot is one worker cache: a LIFO name stack under its own mutex, padded
// so neighboring slots never share a cache line.
type slot struct {
	mu    sync.Mutex
	names []int
	_     [96]byte
}

// Cache is the word-block lease cache layer. It implements
// longlived.Arena (and longlived.Recoverable when the inner arena does) by
// delegation, so it drops into every surface the inner backends serve.
// All methods are safe for concurrent use by distinct procs.
type Cache struct {
	inner longlived.Arena
	cfg   Config
	slots []slot
	// cached holds one bit per inner name: set while the name is parked on
	// a slot stack. It is the conservation cross-check and what keeps
	// IsHeld honest — a parked name is claimed below but not held by any
	// client.
	cached  []atomic.Uint64
	nCached atomic.Int64
	// pressure is the count of upcoming releases that must bypass the
	// cache and feed the inner pool directly; starved acquirers open it.
	pressure atomic.Int64
	// drain is the inner arena's draining probe when it has one (elastic
	// backends). A parked claim would pin a draining level forever, so the
	// cache refuses to park draining names and sheds any it finds on its
	// stacks; nil for fixed backends.
	drain registry.Drainer
	// Slow-path event counters (never touched on the fast path).
	refills atomic.Int64
	spills  atomic.Int64
	steals  atomic.Int64
	// failed latches when a conservation violation was detected with a
	// corruption handler installed: every subsequent operation bypasses the
	// cache and goes straight to the inner arena (the frozen stacks keep
	// their claims — leaking names is the fail-safe direction; granting a
	// name in unknown state could duplicate it).
	failed atomic.Bool
	// onCorrupt, when set, receives the violation description instead of a
	// panic (except under the race detector; see strictConservation).
	onCorrupt atomic.Pointer[func(string)]
}

var _ longlived.Arena = (*Cache)(nil)
var _ longlived.Recoverable = (*Cache)(nil)

// New wraps inner with per-worker word-block lease caches.
func New(inner longlived.Arena, cfg Config) *Cache {
	cfg.fill()
	if cfg.Block < 1 || cfg.Block > 64 {
		panic(fmt.Sprintf("leasecache: Config.Block must lie in [1, 64], got %d", cfg.Block))
	}
	c := &Cache{
		inner:  inner,
		cfg:    cfg,
		slots:  make([]slot, cfg.Slots),
		cached: make([]atomic.Uint64, (inner.NameBound()+63)/64),
	}
	c.drain, _ = inner.(registry.Drainer)
	return c
}

// draining reports whether the inner arena is draining name's level (never
// true for fixed backends).
func (c *Cache) draining(name int) bool {
	return c.drain != nil && c.drain.Draining(name)
}

// SetOnCorruption installs a handler receiving conservation-violation
// descriptions. With a handler installed, a violation fails the cache into
// pass-through mode (Failed reports true, every later operation bypasses
// the stacks) instead of panicking — except under the race detector, where
// violations always panic at the point of detection (strictConservation).
// The handler is invoked at most once, from whichever operation first
// detects damage. Safe to call at any time; nil restores panicking.
func (c *Cache) SetOnCorruption(fn func(msg string)) {
	if fn == nil {
		c.onCorrupt.Store(nil)
		return
	}
	c.onCorrupt.Store(&fn)
}

// Failed reports whether a conservation violation latched the cache into
// pass-through mode.
func (c *Cache) Failed() bool { return c.failed.Load() }

// fail handles a detected conservation violation: panic without a handler
// or under the race detector, otherwise latch pass-through mode and notify
// the handler (once).
func (c *Cache) fail(msg string) {
	h := c.onCorrupt.Load()
	if strictConservation || h == nil {
		panic(msg)
	}
	if !c.failed.Swap(true) {
		(*h)(msg)
	}
}

// mark flags name as parked, reporting success. Double-parking a name
// would eventually grant it twice, so a set bit is a conservation
// violation: it panics, or — with a corruption handler installed — fails
// the cache and returns false (the caller routes the name around the
// stacks). The bit flip goes through setBit — the Or intrinsic on
// toolchains where it compiles correctly, a load+CAS loop elsewhere (see
// bits_fast.go).
func (c *Cache) mark(name int) bool {
	w, bit := &c.cached[name>>6], uint64(1)<<(uint(name)&63)
	if setBit(w, bit)&bit != 0 {
		c.fail(fmt.Sprintf("leasecache: name %d cached twice", name))
		return false
	}
	c.nCached.Add(1)
	return true
}

// unmark clears name's parked bit on its way out of a slot stack,
// reporting success. A clear bit means the stack held a name the
// cached-bit array never accounted for — with a handler installed the
// caller must drop the name (neither grant nor release it: its true state
// is unknown, and leaking is the fail-safe direction).
func (c *Cache) unmark(name int) bool {
	w, bit := &c.cached[name>>6], uint64(1)<<(uint(name)&63)
	if clearBit(w, bit)&bit == 0 {
		c.fail(fmt.Sprintf("leasecache: name %d uncached twice", name))
		return false
	}
	c.nCached.Add(-1)
	return true
}

// parked reports name's cached bit (no step cost).
func (c *Cache) parked(name int) bool {
	return c.cached[name>>6].Load()&(1<<(uint(name)&63)) != 0
}

// slotFor hashes the proc to its worker slot.
func (c *Cache) slotFor(p *shm.Proc) *slot {
	return &c.slots[p.ID()%len(c.slots)]
}

// Acquire implements longlived.Arena. Fast path: pop the worker slot's
// stack — no step-counted shared-memory operation, no inner-arena work.
// Slow paths, in order: lease a fresh block from the inner arena (one
// word-granular batch claim), steal from another worker's stack, and
// finally a direct inner acquire; a starved acquire opens the pressure
// window before reporting the arena full.
func (c *Cache) Acquire(p *shm.Proc) int {
	if c.failed.Load() {
		return c.inner.Acquire(p)
	}
	s := c.slotFor(p)
	if s.mu.TryLock() {
		for n := len(s.names); n > 0; n = len(s.names) {
			name := s.names[n-1]
			s.names = s.names[:n-1]
			if !c.unmark(name) {
				continue // unaccounted name: drop it, never grant
			}
			if c.draining(name) {
				// A parked claim must not pin a draining level: shed it
				// to the inner arena and pop the next name instead.
				c.inner.Release(p, name)
				continue
			}
			s.mu.Unlock()
			return name
		}
		name := c.refill(p, s)
		s.mu.Unlock()
		if name >= 0 {
			return name
		}
	}
	if name := c.steal(p); name >= 0 {
		return name
	}
	if name := c.inner.Acquire(p); name >= 0 {
		return name
	}
	// Starved while caches may be hoarding: last-chance steal, then make
	// the next Block releases feed the pool directly.
	if name := c.steal(p); name >= 0 {
		return name
	}
	c.pressure.Store(int64(c.cfg.Block))
	return -1
}

// refill leases one block from the inner arena into the (locked, empty)
// slot, returning one name of it or -1 when the inner arena served none.
func (c *Cache) refill(p *shm.Proc, s *slot) int {
	got := c.inner.AcquireN(p, c.cfg.Block, s.names[:0])
	if len(got) == 0 {
		s.names = got
		return -1
	}
	name := got[len(got)-1]
	s.names = got[:len(got)-1]
	for idx, n := range s.names {
		if !c.mark(n) {
			// Cache failed mid-refill: the unparked tail goes straight
			// back to the inner pool, the marked prefix stays parked.
			c.inner.ReleaseN(p, s.names[idx:])
			s.names = s.names[:idx]
			break
		}
	}
	c.refills.Add(1)
	return name
}

// steal pops one parked name from any slot, starting at the proc's own.
func (c *Cache) steal(p *shm.Proc) int {
	home := p.ID() % len(c.slots)
	for off := 0; off < len(c.slots); off++ {
		s := &c.slots[(home+off)%len(c.slots)]
		if !s.mu.TryLock() {
			continue
		}
		for n := len(s.names); n > 0; n = len(s.names) {
			name := s.names[n-1]
			s.names = s.names[:n-1]
			if !c.unmark(name) {
				continue // unaccounted name: drop it, never grant
			}
			if c.draining(name) {
				c.inner.Release(p, name)
				continue
			}
			s.mu.Unlock()
			c.steals.Add(1)
			return name
		}
		s.mu.Unlock()
	}
	return -1
}

// relieve consumes one unit of the pressure window.
func (c *Cache) relieve() bool {
	for {
		v := c.pressure.Load()
		if v <= 0 {
			return false
		}
		if c.pressure.CompareAndSwap(v, v-1) {
			return true
		}
	}
}

// Release implements longlived.Arena. Fast path: push the name onto the
// worker slot's stack — the claim bit stays set in the inner arena, so no
// step-counted shared-memory operation happens. The name bypasses the
// cache under an open pressure window, on slot-mutex contention, or past
// MaxCached (which first spills one whole block back through a coalesced
// ReleaseN).
func (c *Cache) Release(p *shm.Proc, name int) {
	if c.failed.Load() {
		c.inner.Release(p, name)
		return
	}
	if c.draining(name) {
		// Spill-on-drain: parking the claim would pin the draining level
		// forever, so the name goes straight back to the inner pool (which
		// is also what lets the drain complete).
		c.inner.Release(p, name)
		return
	}
	if c.relieve() {
		c.inner.Release(p, name)
		return
	}
	s := c.slotFor(p)
	if !s.mu.TryLock() {
		c.inner.Release(p, name)
		return
	}
	var spill []int
	if len(s.names) >= c.cfg.MaxCached {
		spill = c.takeBlock(s)
	}
	if !c.mark(name) {
		s.mu.Unlock()
		c.inner.Release(p, name) // cache failed: route around the stacks
		if spill != nil {
			c.inner.ReleaseN(p, spill)
		}
		return
	}
	s.names = append(s.names, name)
	s.mu.Unlock()
	if spill != nil {
		c.inner.ReleaseN(p, spill)
		c.spills.Add(1)
	}
}

// takeBlock pops up to one block of the oldest parked names from the
// (locked) slot. Oldest first: they likely came from one leased word, so
// the inner ReleaseN coalesces them back into few clearing steps.
func (c *Cache) takeBlock(s *slot) []int {
	k := c.cfg.Block
	if k > len(s.names) {
		k = len(s.names)
	}
	out := make([]int, 0, k)
	for _, n := range s.names[:k] {
		if c.unmark(n) {
			out = append(out, n) // unaccounted names are dropped, not freed
		}
	}
	s.names = append(s.names[:0], s.names[k:]...)
	return out
}

// AcquireN implements longlived.Arena: the worker slot serves as much of
// the batch as it holds; the remainder goes to the inner batch path.
func (c *Cache) AcquireN(p *shm.Proc, k int, out []int) []int {
	if c.failed.Load() {
		return c.inner.AcquireN(p, k, out)
	}
	s := c.slotFor(p)
	if s.mu.TryLock() {
		for k > 0 && len(s.names) > 0 {
			n := len(s.names)
			name := s.names[n-1]
			s.names = s.names[:n-1]
			if !c.unmark(name) {
				continue // unaccounted name: drop it, never grant
			}
			if c.draining(name) {
				c.inner.Release(p, name)
				continue
			}
			out = append(out, name)
			k--
		}
		s.mu.Unlock()
	}
	if k > 0 {
		out = c.inner.AcquireN(p, k, out)
	}
	return out
}

// ReleaseN implements longlived.Arena: under pressure the whole batch
// feeds the inner pool (counting as one relief); otherwise the worker slot
// absorbs names up to MaxCached and the rest flows through the inner
// batch release.
func (c *Cache) ReleaseN(p *shm.Proc, names []int) {
	if len(names) == 0 {
		return
	}
	direct := names
	if !c.failed.Load() && !c.relieve() {
		s := c.slotFor(p)
		if s.mu.TryLock() {
			i := 0
			for ; i < len(names) && len(s.names) < c.cfg.MaxCached; i++ {
				if c.draining(names[i]) {
					// Spill-on-drain; the tail past this name flows through
					// the inner batch release with it.
					break
				}
				if !c.mark(names[i]) {
					break // cache failed: the tail goes straight to the pool
				}
				s.names = append(s.names, names[i])
			}
			s.mu.Unlock()
			direct = names[i:]
		}
	}
	if len(direct) > 0 {
		c.inner.ReleaseN(p, direct)
	}
}

// Flush returns every parked name to the inner arena (coalesced per
// slot) and empties the caches. It is the orderly shutdown path — the
// public Arena.Close flushes so names don't dangle until a lease sweep.
func (c *Cache) Flush(p *shm.Proc) int {
	total := 0
	var buf []int
	for i := range c.slots {
		s := &c.slots[i]
		s.mu.Lock()
		buf = buf[:0]
		for _, n := range s.names {
			if c.unmark(n) {
				buf = append(buf, n) // unaccounted names are dropped, not freed
			}
		}
		s.names = s.names[:0]
		s.mu.Unlock()
		c.inner.ReleaseN(p, buf)
		total += len(buf)
	}
	return total
}

// purge removes a parked name from whichever slot holds it, reporting
// whether it was found. The recovery sweep calls it through the wrapped
// Reclaim before freeing the name's claim bit.
func (c *Cache) purge(name int) bool {
	if !c.parked(name) {
		return false
	}
	for i := range c.slots {
		s := &c.slots[i]
		s.mu.Lock()
		for j, n := range s.names {
			if n == name {
				s.names = append(s.names[:j], s.names[j+1:]...)
				c.unmark(name)
				s.mu.Unlock()
				return true
			}
		}
		s.mu.Unlock()
	}
	return false
}

// Parked reports whether name is currently parked on a slot stack (the
// cached bit; no step cost). The integrity scrubber cross-checks it
// against the inner claim bit: a parked name must be claimed underneath.
func (c *Cache) Parked(name int) bool { return c.parked(name) }

// PurgeParked evicts a parked name from the cache, reporting whether it
// was found. The integrity scrubber calls it for phantom entries — parked
// names whose inner claim bit is clear — so the cache can never grant a
// name it holds no claim on.
func (c *Cache) PurgeParked(name int) bool { return c.purge(name) }

// LeaseDomains implements longlived.Recoverable: the inner arena's
// domains with Reclaim wrapped to purge the name from the cache first, so
// a reclaimed name can never linger on a stack and be granted twice. A
// non-recoverable (or lease-off) inner arena yields no domains.
func (c *Cache) LeaseDomains() []longlived.LeaseDomain {
	rec, ok := c.inner.(longlived.Recoverable)
	if !ok {
		return nil
	}
	domains := rec.LeaseDomains()
	out := make([]longlived.LeaseDomain, len(domains))
	for i, d := range domains {
		base, inner := d.Base, d.Reclaim
		d.Reclaim = func(p *shm.Proc, j int) {
			c.purge(base + j)
			inner(p, j)
		}
		out[i] = d
	}
	return out
}

// Label implements longlived.Arena.
func (c *Cache) Label() string {
	return fmt.Sprintf("%s+leasecache(block=%d,slots=%d)",
		c.inner.Label(), c.cfg.Block, len(c.slots))
}

// Capacity implements longlived.Arena. Note the provisioning caveat in
// the package comment: parked names count against the inner capacity.
func (c *Cache) Capacity() int { return c.inner.Capacity() }

// NameBound implements longlived.Arena.
func (c *Cache) NameBound() int { return c.inner.NameBound() }

// Touch implements longlived.Arena.
func (c *Cache) Touch(p *shm.Proc, name int) { c.inner.Touch(p, name) }

// IsHeld implements longlived.Arena: a parked name is claimed in the
// inner arena but held by nobody, so it reports false — which is what
// keeps the public release validation rejecting names the cache owns.
func (c *Cache) IsHeld(name int) bool {
	return c.inner.IsHeld(name) && !c.parked(name)
}

// Held implements longlived.Arena: the inner claim count minus the parked
// names. Both reads are racy snapshots (diagnostics only); the clamp
// absorbs a release landing between them.
func (c *Cache) Held() int {
	h := c.inner.Held() - int(c.nCached.Load())
	if h < 0 {
		h = 0
	}
	return h
}

// Cached returns the number of currently parked names (a snapshot).
func (c *Cache) Cached() int { return int(c.nCached.Load()) }

// Stats returns the slow-path event counters: block refills, block
// spills, and cross-slot steals. The fast path counts nothing.
func (c *Cache) Stats() (refills, spills, steals int64) {
	return c.refills.Load(), c.spills.Load(), c.steals.Load()
}

// CapacityNow implements registry.Elastic by delegation; a fixed inner
// arena reports its (constant) capacity.
func (c *Cache) CapacityNow() int {
	if el, ok := c.inner.(registry.Elastic); ok {
		return el.CapacityNow()
	}
	return c.inner.Capacity()
}

// PeakCapacity implements registry.Elastic by delegation.
func (c *Cache) PeakCapacity() int {
	if el, ok := c.inner.(registry.Elastic); ok {
		return el.PeakCapacity()
	}
	return c.inner.Capacity()
}

// Grow implements registry.Elastic by delegation; fixed inner arenas never
// grow.
func (c *Cache) Grow() bool {
	if el, ok := c.inner.(registry.Elastic); ok {
		return el.Grow()
	}
	return false
}

// Shrink implements registry.Elastic by delegation. The parked names of
// this layer count as occupancy below, so a drain completes only after the
// drain-shedding paths (Acquire pops, Release spills) clear the draining
// level's names from the stacks.
func (c *Cache) Shrink() bool {
	if el, ok := c.inner.(registry.Elastic); ok {
		return el.Shrink()
	}
	return false
}

// ResidentBytes implements registry.Footprint by delegation (the cached-bit
// array scales with NameBound, not residency, and is excluded like every
// per-handle structure).
func (c *Cache) ResidentBytes() int64 {
	if fp, ok := c.inner.(registry.Footprint); ok {
		return fp.ResidentBytes()
	}
	return 0
}

// Draining implements registry.Drainer by delegation.
func (c *Cache) Draining(name int) bool { return c.draining(name) }

// Probeables implements longlived.Arena.
func (c *Cache) Probeables() map[string]shm.Probeable { return c.inner.Probeables() }

// Clock implements longlived.Arena.
func (c *Cache) Clock() func() { return c.inner.Clock() }
