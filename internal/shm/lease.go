package shm

// Lease/epoch stamps: the crash-recovery layer of the name space.
//
// The paper's model is crash-prone — processes may stop taking steps at any
// point — but a TAS bit alone cannot tell a live holder from a crashed one:
// a process that dies between claiming and releasing leaks its name forever.
// Stamps add the missing information: alongside the word-packed claim bitmap
// every name has one atomic.Uint64 stamp packing the holder's identity and
// the epoch of its lease. A holder publishes its stamp right after winning
// the bit, refreshes the epoch by heartbeating while it holds the name, and
// clears the stamp just before freeing the bit. A recovery sweep (package
// recovery) can then reclaim names whose stamp's lease expired and whose
// holder is not observably alive.
//
// # Stamp states
//
// A stamp is one of:
//
//   - 0: the name is unheld (or a claim is in flight, see orphans below);
//   - pack(holder, epoch) with a client holder in [1, MaxHolder]: a live
//     lease, renewed by Refresh;
//   - pack(HolderOrphan, epoch): a recovery sweep observed the claim bit set
//     with a zero stamp — a claim in flight, or a holder that crashed
//     between winning the bit and publishing — and adopted the name with a
//     provisional lease so the claimant's stall becomes detectable;
//   - pack(HolderSuspect, epoch): a reaper is mid-reclaim; nobody may adopt
//     or publish over it (a sweep that finds it stale resumes the reclaim —
//     the mark survives even a crashed reaper);
//   - pack(HolderTomb, epoch): the reclaim completed; the stamp slot is
//     claimable again, exactly like 0.
//
// # Why the bit and the stamp cannot race into a double grant
//
// The bit and the stamp are separate words, so they cannot be updated
// atomically; the protocol makes the *stamp* the ownership authority and the
// bitmap the allocation fast path. Granting a name requires (a) winning the
// claim bit and (b) CASing the stamp from a claimable state ({0, orphan,
// tombstone}) to your own. All stamp transitions are CASes on one word, so
// grants, heartbeats, and reclaims serialize per name: a reclaim CASes the
// exact stamp value it observed stale, which fails if the holder refreshed
// concurrently — a live holder racing the reaper never loses its name. A
// claimant whose publish CAS finds a suspect or a foreign holder walks away
// without touching the bit (its claim was superseded by a reclaim) and
// retries elsewhere; see the Stamped claim variants in claim.go.
//
// Step accounting: Publish, Refresh, and ClearOwned are process operations —
// one Proc.Step each, on the stamps' own operation space — so the
// stamped-claim cost delta is visible in the steps/acquire metric (PERF.md).
// Reaper-side transitions (Adopt, BeginReclaim, FinishReclaim, Drop) and
// Load are out-of-band maintenance, like the adversary's Probe: no steps.

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Stamp field widths: holder in the high 24 bits, epoch in the low 40.
// Holder 0 is not a valid client, so any held stamp is nonzero; epochs are
// milliseconds-scale counters, 2^40 of which outlast any deployment.
const (
	stampEpochBits = 40
	stampEpochMask = 1<<stampEpochBits - 1
	stampHolderMax = 1<<24 - 1
)

// Reserved holder identities (the top of the holder range).
const (
	// HolderOrphan marks a provisional lease a sweep adopted for a claim
	// bit observed with a zero stamp (claimant in flight or crashed
	// pre-publish). Claimable only by the bit's winner.
	HolderOrphan = stampHolderMax
	// HolderSuspect marks a reclaim in progress. Never claimable; a sweep
	// finding it stale resumes the reclaim.
	HolderSuspect = stampHolderMax - 1
	// HolderTomb marks a completed reclaim. Claimable, like a zero stamp.
	HolderTomb = stampHolderMax - 2
	// HolderQuarantine marks a name the integrity scrubber (package
	// integrity) withdrew from circulation after detecting irreparable
	// state damage in its bitmap word. Never claimable, never stale: a
	// quarantined name keeps its claim bit set and its quarantine stamp
	// until the namespace is rebuilt. Recovery sweeps skip it explicitly.
	HolderQuarantine = stampHolderMax - 3
	// MaxHolder is the largest valid client holder identity. Client
	// holders lie in [1, MaxHolder]; 0 is reserved so that a zero stamp
	// always means "unheld".
	MaxHolder = stampHolderMax - 4
)

// PackStamp packs a holder identity and a lease epoch into one stamp word.
// Holders above the field width or epochs above 2^40-1 are truncated by
// masking — callers validate client holders against MaxHolder up front.
// PackStamp(h, e) == 0 iff h == 0 && e == 0, and distinct in-range
// (holder, epoch) pairs never alias (see FuzzStampPack).
func PackStamp(holder, epoch uint64) uint64 {
	return (holder&stampHolderMax)<<stampEpochBits | epoch&stampEpochMask
}

// UnpackStamp splits a stamp word into its holder identity and lease epoch.
func UnpackStamp(s uint64) (holder, epoch uint64) {
	return s >> stampEpochBits, s & stampEpochMask
}

// StampClaimable reports whether a publish may claim the stamp slot: it is
// zero, an orphan adoption (only the claim bit's winner can be publishing),
// or a completed-reclaim tombstone.
func StampClaimable(s uint64) bool {
	if s == 0 {
		return true
	}
	h, _ := UnpackStamp(s)
	return h == HolderOrphan || h == HolderTomb
}

// EpochSource supplies lease epochs: a monotonically non-decreasing clock
// shared by holders (heartbeats) and reapers (staleness checks).
type EpochSource interface {
	// Now returns the current epoch.
	Now() uint64
}

// CounterEpochs is a deterministic epoch source: an atomic counter advanced
// explicitly. Tests and harness experiments use it so lease expiry is a
// function of the schedule, not the wall clock.
type CounterEpochs struct {
	c atomic.Uint64
}

// NewCounterEpochs returns a counter epoch source starting at start.
func NewCounterEpochs(start uint64) *CounterEpochs {
	e := new(CounterEpochs)
	e.c.Store(start)
	return e
}

// Now implements EpochSource.
func (e *CounterEpochs) Now() uint64 { return e.c.Load() }

// Advance moves the epoch forward by d and returns the new value.
func (e *CounterEpochs) Advance(d uint64) uint64 { return e.c.Add(d) }

// wallEpochBase anchors wall-clock epochs at 2024-01-01T00:00:00Z so the
// 40-bit millisecond epoch field lasts decades instead of overflowing on
// the unix epoch.
const wallEpochBase = 1704067200000

// WallEpochs is the wall-clock epoch source: one epoch per millisecond
// since a fixed 2024 base. It is the cross-process source — independent OS
// processes sharing an mmap-backed arena agree on it without any shared
// counter word.
type WallEpochs struct{}

// Now implements EpochSource.
func (WallEpochs) Now() uint64 {
	ms := time.Now().UnixMilli() - wallEpochBase
	if ms < 0 {
		return 0
	}
	return uint64(ms) & stampEpochMask
}

// StampStale reports whether a lease epoch has expired: more than ttl
// epochs passed since the stamp's epoch. A zero-ttl lease is stale as soon
// as the clock moves.
func StampStale(now, epoch, ttl uint64) bool {
	return now > epoch && now-epoch > ttl
}

// CrashPoint identifies a protocol point at which a fault-injection hook
// may kill a holder, mirroring the simulator's crash adversary on the
// native path (harness experiment E18).
type CrashPoint uint8

// Injectable crash points. Pre-claim and while-holding crashes need no
// hook — the worker simply stops — so only the two windows *inside* the
// stamped protocol are instrumented.
const (
	// CrashPrePublish kills a claimant after it won the claim bit but
	// before it published its lease stamp: the orphan-adoption path.
	CrashPrePublish CrashPoint = iota
	// CrashMidRelease kills a releaser after it cleared its lease stamp
	// but before it freed the claim bit: the same bit-set/stamp-zero shape
	// as CrashPrePublish, reached from the other side.
	CrashMidRelease
)

// LeaseCrash is the panic value a crash hook raises to unwind a worker at
// an injected fault point. Like shm.Crash it never escapes: the harness
// bodies that install hooks recover it.
type LeaseCrash struct {
	PID   int
	Name  int
	Point CrashPoint
}

// Stamps is a per-name lease-stamp array: one atomic.Uint64 per name,
// holding the packed (holder, epoch) lease of the name's current owner, or
// one of the recovery states documented above. It lives alongside a
// NameSpace's claim bitmap (NameSpace.AttachStamps) and may be backed by
// externally owned storage (NewStampsBacked) for mmap persistence.
type Stamps struct {
	label string
	id    SpaceID
	size  int
	words []atomic.Uint64
	// hook, when set, is the fault-injection callback consulted at the
	// instrumented crash points; returning true unwinds the worker with a
	// LeaseCrash panic. Test-and-harness-only: nil on every real path.
	hook func(p *Proc, point CrashPoint, name int) bool
}

// NewStamps returns an all-clear stamp array over n names.
func NewStamps(label string, n int) *Stamps {
	return NewStampsBacked(label, n, make([]atomic.Uint64, n))
}

// NewStampsBacked returns a stamp array over n names on externally owned
// storage (e.g. a region of an mmap'd file). The backing slice is used in
// place, state and all: opening an existing file preserves its leases.
func NewStampsBacked(label string, n int, words []atomic.Uint64) *Stamps {
	if n < 0 {
		panic("shm: negative stamp array size")
	}
	if len(words) < n {
		panic(fmt.Sprintf("shm: stamp backing of %d words cannot hold %d names", len(words), n))
	}
	return &Stamps{label: label, id: InternSpace(label), size: n, words: words[:n]}
}

// Label returns the stamp space's label.
func (st *Stamps) Label() string { return st.label }

// Size returns the number of stamped names.
func (st *Stamps) Size() int { return st.size }

// Load reads the stamp of name i without spending a process step
// (diagnostics and recovery sweeps).
func (st *Stamps) Load(i int) uint64 { return st.words[i].Load() }

// Publish installs a holder's lease on name i right after the holder won
// the claim bit: one step, a CAS from whatever claimable state the slot is
// in ({0, orphan, tombstone}) to stamp. It reports false — the claimant
// lost the name to a racing reclaim and must walk away without touching the
// bit — when the slot holds a suspect mark or a foreign holder's lease.
func (st *Stamps) Publish(p *Proc, i int, stamp uint64) bool {
	w := &st.words[i]
	p.Step(Op{Kind: OpTAS, Space: st.id, Index: int32(i)})
	for {
		cur := w.Load()
		if !StampClaimable(cur) {
			return false
		}
		if w.CompareAndSwap(cur, stamp) {
			return true
		}
	}
}

// Refresh renews holder's lease on name i to epoch: one step, a CAS that
// only succeeds while the slot still carries holder's own stamp. A false
// result means the lease was reclaimed (or never existed) — the caller no
// longer holds the name.
func (st *Stamps) Refresh(p *Proc, i int, holder, epoch uint64) bool {
	w := &st.words[i]
	p.Step(Op{Kind: OpTAS, Space: st.id, Index: int32(i)})
	for {
		cur := w.Load()
		if h, _ := UnpackStamp(cur); h != holder {
			return false
		}
		if w.CompareAndSwap(cur, PackStamp(holder, epoch)) {
			return true
		}
	}
}

// ClearOwned retires holder's lease on name i ahead of freeing the claim
// bit: one step, a CAS to zero that only succeeds while the slot still
// carries holder's stamp. A false result means a reclaim raced the release
// — the name is no longer the caller's to free, and the caller must NOT
// clear the claim bit (it may already be re-granted).
func (st *Stamps) ClearOwned(p *Proc, i int, holder uint64) bool {
	w := &st.words[i]
	p.Step(Op{Kind: OpClear, Space: st.id, Index: int32(i)})
	for {
		cur := w.Load()
		if h, _ := UnpackStamp(cur); h != holder {
			return false
		}
		if w.CompareAndSwap(cur, 0) {
			return true
		}
	}
}

// Adopt installs a provisional orphan lease on name i, whose claim bit a
// sweep observed set under a zero stamp. The CAS from zero loses to the
// claimant publishing concurrently — exactly the intent. Reaper-side; no
// process step.
func (st *Stamps) Adopt(i int, epoch uint64) bool {
	return st.words[i].CompareAndSwap(0, PackStamp(HolderOrphan, epoch))
}

// BeginReclaim starts the two-phase reclaim of name i: CAS the exact stale
// stamp the sweep observed to a suspect mark. A false result means the
// stamp moved — the holder refreshed, a claimant adopted, or another reaper
// won — and the reclaim must be abandoned. Reaper-side; no process step.
func (st *Stamps) BeginReclaim(i int, observed, epoch uint64) bool {
	return st.words[i].CompareAndSwap(observed, PackStamp(HolderSuspect, epoch))
}

// FinishReclaim completes the two-phase reclaim: CAS the suspect mark
// installed at epoch to a claimable tombstone. Reaper-side; no process
// step.
func (st *Stamps) FinishReclaim(i int, suspectEpoch, epoch uint64) bool {
	return st.words[i].CompareAndSwap(
		PackStamp(HolderSuspect, suspectEpoch), PackStamp(HolderTomb, epoch))
}

// Drop garbage-collects a residual stamp on a free name (e.g. a stale
// tombstone): CAS the observed value to zero. Reaper-side; no process step.
func (st *Stamps) Drop(i int, observed uint64) bool {
	return st.words[i].CompareAndSwap(observed, 0)
}

// Quarantine withdraws name i from circulation: CAS the exact stamp the
// scrubber observed to a quarantine mark dated epoch. Losing the CAS means
// the stamp moved — a publisher claimed the slot or a reaper got there
// first — and the scrubber must re-observe before acting. A quarantine
// stamp is never claimable (StampClaimable rejects it, so a claimant who
// wins the bit walks away leaving it set) and never reclaimed (the
// recovery sweep skips HolderQuarantine explicitly), which makes the
// quarantine durable: on mmap-backed namespaces it survives process
// generations in the stamp page itself. Scrubber-side; no process step.
func (st *Stamps) Quarantine(i int, observed, epoch uint64) bool {
	return st.words[i].CompareAndSwap(observed, PackStamp(HolderQuarantine, epoch))
}

// Inject stores an arbitrary raw stamp value, bypassing every protocol
// transition. It exists solely for fault injection — the chaos harness and
// the integrity conformance law plant corrupt states with it — and, like
// SetCrashHook, appears on no real path.
func (st *Stamps) Inject(i int, v uint64) {
	st.words[i].Store(v)
}

// CountHolder returns the number of names currently stamped by holder
// (diagnostics; no process step).
func (st *Stamps) CountHolder(holder uint64) int {
	c := 0
	for i := range st.size {
		if h, _ := UnpackStamp(st.words[i].Load()); h == holder {
			c++
		}
	}
	return c
}

// SetCrashHook installs (or, with nil, removes) the fault-injection hook.
// Only safe before workers start: the field is read without synchronization
// on the stamped hot path.
func (st *Stamps) SetCrashHook(hook func(p *Proc, point CrashPoint, name int) bool) {
	st.hook = hook
}

// maybeCrash consults the fault-injection hook at a protocol point.
func (st *Stamps) maybeCrash(p *Proc, point CrashPoint, name int) {
	if st.hook != nil && st.hook(p, point, name) {
		panic(LeaseCrash{PID: p.ID(), Name: name, Point: point})
	}
}

// Reset clears every stamp. Only safe when no processes are running.
func (st *Stamps) Reset() {
	for i := range st.words {
		st.words[i].Store(0)
	}
}
