package shm

// Word-granular claim engine.
//
// The paper's cost model charges one shared-memory operation per probed TAS
// register, and the packed bitmap of NameSpace pays exactly that: TryClaim
// examines one bit per step even though the containing atomic.Uint64 word it
// CASes already holds 64 names. The word ops below charge the same single
// step for the same single atomic read-modify-write on the containing word —
// but harvest the whole 64-bit snapshot: read the word once, pick free bits
// with bit tricks (TrailingZeros64 / OnesCount64), and claim one bit, up to
// 64 bits, or an arbitrary mask in one CAS. In the model's terms this is the
// fetch-and-or / LL-SC strengthening of the per-bit TAS object: still one
// access to one shared register per step, with word-granular return value.
//
// ClaimMask is also the lever behind the word-block lease caches (package
// leasecache): a cache leases an entire 64-name block with one masked CAS
// and then serves acquires thread-locally, so the per-block step here is
// amortized across up to 64 zero-step fast-path acquires.
//
// Saturation hints: every NameSpace additionally maintains a summary bitmap
// (one bit per bitmap word, set when a claim op observed the word full,
// cleared by every release touching the word). Reading the summary costs no
// process step — like the adversary's Probe it is a performance hint, never
// a correctness input: hints can go stale when a release races a claim, so
// callers may use them to redirect random probes but deterministic fallback
// scans must consult the words themselves.

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// HintBits is a lock-free advisory bitmap: one bit per tracked object,
// set when the object was observed saturated and cleared when it reopens.
// Reads and writes are racy by design — a Set racing a Clear can leave a
// stale bit either way — so a HintBits value may redirect probes or order
// scans, but must never gate a correctness-critical fallback. The name
// space's per-word saturation summary and the sharded frontend's
// per-shard occupancy hints are both instances.
type HintBits struct {
	words []atomic.Uint64
}

// NewHintBits returns an all-clear hint bitmap over n objects.
func NewHintBits(n int) *HintBits {
	return &HintBits{words: make([]atomic.Uint64, (n+63)/64)}
}

// Set records that object i was observed saturated.
func (h *HintBits) Set(i int) {
	h.words[i>>6].Or(1 << (uint(i) & 63))
}

// Clear drops the hint for object i. The load keeps the common path
// read-only on the hint line when the bit is already clear.
func (h *HintBits) Clear(i int) {
	w := &h.words[i>>6]
	if mask := uint64(1) << (uint(i) & 63); w.Load()&mask != 0 {
		w.And(^mask)
	}
}

// Get reports the hint for object i. A true result may be stale.
func (h *HintBits) Get(i int) bool {
	return h.words[i>>6].Load()&(1<<(uint(i)&63)) != 0
}

// Reset clears every hint. Only safe when no processes are running.
func (h *HintBits) Reset() {
	for i := range h.words {
		h.words[i].Store(0)
	}
}

// SetAll marks every tracked object saturated in one pass. The elastic
// arena uses it when a level starts draining: forcing the whole level's
// saturation summary makes word-granular probes skip it at zero step cost
// while stragglers still inside a pass revalidate against the level state.
// Like every hint write it is advisory — a concurrent Clear can reopen a
// bit, and correctness never depends on the hints.
func (h *HintBits) SetAll() {
	for i := range h.words {
		h.words[i].Store(^uint64(0))
	}
}

// Words returns the number of bitmap words; word w covers the names
// [64w, min(64w+64, Size())).
func (s *NameSpace) Words() int { return (s.size + 63) / 64 }

// SaturateAll forces every word-saturation hint of the space, so
// word-granular probes skip the whole space at zero step cost until a
// release reopens a word. Advisory only (see HintBits.SetAll); the elastic
// arena calls it when a level starts draining.
func (s *NameSpace) SaturateAll() { s.sat.SetAll() }

// DesaturateAll clears every word-saturation hint of the space, reopening
// it to word-granular probes in one pass. Advisory only: a stale clear
// merely costs the next probe one step to re-mark a genuinely full word.
// The elastic arena calls it when a pending drain is cancelled by
// returning demand.
func (s *NameSpace) DesaturateAll() { s.sat.Reset() }

// FootprintBytes returns the resident storage of the space — bitmap words
// plus the saturation-hint summary, padding included. A diagnostic for
// memory-proportionality claims (the elastic arena's resident-bytes proxy),
// not a process step.
func (s *NameSpace) FootprintBytes() int {
	return (len(s.words) + len(s.sat.words)) * 8
}

// wordPtr returns the storage word and the valid-bit mask of bitmap word w
// (the final word of a non-multiple-of-64 space is partial).
func (s *NameSpace) wordPtr(w int) (*atomic.Uint64, uint64) {
	if uint(w) >= uint(s.Words()) {
		panic(fmt.Sprintf("shm: word %d outside space %q of %d words", w, s.label, s.Words()))
	}
	valid := ^uint64(0)
	if rem := s.size - w<<6; rem < 64 {
		valid = 1<<uint(rem) - 1
	}
	return &s.words[w*s.stride], valid
}

// WordSaturated reports the full-word hint for w without spending a process
// step. A true result may be stale (a release can race the claim that set
// it), so it must only redirect probes, never gate a fallback scan.
func (s *NameSpace) WordSaturated(w int) bool { return s.sat.Get(w) }

// lowestBits returns the k lowest set bits of m (all of m if it has fewer).
func lowestBits(m uint64, k int) uint64 {
	if k >= bits.OnesCount64(m) {
		return m
	}
	out := uint64(0)
	for ; k > 0; k-- {
		b := m & -m
		out |= b
		m ^= b
	}
	return out
}

// claimLowest is the shared CAS loop of the word claim ops: one process
// step, then claim the up-to-k lowest free bits of word w that lie in mask.
// It returns the claimed bits (0 when no masked bit was free) and marks the
// saturation hint when the whole word was observed full.
func (s *NameSpace) claimLowest(p *Proc, w int, mask uint64, k int) uint64 {
	ptr, valid := s.wordPtr(w)
	mask &= valid
	p.Step(Op{Kind: OpTAS, Space: s.id, Index: int32(w << 6)})
	for {
		cur := ptr.Load()
		free := ^cur & mask
		if free == 0 {
			if ^cur&valid == 0 {
				s.sat.Set(w)
			}
			return 0
		}
		pick := lowestBits(free, k)
		if ptr.CompareAndSwap(cur, cur|pick) {
			return pick
		}
	}
}

// ClaimFirstFree claims the lowest free name of bitmap word w in one CAS:
// snapshot the word, pick the first clear bit with TrailingZeros64, set it.
// Exactly one step — one atomic read-modify-write on the containing word,
// the same access a single-bit TryClaim performs — regardless of how many
// of the word's 64 names it had to look past. It returns the claimed name,
// or -1 if the word was full (which also sets the saturation hint).
func (s *NameSpace) ClaimFirstFree(p *Proc, w int) int {
	won := s.claimLowest(p, w, ^uint64(0), 1)
	if won == 0 {
		return -1
	}
	return w<<6 + bits.TrailingZeros64(won)
}

// ClaimUpTo claims the min(k, free) lowest free names of bitmap word w in
// one CAS and returns them as a bit mask over the word (0 when the word was
// full). One step, like ClaimFirstFree: this is the batch-claim primitive —
// up to 64 names per shared-memory access.
func (s *NameSpace) ClaimUpTo(p *Proc, w int, k int) uint64 {
	if k <= 0 {
		return 0
	}
	return s.claimLowest(p, w, ^uint64(0), k)
}

// ClaimMask claims the free subset of mask within bitmap word w in one CAS
// and returns exactly the bits it won. Bits of the word outside mask are
// never modified, no matter how the word changes concurrently. One step.
func (s *NameSpace) ClaimMask(p *Proc, w int, mask uint64) uint64 {
	return s.claimLowest(p, w, mask, 64)
}

// FreeMask clears every mask bit of bitmap word w — the batch release: up
// to 64 names returned to the pool in one atomic AND. One step (an OpClear,
// like Free). Clearing bits that are already free is a no-op, matching
// Free's semantics. The word's saturation hint is dropped.
func (s *NameSpace) FreeMask(p *Proc, w int, mask uint64) {
	ptr, valid := s.wordPtr(w)
	p.Step(Op{Kind: OpClear, Space: s.id, Index: int32(w << 6)})
	ptr.And(^(mask & valid))
	s.sat.Clear(w)
}

// Stamped claim variants: the crash-recoverable forms of the word ops.
// Each wins bits exactly as its unstamped counterpart — the one-CAS fast
// path on the bitmap word is untouched — and then publishes the winner's
// lease stamp on every won name (one extra step per name, on the stamp
// space; see lease.go for the protocol). A publish that loses to a racing
// reclaim walks away from that bit without touching it: the bit now belongs
// to the reclaim path or a successor, never to this claimant.

// ClaimFirstFreeStamped claims the lowest free name of bitmap word w and
// publishes stamp on it. Names whose publish is lost to a racing reclaim
// are skipped (the loop claims the word's next free bit). It returns the
// claimed-and-published name, or -1 if the word ran out of free bits.
func (s *NameSpace) ClaimFirstFreeStamped(p *Proc, w int, stamp uint64) int {
	for {
		n := s.ClaimFirstFree(p, w)
		if n < 0 {
			return -1
		}
		if s.publish(p, n, stamp) {
			return n
		}
	}
}

// ClaimUpToStamped claims the min(k, free) lowest free names of bitmap word
// w and publishes stamp on each; bits whose publish is lost to a racing
// reclaim are dropped from the returned mask (and left to the reclaim
// path). It returns the mask of names actually granted.
func (s *NameSpace) ClaimUpToStamped(p *Proc, w, k int, stamp uint64) uint64 {
	return s.publishMask(p, w, s.ClaimUpTo(p, w, k), stamp)
}

// ClaimMaskStamped claims the free subset of mask within bitmap word w and
// publishes stamp on each won name, dropping publish-lost bits exactly as
// ClaimUpToStamped does.
func (s *NameSpace) ClaimMaskStamped(p *Proc, w int, mask, stamp uint64) uint64 {
	return s.publishMask(p, w, s.ClaimMask(p, w, mask), stamp)
}

// publishMask publishes stamp on every name of a won word mask, returning
// the subset that was actually granted.
func (s *NameSpace) publishMask(p *Proc, w int, won, stamp uint64) uint64 {
	granted := won
	for rest := won; rest != 0; rest &= rest - 1 {
		b := bits.TrailingZeros64(rest)
		if !s.publish(p, w<<6+b, stamp) {
			granted &^= 1 << b
		}
	}
	return granted
}

// FreeMaskStamped retires holder's leases on the masked names of bitmap
// word w and frees exactly the bits whose lease was still the holder's: a
// name reclaimed out from under the holder is NOT cleared (it may already
// be re-granted). It returns the mask of bits actually freed. Cost: one
// stamp-clear step per name plus one word-clear step.
func (s *NameSpace) FreeMaskStamped(p *Proc, w int, mask uint64, holder uint64) uint64 {
	kept := mask
	for rest := mask; rest != 0; rest &= rest - 1 {
		b := bits.TrailingZeros64(rest)
		if !s.stamps.ClearOwned(p, s.stampBase+w<<6+b, holder) {
			kept &^= 1 << b
			continue
		}
		s.stamps.maybeCrash(p, CrashMidRelease, s.stampBase+w<<6+b)
	}
	if kept != 0 {
		s.FreeMask(p, w, kept)
	}
	return kept
}

// publish installs stamp on local name n through the attached stamp array,
// consulting the fault-injection hook in the bit-won/stamp-unpublished
// window first (harness experiment E18's post-claim crash point).
func (s *NameSpace) publish(p *Proc, n int, stamp uint64) bool {
	s.stamps.maybeCrash(p, CrashPrePublish, s.stampBase+n)
	return s.stamps.Publish(p, s.stampBase+n, stamp)
}

// TryClaimStamped is the per-bit stamped claim: a TryClaim of name i
// followed by the lease publish. A publish lost to a racing reclaim
// reports false exactly like a lost TAS — the bit is not the claimant's.
func (s *NameSpace) TryClaimStamped(p *Proc, i int, stamp uint64) bool {
	return s.TryClaim(p, i) && s.publish(p, i, stamp)
}

// FreeStamped retires holder's lease on name i and frees the bit only if
// the lease was still the holder's, reporting whether it freed anything.
func (s *NameSpace) FreeStamped(p *Proc, i int, holder uint64) bool {
	if !s.stamps.ClearOwned(p, s.stampBase+i, holder) {
		return false
	}
	s.stamps.maybeCrash(p, CrashMidRelease, s.stampBase+i)
	s.Free(p, i)
	return true
}

// ClaimFirstFreeRangeStamped claims-and-publishes the lowest free name in
// [lo, hi), retrying past publish-lost bits, or returns -1 when the range
// ran out of free words.
func (s *NameSpace) ClaimFirstFreeRangeStamped(p *Proc, lo, hi int, stamp uint64) int {
	for {
		n := s.ClaimFirstFreeRange(p, lo, hi)
		if n < 0 {
			return -1
		}
		if s.publish(p, n, stamp) {
			return n
		}
	}
}

// ClaimFirstFreeRange claims the lowest free name in [lo, hi) using word
// snapshots: one step per word examined instead of one per name, so a range
// of r names costs at most ⌈r/64⌉+1 steps. It returns the claimed name or
// -1 if every word in the range was observed full.
func (s *NameSpace) ClaimFirstFreeRange(p *Proc, lo, hi int) int {
	if lo < 0 || hi > s.size || lo > hi {
		panic(fmt.Sprintf("shm: range [%d,%d) outside space %q of %d", lo, hi, s.label, s.size))
	}
	for w := lo >> 6; w<<6 < hi; w++ {
		mask := ^uint64(0)
		if base := w << 6; base < lo {
			mask &= ^uint64(0) << (uint(lo) & 63)
		}
		if end := w<<6 + 64; end > hi {
			mask &= 1<<(uint(hi-w<<6)) - 1
		}
		if won := s.claimLowest(p, w, mask, 1); won != 0 {
			return w<<6 + bits.TrailingZeros64(won)
		}
	}
	return -1
}
