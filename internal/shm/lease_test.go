package shm

import (
	"sync"
	"testing"
)

func TestStampPackRoundTrip(t *testing.T) {
	cases := []struct{ holder, epoch uint64 }{
		{0, 0}, {1, 0}, {0, 1}, {1, 1},
		{MaxHolder, stampEpochMask},
		{HolderOrphan, 42}, {HolderSuspect, 42}, {HolderTomb, 42},
		{12345, 1 << 39},
	}
	for _, tc := range cases {
		s := PackStamp(tc.holder, tc.epoch)
		h, e := UnpackStamp(s)
		if h != tc.holder || e != tc.epoch {
			t.Fatalf("pack(%d,%d) -> unpack = (%d,%d)", tc.holder, tc.epoch, h, e)
		}
		if (s == 0) != (tc.holder == 0 && tc.epoch == 0) {
			t.Fatalf("pack(%d,%d) = %#x: zero iff both zero violated", tc.holder, tc.epoch, s)
		}
	}
}

// FuzzStampPack pins the stamp encoding: in-range (holder, epoch) pairs
// round-trip exactly, distinct pairs never alias, and the zero stamp means
// unheld (only the (0,0) pair maps to it).
func FuzzStampPack(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(1), uint64(1))
	f.Add(uint64(1), uint64(0), uint64(0), uint64(1))
	f.Add(uint64(MaxHolder), uint64(stampEpochMask), uint64(HolderOrphan), uint64(0))
	f.Fuzz(func(t *testing.T, h1, e1, h2, e2 uint64) {
		h1 &= stampHolderMax
		h2 &= stampHolderMax
		e1 &= stampEpochMask
		e2 &= stampEpochMask
		s1, s2 := PackStamp(h1, e1), PackStamp(h2, e2)
		if gh, ge := UnpackStamp(s1); gh != h1 || ge != e1 {
			t.Fatalf("round trip (%d,%d) -> (%d,%d)", h1, e1, gh, ge)
		}
		if (s1 == s2) != (h1 == h2 && e1 == e2) {
			t.Fatalf("alias: pack(%d,%d)=%#x vs pack(%d,%d)=%#x", h1, e1, s1, h2, e2, s2)
		}
		if s1 == 0 && (h1 != 0 || e1 != 0) {
			t.Fatalf("nonzero pair (%d,%d) packed to the unheld sentinel", h1, e1)
		}
	})
}

func TestStampClaimable(t *testing.T) {
	claimable := []uint64{0, PackStamp(HolderOrphan, 7), PackStamp(HolderTomb, 7)}
	for _, s := range claimable {
		if !StampClaimable(s) {
			t.Fatalf("stamp %#x should be claimable", s)
		}
	}
	unclaimable := []uint64{PackStamp(1, 0), PackStamp(42, 99), PackStamp(HolderSuspect, 7), PackStamp(MaxHolder, 0)}
	for _, s := range unclaimable {
		if StampClaimable(s) {
			t.Fatalf("stamp %#x should not be claimable", s)
		}
	}
}

func TestStampStale(t *testing.T) {
	if StampStale(10, 10, 0) {
		t.Fatal("same epoch never stale")
	}
	if !StampStale(11, 10, 0) {
		t.Fatal("zero TTL stale after one epoch")
	}
	if StampStale(15, 10, 5) {
		t.Fatal("exactly TTL epochs is not stale")
	}
	if !StampStale(16, 10, 5) {
		t.Fatal("TTL+1 epochs is stale")
	}
	if StampStale(5, 10, 0) {
		t.Fatal("future epoch never stale")
	}
}

// TestStampLifecycle walks one name through the full protocol: publish,
// refresh, clear; then the crashed-holder path: publish, adopt refusal
// (stamp live), expiry, two-phase reclaim, republish over the tombstone.
func TestStampLifecycle(t *testing.T) {
	st := NewStamps("lease-test", 8)
	p := NewProc(0, nil, nil, 0)

	// Live path.
	if !st.Publish(p, 3, PackStamp(7, 100)) {
		t.Fatal("publish on clear slot")
	}
	if st.Publish(p, 3, PackStamp(8, 100)) {
		t.Fatal("publish over a live foreign lease must fail")
	}
	if !st.Refresh(p, 3, 7, 120) {
		t.Fatal("holder refresh")
	}
	if st.Refresh(p, 3, 8, 130) {
		t.Fatal("foreign refresh must fail")
	}
	if !st.ClearOwned(p, 3, 7) {
		t.Fatal("holder clear")
	}
	if st.Load(3) != 0 {
		t.Fatalf("stamp %#x after clear", st.Load(3))
	}

	// Crash path: holder 7 publishes and dies.
	if !st.Publish(p, 3, PackStamp(7, 200)) {
		t.Fatal("republish")
	}
	obs := st.Load(3)
	if !st.BeginReclaim(3, obs, 300) {
		t.Fatal("begin reclaim of observed stale stamp")
	}
	if st.Publish(p, 3, PackStamp(9, 300)) {
		t.Fatal("publish over a suspect mark must fail")
	}
	if st.ClearOwned(p, 3, 7) {
		t.Fatal("dead holder's late release must lose to the reclaim")
	}
	if !st.FinishReclaim(3, 300, 310) {
		t.Fatal("finish reclaim")
	}
	if !st.Publish(p, 3, PackStamp(9, 320)) {
		t.Fatal("publish over a tombstone")
	}
}

// TestStampReclaimLosesToRefresh pins the no-lost-name guarantee: a holder
// that heartbeats between the sweep's observation and its reclaim CAS keeps
// the name.
func TestStampReclaimLosesToRefresh(t *testing.T) {
	st := NewStamps("lease-race", 4)
	p := NewProc(0, nil, nil, 0)
	if !st.Publish(p, 0, PackStamp(5, 10)) {
		t.Fatal("publish")
	}
	observed := st.Load(0)
	if !st.Refresh(p, 0, 5, 50) { // heartbeat lands first
		t.Fatal("refresh")
	}
	if st.BeginReclaim(0, observed, 60) {
		t.Fatal("reclaim of a refreshed lease must fail")
	}
	if h, e := UnpackStamp(st.Load(0)); h != 5 || e != 50 {
		t.Fatalf("lease disturbed: (%d,%d)", h, e)
	}
}

// TestStampedClaimEngine drives the stamped word ops on a NameSpace:
// claim+publish, publish-lost walk-away, stamp-guarded free.
func TestStampedClaimEngine(t *testing.T) {
	ns := NewNameSpace("stamped-claims", 128)
	st := NewStamps("stamped-claims:lease", 128)
	ns.AttachStamps(st, 0)
	p := NewProc(0, nil, nil, 0)
	me := PackStamp(3, 11)

	n := ns.ClaimFirstFreeStamped(p, 0, me)
	if n != 0 {
		t.Fatalf("first stamped claim = %d", n)
	}
	if h, e := UnpackStamp(st.Load(0)); h != 3 || e != 11 {
		t.Fatalf("stamp (%d,%d)", h, e)
	}

	// A suspect mark on the next free bit forces a walk-away: the claim
	// skips it and grants the bit after, leaving the suspect bit set.
	if !st.BeginReclaim(1, 0, 5) {
		t.Fatal("plant suspect")
	}
	n = ns.ClaimFirstFreeStamped(p, 0, me)
	if n != 2 {
		t.Fatalf("stamped claim walked to %d, want 2 (skipping suspect bit 1)", n)
	}
	if !ns.Probe(1) {
		t.Fatal("walked-away bit must stay set for the reclaim path")
	}

	// Batch claim: bits 3..6 with one stamped mask op.
	won := ns.ClaimMaskStamped(p, 0, 0b1111<<3, me)
	if won != 0b1111<<3 {
		t.Fatalf("mask claim %#x", won)
	}

	// Stamp-guarded free: foreign holder frees nothing.
	if freed := ns.FreeMaskStamped(p, 0, 1<<3, 999); freed != 0 {
		t.Fatalf("foreign free freed %#x", freed)
	}
	if !ns.Probe(3) {
		t.Fatal("name 3 must survive a foreign free")
	}
	if freed := ns.FreeMaskStamped(p, 0, 0b1111<<3, 3); freed != 0b1111<<3 {
		t.Fatalf("owner free freed %#x", freed)
	}
	for i := 3; i <= 6; i++ {
		if ns.Probe(i) || st.Load(i) != 0 {
			t.Fatalf("name %d not fully released", i)
		}
	}
}

// TestStampedClaimStorm races stamped claimers against a reclaiming sweeper
// on one shared space under -race: every grant must be unique, and a freed
// name must always be re-grantable.
func TestStampedClaimStorm(t *testing.T) {
	const names, workers, rounds = 256, 8, 200
	ns := NewNameSpacePadded("stamp-storm", names)
	st := NewStamps("stamp-storm:lease", names)
	ns.AttachStamps(st, 0)
	var wg sync.WaitGroup
	for g := range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := NewProc(g, nil, nil, 0)
			holder := uint64(g + 1)
			for r := range rounds {
				stamp := PackStamp(holder, uint64(r))
				var mine []int
				for w := 0; w < ns.Words(); w++ {
					if n := ns.ClaimFirstFreeStamped(p, w, stamp); n >= 0 {
						mine = append(mine, n)
					}
					if len(mine) == 4 {
						break
					}
				}
				for _, n := range mine {
					if h, _ := UnpackStamp(st.Load(n)); h != holder {
						t.Errorf("worker %d holds name %d stamped by %d", g, n, h)
						return
					}
				}
				for _, n := range mine {
					if !ns.FreeStamped(p, n, holder) {
						t.Errorf("worker %d lost live name %d to a reclaim that never ran", g, n)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := ns.CountClaimed(); got != 0 {
		t.Fatalf("%d names leaked after storm", got)
	}
	for i := range names {
		if st.Load(i) != 0 {
			t.Fatalf("stamp %d leaked: %#x", i, st.Load(i))
		}
	}
}
