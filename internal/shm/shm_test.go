package shm

import (
	"sync"
	"testing"
	"testing/quick"

	"shmrename/internal/prng"
)

func TestNameSpaceTryClaimOnce(t *testing.T) {
	s := NewNameSpace("ns", 8)
	p := NewProc(0, prng.New(1), nil, 0)
	if !s.TryClaim(p, 3) {
		t.Fatal("first claim failed")
	}
	if s.TryClaim(p, 3) {
		t.Fatal("second claim of same name succeeded")
	}
	if !s.Claimed(p, 3) {
		t.Fatal("Claimed did not observe the claim")
	}
	if s.Claimed(p, 4) {
		t.Fatal("unclaimed name reported claimed")
	}
}

func TestNameSpaceStepsCounted(t *testing.T) {
	s := NewNameSpace("ns", 4)
	p := NewProc(0, prng.New(1), nil, 0)
	s.TryClaim(p, 0)
	s.Claimed(p, 0)
	s.TryClaim(p, 1)
	if p.Steps() != 3 {
		t.Fatalf("steps = %d, want 3", p.Steps())
	}
}

func TestNameSpaceCountAndReset(t *testing.T) {
	s := NewNameSpace("ns", 10)
	p := NewProc(0, prng.New(1), nil, 0)
	for _, i := range []int{0, 2, 4} {
		s.TryClaim(p, i)
	}
	if got := s.CountClaimed(); got != 3 {
		t.Fatalf("CountClaimed = %d, want 3", got)
	}
	if !s.Probe(2) || s.Probe(1) {
		t.Fatal("Probe mismatch")
	}
	s.Reset()
	if got := s.CountClaimed(); got != 0 {
		t.Fatalf("after Reset CountClaimed = %d", got)
	}
}

// TestNameSpaceMutualExclusion stresses the core TAS property: under real
// concurrency, every name is won by at most one process.
func TestNameSpaceMutualExclusion(t *testing.T) {
	const procs, names = 32, 64
	s := NewNameSpace("ns", names)
	wins := make([][]int, procs)
	var wg sync.WaitGroup
	for pid := 0; pid < procs; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			p := NewProc(pid, prng.NewStream(7, pid), nil, 0)
			for i := 0; i < names; i++ {
				if s.TryClaim(p, i) {
					wins[pid] = append(wins[pid], i)
				}
			}
		}(pid)
	}
	wg.Wait()
	owner := make(map[int]int)
	total := 0
	for pid, ws := range wins {
		for _, name := range ws {
			if prev, dup := owner[name]; dup {
				t.Fatalf("name %d won by both %d and %d", name, prev, pid)
			}
			owner[name] = pid
			total++
		}
	}
	if total != names {
		t.Fatalf("%d names claimed, want %d", total, names)
	}
}

func TestStepLimitPanics(t *testing.T) {
	s := NewNameSpace("ns", 4)
	p := NewProc(5, prng.New(1), nil, 2)
	s.TryClaim(p, 0)
	s.TryClaim(p, 1)
	defer func() {
		r := recover()
		sl, ok := r.(StepLimit)
		if !ok {
			t.Fatalf("expected StepLimit panic, got %v", r)
		}
		if sl.PID != 5 || sl.Limit != 2 {
			t.Fatalf("unexpected StepLimit contents: %+v", sl)
		}
	}()
	s.TryClaim(p, 2)
}

type denyGate struct{}

func (denyGate) Await(p *Proc, op Op) bool { return false }

func TestGateDenialPanicsWithCrash(t *testing.T) {
	s := NewNameSpace("ns", 4)
	p := NewProc(9, prng.New(1), denyGate{}, 0)
	defer func() {
		r := recover()
		c, ok := r.(Crash)
		if !ok || c.PID != 9 {
			t.Fatalf("expected Crash{9}, got %v", r)
		}
	}()
	s.TryClaim(p, 0)
}

type recordGate struct{ ops []Op }

func (g *recordGate) Await(p *Proc, op Op) bool {
	g.ops = append(g.ops, op)
	return true
}

func TestGateSeesOperations(t *testing.T) {
	s := NewNameSpace("reg", 4)
	g := &recordGate{}
	p := NewProc(0, prng.New(1), g, 0)
	s.TryClaim(p, 2)
	s.Claimed(p, 1)
	want := []Op{
		{Kind: OpTAS, Space: s.ID(), Index: 2},
		{Kind: OpRead, Space: s.ID(), Index: 1},
	}
	if len(g.ops) != len(want) {
		t.Fatalf("gate saw %d ops, want %d", len(g.ops), len(want))
	}
	for i := range want {
		if g.ops[i] != want[i] {
			t.Fatalf("op %d = %v, want %v", i, g.ops[i], want[i])
		}
	}
}

func TestOpString(t *testing.T) {
	op := Op{Kind: OpTAS, Space: InternSpace("x"), Index: 7}
	if got := op.String(); got != "tas@x[7]" {
		t.Fatalf("Op.String = %q", got)
	}
	op = Op{Kind: OpRead, Space: InternSpace("y"), Index: 0}
	if got := op.String(); got != "read@y[0]" {
		t.Fatalf("Op.String = %q", got)
	}
	if got := (Op{Kind: OpTAS, Space: NoSpace, Index: 1}).String(); got != "tas@space(-1)[1]" {
		t.Fatalf("Op.String for unknown space = %q", got)
	}
}

func TestSpaceInterning(t *testing.T) {
	a := InternSpace("intern-test-a")
	b := InternSpace("intern-test-b")
	if a == b {
		t.Fatal("distinct labels interned to the same ID")
	}
	if InternSpace("intern-test-a") != a {
		t.Fatal("re-interning a label changed its ID")
	}
	if SpaceLabel(a) != "intern-test-a" || SpaceLabel(b) != "intern-test-b" {
		t.Fatal("SpaceLabel does not round-trip")
	}
	if n := NumSpaces(); n < 2 || int(a) >= n || int(b) >= n {
		t.Fatalf("NumSpaces = %d does not cover interned IDs %d, %d", n, a, b)
	}
}

func TestQuickClaimIdempotence(t *testing.T) {
	// Property: once claimed, a name can never be claimed again, no matter
	// the order of attempts.
	f := func(seed uint64, size8 uint8, attempts8 uint8) bool {
		size := int(size8%32) + 1
		attempts := int(attempts8%128) + 1
		s := NewNameSpace("q", size)
		p := NewProc(0, prng.New(seed), nil, 0)
		winners := make(map[int]int)
		for a := 0; a < attempts; a++ {
			i := p.Rand().Intn(size)
			if s.TryClaim(p, i) {
				winners[i]++
				if winners[i] > 1 {
					return false
				}
			}
		}
		return s.CountClaimed() == len(winners)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFreeReleasesNames(t *testing.T) {
	s := NewNameSpace("free-test", 130)
	p := NewProc(0, prng.New(3), nil, 0)
	if !s.TryClaim(p, 5) || !s.TryClaim(p, 64) || !s.TryClaim(p, 129) {
		t.Fatal("fresh names not claimable")
	}
	steps := p.Steps()
	s.Free(p, 64)
	if p.Steps() != steps+1 {
		t.Fatal("Free must cost exactly one step")
	}
	if s.Probe(64) {
		t.Fatal("name 64 still set after Free")
	}
	if !s.Probe(5) || !s.Probe(129) {
		t.Fatal("Free cleared a neighbouring name")
	}
	if got := s.CountClaimed(); got != 2 {
		t.Fatalf("CountClaimed = %d, want 2", got)
	}
	// Long-lived: the freed name is immediately reacquirable; freeing a
	// free name is a harmless no-op.
	s.Free(p, 64)
	if !s.TryClaim(p, 64) {
		t.Fatal("freed name not reclaimable")
	}
}

func TestOpClearKind(t *testing.T) {
	if OpClear.String() != "clear" {
		t.Fatalf("OpClear formats as %q", OpClear.String())
	}
	op := Op{Kind: OpClear, Space: InternSpace("clear-fmt"), Index: 9}
	if got := op.String(); got != "clear@clear-fmt[9]" {
		t.Fatalf("Op.String() = %q", got)
	}
}
