// Package shm is the shared-memory kernel of the repository.
//
// It defines the per-process execution context (Proc) through which every
// shared-memory operation flows, the operation descriptors the adaptive
// adversary gets to see, and the hardware test-and-set name space used by
// the renaming algorithms of the paper.
//
// Two execution modes share all algorithm and substrate code:
//
//   - Simulated mode: each Proc carries a Gate; every operation first blocks
//     until the scheduler (package sched) grants the step. Exactly one
//     operation is in flight at any time, so executions are deterministic
//     and the scheduling policy is a fully adaptive adversary in the sense
//     of §II.A of the paper.
//   - Native mode: the Gate is nil and operations hit sync/atomic directly
//     on real cores, for wall-clock benchmarks.
//
// Step accounting: one call to Proc.Step is one access to shared memory,
// matching the paper's definition of step complexity (the maximum number of
// shared-memory accesses performed by any process).
//
// Hot-path addressing: operations identify their target structure by an
// interned integer SpaceID, never by string. Structures intern their label
// once at construction; traces and adversaries translate IDs back to labels
// through the registry when (and only when) they need human-readable names.
package shm

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"shmrename/internal/prng"
)

// OpKind classifies a shared-memory operation for the adversary's benefit.
type OpKind uint8

// Operation kinds. The adversary sees the kind and the target of every
// pending operation, which (together with the process coin flips already
// embodied in the target) gives it the full visibility the model grants.
const (
	// OpTAS is a test-and-set on a register or TAS bit.
	OpTAS OpKind = iota
	// OpRead is a read of a shared register (e.g. a device's out_reg).
	OpRead
	// OpClear is a clearing write that releases a previously won TAS
	// register, the operation long-lived renaming adds to the one-shot
	// model: names return to the pool and may be reacquired.
	OpClear
)

// String returns a short human-readable name for the kind.
func (k OpKind) String() string {
	switch k {
	case OpTAS:
		return "tas"
	case OpRead:
		return "read"
	case OpClear:
		return "clear"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// SpaceID is an interned operation-space identifier. IDs are small dense
// integers handed out by InternSpace, so schedulers and adversaries can use
// them as direct array indices instead of hashing strings on every step.
type SpaceID int32

// NoSpace is an invalid sentinel SpaceID. InternSpace never returns it;
// note that a zero-valued Op carries Space 0, which IS a valid interned ID
// (the first label registered), so "unset" checks must compare against
// NoSpace explicitly, never against the zero value.
const NoSpace SpaceID = -1

// spaceRegistry maps labels to dense IDs and back. Interning happens at
// structure-construction time, never on the per-step hot path.
var spaceRegistry = struct {
	mu     sync.RWMutex
	ids    map[string]SpaceID
	labels []string
}{ids: make(map[string]SpaceID)}

// InternSpace returns the stable SpaceID for a label, allocating one the
// first time the label is seen. Equal labels always map to the same ID for
// the lifetime of the process.
func InternSpace(label string) SpaceID {
	spaceRegistry.mu.RLock()
	id, ok := spaceRegistry.ids[label]
	spaceRegistry.mu.RUnlock()
	if ok {
		return id
	}
	spaceRegistry.mu.Lock()
	defer spaceRegistry.mu.Unlock()
	if id, ok := spaceRegistry.ids[label]; ok {
		return id
	}
	id = SpaceID(len(spaceRegistry.labels))
	spaceRegistry.ids[label] = id
	spaceRegistry.labels = append(spaceRegistry.labels, label)
	return id
}

// SpaceLabel translates an interned SpaceID back to its label, for traces
// and reports. Unknown IDs format as "space(<id>)".
func SpaceLabel(id SpaceID) string {
	spaceRegistry.mu.RLock()
	defer spaceRegistry.mu.RUnlock()
	if id >= 0 && int(id) < len(spaceRegistry.labels) {
		return spaceRegistry.labels[id]
	}
	return fmt.Sprintf("space(%d)", int32(id))
}

// NumSpaces returns the number of interned labels; IDs lie in [0, NumSpaces).
// Schedulers size their dense SpaceID-indexed tables with it.
func NumSpaces() int {
	spaceRegistry.mu.RLock()
	defer spaceRegistry.mu.RUnlock()
	return len(spaceRegistry.labels)
}

// Op describes one shared-memory operation: which structure is accessed
// (Space, the structure's interned ID) and the address within it. It is
// built on every simulated step, so it deliberately carries no pointer or
// string field: 12 bytes, trivially copyable.
type Op struct {
	Kind  OpKind
	Space SpaceID
	Index int32
}

// String formats the operation as kind@space[index], resolving the space
// label through the registry (not a hot-path method).
func (o Op) String() string {
	return fmt.Sprintf("%s@%s[%d]", o.Kind, SpaceLabel(o.Space), o.Index)
}

// Gate mediates scheduling in simulated mode. Await blocks until the
// scheduler grants the process its next step and reports false if the
// process has been crashed by the adversary instead.
type Gate interface {
	Await(p *Proc, op Op) bool
}

// Crash is the panic value used to unwind a process that the adversary
// crashed mid-algorithm. It never escapes the runners in package sched.
type Crash struct{ PID int }

// StepLimit is the panic value used to unwind a process that exceeded its
// per-process step budget. It exists as a safety net so that a buggy
// non-terminating algorithm fails loudly instead of hanging the simulator.
type StepLimit struct {
	PID   int
	Limit int64
}

// Proc is the execution context of one process. All shared-memory
// substrates take a *Proc on every operation so that steps are counted and,
// in simulated mode, scheduled.
type Proc struct {
	id    int
	rng   *prng.Rand
	gate  Gate
	steps int64
	limit int64 // 0 means unlimited
}

// NewProc returns a process context. gate may be nil (native mode).
// limit, if positive, bounds the number of steps the process may take
// before it is unwound with a StepLimit panic.
func NewProc(id int, rng *prng.Rand, gate Gate, limit int64) *Proc {
	p := new(Proc)
	p.Init(id, rng, gate, limit)
	return p
}

// Init resets p in place: the allocation-free equivalent of NewProc for
// runners that batch-allocate one contexts slice per run.
func (p *Proc) Init(id int, rng *prng.Rand, gate Gate, limit int64) {
	*p = Proc{id: id, rng: rng, gate: gate, limit: limit}
}

// ID returns the process identifier (its original name, in renaming terms).
func (p *Proc) ID() int { return p.id }

// Rand returns the process's private randomness. In the adaptive-adversary
// model the adversary may observe these coins; concretely it observes every
// operation target, which embodies them.
func (p *Proc) Rand() *prng.Rand { return p.rng }

// Steps returns the number of shared-memory accesses performed so far.
func (p *Proc) Steps() int64 { return p.steps }

// Step accounts for (and, in simulated mode, schedules) one shared-memory
// access. It must be called by a substrate immediately before executing the
// access. It panics with Crash if the adversary crashes the process and
// with StepLimit if the step budget is exhausted; both panics are recovered
// by the runners in package sched.
func (p *Proc) Step(op Op) {
	p.steps++
	if p.limit > 0 && p.steps > p.limit {
		panic(StepLimit{PID: p.id, Limit: p.limit})
	}
	if p.gate != nil {
		if !p.gate.Await(p, op) {
			panic(Crash{PID: p.id})
		}
	}
}

// Probeable lets an adaptive adversary inspect, without spending process
// steps, whether the addressed TAS object is already set. Structures
// register themselves with the simulator under their space label.
type Probeable interface {
	// Probe reports whether the TAS object at index i is currently set.
	Probe(i int) bool
}

// ClaimSpace is the abstract array of TAS registers holding names that the
// loose-renaming algorithms of §IV operate on. Implementations include the
// hardware NameSpace below and the read/write-register construction in
// package tas.
type ClaimSpace interface {
	// Size returns the number of names in the space.
	Size() int
	// TryClaim performs a test-and-set on name i on behalf of p and
	// reports whether p won the name. It costs at least one step.
	TryClaim(p *Proc, i int) bool
	// Claimed reads whether name i is already taken. It costs one step.
	Claimed(p *Proc, i int) bool
	// CountClaimed returns the number of taken names. It is a diagnostic
	// for tests and metrics, not a process step.
	CountClaimed() int
}

// LabeledProbeable is a probeable structure that knows the operation-space
// label under which its operations appear, so runners can register it for
// adaptive adversaries automatically.
type LabeledProbeable interface {
	Probeable
	Label() string
}

// wordsPerLine is the padded-layout stride: one occupied 8-byte word per
// 64-byte cache line, so concurrent CAS traffic on neighbouring words never
// false-shares a line in native mode.
const wordsPerLine = 8

// NameSpace is a hardware test-and-set name space: one single-writer TAS
// register per name, as assumed by the model of §IV ("registers ... on
// which they can perform TAS operations implemented in hardware"). A
// TryClaim or Claimed costs exactly one step.
//
// Storage is a word-packed bitmap: 64 names per atomic.Uint64, claimed by
// CAS on the containing word and counted with popcount. The packed layout
// (NewNameSpace) spends one bit per name — 8x less memory than the earlier
// byte-per-name layout — and is the right choice for simulated runs, where
// exactly one operation is in flight at a time. For native runs on real
// cores, NewNameSpacePadded spreads the words one per cache line to avoid
// false sharing between adjacent names.
type NameSpace struct {
	label  string
	id     SpaceID
	size   int
	stride int // slots between occupied words: 1 packed, wordsPerLine padded
	words  []atomic.Uint64
	// sat is the word-saturation summary (one bit per bitmap word, set when
	// a word-granular claim observed the word full, cleared by releases).
	// It is a probe-redirection hint, never a correctness input; see claim.go.
	sat *HintBits
	// stamps, when attached, is the per-name lease-stamp array of the
	// crash-recovery layer; stampBase offsets this space's local names into
	// it (arenas share one stamp array across several spaces). See lease.go
	// and the Stamped claim variants in claim.go.
	stamps    *Stamps
	stampBase int
}

var _ ClaimSpace = (*NameSpace)(nil)
var _ Probeable = (*NameSpace)(nil)
var _ LabeledProbeable = (*NameSpace)(nil)

// NewNameSpace returns a packed name space of m names, all free: 64 names
// per word. The label identifies the space in operation descriptors and
// traces; it is interned once, here.
func NewNameSpace(label string, m int) *NameSpace {
	return newNameSpace(label, m, 1)
}

// NewNameSpacePadded returns a name space of m names laid out one word per
// cache line, for native-mode runs where concurrent processes would
// otherwise false-share bitmap words. Semantics are identical to
// NewNameSpace.
func NewNameSpacePadded(label string, m int) *NameSpace {
	return newNameSpace(label, m, wordsPerLine)
}

func newNameSpace(label string, m, stride int) *NameSpace {
	if m < 0 {
		panic("shm: negative name space size")
	}
	nwords := (m + 63) / 64
	return &NameSpace{
		label:  label,
		id:     InternSpace(label),
		size:   m,
		stride: stride,
		words:  make([]atomic.Uint64, nwords*stride),
		sat:    NewHintBits(nwords),
	}
}

// NewNameSpaceBacked returns a packed name space of m names on externally
// owned word storage (e.g. a region of an mmap'd file). The backing slice
// is used in place, bits and all — opening an existing file preserves its
// claims — so it must hold at least ⌈m/64⌉ words. Saturation hints are
// process-local (rebuilt lazily by claims), never persisted.
func NewNameSpaceBacked(label string, m int, words []atomic.Uint64) *NameSpace {
	if m < 0 {
		panic("shm: negative name space size")
	}
	nwords := (m + 63) / 64
	if len(words) < nwords {
		panic(fmt.Sprintf("shm: backing of %d words cannot hold %d names", len(words), m))
	}
	return &NameSpace{
		label:  label,
		id:     InternSpace(label),
		size:   m,
		stride: 1,
		words:  words[:nwords],
		sat:    NewHintBits(nwords),
	}
}

// AttachStamps wires the crash-recovery lease-stamp array to this space:
// the space's local name i stamps at st[base+i]. Required before any
// Stamped claim variant; a nil st detaches.
func (s *NameSpace) AttachStamps(st *Stamps, base int) {
	if st != nil && base+s.size > st.Size() {
		panic(fmt.Sprintf("shm: stamp array of %d cannot cover names [%d, %d)", st.Size(), base, base+s.size))
	}
	s.stamps = st
	s.stampBase = base
}

// Stamps returns the attached lease-stamp array and this space's base
// offset into it (nil when the space is unstamped).
func (s *NameSpace) Stamps() (*Stamps, int) { return s.stamps, s.stampBase }

// Label returns the space's label.
func (s *NameSpace) Label() string { return s.label }

// ID returns the space's interned operation-space ID.
func (s *NameSpace) ID() SpaceID { return s.id }

// Size returns the number of names.
func (s *NameSpace) Size() int { return s.size }

// word returns the bitmap word holding name i and i's mask within it.
func (s *NameSpace) word(i int) (*atomic.Uint64, uint64) {
	if uint(i) >= uint(s.size) {
		panic(fmt.Sprintf("shm: name %d outside space %q of %d", i, s.label, s.size))
	}
	return &s.words[(i>>6)*s.stride], uint64(1) << (uint(i) & 63)
}

// TryClaim test-and-sets name i: CAS on the containing bitmap word. One
// step. Losing the CAS to a concurrent claim of a *different* name in the
// same word retries; losing bit i itself returns false.
func (s *NameSpace) TryClaim(p *Proc, i int) bool {
	w, mask := s.word(i)
	p.Step(Op{Kind: OpTAS, Space: s.id, Index: int32(i)})
	for {
		cur := w.Load()
		if cur&mask != 0 {
			return false
		}
		if w.CompareAndSwap(cur, cur|mask) {
			return true
		}
	}
}

// Claimed reads whether name i is taken. One step.
func (s *NameSpace) Claimed(p *Proc, i int) bool {
	w, mask := s.word(i)
	p.Step(Op{Kind: OpRead, Space: s.id, Index: int32(i)})
	return w.Load()&mask != 0
}

// Free clears name i — the release half of long-lived renaming. One step.
// Only the current holder of the name may call it; releasing a free name is
// a no-op (the atomic clear of an unset bit changes nothing). The cleared
// name is immediately reacquirable by any process.
func (s *NameSpace) Free(p *Proc, i int) {
	w, mask := s.word(i)
	p.Step(Op{Kind: OpClear, Space: s.id, Index: int32(i)})
	w.And(^mask)
	s.sat.Clear(i >> 6)
}

// Probe reports whether name i is taken without spending a process step.
// It serves the adversary (Probeable) and post-run verification.
func (s *NameSpace) Probe(i int) bool {
	w, mask := s.word(i)
	return w.Load()&mask != 0
}

// CountClaimed returns the number of taken names: one popcount per bitmap
// word. Not a process step; used by metrics and tests after (or between)
// runs.
func (s *NameSpace) CountClaimed() int {
	c := 0
	for i := 0; i < len(s.words); i += s.stride {
		c += bits.OnesCount64(s.words[i].Load())
	}
	return c
}

// Reset frees every name. Only safe when no processes are running.
func (s *NameSpace) Reset() {
	for i := 0; i < len(s.words); i += s.stride {
		s.words[i].Store(0)
	}
	s.sat.Reset()
}
