// Package shm is the shared-memory kernel of the repository.
//
// It defines the per-process execution context (Proc) through which every
// shared-memory operation flows, the operation descriptors the adaptive
// adversary gets to see, and the hardware test-and-set name space used by
// the renaming algorithms of the paper.
//
// Two execution modes share all algorithm and substrate code:
//
//   - Simulated mode: each Proc carries a Gate; every operation first blocks
//     until the scheduler (package sched) grants the step. Exactly one
//     operation is in flight at any time, so executions are deterministic
//     and the scheduling policy is a fully adaptive adversary in the sense
//     of §II.A of the paper.
//   - Native mode: the Gate is nil and operations hit sync/atomic directly
//     on real cores, for wall-clock benchmarks.
//
// Step accounting: one call to Proc.Step is one access to shared memory,
// matching the paper's definition of step complexity (the maximum number of
// shared-memory accesses performed by any process).
package shm

import (
	"fmt"
	"sync/atomic"

	"shmrename/internal/prng"
)

// OpKind classifies a shared-memory operation for the adversary's benefit.
type OpKind uint8

// Operation kinds. The adversary sees the kind and the target of every
// pending operation, which (together with the process coin flips already
// embodied in the target) gives it the full visibility the model grants.
const (
	// OpTAS is a test-and-set on a register or TAS bit.
	OpTAS OpKind = iota
	// OpRead is a read of a shared register (e.g. a device's out_reg).
	OpRead
)

// String returns a short human-readable name for the kind.
func (k OpKind) String() string {
	switch k {
	case OpTAS:
		return "tas"
	case OpRead:
		return "read"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// Op describes one shared-memory operation: which structure is accessed
// (Space, a label chosen by the structure) and the address within it.
type Op struct {
	Kind  OpKind
	Space string
	Index int
}

// String formats the operation as kind@space[index].
func (o Op) String() string {
	return fmt.Sprintf("%s@%s[%d]", o.Kind, o.Space, o.Index)
}

// Gate mediates scheduling in simulated mode. Await blocks until the
// scheduler grants the process its next step and reports false if the
// process has been crashed by the adversary instead.
type Gate interface {
	Await(p *Proc, op Op) bool
}

// Crash is the panic value used to unwind a process that the adversary
// crashed mid-algorithm. It never escapes the runners in package sched.
type Crash struct{ PID int }

// StepLimit is the panic value used to unwind a process that exceeded its
// per-process step budget. It exists as a safety net so that a buggy
// non-terminating algorithm fails loudly instead of hanging the simulator.
type StepLimit struct {
	PID   int
	Limit int64
}

// Proc is the execution context of one process. All shared-memory
// substrates take a *Proc on every operation so that steps are counted and,
// in simulated mode, scheduled.
type Proc struct {
	id    int
	rng   *prng.Rand
	gate  Gate
	steps int64
	limit int64 // 0 means unlimited
}

// NewProc returns a process context. gate may be nil (native mode).
// limit, if positive, bounds the number of steps the process may take
// before it is unwound with a StepLimit panic.
func NewProc(id int, rng *prng.Rand, gate Gate, limit int64) *Proc {
	return &Proc{id: id, rng: rng, gate: gate, limit: limit}
}

// ID returns the process identifier (its original name, in renaming terms).
func (p *Proc) ID() int { return p.id }

// Rand returns the process's private randomness. In the adaptive-adversary
// model the adversary may observe these coins; concretely it observes every
// operation target, which embodies them.
func (p *Proc) Rand() *prng.Rand { return p.rng }

// Steps returns the number of shared-memory accesses performed so far.
func (p *Proc) Steps() int64 { return p.steps }

// Step accounts for (and, in simulated mode, schedules) one shared-memory
// access. It must be called by a substrate immediately before executing the
// access. It panics with Crash if the adversary crashes the process and
// with StepLimit if the step budget is exhausted; both panics are recovered
// by the runners in package sched.
func (p *Proc) Step(op Op) {
	p.steps++
	if p.limit > 0 && p.steps > p.limit {
		panic(StepLimit{PID: p.id, Limit: p.limit})
	}
	if p.gate != nil {
		if !p.gate.Await(p, op) {
			panic(Crash{PID: p.id})
		}
	}
}

// Probeable lets an adaptive adversary inspect, without spending process
// steps, whether the addressed TAS object is already set. Structures
// register themselves with the simulator under their space label.
type Probeable interface {
	// Probe reports whether the TAS object at index i is currently set.
	Probe(i int) bool
}

// ClaimSpace is the abstract array of TAS registers holding names that the
// loose-renaming algorithms of §IV operate on. Implementations include the
// hardware NameSpace below and the read/write-register construction in
// package tas.
type ClaimSpace interface {
	// Size returns the number of names in the space.
	Size() int
	// TryClaim performs a test-and-set on name i on behalf of p and
	// reports whether p won the name. It costs at least one step.
	TryClaim(p *Proc, i int) bool
	// Claimed reads whether name i is already taken. It costs one step.
	Claimed(p *Proc, i int) bool
	// CountClaimed returns the number of taken names. It is a diagnostic
	// for tests and metrics, not a process step.
	CountClaimed() int
}

// LabeledProbeable is a probeable structure that knows the operation-space
// label under which its operations appear, so runners can register it for
// adaptive adversaries automatically.
type LabeledProbeable interface {
	Probeable
	Label() string
}

// NameSpace is a hardware test-and-set name space: one single-writer TAS
// register per name, implemented with an atomic CAS, as assumed by the
// model of §IV ("registers ... on which they can perform TAS operations
// implemented in hardware"). A TryClaim or Claimed costs exactly one step.
type NameSpace struct {
	label string
	bits  []atomic.Bool
}

var _ ClaimSpace = (*NameSpace)(nil)
var _ Probeable = (*NameSpace)(nil)

// NewNameSpace returns a name space of m names, all free. The label
// identifies the space in operation descriptors and traces.
func NewNameSpace(label string, m int) *NameSpace {
	if m < 0 {
		panic("shm: negative name space size")
	}
	return &NameSpace{label: label, bits: make([]atomic.Bool, m)}
}

// Label returns the space's label.
func (s *NameSpace) Label() string { return s.label }

// Size returns the number of names.
func (s *NameSpace) Size() int { return len(s.bits) }

// TryClaim test-and-sets name i. One step.
func (s *NameSpace) TryClaim(p *Proc, i int) bool {
	p.Step(Op{Kind: OpTAS, Space: s.label, Index: i})
	return s.bits[i].CompareAndSwap(false, true)
}

// Claimed reads whether name i is taken. One step.
func (s *NameSpace) Claimed(p *Proc, i int) bool {
	p.Step(Op{Kind: OpRead, Space: s.label, Index: i})
	return s.bits[i].Load()
}

// Probe reports whether name i is taken without spending a process step.
// It serves the adversary (Probeable) and post-run verification.
func (s *NameSpace) Probe(i int) bool { return s.bits[i].Load() }

// CountClaimed returns the number of taken names. Not a process step; used
// by metrics and tests after (or between) runs.
func (s *NameSpace) CountClaimed() int {
	c := 0
	for i := range s.bits {
		if s.bits[i].Load() {
			c++
		}
	}
	return c
}

// Reset frees every name. Only safe when no processes are running.
func (s *NameSpace) Reset() {
	for i := range s.bits {
		s.bits[i].Store(false)
	}
}
