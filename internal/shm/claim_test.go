package shm

import (
	"math/bits"
	"sync"
	"testing"

	"shmrename/internal/prng"
)

func claimProc(id int) *Proc {
	return NewProc(id, prng.NewStream(7, id), nil, 0)
}

func TestClaimFirstFreeOneStepPerClaim(t *testing.T) {
	s := NewNameSpace("t-cff", 130) // two full words + one 2-bit partial
	p := claimProc(0)
	for want := 0; want < 130; want++ {
		before := p.Steps()
		got := s.ClaimFirstFree(p, want>>6)
		if got != want {
			t.Fatalf("claim %d: got name %d", want, got)
		}
		if steps := p.Steps() - before; steps != 1 {
			t.Fatalf("claim %d cost %d steps, want 1", want, steps)
		}
	}
	for w := 0; w < s.Words(); w++ {
		if got := s.ClaimFirstFree(p, w); got != -1 {
			t.Fatalf("full word %d yielded %d", w, got)
		}
		if !s.WordSaturated(w) {
			t.Fatalf("word %d not hinted saturated after observed full", w)
		}
	}
	if got := s.CountClaimed(); got != 130 {
		t.Fatalf("claimed %d, want 130", got)
	}
	// A release re-opens the word and drops the hint.
	s.Free(p, 64)
	if s.WordSaturated(1) {
		t.Fatal("word 1 still hinted saturated after free")
	}
	if got := s.ClaimFirstFree(p, 1); got != 64 {
		t.Fatalf("reclaim got %d, want 64", got)
	}
}

func TestClaimUpTo(t *testing.T) {
	s := NewNameSpace("t-cut", 64)
	p := claimProc(0)
	before := p.Steps()
	won := s.ClaimUpTo(p, 0, 10)
	if p.Steps()-before != 1 {
		t.Fatalf("batch claim cost %d steps, want 1", p.Steps()-before)
	}
	if won != 1<<10-1 {
		t.Fatalf("won %b, want the 10 lowest bits", won)
	}
	// The next batch lands above the first; over-asking caps at the word.
	if won = s.ClaimUpTo(p, 0, 100); bits.OnesCount64(won) != 54 {
		t.Fatalf("second batch won %d bits, want the 54 remaining", bits.OnesCount64(won))
	}
	if s.ClaimUpTo(p, 0, 1) != 0 {
		t.Fatal("claim on a full word won bits")
	}
	if s.ClaimUpTo(p, 0, 0) != 0 {
		t.Fatal("k=0 claimed bits")
	}
}

func TestClaimMaskRespectsMaskAndPartialWord(t *testing.T) {
	s := NewNameSpace("t-cm", 70) // word 1 has 6 valid bits
	p := claimProc(0)
	mask := uint64(0b1010_1010)
	if won := s.ClaimMask(p, 0, mask); won != mask {
		t.Fatalf("won %b, want full mask %b", won, mask)
	}
	// Re-claiming the same mask wins nothing and must not clobber.
	if won := s.ClaimMask(p, 0, mask); won != 0 {
		t.Fatalf("reclaim won %b", won)
	}
	if got := s.CountClaimed(); got != 4 {
		t.Fatalf("claimed %d, want 4", got)
	}
	// Out-of-space bits of the partial word are silently invalid.
	if won := s.ClaimMask(p, 1, ^uint64(0)); bits.OnesCount64(won) != 6 {
		t.Fatalf("partial word won %d bits, want 6", bits.OnesCount64(won))
	}
	if got := s.CountClaimed(); got != 10 {
		t.Fatalf("claimed %d, want 10", got)
	}
}

func TestFreeMaskRoundTrip(t *testing.T) {
	s := NewNameSpace("t-fm", 64)
	p := claimProc(0)
	a := s.ClaimMask(p, 0, 0x00ff)
	b := s.ClaimMask(p, 0, 0xff00)
	if a != 0x00ff || b != 0xff00 {
		t.Fatalf("claims: %x %x", a, b)
	}
	before := p.Steps()
	s.FreeMask(p, 0, a)
	if p.Steps()-before != 1 {
		t.Fatalf("batch free cost %d steps, want 1", p.Steps()-before)
	}
	if got := s.CountClaimed(); got != 8 {
		t.Fatalf("claimed %d after partial free, want 8", got)
	}
	for i := 8; i < 16; i++ {
		if !s.Probe(i) {
			t.Fatalf("foreign bit %d cleared by FreeMask", i)
		}
	}
	// Freeing already-free bits is a no-op.
	s.FreeMask(p, 0, a)
	if got := s.CountClaimed(); got != 8 {
		t.Fatalf("claimed %d after idempotent free, want 8", got)
	}
}

func TestClaimFirstFreeRange(t *testing.T) {
	s := NewNameSpace("t-cfr", 256)
	p := claimProc(0)
	// A τ-style block that straddles the word 1 / word 2 boundary.
	lo, hi := 100, 140
	got := make(map[int]bool)
	for {
		before := p.Steps()
		n := s.ClaimFirstFreeRange(p, lo, hi)
		if steps := p.Steps() - before; steps > 2 {
			t.Fatalf("range claim cost %d steps, want <= 2 words", steps)
		}
		if n == -1 {
			break
		}
		if n < lo || n >= hi {
			t.Fatalf("claimed %d outside [%d,%d)", n, lo, hi)
		}
		if got[n] {
			t.Fatalf("name %d claimed twice", n)
		}
		got[n] = true
	}
	if len(got) != hi-lo {
		t.Fatalf("claimed %d names, want %d", len(got), hi-lo)
	}
	// Nothing outside the range was touched.
	if c := s.CountClaimed(); c != hi-lo {
		t.Fatalf("space holds %d claims, want %d", c, hi-lo)
	}
	if s.Probe(lo-1) || s.Probe(hi) {
		t.Fatal("range claim leaked outside its bounds")
	}
}

func TestWordOpsOnPaddedLayout(t *testing.T) {
	s := NewNameSpacePadded("t-pad", 200)
	p := claimProc(0)
	seen := make(map[int]bool)
	for w := 0; w < s.Words(); w++ {
		for {
			n := s.ClaimFirstFree(p, w)
			if n == -1 {
				break
			}
			if seen[n] {
				t.Fatalf("name %d claimed twice", n)
			}
			seen[n] = true
		}
	}
	if len(seen) != 200 || s.CountClaimed() != 200 {
		t.Fatalf("claimed %d/%d, want 200", len(seen), s.CountClaimed())
	}
}

// TestClaimMaskConcurrentNoClobber is the race-storm half of the fuzz
// contract: goroutines batch-claim and batch-free disjoint interleaved masks
// of the same word; no claim may ever win a bit outside its mask and the
// final population must match the survivors exactly.
func TestClaimMaskConcurrentNoClobber(t *testing.T) {
	const gor = 8
	s := NewNameSpace("t-storm", 64)
	var wg sync.WaitGroup
	for g := 0; g < gor; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := claimProc(g)
			// Goroutine g owns the bits i with i % gor == g.
			mine := uint64(0)
			for i := g; i < 64; i += gor {
				mine |= 1 << i
			}
			for round := 0; round < 500; round++ {
				won := s.ClaimMask(p, 0, mine)
				if won&^mine != 0 {
					t.Errorf("g%d won foreign bits %x", g, won&^mine)
					return
				}
				if won != mine {
					t.Errorf("g%d won %x, want its whole free mask %x", g, won, mine)
					return
				}
				s.FreeMask(p, 0, won)
			}
		}(g)
	}
	wg.Wait()
	if got := s.CountClaimed(); got != 0 {
		t.Fatalf("%d bits held after storm", got)
	}
}
