package shm

import (
	"math/bits"
	"testing"

	"shmrename/internal/prng"
)

// FuzzClaimFreeMask fuzzes the word-mask claim/free arithmetic against a
// model: starting from an arbitrary pre-population, ClaimMask must win
// exactly the free subset of its mask, never touch foreign bits, and a
// claim→free round trip must restore the pre-claim popcount bit for bit.
func FuzzClaimFreeMask(f *testing.F) {
	f.Add(uint64(0), uint64(0xff), uint8(64), uint8(3))
	f.Add(^uint64(0), ^uint64(0), uint8(1), uint8(0))
	f.Add(uint64(0xdeadbeef), uint64(0xffff0000_0000ffff), uint8(70), uint8(7))
	f.Fuzz(func(t *testing.T, pre, mask uint64, sizeSeed, kSeed uint8) {
		size := int(sizeSeed)
		if size < 1 {
			size = 1
		}
		if size > 64 {
			size = 64
		}
		valid := ^uint64(0)
		if size < 64 {
			valid = 1<<uint(size) - 1
		}
		s := NewNameSpace("fuzz-mask", size)
		p := NewProc(0, prng.NewStream(1, 0), nil, 0)
		// Install the pre-population through the public claim op itself.
		if got := s.ClaimMask(p, 0, pre); got != pre&valid {
			t.Fatalf("pre-claim won %x, want %x", got, pre&valid)
		}
		before := s.CountClaimed()

		won := s.ClaimMask(p, 0, mask)
		if won&^(mask&valid) != 0 {
			t.Fatalf("won bits %x outside mask %x", won, mask&valid)
		}
		if want := mask & valid &^ (pre & valid); won != want {
			t.Fatalf("won %x, want the free mask subset %x", won, want)
		}
		if got := s.CountClaimed(); got != before+bits.OnesCount64(won) {
			t.Fatalf("popcount %d after claim, want %d", got, before+bits.OnesCount64(won))
		}
		// Round trip: freeing exactly the won bits restores the pre-state.
		s.FreeMask(p, 0, won)
		if got := s.CountClaimed(); got != before {
			t.Fatalf("popcount %d after round trip, want %d", got, before)
		}
		for i := 0; i < size; i++ {
			if s.Probe(i) != (pre&valid&(1<<i) != 0) {
				t.Fatalf("bit %d diverged from pre-state after round trip", i)
			}
		}

		// ClaimUpTo obeys its count bound and picks from the bottom.
		k := int(kSeed % 65)
		up := s.ClaimUpTo(p, 0, k)
		freeBefore := valid &^ (pre & valid)
		if bits.OnesCount64(up) != min(k, bits.OnesCount64(freeBefore)) {
			t.Fatalf("ClaimUpTo(%d) won %d bits of %d free", k, bits.OnesCount64(up), bits.OnesCount64(freeBefore))
		}
		if up&^freeBefore != 0 {
			t.Fatalf("ClaimUpTo won held bits %x", up&^freeBefore)
		}
		if up != lowestBits(freeBefore, k) {
			t.Fatalf("ClaimUpTo won %x, want lowest %d of %x", up, k, freeBefore)
		}
	})
}
