package shm

import (
	"sync"
	"testing"

	"shmrename/internal/prng"
)

// TestPackedTryClaimStorm is the word-packed bitmap's concurrency contract:
// many goroutines hammer TryClaim on a space whose names share words, and
// every name must be won exactly once. Run it under -race; the CAS-on-word
// loop must neither lose claims (a name nobody wins) nor double-grant one.
func TestPackedTryClaimStorm(t *testing.T) {
	for _, layout := range []struct {
		name string
		mk   func(string, int) *NameSpace
	}{
		{"packed", NewNameSpace},
		{"padded", NewNameSpacePadded},
	} {
		t.Run(layout.name, func(t *testing.T) {
			// 130 names: three words (two full, one partial) in the packed
			// layout, so word-sharing and the tail word are both exercised.
			const procs, names = 16, 130
			s := layout.mk("storm-"+layout.name, names)
			winners := make([][]int, procs)
			var wg sync.WaitGroup
			for pid := 0; pid < procs; pid++ {
				wg.Add(1)
				go func(pid int) {
					defer wg.Done()
					p := NewProc(pid, prng.NewStream(11, pid), nil, 0)
					// Each goroutine probes every name in a seeded order so
					// claims on the same word collide constantly.
					order := p.Rand().Perm(names)
					for _, i := range order {
						if s.TryClaim(p, i) {
							winners[pid] = append(winners[pid], i)
						}
					}
				}(pid)
			}
			wg.Wait()
			owner := make([]int, names)
			for i := range owner {
				owner[i] = -1
			}
			total := 0
			for pid, ws := range winners {
				for _, name := range ws {
					if prev := owner[name]; prev >= 0 {
						t.Fatalf("name %d won by both %d and %d", name, prev, pid)
					}
					owner[name] = pid
					total++
				}
			}
			if total != names {
				t.Fatalf("%d names claimed, want %d (a claim was lost)", total, names)
			}
			if got := s.CountClaimed(); got != names {
				t.Fatalf("CountClaimed = %d, want %d", got, names)
			}
		})
	}
}

// TestBitmapProbeCountConsistency checks the packed bitmap against the old
// bool-per-name semantics: after an arbitrary claim pattern, Probe answers
// per-name membership and CountClaimed equals the pattern's cardinality,
// across word boundaries and for both layouts.
func TestBitmapProbeCountConsistency(t *testing.T) {
	sizes := []int{1, 7, 63, 64, 65, 128, 130, 1000}
	for _, size := range sizes {
		for _, padded := range []bool{false, true} {
			mk := NewNameSpace
			if padded {
				mk = NewNameSpacePadded
			}
			s := mk("consist", size)
			p := NewProc(0, prng.New(uint64(size)), nil, 0)
			want := make(map[int]bool)
			r := p.Rand()
			for k := 0; k < 3*size; k++ {
				i := r.Intn(size)
				won := s.TryClaim(p, i)
				if won == want[i] {
					t.Fatalf("size %d padded %v: TryClaim(%d) = %v with prior claim %v",
						size, padded, i, won, want[i])
				}
				want[i] = true
			}
			for i := 0; i < size; i++ {
				if s.Probe(i) != want[i] {
					t.Fatalf("size %d padded %v: Probe(%d) = %v, want %v",
						size, padded, i, s.Probe(i), want[i])
				}
				if s.Claimed(p, i) != want[i] {
					t.Fatalf("size %d padded %v: Claimed(%d) mismatch", size, padded, i)
				}
			}
			if got := s.CountClaimed(); got != len(want) {
				t.Fatalf("size %d padded %v: CountClaimed = %d, want %d",
					size, padded, got, len(want))
			}
			s.Reset()
			if got := s.CountClaimed(); got != 0 {
				t.Fatalf("size %d padded %v: CountClaimed after Reset = %d", size, padded, got)
			}
		}
	}
}

// TestBitmapOutOfRangePanics pins the bounds contract: the packed layout
// must not let an out-of-range index silently claim tail-word slack bits.
func TestBitmapOutOfRangePanics(t *testing.T) {
	s := NewNameSpace("oob", 70) // two words, 58 slack bits in the tail
	p := NewProc(0, prng.New(1), nil, 0)
	for _, i := range []int{-1, 70, 127} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("TryClaim(%d) on size-70 space did not panic", i)
				}
			}()
			s.TryClaim(p, i)
		}()
	}
}

// TestBitmapMemoryFootprint pins the tentpole's space win: a 2^20-name
// packed space stores one bit per name (plus a constant), 8x below the old
// byte-per-name layout.
func TestBitmapMemoryFootprint(t *testing.T) {
	const m = 1 << 20
	s := NewNameSpace("foot", m)
	words := len(s.words)
	if want := m / 64; words != want {
		t.Fatalf("2^20-name packed space uses %d words, want %d", words, want)
	}
	// 8 bytes per word: 128 KiB total, vs 1 MiB for []atomic.Bool.
	if bytes := words * 8; bytes*4 > m {
		t.Fatalf("packed space uses %d bytes for %d names: less than 4x under byte-per-name", bytes, m)
	}
}
