// Package backfill provides the loose renamer applied to the overflow name
// space [n, m) in Corollaries 7 and 9 of the paper.
//
// The paper invokes the algorithm of Alistarh, Aspnes, Giakkoupis and
// Woelfel (PODC 2013, reference [8]) as a black box to name the o(n)
// processes that survive the almost-tight phase. Only its existence — a
// loose renamer on a constant-factor-slack space — matters for the
// composition; the stragglers are few and their name space has factor-2
// slack, so a uniform probe succeeds with probability at least 1/2 per
// step and the measured cost stays far below the Lemma 6/8 terms. This
// package supplies that substitute (documented in ALGORITHMS.md §4):
//
//   - Uniform: repeat { TAS a uniformly random name } until won. Expected
//     O(1) steps per process on a half-empty space; unbounded worst case.
//   - Sweep: deterministic linear scan from a random offset; at most m
//     steps; always succeeds when contenders < m.
//   - Hybrid (default): k uniform probes, then a sweep. Expected O(1)
//     steps with a deterministic O(m) cap.
package backfill

import (
	"fmt"

	"shmrename/internal/shm"
)

// Strategy acquires a free name in a claim space on behalf of a process.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// Acquire returns the index of a name it won, or -1 if it can prove
	// the space had no name left for it.
	Acquire(p *shm.Proc, space shm.ClaimSpace) int
}

// Uniform probes uniformly random names until one is won. On a space with
// free fraction f each probe succeeds with probability ≥ f, so the
// expected step count is ≤ 1/f; there is no deterministic bound, which is
// fine for w.h.p. analyses but tests should prefer Hybrid.
type Uniform struct{}

// Name implements Strategy.
func (Uniform) Name() string { return "uniform" }

// Acquire implements Strategy.
func (Uniform) Acquire(p *shm.Proc, space shm.ClaimSpace) int {
	m := space.Size()
	if m == 0 {
		return -1
	}
	r := p.Rand()
	for {
		i := r.Intn(m)
		if space.TryClaim(p, i) {
			return i
		}
	}
}

// Sweep test-and-sets every name once, starting from a uniformly random
// offset. A failed TryClaim proves that name permanently taken, so a full
// failed sweep proves the space was exhausted; with fewer contenders than
// names a sweep always succeeds. At most Size steps.
type Sweep struct{}

// Name implements Strategy.
func (Sweep) Name() string { return "sweep" }

// Acquire implements Strategy.
func (Sweep) Acquire(p *shm.Proc, space shm.ClaimSpace) int {
	m := space.Size()
	if m == 0 {
		return -1
	}
	start := p.Rand().Intn(m)
	for k := 0; k < m; k++ {
		i := start + k
		if i >= m {
			i -= m
		}
		if space.TryClaim(p, i) {
			return i
		}
	}
	return -1
}

// Hybrid runs Probes uniform probes and falls back to a sweep: the
// expected cost of Uniform with the deterministic guarantee of Sweep.
type Hybrid struct {
	// Probes is the number of uniform probes before sweeping; 0 means
	// DefaultProbes.
	Probes int
}

// DefaultProbes is the uniform-probe budget of a zero-valued Hybrid.
// On a half-empty space, 8 probes all fail with probability ≤ 2⁻⁸.
const DefaultProbes = 8

// Name implements Strategy.
func (h Hybrid) Name() string { return fmt.Sprintf("hybrid(%d)", h.probes()) }

func (h Hybrid) probes() int {
	if h.Probes <= 0 {
		return DefaultProbes
	}
	return h.Probes
}

// Acquire implements Strategy.
func (h Hybrid) Acquire(p *shm.Proc, space shm.ClaimSpace) int {
	m := space.Size()
	if m == 0 {
		return -1
	}
	r := p.Rand()
	for k := 0; k < h.probes(); k++ {
		i := r.Intn(m)
		if space.TryClaim(p, i) {
			return i
		}
	}
	return Sweep{}.Acquire(p, space)
}
