package backfill

import (
	"testing"

	"shmrename/internal/prng"
	"shmrename/internal/sched"
	"shmrename/internal/shm"
)

func newProc(id int) *shm.Proc {
	return shm.NewProc(id, prng.NewStream(1, id), nil, 1<<20)
}

func TestStrategiesAcquireDistinctNames(t *testing.T) {
	for _, strat := range []Strategy{Uniform{}, Sweep{}, Hybrid{}, Hybrid{Probes: 2}} {
		t.Run(strat.Name(), func(t *testing.T) {
			const k, m = 50, 100
			space := shm.NewNameSpace("over", m)
			seen := map[int]bool{}
			for pid := 0; pid < k; pid++ {
				i := strat.Acquire(newProc(pid), space)
				if i < 0 || i >= m {
					t.Fatalf("pid %d got invalid index %d", pid, i)
				}
				if seen[i] {
					t.Fatalf("index %d acquired twice", i)
				}
				seen[i] = true
			}
			if space.CountClaimed() != k {
				t.Fatalf("claimed %d, want %d", space.CountClaimed(), k)
			}
		})
	}
}

func TestSweepExhaustionReturnsNegative(t *testing.T) {
	space := shm.NewNameSpace("over", 4)
	p := newProc(0)
	for i := 0; i < 4; i++ {
		if got := (Sweep{}).Acquire(newProc(i+1), space); got < 0 {
			t.Fatalf("acquire %d failed with space non-full", i)
		}
	}
	if got := (Sweep{}).Acquire(p, space); got != -1 {
		t.Fatalf("full space returned %d, want -1", got)
	}
	if got := (Hybrid{Probes: 3}).Acquire(p, space); got != -1 {
		t.Fatalf("hybrid on full space returned %d, want -1", got)
	}
}

func TestEmptySpace(t *testing.T) {
	space := shm.NewNameSpace("over", 0)
	for _, strat := range []Strategy{Uniform{}, Sweep{}, Hybrid{}} {
		if got := strat.Acquire(newProc(0), space); got != -1 {
			t.Fatalf("%s on empty space returned %d", strat.Name(), got)
		}
	}
}

func TestSweepStepBound(t *testing.T) {
	const m = 64
	space := shm.NewNameSpace("over", m)
	// Pre-claim all but one slot.
	pre := newProc(99)
	for i := 0; i < m-1; i++ {
		space.TryClaim(pre, i)
	}
	p := newProc(0)
	if got := (Sweep{}).Acquire(p, space); got != m-1 {
		t.Fatalf("sweep found %d, want %d", got, m-1)
	}
	if p.Steps() > m {
		t.Fatalf("sweep took %d steps, bound is %d", p.Steps(), m)
	}
}

func TestUniformExpectedConstantStepsOnHalfEmptySpace(t *testing.T) {
	// k contenders on a 2k space: mean steps should be ~2, certainly < 6.
	const k = 200
	space := shm.NewNameSpace("over", 2*k)
	var total int64
	for pid := 0; pid < k; pid++ {
		p := newProc(pid)
		if (Uniform{}).Acquire(p, space) < 0 {
			t.Fatal("uniform failed on non-full space")
		}
		total += p.Steps()
	}
	if mean := float64(total) / k; mean > 6 {
		t.Fatalf("uniform mean steps %.2f on half-empty space", mean)
	}
}

func TestHybridUnderSimulatedAdversary(t *testing.T) {
	// All strategies must stay correct under the contention-seeking
	// adversary: k processes, 2k slots, everyone named, all distinct.
	const k = 32
	space := shm.NewNameSpace("over", 2*k)
	body := func(p *shm.Proc) int {
		return Hybrid{}.Acquire(p, space)
	}
	res := sched.Run(sched.Config{
		N: k, Seed: 3, Policy: sched.Collider(), Body: body,
		Spaces: map[string]shm.Probeable{"over": space},
	})
	if got := sched.CountStatus(res, sched.Named); got != k {
		t.Fatalf("%d named, want %d", got, k)
	}
	if err := sched.VerifyUnique(res, 2*k); err != nil {
		t.Fatal(err)
	}
}

func TestStrategyNames(t *testing.T) {
	if (Uniform{}).Name() != "uniform" || (Sweep{}).Name() != "sweep" {
		t.Fatal("strategy name mismatch")
	}
	if (Hybrid{}).Name() != "hybrid(8)" {
		t.Fatalf("hybrid default name = %s", Hybrid{}.Name())
	}
	if (Hybrid{Probes: 3}).Name() != "hybrid(3)" {
		t.Fatalf("hybrid(3) name = %s", Hybrid{Probes: 3}.Name())
	}
}
