package recovery

import (
	"math/bits"
	"testing"
	"time"

	"shmrename/internal/longlived"
	"shmrename/internal/prng"
	"shmrename/internal/sharded"
	"shmrename/internal/shm"
)

// leaseBackends maps each backend shape to a constructor of a
// lease-enabled arena over the given epoch source.
var leaseBackends = map[string]func(ep shm.EpochSource) longlived.Recoverable{
	"level": func(ep shm.EpochSource) longlived.Recoverable {
		return longlived.NewLevel(64, longlived.LevelConfig{Lease: &longlived.LeaseOpts{Epochs: ep}, MaxPasses: 4})
	},
	"level-word": func(ep shm.EpochSource) longlived.Recoverable {
		return longlived.NewLevel(64, longlived.LevelConfig{Lease: &longlived.LeaseOpts{Epochs: ep}, MaxPasses: 4, WordScan: true})
	},
	"tau": func(ep shm.EpochSource) longlived.Recoverable {
		return longlived.NewTau(64, longlived.TauConfig{Lease: &longlived.LeaseOpts{Epochs: ep}, MaxPasses: 4, SelfClocked: true})
	},
	"tau-word": func(ep shm.EpochSource) longlived.Recoverable {
		return longlived.NewTau(64, longlived.TauConfig{Lease: &longlived.LeaseOpts{Epochs: ep}, MaxPasses: 4, SelfClocked: true, WordScan: true})
	},
	"sharded": func(ep shm.EpochSource) longlived.Recoverable {
		return sharded.New(64, sharded.Config{Shards: 4, Lease: &longlived.LeaseOpts{Epochs: ep}, MaxPasses: 4})
	},
}

func acquireAll(t *testing.T, a longlived.Recoverable, p *shm.Proc, k int) []int {
	t.Helper()
	names := make([]int, 0, k)
	for range k {
		n := a.Acquire(p)
		if n < 0 {
			t.Fatalf("acquire %d/%d failed", len(names), k)
		}
		names = append(names, n)
	}
	return names
}

// TestSweepReclaimsDeadHolder is the core guarantee, per backend: a holder
// that stops heartbeating past the TTL loses its names back to the pool,
// and the full capacity is re-acquirable afterwards — which for the τ
// backend also proves the reclaim returned the counting-device bits.
func TestSweepReclaimsDeadHolder(t *testing.T) {
	for label, mk := range leaseBackends {
		t.Run(label, func(t *testing.T) {
			ep := shm.NewCounterEpochs(1)
			a := mk(ep)
			p := shm.NewProc(1, prng.NewStream(1, 1), nil, 0)
			acquireAll(t, a, p, a.Capacity())
			// The holder dies: no further steps, no heartbeats.
			ep.Advance(10)
			sw := NewSweeper(a, Config{TTL: 5, Epochs: ep})
			reaper := shm.NewProc(200, prng.NewStream(1, 200), nil, 0)
			res := sw.Sweep(reaper)
			if res.Reclaimed != a.Capacity() {
				t.Fatalf("reclaimed %d of %d", res.Reclaimed, a.Capacity())
			}
			if h := a.Held(); h != 0 {
				t.Fatalf("%d names still held after sweep", h)
			}
			// The pool must be whole again: full capacity from a new client.
			p2 := shm.NewProc(2, prng.NewStream(1, 2), nil, 0)
			acquireAll(t, a, p2, a.Capacity())
			if got := sw.Counters().Reclaimed; got != uint64(a.Capacity()) {
				t.Fatalf("counter reclaimed %d", got)
			}
		})
	}
}

// TestSweepSparesLiveHolder pins the no-lost-name side: a holder whose
// heartbeat lands before the sweep keeps every name even far past the TTL
// of its original stamps.
func TestSweepSparesLiveHolder(t *testing.T) {
	ep := shm.NewCounterEpochs(1)
	lease := &longlived.LeaseOpts{Epochs: ep, Holder: func(*shm.Proc) uint64 { return 7 }}
	a := longlived.NewLevel(64, longlived.LevelConfig{Lease: lease, MaxPasses: 4})
	p := shm.NewProc(1, prng.NewStream(1, 1), nil, 0)
	names := acquireAll(t, a, p, 8)
	ep.Advance(100)
	if got := longlived.HeartbeatHolder(a, p, 7, ep.Now()); got != len(names) {
		t.Fatalf("heartbeat renewed %d of %d", got, len(names))
	}
	sw := NewSweeper(a, Config{TTL: 5, Epochs: ep})
	if res := sw.Sweep(shm.NewProc(200, prng.NewStream(1, 200), nil, 0)); res.Reclaimed != 0 || res.Adopted != 0 {
		t.Fatalf("sweep disturbed a live holder: %+v", res)
	}
	for _, n := range names {
		if !a.IsHeld(n) {
			t.Fatalf("name %d lost despite heartbeat", n)
		}
	}
}

// TestSweepAliveOracle: a TTL-stale holder that the liveness oracle
// reports alive is spared; once the oracle flips, the names are reclaimed.
func TestSweepAliveOracle(t *testing.T) {
	ep := shm.NewCounterEpochs(1)
	lease := &longlived.LeaseOpts{Epochs: ep, Holder: func(*shm.Proc) uint64 { return 9 }}
	a := longlived.NewLevel(64, longlived.LevelConfig{Lease: lease, MaxPasses: 4})
	p := shm.NewProc(1, prng.NewStream(1, 1), nil, 0)
	acquireAll(t, a, p, 4)
	ep.Advance(100)
	alive := true
	sw := NewSweeper(a, Config{TTL: 5, Epochs: ep, Alive: func(h uint64) bool {
		if h != 9 {
			t.Errorf("oracle asked about holder %d", h)
		}
		return alive
	}})
	reaper := shm.NewProc(200, prng.NewStream(1, 200), nil, 0)
	if res := sw.Sweep(reaper); res.Reclaimed != 0 {
		t.Fatalf("reclaimed a holder the oracle reported alive: %+v", res)
	}
	alive = false
	if res := sw.Sweep(reaper); res.Reclaimed != 4 {
		t.Fatalf("reclaimed %d after oracle flip", res.Reclaimed)
	}
	if a.Held() != 0 {
		t.Fatal("names survived a dead-oracle sweep")
	}
}

// crashOnce arms the stamps' crash hook to fire one LeaseCrash at the
// given point, and returns a function running f with the panic recovered.
func crashOnce(st *shm.Stamps, point shm.CrashPoint) func(f func()) (crashed bool) {
	armed := true
	st.SetCrashHook(func(p *shm.Proc, pt shm.CrashPoint, name int) bool {
		if armed && pt == point {
			armed = false
			return true
		}
		return false
	})
	return func(f func()) (crashed bool) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(shm.LeaseCrash); !ok {
					panic(r)
				}
				crashed = true
			}
		}()
		f()
		return false
	}
}

// TestSweepAdoptsPrePublishCrash: a claimer that dies after winning the
// claim bit but before publishing its stamp leaves a bit with no owner.
// The sweep adopts it (grace period for in-flight publishers), then
// reclaims the orphan once stale.
func TestSweepAdoptsPrePublishCrash(t *testing.T) {
	ep := shm.NewCounterEpochs(1)
	lease := &longlived.LeaseOpts{Epochs: ep}
	a := longlived.NewLevel(64, longlived.LevelConfig{Lease: lease, MaxPasses: 4})
	st := a.LeaseDomains()[0].Stamps
	p := shm.NewProc(1, prng.NewStream(1, 1), nil, 0)
	run := crashOnce(st, shm.CrashPrePublish)
	if !run(func() { a.Acquire(p) }) {
		t.Fatal("crash hook did not fire")
	}
	if a.Held() != 1 {
		t.Fatalf("held %d after pre-publish crash, want the orphaned bit", a.Held())
	}
	sw := NewSweeper(a, Config{TTL: 5, Epochs: ep})
	reaper := shm.NewProc(200, prng.NewStream(1, 200), nil, 0)
	if res := sw.Sweep(reaper); res.Adopted != 1 || res.Reclaimed != 0 {
		t.Fatalf("first sweep %+v, want one adoption", res)
	}
	if a.Held() != 1 {
		t.Fatal("adoption must not free the name yet")
	}
	ep.Advance(10)
	if res := sw.Sweep(reaper); res.Reclaimed != 1 {
		t.Fatalf("second sweep %+v, want the orphan reclaimed", res)
	}
	if a.Held() != 0 {
		t.Fatal("orphan not freed")
	}
	acquireAll(t, a, shm.NewProc(2, prng.NewStream(1, 2), nil, 0), 64)
}

// TestSweepMidReleaseCrash: a holder that dies after retiring its stamp
// but before clearing the claim bit leaves the same orphan shape; the
// adopt-then-reclaim path recovers it.
func TestSweepMidReleaseCrash(t *testing.T) {
	ep := shm.NewCounterEpochs(1)
	lease := &longlived.LeaseOpts{Epochs: ep}
	a := longlived.NewLevel(64, longlived.LevelConfig{Lease: lease, MaxPasses: 4})
	st := a.LeaseDomains()[0].Stamps
	p := shm.NewProc(1, prng.NewStream(1, 1), nil, 0)
	n := a.Acquire(p)
	if n < 0 {
		t.Fatal("acquire")
	}
	run := crashOnce(st, shm.CrashMidRelease)
	if !run(func() { a.Release(p, n) }) {
		t.Fatal("crash hook did not fire")
	}
	if !a.IsHeld(n) || st.Load(n) != 0 {
		t.Fatalf("mid-release crash shape wrong: held=%v stamp=%#x", a.IsHeld(n), st.Load(n))
	}
	sw := NewSweeper(a, Config{TTL: 5, Epochs: ep})
	reaper := shm.NewProc(200, prng.NewStream(1, 200), nil, 0)
	if res := sw.Sweep(reaper); res.Adopted != 1 {
		t.Fatalf("sweep %+v, want adoption", res)
	}
	ep.Advance(10)
	if res := sw.Sweep(reaper); res.Reclaimed != 1 {
		t.Fatalf("sweep %+v, want reclaim", res)
	}
	if a.Held() != 0 {
		t.Fatal("name not recovered")
	}
}

// TestSweepResumesCrashedReaper: a suspect mark left by a reaper that died
// mid-reclaim is resumed — the name re-cleared and the mark retired — once
// the mark itself goes stale.
func TestSweepResumesCrashedReaper(t *testing.T) {
	ep := shm.NewCounterEpochs(1)
	lease := &longlived.LeaseOpts{Epochs: ep}
	a := longlived.NewLevel(64, longlived.LevelConfig{Lease: lease, MaxPasses: 4})
	d := a.LeaseDomains()[0]
	p := shm.NewProc(1, prng.NewStream(1, 1), nil, 0)
	n := a.Acquire(p)
	// A reaper observed the stamp, marked it suspect, and crashed before
	// clearing the name.
	if !d.Stamps.BeginReclaim(n, d.Stamps.Load(n), ep.Now()) {
		t.Fatal("plant suspect")
	}
	ep.Advance(10)
	sw := NewSweeper(a, Config{TTL: 5, Epochs: ep})
	res := sw.Sweep(shm.NewProc(200, prng.NewStream(1, 200), nil, 0))
	if res.Resumed != 1 {
		t.Fatalf("sweep %+v, want one resumed reclaim", res)
	}
	if a.Held() != 0 {
		t.Fatal("resumed reclaim did not free the name")
	}
	if h, _ := shm.UnpackStamp(d.Stamps.Load(n)); h != shm.HolderTomb {
		t.Fatalf("suspect not retired: holder %d", h)
	}
}

// tauHeldBits counts the set request bits across every counting device —
// the τ backend's admission budget currently spent.
func tauHeldBits(a *longlived.TauArena, p *shm.Proc) int {
	c := 0
	for d := 0; d < a.NumDevices(); d++ {
		c += bits.OnesCount64(a.Device(d).ReadRequests(p))
	}
	return c
}

// TestTauStaleReleaseSparesRegrantedBit pins the τ backend's release/reclaim
// race: holder A's name is reclaimed (lease expired) and re-granted to B,
// and only then does A's long-delayed Release run. The stale release must
// not free B's counting-device bit — that would let the device admit more
// than τ holders, breaking claimName's termination argument — and B's own
// releases must still drain every bit (nothing double-released, nothing
// leaked).
func TestTauStaleReleaseSparesRegrantedBit(t *testing.T) {
	ep := shm.NewCounterEpochs(1)
	// Capacity 1: one device (width 8, τ 4) fronting names 0..3, so B's
	// re-acquisition of the block necessarily re-grants A's old name.
	a := longlived.NewTau(1, longlived.TauConfig{Lease: &longlived.LeaseOpts{Epochs: ep}, MaxPasses: 4, SelfClocked: true})
	pA := shm.NewProc(1, prng.NewStream(1, 1), nil, 0)
	nA := a.Acquire(pA)
	if nA < 0 {
		t.Fatal("acquire")
	}
	// A goes silent past the TTL; the sweep reclaims its name and bit.
	ep.Advance(10)
	sw := NewSweeper(a, Config{TTL: 5, Epochs: ep})
	reaper := shm.NewProc(200, prng.NewStream(1, 200), nil, 0)
	if res := sw.Sweep(reaper); res.Reclaimed != 1 {
		t.Fatalf("sweep %+v, want A's name reclaimed", res)
	}
	// B fills the whole block — τ names backed by τ device bits.
	pB := shm.NewProc(2, prng.NewStream(1, 2), nil, 0)
	names := acquireAll(t, a, pB, a.Tau())
	if !a.IsHeld(nA) {
		t.Fatalf("name %d not re-granted with the full block held", nA)
	}
	// The stale holder finally runs its release.
	a.Release(pA, nA)
	if !a.IsHeld(nA) {
		t.Fatal("stale release freed the re-granted name")
	}
	if got := tauHeldBits(a, reaper); got != a.Tau() {
		t.Fatalf("device bits %d after stale release, want %d (a freed bit admits >τ holders)", got, a.Tau())
	}
	// B's releases drain everything: each bit returned exactly once.
	for _, n := range names {
		a.Release(pB, n)
	}
	if h := a.Held(); h != 0 {
		t.Fatalf("%d names held after drain", h)
	}
	if got := tauHeldBits(a, reaper); got != 0 {
		t.Fatalf("%d device bits leaked after drain", got)
	}
}

// TestDelayedSweeperCannotResumeReclaimedSuspect pins the suspect-resume
// exclusivity: a sweeper that observed a stale suspect mark and then
// stalled — while another sweeper resumed the reclaim and a claimant
// re-acquired the name — must lose the resume CAS and touch nothing. (The
// sweep routes suspect resumption through the same two-phase reclaim as
// every other case, so acting always requires winning the CAS on the
// observed stamp.)
func TestDelayedSweeperCannotResumeReclaimedSuspect(t *testing.T) {
	ep := shm.NewCounterEpochs(1)
	a := longlived.NewTau(1, longlived.TauConfig{Lease: &longlived.LeaseOpts{Epochs: ep}, MaxPasses: 4, SelfClocked: true})
	d := a.LeaseDomains()[0]
	pA := shm.NewProc(1, prng.NewStream(1, 1), nil, 0)
	nA := a.Acquire(pA)
	// A reaper marked the stamp suspect and crashed before clearing.
	if !d.Stamps.BeginReclaim(nA, d.Stamps.Load(nA), ep.Now()) {
		t.Fatal("plant suspect")
	}
	ep.Advance(10)
	// The delayed sweeper loads the stale mark... and stalls.
	obs := d.Stamps.Load(nA)
	stale := ep.Now()
	// Meanwhile a second sweeper resumes the reclaim and B re-acquires the
	// whole block, A's old name included.
	sw := NewSweeper(a, Config{TTL: 5, Epochs: ep})
	if res := sw.Sweep(shm.NewProc(200, prng.NewStream(1, 200), nil, 0)); res.Resumed != 1 {
		t.Fatalf("resume sweep %+v, want one resumed reclaim", res)
	}
	pB := shm.NewProc(2, prng.NewStream(1, 2), nil, 0)
	acquireAll(t, a, pB, a.Tau())
	after := d.Stamps.Load(nA)
	reaper := shm.NewProc(201, prng.NewStream(1, 201), nil, 0)
	bitsHeld := tauHeldBits(a, reaper)
	// The delayed sweeper wakes and acts on its stale observation.
	if sw.reclaim(reaper, d, nA, obs, stale) {
		t.Fatal("delayed sweeper reclaimed a re-granted name")
	}
	if !a.IsHeld(nA) {
		t.Fatal("live holder lost its claim bit to a delayed sweeper")
	}
	if got := d.Stamps.Load(nA); got != after {
		t.Fatalf("stamp moved %#x -> %#x under a lost resume", after, got)
	}
	if got := tauHeldBits(a, reaper); got != bitsHeld {
		t.Fatalf("device bits %d -> %d under a lost resume", bitsHeld, got)
	}
}

// TestShardedLeaseDomains pins the frontend's domain geometry: one domain
// per shard, bases ascending by the shard stride, jointly tiling the
// arena's name bound.
func TestShardedLeaseDomains(t *testing.T) {
	ep := shm.NewCounterEpochs(1)
	lease := &longlived.LeaseOpts{Epochs: ep}
	a := sharded.New(64, sharded.Config{Shards: 4, Lease: lease, MaxPasses: 4})
	ds := a.LeaseDomains()
	if len(ds) != 4 {
		t.Fatalf("%d domains, want 4", len(ds))
	}
	covered := 0
	for s, d := range ds {
		if d.Base != a.ShardBase(s) {
			t.Fatalf("domain %d base %d, want shard base %d", s, d.Base, a.ShardBase(s))
		}
		covered += d.Stamps.Size()
	}
	if covered != a.NameBound() {
		t.Fatalf("domains cover %d of %d names", covered, a.NameBound())
	}
}

// TestReaperBackground runs the background reaper against a native arena:
// a holder dies, the epoch clock moves past the TTL, and the reaper frees
// the names within a bounded wait without any explicit Sweep call.
func TestReaperBackground(t *testing.T) {
	ep := shm.NewCounterEpochs(1)
	lease := &longlived.LeaseOpts{Epochs: ep}
	a := longlived.NewLevel(64, longlived.LevelConfig{Lease: lease, MaxPasses: 4})
	p := shm.NewProc(1, prng.NewStream(1, 1), nil, 0)
	acquireAll(t, a, p, 16)
	sw := NewSweeper(a, Config{TTL: 5, Epochs: ep})
	stop := sw.Reaper(shm.NewProc(200, prng.NewStream(1, 200), nil, 0), time.Millisecond)
	defer stop()
	ep.Advance(10)
	deadline := time.Now().Add(5 * time.Second)
	for a.Held() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("reaper left %d names held", a.Held())
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
	if got := sw.Counters().Reclaimed; got != 16 {
		t.Fatalf("counter reclaimed %d", got)
	}
}
