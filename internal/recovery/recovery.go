// Package recovery implements the crash-recovery sweep over lease-stamped
// renaming arenas: the component that turns the lease layer's per-name
// holder/epoch stamps (shm.Stamps, threaded through the longlived backends
// by longlived.LeaseOpts) into an actual liveness guarantee — a name whose
// holder crashed is returned to the pool, and a name whose holder is alive
// is never taken away.
//
// # Model
//
// The paper's renaming algorithms assume processes may crash at any step;
// a crashed process simply stops taking steps. In the one-shot setting a
// crash only wastes the crashed process's own name. In the long-lived
// arena a crash is worse: the holder's name (and, for the τ backend, its
// counting-device bit) stays claimed forever, permanently shrinking the
// arena's capacity. The lease layer restores the crash-prone model's
// utility: every claim publishes a stamp carrying the holder's identity
// and a lease epoch, holders renew their stamps by heartbeating, and the
// sweep implemented here reclaims names whose stamps went unrenewed past a
// time-to-live.
//
// # Two-phase reclaim
//
// The sweep never frees a name in one step. It first CASes the exact stamp
// it observed to a suspect mark (shm.Stamps.BeginReclaim) — a holder that
// heartbeated concurrently changed the stamp's epoch, so the CAS fails and
// the live holder keeps the name unconditionally. Only after winning the
// suspect mark does the sweep clear the claim bit and backend side state
// (longlived.LeaseDomain.Reclaim) and retire the mark to a tombstone
// (FinishReclaim), making the name claimable again. The suspect mark also
// blocks concurrent publishers for the duration, so a reclaim in progress
// can never race a new claim into a double grant.
//
// # Sweep cases
//
// For each name the sweep reads the stamp and the claim bit and acts on
// the pair:
//
//   - claim bit set, stamp zero: a holder crashed between winning the bit
//     and publishing its stamp (or mid-release, after retiring the stamp
//     but before clearing the bit). The sweep adopts the name — CAS the
//     zero stamp to an orphan mark dated now — and reclaims the orphan on
//     a later pass once it goes stale. The grace period protects an
//     in-flight publisher: its publish CAS succeeds over the orphan mark
//     and the holder keeps the name.
//   - stale suspect mark: a reaper crashed mid-reclaim. The sweep resumes
//     it two-phase like any reclaim — CAS the stale mark to a fresh
//     suspect epoch, and only the winner re-clears the name and retires
//     the mark (concurrent sweepers must not all act on the same
//     observation).
//   - stale tombstone under a set claim bit: a claimer won the bit while a
//     reclaim was in flight, saw the suspect mark, and walked away (the
//     claim engine's rule: never free a bit you cannot stamp). The sweep
//     reclaims the walked-away bit.
//   - stale client stamp: the crash case proper — reclaim, two-phase. A
//     configured liveness oracle (Config.Alive) can veto: a holder that is
//     verifiably alive but slow to heartbeat is spared.
//
// Every stamp transition is a CAS against the observed value, so any
// number of concurrent sweepers — plus the background reaper and crashing
// holders — reach a consistent outcome: at most one party wins each
// transition.
package recovery

import (
	"sync"
	"sync/atomic"
	"time"

	"shmrename/internal/longlived"
	"shmrename/internal/shm"
)

// Config parameterizes a Sweeper.
type Config struct {
	// TTL is the lease time-to-live in epochs: a stamp whose epoch is more
	// than TTL behind the current epoch is stale. With TTL 0 a lease goes
	// stale one epoch after its last renewal.
	TTL uint64
	// Epochs is the lease clock, shared with the arena's holders (the same
	// source passed to longlived.LeaseOpts).
	Epochs shm.EpochSource
	// Alive, when non-nil, is the liveness oracle: a TTL-stale holder that
	// Alive reports alive is spared. The mmap-backed cross-process arena
	// uses kill(pid, 0); in-process arenas usually leave it nil and rely on
	// heartbeats alone.
	Alive func(holder uint64) bool
}

// Result reports what one sweep pass did.
type Result struct {
	// Scanned is the number of stamp slots examined.
	Scanned int
	// Adopted counts names whose set claim bit had no stamp (crashed
	// pre-publish or mid-release) and were marked orphaned this pass.
	Adopted int
	// Reclaimed counts names returned to the pool this pass: stale client
	// stamps, stale orphans, and walked-away bits under stale tombstones.
	Reclaimed int
	// Resumed counts reclaims left half-done by a crashed reaper and
	// completed this pass.
	Resumed int
	// Dropped counts residual stamps cleared from already-free names.
	Dropped int
}

// Sweeper runs recovery sweeps over one lease-enabled arena. All methods
// are safe for concurrent use; multiple sweepers over the same arena are
// safe too (every transition is a CAS, at most one wins).
type Sweeper struct {
	arena longlived.Recoverable
	cfg   Config

	sweeps    atomic.Uint64
	adopted   atomic.Uint64
	reclaimed atomic.Uint64
	dropped   atomic.Uint64
}

// Counters are the sweeper's cumulative totals across all passes.
type Counters struct {
	Sweeps    uint64
	Adopted   uint64
	Reclaimed uint64 // includes resumed reclaims
	Dropped   uint64
}

// NewSweeper builds a sweeper over a lease-enabled arena.
func NewSweeper(a longlived.Recoverable, cfg Config) *Sweeper {
	if cfg.Epochs == nil {
		panic("recovery: Config.Epochs is required")
	}
	return &Sweeper{arena: a, cfg: cfg}
}

// Counters returns the cumulative totals.
func (s *Sweeper) Counters() Counters {
	return Counters{
		Sweeps:    s.sweeps.Load(),
		Adopted:   s.adopted.Load(),
		Reclaimed: s.reclaimed.Load(),
		Dropped:   s.dropped.Load(),
	}
}

// Sweep runs one full recovery pass over every lease domain of the arena,
// acting on each name as described in the package comment. The proc is
// charged for the claim-bit clears of won reclaims (the backend Reclaim
// callbacks); stamp transitions are reaper-side maintenance and cost no
// steps.
func (s *Sweeper) Sweep(p *shm.Proc) Result {
	now := s.cfg.Epochs.Now()
	var res Result
	for _, d := range s.arena.LeaseDomains() {
		for i := 0; i < d.Stamps.Size(); i++ {
			res.Scanned++
			s.sweepOne(p, d, i, now, &res)
		}
	}
	s.sweeps.Add(1)
	s.adopted.Add(uint64(res.Adopted))
	s.reclaimed.Add(uint64(res.Reclaimed + res.Resumed))
	s.dropped.Add(uint64(res.Dropped))
	return res
}

func (s *Sweeper) sweepOne(p *shm.Proc, d longlived.LeaseDomain, i int, now uint64, res *Result) {
	obs := d.Stamps.Load(i)
	held := d.IsHeld(i)
	h, e := shm.UnpackStamp(obs)
	switch {
	case obs == 0:
		if held && d.Stamps.Adopt(i, now) {
			res.Adopted++
		}
	case h == shm.HolderQuarantine:
		// The integrity scrubber withdrew the name after detecting
		// irreparable word damage. The quarantine is deliberate and
		// permanent: it never goes stale and is never reclaimed, or the
		// damaged word would re-enter circulation.
		return
	case h == shm.HolderSuspect:
		// A reaper crashed between BeginReclaim and FinishReclaim. Resuming
		// goes through the same two-phase reclaim: CAS the stale mark to a
		// fresh suspect epoch first, and only the winner re-clears the name.
		// Acting without the CAS would let a sweeper delayed between this
		// load and the act free a name that another sweeper meanwhile
		// resumed, tombstoned, and a claimant re-claimed.
		if shm.StampStale(now, e, s.cfg.TTL) && s.reclaim(p, d, i, obs, now) {
			res.Resumed++
		}
	case h == shm.HolderTomb:
		if !shm.StampStale(now, e, s.cfg.TTL) {
			return
		}
		if held {
			// Walked-away bit: a claimer lost the publish race and left the
			// bit set (see the claim engine's walk-away rule).
			if s.reclaim(p, d, i, obs, now) {
				res.Reclaimed++
			}
		} else if d.Stamps.Drop(i, obs) {
			res.Dropped++
		}
	case h == shm.HolderOrphan:
		if !shm.StampStale(now, e, s.cfg.TTL) {
			return
		}
		if !held {
			if d.Stamps.Drop(i, obs) {
				res.Dropped++
			}
			return
		}
		if s.reclaim(p, d, i, obs, now) {
			res.Reclaimed++
		}
	default: // client holder
		if !shm.StampStale(now, e, s.cfg.TTL) {
			return
		}
		if s.cfg.Alive != nil && s.cfg.Alive(h) {
			return
		}
		if !held {
			if d.Stamps.Drop(i, obs) {
				res.Dropped++
			}
			return
		}
		if s.reclaim(p, d, i, obs, now) {
			res.Reclaimed++
		}
	}
}

// reclaim runs the two-phase reclaim of domain-local name i whose stamp
// was observed as obs. A false return means the CAS on the observed stamp
// lost — a heartbeat renewed the lease, a racing sweeper got there first,
// or a publisher claimed a claimable stamp — and nothing was touched.
func (s *Sweeper) reclaim(p *shm.Proc, d longlived.LeaseDomain, i int, obs, now uint64) bool {
	if !d.Stamps.BeginReclaim(i, obs, now) {
		return false
	}
	d.Reclaim(p, i)
	d.Stamps.FinishReclaim(i, now, now)
	return true
}

// Reaper starts a background goroutine sweeping every interval with the
// given proc until the returned stop function is called. Stop is
// idempotent and waits for an in-flight sweep to finish before returning.
func (s *Sweeper) Reaper(p *shm.Proc, interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				s.Sweep(p)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}
