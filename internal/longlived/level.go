package longlived

import (
	"fmt"
	"math/bits"
	"sort"

	"shmrename/internal/shm"
)

// LevelConfig parameterizes a LevelArena.
type LevelConfig struct {
	// Probes is the number of random TAS probes per non-backstop level
	// before falling through to the next. Default 4.
	Probes int
	// Base is the size of the smallest level. Default 64 (one packed
	// bitmap word).
	Base int
	// MaxPasses bounds full Acquire passes before reporting the arena
	// full; 0 means unlimited (simulated runs rely on the scheduler's step
	// budget instead).
	MaxPasses int
	// WordScan enables the word-granular claim engine: probes target
	// bitmap words instead of single bits (one snapshot-scan-CAS claims the
	// first free name of 64 in one step), the backstop scans words instead
	// of names, saturation hints redirect probes away from words observed
	// full, and batch acquires claim up to 64 names per step. Off by
	// default: the per-bit probe path is the deterministic-mode contract
	// whose golden fingerprints (and the paper's per-TAS cost model) stay
	// bit-identical across refactors.
	WordScan bool
	// Padded lays level bitmaps out one word per cache line for native
	// runs on real cores; leave false for simulated runs.
	Padded bool
	// Lease enables the crash-recovery stamp layer (see LeaseOpts): every
	// claim publishes a holder/epoch lease stamp and every release retires
	// it, at one extra step per name each way, so a recovery sweep can
	// reclaim names whose holder crashed. Nil (the default) costs nothing.
	Lease *LeaseOpts
	// Label prefixes the operation-space labels. Default "arena".
	Label string
}

func (c *LevelConfig) fill() {
	if c.Probes <= 0 {
		c.Probes = 4
	}
	if c.Base <= 0 {
		c.Base = 64
	}
	if c.Label == "" {
		c.Label = "arena"
	}
}

// LevelArena is the LevelArray-style long-lived arena: levels of
// geometrically growing word-packed TAS bitmaps, with level 0 the smallest
// and the final backstop level sized to the full capacity. Acquire probes
// each level a few times at random and falls through; since at most
// capacity-1 other clients hold slots, the backstop always has a free slot,
// and a deterministic scan of it is the termination guarantee. Release
// clears the slot's bit (shm.OpClear), making the name immediately
// reusable.
//
// Names are numbered level 0 first, so low occupancy concentrates issued
// names near 0: with k concurrent holders the random probes w.h.p. place
// everyone within the first O(log k) levels, whose sizes sum to O(k) — the
// long-lived analogue of adaptive tight renaming.
type LevelArena struct {
	cfg    LevelConfig
	levels []*shm.NameSpace
	base   []int // base[i] = first global name of level i
	bound  int
	cap    int
	// stamps is the lease-stamp array of the crash-recovery layer, indexed
	// by global name across all levels; nil when LevelConfig.Lease is off.
	stamps *shm.Stamps
}

var _ Arena = (*LevelArena)(nil)
var _ Recoverable = (*LevelArena)(nil)

// NewLevel builds a level arena guaranteeing capacity concurrent holders.
func NewLevel(capacity int, cfg LevelConfig) *LevelArena {
	if capacity < 1 {
		panic("longlived: capacity must be >= 1")
	}
	cfg.fill()
	mkSpace := shm.NewNameSpace
	if cfg.Padded {
		mkSpace = shm.NewNameSpacePadded
	}
	a := &LevelArena{cfg: cfg, cap: capacity}
	// Geometric ladder: Base, 2·Base, 4·Base, ... strictly below capacity,
	// then the capacity-sized backstop.
	for size := cfg.Base; size < capacity; size *= 2 {
		a.addLevel(mkSpace, size)
	}
	a.addLevel(mkSpace, capacity)
	if cfg.Lease.enabled() {
		a.stamps = shm.NewStamps(cfg.Label+":lease", a.bound)
		for li, lvl := range a.levels {
			lvl.AttachStamps(a.stamps, a.base[li])
		}
	}
	return a
}

func (a *LevelArena) addLevel(mk func(string, int) *shm.NameSpace, size int) {
	label := fmt.Sprintf("%s:L%d", a.cfg.Label, len(a.levels))
	a.levels = append(a.levels, mk(label, size))
	a.base = append(a.base, a.bound)
	a.bound += size
}

// Label implements Arena.
func (a *LevelArena) Label() string {
	scan := "bit"
	if a.cfg.WordScan {
		scan = "word"
	}
	return fmt.Sprintf("level-array(levels=%d,probes=%d,scan=%s)", len(a.levels), a.cfg.Probes, scan)
}

// Capacity implements Arena.
func (a *LevelArena) Capacity() int { return a.cap }

// NameBound implements Arena.
func (a *LevelArena) NameBound() int { return a.bound }

// Levels returns the number of levels (diagnostics).
func (a *LevelArena) Levels() int { return len(a.levels) }

// ResidentBytes implements registry.Footprint: the full ladder's bitmap,
// saturation-hint, and lease-stamp storage — constant for this fixed
// arena, and the peak-provisioned baseline BENCH_6.json compares the
// elastic arena's proportional footprint against.
func (a *LevelArena) ResidentBytes() int64 {
	var b int64
	for _, s := range a.levels {
		b += int64(s.FootprintBytes())
	}
	if a.stamps != nil {
		b += int64(a.stamps.Size()) * 8
	}
	return b
}

// Leased reports whether the crash-recovery lease layer is on.
func (a *LevelArena) Leased() bool { return a.stamps != nil }

// leaseStamp returns the proc's current lease stamp, or 0 with leases off.
// Computed once per operation: one epoch read covers the whole pass.
func (a *LevelArena) leaseStamp(p *shm.Proc) uint64 {
	if a.stamps == nil {
		return 0
	}
	return a.cfg.Lease.stamp(p)
}

// tryClaim is TryClaim or its stamped variant, per the lease layer.
func (a *LevelArena) tryClaim(p *shm.Proc, lvl *shm.NameSpace, i int, stamp uint64) bool {
	if stamp == 0 {
		return lvl.TryClaim(p, i)
	}
	return lvl.TryClaimStamped(p, i, stamp)
}

// claimFirstFree is ClaimFirstFree or its stamped variant.
func (a *LevelArena) claimFirstFree(p *shm.Proc, lvl *shm.NameSpace, w int, stamp uint64) int {
	if stamp == 0 {
		return lvl.ClaimFirstFree(p, w)
	}
	return lvl.ClaimFirstFreeStamped(p, w, stamp)
}

// claimUpTo is ClaimUpTo or its stamped variant.
func (a *LevelArena) claimUpTo(p *shm.Proc, lvl *shm.NameSpace, w, k int, stamp uint64) uint64 {
	if stamp == 0 {
		return lvl.ClaimUpTo(p, w, k)
	}
	return lvl.ClaimUpToStamped(p, w, k, stamp)
}

// Acquire implements Arena: random probes down the ladder, then a
// deterministic backstop scan; repeat up to MaxPasses passes. With WordScan
// the probes and the backstop run word-granular (see acquireWord).
func (a *LevelArena) Acquire(p *shm.Proc) int {
	if a.cfg.WordScan {
		return a.acquireWord(p)
	}
	stamp := a.leaseStamp(p)
	r := p.Rand()
	backstop := len(a.levels) - 1
	for pass := 0; a.cfg.MaxPasses == 0 || pass < a.cfg.MaxPasses; pass++ {
		for li, lvl := range a.levels {
			for t := 0; t < a.cfg.Probes; t++ {
				i := r.Intn(lvl.Size())
				if a.tryClaim(p, lvl, i, stamp) {
					return a.base[li] + i
				}
			}
		}
		// Backstop scan: read first, TAS only slots that looked free. A
		// scan that loses every race means other clients made progress;
		// the next pass retries from the top of the ladder.
		lvl := a.levels[backstop]
		for i := 0; i < lvl.Size(); i++ {
			if lvl.Claimed(p, i) {
				continue
			}
			if a.tryClaim(p, lvl, i, stamp) {
				return a.base[backstop] + i
			}
		}
	}
	return -1
}

// acquireWord is the word-granular Acquire: random probes pick a bitmap
// word per attempt — skipping words hinted saturated, at no step cost —
// and ClaimFirstFree turns the whole word into one snapshot-scan-CAS step.
// The backstop scans words, not names: capacity/64 steps instead of
// 2×capacity. Hints only redirect probes; the backstop reads every word
// itself, so a stale hint (a release racing the claim that set it) can
// never starve the termination guarantee.
func (a *LevelArena) acquireWord(p *shm.Proc) int {
	stamp := a.leaseStamp(p)
	r := p.Rand()
	backstop := len(a.levels) - 1
	for pass := 0; a.cfg.MaxPasses == 0 || pass < a.cfg.MaxPasses; pass++ {
		for li, lvl := range a.levels {
			words := lvl.Words()
			for t := 0; t < a.cfg.Probes; t++ {
				w := r.Intn(words)
				if lvl.WordSaturated(w) {
					continue
				}
				if n := a.claimFirstFree(p, lvl, w, stamp); n >= 0 {
					return a.base[li] + n
				}
			}
		}
		lvl := a.levels[backstop]
		for w := 0; w < lvl.Words(); w++ {
			if n := a.claimFirstFree(p, lvl, w, stamp); n >= 0 {
				return a.base[backstop] + n
			}
		}
	}
	return -1
}

// AcquireN implements Arena. With WordScan the batch is served by
// word-granular bulk claims — ClaimUpTo takes up to 64 free names from a
// probed word in one CAS step — walking the ladder top-down so batches
// stay concentrated in the low levels; the word backstop completes the
// remainder. Without WordScan it degenerates to k independent Acquires
// (the per-bit probe path has no cheaper primitive).
func (a *LevelArena) AcquireN(p *shm.Proc, k int, out []int) []int {
	if !a.cfg.WordScan {
		for ; k > 0; k-- {
			n := a.Acquire(p)
			if n < 0 {
				break
			}
			out = append(out, n)
		}
		return out
	}
	stamp := a.leaseStamp(p)
	r := p.Rand()
	backstop := len(a.levels) - 1
	for pass := 0; k > 0 && (a.cfg.MaxPasses == 0 || pass < a.cfg.MaxPasses); pass++ {
		for li, lvl := range a.levels {
			words := lvl.Words()
			for t := 0; k > 0 && t < a.cfg.Probes; t++ {
				w := r.Intn(words)
				if lvl.WordSaturated(w) {
					continue
				}
				out, k = appendMask(out, a.base[li]+w<<6, a.claimUpTo(p, lvl, w, k, stamp), k)
			}
		}
		lvl := a.levels[backstop]
		for w := 0; k > 0 && w < lvl.Words(); w++ {
			out, k = appendMask(out, a.base[backstop]+w<<6, a.claimUpTo(p, lvl, w, k, stamp), k)
		}
	}
	return out
}

// appendMask appends the names encoded by a won word mask (global name =
// wordBase + bit position) and returns the updated slice and remainder.
func appendMask(out []int, wordBase int, won uint64, k int) ([]int, int) {
	for won != 0 {
		b := bits.TrailingZeros64(won)
		won &= won - 1
		out = append(out, wordBase+b)
		k--
	}
	return out, k
}

// locate returns the level holding the global name and its local index.
func (a *LevelArena) locate(name int) (int, int) {
	if name < 0 || name >= a.bound {
		panic(fmt.Sprintf("longlived: name %d outside arena bound %d", name, a.bound))
	}
	li := sort.Search(len(a.base), func(i int) bool { return a.base[i] > name }) - 1
	return li, name - a.base[li]
}

// Release implements Arena. With leases on, the release retires the stamp
// first (CAS mine→0) and only then clears the claim bit; a stamp the
// recovery sweep already reclaimed means the name is no longer ours, and
// the bit is left alone.
func (a *LevelArena) Release(p *shm.Proc, name int) {
	li, i := a.locate(name)
	if a.stamps != nil {
		a.levels[li].FreeStamped(p, i, a.cfg.Lease.holder(p))
		return
	}
	a.levels[li].Free(p, i)
}

// ReleaseN implements Arena: names sharing a bitmap word of a level are
// coalesced into one FreeMask step, so a batch of b word-adjacent names
// costs ⌈b/64⌉ clearing steps instead of b. The input slice is not
// modified; grouping needs sorted names, so an unsorted input is copied
// (already-sorted batches — e.g. the per-shard groups the sharded
// frontend hands down — are grouped in place, no allocation).
func (a *LevelArena) ReleaseN(p *shm.Proc, names []int) {
	switch len(names) {
	case 0:
		return
	case 1:
		a.Release(p, names[0])
		return
	}
	sorted := names
	if !sort.IntsAreSorted(sorted) {
		sorted = make([]int, len(names))
		copy(sorted, names)
		sort.Ints(sorted)
	}
	for i := 0; i < len(sorted); {
		li, loc := a.locate(sorted[i])
		w := loc >> 6
		mask := uint64(1) << (uint(loc) & 63)
		j := i + 1
		for ; j < len(sorted); j++ {
			lj, locj := a.locate(sorted[j])
			if lj != li || locj>>6 != w {
				break
			}
			mask |= 1 << (uint(locj) & 63)
		}
		if a.stamps != nil {
			a.levels[li].FreeMaskStamped(p, w, mask, a.cfg.Lease.holder(p))
		} else {
			a.levels[li].FreeMask(p, w, mask)
		}
		i = j
	}
}

// LeaseDomains implements Recoverable: one domain spanning the whole
// ladder, since the stamp array is laid out by global name. Nil when the
// lease layer is off.
func (a *LevelArena) LeaseDomains() []LeaseDomain {
	if a.stamps == nil {
		return nil
	}
	return []LeaseDomain{{
		Base:   0,
		Stamps: a.stamps,
		IsHeld: a.IsHeld,
		Reclaim: func(p *shm.Proc, i int) {
			li, loc := a.locate(i)
			a.levels[li].Free(p, loc)
		},
		Seize: func(p *shm.Proc, i int) bool {
			li, loc := a.locate(i)
			return a.levels[li].TryClaim(p, loc)
		},
	}}
}

// Touch implements Arena: one read of the name's TAS register.
func (a *LevelArena) Touch(p *shm.Proc, name int) {
	li, i := a.locate(name)
	a.levels[li].Claimed(p, i)
}

// IsHeld implements Arena.
func (a *LevelArena) IsHeld(name int) bool {
	li, i := a.locate(name)
	return a.levels[li].Probe(i)
}

// Held implements Arena.
func (a *LevelArena) Held() int {
	h := 0
	for _, lvl := range a.levels {
		h += lvl.CountClaimed()
	}
	return h
}

// Probeables implements Arena.
func (a *LevelArena) Probeables() map[string]shm.Probeable {
	m := make(map[string]shm.Probeable, len(a.levels))
	for _, lvl := range a.levels {
		m[lvl.Label()] = lvl
	}
	return m
}

// Clock implements Arena: bitmap levels need no hardware clock.
func (a *LevelArena) Clock() func() { return nil }
