package longlived

import (
	"fmt"
	"math/bits"
	"sort"

	"shmrename/internal/shm"
)

// LevelConfig parameterizes a LevelArena.
type LevelConfig struct {
	// Probes is the number of random TAS probes per non-backstop level
	// before falling through to the next. Default 4.
	Probes int
	// Base is the size of the smallest level. Default 64 (one packed
	// bitmap word).
	Base int
	// MaxPasses bounds full Acquire passes before reporting the arena
	// full; 0 means unlimited (simulated runs rely on the scheduler's step
	// budget instead).
	MaxPasses int
	// WordScan enables the word-granular claim engine: probes target
	// bitmap words instead of single bits (one snapshot-scan-CAS claims the
	// first free name of 64 in one step), the backstop scans words instead
	// of names, saturation hints redirect probes away from words observed
	// full, and batch acquires claim up to 64 names per step. Off by
	// default: the per-bit probe path is the deterministic-mode contract
	// whose golden fingerprints (and the paper's per-TAS cost model) stay
	// bit-identical across refactors.
	WordScan bool
	// Padded lays level bitmaps out one word per cache line for native
	// runs on real cores; leave false for simulated runs.
	Padded bool
	// Label prefixes the operation-space labels. Default "arena".
	Label string
}

func (c *LevelConfig) fill() {
	if c.Probes <= 0 {
		c.Probes = 4
	}
	if c.Base <= 0 {
		c.Base = 64
	}
	if c.Label == "" {
		c.Label = "arena"
	}
}

// LevelArena is the LevelArray-style long-lived arena: levels of
// geometrically growing word-packed TAS bitmaps, with level 0 the smallest
// and the final backstop level sized to the full capacity. Acquire probes
// each level a few times at random and falls through; since at most
// capacity-1 other clients hold slots, the backstop always has a free slot,
// and a deterministic scan of it is the termination guarantee. Release
// clears the slot's bit (shm.OpClear), making the name immediately
// reusable.
//
// Names are numbered level 0 first, so low occupancy concentrates issued
// names near 0: with k concurrent holders the random probes w.h.p. place
// everyone within the first O(log k) levels, whose sizes sum to O(k) — the
// long-lived analogue of adaptive tight renaming.
type LevelArena struct {
	cfg    LevelConfig
	levels []*shm.NameSpace
	base   []int // base[i] = first global name of level i
	bound  int
	cap    int
}

var _ Arena = (*LevelArena)(nil)

// NewLevel builds a level arena guaranteeing capacity concurrent holders.
func NewLevel(capacity int, cfg LevelConfig) *LevelArena {
	if capacity < 1 {
		panic("longlived: capacity must be >= 1")
	}
	cfg.fill()
	mkSpace := shm.NewNameSpace
	if cfg.Padded {
		mkSpace = shm.NewNameSpacePadded
	}
	a := &LevelArena{cfg: cfg, cap: capacity}
	// Geometric ladder: Base, 2·Base, 4·Base, ... strictly below capacity,
	// then the capacity-sized backstop.
	for size := cfg.Base; size < capacity; size *= 2 {
		a.addLevel(mkSpace, size)
	}
	a.addLevel(mkSpace, capacity)
	return a
}

func (a *LevelArena) addLevel(mk func(string, int) *shm.NameSpace, size int) {
	label := fmt.Sprintf("%s:L%d", a.cfg.Label, len(a.levels))
	a.levels = append(a.levels, mk(label, size))
	a.base = append(a.base, a.bound)
	a.bound += size
}

// Label implements Arena.
func (a *LevelArena) Label() string {
	scan := "bit"
	if a.cfg.WordScan {
		scan = "word"
	}
	return fmt.Sprintf("level-array(levels=%d,probes=%d,scan=%s)", len(a.levels), a.cfg.Probes, scan)
}

// Capacity implements Arena.
func (a *LevelArena) Capacity() int { return a.cap }

// NameBound implements Arena.
func (a *LevelArena) NameBound() int { return a.bound }

// Levels returns the number of levels (diagnostics).
func (a *LevelArena) Levels() int { return len(a.levels) }

// Acquire implements Arena: random probes down the ladder, then a
// deterministic backstop scan; repeat up to MaxPasses passes. With WordScan
// the probes and the backstop run word-granular (see acquireWord).
func (a *LevelArena) Acquire(p *shm.Proc) int {
	if a.cfg.WordScan {
		return a.acquireWord(p)
	}
	r := p.Rand()
	backstop := len(a.levels) - 1
	for pass := 0; a.cfg.MaxPasses == 0 || pass < a.cfg.MaxPasses; pass++ {
		for li, lvl := range a.levels {
			for t := 0; t < a.cfg.Probes; t++ {
				i := r.Intn(lvl.Size())
				if lvl.TryClaim(p, i) {
					return a.base[li] + i
				}
			}
		}
		// Backstop scan: read first, TAS only slots that looked free. A
		// scan that loses every race means other clients made progress;
		// the next pass retries from the top of the ladder.
		lvl := a.levels[backstop]
		for i := 0; i < lvl.Size(); i++ {
			if lvl.Claimed(p, i) {
				continue
			}
			if lvl.TryClaim(p, i) {
				return a.base[backstop] + i
			}
		}
	}
	return -1
}

// acquireWord is the word-granular Acquire: random probes pick a bitmap
// word per attempt — skipping words hinted saturated, at no step cost —
// and ClaimFirstFree turns the whole word into one snapshot-scan-CAS step.
// The backstop scans words, not names: capacity/64 steps instead of
// 2×capacity. Hints only redirect probes; the backstop reads every word
// itself, so a stale hint (a release racing the claim that set it) can
// never starve the termination guarantee.
func (a *LevelArena) acquireWord(p *shm.Proc) int {
	r := p.Rand()
	backstop := len(a.levels) - 1
	for pass := 0; a.cfg.MaxPasses == 0 || pass < a.cfg.MaxPasses; pass++ {
		for li, lvl := range a.levels {
			words := lvl.Words()
			for t := 0; t < a.cfg.Probes; t++ {
				w := r.Intn(words)
				if lvl.WordSaturated(w) {
					continue
				}
				if n := lvl.ClaimFirstFree(p, w); n >= 0 {
					return a.base[li] + n
				}
			}
		}
		lvl := a.levels[backstop]
		for w := 0; w < lvl.Words(); w++ {
			if n := lvl.ClaimFirstFree(p, w); n >= 0 {
				return a.base[backstop] + n
			}
		}
	}
	return -1
}

// AcquireN implements Arena. With WordScan the batch is served by
// word-granular bulk claims — ClaimUpTo takes up to 64 free names from a
// probed word in one CAS step — walking the ladder top-down so batches
// stay concentrated in the low levels; the word backstop completes the
// remainder. Without WordScan it degenerates to k independent Acquires
// (the per-bit probe path has no cheaper primitive).
func (a *LevelArena) AcquireN(p *shm.Proc, k int, out []int) []int {
	if !a.cfg.WordScan {
		for ; k > 0; k-- {
			n := a.Acquire(p)
			if n < 0 {
				break
			}
			out = append(out, n)
		}
		return out
	}
	r := p.Rand()
	backstop := len(a.levels) - 1
	for pass := 0; k > 0 && (a.cfg.MaxPasses == 0 || pass < a.cfg.MaxPasses); pass++ {
		for li, lvl := range a.levels {
			words := lvl.Words()
			for t := 0; k > 0 && t < a.cfg.Probes; t++ {
				w := r.Intn(words)
				if lvl.WordSaturated(w) {
					continue
				}
				out, k = appendMask(out, a.base[li]+w<<6, lvl.ClaimUpTo(p, w, k), k)
			}
		}
		lvl := a.levels[backstop]
		for w := 0; k > 0 && w < lvl.Words(); w++ {
			out, k = appendMask(out, a.base[backstop]+w<<6, lvl.ClaimUpTo(p, w, k), k)
		}
	}
	return out
}

// appendMask appends the names encoded by a won word mask (global name =
// wordBase + bit position) and returns the updated slice and remainder.
func appendMask(out []int, wordBase int, won uint64, k int) ([]int, int) {
	for won != 0 {
		b := bits.TrailingZeros64(won)
		won &= won - 1
		out = append(out, wordBase+b)
		k--
	}
	return out, k
}

// locate returns the level holding the global name and its local index.
func (a *LevelArena) locate(name int) (int, int) {
	if name < 0 || name >= a.bound {
		panic(fmt.Sprintf("longlived: name %d outside arena bound %d", name, a.bound))
	}
	li := sort.Search(len(a.base), func(i int) bool { return a.base[i] > name }) - 1
	return li, name - a.base[li]
}

// Release implements Arena.
func (a *LevelArena) Release(p *shm.Proc, name int) {
	li, i := a.locate(name)
	a.levels[li].Free(p, i)
}

// ReleaseN implements Arena: names sharing a bitmap word of a level are
// coalesced into one FreeMask step, so a batch of b word-adjacent names
// costs ⌈b/64⌉ clearing steps instead of b. The input slice is not
// modified; grouping needs sorted names, so an unsorted input is copied
// (already-sorted batches — e.g. the per-shard groups the sharded
// frontend hands down — are grouped in place, no allocation).
func (a *LevelArena) ReleaseN(p *shm.Proc, names []int) {
	switch len(names) {
	case 0:
		return
	case 1:
		a.Release(p, names[0])
		return
	}
	sorted := names
	if !sort.IntsAreSorted(sorted) {
		sorted = make([]int, len(names))
		copy(sorted, names)
		sort.Ints(sorted)
	}
	for i := 0; i < len(sorted); {
		li, loc := a.locate(sorted[i])
		w := loc >> 6
		mask := uint64(1) << (uint(loc) & 63)
		j := i + 1
		for ; j < len(sorted); j++ {
			lj, locj := a.locate(sorted[j])
			if lj != li || locj>>6 != w {
				break
			}
			mask |= 1 << (uint(locj) & 63)
		}
		a.levels[li].FreeMask(p, w, mask)
		i = j
	}
}

// Touch implements Arena: one read of the name's TAS register.
func (a *LevelArena) Touch(p *shm.Proc, name int) {
	li, i := a.locate(name)
	a.levels[li].Claimed(p, i)
}

// IsHeld implements Arena.
func (a *LevelArena) IsHeld(name int) bool {
	li, i := a.locate(name)
	return a.levels[li].Probe(i)
}

// Held implements Arena.
func (a *LevelArena) Held() int {
	h := 0
	for _, lvl := range a.levels {
		h += lvl.CountClaimed()
	}
	return h
}

// Probeables implements Arena.
func (a *LevelArena) Probeables() map[string]shm.Probeable {
	m := make(map[string]shm.Probeable, len(a.levels))
	for _, lvl := range a.levels {
		m[lvl.Label()] = lvl
	}
	return m
}

// Clock implements Arena: bitmap levels need no hardware clock.
func (a *LevelArena) Clock() func() { return nil }
