package longlived

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"shmrename/internal/shm"
	"shmrename/internal/taureg"
)

// TauConfig parameterizes a TauArena.
type TauConfig struct {
	// Width is the per-device TAS-bit count (the paper's 2·log n).
	// Default: 2·⌈log₂ capacity⌉ clamped to [8, 64].
	Width int
	// Tau is the per-device confirmation threshold and block size (the
	// paper's τ = log n). Default Width/2. Must satisfy 1 <= Tau <= Width.
	Tau int
	// Probes is the number of random (device, bit) acquisition attempts
	// before the deterministic fallback sweep. Default Width.
	Probes int
	// MaxPasses bounds fallback sweep passes before reporting the arena
	// full; 0 means unlimited.
	MaxPasses int
	// WordScan claims the name inside a won device's block with the
	// word-granular engine: one snapshot-scan-CAS per bitmap word the block
	// overlaps (at most ⌈τ/64⌉+1 steps) instead of up to τ per-bit TAS
	// probes. Device-bit acquisition is untouched — the τ-register counting
	// hardware is inherently per-bit. Off by default: the per-bit block
	// scan is the deterministic-mode contract pinned by the golden
	// fingerprints.
	WordScan bool
	// SelfClocked builds self-clocked counting devices. Required for
	// native runs; simulated runs work either way (observably equivalent,
	// self-clocked is cheaper — the canonical churn workload uses it).
	// When false, Clock() returns the cycle hook the scheduler must run
	// after every granted step.
	SelfClocked bool
	// Padded pads the name bitmap for native runs.
	Padded bool
	// Lease enables the crash-recovery stamp layer on the name bitmap (see
	// LeaseOpts). Device bits are NOT stamped — the τ-register counting
	// hardware has no holder identity — so a holder that crashes between
	// winning a device bit and claiming a name, or mid-release after the
	// stamp retired but before ReleaseBit, leaks that device's counting
	// capacity until the device drains; names themselves are always
	// recovered. Nil (the default) costs nothing.
	Lease *LeaseOpts
	// Label prefixes the operation-space labels. Default "tauarena".
	Label string
}

func (c *TauConfig) fill(capacity int) {
	if c.Width <= 0 {
		w := 2 * ceilLog2(capacity)
		if w < 8 {
			w = 8
		}
		if w > taureg.MaxWidth {
			w = taureg.MaxWidth
		}
		c.Width = w
	}
	if c.Tau <= 0 {
		c.Tau = c.Width / 2
	}
	if c.Tau > c.Width {
		panic(fmt.Sprintf("longlived: tau %d exceeds width %d", c.Tau, c.Width))
	}
	if c.Probes <= 0 {
		c.Probes = c.Width
	}
	if c.Label == "" {
		c.Label = "tauarena"
	}
}

func ceilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// TauArena is the long-lived adaptation of the paper's §III tight
// algorithm: an array of τ-register counting devices, each fronting a block
// of τ names. Acquire wins a TAS bit of a randomly probed device (the
// counting hardware confirms at most τ winners per device) and then scans
// the device's block for a free name; the threshold contract bounds block
// occupancy by τ, and a holder keeps its confirmed bit for the lifetime of
// its name, so at the instant a winner is confirmed at most τ-1 other
// holders own names in the block — a free name always exists. Release
// returns the name first and then the device bit (Device.ReleaseBit), both
// shm.OpClear operations, restoring the device's capacity.
//
// Unlike the one-shot Tight instance there is no geometric cluster
// schedule: churn keeps occupancy in flux, so Acquire probes devices
// uniformly and falls back to a deterministic sweep, mirroring the
// LevelArena's backstop.
type TauArena struct {
	cfg     TauConfig
	cap     int
	devices []*taureg.Device
	names   *shm.NameSpace
	// bitOf[name] records which device bit the name's current holder won
	// (+1, 0 = unset). Written by the holder between winning the name and
	// releasing it; the atomic store orders it against the name bit.
	bitOf []atomic.Int32
	// stamps is the lease-stamp array over the name bitmap; nil when
	// TauConfig.Lease is off.
	stamps *shm.Stamps
}

var _ Arena = (*TauArena)(nil)
var _ Recoverable = (*TauArena)(nil)

// NewTau builds a τ-register arena guaranteeing capacity concurrent
// holders.
func NewTau(capacity int, cfg TauConfig) *TauArena {
	if capacity < 1 {
		panic("longlived: capacity must be >= 1")
	}
	cfg.fill(capacity)
	nd := (capacity + cfg.Tau - 1) / cfg.Tau
	mkSpace := shm.NewNameSpace
	if cfg.Padded {
		mkSpace = shm.NewNameSpacePadded
	}
	a := &TauArena{
		cfg:     cfg,
		cap:     capacity,
		devices: make([]*taureg.Device, nd),
		names:   mkSpace(cfg.Label+":names", nd*cfg.Tau),
		bitOf:   make([]atomic.Int32, nd*cfg.Tau),
	}
	for d := range a.devices {
		a.devices[d] = taureg.NewDevice(fmt.Sprintf("%s:dev%d", cfg.Label, d),
			cfg.Width, cfg.Tau, cfg.SelfClocked)
	}
	if cfg.Lease.enabled() {
		a.stamps = shm.NewStamps(cfg.Label+":lease", a.names.Size())
		a.names.AttachStamps(a.stamps, 0)
	}
	return a
}

// Label implements Arena.
func (a *TauArena) Label() string {
	scan := "bit"
	if a.cfg.WordScan {
		scan = "word"
	}
	return fmt.Sprintf("tau-longlived(devices=%d,w=%d,tau=%d,scan=%s)",
		len(a.devices), a.cfg.Width, a.cfg.Tau, scan)
}

// Capacity implements Arena.
func (a *TauArena) Capacity() int { return a.cap }

// NameBound implements Arena.
func (a *TauArena) NameBound() int { return a.names.Size() }

// NumDevices returns the device count (diagnostics).
func (a *TauArena) NumDevices() int { return len(a.devices) }

// Device returns counting device d (diagnostics and tests).
func (a *TauArena) Device(d int) *taureg.Device { return a.devices[d] }

// Tau returns the per-device threshold (diagnostics).
func (a *TauArena) Tau() int { return a.cfg.Tau }

// leaseStamp returns the proc's current lease stamp, or 0 with leases off.
func (a *TauArena) leaseStamp(p *shm.Proc) uint64 {
	if a.stamps == nil {
		return 0
	}
	return a.cfg.Lease.stamp(p)
}

// Acquire implements Arena.
func (a *TauArena) Acquire(p *shm.Proc) int {
	stamp := a.leaseStamp(p)
	r := p.Rand()
	nd := len(a.devices)
	for t := 0; t < a.cfg.Probes; t++ {
		d := r.Intn(nd)
		b := r.Intn(a.cfg.Width)
		if a.devices[d].AcquireBit(p, b) == taureg.Won {
			return a.claimName(p, d, b, r.Intn(a.cfg.Tau), stamp)
		}
	}
	// Deterministic fallback sweep, the termination guarantee: walk the
	// devices, skip currently full ones, try their free bits.
	for pass := 0; a.cfg.MaxPasses == 0 || pass < a.cfg.MaxPasses; pass++ {
		for d := 0; d < nd; d++ {
			dev := a.devices[d]
			if dev.Full(p) {
				continue
			}
			in := dev.ReadRequests(p)
			for b := 0; b < a.cfg.Width; b++ {
				if in&(uint64(1)<<b) != 0 {
					continue
				}
				if dev.AcquireBit(p, b) == taureg.Won {
					return a.claimName(p, d, b, 0, stamp)
				}
			}
		}
	}
	return -1
}

// claimName scans device d's name block starting at the random offset
// until it wins a name, then records bit — the device bit the caller just
// won — for Release to clear later. The scan retries: a releasing holder
// may transiently keep its name while the block's bit count already
// admitted us, but a free name is guaranteed at every instant (block
// holders < τ), so the scan terminates. With WordScan the block is claimed
// through word snapshots (ClaimFirstFreeRange): at most ⌈τ/64⌉+1 steps per
// attempt instead of τ single-bit probes.
func (a *TauArena) claimName(p *shm.Proc, d, bit, start int, stamp uint64) int {
	tau := a.cfg.Tau
	base := d * tau
	if a.cfg.WordScan {
		for {
			g := -1
			if stamp != 0 {
				g = a.names.ClaimFirstFreeRangeStamped(p, base, base+tau, stamp)
			} else {
				g = a.names.ClaimFirstFreeRange(p, base, base+tau)
			}
			if g >= 0 {
				a.recordBit(p, g, bit)
				return g
			}
		}
	}
	for {
		for j := 0; j < tau; j++ {
			g := base + (start+j)%tau
			won := false
			if stamp != 0 {
				won = a.names.TryClaimStamped(p, g, stamp)
			} else {
				won = a.names.TryClaim(p, g)
			}
			if won {
				a.recordBit(p, g, bit)
				return g
			}
		}
	}
}

// recordBit installs the device-bit record of a freshly won name. The
// install is a swap, not a store: a release that raced a recovery reclaim
// can leave a stale record behind (see Release), and its device bit is
// unreleased — whoever removes a record owns its release, so the new
// grant returns the residue before recording its own bit.
func (a *TauArena) recordBit(p *shm.Proc, name, bit int) {
	if old := a.bitOf[name].Swap(int32(bit)+1) - 1; old >= 0 {
		a.devices[name/a.cfg.Tau].ReleaseBit(p, int(old))
	}
}

// AcquireN implements Arena: k successive single acquires. A τ name is
// inseparable from the device bit that admitted it — the threshold
// contract counts bits, not names — so the batch cannot be served by one
// word claim; the word-granular saving (WordScan) lives inside each
// acquire's block scan instead.
func (a *TauArena) AcquireN(p *shm.Proc, k int, out []int) []int {
	for ; k > 0; k-- {
		n := a.Acquire(p)
		if n < 0 {
			break
		}
		out = append(out, n)
	}
	return out
}

// Release implements Arena.
func (a *TauArena) Release(p *shm.Proc, name int) {
	if name < 0 || name >= a.names.Size() {
		panic(fmt.Sprintf("longlived: name %d outside arena bound %d", name, a.names.Size()))
	}
	b := a.bitOf[name].Swap(0) - 1
	if b < 0 {
		// No recorded device bit: the name is free, a recovery sweep's
		// reclaim already claimed the bookkeeping, or another caller's
		// concurrent release of the same name did (a caller protocol
		// violation). Releasing nothing keeps the arena consistent — the
		// record's owner returns the bit — and the churn monitor and
		// Held() drain checks surface violations in tests.
		return
	}
	dev := a.devices[name/a.cfg.Tau]
	if a.stamps == nil {
		a.names.Free(p, name)
		dev.ReleaseBit(p, int(b))
		return
	}
	// Whoever removes a bitOf record owns releasing the recorded device
	// bit; the stamp CAS inside FreeStamped decides whether the record we
	// just swapped was this grant's own. Success proves no reclaim
	// intervened since the grant (a reclaim would have moved the stamp off
	// our holder for good), so b is ours and is released exactly once
	// here.
	if a.names.FreeStamped(p, name, a.cfg.Lease.holder(p)) {
		dev.ReleaseBit(p, int(b))
		return
	}
	// Declined: a reclaim is in flight or completed — possibly with the
	// name already re-granted, in which case b is the NEW holder's record
	// we stole, and releasing it would let the device admit more than τ
	// holders. Hand the record back so its release obligation travels
	// with it (the sweep's reclaim swap, the regrant's own release, or
	// the next grant's recordBit install discharges it). If the slot was
	// re-recorded meanwhile, the swapped b is an unrecorded, unreleased
	// bit of this device — ours to return.
	if !a.bitOf[name].CompareAndSwap(0, int32(b)+1) {
		dev.ReleaseBit(p, int(b))
	}
}

// ReleaseN implements Arena: per-name releases. Each name must return its
// own device bit (ReleaseBit restores that device's counting capacity), so
// unlike the level arena there is no word-batched clearing to coalesce
// into.
func (a *TauArena) ReleaseN(p *shm.Proc, names []int) {
	for _, n := range names {
		a.Release(p, n)
	}
}

// LeaseDomains implements Recoverable: one domain over the name bitmap.
// Reclaiming a crashed holder's name also returns its recorded device bit
// (when the crash left one recorded) so the counting device regains
// capacity; a crash that died before recording the bit leaks that device
// slot, as documented on TauConfig.Lease.
func (a *TauArena) LeaseDomains() []LeaseDomain {
	if a.stamps == nil {
		return nil
	}
	return []LeaseDomain{{
		Base:   0,
		Stamps: a.stamps,
		IsHeld: a.IsHeld,
		Reclaim: func(p *shm.Proc, i int) {
			if b := a.bitOf[i].Swap(0) - 1; b >= 0 {
				a.devices[i/a.cfg.Tau].ReleaseBit(p, int(b))
			}
			a.names.Free(p, i)
		},
	}}
}

// Touch implements Arena.
func (a *TauArena) Touch(p *shm.Proc, name int) { a.names.Claimed(p, name) }

// IsHeld implements Arena.
func (a *TauArena) IsHeld(name int) bool { return a.names.Probe(name) }

// Held implements Arena.
func (a *TauArena) Held() int { return a.names.CountClaimed() }

// Probeables implements Arena.
func (a *TauArena) Probeables() map[string]shm.Probeable {
	m := make(map[string]shm.Probeable, len(a.devices)+1)
	for _, d := range a.devices {
		m[d.Label()] = d
	}
	m[a.names.Label()] = a.names
	return m
}

// Clock implements Arena.
func (a *TauArena) Clock() func() {
	if a.cfg.SelfClocked {
		return nil
	}
	return func() {
		for _, d := range a.devices {
			d.Cycle()
		}
	}
}
