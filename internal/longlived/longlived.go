// Package longlived implements long-lived renaming: arenas in which names
// are acquired, released, and reacquired indefinitely under churn.
//
// The paper's algorithms are one-shot — every process claims one name and
// keeps it forever. A production system serving sustained traffic needs the
// long-lived variant of the problem (Alistarh et al., "The LevelArray",
// arXiv:1405.5461): at any instant at most k clients hold names, clients
// arrive and depart continuously, and the arena must keep handing out names
// that are unique among the *current* holders while keeping the largest
// issued name close to the instantaneous occupancy.
//
// Two backends share the Arena interface:
//
//   - LevelArena: a LevelArray-style hierarchy of geometrically growing
//     word-packed TAS bitmaps (shm.NameSpace). Acquire probes a few random
//     slots per level, falling through to larger levels, with a
//     deterministic scan of the capacity-sized backstop level as the safety
//     net; Release clears the slot's bit. Small levels carry the low names,
//     so the maximum issued name tracks the occupancy.
//   - TauArena: the long-lived adaptation of the paper's §III tight
//     algorithm. Acquire wins a TAS bit of a randomly probed τ-register
//     counting device and then a name from the device's block; Release
//     returns the name and then the device bit (taureg.Device.ReleaseBit).
//     The threshold contract — at most τ confirmed bits per device — keeps
//     block occupancy at most τ, so a confirmed winner always finds a free
//     name in its block.
//
// Both backends speak the shm kernel: every Acquire/Release/Touch is a
// sequence of Proc.Step-counted shared-memory operations (releases use the
// shm.OpClear kind), so the adversarial simulator (internal/sched) covers
// churn schedules exactly as it covers one-shot executions, and native
// goroutines run the same code on sync/atomic.
//
// Liveness under the adversary: an Acquire pass that fails end to end
// implies other clients claimed (or still hold) slots; with at most
// capacity-1 concurrent holders the backstop always has a free slot, so
// only an adversary that keeps winning races against the scanner can
// prolong an Acquire. MaxPasses converts that unbounded wait into a
// detectable "arena full" result for native callers.
package longlived

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"shmrename/internal/registry"
	"shmrename/internal/shm"
)

// Arena is a long-lived renaming arena. All methods taking a *shm.Proc
// perform step-counted shared-memory operations and are safe for concurrent
// use by distinct procs.
//
// The interface definition lives in internal/registry (the backend
// registry, a leaf package every implementation can import to
// self-register); this alias keeps longlived.Arena the canonical spelling
// throughout the arena stack.
type Arena = registry.Arena

// Monitor observes a churn run: it tracks occupancy, the largest issued
// name, per-acquire step costs, and — the core long-lived safety property —
// that no two live holders ever share a name. Monitor methods are called by
// the churn body around arena operations; they cost no process steps.
type Monitor struct {
	owner     []atomic.Int32 // name -> holder pid+1, 0 when free
	active    atomic.Int64
	maxActive atomic.Int64
	maxName   atomic.Int64
	acquires  atomic.Int64
	acqSteps  atomic.Int64
	violation atomic.Pointer[string]
}

// NewMonitor returns a monitor for arenas issuing names below nameBound.
func NewMonitor(nameBound int) *Monitor {
	return &Monitor{owner: make([]atomic.Int32, nameBound)}
}

// NoteAcquire records that pid acquired name after steps shared-memory
// accesses. It flags a violation if another live holder already holds it.
func (m *Monitor) NoteAcquire(pid, name int, steps int64) {
	if !m.owner[name].CompareAndSwap(0, int32(pid)+1) {
		m.fail(fmt.Sprintf("name %d acquired by %d while held by %d",
			name, pid, m.owner[name].Load()-1))
		return
	}
	m.acquires.Add(1)
	m.acqSteps.Add(steps)
	a := m.active.Add(1)
	maxUpdate(&m.maxActive, a)
	maxUpdate(&m.maxName, int64(name))
}

// NoteAcquireBatch records that pid acquired the batch of names after steps
// shared-memory accesses in total. Holder-uniqueness is checked per name;
// the step cost is accounted once for the whole batch, so StepsPerAcquire
// reflects the amortized per-name cost batch acquires are built to lower.
func (m *Monitor) NoteAcquireBatch(pid int, names []int, steps int64) {
	for _, name := range names {
		if !m.owner[name].CompareAndSwap(0, int32(pid)+1) {
			m.fail(fmt.Sprintf("name %d acquired by %d while held by %d",
				name, pid, m.owner[name].Load()-1))
			return
		}
		m.acquires.Add(1)
		a := m.active.Add(1)
		maxUpdate(&m.maxActive, a)
		maxUpdate(&m.maxName, int64(name))
	}
	m.acqSteps.Add(steps)
}

// NoteReleaseBatch records that pid is about to release the batch.
func (m *Monitor) NoteReleaseBatch(pid int, names []int) {
	for _, name := range names {
		m.NoteRelease(pid, name)
	}
}

// NoteRelease records that pid is about to release name. It flags a
// violation if pid is not the recorded holder.
func (m *Monitor) NoteRelease(pid, name int) {
	if !m.owner[name].CompareAndSwap(int32(pid)+1, 0) {
		m.fail(fmt.Sprintf("name %d released by %d but held by %d",
			name, pid, m.owner[name].Load()-1))
		return
	}
	m.active.Add(-1)
}

func (m *Monitor) fail(msg string) {
	m.violation.CompareAndSwap(nil, &msg)
}

// Err returns an error describing the first holder-uniqueness violation
// observed, or nil.
func (m *Monitor) Err() error {
	if p := m.violation.Load(); p != nil {
		return fmt.Errorf("longlived: %s", *p)
	}
	return nil
}

// MaxActive returns the peak number of simultaneous holders observed.
func (m *Monitor) MaxActive() int64 { return m.maxActive.Load() }

// MaxName returns the largest name observed acquired, or -1 if none.
func (m *Monitor) MaxName() int64 {
	if m.acquires.Load() == 0 {
		return -1
	}
	return m.maxName.Load()
}

// Acquires returns the total number of successful acquires observed.
func (m *Monitor) Acquires() int64 { return m.acquires.Load() }

// AcquireSteps returns the total shared-memory steps spent inside
// successful acquires (exact, for golden determinism tests).
func (m *Monitor) AcquireSteps() int64 { return m.acqSteps.Load() }

// StepsPerAcquire returns the mean shared-memory steps per acquire.
func (m *Monitor) StepsPerAcquire() float64 {
	n := m.acquires.Load()
	if n == 0 {
		return 0
	}
	return float64(m.acqSteps.Load()) / float64(n)
}

func maxUpdate(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ChurnConfig parameterizes a churn workload body.
type ChurnConfig struct {
	// Cycles is the number of acquire/hold/release rounds per worker.
	Cycles int
	// HoldMin/HoldMax bound the number of Touch steps a worker performs
	// while holding a name; the actual count is drawn per cycle from the
	// worker's seeded randomness, which models seeded arrival/departure
	// churn: staggered hold times interleave releases with acquires.
	HoldMin, HoldMax int
	// Yield makes the worker yield the processor (runtime.Gosched) while
	// holding its name, so that in native runs other goroutines proceed
	// while the name is held and the instantaneous occupancy approaches
	// the worker count even on few cores. Simulated runs are unaffected
	// (scheduling there is decided by the gate, not the Go runtime).
	// E16 and the native scalability benchmarks set it; the canonical
	// simulated workload (DefaultChurn) leaves it off.
	Yield bool
}

// DefaultChurn is the canonical churn workload. The E15 harness
// experiment, the BENCH_2.json trajectory, and the Go benchmarks all
// measure exactly this configuration — tune it here, nowhere else, or the
// three surfaces silently diverge.
var DefaultChurn = ChurnConfig{Cycles: 4, HoldMin: 0, HoldMax: 8}

// Backend pairs an arena backend's report name with its constructor, for
// code that sweeps every implementation.
type Backend struct {
	Name string
	Make func(capacity int) Arena
}

// ChurnBackends returns the canonical backend set of the churn workload,
// in report order. The τ arena is deliberately self-clocked — observably
// equivalent to external clocking in simulated runs and cheaper, and part
// of the canonical workload definition BENCH_2.json records (switching the
// clocking changes step counts, just like editing DefaultChurn would).
func ChurnBackends() []Backend {
	return []Backend{
		{"level-array", func(n int) Arena { return NewLevel(n, LevelConfig{}) }},
		{"tau-longlived", func(n int) Arena { return NewTau(n, TauConfig{SelfClocked: true}) }},
	}
}

// BatchChurnBody returns a churn body that cycles whole batches: AcquireN
// of batch names, a seeded-random number of holding Touch steps, then
// ReleaseN of the batch. It is the workload of experiment E17 and the
// BENCH_4.json sweep: per-name step costs fall as the batch grows because
// word-granular backends serve up to 64 names per shared-memory access. A
// worker that cannot complete its batch (arena full) releases the partial
// batch and stops.
func BatchChurnBody(a Arena, mon *Monitor, cfg ChurnConfig, batch int) func(p *shm.Proc) int {
	return func(p *shm.Proc) int {
		r := p.Rand()
		buf := make([]int, 0, batch)
		for c := 0; c < cfg.Cycles; c++ {
			before := p.Steps()
			names := a.AcquireN(p, batch, buf[:0])
			if len(names) < batch {
				a.ReleaseN(p, names)
				return -1
			}
			mon.NoteAcquireBatch(p.ID(), names, p.Steps()-before)
			hold := cfg.HoldMin
			if cfg.HoldMax > cfg.HoldMin {
				hold += r.Intn(cfg.HoldMax - cfg.HoldMin + 1)
			}
			if cfg.Yield {
				runtime.Gosched()
			}
			for h := 0; h < hold; h++ {
				a.Touch(p, names[h%len(names)])
			}
			mon.NoteReleaseBatch(p.ID(), names)
			a.ReleaseN(p, names)
		}
		return -1
	}
}

// ChurnBody returns a process body (compatible with sched.Body and
// sched.RunNative) that churns the arena: Cycles rounds of acquire, a
// seeded-random number of holding Touch steps, then release. The body
// reports to mon around every transition and returns -1 (a churn worker
// terminates holding nothing). A worker that observes the arena full (only
// possible when more than Capacity workers churn) stops early.
func ChurnBody(a Arena, mon *Monitor, cfg ChurnConfig) func(p *shm.Proc) int {
	return func(p *shm.Proc) int {
		r := p.Rand()
		for c := 0; c < cfg.Cycles; c++ {
			before := p.Steps()
			name := a.Acquire(p)
			if name < 0 {
				return -1
			}
			mon.NoteAcquire(p.ID(), name, p.Steps()-before)
			hold := cfg.HoldMin
			if cfg.HoldMax > cfg.HoldMin {
				hold += r.Intn(cfg.HoldMax - cfg.HoldMin + 1)
			}
			if cfg.Yield {
				runtime.Gosched()
			}
			for h := 0; h < hold; h++ {
				a.Touch(p, name)
			}
			mon.NoteRelease(p.ID(), name)
			a.Release(p, name)
		}
		return -1
	}
}
