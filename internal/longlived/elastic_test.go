package longlived

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"shmrename/internal/sched"
	"shmrename/internal/shm"
)

// TestElasticGeometryMatchesFixed pins the tentpole's compatibility
// contract: the elastic ladder's *shape* — and therefore NameBound, the
// Monitor sizing, and the sharded frontend's equal-stride envelope — is
// identical to the fixed LevelArena's for the same capacity; only the
// resident prefix differs.
func TestElasticGeometryMatchesFixed(t *testing.T) {
	for _, capacity := range []int{1, 8, 64, 100, 1024, 4096} {
		fixed := NewLevel(capacity, LevelConfig{Label: "t-egeom-f"})
		el := NewElastic(capacity, ElasticConfig{Label: "t-egeom-e"})
		if el.NameBound() != fixed.NameBound() {
			t.Fatalf("capacity %d: elastic bound %d != fixed bound %d",
				capacity, el.NameBound(), fixed.NameBound())
		}
		if el.Capacity() != capacity {
			t.Fatalf("capacity %d: Capacity() = %d", capacity, el.Capacity())
		}
		act, max := el.Levels()
		if fixedLevels := fixed.Levels(); max != fixedLevels {
			t.Fatalf("capacity %d: max levels %d != fixed levels %d", capacity, max, fixedLevels)
		}
		// Default MinCapacity = Base: exactly one resident level at start.
		if act != 1 {
			t.Fatalf("capacity %d: %d resident levels at start, want 1", capacity, act)
		}
		if want := min(64, capacity); el.CapacityNow() != want {
			t.Fatalf("capacity %d: CapacityNow %d, want %d", capacity, el.CapacityNow(), want)
		}
	}
	// MinCapacity floors residency at the covering level prefix.
	el := NewElastic(1024, ElasticConfig{MinCapacity: 200, Label: "t-egeom-min"})
	if act, _ := el.Levels(); act != 3 { // 64+128 < 200 <= 64+128+256
		t.Fatalf("MinCapacity 200: %d resident levels, want 3", act)
	}
}

// TestElasticGrowFillShrink exercises the full lifecycle on both scan
// engines: grow-then-fill uniqueness up to the capacity guarantee, shrink
// refusing to reclaim held names, and drain-to-floor plus regrow once the
// holders leave.
func TestElasticGrowFillShrink(t *testing.T) {
	const capacity = 500
	for _, wordScan := range []bool{false, true} {
		a := NewElastic(capacity, ElasticConfig{WordScan: wordScan, MaxPasses: 4, Label: "t-elife"})
		t.Run(a.Label(), func(t *testing.T) {
			p := nativeProc(0)
			fill := func() []int {
				var names []int
				seen := make(map[int]bool)
				for {
					n := a.Acquire(p)
					if n < 0 {
						break
					}
					if n < 0 || n >= a.NameBound() {
						t.Fatalf("name %d outside [0,%d)", n, a.NameBound())
					}
					if seen[n] {
						t.Fatalf("name %d issued twice", n)
					}
					seen[n] = true
					names = append(names, n)
				}
				if len(names) < capacity {
					t.Fatalf("only %d acquires before full, capacity %d guaranteed", len(names), capacity)
				}
				return names
			}
			names := fill()
			if h := a.Held(); h != len(names) {
				t.Fatalf("held %d, want %d", h, len(names))
			}
			if a.CapacityNow() < capacity {
				t.Fatalf("CapacityNow %d < capacity %d after fill", a.CapacityNow(), capacity)
			}
			// Shrink never reclaims a held name: with everyone holding, the
			// drain stays pending and every name survives.
			if a.Shrink() {
				t.Fatal("Shrink retired a level while it had holders")
			}
			for _, n := range names {
				if !a.IsHeld(n) {
					t.Fatalf("name %d lost to a shrink attempt", n)
				}
			}
			// A failed-pass grow cancels the pending drain, so the full
			// capacity stays reachable even mid-drain.
			for _, n := range names {
				a.Release(p, n)
			}
			if h := a.Held(); h != 0 {
				t.Fatalf("held %d after full drain, want 0", h)
			}
			// Forced shrinks now walk the ladder back to the floor.
			for a.Shrink() {
			}
			if act, _ := a.Levels(); act != 1 {
				t.Fatalf("resident levels %d after drain-to-floor, want 1", act)
			}
			if a.CapacityNow() != 64 {
				t.Fatalf("CapacityNow %d after drain-to-floor, want 64", a.CapacityNow())
			}
			if a.PeakCapacity() < capacity {
				t.Fatalf("PeakCapacity %d < %d", a.PeakCapacity(), capacity)
			}
			// The retired levels regrow on demand: a second full fill issues
			// capacity unique names again.
			names = fill()
			for _, n := range names {
				a.Release(p, n)
			}
		})
	}
}

// TestElasticProportionalResidency is the memory-proportionality claim in
// unit form: steady churn at k ≪ capacity keeps the elastic arena's
// resident capacity and bytes a small fraction of the peak-provisioned
// fixed arena's — the BENCH_6 acceptance ratio (≤ 1/8 at k = capacity/64),
// asserted structurally rather than on wall-clock measurements.
func TestElasticProportionalResidency(t *testing.T) {
	const capacity = 4096
	const k = capacity / 64
	fixed := NewLevel(capacity, LevelConfig{Label: "t-eprop-f"})
	a := NewElastic(capacity, ElasticConfig{Label: "t-eprop-e"})
	p := nativeProc(0)
	for cycle := 0; cycle < 200; cycle++ {
		var names []int
		for i := 0; i < k; i++ {
			n := a.Acquire(p)
			if n < 0 {
				t.Fatalf("cycle %d: acquire %d failed", cycle, i)
			}
			names = append(names, n)
		}
		for _, n := range names {
			a.Release(p, n)
		}
	}
	if a.CapacityNow() > capacity/8 {
		t.Fatalf("CapacityNow %d after churn at k=%d, want <= %d", a.CapacityNow(), k, capacity/8)
	}
	if eb, fb := a.ResidentBytes(), fixed.ResidentBytes(); eb*8 > fb {
		t.Fatalf("elastic resident %d bytes > 1/8 of fixed %d", eb, fb)
	}
	// The occupancy trip alone (k=64 at GrowAt 0.75 over a 64+128 ladder)
	// never needed more than the bottom two levels.
	if a.PeakCapacity() > 448 {
		t.Fatalf("PeakCapacity %d for steady k=%d, want <= 448", a.PeakCapacity(), k)
	}
}

// TestElasticDeterministicReplay runs the simulated adversarial churn —
// heavy enough to cross grow and shrink transitions — twice with one seed
// and demands identical fingerprints including the resize counters: under
// the simulated gate, elastic transitions are part of the deterministic
// replay surface, which is what lets the backend register Deterministic.
func TestElasticDeterministicReplay(t *testing.T) {
	run := func() (fp struct {
		acquires, maxActive, maxName, steps int64
		grows, shrinks, cancels             int64
		bound                               int
	}) {
		a := NewElastic(256, ElasticConfig{ShrinkAfter: 8, MaxPasses: 0, Label: "t-edet"})
		mon := NewMonitor(a.NameBound())
		sched.Run(sched.Config{
			N:    192,
			Seed: 41,
			Fast: sched.FastRandom,
			Body: ChurnBody(a, mon, ChurnConfig{Cycles: 6, HoldMin: 0, HoldMax: 9}),
		})
		if err := mon.Err(); err != nil {
			t.Fatal(err)
		}
		if h := a.Held(); h != 0 {
			t.Fatalf("%d names held after drain", h)
		}
		fp.acquires, fp.maxActive, fp.maxName = mon.Acquires(), mon.MaxActive(), mon.MaxName()
		fp.steps = mon.AcquireSteps()
		fp.grows, fp.shrinks, fp.cancels = a.Resizes()
		fp.bound = a.NameBound()
		return fp
	}
	first, second := run(), run()
	if first != second {
		t.Fatalf("replay diverged:\n  first  %+v\n  second %+v", first, second)
	}
	if first.grows == 0 {
		t.Fatal("workload never grew the ladder; fingerprint covers no transition")
	}
}

// TestElasticResizeStormNative is the lock-free claim under the race
// detector: real goroutines churn while a dedicated antagonist forces
// grow/shrink transitions as fast as it can. Every acquire must succeed
// (MaxPasses 0 — resizes may slow an acquire but never wedge or starve
// it), names stay unique, and the arena drains clean.
func TestElasticResizeStormNative(t *testing.T) {
	const workers, cycles = 8, 300
	a := NewElastic(512, ElasticConfig{ShrinkAfter: 4, MaxPasses: 0, Label: "t-estorm"})
	mon := NewMonitor(a.NameBound())
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			a.Grow()
			a.Shrink()
			runtime.Gosched()
		}
	}()
	sched.RunNative(workers, 73, ChurnBody(a, mon, ChurnConfig{
		Cycles: cycles, HoldMin: 0, HoldMax: 6, Yield: true,
	}))
	stop.Store(true)
	wg.Wait()
	if err := mon.Err(); err != nil {
		t.Fatal(err)
	}
	if got, want := mon.Acquires(), int64(workers*cycles); got != want {
		t.Fatalf("%d acquires completed, want %d (resizes must not starve acquires)", got, want)
	}
	if h := a.Held(); h != 0 {
		t.Fatalf("%d names held after storm", h)
	}
	// The storm ends with no pending drain wedged: forced shrinks walk back
	// to the floor.
	for a.Shrink() {
	}
	if act, _ := a.Levels(); act != 1 {
		t.Fatalf("resident levels %d after storm drain, want 1", act)
	}
}

// TestElasticLeaseReclaim covers the per-level stamp layer: a holder that
// stops heartbeating loses its names on every resident level to the sweep,
// the reclaim flows through the same occupancy accounting as a release
// (so the shrink trigger still sees the truth), and the emptied ladder
// then drains to the floor.
func TestElasticLeaseReclaim(t *testing.T) {
	ep := shm.NewCounterEpochs(1)
	a := NewElastic(256, ElasticConfig{
		MaxPasses: 0,
		Lease:     &LeaseOpts{Epochs: ep},
		Label:     "t-elease",
	})
	p := nativeProc(7)
	var names []int
	for i := 0; i < 200; i++ { // spans three levels (64+128 < 200)
		n := a.Acquire(p)
		if n < 0 {
			t.Fatalf("acquire %d failed", i)
		}
		names = append(names, n)
	}
	if act, _ := a.Levels(); act < 3 {
		t.Fatalf("resident levels %d, want >= 3", act)
	}
	doms := a.LeaseDomains()
	if len(doms) < 3 {
		t.Fatalf("%d lease domains, want one per resident level (>= 3)", len(doms))
	}
	// The holder "crashes": nobody heartbeats, epochs advance past any TTL,
	// and a sweep-shaped reclaim walks the domains.
	ep.Advance(100)
	reclaimed := 0
	for _, d := range doms {
		for i := 0; i < d.Stamps.Size(); i++ {
			if d.IsHeld(i) {
				d.Reclaim(p, i)
				reclaimed++
			}
		}
	}
	if reclaimed != len(names) {
		t.Fatalf("reclaimed %d, want %d", reclaimed, len(names))
	}
	if h := a.Held(); h != 0 {
		t.Fatalf("%d names held after reclaim", h)
	}
	for _, n := range names {
		if a.IsHeld(n) {
			t.Fatalf("name %d still held after reclaim", n)
		}
	}
	for a.Shrink() {
	}
	if act, _ := a.Levels(); act != 1 {
		t.Fatalf("resident levels %d after reclaim drain, want 1", act)
	}
}

// TestElasticBatchPaths covers AcquireN/ReleaseN across a resize: a batch
// larger than the resident capacity grows the ladder mid-batch, the names
// are unique, and the batch release coalesces back cleanly.
func TestElasticBatchPaths(t *testing.T) {
	a := NewElastic(512, ElasticConfig{WordScan: true, MaxPasses: 0, Label: "t-ebatch"})
	p := nativeProc(0)
	out := a.AcquireN(p, 300, nil)
	if len(out) != 300 {
		t.Fatalf("batch served %d of 300", len(out))
	}
	seen := make(map[int]bool)
	for _, n := range out {
		if seen[n] {
			t.Fatalf("name %d issued twice in batch", n)
		}
		seen[n] = true
	}
	if a.CapacityNow() < 300 {
		t.Fatalf("CapacityNow %d after 300-name batch", a.CapacityNow())
	}
	a.ReleaseN(p, out)
	if h := a.Held(); h != 0 {
		t.Fatalf("%d held after batch release", h)
	}
}
