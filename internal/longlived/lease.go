package longlived

import (
	"fmt"

	"shmrename/internal/shm"
)

// LeaseOpts enables the crash-recovery lease layer on an arena backend: a
// per-name stamp (shm.Stamps) packing holder identity and lease epoch,
// published on every claim and retired on every release, so a recovery
// sweep (package recovery) can reclaim names whose holder died. A nil
// LeaseOpts — or one without an epoch source — leaves the backend exactly
// as before: no stamp array, no extra steps, golden fingerprints intact.
//
// A word-block lease cache (package leasecache) layered above a leased
// backend holds each cached block as one ordinary lease: parked names are
// stamped to the caching holder exactly like granted ones, heartbeats
// renew them together, and the recovery sweep reclaims an abandoned
// cache's blocks whole — no cache-specific recovery protocol exists.
type LeaseOpts struct {
	// Epochs is the lease clock shared by holders and reapers. Non-nil
	// enables the lease layer.
	Epochs shm.EpochSource
	// Holder maps a proc to its holder identity in [1, shm.MaxHolder].
	// Defaults to PID+1 — each proc is its own holder, the finest-grained
	// recovery unit. The public API overrides it with one identity per
	// Arena handle (per OS process for mmap-backed arenas).
	Holder func(p *shm.Proc) uint64
}

// enabled reports whether the lease layer is on.
func (o *LeaseOpts) enabled() bool { return o != nil && o.Epochs != nil }

// holder resolves the proc's holder identity.
func (o *LeaseOpts) holder(p *shm.Proc) uint64 {
	if o.Holder != nil {
		h := o.Holder(p)
		if h < 1 || h > shm.MaxHolder {
			panic(fmt.Sprintf("longlived: holder %d outside [1, %d]", h, uint64(shm.MaxHolder)))
		}
		return h
	}
	return uint64(p.ID())%shm.MaxHolder + 1
}

// stamp builds the proc's current lease stamp.
func (o *LeaseOpts) stamp(p *shm.Proc) uint64 {
	return shm.PackStamp(o.holder(p), o.Epochs.Now())
}

// LeaseDomain is one contiguous lease-stamped name region of an arena: the
// unit a recovery sweep iterates. Domain-local name i corresponds to global
// arena name Base+i and stamp slot Stamps[i].
type LeaseDomain struct {
	// Base is the first global arena name of the domain.
	Base int
	// Stamps covers global names [Base, Base+Stamps.Size()).
	Stamps *shm.Stamps
	// IsHeld reports the claim bit of domain-local name i without spending
	// a step.
	IsHeld func(i int) bool
	// Reclaim returns domain-local name i to the pool after the sweep won
	// the suspect CAS (shm.Stamps.BeginReclaim): clear the claim bit and
	// any backend side state — the τ arena also returns the crashed
	// holder's counting-device bit here. Called at most once per won
	// BeginReclaim, between it and FinishReclaim.
	Reclaim func(p *shm.Proc, i int)
	// Seize, when non-nil, claims the bare claim bit of domain-local name
	// i on behalf of maintenance (the integrity scrubber saturating a
	// quarantined word), reporting whether the bit flipped free→claimed.
	// It publishes no stamp — the caller installs the quarantine mark
	// around it — and backends whose claim bit carries side state the
	// scrubber cannot also take (the τ arena's counting devices, the
	// elastic ladder's drain accounting) leave it nil: such arenas are
	// scrub-checkable but not quarantine-capable.
	Seize func(p *shm.Proc, i int) bool
}

// Recoverable is the interface of lease-enabled arenas: the recovery
// sweeper works exclusively through it. Backends whose lease layer is off
// return no domains.
type Recoverable interface {
	Arena
	// LeaseDomains exposes the arena's stamped regions in name order.
	LeaseDomains() []LeaseDomain
}

// HeartbeatHolder renews every lease the holder currently owns across the
// arena's domains to the given epoch, returning the number of renewed
// leases. One step per renewed lease (a CAS on the stamp); names whose
// lease was already reclaimed are skipped — the holder has lost them.
func HeartbeatHolder(a Recoverable, p *shm.Proc, holder, epoch uint64) int {
	renewed := 0
	for _, d := range a.LeaseDomains() {
		for i := 0; i < d.Stamps.Size(); i++ {
			if h, _ := shm.UnpackStamp(d.Stamps.Load(i)); h != holder {
				continue
			}
			if d.Stamps.Refresh(p, i, holder, epoch) {
				renewed++
			}
		}
	}
	return renewed
}
