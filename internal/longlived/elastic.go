package longlived

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync/atomic"

	"shmrename/internal/shm"
)

// ElasticArena is the elastic adaptation of the LevelArray ladder: the
// geometry of LevelArena (geometrically growing word-packed TAS bitmaps,
// level 0 smallest, a capacity-sized final backstop) with the resident
// prefix of the ladder sized to the *current* contention instead of the
// provisioned maximum. Levels are appended under load and drained/retired
// when occupancy falls, without ever stopping concurrent acquires — the
// resident bitmap+stamp bytes and the probe range both track live holders,
// the adaptive-space property argued by "Space Bounds for Adaptive
// Renaming" (arXiv:1603.04067) on top of the LevelArray's adaptive-work
// property (arXiv:1405.5461).
//
// # Publication protocol
//
// The full ladder shape (level sizes, name bases, NameBound) is fixed at
// construction; only which prefix is resident changes. The resident prefix
// is published through one atomic word packing (generation, activeLevels):
// acquirers read it, probe the active levels, and revalidate. Each level
// slot holds an atomic pointer to a level object carrying its own state
// flag (active → draining → retired), so a claim always revalidates
// against the exact object it claimed in — a slot retired and regrown
// between claim and revalidation cannot be confused with its predecessor.
//
//   - Grow: allocate the next geometric level (bitmap, hints, stamps) off
//     to the side, store its pointer, then publish the new (gen+1, act+1)
//     word with one atomic store. Acquirers that read the old word merely
//     probe one level fewer for one pass.
//   - Shrink: mark the top level draining (claims revalidate and bounce;
//     the word-saturation hints are force-set so word probes skip it at
//     zero step cost), then wait for a clean occupancy scan. Under Go's
//     sequentially-consistent atomics any claim CAS the scan did not
//     observe must itself observe the draining flag afterwards and
//     self-release, so a clean scan proves no name can ever again be
//     granted from the level; only then is it retired and unpublished.
//     A drain never reclaims a held name: live holders keep the drain
//     pending (and a grow cancels it) until they release.
//
// # Resize triggers
//
// An exact live-holder counter drives both directions without wall
// clocks: a successful acquire grows proactively once occupancy reaches
// GrowAt x CapacityNow (and a failed full pass grows unconditionally — the
// ErrArenaFull signal); releases arm a shrink after ShrinkAfter
// consecutive observations at or below ShrinkAt x (capacity without the
// top level), the hysteresis that keeps a diurnal trough from thrashing
// the ladder.
type ElasticArena struct {
	cfg       ElasticConfig
	sizes     []int // full ladder shape, fixed at construction
	base      []int // base[i] = first global name of level i
	bound     int   // full-ladder name bound (constant)
	cap       int   // maximum capacity (the guarantee, reached by growth)
	minLevels int   // resident floor: the prefix covering MinCapacity

	levels []atomic.Pointer[elLevel]
	// ladder packs (generation << 16 | activeLevels): the epoch/seqlock
	// word acquirers read before probing. Structural transitions are
	// serialized by resizeBusy, so writers store; readers only load.
	ladder atomic.Uint64
	// occ is the live-holder counter driving the resize triggers: +1 per
	// granted name, -1 per released or reclaimed one.
	occ atomic.Int64
	// floor hints the lowest level likely to have free slots: raised to
	// the level of the last successful claim, dropped by releases below
	// it. Probes start there instead of wading through saturated low
	// levels; the deterministic backstop ignores it.
	floor atomic.Int32
	// drainIdx is the index of the level currently draining, -1 if none.
	drainIdx atomic.Int32
	// resizeBusy serializes grow/start-drain/finish-drain transitions;
	// acquires and releases never wait on it.
	resizeBusy atomic.Bool
	// Cached trigger thresholds, retuned on every ladder change.
	capNow     atomic.Int64
	peakCap    atomic.Int64
	growTrip   atomic.Int64
	shrinkTrip atomic.Int64
	// shrinkScore counts consecutive shrink-eligible release observations;
	// drainTick throttles finish-drain attempts from unrelated releases.
	shrinkScore atomic.Int64
	drainTick   atomic.Int64
	resident    atomic.Int64
	// Transition counters (diagnostics).
	grows, shrinks, cancels atomic.Int64
}

// Level object states. The zero value is active so a freshly installed
// level serves claims immediately.
const (
	elActive uint32 = iota
	elDraining
	elRetired
)

// elLevel is one resident level: its bitmap space, its own lease-stamp
// array (stamps follow levels — a retired level's stamps are dropped with
// it), and the state flag claims revalidate against.
type elLevel struct {
	space  *shm.NameSpace
	stamps *shm.Stamps
	idx    int
	base   int
	size   int
	bytes  int64
	state  atomic.Uint32
}

// ElasticConfig parameterizes an ElasticArena. The probe/scan/lease knobs
// mirror LevelConfig; the resize knobs mirror registry.ElasticParams.
type ElasticConfig struct {
	// MinCapacity floors the resident ladder: the arena never drains below
	// the level prefix covering it. Default Base, clamped to the capacity.
	MinCapacity int
	// GrowAt is the occupancy fraction of CapacityNow at which a
	// successful acquire proactively appends the next level, in (0, 1).
	// Default 0.75.
	GrowAt float64
	// ShrinkAt is the occupancy hysteresis for draining the top level, as
	// a fraction of the capacity without that level, in [0, GrowAt).
	// Default 0.25.
	ShrinkAt float64
	// ShrinkAfter is the number of consecutive shrink-eligible release
	// observations before a drain starts. Default 128.
	ShrinkAfter int
	// Probes is the number of random probes per active level before the
	// deterministic backstop. Default 4.
	Probes int
	// Base is the size of the smallest level. Default 64.
	Base int
	// MaxPasses bounds full Acquire passes before reporting the arena
	// full; ladder-extending retries do not consume a pass. 0 means
	// unlimited.
	MaxPasses int
	// WordScan enables the word-granular claim engine (see
	// LevelConfig.WordScan).
	WordScan bool
	// Padded lays level bitmaps out one word per cache line (native runs).
	Padded bool
	// Lease enables the crash-recovery stamp layer. Each level owns its
	// stamp array, created and retired with the level; LeaseDomains
	// re-enumerates the resident levels on every call, which is exactly
	// how recovery.Sweeper consumes it.
	Lease *LeaseOpts
	// Label prefixes the operation-space labels. Default "elastic". Labels
	// are per ladder slot, not per incarnation, so a regrown level reuses
	// its predecessor's interned operation space.
	Label string
}

func (c *ElasticConfig) fill() {
	if c.Probes <= 0 {
		c.Probes = 4
	}
	if c.Base <= 0 {
		c.Base = 64
	}
	if c.GrowAt == 0 {
		c.GrowAt = 0.75
	}
	if c.ShrinkAt == 0 {
		c.ShrinkAt = 0.25
	}
	if c.ShrinkAfter <= 0 {
		c.ShrinkAfter = 128
	}
	if c.Label == "" {
		c.Label = "elastic"
	}
}

var _ Arena = (*ElasticArena)(nil)
var _ Recoverable = (*ElasticArena)(nil)

// NewElastic builds an elastic level arena whose ladder can grow to serve
// capacity concurrent holders and drains back toward cfg.MinCapacity when
// contention falls. The full ladder shape equals NewLevel's for the same
// capacity, so NameBound (and the sharded frontend's equal-stride
// invariant) are identical to the fixed arena's.
func NewElastic(capacity int, cfg ElasticConfig) *ElasticArena {
	if capacity < 1 {
		panic("longlived: capacity must be >= 1")
	}
	cfg.fill()
	if cfg.GrowAt <= 0 || cfg.GrowAt >= 1 {
		panic(fmt.Sprintf("longlived: ElasticConfig.GrowAt must lie in (0, 1), got %v", cfg.GrowAt))
	}
	if cfg.ShrinkAt < 0 || cfg.ShrinkAt >= cfg.GrowAt {
		panic(fmt.Sprintf("longlived: ElasticConfig.ShrinkAt must lie in [0, GrowAt=%v), got %v", cfg.GrowAt, cfg.ShrinkAt))
	}
	if cfg.MinCapacity < 0 {
		panic(fmt.Sprintf("longlived: ElasticConfig.MinCapacity must be >= 0, got %d", cfg.MinCapacity))
	}
	a := &ElasticArena{cfg: cfg, cap: capacity}
	for size := cfg.Base; size < capacity; size *= 2 {
		a.sizes = append(a.sizes, size)
		a.base = append(a.base, a.bound)
		a.bound += size
	}
	a.sizes = append(a.sizes, capacity)
	a.base = append(a.base, a.bound)
	a.bound += capacity
	a.levels = make([]atomic.Pointer[elLevel], len(a.sizes))
	minCap := cfg.MinCapacity
	if minCap == 0 {
		minCap = cfg.Base
	}
	if minCap > capacity {
		minCap = capacity
	}
	a.minLevels = 1
	for sum := a.sizes[0]; a.minLevels < len(a.sizes) && sum < minCap; a.minLevels++ {
		sum += a.sizes[a.minLevels]
	}
	for li := 0; li < a.minLevels; li++ {
		a.installLevel(li)
	}
	a.drainIdx.Store(-1)
	a.ladder.Store(packLadder(0, a.minLevels))
	a.retune()
	return a
}

// packLadder packs the publication word: generation above, active level
// count in the low 16 bits (the ladder has at most ~35 levels).
func packLadder(gen uint64, act int) uint64 { return gen<<16 | uint64(act) }

// activeLevels reads the published probe range.
func (a *ElasticArena) activeLevels() int { return int(a.ladder.Load() & 0xffff) }

// Generation reads the published resize generation (diagnostics, tests).
func (a *ElasticArena) Generation() uint64 { return a.ladder.Load() >> 16 }

// bumpGen republishes the ladder word with the generation advanced and the
// level count unchanged (drain start/cancel). Caller holds resizeBusy.
func (a *ElasticArena) bumpGen() {
	st := a.ladder.Load()
	a.ladder.Store(packLadder((st>>16)+1, int(st&0xffff)))
}

// installLevel allocates and publishes the level object for slot li.
// Caller holds resizeBusy (or is the constructor).
func (a *ElasticArena) installLevel(li int) {
	mk := shm.NewNameSpace
	if a.cfg.Padded {
		mk = shm.NewNameSpacePadded
	}
	label := fmt.Sprintf("%s:L%d", a.cfg.Label, li)
	lvl := &elLevel{
		space: mk(label, a.sizes[li]),
		idx:   li,
		base:  a.base[li],
		size:  a.sizes[li],
	}
	lvl.bytes = int64(lvl.space.FootprintBytes())
	if a.cfg.Lease.enabled() {
		lvl.stamps = shm.NewStamps(label+":lease", a.sizes[li])
		lvl.space.AttachStamps(lvl.stamps, 0)
		lvl.bytes += int64(lvl.stamps.Size()) * 8
	}
	a.levels[li].Store(lvl)
	a.resident.Add(lvl.bytes)
}

// retune recomputes the cached capacity and trigger thresholds after a
// ladder transition. Caller holds resizeBusy (or is the constructor).
func (a *ElasticArena) retune() {
	act := a.activeLevels()
	di := int(a.drainIdx.Load())
	cap := 0
	topActive := -1
	for li := 0; li < act; li++ {
		if li == di {
			continue
		}
		cap += a.sizes[li]
		topActive = li
	}
	a.capNow.Store(int64(cap))
	if int64(cap) > a.peakCap.Load() {
		a.peakCap.Store(int64(cap))
	}
	if act >= len(a.levels) && di < 0 {
		a.growTrip.Store(math.MaxInt64)
	} else {
		a.growTrip.Store(int64(a.cfg.GrowAt * float64(cap)))
	}
	if di >= 0 || act <= a.minLevels || topActive < 0 {
		a.shrinkTrip.Store(-1)
	} else {
		a.shrinkTrip.Store(int64(a.cfg.ShrinkAt * float64(cap-a.sizes[topActive])))
	}
}

// Label implements Arena.
func (a *ElasticArena) Label() string {
	scan := "bit"
	if a.cfg.WordScan {
		scan = "word"
	}
	return fmt.Sprintf("elastic-level(levels=%d/%d,probes=%d,scan=%s)",
		a.activeLevels(), len(a.levels), a.cfg.Probes, scan)
}

// Capacity implements Arena: the guarantee, reached through growth.
func (a *ElasticArena) Capacity() int { return a.cap }

// NameBound implements Arena: the full-ladder bound, identical to the
// fixed LevelArena's for the same capacity, constant across resizes.
func (a *ElasticArena) NameBound() int { return a.bound }

// Levels returns (resident, maximum) level counts (diagnostics).
func (a *ElasticArena) Levels() (active, max int) { return a.activeLevels(), len(a.levels) }

// CapacityNow implements registry.Elastic: the summed sizes of the active
// non-draining levels.
func (a *ElasticArena) CapacityNow() int { return int(a.capNow.Load()) }

// PeakCapacity implements registry.Elastic.
func (a *ElasticArena) PeakCapacity() int { return int(a.peakCap.Load()) }

// ResidentBytes implements registry.Footprint: bitmap words, saturation
// hints, and lease stamps of the resident levels.
func (a *ElasticArena) ResidentBytes() int64 { return a.resident.Load() }

// Resizes returns the cumulative (grows, shrinks, drain-cancels) counters
// (diagnostics and tests).
func (a *ElasticArena) Resizes() (grows, shrinks, cancels int64) {
	return a.grows.Load(), a.shrinks.Load(), a.cancels.Load()
}

// Leased reports whether the crash-recovery lease layer is on.
func (a *ElasticArena) Leased() bool { return a.cfg.Lease.enabled() }

// leaseStamp mirrors LevelArena.leaseStamp.
func (a *ElasticArena) leaseStamp(p *shm.Proc) uint64 {
	if !a.cfg.Lease.enabled() {
		return 0
	}
	return a.cfg.Lease.stamp(p)
}

// Grow implements registry.Elastic: append the next geometric level, or —
// when a drain is pending — cancel it (demand has returned; the draining
// level reopens before any allocation happens). It reports whether the
// ladder changed. Acquire calls it on every failed full pass and
// proactively at the GrowAt occupancy trip; tests and benchmarks force it.
func (a *ElasticArena) Grow() bool {
	if !a.resizeBusy.CompareAndSwap(false, true) {
		return false
	}
	defer a.resizeBusy.Store(false)
	if di := a.drainIdx.Load(); di >= 0 {
		lvl := a.levels[di].Load()
		lvl.state.Store(elActive)
		// Reopen the force-saturated probe hints; stale clears are
		// advisory-safe (a probe re-marks a genuinely full word).
		lvl.space.DesaturateAll()
		a.drainIdx.Store(-1)
		a.cancels.Add(1)
		a.bumpGen()
		a.retune()
		return true
	}
	st := a.ladder.Load()
	act := int(st & 0xffff)
	if act >= len(a.levels) {
		return false
	}
	a.installLevel(act)
	a.ladder.Store(packLadder((st>>16)+1, act+1))
	a.grows.Add(1)
	a.retune()
	return true
}

// Shrink implements registry.Elastic: initiate a drain of the top level if
// none is pending, then attempt to complete whichever drain is pending. It
// reports whether a level was actually retired — false while live holders
// (or parked cache blocks) keep the draining level occupied.
func (a *ElasticArena) Shrink() bool {
	a.startDrain(true)
	return a.finishDrain()
}

// startDrain marks the top level draining. When forced is false the
// occupancy hysteresis is re-checked under the resize guard (the trigger
// path); Shrink forces it regardless of occupancy.
func (a *ElasticArena) startDrain(forced bool) {
	if !a.resizeBusy.CompareAndSwap(false, true) {
		return
	}
	defer a.resizeBusy.Store(false)
	a.shrinkScore.Store(0)
	if a.drainIdx.Load() >= 0 {
		return
	}
	act := a.activeLevels()
	if act <= a.minLevels {
		return
	}
	if !forced {
		trip := a.shrinkTrip.Load()
		if trip < 0 || a.occ.Load() > trip {
			return
		}
	}
	top := a.levels[act-1].Load()
	top.state.Store(elDraining)
	// Force the saturation summary so word probes skip the level at zero
	// step cost; stragglers already past the state check revalidate and
	// self-release (see the publication-protocol comment above).
	top.space.SaturateAll()
	a.drainIdx.Store(int32(act - 1))
	a.bumpGen()
	a.retune()
}

// finishDrain retires the draining level once a full occupancy scan comes
// back clean, republishing the shorter ladder. It reports whether a level
// was retired.
func (a *ElasticArena) finishDrain() bool {
	if !a.resizeBusy.CompareAndSwap(false, true) {
		return false
	}
	defer a.resizeBusy.Store(false)
	di := a.drainIdx.Load()
	if di < 0 {
		return false
	}
	lvl := a.levels[di].Load()
	// The clean-scan proof: state was stored draining before this scan, so
	// a claim CAS the scan misses must itself load the draining state and
	// self-release — after one clean pass no name can ever be granted from
	// the level again, and nobody holds one (held bits would show here).
	if lvl.space.CountClaimed() != 0 {
		return false
	}
	lvl.state.Store(elRetired)
	st := a.ladder.Load()
	act := int(st & 0xffff)
	a.ladder.Store(packLadder((st>>16)+1, act-1))
	a.levels[di].Store(nil)
	a.resident.Add(-lvl.bytes)
	a.drainIdx.Store(-1)
	a.shrinks.Add(1)
	a.retune()
	return true
}

// Draining implements registry.Drainer: caching layers must not park a
// released name of a draining level (the parked claim would pin the drain).
func (a *ElasticArena) Draining(name int) bool {
	li, _ := a.locate(name)
	lvl := a.levels[li].Load()
	return lvl != nil && lvl.state.Load() != elActive
}

// noteAcquired records k granted names in lvl and runs the grow trigger.
// An acquire resets the shrink hysteresis only when it lands above the
// shrink trip: that occupancy is contention evidence against retiring the
// top level, while steady low-k churn — acquires included — is exactly the
// regime a shrink is for and must not keep vetoing it.
func (a *ElasticArena) noteAcquired(lvl *elLevel, k int) {
	occ := a.occ.Add(int64(k))
	if occ > a.shrinkTrip.Load() && a.shrinkScore.Load() != 0 {
		a.shrinkScore.Store(0)
	}
	if f := a.floor.Load(); f != int32(lvl.idx) {
		a.floor.Store(int32(lvl.idx))
	}
	if occ >= a.growTrip.Load() {
		a.Grow()
	}
}

// noteReleased records k released (or reclaimed) names in lvl and runs the
// shrink trigger: releases into a draining level (and a throttled sample of
// the others) attempt to complete the pending drain, and sustained low
// occupancy arms a new one.
func (a *ElasticArena) noteReleased(lvl *elLevel, k int) {
	occ := a.occ.Add(int64(-k))
	if f := a.floor.Load(); int32(lvl.idx) < f {
		a.floor.Store(int32(lvl.idx))
	}
	if di := a.drainIdx.Load(); di >= 0 {
		if int32(lvl.idx) == di || a.drainTick.Add(1)&15 == 0 {
			a.finishDrain()
		}
		return
	}
	if trip := a.shrinkTrip.Load(); trip >= 0 && occ <= trip {
		if a.shrinkScore.Add(1) >= int64(a.cfg.ShrinkAfter) {
			a.startDrain(false)
			a.finishDrain()
		}
	}
}

// unclaim hands a just-claimed slot straight back — the self-release of a
// claim that lost the revalidation race against a drain.
func (a *ElasticArena) unclaim(p *shm.Proc, lvl *elLevel, i int) {
	if lvl.stamps != nil {
		lvl.space.FreeStamped(p, i, a.cfg.Lease.holder(p))
		return
	}
	lvl.space.Free(p, i)
}

// granted revalidates a claim against the level state: a claim in a level
// that began draining self-releases and reports false, so the drain's
// clean-scan proof holds. On success it returns the global name.
func (a *ElasticArena) granted(p *shm.Proc, lvl *elLevel, i int) (int, bool) {
	if lvl.state.Load() != elActive {
		a.unclaim(p, lvl, i)
		return -1, false
	}
	a.noteAcquired(lvl, 1)
	return lvl.base + i, true
}

// claim is TryClaim or its stamped variant.
func claim(p *shm.Proc, s *shm.NameSpace, i int, stamp uint64) bool {
	if stamp == 0 {
		return s.TryClaim(p, i)
	}
	return s.TryClaimStamped(p, i, stamp)
}

// claimWord is ClaimFirstFree or its stamped variant.
func claimWord(p *shm.Proc, s *shm.NameSpace, w int, stamp uint64) int {
	if stamp == 0 {
		return s.ClaimFirstFree(p, w)
	}
	return s.ClaimFirstFreeStamped(p, w, stamp)
}

// claimUpTo is ClaimUpTo or its stamped variant.
func claimUpTo(p *shm.Proc, s *shm.NameSpace, w, k int, stamp uint64) uint64 {
	if stamp == 0 {
		return s.ClaimUpTo(p, w, k)
	}
	return s.ClaimUpToStamped(p, w, k, stamp)
}

// Acquire implements Arena: read the ladder word, probe the active levels
// from the floor hint, then a deterministic bottom-up backstop scan over
// every active level (the termination guarantee — when the ladder is fully
// grown its final level alone seats the full capacity). A failed full pass
// extends the ladder (or cancels a pending drain) and retries without
// consuming a pass; the ladder can only change a bounded number of times,
// so MaxPasses still bounds the call.
func (a *ElasticArena) Acquire(p *shm.Proc) int {
	stamp := a.leaseStamp(p)
	r := p.Rand()
	regrown := 0
	for pass := 0; a.cfg.MaxPasses == 0 || pass < a.cfg.MaxPasses; {
		act := a.activeLevels()
		floor := int(a.floor.Load())
		if floor >= act || floor < 0 {
			floor = 0
		}
		for li := floor; li < act; li++ {
			lvl := a.levels[li].Load()
			if lvl == nil || lvl.state.Load() != elActive {
				continue
			}
			if a.cfg.WordScan {
				words := lvl.space.Words()
				for t := 0; t < a.cfg.Probes; t++ {
					w := r.Intn(words)
					if lvl.space.WordSaturated(w) {
						continue
					}
					if i := claimWord(p, lvl.space, w, stamp); i >= 0 {
						if name, ok := a.granted(p, lvl, i); ok {
							return name
						}
					}
				}
			} else {
				for t := 0; t < a.cfg.Probes; t++ {
					i := r.Intn(lvl.size)
					if claim(p, lvl.space, i, stamp) {
						if name, ok := a.granted(p, lvl, i); ok {
							return name
						}
					}
				}
			}
		}
		// Deterministic backstop: every active level, bottom-up (tighter
		// names than a top-only scan, and correct at any ladder height).
		for li := 0; li < act; li++ {
			lvl := a.levels[li].Load()
			if lvl == nil || lvl.state.Load() != elActive {
				continue
			}
			if a.cfg.WordScan {
				for w := 0; w < lvl.space.Words(); w++ {
					if i := claimWord(p, lvl.space, w, stamp); i >= 0 {
						if name, ok := a.granted(p, lvl, i); ok {
							return name
						}
					}
				}
			} else {
				for i := 0; i < lvl.size; i++ {
					if lvl.space.Claimed(p, i) {
						continue
					}
					if claim(p, lvl.space, i, stamp) {
						if name, ok := a.granted(p, lvl, i); ok {
							return name
						}
					}
				}
			}
		}
		if regrown <= len(a.levels)+1 && a.structFull() && a.Grow() {
			regrown++
			continue
		}
		pass++
	}
	return -1
}

// structFull reports whether a failed pass is structural-fullness evidence
// that warrants extending the ladder (or cancelling a pin by a draining
// level, which structFull skips exactly as the pass did). A pass can also
// fail against a moving target — concurrent churn claiming slots ahead of
// the backstop cursor and freeing them behind it — and that must retry as
// an ordinary pass, not inflate residency: growth stays proportional to
// occupancy, never to scan luck. It reads the bitmaps rather than the occ
// counter: occ can drift under crash recovery (a holder that dies between
// its claim CAS and the occupancy bump is still swept, and the sweep's
// release is counted), and the bitmaps are the ground truth the failed
// pass just scanned anyway.
func (a *ElasticArena) structFull() bool {
	act := a.activeLevels()
	claimed, capacity := 0, 0
	for li := 0; li < act; li++ {
		lvl := a.levels[li].Load()
		if lvl == nil || lvl.state.Load() != elActive {
			continue
		}
		claimed += lvl.space.CountClaimed()
		capacity += lvl.size
	}
	return claimed >= capacity
}

// grantMask revalidates a whole claimed word mask: a drain racing the
// claim bounces the entire mask back (FreeMask semantics), otherwise the
// names are granted and appended.
func (a *ElasticArena) grantMask(p *shm.Proc, lvl *elLevel, w int, won uint64, out []int, k int) ([]int, int) {
	if won == 0 {
		return out, k
	}
	if lvl.state.Load() != elActive {
		if lvl.stamps != nil {
			lvl.space.FreeMaskStamped(p, w, won, a.cfg.Lease.holder(p))
		} else {
			lvl.space.FreeMask(p, w, won)
		}
		return out, k
	}
	pre := len(out)
	out, k = appendMask(out, lvl.base+w<<6, won, k)
	a.noteAcquired(lvl, len(out)-pre)
	return out, k
}

// AcquireN implements Arena. With WordScan the batch walks the active
// ladder claiming up to 64 names per step (each claimed mask revalidated
// against the level state as one unit); without it the batch degenerates
// to k independent Acquires, exactly like the fixed arena.
func (a *ElasticArena) AcquireN(p *shm.Proc, k int, out []int) []int {
	if !a.cfg.WordScan {
		for ; k > 0; k-- {
			n := a.Acquire(p)
			if n < 0 {
				break
			}
			out = append(out, n)
		}
		return out
	}
	stamp := a.leaseStamp(p)
	r := p.Rand()
	regrown := 0
	for pass := 0; k > 0 && (a.cfg.MaxPasses == 0 || pass < a.cfg.MaxPasses); {
		act := a.activeLevels()
		floor := int(a.floor.Load())
		if floor >= act || floor < 0 {
			floor = 0
		}
		for li := floor; k > 0 && li < act; li++ {
			lvl := a.levels[li].Load()
			if lvl == nil || lvl.state.Load() != elActive {
				continue
			}
			words := lvl.space.Words()
			for t := 0; k > 0 && t < a.cfg.Probes; t++ {
				w := r.Intn(words)
				if lvl.space.WordSaturated(w) {
					continue
				}
				out, k = a.grantMask(p, lvl, w, claimUpTo(p, lvl.space, w, k, stamp), out, k)
			}
		}
		for li := 0; k > 0 && li < act; li++ {
			lvl := a.levels[li].Load()
			if lvl == nil || lvl.state.Load() != elActive {
				continue
			}
			for w := 0; k > 0 && w < lvl.space.Words(); w++ {
				out, k = a.grantMask(p, lvl, w, claimUpTo(p, lvl.space, w, k, stamp), out, k)
			}
		}
		if k > 0 {
			if regrown <= len(a.levels)+1 && a.structFull() && a.Grow() {
				regrown++
				continue
			}
			pass++
		}
	}
	return out
}

// locate returns the ladder slot holding the global name and its local
// index; the shape is fixed, so retired slots still locate (to a nil
// level).
func (a *ElasticArena) locate(name int) (int, int) {
	if name < 0 || name >= a.bound {
		panic(fmt.Sprintf("longlived: name %d outside arena bound %d", name, a.bound))
	}
	li := sort.Search(len(a.base), func(i int) bool { return a.base[i] > name }) - 1
	return li, name - a.base[li]
}

// Release implements Arena. A name in a retired slot is by definition not
// held (retirement requires a clean occupancy scan), so the release is a
// no-op there, mirroring NameSpace.Free's release-of-free semantics.
func (a *ElasticArena) Release(p *shm.Proc, name int) {
	li, i := a.locate(name)
	lvl := a.levels[li].Load()
	if lvl == nil {
		return
	}
	if lvl.stamps != nil {
		if !lvl.space.FreeStamped(p, i, a.cfg.Lease.holder(p)) {
			return // reclaimed out from under the holder; occ already adjusted
		}
	} else {
		lvl.space.Free(p, i)
	}
	a.noteReleased(lvl, 1)
}

// ReleaseN implements Arena, coalescing names sharing a bitmap word of a
// level into one clearing step, exactly like the fixed arena.
func (a *ElasticArena) ReleaseN(p *shm.Proc, names []int) {
	switch len(names) {
	case 0:
		return
	case 1:
		a.Release(p, names[0])
		return
	}
	sorted := names
	if !sort.IntsAreSorted(sorted) {
		sorted = make([]int, len(names))
		copy(sorted, names)
		sort.Ints(sorted)
	}
	for i := 0; i < len(sorted); {
		li, loc := a.locate(sorted[i])
		w := loc >> 6
		mask := uint64(1) << (uint(loc) & 63)
		j := i + 1
		for ; j < len(sorted); j++ {
			lj, locj := a.locate(sorted[j])
			if lj != li || locj>>6 != w {
				break
			}
			mask |= 1 << (uint(locj) & 63)
		}
		if lvl := a.levels[li].Load(); lvl != nil {
			freed := mask
			if lvl.stamps != nil {
				freed = lvl.space.FreeMaskStamped(p, w, mask, a.cfg.Lease.holder(p))
			} else {
				lvl.space.FreeMask(p, w, mask)
			}
			if n := bits.OnesCount64(freed); n > 0 {
				a.noteReleased(lvl, n)
			}
		}
		i = j
	}
}

// LeaseDomains implements Recoverable: one domain per resident level
// (stamps follow levels), re-enumerated on every call so the recovery
// sweeper and heartbeats always see the current ladder. Reclaims flow
// through the same release accounting as client releases, keeping the
// resize triggers honest.
func (a *ElasticArena) LeaseDomains() []LeaseDomain {
	if !a.cfg.Lease.enabled() {
		return nil
	}
	var out []LeaseDomain
	for li := range a.levels {
		lvl := a.levels[li].Load()
		if lvl == nil {
			continue
		}
		l := lvl
		out = append(out, LeaseDomain{
			Base:   l.base,
			Stamps: l.stamps,
			IsHeld: l.space.Probe,
			Reclaim: func(p *shm.Proc, i int) {
				l.space.Free(p, i)
				a.noteReleased(l, 1)
			},
		})
	}
	return out
}

// Touch implements Arena.
func (a *ElasticArena) Touch(p *shm.Proc, name int) {
	li, i := a.locate(name)
	if lvl := a.levels[li].Load(); lvl != nil {
		lvl.space.Claimed(p, i)
	}
}

// IsHeld implements Arena.
func (a *ElasticArena) IsHeld(name int) bool {
	li, i := a.locate(name)
	lvl := a.levels[li].Load()
	return lvl != nil && lvl.space.Probe(i)
}

// Held implements Arena: an exact popcount over the resident levels (the
// occ counter is the trigger input, not the diagnostic source of truth).
func (a *ElasticArena) Held() int {
	h := 0
	for li := range a.levels {
		if lvl := a.levels[li].Load(); lvl != nil {
			h += lvl.space.CountClaimed()
		}
	}
	return h
}

// Probeables implements Arena: the resident levels at call time.
func (a *ElasticArena) Probeables() map[string]shm.Probeable {
	m := make(map[string]shm.Probeable)
	for li := range a.levels {
		if lvl := a.levels[li].Load(); lvl != nil {
			m[lvl.space.Label()] = lvl.space
		}
	}
	return m
}

// Clock implements Arena: bitmap levels need no hardware clock.
func (a *ElasticArena) Clock() func() { return nil }
