package longlived

import (
	"fmt"
	"testing"

	"shmrename/internal/prng"
	"shmrename/internal/sched"
	"shmrename/internal/shm"
	"shmrename/internal/taureg"
)

// nativeProc returns an ungated proc for direct (non-simulated) arena use.
func nativeProc(id int) *shm.Proc {
	return shm.NewProc(id, prng.NewStream(99, id), nil, 1<<22)
}

// arenas returns one instance of every backend at the given capacity,
// configured for direct native use — both probe paths and their
// word-granular counterparts, so every contract test covers all four.
func arenas(capacity, maxPasses int) []Arena {
	return []Arena{
		NewLevel(capacity, LevelConfig{MaxPasses: maxPasses, Label: "t-level"}),
		NewTau(capacity, TauConfig{MaxPasses: maxPasses, SelfClocked: true, Label: "t-tau"}),
		NewLevel(capacity, LevelConfig{MaxPasses: maxPasses, WordScan: true, Label: "t-level-w"}),
		NewTau(capacity, TauConfig{MaxPasses: maxPasses, WordScan: true, SelfClocked: true, Label: "t-tau-w"}),
	}
}

func TestAcquireReleaseReacquire(t *testing.T) {
	const capacity = 100
	for _, a := range arenas(capacity, 4) {
		t.Run(a.Label(), func(t *testing.T) {
			p := nativeProc(0)
			// Capacity is the guaranteed concurrency floor: at least that
			// many acquires must succeed with distinct in-bound names.
			// Beyond it the arena may keep serving from slack slots until
			// it is structurally full and reports -1.
			var names []int
			seen := make(map[int]bool)
			for {
				n := a.Acquire(p)
				if n == -1 {
					break
				}
				if n < 0 || n >= a.NameBound() {
					t.Fatalf("acquire %d: name %d outside [0,%d)", len(names), n, a.NameBound())
				}
				if seen[n] {
					t.Fatalf("acquire %d: name %d issued twice", len(names), n)
				}
				seen[n] = true
				names = append(names, n)
				if len(names) > a.NameBound() {
					t.Fatal("more live names than the name bound")
				}
			}
			if len(names) < capacity {
				t.Fatalf("only %d acquires before full, capacity %d guaranteed", len(names), capacity)
			}
			if h := a.Held(); h != len(names) {
				t.Fatalf("held %d, want %d", h, len(names))
			}
			// Touch and release everything; the names return to the pool.
			for _, n := range names {
				if !a.IsHeld(n) {
					t.Fatalf("name %d not held before release", n)
				}
				a.Touch(p, n)
				a.Release(p, n)
				if a.IsHeld(n) {
					t.Fatalf("name %d still held after release", n)
				}
			}
			if h := a.Held(); h != 0 {
				t.Fatalf("held %d after full drain, want 0", h)
			}
			// Long-lived: the drained arena serves a fresh generation.
			if n := a.Acquire(p); n < 0 {
				t.Fatal("reacquire after drain failed")
			}
		})
	}
}

func TestReleaseOutOfRangePanics(t *testing.T) {
	for _, a := range arenas(16, 1) {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: release of out-of-range name did not panic", a.Label())
				}
			}()
			a.Release(nativeProc(0), a.NameBound())
		}()
	}
}

func TestLevelGeometry(t *testing.T) {
	a := NewLevel(1024, LevelConfig{Base: 64, Label: "t-geom"})
	// Ladder 64,128,256,512 then the 1024 backstop.
	if got := a.Levels(); got != 5 {
		t.Fatalf("levels = %d, want 5", got)
	}
	if got := a.NameBound(); got != 64+128+256+512+1024 {
		t.Fatalf("name bound = %d", got)
	}
	// Capacity below Base degenerates to a single backstop level.
	small := NewLevel(8, LevelConfig{Base: 64, Label: "t-geom-s"})
	if small.Levels() != 1 || small.NameBound() != 8 {
		t.Fatalf("small arena: levels=%d bound=%d", small.Levels(), small.NameBound())
	}
}

func TestTauThresholdNeverExceeded(t *testing.T) {
	const capacity = 128
	a := NewTau(capacity, TauConfig{SelfClocked: true, Label: "t-thresh"})
	mon := NewMonitor(a.NameBound())
	sched.Run(sched.Config{
		N:    capacity,
		Seed: 5,
		Fast: sched.FastRandom,
		Body: ChurnBody(a, mon, ChurnConfig{Cycles: 3, HoldMin: 0, HoldMax: 6}),
	})
	if err := mon.Err(); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < a.NumDevices(); d++ {
		if c := a.Device(d).ConfirmedCount(); c > a.Tau() {
			t.Fatalf("device %d confirmed %d > tau %d", d, c, a.Tau())
		}
	}
	if h := a.Held(); h != 0 {
		t.Fatalf("%d names held after drain", h)
	}
}

// TestChurnSimulatedGolden pins the deterministic simulated-adversary churn
// outcome: for a fixed (seed, schedule) the monitor's aggregate fingerprint
// — acquires, peak occupancy, max issued name, and total acquire steps —
// must be bit-identical across refactors.
func TestChurnSimulatedGolden(t *testing.T) {
	type fingerprint struct {
		acquires, maxActive, maxName, acquireSteps int64
	}
	golden := map[string]fingerprint{
		"level/fifo":   {acquires: 144, maxActive: 27, maxName: 63, acquireSteps: 268},
		"level/random": {acquires: 144, maxActive: 26, maxName: 63, acquireSteps: 245},
		"tau/fifo":     {acquires: 144, maxActive: 27, maxName: 65, acquireSteps: 541},
		"tau/random":   {acquires: 144, maxActive: 20, maxName: 65, acquireSteps: 530},
	}
	run := func(mk func() Arena, fast sched.FastMode) fingerprint {
		a := mk()
		mon := NewMonitor(a.NameBound())
		sched.Run(sched.Config{
			N:         48,
			Seed:      42,
			Fast:      fast,
			Body:      ChurnBody(a, mon, ChurnConfig{Cycles: 3, HoldMin: 0, HoldMax: 4}),
			AfterStep: a.Clock(),
		})
		if err := mon.Err(); err != nil {
			t.Fatal(err)
		}
		if h := a.Held(); h != 0 {
			t.Fatalf("%d names held after drain", h)
		}
		return fingerprint{mon.Acquires(), mon.MaxActive(), mon.MaxName(), mon.AcquireSteps()}
	}
	backends := map[string]func() Arena{
		"level": func() Arena { return NewLevel(64, LevelConfig{Label: "t-golden-l"}) },
		"tau":   func() Arena { return NewTau(64, TauConfig{Label: "t-golden-t"}) },
	}
	modes := map[string]sched.FastMode{"fifo": sched.FastFIFO, "random": sched.FastRandom}
	for bname, mk := range backends {
		for mname, mode := range modes {
			key := bname + "/" + mname
			got := run(mk, mode)
			want, ok := golden[key]
			if !ok {
				t.Fatalf("%s: no golden (got %+v)", key, got)
			}
			if got != want {
				t.Errorf("%s: fingerprint %+v, want golden %+v", key, got, want)
			}
		}
	}
}

// TestChurnWordScanGolden pins the deterministic churn fingerprint of the
// word-granular fast path, exactly as TestChurnSimulatedGolden pins the
// probe path: the word engine is behind a config switch, and each mode has
// its own bit-identical contract.
func TestChurnWordScanGolden(t *testing.T) {
	type fingerprint struct {
		acquires, maxActive, maxName, acquireSteps int64
	}
	golden := map[string]fingerprint{
		"level-word/fifo":   {acquires: 144, maxActive: 38, maxName: 47, acquireSteps: 144},
		"level-word/random": {acquires: 144, maxActive: 33, maxName: 40, acquireSteps: 144},
		"tau-word/fifo":     {acquires: 144, maxActive: 32, maxName: 63, acquireSteps: 490},
		"tau-word/random":   {acquires: 144, maxActive: 22, maxName: 65, acquireSteps: 495},
	}
	run := func(mk func() Arena, fast sched.FastMode) fingerprint {
		a := mk()
		mon := NewMonitor(a.NameBound())
		sched.Run(sched.Config{
			N:         48,
			Seed:      42,
			Fast:      fast,
			Body:      ChurnBody(a, mon, ChurnConfig{Cycles: 3, HoldMin: 0, HoldMax: 4}),
			AfterStep: a.Clock(),
		})
		if err := mon.Err(); err != nil {
			t.Fatal(err)
		}
		if h := a.Held(); h != 0 {
			t.Fatalf("%d names held after drain", h)
		}
		return fingerprint{mon.Acquires(), mon.MaxActive(), mon.MaxName(), mon.AcquireSteps()}
	}
	backends := map[string]func() Arena{
		"level-word": func() Arena { return NewLevel(64, LevelConfig{WordScan: true, Label: "t-goldenw-l"}) },
		"tau-word":   func() Arena { return NewTau(64, TauConfig{WordScan: true, Label: "t-goldenw-t"}) },
	}
	modes := map[string]sched.FastMode{"fifo": sched.FastFIFO, "random": sched.FastRandom}
	for bname, mk := range backends {
		for mname, mode := range modes {
			key := bname + "/" + mname
			got := run(mk, mode)
			want, ok := golden[key]
			if !ok {
				t.Fatalf("%s: no golden (got %+v)", key, got)
			}
			if got != want {
				t.Errorf("%s: fingerprint %+v, want golden %+v", key, got, want)
			}
		}
	}
}

// TestBatchAcquireRelease checks the batch contract on every backend:
// AcquireN serves distinct in-bound names up to capacity, partial batches
// appear only when the arena is structurally full, and ReleaseN drains.
func TestBatchAcquireRelease(t *testing.T) {
	const capacity = 96
	for _, a := range arenas(capacity, 4) {
		t.Run(a.Label(), func(t *testing.T) {
			p := nativeProc(0)
			seen := make(map[int]bool)
			var batches [][]int
			total := 0
			for total < capacity {
				k := 7
				if rem := capacity - total; k > rem {
					k = rem
				}
				names := a.AcquireN(p, k, nil)
				if len(names) != k {
					t.Fatalf("batch at %d held: got %d of %d (capacity %d guaranteed)",
						total, len(names), k, capacity)
				}
				for _, n := range names {
					if n < 0 || n >= a.NameBound() {
						t.Fatalf("name %d outside [0,%d)", n, a.NameBound())
					}
					if seen[n] {
						t.Fatalf("name %d issued twice", n)
					}
					seen[n] = true
				}
				batches = append(batches, names)
				total += k
			}
			if h := a.Held(); h != total {
				t.Fatalf("held %d, want %d", h, total)
			}
			// Beyond structural capacity the batch comes back short, and
			// what was granted is consistent (still unique, still in bound).
			over := a.AcquireN(p, a.NameBound(), nil)
			for _, n := range over {
				if seen[n] {
					t.Fatalf("over-batch reissued held name %d", n)
				}
				seen[n] = true
			}
			if len(over)+total > a.NameBound() {
				t.Fatalf("issued %d names, bound %d", len(over)+total, a.NameBound())
			}
			a.ReleaseN(p, over)
			for _, b := range batches {
				a.ReleaseN(p, b)
			}
			if h := a.Held(); h != 0 {
				t.Fatalf("held %d after batch drain", h)
			}
			// The drained arena serves a fresh batch generation.
			if names := a.AcquireN(p, 5, nil); len(names) != 5 {
				t.Fatalf("reacquire batch got %d of 5", len(names))
			}
		})
	}
}

// TestBatchChurnSimulated runs the E17 workload shape on the simulator:
// batch churn with demand exactly equal to capacity, the full-occupancy
// regime. Safety (unique live names) and a full drain must hold for both
// scan modes.
func TestBatchChurnSimulated(t *testing.T) {
	const workers, batch = 16, 4
	backends := map[string]func() Arena{
		"level-bit":  func() Arena { return NewLevel(workers*batch, LevelConfig{Label: "t-bchurn-l"}) },
		"level-word": func() Arena { return NewLevel(workers*batch, LevelConfig{WordScan: true, Label: "t-bchurn-lw"}) },
		"tau-bit":    func() Arena { return NewTau(workers*batch, TauConfig{Label: "t-bchurn-t"}) },
		"tau-word":   func() Arena { return NewTau(workers*batch, TauConfig{WordScan: true, Label: "t-bchurn-tw"}) },
	}
	for name, mk := range backends {
		t.Run(name, func(t *testing.T) {
			a := mk()
			mon := NewMonitor(a.NameBound())
			res := sched.Run(sched.Config{
				N:         workers,
				Seed:      11,
				Fast:      sched.FastFIFO,
				Body:      BatchChurnBody(a, mon, ChurnConfig{Cycles: 3, HoldMin: 0, HoldMax: 4}, batch),
				AfterStep: a.Clock(),
			})
			if err := mon.Err(); err != nil {
				t.Fatal(err)
			}
			if got := sched.CountStatus(res, sched.Unnamed); got != workers {
				t.Fatalf("%d of %d workers drained", got, workers)
			}
			if want := int64(workers) * 3 * batch; mon.Acquires() != want {
				t.Fatalf("acquires = %d, want %d", mon.Acquires(), want)
			}
			if h := a.Held(); h != 0 {
				t.Fatalf("%d names held after drain", h)
			}
		})
	}
}

// TestBatchChurnRaceStorm hammers the batch API from real goroutines under
// -race: whole batches acquired and released concurrently, never two live
// holders of one name.
func TestBatchChurnRaceStorm(t *testing.T) {
	const workers, batch = 24, 4
	cycles := 100
	if testing.Short() {
		cycles = 20
	}
	for _, mk := range []func() Arena{
		func() Arena {
			return NewLevel(workers*batch, LevelConfig{WordScan: true, Padded: true, Label: "t-bstorm-l"})
		},
		func() Arena {
			return NewTau(workers*batch, TauConfig{WordScan: true, SelfClocked: true, Padded: true, Label: "t-bstorm-t"})
		},
	} {
		a := mk()
		t.Run(a.Label(), func(t *testing.T) {
			mon := NewMonitor(a.NameBound())
			res := sched.RunNative(workers, 5, BatchChurnBody(a, mon, ChurnConfig{
				Cycles: cycles, HoldMin: 0, HoldMax: 4,
			}, batch))
			if err := mon.Err(); err != nil {
				t.Fatal(err)
			}
			if got := sched.CountStatus(res, sched.Unnamed); got != workers {
				t.Fatalf("%d of %d workers drained", got, workers)
			}
			if want := int64(workers) * int64(cycles) * batch; mon.Acquires() != want {
				t.Fatalf("acquires = %d, want %d", mon.Acquires(), want)
			}
			if h := a.Held(); h != 0 {
				t.Fatalf("%d names held after storm", h)
			}
		})
	}
}

// TestWordScanFullOccupancyCheaper pins the point of the word engine with
// a deterministic steps comparison: at full occupancy minus one slot, a
// probe-path acquire pays per-bit probes plus a per-name backstop scan,
// while the word path pays per-word snapshots — at least an order of
// magnitude fewer shared-memory accesses at this size.
func TestWordScanFullOccupancyCheaper(t *testing.T) {
	const capacity = 1024
	steps := func(wordScan bool) int64 {
		a := NewLevel(capacity, LevelConfig{WordScan: wordScan, MaxPasses: 4,
			Label: fmt.Sprintf("t-occ-%v", wordScan)})
		filler := nativeProc(1)
		for {
			if a.Acquire(filler) < 0 {
				break
			}
		}
		// Free exactly one slot in the backstop level, then measure one
		// acquire finding it.
		free := a.NameBound() - 1
		a.Release(filler, free)
		p := nativeProc(2)
		before := p.Steps()
		if got := a.Acquire(p); got != free {
			t.Fatalf("wordScan=%v: acquired %d, want the freed slot %d", wordScan, got, free)
		}
		return p.Steps() - before
	}
	probe := steps(false)
	word := steps(true)
	if word*10 > probe {
		t.Fatalf("word path %d steps vs probe path %d: want >= 10x cheaper at full occupancy", word, probe)
	}
}

// TestChurnAdversarial runs churn under the adaptive policies, including
// the release-starving collider: safety (unique live names) and liveness
// (every worker drains) must hold under every adversary.
func TestChurnAdversarial(t *testing.T) {
	policies := map[string]func() sched.Policy{
		"round-robin": sched.RoundRobin,
		"collider":    sched.Collider,
		"starve":      func() sched.Policy { return sched.Starve(0, 1, 2) },
	}
	for pname, mk := range policies {
		for _, backend := range []string{"level", "tau"} {
			t.Run(backend+"/"+pname, func(t *testing.T) {
				var a Arena
				if backend == "level" {
					a = NewLevel(32, LevelConfig{Label: "t-adv-l"})
				} else {
					a = NewTau(32, TauConfig{Label: "t-adv-t"})
				}
				mon := NewMonitor(a.NameBound())
				res := sched.Run(sched.Config{
					N:         24,
					Seed:      7,
					Policy:    mk(),
					Body:      ChurnBody(a, mon, ChurnConfig{Cycles: 2, HoldMin: 0, HoldMax: 3}),
					AfterStep: a.Clock(),
					Spaces:    a.Probeables(),
				})
				if err := mon.Err(); err != nil {
					t.Fatal(err)
				}
				if got := sched.CountStatus(res, sched.Unnamed); got != 24 {
					t.Fatalf("%d of 24 workers drained", got)
				}
				if h := a.Held(); h != 0 {
					t.Fatalf("%d names held after drain", h)
				}
			})
		}
	}
}

// TestChurnRaceStorm is the -race storm of the acceptance criteria: real
// goroutines hammer Acquire/Release concurrently and the monitor asserts
// that no two live holders ever share a name at any instant.
func TestChurnRaceStorm(t *testing.T) {
	const workers = 48
	cycles := 200
	if testing.Short() {
		cycles = 40
	}
	for _, mk := range []func() Arena{
		func() Arena {
			return NewLevel(workers, LevelConfig{Padded: true, Label: "t-storm-l"})
		},
		func() Arena {
			return NewTau(workers, TauConfig{SelfClocked: true, Padded: true, Label: "t-storm-t"})
		},
	} {
		a := mk()
		t.Run(a.Label(), func(t *testing.T) {
			mon := NewMonitor(a.NameBound())
			res := sched.RunNative(workers, 3, ChurnBody(a, mon, ChurnConfig{
				Cycles: cycles, HoldMin: 0, HoldMax: 4,
			}))
			if err := mon.Err(); err != nil {
				t.Fatal(err)
			}
			if got := sched.CountStatus(res, sched.Unnamed); got != workers {
				t.Fatalf("%d of %d workers drained", got, workers)
			}
			if want := int64(workers) * int64(cycles); mon.Acquires() != want {
				t.Fatalf("acquires = %d, want %d", mon.Acquires(), want)
			}
			if h := a.Held(); h != 0 {
				t.Fatalf("%d names held after storm", h)
			}
		})
	}
}

// TestDeviceReleaseBit covers the long-lived τ-register extension directly:
// a released bit frees device capacity and becomes winnable again.
func TestDeviceReleaseBit(t *testing.T) {
	d := taureg.NewDevice("t-release-dev", 8, 2, true)
	p := nativeProc(0)
	if d.AcquireBit(p, 3) != taureg.Won {
		t.Fatal("bit 3 not won")
	}
	if d.AcquireBit(p, 5) != taureg.Won {
		t.Fatal("bit 5 not won")
	}
	// Threshold reached: a third bit must lose.
	if d.AcquireBit(p, 1) != taureg.Lost {
		t.Fatal("bit 1 won beyond threshold")
	}
	d.ReleaseBit(p, 3)
	in, out := d.Snapshot()
	if in&(1<<3) != 0 || out&(1<<3) != 0 {
		t.Fatalf("bit 3 still set after release: in=%b out=%b", in, out)
	}
	// The freed capacity and the freed bit are both reusable.
	if d.AcquireBit(p, 3) != taureg.Won {
		t.Fatal("released bit 3 not rewinnable")
	}
	if d.ConfirmedCount() != 2 {
		t.Fatalf("confirmed %d, want 2", d.ConfirmedCount())
	}
}

// TestMonitorDetectsViolations verifies the churn monitor itself reports
// double-acquire and foreign-release.
func TestMonitorDetectsViolations(t *testing.T) {
	m := NewMonitor(4)
	m.NoteAcquire(0, 2, 1)
	m.NoteAcquire(1, 2, 1)
	if m.Err() == nil {
		t.Fatal("double acquire not detected")
	}
	m = NewMonitor(4)
	m.NoteAcquire(0, 2, 1)
	m.NoteRelease(1, 2)
	if m.Err() == nil {
		t.Fatal("foreign release not detected")
	}
}

func ExampleChurnBody() {
	arena := NewLevel(8, LevelConfig{Label: "example-arena"})
	mon := NewMonitor(arena.NameBound())
	sched.Run(sched.Config{
		N:    4,
		Seed: 1,
		Fast: sched.FastFIFO,
		Body: ChurnBody(arena, mon, ChurnConfig{Cycles: 2}),
	})
	fmt.Println("acquires:", mon.Acquires(), "violations:", mon.Err() == nil, "held:", arena.Held())
	// Output: acquires: 8 violations: true held: 0
}
