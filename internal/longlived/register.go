package longlived

import (
	"shmrename/internal/registry"
	"shmrename/internal/shm"
)

// Lease translates the registry's common lease fields into this package's
// LeaseOpts: nil when the registry config leaves the lease layer off,
// per-proc default holders unless the config pins a single identity.
// Backend register files (here, sharded, leasecache) share it so the
// holder-resolution rule cannot diverge between backends.
func Lease(cfg registry.Config) *LeaseOpts {
	if cfg.Epochs == nil {
		return nil
	}
	opts := &LeaseOpts{Epochs: cfg.Epochs}
	if cfg.Holder != 0 {
		h := cfg.Holder
		opts.Holder = func(*shm.Proc) uint64 { return h }
	}
	return opts
}

// The registered constructors build the canonical simulated-mode shapes —
// the per-bit probe path ChurnBackends has always measured (BENCH_2.json's
// workload definition), with self-clocked τ — so the registry rows of the
// E15 churn experiment stay comparable with the recorded trajectories.
// All three backends implement the bit and word scan engines, so they
// honor the Config.Scan override (the E17 word-vs-bit matrix sweeps it) and
// the Padded knob for native multicore runs. "elastic-level" additionally
// honors Config.Elastic and declares Caps.Elastic, which opts it into the
// conformance resize laws and the adaptivity gates of E15/E17.
func init() {
	registry.Register(registry.Backend{
		Name: "level-array",
		Caps: registry.Caps{
			Releasable:    true,
			Leasable:      true,
			Deterministic: true,
			SelfHealing:   true,
		},
		New: func(cfg registry.Config) registry.Arena {
			return NewLevel(cfg.Capacity, LevelConfig{
				MaxPasses: cfg.MaxPasses,
				WordScan:  cfg.Scan == "word",
				Padded:    cfg.Padded,
				Lease:     Lease(cfg),
				Label:     cfg.Label,
			})
		},
	})
	registry.Register(registry.Backend{
		Name: "elastic-level",
		Caps: registry.Caps{
			Releasable:    true,
			Leasable:      true,
			Deterministic: true, // resizes serialize under the simulated gate
			Elastic:       true,
		},
		New: func(cfg registry.Config) registry.Arena {
			ecfg := ElasticConfig{
				MaxPasses: cfg.MaxPasses,
				WordScan:  cfg.Scan == "word",
				Padded:    cfg.Padded,
				Lease:     Lease(cfg),
				Label:     cfg.Label,
			}
			if e := cfg.Elastic; e != nil {
				ecfg.MinCapacity = e.MinCapacity
				ecfg.GrowAt = e.GrowAt
				ecfg.ShrinkAt = e.ShrinkAt
				ecfg.ShrinkAfter = e.ShrinkAfter
			}
			return NewElastic(cfg.Capacity, ecfg)
		},
	})
	registry.Register(registry.Backend{
		Name: "tau-longlived",
		Caps: registry.Caps{
			Releasable:    true,
			Leasable:      true,
			Deterministic: true,
			LeaksOnCrash:  true, // device bits; see TauConfig.Lease
		},
		New: func(cfg registry.Config) registry.Arena {
			return NewTau(cfg.Capacity, TauConfig{
				MaxPasses:   cfg.MaxPasses,
				WordScan:    cfg.Scan == "word",
				Padded:      cfg.Padded,
				SelfClocked: true,
				Lease:       Lease(cfg),
				Label:       cfg.Label,
			})
		},
	})
}
