package metrics

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned report table with text and CSV
// rendering, used for every experiment's output.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10 || v <= -10:
		return fmt.Sprintf("%.1f", v)
	case v >= 0.01 || v <= -0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.2e", v)
	}
}

// Render returns the aligned text form.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV returns the comma-separated form (quoting cells that need it).
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, cell := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(cell, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(cell)
		}
	}
	b.WriteByte('\n')
}
