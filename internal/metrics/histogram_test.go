package metrics

import (
	"math/rand"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 {
		t.Fatalf("empty count = %d", h.Count())
	}
	if h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatalf("empty min/max/mean = %d/%d/%f", h.Min(), h.Max(), h.Mean())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
	// Merging an empty histogram into an empty histogram stays empty.
	var h2 Histogram
	h.Merge(&h2)
	h.Merge(nil)
	if h.Count() != 0 {
		t.Fatalf("count after empty merges = %d", h.Count())
	}
}

func TestHistogramSingleBucket(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Record(42) // exact region: one bucket holds everything
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	for _, q := range []float64{0, 0.001, 0.5, 0.99, 0.999, 1} {
		if got := h.Quantile(q); got != 42 {
			t.Fatalf("Quantile(%v) = %d, want 42", q, got)
		}
	}
	if h.Min() != 42 || h.Max() != 42 || h.Mean() != 42 {
		t.Fatalf("min/max/mean = %d/%d/%f", h.Min(), h.Max(), h.Mean())
	}
}

func TestHistogramSingleLogBucket(t *testing.T) {
	// All values land in one log bucket above the exact region; the
	// quantile must clamp to the recorded max, not the bucket bound.
	var h Histogram
	h.Record(1 << 20)
	if got := h.Quantile(0.99); got != 1<<20 {
		t.Fatalf("Quantile(0.99) = %d, want %d", got, 1<<20)
	}
	if got := h.Quantile(0); got != 1<<20 {
		t.Fatalf("Quantile(0) = %d, want %d", got, 1<<20)
	}
}

func TestHistogramExactBelow64(t *testing.T) {
	// Values below 2^subBits land in exact buckets: quantiles are exact.
	var h Histogram
	for v := int64(0); v < 64; v++ {
		h.Record(v)
	}
	if got := h.Quantile(0.5); got != 31 {
		t.Fatalf("p50 = %d, want 31", got)
	}
	if got := h.Quantile(1); got != 63 {
		t.Fatalf("p100 = %d, want 63", got)
	}
	if got := h.Quantile(0.001); got != 0 {
		t.Fatalf("p0.1 = %d, want 0", got)
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative record: min=%d max=%d n=%d", h.Min(), h.Max(), h.Count())
	}
}

func TestHistogramBucketRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose bounds contain it, and
	// bucket indices must be monotone in the value.
	prev := -1
	for _, v := range []int64{0, 1, 31, 32, 63, 64, 65, 127, 128, 1000,
		1 << 16, 1<<16 + 1, 1 << 40, 1<<62 + 12345} {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex(%d) = %d < previous %d", v, i, prev)
		}
		prev = i
		if up := bucketUpper(i); v > up {
			t.Fatalf("value %d above its bucket %d upper bound %d", v, i, up)
		}
		if i+1 < histBuckets {
			// The next bucket starts strictly above this one's upper bound.
			if lo := bucketUpper(i); bucketUpper(i+1) <= lo {
				t.Fatalf("bucket %d upper %d not increasing", i, lo)
			}
		}
	}
}

func TestHistogramRelativeError(t *testing.T) {
	// Quantile estimates stay within the 1/2^subBits relative-error
	// envelope of the true nearest-rank quantile.
	rng := rand.New(rand.NewSource(7))
	samples := make([]int64, 0, 20000)
	var h Histogram
	for i := 0; i < 20000; i++ {
		v := int64(rng.ExpFloat64() * 50e3) // latency-shaped: long tail
		samples = append(samples, v)
		h.Record(v)
	}
	s := Summarize(samples)
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0.50, s.P50}, {0.90, s.P90}, {0.99, s.P99}} {
		got := h.Quantile(tc.q)
		lo := float64(tc.want) * (1 - 1.0/(1<<subBits))
		hi := float64(tc.want) * (1 + 1.0/(1<<subBits))
		if float64(got) < lo || float64(got) > hi {
			t.Errorf("Quantile(%v) = %d, want within [%.0f, %.0f] of %d",
				tc.q, got, lo, hi, tc.want)
		}
	}
}

func TestHistogramMergeExact(t *testing.T) {
	// Merge must be indistinguishable from recording both streams into
	// one histogram.
	rng := rand.New(rand.NewSource(11))
	var a, b, whole Histogram
	for i := 0; i < 5000; i++ {
		v := int64(rng.Intn(1 << 30))
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		whole.Record(v)
	}
	a.Merge(&b)
	if a.Count() != whole.Count() || a.Min() != whole.Min() ||
		a.Max() != whole.Max() || a.Mean() != whole.Mean() {
		t.Fatalf("merged stats diverge: %v vs %v", a.String(), whole.String())
	}
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("merged Quantile(%v) = %d, direct = %d",
				q, a.Quantile(q), whole.Quantile(q))
		}
	}
}

func TestHistogramMergeIntoEmpty(t *testing.T) {
	var a, b Histogram
	b.Record(100)
	b.Record(200)
	a.Merge(&b)
	if a.Count() != 2 || a.Min() != 100 || a.Max() != 200 {
		t.Fatalf("merge into empty: %s", a.String())
	}
	// And the other direction: merging empty leaves b untouched.
	var empty Histogram
	b.Merge(&empty)
	if b.Count() != 2 || b.Min() != 100 || b.Max() != 200 {
		t.Fatalf("merge of empty changed b: %s", b.String())
	}
}
