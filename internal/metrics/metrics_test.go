package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]int64{5, 1, 9, 3, 7})
	if s.Count != 5 || s.Min != 1 || s.Max != 9 {
		t.Fatalf("summary %+v", s)
	}
	if s.P50 != 5 {
		t.Fatalf("p50 = %d, want 5", s.P50)
	}
	if math.Abs(s.Mean-5) > 1e-9 {
		t.Fatalf("mean = %v", s.Mean)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Max != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []int64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestQuantiles(t *testing.T) {
	samples := make([]int64, 100)
	for i := range samples {
		samples[i] = int64(i + 1) // 1..100
	}
	s := Summarize(samples)
	if s.P50 != 50 || s.P90 != 90 || s.P99 != 99 {
		t.Fatalf("quantiles %+v", s)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]int64{1, 2, 3})
	if !strings.Contains(s.String(), "p50=2") {
		t.Fatalf("String() = %q", s.String())
	}
}

func TestFitLinearExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 3 + 2x
	f := FitLinear(x, y)
	if math.Abs(f.A-3) > 1e-9 || math.Abs(f.B-2) > 1e-9 {
		t.Fatalf("fit %+v", f)
	}
	if math.Abs(f.R2-1) > 1e-9 {
		t.Fatalf("R2 = %v", f.R2)
	}
}

func TestFitLinearDegenerate(t *testing.T) {
	if f := FitLinear([]float64{1}, []float64{2}); f.B != 0 {
		t.Fatalf("single point fit %+v", f)
	}
	if f := FitLinear([]float64{2, 2}, []float64{1, 3}); f.B != 0 {
		t.Fatalf("vertical fit %+v", f)
	}
	if f := FitLinear([]float64{1, 2}, []float64{3}); f.B != 0 {
		t.Fatalf("mismatched lengths %+v", f)
	}
}

func TestFitAgainstPrefersTrueShape(t *testing.T) {
	// Synthesize y = 4·log2(n) + noiseless; the log fit must beat the
	// linear fit on R² and recover B ≈ 4.
	ns := []int{1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16}
	y := make([]float64, len(ns))
	for i, n := range ns {
		y[i] = 4 * math.Log2(float64(n))
	}
	logFit := FitAgainst(ns, y, ShapeLog)
	linFit := FitAgainst(ns, y, ShapeLinear)
	if math.Abs(logFit.B-4) > 1e-9 || logFit.R2 < 0.999999 {
		t.Fatalf("log fit %+v", logFit)
	}
	if linFit.R2 >= logFit.R2 {
		t.Fatalf("linear fit R2 %v should lose to log fit %v", linFit.R2, logFit.R2)
	}
}

func TestShapes(t *testing.T) {
	if ShapeLog(1024) != 10 {
		t.Fatal("ShapeLog")
	}
	if ShapeLogLog(1<<16) != 4 {
		t.Fatal("ShapeLogLog")
	}
	if ShapeLinear(7) != 7 {
		t.Fatal("ShapeLinear")
	}
	if ShapeLog2Sq(1024) != 100 {
		t.Fatal("ShapeLog2Sq")
	}
	if ShapeLogLogPow(2)(1<<16) != 16 {
		t.Fatal("ShapeLogLogPow")
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("demo", "n", "steps", "bound")
	tab.AddRow(1024, int64(17), 10.0)
	tab.AddRow(65536, int64(23), 16.0)
	out := tab.Render()
	if !strings.Contains(out, "## demo") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "65536") || !strings.Contains(out, "23") {
		t.Fatalf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestTableNote(t *testing.T) {
	tab := NewTable("x", "a")
	tab.Note = "claim: y <= z"
	if !strings.Contains(tab.Render(), "claim: y <= z") {
		t.Fatal("note missing")
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("demo", "a", "b")
	tab.AddRow("plain", `with"quote`)
	tab.AddRow("x,y", 3)
	csv := tab.CSV()
	want := "a,b\nplain,\"with\"\"quote\"\n\"x,y\",3\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestFloatFormatting(t *testing.T) {
	tab := NewTable("f", "v")
	tab.AddRow(0.0)
	tab.AddRow(1234.5678)
	tab.AddRow(12.345)
	tab.AddRow(0.123456)
	tab.AddRow(0.0001234)
	out := tab.CSV()
	for _, want := range []string{"0\n", "1235\n", "12.3\n", "0.123\n", "1.23e-04\n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV missing %q:\n%s", want, out)
		}
	}
}
