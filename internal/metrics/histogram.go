package metrics

import (
	"fmt"
	"math"
	"math/bits"
)

// Histogram is an HDR-style log-bucketed histogram of non-negative int64
// values (typically latencies in nanoseconds). Values below 2^subBits are
// recorded exactly; above that, each power-of-two octave is split into
// 2^subBits sub-buckets, bounding relative quantile error at
// 1/2^subBits ≈ 3%. Histograms recorded independently (for example one
// per worker goroutine) merge losslessly with Merge, which is what lets
// the open-loop harness record latencies without cross-goroutine
// coordination on the hot path.
//
// The zero value is an empty histogram ready for use. Histogram is not
// safe for concurrent use; record into per-worker histograms and Merge.
type Histogram struct {
	counts [histBuckets]uint64
	total  uint64
	sum    int64
	min    int64
	max    int64
}

const (
	// subBits fixes the precision: 2^subBits sub-buckets per octave.
	subBits = 5
	// histOctaves covers the full non-negative int64 range: values with
	// bit length up to 63 plus the exact region below 2^subBits.
	histOctaves = 64 - subBits
	// histBuckets is the total bucket count: one exact region of
	// 2^subBits buckets plus histOctaves octaves of 2^subBits each.
	histBuckets = (histOctaves + 1) << subBits
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < 1<<subBits {
		return int(v)
	}
	// exp is the index of the highest set bit; the top subBits+1 bits
	// select the sub-bucket within the octave.
	exp := bits.Len64(uint64(v)) - 1
	sub := int(v>>(uint(exp)-subBits)) - (1 << subBits)
	return (exp-subBits+1)<<subBits + sub
}

// bucketUpper returns the inclusive upper bound of bucket i, the value
// reported for quantiles that land in it.
func bucketUpper(i int) int64 {
	if i < 1<<subBits {
		return int64(i)
	}
	octave := i>>subBits - 1
	sub := i & (1<<subBits - 1)
	base := int64(1<<subBits+sub) << uint(octave)
	width := int64(1) << uint(octave)
	return base + width - 1
}

// Record adds one observation. Negative values clamp to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[bucketIndex(v)]++
	h.total++
	h.sum += v
}

// Merge folds other into h. Merging is exact: the merged histogram is
// identical to one that recorded both sample streams directly.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.total == 0 {
		return
	}
	if h.total == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the exact arithmetic mean, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Min returns the smallest recorded value (exact), or 0 when empty.
func (h *Histogram) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value (exact), or 0 when empty.
func (h *Histogram) Max() int64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) as the inclusive upper
// bound of the bucket holding the nearest-rank observation, clamped to
// the exact recorded min/max. An empty histogram yields 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := bucketUpper(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// String renders the key quantiles compactly.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d min=%d p50=%d p99=%d p999=%d max=%d mean=%.1f",
		h.total, h.Min(), h.Quantile(0.50), h.Quantile(0.99),
		h.Quantile(0.999), h.Max(), h.Mean())
}
