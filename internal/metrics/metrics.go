// Package metrics aggregates per-process measurements into the statistics
// the experiment harness reports: step-count summaries, survivor counts,
// and least-squares fits of measured step complexity against the
// asymptotic shapes the paper claims (log n, (log log n)^ℓ, ...).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds order statistics of a sample of int64 measurements.
type Summary struct {
	Count int
	Min   int64
	Max   int64
	Mean  float64
	P50   int64
	P90   int64
	P99   int64
}

// Summarize computes order statistics. An empty sample yields a zero
// Summary.
func Summarize(samples []int64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum int64
	for _, v := range sorted {
		sum += v
	}
	return Summary{
		Count: len(sorted),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		Mean:  float64(sum) / float64(len(sorted)),
		P50:   quantile(sorted, 0.50),
		P90:   quantile(sorted, 0.90),
		P99:   quantile(sorted, 0.99),
	}
}

// quantile returns the nearest-rank q-quantile of a sorted sample.
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%d p50=%d p90=%d p99=%d max=%d mean=%.1f",
		s.Count, s.Min, s.P50, s.P90, s.P99, s.Max, s.Mean)
}

// Fit is an ordinary-least-squares fit y ≈ A + B·x with its coefficient
// of determination.
type Fit struct {
	A, B float64
	R2   float64
}

// FitLinear fits y against x by least squares. It needs at least two
// points with distinct x; otherwise it returns a zero Fit.
func FitLinear(x, y []float64) Fit {
	if len(x) != len(y) || len(x) < 2 {
		return Fit{}
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Fit{}
	}
	b := (n*sxy - sx*sy) / den
	a := (sy - b*sx) / n
	// R².
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range x {
		pred := a + b*x[i]
		ssRes += (y[i] - pred) * (y[i] - pred)
		ssTot += (y[i] - meanY) * (y[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Fit{A: a, B: b, R2: r2}
}

// FitAgainst fits measured values y(n) against shape(n): y ≈ A + B·shape(n).
// It is how the harness experiments decide whether step complexity grows like
// log n versus (log log n)^ℓ: the better-matching shape has R² closer to 1.
func FitAgainst(ns []int, y []float64, shape func(n int) float64) Fit {
	x := make([]float64, len(ns))
	for i, n := range ns {
		x[i] = shape(n)
	}
	return FitLinear(x, y)
}

// Shapes used by the experiment reports.
var (
	// ShapeLog is log₂ n.
	ShapeLog = func(n int) float64 { return math.Log2(float64(n)) }
	// ShapeLogLog is log₂ log₂ n.
	ShapeLogLog = func(n int) float64 { return math.Log2(math.Log2(float64(n))) }
	// ShapeLinear is n.
	ShapeLinear = func(n int) float64 { return float64(n) }
	// ShapeLog2Sq is (log₂ n)².
	ShapeLog2Sq = func(n int) float64 { l := math.Log2(float64(n)); return l * l }
)

// ShapeLogLogPow returns n ↦ (log₂ log₂ n)^ℓ.
func ShapeLogLogPow(ell int) func(n int) float64 {
	return func(n int) float64 {
		return math.Pow(math.Log2(math.Log2(float64(n))), float64(ell))
	}
}
