package openloop

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"shmrename/internal/sharded"
)

// fastTarget serves instantly: schedule mechanics in isolation.
type fastTarget struct{ n atomic.Int64 }

func (t *fastTarget) Acquire() (int, error) { return int(t.n.Add(1)), nil }
func (t *fastTarget) Release(int) error     { return nil }

// fullTarget rejects everything.
type fullTarget struct{}

func (fullTarget) Acquire() (int, error) { return -1, errors.New("full") }
func (fullTarget) Release(int) error     { return nil }

func TestRunServesEveryArrival(t *testing.T) {
	var tgt fastTarget
	res := Run(&tgt, Config{Rate: 200e3, Arrivals: 2000, Workers: 2, Seed: 3})
	if res.Offered != 2000 || res.Served != 2000 || res.Dropped != 0 {
		t.Fatalf("offered/served/dropped = %d/%d/%d", res.Offered, res.Served, res.Dropped)
	}
	if got := res.Latency.Count(); got != 2000 {
		t.Fatalf("histogram recorded %d of 2000 arrivals", got)
	}
	if res.AchievedRate <= 0 {
		t.Fatalf("achieved rate %f", res.AchievedRate)
	}
}

func TestRunCountsDrops(t *testing.T) {
	res := Run(fullTarget{}, Config{Rate: 500e3, Arrivals: 500, Workers: 1, Seed: 3})
	if res.Dropped != 500 || res.Served != 0 {
		t.Fatalf("served/dropped = %d/%d", res.Served, res.Dropped)
	}
	// Drops still pay latency — the histogram must not omit them.
	if got := res.Latency.Count(); got != 500 {
		t.Fatalf("histogram recorded %d of 500 drops", got)
	}
}

func TestBurstyMeetsMeanRate(t *testing.T) {
	// The bursty schedule stretches inter-burst gaps by the burst size;
	// the scheduled span must stay near the Poisson span for the same
	// rate (mean preserved), not Burst times shorter.
	var tgt fastTarget
	rate := 100e3
	res := Run(&tgt, Config{Rate: rate, Arrivals: 5000, Workers: 1, Arrival: Bursty, Burst: 32, Seed: 9})
	wantSpan := time.Duration(float64(5000) / rate * float64(time.Second))
	if res.Elapsed < wantSpan/2 || res.Elapsed > wantSpan*3 {
		t.Fatalf("bursty run of 5000 arrivals at %.0f/s took %v, want ≈%v", rate, res.Elapsed, wantSpan)
	}
}

func TestLatencyChargesQueueing(t *testing.T) {
	// A target that stalls must charge the stall to arrivals scheduled
	// behind it: open-loop latency includes queueing delay.
	stall := func() (int, error) { time.Sleep(2 * time.Millisecond); return 1, nil }
	res := Run(targetFunc(stall), Config{Rate: 10e3, Arrivals: 40, Workers: 1, Seed: 5})
	// At 10k/s arrivals are scheduled 100µs apart but service takes 2ms:
	// the queue builds and late arrivals wait many service times.
	if p99 := res.Latency.Quantile(0.99); p99 < int64(10*time.Millisecond) {
		t.Fatalf("p99 %v too low — queueing delay not charged", time.Duration(p99))
	}
}

type targetFunc func() (int, error)

func (f targetFunc) Acquire() (int, error) { return f() }
func (f targetFunc) Release(int) error     { return nil }

func TestSweepAndKnee(t *testing.T) {
	// A target with a hard 1ms service time saturates at 1k/s per worker:
	// the knee must land below the rates that outrun it.
	slow := func() (int, error) { time.Sleep(time.Millisecond); return 1, nil }
	points := Sweep(targetFunc(slow), Config{Arrivals: 60, Workers: 1, Seed: 5},
		[]float64{200, 500, 50e3})
	if len(points) != 3 {
		t.Fatalf("%d sweep points", len(points))
	}
	k := Knee(points)
	if k < 0 || k > 1 {
		t.Fatalf("knee at %d; achieved rates %f %f %f", k,
			points[0].AchievedRate, points[1].AchievedRate, points[2].AchievedRate)
	}
	if last := points[2]; last.AchievedRate >= KneeFraction*last.Rate {
		t.Fatalf("50k/s point achieved %.0f/s against a 1ms service time", last.AchievedRate)
	}
}

func TestWrapArena(t *testing.T) {
	arena := sharded.New(64, sharded.Config{Shards: 2, MaxPasses: 8, WordScan: true})
	tgt := WrapArena(arena, 11)
	res := Run(tgt, Config{Rate: 500e3, Arrivals: 3000, Workers: 4, Seed: 3})
	if res.Served != 3000 {
		t.Fatalf("served %d of 3000 against a 64-cap arena under immediate release", res.Served)
	}
	if held := arena.Held(); held != 0 {
		t.Fatalf("%d names leaked", held)
	}
}
