package openloop

import (
	"errors"
	"sync"
	"sync/atomic"

	"shmrename/internal/longlived"
	"shmrename/internal/prng"
	"shmrename/internal/shm"
)

// ErrFull is the arena-full rejection of a wrapped internal arena,
// playing the role ErrArenaFull plays for the public surface.
var ErrFull = errors.New("openloop: arena full")

// WrapArena adapts an internal longlived.Arena to Target, pooling procs
// exactly as the public Arena does, so harness experiments drive internal
// backends through the same open-loop machinery bench5 points at the
// public API.
func WrapArena(a longlived.Arena, seed uint64) Target {
	return &arenaTarget{a: a, seed: seed}
}

type arenaTarget struct {
	a      longlived.Arena
	seed   uint64
	nextID atomic.Int64
	procs  sync.Pool
}

func (t *arenaTarget) proc() *shm.Proc {
	if p, ok := t.procs.Get().(*shm.Proc); ok {
		return p
	}
	id := int(t.nextID.Add(1) - 1)
	return shm.NewProc(id, prng.NewStream(t.seed, id), nil, 0)
}

// Acquire implements Target.
func (t *arenaTarget) Acquire() (int, error) {
	p := t.proc()
	n := t.a.Acquire(p)
	t.procs.Put(p)
	if n < 0 {
		return -1, ErrFull
	}
	return n, nil
}

// Release implements Target.
func (t *arenaTarget) Release(n int) error {
	p := t.proc()
	t.a.Release(p, n)
	t.procs.Put(p)
	return nil
}
