// Package openloop generates open-loop renaming load: acquire requests
// arrive on a clock-driven schedule — Poisson or bursty — at a target
// rate, independent of how fast the arena serves them.
//
// # Why open-loop
//
// Every closed-loop benchmark (BENCH_1–BENCH_4, the Go benchmarks) lets a
// slow operation delay the next request, so the load generator
// involuntarily coordinates with the system under test and the recorded
// tail hides exactly the latencies a production arrival stream would
// suffer — the coordinated-omission trap. Here arrivals are scheduled
// first and latency is measured from the scheduled arrival time to
// acquire completion: a stall makes every arrival scheduled during the
// stall pay its queueing delay, which is what a p99 under independent
// arrival traffic means.
//
// Each worker thins the target rate into its own arrival stream (a
// superposition of independent Poisson processes is Poisson, so per-worker
// exponential gaps at rate/workers compose to the target) and records
// into its own metrics.Histogram; Run merges them. The saturation sweep
// replays the same schedule shape at increasing rates and Knee finds the
// last rate the arena still sustains.
package openloop

import (
	"math"
	"runtime"
	"time"

	"shmrename/internal/metrics"
	"shmrename/internal/prng"
)

// Target is the surface under load: the acquire/release pair of the
// public *shmrename.Arena (which satisfies it structurally) or an
// internal arena adapted with WrapArena.
type Target interface {
	Acquire() (int, error)
	Release(int) error
}

// Arrival selects the shape of the arrival schedule.
type Arrival uint8

// Arrival schedules.
const (
	// Poisson draws independent exponential inter-arrival gaps: the
	// memoryless stream that models aggregate production traffic.
	Poisson Arrival = iota
	// Bursty delivers arrivals in back-to-back bursts of Burst requests,
	// with exponential gaps between bursts stretched so the mean rate
	// still meets the target — the worst case for a renaming arena, since
	// a whole burst contends for free slots at once.
	Bursty
)

// String returns the report label of the arrival shape.
func (a Arrival) String() string {
	switch a {
	case Poisson:
		return "poisson"
	case Bursty:
		return "bursty"
	default:
		return "arrival(?)"
	}
}

// Config parameterizes one open-loop run.
type Config struct {
	// Rate is the target arrival rate in acquires per second (required).
	Rate float64
	// Arrivals is the total number of scheduled arrivals (required): the
	// run lasts about Arrivals/Rate seconds.
	Arrivals int
	// Workers is the number of service goroutines splitting the stream.
	// Default GOMAXPROCS.
	Workers int
	// Arrival selects the schedule shape. Default Poisson.
	Arrival Arrival
	// Burst is the arrivals-per-burst of the Bursty shape. Default 16.
	Burst int
	// Seed drives the schedule's randomness.
	Seed uint64
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Burst <= 0 {
		c.Burst = 16
	}
}

// Result aggregates one open-loop run.
type Result struct {
	// Offered is the number of scheduled arrivals (Config.Arrivals).
	Offered int
	// Served counts acquires that obtained a name.
	Served int
	// Dropped counts acquires the arena rejected (arena full).
	Dropped int
	// Elapsed is the wall-clock span from the first scheduled arrival to
	// the last completion.
	Elapsed time.Duration
	// AchievedRate is Served/Elapsed in acquires per second.
	AchievedRate float64
	// Latency is the merged scheduled-arrival→completion histogram, in
	// nanoseconds. Dropped arrivals record their rejection latency too:
	// a drop is not free at the tail.
	Latency metrics.Histogram
}

// expGap draws an exponential gap (nanoseconds) at the given mean.
func expGap(r *prng.Rand, meanNs float64) int64 {
	// Inverse-transform sampling; 1-u keeps the log argument in (0, 1].
	u := r.Float64()
	return int64(-math.Log(1-u) * meanNs)
}

// worker runs one thinned arrival stream against the target, recording
// into its own histogram: zero cross-worker coordination on the hot path.
func worker(t Target, cfg Config, id, arrivals int, base time.Time, h *metrics.Histogram) (served, dropped int) {
	r := prng.NewStream(cfg.Seed, id)
	meanNs := 1e9 / (cfg.Rate / float64(cfg.Workers))
	next := int64(0) // scheduled offset from base, ns
	for i := 0; i < arrivals; i++ {
		switch cfg.Arrival {
		case Bursty:
			// Gaps only between bursts, stretched by the burst size so the
			// mean rate still meets the target.
			if i%cfg.Burst == 0 {
				next += expGap(r, meanNs*float64(cfg.Burst))
			}
		default:
			next += expGap(r, meanNs)
		}
		// Pace to the schedule. Sleep for coarse waits; hand the processor
		// over (not a spin — the arena's workers need the cores) until the
		// scheduled instant for sub-millisecond precision.
		for {
			ahead := next - time.Since(base).Nanoseconds()
			if ahead <= 0 {
				break
			}
			if ahead > int64(time.Millisecond) {
				time.Sleep(time.Duration(ahead - int64(time.Millisecond)))
			} else {
				runtime.Gosched()
			}
		}
		// Open-loop latency: from the *scheduled* arrival, so queueing
		// delay behind a stalled arena is charged to every request the
		// stall delayed.
		name, err := t.Acquire()
		h.Record(time.Since(base).Nanoseconds() - next)
		if err != nil {
			dropped++
			continue
		}
		served++
		_ = t.Release(name)
	}
	return served, dropped
}

// Run executes one open-loop run against the target.
func Run(t Target, cfg Config) Result {
	cfg.fill()
	if cfg.Rate <= 0 || cfg.Arrivals <= 0 {
		panic("openloop: Config.Rate and Config.Arrivals must be positive")
	}
	type partial struct {
		served, dropped int
		h               metrics.Histogram
	}
	parts := make([]partial, cfg.Workers)
	base := time.Now()
	done := make(chan int, cfg.Workers)
	per := cfg.Arrivals / cfg.Workers
	for w := 0; w < cfg.Workers; w++ {
		n := per
		if w == 0 {
			n += cfg.Arrivals % cfg.Workers
		}
		go func(w, n int) {
			parts[w].served, parts[w].dropped = worker(t, cfg, w, n, base, &parts[w].h)
			done <- w
		}(w, n)
	}
	for range parts {
		<-done
	}
	res := Result{Offered: cfg.Arrivals, Elapsed: time.Since(base)}
	for i := range parts {
		res.Served += parts[i].served
		res.Dropped += parts[i].dropped
		res.Latency.Merge(&parts[i].h)
	}
	if s := res.Elapsed.Seconds(); s > 0 {
		res.AchievedRate = float64(res.Served) / s
	}
	return res
}

// SweepPoint is one rate of a saturation sweep.
type SweepPoint struct {
	// Rate is the offered arrival rate, acquires per second.
	Rate float64
	// Result is the run at that rate.
	Result
}

// Sweep runs the same schedule shape at each offered rate in order,
// holding the arrival count fixed, and returns one point per rate.
func Sweep(t Target, base Config, rates []float64) []SweepPoint {
	out := make([]SweepPoint, 0, len(rates))
	for _, rate := range rates {
		cfg := base
		cfg.Rate = rate
		out = append(out, SweepPoint{Rate: rate, Result: Run(t, cfg)})
	}
	return out
}

// KneeFraction is the sustained-throughput bar of Knee: a sweep point
// below this fraction of its offered rate is past the knee.
const KneeFraction = 0.9

// Knee returns the index of the last sweep point whose achieved rate
// sustains at least KneeFraction of the offered rate — the throughput
// knee — or -1 when even the first point falls short.
func Knee(points []SweepPoint) int {
	knee := -1
	for i, p := range points {
		if p.AchievedRate >= KneeFraction*p.Rate {
			knee = i
		}
	}
	return knee
}
