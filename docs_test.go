package shmrename

// Documentation integrity tests: every relative markdown link in the
// repository's documentation must resolve to a file that exists, so the
// paper→code map and the perf docs cannot silently rot as files move.
// The CI docs job runs these alongside the exported-identifier doc-comment
// checks.

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// mdLink matches [text](target) markdown links. Images and reference-style
// links do not occur in this repository's docs.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// docFiles returns the repository's markdown files.
func docFiles(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob("*.md")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found")
	}
	return files
}

func TestDocLinksResolve(t *testing.T) {
	for _, file := range docFiles(t) {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			// Strip intra-file anchors from relative links.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.FromSlash(target)); err != nil {
				t.Errorf("%s: broken relative link %q: %v", file, m[1], err)
			}
		}
	}
}

// expID matches a whole experiment id (E1..E16 style), so "E1" cannot be
// satisfied by an occurrence of "E10".
var expID = regexp.MustCompile(`\bE(\d+)\b`)

// TestDocsNameRealExperiments pins the paper→code map's experiment index
// to the registry: every experiment id the harness exposes must be
// documented in ALGORITHMS.md, and the map must not advertise ids that do
// not exist.
func TestDocsNameRealExperiments(t *testing.T) {
	data, err := os.ReadFile("ALGORITHMS.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	const known = 21 // E1..E21, matching harness.All()
	mentioned := make(map[int]bool)
	for _, m := range expID.FindAllStringSubmatch(text, -1) {
		n, err := strconv.Atoi(m[1])
		if err != nil {
			t.Fatalf("unparseable experiment id %q", m[0])
		}
		if n < 1 || n > known {
			t.Errorf("ALGORITHMS.md advertises nonexistent experiment E%d", n)
		}
		mentioned[n] = true
	}
	for n := 1; n <= known; n++ {
		if !mentioned[n] {
			t.Errorf("ALGORITHMS.md missing experiment E%d", n)
		}
	}
	for _, ref := range []string{"internal/taureg", "internal/longlived",
		"internal/sched", "internal/sharded", "internal/core",
		"internal/recovery", "internal/persist", "internal/leasecache",
		"internal/registry", "internal/registry/conformance",
		"internal/exclusive", "internal/integrity", "internal/chaos"} {
		if !strings.Contains(text, ref) {
			t.Errorf("ALGORITHMS.md missing package reference %s", ref)
		}
	}
}
