//go:build !unix

package shmrename

import "errors"

// OpenArena requires MAP_SHARED file mappings and kill(pid, 0) liveness
// probes; on non-unix platforms it always fails. In-process arenas
// (NewArena) are unaffected.
func OpenArena(path string, cfg ArenaConfig) (*Arena, error) {
	return nil, errors.New("shmrename: OpenArena requires a unix platform")
}
