module shmrename

go 1.24
