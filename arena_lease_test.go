package shmrename

import (
	"errors"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// leaseArena builds a lease-enabled arena for one backend, failing the test
// on construction errors and closing the arena (stopping any reaper) on
// cleanup.
func leaseArena(t *testing.T, backend ArenaBackend, capacity int, lc LeaseConfig) *Arena {
	t.Helper()
	a, err := NewArena(ArenaConfig{Capacity: capacity, Backend: backend, Lease: &lc})
	if err != nil {
		t.Fatalf("%q: %v", backend, err)
	}
	t.Cleanup(func() { a.Close() })
	return a
}

// TestArenaLeaseLifecycle pins the public lease surface on every backend:
// Leased reports the layer, Heartbeat renews exactly the handle's held
// names, a sweep under a generous TTL reclaims nothing, the Stats counters
// track all of it, and Close is idempotent.
func TestArenaLeaseLifecycle(t *testing.T) {
	for _, backend := range defaultAndStormBackends() {
		a := leaseArena(t, backend, 32, LeaseConfig{TTL: time.Hour})
		if !a.Leased() {
			t.Fatalf("%q: lease-configured arena reports Leased() == false", backend)
		}
		names, err := a.AcquireN(10)
		if err != nil {
			t.Fatalf("%q: %v", backend, err)
		}
		if got := a.Heartbeat(); got != len(names) {
			t.Fatalf("%q: Heartbeat renewed %d leases, hold %d names", backend, got, len(names))
		}
		// TTL is an hour: nothing can be stale, and live leases must never
		// be harvested by a sweep.
		if got := a.SweepStale(); got != 0 {
			t.Fatalf("%q: sweep reclaimed %d fresh leases", backend, got)
		}
		for _, n := range names {
			if err := a.Release(n); err != nil {
				t.Fatalf("%q: release %d after sweep: %v", backend, n, err)
			}
		}
		st := a.Stats()
		if st.Heartbeats != 1 || st.Sweeps != 1 || st.Reclaimed != 0 {
			t.Fatalf("%q: stats %+v, want 1 heartbeat, 1 sweep, 0 reclaimed", backend, st)
		}
		if err := a.Close(); err != nil {
			t.Fatalf("%q: close: %v", backend, err)
		}
		if err := a.Close(); err != nil {
			t.Fatalf("%q: second close: %v", backend, err)
		}
	}
}

// TestArenaLeaseExpiry is the crash story through the public API: a handle
// acquires names, goes silent past its TTL (no release, no heartbeat), and
// a sweep returns every name to the pool, after which the full capacity is
// grantable again.
func TestArenaLeaseExpiry(t *testing.T) {
	for _, backend := range defaultAndStormBackends() {
		const capacity = 32
		a := leaseArena(t, backend, capacity, LeaseConfig{TTL: time.Millisecond})
		names, err := a.AcquireN(10)
		if err != nil {
			t.Fatalf("%q: %v", backend, err)
		}
		time.Sleep(10 * time.Millisecond) // let every lease lapse
		if got := a.SweepStale(); got != len(names) {
			t.Fatalf("%q: sweep reclaimed %d of %d stale leases", backend, got, len(names))
		}
		if held := a.Held(); held != 0 {
			t.Fatalf("%q: %d names still held after reclaim", backend, held)
		}
		if st := a.Stats(); st.Reclaimed != int64(len(names)) {
			t.Fatalf("%q: stats %+v, want Reclaimed=%d", backend, st, len(names))
		}
		// The pool must be whole: a full-capacity batch succeeds.
		if _, err := a.AcquireN(capacity); err != nil {
			t.Fatalf("%q: full reacquire after reclaim: %v", backend, err)
		}
	}
}

// TestArenaLeaseHeartbeatSpares: a heartbeating holder's names survive a
// sweep even when their original acquire-time stamps have long lapsed.
func TestArenaLeaseHeartbeatSpares(t *testing.T) {
	for _, backend := range defaultAndStormBackends() {
		a := leaseArena(t, backend, 32, LeaseConfig{TTL: 100 * time.Millisecond})
		names, err := a.AcquireN(8)
		if err != nil {
			t.Fatalf("%q: %v", backend, err)
		}
		time.Sleep(20 * time.Millisecond)
		// The heartbeat lands immediately before the sweep, so the leases'
		// age is far below TTL regardless of scheduling noise.
		if got := a.Heartbeat(); got != len(names) {
			t.Fatalf("%q: heartbeat renewed %d of %d", backend, got, len(names))
		}
		if got := a.SweepStale(); got != 0 {
			t.Fatalf("%q: sweep stole %d names from a heartbeating holder", backend, got)
		}
		for _, n := range names {
			if !a.impl.IsHeld(n) {
				t.Fatalf("%q: name %d lost despite heartbeats", backend, n)
			}
		}
	}
}

// TestArenaLeaseReaper: a background reaper alone — no SweepStale calls —
// recovers a silent holder's names.
func TestArenaLeaseReaper(t *testing.T) {
	a := leaseArena(t, ArenaLevel, 32, LeaseConfig{TTL: time.Millisecond, Reaper: time.Millisecond})
	if _, err := a.AcquireN(10); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for a.Held() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("reaper never reclaimed: %d still held, stats %+v", a.Held(), a.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if st := a.Stats(); st.Sweeps == 0 || st.Reclaimed != 10 {
		t.Fatalf("stats %+v, want background sweeps and Reclaimed=10", st)
	}
	if err := a.Close(); err != nil { // stops the reaper
		t.Fatal(err)
	}
}

// TestArenaUnleased: with ArenaConfig.Lease nil the recovery surface is
// inert — no-op methods, zero counters, trivial Close.
// TestArenaAliveOracleGetsPID pins the holder identity handed to a
// user-supplied LeaseConfig.Alive oracle: the raw process ID, identically
// for in-process arenas and the mmap-backed kind, so a kill(pid, 0)-style
// oracle probes the right process either way.
func TestArenaAliveOracleGetsPID(t *testing.T) {
	var seen []uint64
	a := leaseArena(t, ArenaLevel, 8, LeaseConfig{
		TTL: 5 * time.Millisecond,
		Alive: func(holder uint64) bool {
			seen = append(seen, holder)
			return true // spare: this test is about the identity, not reclaim
		},
	})
	if _, err := a.Acquire(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(seen) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("lease never went stale enough to consult the oracle")
		}
		time.Sleep(10 * time.Millisecond)
		a.SweepStale()
	}
	for _, h := range seen {
		if h != uint64(os.Getpid()) {
			t.Fatalf("oracle consulted with holder %d, want pid %d", h, os.Getpid())
		}
	}
}

func TestArenaUnleased(t *testing.T) {
	a, err := NewArena(ArenaConfig{Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Leased() {
		t.Fatal("lease-free arena reports Leased() == true")
	}
	if _, err := a.Acquire(); err != nil {
		t.Fatal(err)
	}
	if got := a.Heartbeat(); got != 0 {
		t.Fatalf("Heartbeat on lease-free arena renewed %d", got)
	}
	if got := a.SweepStale(); got != 0 {
		t.Fatalf("SweepStale on lease-free arena reclaimed %d", got)
	}
	if st := a.Stats(); st.Heartbeats != 0 || st.Sweeps != 0 || st.Reclaimed != 0 {
		t.Fatalf("lease counters moved on lease-free arena: %+v", st)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLeaseConfigValidation: malformed lease configs are rejected at
// construction, before any background machinery starts.
func TestLeaseConfigValidation(t *testing.T) {
	cases := []LeaseConfig{
		{},                  // TTL unset
		{TTL: -time.Second}, // negative TTL
		{TTL: time.Second, Reaper: -time.Millisecond}, // negative interval
	}
	for i, lc := range cases {
		if _, err := NewArena(ArenaConfig{Capacity: 8, Lease: &lc}); err == nil {
			t.Fatalf("case %d accepted: %+v", i, lc)
		}
	}
}

// TestArenaAcquireSentinel pins the error-path name contract on every
// backend, leases on and off: a failed Acquire returns exactly -1 (outside
// the valid range, so a dropped error can never alias name 0), and a failed
// AcquireN returns a nil slice.
func TestArenaAcquireSentinel(t *testing.T) {
	for _, backend := range defaultAndStormBackends() {
		for _, lease := range []*LeaseConfig{nil, {TTL: time.Hour}} {
			a, err := NewArena(ArenaConfig{Capacity: 2, Backend: backend, Lease: lease})
			if err != nil {
				t.Fatalf("%q: %v", backend, err)
			}
			// Drain structurally; every failed acquire must yield (-1, full).
			for i := 0; i < a.NameBound(); i++ {
				n, err := a.Acquire()
				if err != nil {
					if !errors.Is(err, ErrArenaFull) {
						t.Fatalf("%q: unexpected acquire error: %v", backend, err)
					}
					if n != -1 {
						t.Fatalf("%q: failed Acquire returned name %d, want -1", backend, n)
					}
					break
				}
			}
			n, err := a.Acquire()
			if !errors.Is(err, ErrArenaFull) || n != -1 {
				t.Fatalf("%q: acquire on full arena = (%d, %v), want (-1, ErrArenaFull)", backend, n, err)
			}
			if names, err := a.AcquireN(2); err == nil || names != nil {
				t.Fatalf("%q: AcquireN on full arena = (%v, %v), want (nil, ErrArenaFull)", backend, names, err)
			}
			a.Close()
		}
	}
}

// TestArenaReleaseAllMixedBatch pins ReleaseAll's partial-failure contract
// on every backend: valid names release even when the batch also carries
// out-of-range entries, unheld names, and in-batch duplicates, and each
// failure's joined error names its position as names[i].
func TestArenaReleaseAllMixedBatch(t *testing.T) {
	for _, backend := range defaultAndStormBackends() {
		a, err := NewArena(ArenaConfig{Capacity: 16, Backend: backend})
		if err != nil {
			t.Fatalf("%q: %v", backend, err)
		}
		names, err := a.AcquireN(4)
		if err != nil {
			t.Fatalf("%q: %v", backend, err)
		}
		bound := a.NameBound()
		batch := []int{
			names[0], // valid
			-1,       // out of range
			names[1], // valid
			names[1], // duplicate of the previous entry
			bound,    // out of range
			names[2], // valid
		}
		err = a.ReleaseAll(batch)
		if !errors.Is(err, ErrNotHeld) {
			t.Fatalf("%q: mixed batch error %v, want ErrNotHeld", backend, err)
		}
		for _, frag := range []string{"names[1]:", "names[3]:", "names[4]:", "repeated in batch"} {
			if !strings.Contains(err.Error(), frag) {
				t.Fatalf("%q: mixed batch error %q missing %q", backend, err, frag)
			}
		}
		for _, pos := range []string{"names[0]:", "names[2]:", "names[5]:"} {
			if strings.Contains(err.Error(), pos) {
				t.Fatalf("%q: valid entry reported as failed: %q contains %q", backend, err, pos)
			}
		}
		// The three valid entries released; the untouched fourth remains.
		if held := a.Held(); held != 1 {
			t.Fatalf("%q: %d names held after mixed batch, want 1", backend, held)
		}
		if !a.impl.IsHeld(names[3]) {
			t.Fatalf("%q: untouched name %d lost", backend, names[3])
		}
		if st := a.Stats(); st.Releases != 3 {
			t.Fatalf("%q: stats count %d releases, want 3", backend, st.Releases)
		}
	}
}

// TestArenaStatsRaceStorm hammers Stats, Heartbeat, and SweepStale from
// dedicated goroutines while churners acquire and release, on every
// backend. It asserts only basic sanity — the real assertion is the race
// detector observing the concurrent counter and sweeper traffic.
func TestArenaStatsRaceStorm(t *testing.T) {
	for _, backend := range defaultAndStormBackends() {
		a := leaseArena(t, backend, 64, LeaseConfig{TTL: time.Hour})
		const churners, iters, readers = 4, 200, 2
		done := make(chan struct{})
		var wg sync.WaitGroup
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					// The counters are snapshotted independently, so no
					// cross-counter invariant holds mid-churn; the race
					// detector is the assertion here.
					a.Stats()
					a.Held()
					a.Heartbeat()
					a.SweepStale()
				}
			}()
		}
		var churn sync.WaitGroup
		for c := 0; c < churners; c++ {
			churn.Add(1)
			go func() {
				defer churn.Done()
				for i := 0; i < iters; i++ {
					n, err := a.Acquire()
					if err != nil {
						continue // transient contention; the arena is oversized
					}
					if err := a.Release(n); err != nil {
						t.Errorf("%q: release %d: %v", backend, n, err)
						return
					}
				}
			}()
		}
		churn.Wait()
		close(done)
		wg.Wait()
		st := a.Stats()
		if st.Acquires != st.Releases {
			t.Fatalf("%q: %d acquires vs %d releases after churn", backend, st.Acquires, st.Releases)
		}
		if held := a.Held(); held != 0 {
			t.Fatalf("%q: %d names leaked by the storm", backend, held)
		}
	}
}
