package shmrename

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"shmrename/internal/shm"
)

// integrityArena builds a lease+integrity level arena for damage injection.
func integrityArena(t *testing.T, capacity int, quarantine bool) *Arena {
	t.Helper()
	a, err := NewArena(ArenaConfig{
		Capacity:  capacity,
		Lease:     &LeaseConfig{TTL: time.Hour},
		Integrity: &IntegrityConfig{Quarantine: quarantine},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return a
}

// injectViolation plants bit-clear/client-stamp damage — the irreparable
// class — on one free name of the arena, returning the global name.
func injectViolation(t *testing.T, a *Arena) int {
	t.Helper()
	for _, d := range a.rec.LeaseDomains() {
		for i := 0; i < d.Stamps.Size(); i++ {
			if !d.IsHeld(i) && d.Stamps.Load(i) == 0 {
				d.Stamps.Inject(i, shm.PackStamp(12345, a.epochs.Now()))
				return d.Base + i
			}
		}
	}
	t.Fatal("no free name to corrupt")
	return -1
}

// TestIntegrityRequiresLease: the config dependency is validated.
func TestIntegrityRequiresLease(t *testing.T) {
	_, err := NewArena(ArenaConfig{Capacity: 64, Integrity: &IntegrityConfig{}})
	if err == nil || !strings.Contains(err.Error(), "Lease") {
		t.Fatalf("Integrity without Lease: %v", err)
	}
	if _, err := NewArena(ArenaConfig{
		Capacity:  64,
		Lease:     &LeaseConfig{TTL: time.Second},
		Integrity: &IntegrityConfig{ScrubInterval: -time.Second},
	}); err == nil {
		t.Fatal("negative ScrubInterval accepted")
	}
}

// TestHealthLifecycle: Healthy on a clean arena, Degraded after a
// quarantine, capacity debited, scrub stats populated, and no name of the
// quarantined word ever granted.
func TestHealthLifecycle(t *testing.T) {
	a := integrityArena(t, 256, true)
	if h := a.Health(); h != Healthy {
		t.Fatalf("fresh arena health %v", h)
	}
	if res := a.Scrub(); res.Repaired != 0 || res.Quarantined != 0 || res.Unrepaired != 0 {
		t.Fatalf("clean scrub not idle: %+v", res)
	}

	bad := injectViolation(t, a)
	res := a.Scrub()
	if res.Quarantined == 0 || res.Unrepaired != 0 {
		t.Fatalf("violation not quarantined: %+v", res)
	}
	if h := a.Health(); h != Degraded {
		t.Fatalf("post-quarantine health %v, want %v", h, Degraded)
	}
	if got := a.Capacity(); got != 256-res.Quarantined {
		t.Fatalf("capacity %d, want %d", got, 256-res.Quarantined)
	}
	st := a.Stats()
	if st.ScrubPasses != 2 || st.Quarantined != int64(res.Quarantined) {
		t.Fatalf("stats %+v", st)
	}

	// The reduced capacity is fully grantable, duplicates never.
	seen := map[int]bool{}
	for i := 0; i < a.Capacity(); i++ {
		n, err := a.Acquire()
		if err != nil {
			t.Fatalf("acquire %d of %d: %v", i, a.Capacity(), err)
		}
		if seen[n] {
			t.Fatalf("duplicate grant %d", n)
		}
		if n == bad {
			t.Fatalf("granted quarantined name %d", n)
		}
		seen[n] = true
	}
}

// TestHealthFailedWithoutQuarantine: with quarantine off a violation is
// reported, not contained — Health goes Failed and stays there until the
// damage is gone.
func TestHealthFailedWithoutQuarantine(t *testing.T) {
	a := integrityArena(t, 128, false)
	injectViolation(t, a)
	if res := a.Scrub(); res.Unrepaired != 1 {
		t.Fatalf("scrub %+v, want one unrepaired violation", res)
	}
	if h := a.Health(); h != Failed {
		t.Fatalf("health %v, want %v", h, Failed)
	}
}

// TestHealthString covers the stringer.
func TestHealthString(t *testing.T) {
	for h, want := range map[Health]string{Healthy: "healthy", Degraded: "degraded", Failed: "failed", Health(9): "Health(9)"} {
		if got := h.String(); got != want {
			t.Fatalf("Health(%d).String() = %q, want %q", int(h), got, want)
		}
	}
}

// TestBackgroundScrubber: ScrubInterval runs passes without explicit Scrub
// calls, and Close stops the loop.
func TestBackgroundScrubber(t *testing.T) {
	a, err := NewArena(ArenaConfig{
		Capacity:  128,
		Lease:     &LeaseConfig{TTL: time.Hour},
		Integrity: &IntegrityConfig{ScrubInterval: time.Millisecond, Quarantine: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for a.Stats().ScrubPasses == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if a.Stats().ScrubPasses == 0 {
		t.Fatal("background scrubber never ran")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptedStickyError: a lease-cache conservation violation under
// ArenaConfig.Integrity surfaces as Health Failed plus a sticky
// ErrCorrupted on every subsequent operation, instead of a panic. (Race
// builds keep the panic; see leasecache's strictConservation.)
func TestCorruptedStickyError(t *testing.T) {
	if raceDetector {
		t.Skip("race build: conservation violations panic by design")
	}
	a, err := NewArena(ArenaConfig{
		Capacity:    256,
		LeaseBlocks: 8,
		Lease:       &LeaseConfig{TTL: time.Hour},
		Integrity:   &IntegrityConfig{Quarantine: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	n, err := a.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	// Double-release through the cache: the first parks n (cached bit
	// set), the second marks it again — the conservation violation.
	if err := a.Release(n); err != nil {
		t.Fatal(err)
	}
	a.cache.Release(a.proc(), n) // bypasses the public not-held guard

	if h := a.Health(); h != Failed {
		t.Fatalf("health %v after cache violation, want %v", h, Failed)
	}
	if _, err := a.Acquire(); !errors.Is(err, ErrCorrupted) {
		t.Fatalf("Acquire after corruption: %v, want ErrCorrupted", err)
	}
	if _, err := a.AcquireN(2); !errors.Is(err, ErrCorrupted) {
		t.Fatalf("AcquireN after corruption: %v, want ErrCorrupted", err)
	}
	if err := a.Release(0); !errors.Is(err, ErrCorrupted) {
		t.Fatalf("Release after corruption: %v, want ErrCorrupted", err)
	}
	if err := a.ReleaseAll([]int{0}); !errors.Is(err, ErrCorrupted) {
		t.Fatalf("ReleaseAll after corruption: %v, want ErrCorrupted", err)
	}
	if _, err := a.AcquireCtx(context.Background()); !errors.Is(err, ErrCorrupted) {
		t.Fatalf("AcquireCtx after corruption: %v, want ErrCorrupted", err)
	}
}

// TestAcquireCtxBackpressure: AcquireCtx waits out a full arena and
// succeeds once capacity frees, without ever returning ErrArenaFull.
func TestAcquireCtxBackpressure(t *testing.T) {
	a, err := NewArena(ArenaConfig{Capacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	names, err := a.AcquireN(64)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	got := -1
	var gotErr error
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		got, gotErr = a.AcquireCtx(ctx)
	}()
	time.Sleep(5 * time.Millisecond) // let it hit the full arena and back off
	if err := a.Release(names[0]); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if gotErr != nil {
		t.Fatalf("AcquireCtx: %v", gotErr)
	}
	if got < 0 || got >= a.NameBound() {
		t.Fatalf("AcquireCtx name %d out of range", got)
	}
}

// TestAcquireCtxCancel: a context that ends first yields an error carrying
// both causes, and pre-cancelled contexts return immediately.
func TestAcquireCtxCancel(t *testing.T) {
	a, err := NewArena(ArenaConfig{Capacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := a.AcquireN(64); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	n, err := a.AcquireCtx(ctx)
	if n != -1 {
		t.Fatalf("cancelled AcquireCtx returned name %d", n)
	}
	if !errors.Is(err, context.DeadlineExceeded) || !errors.Is(err, ErrArenaFull) {
		t.Fatalf("cancelled AcquireCtx error %v, want both DeadlineExceeded and ErrArenaFull", err)
	}

	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	if _, err := a.AcquireCtx(pre); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled AcquireCtx: %v", err)
	}

	// Non-full errors pass through untouched: a closed arena errors
	// immediately instead of backing off.
	a.Close()
	if _, err := a.AcquireCtx(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("AcquireCtx on closed arena: %v", err)
	}
}
