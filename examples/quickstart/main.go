// Quickstart: rename 4096 goroutines into the tight name space [0, 4096)
// with the paper's τ-register algorithm, running natively on all cores,
// and report the step complexity (which Theorem 5 bounds by O(log n)).
package main

import (
	"fmt"
	"log"

	"shmrename"
)

func main() {
	const n = 4096
	res, err := shmrename.Rename(shmrename.Config{
		N:         n,
		Algorithm: shmrename.TightTau,
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		log.Fatalf("verification failed: %v", err)
	}

	var total int64
	for _, s := range res.Steps {
		total += s
	}
	fmt.Printf("algorithm      : %s\n", res.Algorithm)
	fmt.Printf("processes      : %d\n", n)
	fmt.Printf("name space     : [0, %d)  (tight: m = n)\n", res.M)
	fmt.Printf("all names distinct: yes\n")
	fmt.Printf("step complexity: max %d ops/process (log2 n = 12)\n", res.MaxSteps)
	fmt.Printf("mean steps     : %.1f ops/process\n", float64(total)/n)
	fmt.Printf("first few names: pid0->%d pid1->%d pid2->%d pid3->%d\n",
		res.Names[0], res.Names[1], res.Names[2], res.Names[3])
}
