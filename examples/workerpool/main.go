// Workerpool: the classic motivation for renaming. A fleet of workers
// arrives carrying large, sparse identifiers (UUID-like). To keep
// per-worker state in a dense, cache-friendly array — instead of a locked
// map — each worker acquires a compact slot id via loose renaming
// (Corollary 7: m = n + 2n/(log log n)^ℓ names in O((log log n)^ℓ) steps),
// then records its results contention-free at state[slot].
package main

import (
	"fmt"
	"log"
	"sync"

	"shmrename"
)

const workers = 2000

// workerState is the dense per-slot record that replaces a map keyed by
// the sparse worker ids.
type workerState struct {
	sparseID uint64
	itemsRun int
}

func main() {
	// Phase 1: every worker grabs a compact slot.
	res, err := shmrename.Rename(shmrename.Config{
		N:         workers,
		Algorithm: shmrename.Corollary7,
		Ell:       2,
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		log.Fatalf("slot assignment broken: %v", err)
	}

	// Dense state array indexed by slot — no locks, no hashing.
	state := make([]workerState, res.M)

	// Phase 2: workers run in parallel, indexing their slot directly.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			slot := res.Names[w]
			state[slot].sparseID = 0xfeed_0000_0000 + uint64(w)*0x9e37 // the "UUID"
			for item := 0; item <= w%7; item++ {
				state[slot].itemsRun++
			}
		}(w)
	}
	wg.Wait()

	used, items := 0, 0
	for _, s := range state {
		if s.sparseID != 0 {
			used++
			items += s.itemsRun
		}
	}
	fmt.Printf("workers            : %d\n", workers)
	fmt.Printf("slot space         : %d (n + 2n/(log log n)^2 — %.1f%% overhead)\n",
		res.M, 100*float64(res.M-workers)/float64(workers))
	fmt.Printf("slots used         : %d (all workers placed, all distinct)\n", used)
	fmt.Printf("max steps to a slot: %d shared-memory ops\n", res.MaxSteps)
	fmt.Printf("items processed    : %d\n", items)
}
