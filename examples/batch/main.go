// Batch: a worker pool that leases whole blocks of session slots per job
// wave using the batch arena API. Each worker serves jobs in waves; a wave
// needs one slot per in-flight request (a dense index into per-slot
// state), so the worker leases the wave's slots with one AcquireN call —
// word-granular backends claim up to 64 slots per shared-memory access —
// and returns them with one ReleaseAll, which coalesces slots sharing a
// bitmap word into single clearing steps. Compare examples/workerpool
// (one slot per job) and examples/sharded (striped churn): batching
// amortizes the per-operation overhead that remains after both.
package main

import (
	"fmt"
	"log"
	"runtime"
	"sync"
	"sync/atomic"

	"shmrename"
)

const (
	workers = 32
	batch   = 8 // slots leased per wave: one per concurrent request
	waves   = 500
)

// slotState is the dense per-slot record a request writes while its wave
// holds the slot; distinct live slots mean no two requests ever share one.
type slotState struct {
	requests atomic.Int64
}

func main() {
	// Provision tightly: every worker can hold one full wave of slots.
	arena, err := shmrename.NewArena(shmrename.ArenaConfig{
		Capacity: workers * batch,
		Backend:  shmrename.ArenaBackendSharded,
		Shards:   8,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}
	state := make([]slotState, arena.NameBound())

	var wg sync.WaitGroup
	var served, maxSlot atomic.Int64
	maxSlot.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for wave := 0; wave < waves; wave++ {
				// One lease per wave instead of one per request.
				// ErrArenaFull is retryable backpressure.
				var slots []int
				for {
					var err error
					slots, err = arena.AcquireN(batch)
					if err == nil {
						break
					}
					runtime.Gosched()
				}
				for _, s := range slots {
					state[s].requests.Add(1)
					served.Add(1)
					for {
						cur := maxSlot.Load()
						if int64(s) <= cur || maxSlot.CompareAndSwap(cur, int64(s)) {
							break
						}
					}
				}
				runtime.Gosched() // the wave's requests are served here
				if err := arena.ReleaseAll(slots); err != nil {
					log.Fatalf("release wave %v: %v", slots, err)
				}
			}
		}()
	}
	wg.Wait()

	if held := arena.Held(); held != 0 {
		log.Fatalf("%d slots still held after drain", held)
	}
	total := int64(0)
	used := 0
	for i := range state {
		if n := state[i].requests.Load(); n > 0 {
			total += n
			used++
		}
	}
	st := arena.Stats()
	fmt.Printf("backend              : %s\n", arena.Backend())
	fmt.Printf("workers / wave size  : %d / %d\n", workers, batch)
	fmt.Printf("requests served      : %d (per-slot records agree: %v)\n", total, total == served.Load())
	fmt.Printf("slots touched        : %d of bound %d\n", used, arena.NameBound())
	fmt.Printf("largest slot         : %d\n", maxSlot.Load())
	fmt.Printf("steps per acquire    : %.2f (batched word claims; 1.0 would be one access per slot)\n",
		float64(st.AcquireSteps)/float64(st.Acquires))
	fmt.Printf("all slots free       : %v\n", arena.Held() == 0)
}
