// Countingdevice: use the paper's §II.C counting device outside renaming,
// as its conclusion suggests ("this device may have the potential to speed
// up other distributed algorithms as well").
//
// Scenario: committee election. 500 goroutines race to form a committee of
// exactly 12 members. The counting device admits at most τ = 12 winners no
// matter how many race, without locks and in O(1) expected attempts per
// contender — each test-and-set bit either admits its first requester or
// is trimmed by the device's threshold logic within one clock cycle.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"shmrename"
)

func main() {
	const contenders = 500
	const committee = 12

	dev, err := shmrename.NewCountingDevice(64, committee)
	if err != nil {
		log.Fatal(err)
	}

	var members atomic.Int64
	seats := make([]int, contenders) // seat (bit index) per winner, -1 otherwise
	var wg sync.WaitGroup
	for g := 0; g < contenders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			seats[g] = dev.Acquire(2024, 64)
			if seats[g] >= 0 {
				members.Add(1)
			}
		}(g)
	}
	wg.Wait()

	// No seat may be shared and the committee never exceeds τ.
	seen := map[int]int{}
	for g, seat := range seats {
		if seat < 0 {
			continue
		}
		if prev, dup := seen[seat]; dup {
			log.Fatalf("seat %d won by both %d and %d", seat, prev, g)
		}
		seen[seat] = g
	}
	fmt.Printf("contenders        : %d\n", contenders)
	fmt.Printf("committee size    : %d (tau)\n", committee)
	fmt.Printf("members elected   : %d\n", members.Load())
	fmt.Printf("device confirmed  : %d (hardware invariant: never above tau)\n", dev.Confirmed())
	fmt.Printf("distinct seats    : %d\n", len(seen))
	if int(members.Load()) != committee || dev.Confirmed() != committee {
		log.Fatal("committee size violated")
	}
	fmt.Println("invariants hold: exactly tau winners, all seats distinct")
}
