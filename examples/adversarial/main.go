// Adversarial: run tight renaming under the deterministic simulator with
// the contention-seeking adaptive adversary and crash failures — the model
// of §II.A of the paper — and show that correctness survives: every
// non-crashed process ends with a distinct name in [0, n), and the same
// seed replays the exact same execution.
package main

import (
	"fmt"
	"log"
	"reflect"

	"shmrename"
)

func run(seed uint64) *shmrename.Result {
	res, err := shmrename.Rename(shmrename.Config{
		N:             200,
		Algorithm:     shmrename.TightTau,
		Seed:          seed,
		Simulate:      true,
		Schedule:      "collider", // adaptive adversary: grants doomed ops first
		CrashFraction: 0.25,       // and crashes a quarter of the processes
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	res := run(99)
	if err := res.Verify(); err != nil {
		log.Fatalf("adversary broke the algorithm: %v", err)
	}
	named := 0
	for _, n := range res.Names {
		if n >= 0 {
			named++
		}
	}
	fmt.Printf("processes        : 200 under the 'collider' adaptive adversary\n")
	fmt.Printf("crashed          : %d (adversary-chosen times)\n", res.Crashed)
	fmt.Printf("named            : %d — every survivor got a distinct name\n", named)
	fmt.Printf("step complexity  : %d (adversary maximizes wasted TAS ops)\n", res.MaxSteps)

	// Determinism: identical seed, identical execution.
	again := run(99)
	if !reflect.DeepEqual(res.Names, again.Names) || !reflect.DeepEqual(res.Steps, again.Steps) {
		log.Fatal("replay diverged: simulator lost determinism")
	}
	fmt.Printf("replay (seed 99) : identical execution, step for step\n")

	other := run(100)
	if reflect.DeepEqual(res.Names, other.Names) {
		log.Fatal("different seeds produced identical executions")
	}
	fmt.Printf("replay (seed 100): different execution, still correct\n")
}
