// Sharded: a worker pool on the striped multicore arena frontend. A fleet
// of goroutines serves a stream of jobs; each job needs a compact session
// slot for its lifetime (a dense index into per-slot state — the
// long-lived analogue of the workerpool example). Slots come from the
// sharded arena backend: the name space is striped across shards, every
// worker keeps a cached home-shard affinity, and a full home shard
// overflows to neighbor shards via bounded work-stealing — so slot churn
// scales with cores instead of serializing on one bitmap.
package main

import (
	"fmt"
	"log"
	"runtime"
	"sync"
	"sync/atomic"

	"shmrename"
)

const (
	workers = 64
	jobs    = 20000
)

// slotState is the dense per-slot record a session writes while holding
// its slot; distinct live slots mean no two sessions ever share a record.
type slotState struct {
	jobsServed atomic.Int64
}

func main() {
	// Provision the arena tightly: exactly one slot per worker, striped.
	arena, err := shmrename.NewArena(shmrename.ArenaConfig{
		Capacity: workers,
		Backend:  shmrename.ArenaBackendSharded,
		Shards:   8, // 0 would select GOMAXPROCS
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}
	state := make([]slotState, arena.NameBound())

	var wg sync.WaitGroup
	var served, maxSlot atomic.Int64
	maxSlot.Store(-1)
	queue := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range queue {
				// One acquire/release cycle per job: the slot is unique
				// among live holders for exactly the job's lifetime.
				// ErrArenaFull is retryable backpressure (sustained churn
				// can race every scan pass even below capacity).
				var slot int
				for {
					var err error
					slot, err = arena.Acquire()
					if err == nil {
						break
					}
					runtime.Gosched()
				}
				state[slot].jobsServed.Add(1)
				served.Add(1)
				for {
					cur := maxSlot.Load()
					if int64(slot) <= cur || maxSlot.CompareAndSwap(cur, int64(slot)) {
						break
					}
				}
				runtime.Gosched() // the job's work happens here
				if err := arena.Release(slot); err != nil {
					log.Fatalf("release slot %d: %v", slot, err)
				}
			}
		}()
	}
	for j := 0; j < jobs; j++ {
		queue <- j
	}
	close(queue)
	wg.Wait()

	if held := arena.Held(); held != 0 {
		log.Fatalf("%d slots still held after drain", held)
	}
	total := int64(0)
	used := 0
	for i := range state {
		if n := state[i].jobsServed.Load(); n > 0 {
			total += n
			used++
		}
	}
	fmt.Printf("backend          : %s\n", arena.Backend())
	fmt.Printf("workers / jobs   : %d / %d\n", workers, jobs)
	fmt.Printf("jobs served      : %d (per-slot records agree: %v)\n", total, total == served.Load())
	fmt.Printf("slots touched    : %d of bound %d\n", used, arena.NameBound())
	fmt.Printf("largest slot     : %d (envelope: shards x per-shard bound = %d)\n",
		maxSlot.Load(), arena.NameBound())
	fmt.Printf("all slots free   : %v\n", arena.Held() == 0)
}
