package shmrename

import (
	"testing"

	"shmrename/internal/registry"
)

// stormBackends derives the cross-backend roster of the public-API tests
// from the registry: every registered backend NewArena accepts by name and
// whose Release returns names directly to the shared pool — no external
// OS-backed arenas (OpenArena is their surface), no dense-proc-ID backends
// (the pooled public proc contexts violate their model), and no caching
// layers (their parked names break the tests' exact held-count oracles;
// the conformance suite covers them with cache-aware laws). Today the
// enumeration yields level-array, tau-longlived, and sharded — and a new
// backend registering with those capabilities joins every storm, lease,
// and batch test with no edits to their loops.
func stormBackends() []ArenaBackend {
	var out []ArenaBackend
	for _, b := range registry.All() {
		c := b.Caps
		if c.External || c.DenseProcs || c.Cached {
			continue
		}
		out = append(out, ArenaBackend(b.Name))
	}
	return out
}

// defaultAndStormBackends prepends the "" default-backend selector, for
// tests that also pin the zero-value ArenaConfig path.
func defaultAndStormBackends() []ArenaBackend {
	return append([]ArenaBackend{""}, stormBackends()...)
}

// TestStormBackendsRoster pins that the roster stays in sync with the
// public constants: each named constant must appear (the constants resolve
// to registered backends), so a registry rename cannot silently drop a
// backend from the storm coverage.
func TestStormBackendsRoster(t *testing.T) {
	got := map[ArenaBackend]bool{}
	for _, b := range stormBackends() {
		got[b] = true
	}
	for _, want := range []ArenaBackend{ArenaLevel, ArenaTau, ArenaBackendSharded} {
		if !got[want] {
			t.Errorf("stormBackends missing %q; roster %v", want, stormBackends())
		}
	}
}
