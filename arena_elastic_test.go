package shmrename

import (
	"strings"
	"testing"

	"shmrename/internal/registry"
)

// TestStatsCapacityAcrossBackends pins the ArenaStats capacity triple on
// every in-process registered backend: fixed-capacity backends report
// CapacityNow == PeakCapacity == Capacity before and after churn (the new
// fields are zero-delta), while Caps.Elastic backends track residency —
// below the ceiling at rest, covering the peak holder count under load.
func TestStatsCapacityAcrossBackends(t *testing.T) {
	const capacity, hold = 256, 200
	for _, b := range registry.All() {
		if b.Caps.External || b.Caps.DenseProcs {
			continue // OS-backed files / proc-ID-indexed backends: not NewArena surfaces
		}
		a, err := NewArena(ArenaConfig{Capacity: capacity, Backend: ArenaBackend(b.Name), Seed: 3})
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		st := a.Stats()
		if b.Caps.Elastic {
			if st.CapacityNow >= capacity {
				t.Errorf("%s: CapacityNow %d at rest, want < %d", b.Name, st.CapacityNow, capacity)
			}
		} else if st.CapacityNow != capacity || st.PeakCapacity != capacity {
			t.Errorf("%s: fresh capacity stats %d/%d, want %d/%d (zero-delta)",
				b.Name, st.CapacityNow, st.PeakCapacity, capacity, capacity)
		}
		var names []int
		for i := 0; i < hold; i++ {
			n, err := a.Acquire()
			if err != nil {
				t.Fatalf("%s: acquire %d: %v", b.Name, i, err)
			}
			names = append(names, n)
		}
		if st := a.Stats(); b.Caps.Elastic {
			if st.CapacityNow < hold {
				t.Errorf("%s: CapacityNow %d with %d holders", b.Name, st.CapacityNow, hold)
			}
			if st.PeakCapacity < st.CapacityNow {
				t.Errorf("%s: PeakCapacity %d < CapacityNow %d", b.Name, st.PeakCapacity, st.CapacityNow)
			}
		} else if st.CapacityNow != capacity || st.PeakCapacity != capacity {
			t.Errorf("%s: capacity stats drifted to %d/%d under load, want %d/%d",
				b.Name, st.CapacityNow, st.PeakCapacity, capacity, capacity)
		}
		for _, n := range names {
			if err := a.Release(n); err != nil {
				t.Fatalf("%s: release %d: %v", b.Name, n, err)
			}
		}
		if st := a.Stats(); !b.Caps.Elastic && (st.CapacityNow != capacity || st.PeakCapacity != capacity) {
			t.Errorf("%s: capacity stats drifted to %d/%d after drain, want %d/%d",
				b.Name, st.CapacityNow, st.PeakCapacity, capacity, capacity)
		}
	}
}

// TestElasticArenaAdaptsThroughPublicAPI drives a full diurnal cycle
// through NewArena: residency starts at the floor, grows with the holder
// count, and — with no explicit resize call anywhere in the public API —
// the release-side hysteresis walks it back down under sustained small-k
// churn.
func TestElasticArenaAdaptsThroughPublicAPI(t *testing.T) {
	a, err := NewArena(ArenaConfig{Capacity: 512, Backend: ArenaElastic, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.CapacityNow != 64 {
		t.Fatalf("fresh CapacityNow %d, want the 64-name base level", st.CapacityNow)
	}
	var names []int
	seen := make(map[int]bool)
	for i := 0; i < 400; i++ {
		n, err := a.Acquire()
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		if seen[n] {
			t.Fatalf("name %d issued twice", n)
		}
		seen[n] = true
		names = append(names, n)
	}
	peakSt := a.Stats()
	if peakSt.CapacityNow < 400 || peakSt.PeakCapacity < 400 {
		t.Fatalf("capacity stats %d/%d with 400 holders", peakSt.CapacityNow, peakSt.PeakCapacity)
	}
	if peakSt.ResidentBytes <= 0 {
		t.Fatalf("ResidentBytes %d on a ladder backend", peakSt.ResidentBytes)
	}
	for _, n := range names {
		if err := a.Release(n); err != nil {
			t.Fatal(err)
		}
	}
	// Night shift: single-name churn long enough for the hysteresis
	// (ShrinkAfter consecutive low-occupancy releases per retired level)
	// to drain the ladder back to the base level.
	for i := 0; i < 1500; i++ {
		n, err := a.Acquire()
		if err != nil {
			t.Fatalf("night cycle %d: %v", i, err)
		}
		if err := a.Release(n); err != nil {
			t.Fatal(err)
		}
	}
	st := a.Stats()
	if st.CapacityNow != 64 {
		t.Fatalf("CapacityNow %d after sustained small-k churn, want 64", st.CapacityNow)
	}
	if st.PeakCapacity != peakSt.PeakCapacity {
		t.Fatalf("PeakCapacity moved %d -> %d across the shrink", peakSt.PeakCapacity, st.PeakCapacity)
	}
	if st.ResidentBytes >= peakSt.ResidentBytes {
		t.Fatalf("ResidentBytes %d did not drop from peak %d", st.ResidentBytes, peakSt.ResidentBytes)
	}
}

// TestElasticConfigRouting pins the config surface: the MaxCapacity
// ceiling raises the provisioned guarantee, ArenaLevel with a non-nil
// Elastic field is the same backend as ArenaElastic, the sharded frontend
// accepts per-shard elasticity, and every invalid combination is rejected
// with a diagnostic naming the offending field.
func TestElasticConfigRouting(t *testing.T) {
	a, err := NewArena(ArenaConfig{Capacity: 64, Backend: ArenaElastic,
		Elastic: &ElasticConfig{MaxCapacity: 256}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Capacity() != 256 {
		t.Fatalf("Capacity %d with MaxCapacity 256, want 256", a.Capacity())
	}
	lvl, err := NewArena(ArenaConfig{Capacity: 512, Backend: ArenaLevel, Elastic: &ElasticConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := lvl.Stats().CapacityNow, 64; got != want {
		t.Fatalf("ArenaLevel+Elastic CapacityNow %d, want %d", got, want)
	}
	sh, err := NewArena(ArenaConfig{Capacity: 512, Backend: ArenaBackendSharded,
		Shards: 4, Elastic: &ElasticConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	if got := sh.Stats().CapacityNow; got != 4*64 {
		t.Fatalf("sharded elastic CapacityNow %d, want one base level per shard (256)", got)
	}
	for i := 0; i < 400; i++ {
		if _, err := sh.Acquire(); err != nil {
			t.Fatalf("sharded elastic acquire %d: %v", i, err)
		}
	}
	if got := sh.Stats().CapacityNow; got < 400 {
		t.Fatalf("sharded elastic CapacityNow %d with 400 holders", got)
	}

	for _, tc := range []struct {
		name string
		cfg  ArenaConfig
		want string
	}{
		{"growat-high", ArenaConfig{Capacity: 64, Elastic: &ElasticConfig{GrowAt: 1.5}}, "GrowAt"},
		{"growat-negative", ArenaConfig{Capacity: 64, Elastic: &ElasticConfig{GrowAt: -0.1}}, "GrowAt"},
		{"shrinkat-above-growat", ArenaConfig{Capacity: 64, Elastic: &ElasticConfig{ShrinkAt: 0.9}}, "ShrinkAt"},
		{"shrinkat-negative", ArenaConfig{Capacity: 64, Elastic: &ElasticConfig{ShrinkAt: -0.1}}, "ShrinkAt"},
		{"mincap-negative", ArenaConfig{Capacity: 64, Elastic: &ElasticConfig{MinCapacity: -1}}, "MinCapacity"},
		{"mincap-above-ceiling", ArenaConfig{Capacity: 64, Elastic: &ElasticConfig{MinCapacity: 128}}, "MinCapacity"},
		{"maxcap-below-capacity", ArenaConfig{Capacity: 64, Elastic: &ElasticConfig{MaxCapacity: 32}}, "MaxCapacity"},
		{"maxcap-huge", ArenaConfig{Capacity: 64, Elastic: &ElasticConfig{MaxCapacity: 1 << 29}}, "MaxCapacity"},
		{"tau-rejects-elastic", ArenaConfig{Capacity: 64, Backend: ArenaTau, Elastic: &ElasticConfig{}}, "tau"},
	} {
		_, err := NewArena(tc.cfg)
		if err == nil {
			t.Errorf("%s: config accepted, want an error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name %q", tc.name, err, tc.want)
		}
	}
}
